package repro

import (
	"io"

	"repro/internal/eval"
	"repro/internal/race"
	"repro/internal/registry"
)

// Online model racing: repro.Race trains several registered learners
// ("arms") on the same stream, tracks each arm's prequential error in
// an ADWIN-managed sliding window, and serves every prediction from the
// current leader through a wait-free atomic snapshot. When drift fires
// on the leader's error stream, the race windows reset and the fleet
// re-competes under the new concept — on drifting streams the racer
// tracks whichever arm wins each regime instead of committing to one
// model up front.
//
// The Racer is a full serving Scorer: it slots unchanged into
// Prequential, Save/Load (a "RACE"-framed envelope sequence), the HTTP
// serving tier (dmtserve -model 'race:dmt,vfdt,arf'; /statusz shows the
// per-arm scoreboard) and checkpoint-resume.
type (
	// Racer is the racing meta-scorer. See race.Racer.
	Racer = race.Racer
	// RaceArm is one competitor: a model name (aliases like "dmt",
	// "vfdt", "arf" resolve) plus optional per-arm options.
	RaceArm = race.Arm
	// RaceStatus is the scoreboard exported by (*Racer).RaceStatus and
	// embedded in the serving tier's /statusz document.
	RaceStatus = race.Status
	// RaceArmStatus is one arm's scoreboard row.
	RaceArmStatus = race.ArmStatus
	// RaceSwapEvent is one leader change in the racer's timeline.
	RaceSwapEvent = race.SwapEvent
	// RaceOption tunes Race.
	RaceOption func(*race.Config)
)

// IsRaceSpec reports whether a model spec names a race lineup
// ("race:dmt,vfdt,arf") — the grammar repro.Serve and dmtserve accept
// wherever a registered model name is expected.
func IsRaceSpec(spec string) bool { return race.IsSpec(spec) }

// Arms builds a race lineup from model names. Names resolve like
// registry names plus CLI aliases: "dmt", "vfdt", "arf", "levbag",
// "glm", "nb", ... — see race.ResolveModel.
func Arms(names ...string) []RaceArm {
	arms := make([]RaceArm, len(names))
	for i, n := range names {
		arms[i] = RaceArm{Model: n}
	}
	return arms
}

// ArmWith is an arm with its own functional options (e.g. a custom
// learning rate or an explicit seed).
func ArmWith(name string, opts ...Option) RaceArm {
	return RaceArm{Model: name, Options: opts}
}

// WithRaceSeed derives every arm's default seed (each arm perturbs it
// by its index, so same-family arms stay decorrelated).
func WithRaceSeed(seed int64) RaceOption {
	return func(c *race.Config) { c.Seed = seed }
}

// WithRaceWindow sets the per-arm prequential window capacity (default
// race.DefaultWindow).
func WithRaceWindow(n int) RaceOption {
	return func(c *race.Config) { c.Window = n }
}

// WithRaceDriftDelta sets the per-arm ADWIN confidence on the 0/1 error
// stream (default race.DefaultDriftDelta).
func WithRaceDriftDelta(delta float64) RaceOption {
	return func(c *race.Config) { c.DriftDelta = delta }
}

// WithRaceWorkers bounds the arm-training worker pool (0 = GOMAXPROCS,
// 1 = sequential; results are identical either way).
func WithRaceWorkers(n int) RaceOption {
	return func(c *race.Config) { c.Workers = n }
}

// WithRaceMinEvidence sets the windowed-observation floor below which
// an arm cannot take the lead (default race.DefaultMinEvidence).
func WithRaceMinEvidence(n int) RaceOption {
	return func(c *race.Config) { c.MinEvidence = n }
}

// WithWarmRestart re-seeds, at each drift-triggered re-race, trailing
// arms of the leader's model family from the leader's envelope.
func WithWarmRestart(on bool) RaceOption {
	return func(c *race.Config) { c.WarmRestart = on }
}

// Race builds a racing meta-scorer over the given arms — the drifting-
// stream one-liner:
//
//	r, err := repro.Race(schema, repro.Arms("dmt", "vfdt", "arf"))
//
// Every arm trains on every Learn batch (in parallel on a bounded
// worker pool, byte-identical to sequential); every read is served by
// the arm currently winning the windowed prequential race. The zero
// option set races with a 500-observation window, ADWIN delta 0.002
// and seed 0.
func Race(schema Schema, arms []RaceArm, opts ...RaceOption) (*Racer, error) {
	cfg := race.Config{Schema: schema, Arms: arms}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return race.New(cfg)
}

// LoadRace reconstructs a racer from checkpoint bytes written by
// (*Racer).Checkpoint — no configuration needed, the "RACE" header
// carries it.
func LoadRace(r io.Reader) (*Racer, error) { return race.FromCheckpoint(r) }

// RaceModels reports the registered names plus the racing aliases a
// race spec accepts, for error messages and CLI help.
func RaceModels() []string { return registry.Names() }

// RunRaceScenario runs the racing payoff experiment — fixed arms vs the
// racer across abrupt/gradual/recurring concept switches — and renders
// the accuracy table plus each racer's leader timeline against the
// planted drift positions (dmtbench -race).
func RunRaceScenario(scale float64, seed int64, progress io.Writer) (string, error) {
	return eval.RunRaceScenario(scale, seed, progress)
}
