package repro

import (
	"testing"
)

// prequentialF1 runs one model on one stream and returns the mean
// prequential F1.
func prequentialF1(t *testing.T, name string, s Stream) (f1, splits float64) {
	t.Helper()
	clf := MustNew(name, s.Schema(), WithSeed(7))
	res, err := Prequential(clf, s, EvalOptions{MinBatchSize: 32})
	if err != nil {
		t.Fatalf("%s on %s: %v", name, s.Schema().Name, err)
	}
	f1, _ = res.F1()
	splits, _ = res.Splits()
	return f1, splits
}

// The acceptance criterion of the categorical refactor: on the planted
// stream whose concept depends on a categorical attribute with
// adversarially ordered codes, native equality/subset splits beat the
// factorised (code-as-float) baseline on prequential F1 — for the DMT
// and for the Hoeffding tree.
func TestCategoricalNativeBeatsFactorised(t *testing.T) {
	for _, name := range []string{"DMT", "VFDT (MC)"} {
		name := name
		t.Run(name, func(t *testing.T) {
			native := NewCategoricalConcept(24_000, 8, 0.05, 42)
			nf1, _ := prequentialF1(t, name, native)
			ff1, _ := prequentialF1(t, name, native.Factorised())
			if nf1 <= ff1+0.02 {
				t.Fatalf("native F1 %.3f does not beat factorised F1 %.3f", nf1, ff1)
			}
		})
	}
}

// Every registered model checkpoints and continues byte-identically on a
// stream with a categorical schema — the registry-wide version of the
// per-package round-trip tests.
func TestCheckpointRoundTripCategoricalAllModels(t *testing.T) {
	gen := NewCategoricalConcept(200_000, 6, 0.05, 42)
	schema := gen.Schema()
	batches := collectBatches(t, gen, 30, 64)
	for _, name := range Models() {
		name := name
		t.Run(name, func(t *testing.T) {
			assertByteIdenticalContinue(t, name, schema, batches)
		})
	}
}
