package repro

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The facade quickstart path: generator -> DMT -> prequential run.
func TestFacadeQuickstart(t *testing.T) {
	gen := NewSEA(5000, 0.1, 42)
	dmt := NewDMT(DMTConfig{Seed: 42}, gen.Schema())
	res, err := Prequential(dmt, gen, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 1000 {
		t.Fatalf("iterations = %d", len(res.Iters))
	}
	f1, _ := res.F1()
	if f1 <= 0.3 {
		t.Fatalf("DMT F1 = %v — not learning through the facade", f1)
	}
}

// Every classifier constructor is usable through the facade.
func TestFacadeConstructors(t *testing.T) {
	schema := Schema{NumFeatures: 3, NumClasses: 2, Name: "t"}
	classifiers := []Classifier{
		NewDMT(DMTConfig{}, schema),
		NewVFDT(VFDTConfig{}, schema),
		NewVFDT(VFDTConfig{LeafMode: LeafNaiveBayesAdaptive}, schema),
		NewHTAda(HTAdaConfig{}, schema),
		NewEFDT(EFDTConfig{}, schema),
		NewFIMTDD(FIMTDDConfig{}, schema),
		NewARF(EnsembleConfig{}, schema),
		NewLevBag(EnsembleConfig{}, schema),
	}
	batch := Batch{X: [][]float64{{0.1, 0.5, 0.9}, {0.9, 0.5, 0.1}}, Y: []int{0, 1}}
	for _, c := range classifiers {
		c.Learn(batch)
		if y := c.Predict([]float64{0.5, 0.5, 0.5}); y < 0 || y > 1 {
			t.Fatalf("%s predicted %d", c.Name(), y)
		}
		comp := c.Complexity()
		if comp.Splits < 0 || comp.Params < 0 {
			t.Fatalf("%s complexity %+v", c.Name(), comp)
		}
	}
}

func TestFacadeByName(t *testing.T) {
	schema := Schema{NumFeatures: 2, NumClasses: 2, Name: "t"}
	for _, name := range []string{"DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT", "Forest Ens.", "Bagging Ens."} {
		c, err := NewClassifierByName(name, schema, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("%q != %q", c.Name(), name)
		}
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(Datasets()) != 13 {
		t.Fatalf("registry size %d", len(Datasets()))
	}
	e, err := DatasetByName("Hyperplane")
	if err != nil || e.Features != 50 {
		t.Fatalf("Hyperplane lookup: %v %v", e, err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	gens := []Stream{
		NewSEA(100, 0.1, 1),
		NewAgrawal(100, 0.1, 1),
		NewHyperplane(100, 10, 0.1, 1),
		NewClusterStream(ClusterConfig{Name: "c", Samples: 100, Features: 3, Classes: 2, Seed: 1}),
	}
	for _, g := range gens {
		inst, err := g.Next()
		if err != nil {
			t.Fatalf("%s: %v", g.Schema().Name, err)
		}
		for _, v := range inst.X {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s emitted %v", g.Schema().Name, inst.X)
			}
		}
	}
}

func TestFacadeStreamsHelpers(t *testing.T) {
	schema := Schema{NumFeatures: 1, NumClasses: 2, Name: "mem"}
	mem := NewMemoryStream(schema, Batch{X: [][]float64{{0.1}, {0.9}}, Y: []int{0, 1}})
	lim := LimitStream(mem, 1)
	if _, err := lim.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := lim.Next(); err != ErrEndOfStream {
		t.Fatalf("want ErrEndOfStream, got %v", err)
	}
	if MajorityPriors(4, 0.7)[0] != 0.7 {
		t.Fatal("MajorityPriors")
	}
}

// Checkpointing works through the facade.
func TestFacadeSaveLoad(t *testing.T) {
	gen := NewSEA(10_000, 0.1, 5)
	dmt := NewDMT(DMTConfig{Seed: 5}, gen.Schema())
	if _, err := Prequential(dmt, gen, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dmt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDMT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.4, 0.5}
	if dmt.Predict(x) != loaded.Predict(x) {
		t.Fatal("checkpoint round trip changed predictions")
	}
}

// DMT interpretability hooks are reachable through the facade.
func TestFacadeDMTInterpretability(t *testing.T) {
	gen := NewSEA(20000, 0.1, 3)
	dmt := NewDMT(DMTConfig{Seed: 3}, gen.Schema())
	if _, err := Prequential(dmt, gen, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	if w := dmt.LeafWeights([]float64{0.5, 0.5, 0.5}, 1); len(w) != 3 {
		t.Fatalf("LeafWeights = %v", w)
	}
	if desc := dmt.Describe(); !strings.Contains(desc, "leaf[") {
		t.Fatalf("Describe:\n%s", desc)
	}
	for _, ev := range dmt.Changes() {
		if ev.Gain < ev.AICThreshold {
			t.Fatalf("change below threshold: %+v", ev)
		}
	}
}
