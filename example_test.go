package repro_test

import (
	"fmt"

	"repro"
)

// Train a Dynamic Model Tree prequentially on a drifting stream and read
// the paper's two headline measures.
func Example() {
	gen := repro.NewSEA(20_000, 0, 1) // noise-free for a stable doc output
	dmt := repro.NewDMT(repro.DMTConfig{Seed: 1}, gen.Schema())
	res, err := repro.Prequential(dmt, gen, repro.EvalOptions{})
	if err != nil {
		panic(err)
	}
	splits, _ := res.Splits()
	fmt.Printf("iterations: %d\n", len(res.Iters))
	fmt.Printf("avg splits: %.1f\n", splits)
	// Output:
	// iterations: 1000
	// avg splits: 1.0
}

// Build any of the paper's eight models by its table name.
func ExampleNewClassifierByName() {
	schema := repro.Schema{NumFeatures: 3, NumClasses: 2, Name: "demo"}
	for _, name := range []string{"DMT", "VFDT (MC)", "FIMT-DD"} {
		clf, err := repro.NewClassifierByName(name, schema, 7)
		if err != nil {
			panic(err)
		}
		fmt.Println(clf.Name())
	}
	// Output:
	// DMT
	// VFDT (MC)
	// FIMT-DD
}

// Inspect the Table I registry.
func ExampleDatasets() {
	for _, e := range repro.Datasets()[:3] {
		fmt.Printf("%s: %d x %d, %d classes\n", e.DisplayName(), e.Samples, e.Features, e.Classes)
	}
	// Output:
	// Electricity*: 45312 x 8, 2 classes
	// Airlines*: 539383 x 7, 2 classes
	// Bank*: 45211 x 16, 2 classes
}

// The DMT explains its own structural changes: every split, replacement
// or prune carries the loss gain that justified it (eq. 11 of the paper).
func ExampleDMT_changes() {
	gen := repro.NewClusterStream(repro.ClusterConfig{
		Name: "demo", Samples: 30_000, Features: 2, Classes: 2,
		Priors: repro.MajorityPriors(2, 0.5), Std: 0.08, Seed: 3,
	})
	dmt := repro.NewDMT(repro.DMTConfig{Seed: 3}, gen.Schema())
	if _, err := repro.Prequential(dmt, gen, repro.EvalOptions{}); err != nil {
		panic(err)
	}
	for _, ev := range dmt.Changes() {
		fmt.Printf("%s at depth %d: gain above AIC threshold: %v\n",
			ev.Kind, ev.Depth, ev.Gain >= ev.AICThreshold)
	}
	weights := dmt.LeafWeights([]float64{0.5, 0.5}, 1)
	fmt.Printf("local explanation has %d feature weights\n", len(weights))
	// Output:
	// split at depth 0: gain above AIC threshold: true
	// local explanation has 2 feature weights
}
