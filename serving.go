package repro

import "repro/internal/serve"

// Serve is the registry-driven serving entry point: it builds a
// registered model by name and wraps it in a concurrency-safe Scorer in
// one call. The default is the lock-free SnapshotScorer publishing after
// every Learn; options select the publish cadence, the RWMutex fallback
// or hash-sharded replicas.
//
//	scorer, err := repro.Serve("DMT", schema,
//		repro.WithServeModelOptions(repro.WithSeed(42)),
//		repro.WithPublishEvery(4))
//	...
//	go trainLoop(scorer)       // scorer.Learn(batch)
//	preds = scorer.PredictBatch(rows, preds) // wait-free, any goroutine
func Serve(name string, schema Schema, opts ...ServeOption) (Scorer, error) {
	cfg := serve.Config{Model: name, Schema: schema}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return serve.New(cfg)
}

// MustServe is Serve for initialisation paths where a failure is fatal.
func MustServe(name string, schema Schema, opts ...ServeOption) Scorer {
	s, err := Serve(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// ServeOption configures Serve (see the WithServe.../WithPublishEvery
// constructors).
type ServeOption func(*serve.Config)

// WithPublishEvery sets the snapshot publish cadence: the scorer clones
// and republishes its serving snapshot every n Learn calls (n <= 1 =
// every batch). Reads serve a state at most n-1 batches stale; cheap
// learners can publish every batch, expensive ones amortise the clone.
func WithPublishEvery(n int) ServeOption {
	return func(c *serve.Config) { c.PublishEvery = n }
}

// WithPublishOnChange republishes the serving snapshot only when the
// model's tree structure moved (a split, prune, replacement or member
// swap) instead of every WithPublishEvery batches. Structural events
// are orders of magnitude rarer than batches, so the clone-per-publish
// cost collapses; readers see leaf-parameter drift only at the next
// structural event or a forced Publish. Requires a model with a
// structure version — every tree learner and both ensembles; the
// structureless GLM and Naive Bayes baselines only support cadence
// publishing.
func WithPublishOnChange() ServeOption {
	return func(c *serve.Config) { c.PublishOnChange = true }
}

// WithLockedServing selects the RWMutex scorer instead of the lock-free
// snapshot scorer.
func WithLockedServing() ServeOption {
	return func(c *serve.Config) { c.Mode = serve.ModeLocked }
}

// WithShards serves through n independent model replicas (n <= 0
// defaults to 2; 1 is honoured as a single-replica deployment), each
// behind its own snapshot scorer: rows hash to a replica for both
// learning and prediction, so training and serving scale across cores.
// Each replica sees 1/n of the stream — accuracy on short streams
// trails a single model.
func WithShards(n int) ServeOption {
	return func(c *serve.Config) {
		c.Mode = serve.ModeSharded
		c.Shards = n
	}
}

// WithServeModelOptions forwards functional model options (WithSeed,
// WithLearningRate, ...) to the underlying registry construction.
func WithServeModelOptions(opts ...Option) ServeOption {
	return func(c *serve.Config) { c.Options = append(c.Options, opts...) }
}
