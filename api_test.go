package repro

import (
	"context"
	"errors"
	"testing"
)

// All eight paper model names round-trip through the registry: New builds
// them, and each model reports the registered name back.
func TestRegistryRoundTripPaperModels(t *testing.T) {
	schema := Schema{NumFeatures: 3, NumClasses: 2, Name: "t"}
	names := []string{"DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT", "Forest Ens.", "Bagging Ens."}
	for _, name := range names {
		if !ModelRegistered(name) {
			t.Fatalf("%q not registered", name)
		}
		c, err := New(name, schema, WithSeed(7))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("built %q, asked for %q", c.Name(), name)
		}
		c.Learn(Batch{X: [][]float64{{0.1, 0.2, 0.3}}, Y: []int{1}})
		if y := c.Predict([]float64{0.1, 0.2, 0.3}); y < 0 || y > 1 {
			t.Fatalf("%s predicted %d", name, y)
		}
	}
}

// The extra baselines registered beyond the paper's table.
func TestRegistryExtraBaselines(t *testing.T) {
	schema := Schema{NumFeatures: 2, NumClasses: 3, Name: "t"}
	for _, name := range []string{"VFDT", "VFDT (NB)", "GLM", "Naive Bayes"} {
		c, err := New(name, schema, WithSeed(1))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		c.Learn(Batch{X: [][]float64{{0.2, 0.8}, {0.9, 0.1}}, Y: []int{0, 2}})
		if y := c.Predict([]float64{0.5, 0.5}); y < 0 || y > 2 {
			t.Fatalf("%s predicted %d", name, y)
		}
	}
}

func TestNewUnknownModelAndBadSchema(t *testing.T) {
	if _, err := New("nope", Schema{NumFeatures: 1, NumClasses: 2, Name: "t"}); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := New("DMT", Schema{NumFeatures: 0, NumClasses: 2, Name: "t"}); err == nil {
		t.Fatal("invalid schema must error")
	}
	if len(Models()) < 8 {
		t.Fatalf("Models() = %v, want at least the 8 paper names", Models())
	}
}

// Functional options are equivalent to direct struct configuration: the
// same seed and hyperparameters produce identical models.
func TestOptionsMatchStructConfig(t *testing.T) {
	genA := NewSEA(4000, 0.1, 9)
	genB := NewSEA(4000, 0.1, 9)

	viaOpts, err := New("DMT", genA.Schema(),
		WithSeed(9), WithLearningRate(0.1), WithEpsilon(1e-5), WithCandidateFactor(2))
	if err != nil {
		t.Fatal(err)
	}
	viaStruct := NewDMT(DMTConfig{Seed: 9, LearningRate: 0.1, Epsilon: 1e-5, CandidateFactor: 2}, genB.Schema())

	resA, err := Prequential(viaOpts, genA, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Prequential(viaStruct, genB, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Iters) != len(resB.Iters) {
		t.Fatalf("iteration counts differ: %d vs %d", len(resA.Iters), len(resB.Iters))
	}
	for i := range resA.Iters {
		a, b := resA.Iters[i], resB.Iters[i]
		a.Seconds, b.Seconds = 0, 0 // wall clock is not deterministic
		if a != b {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a, b)
		}
	}
	for _, x := range [][]float64{{0.1, 0.5, 0.9}, {0.9, 0.2, 0.4}, {0.5, 0.5, 0.5}} {
		if viaOpts.Predict(x) != viaStruct.Predict(x) {
			t.Fatalf("predictions diverge at %v", x)
		}
	}
}

// The VFDT option path matches the typed constructor too.
func TestOptionsMatchStructConfigVFDT(t *testing.T) {
	genA := NewSEA(3000, 0.1, 4)
	genB := NewSEA(3000, 0.1, 4)
	viaOpts, err := New("VFDT", genA.Schema(),
		WithSeed(4), WithLeafMode(LeafNaiveBayesAdaptive), WithGracePeriod(100))
	if err != nil {
		t.Fatal(err)
	}
	viaStruct := NewVFDT(VFDTConfig{Seed: 4, LeafMode: LeafNaiveBayesAdaptive, GracePeriod: 100}, genB.Schema())
	resA, err := Prequential(viaOpts, genA, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Prequential(viaStruct, genB, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range resA.Iters {
		if resA.Iters[i].F1 != resB.Iters[i].F1 {
			t.Fatalf("iteration %d F1 differs", i)
		}
	}
}

// cancellingStream cancels its context after emitting a fixed number of
// instances, simulating an operator stopping a long run mid-flight.
type cancellingStream struct {
	inner   Stream
	cancel  context.CancelFunc
	after   int
	emitted int
}

func (c *cancellingStream) Schema() Schema { return c.inner.Schema() }
func (c *cancellingStream) Len() int       { return 100_000 }
func (c *cancellingStream) Reset()         { c.inner.Reset(); c.emitted = 0 }
func (c *cancellingStream) Next() (Instance, error) {
	if c.emitted == c.after {
		c.cancel()
	}
	c.emitted++
	return c.inner.Next()
}

// Cancelling a context mid-run stops Prequential at the next check and
// returns ctx.Err() alongside the iterations finished so far.
func TestPrequentialContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	strm := &cancellingStream{inner: NewSEA(100_000, 0.1, 2), cancel: cancel, after: 500}
	dmt := MustNew("DMT", strm.Schema(), WithSeed(2))

	res, err := PrequentialContext(ctx, dmt, strm, EvalOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// 100k-instance stream -> 100-row batches; cancellation fires inside
	// batch 6, so only the 5 completed iterations are reported.
	if len(res.Iters) == 0 || len(res.Iters) > 6 {
		t.Fatalf("got %d iterations, want a handful before cancellation", len(res.Iters))
	}
}

// An already-cancelled context returns immediately with zero iterations.
func TestPrequentialContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gen := NewSEA(10_000, 0.1, 3)
	dmt := MustNew("DMT", gen.Schema(), WithSeed(3))
	res, err := PrequentialContext(ctx, dmt, gen, EvalOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Iters) != 0 {
		t.Fatalf("got %d iterations on a dead context", len(res.Iters))
	}
}

// Suite cancellation propagates through the Runner.
func TestSuiteRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	suite := ExperimentSuite{Scale: 0.001, Datasets: []string{"SEA"}, Models: []string{"DMT"}}
	if _, err := suite.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A custom factory registered through the facade is buildable by name and
// receives the resolved option parameters.
func TestRegisterCustomFactory(t *testing.T) {
	var got ModelParams
	Register("test-custom-model", func(schema Schema, p ModelParams) (Classifier, error) {
		got = p
		return MustNew("GLM", schema, WithSeed(p.Seed)), nil
	})
	c, err := New("test-custom-model", Schema{NumFeatures: 2, NumClasses: 2, Name: "t"},
		WithSeed(11), WithLearningRate(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 11 || got.LearningRate != 0.25 {
		t.Fatalf("factory params = %+v", got)
	}
	if c == nil {
		t.Fatal("nil classifier")
	}
}
