package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{NumFeatures: 3, NumClasses: 2, Name: "test"}
}

func testBatch() Batch {
	return Batch{
		X: [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}, {0.7, 0.8, 0.9}},
		Y: []int{0, 1, 0},
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{NumFeatures: 0, NumClasses: 2},
		{NumFeatures: 2, NumClasses: 1},
		{NumFeatures: 2, NumClasses: 2, FeatureNames: []string{"only-one"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSchemaFeatureName(t *testing.T) {
	s := testSchema()
	if s.FeatureName(1) != "x1" {
		t.Fatalf("default name = %q", s.FeatureName(1))
	}
	s.FeatureNames = []string{"a", "b", "c"}
	if s.FeatureName(2) != "c" {
		t.Fatalf("named = %q", s.FeatureName(2))
	}
	if s.FeatureName(99) != "x99" {
		t.Fatalf("out of range = %q", s.FeatureName(99))
	}
}

func TestBatchValidate(t *testing.T) {
	b := testBatch()
	if err := b.Validate(testSchema()); err != nil {
		t.Fatal(err)
	}
	ragged := Batch{X: [][]float64{{1}}, Y: []int{0}}
	if err := ragged.Validate(testSchema()); err == nil {
		t.Fatal("expected ragged-row error")
	}
	badLabel := Batch{X: [][]float64{{1, 2, 3}}, Y: []int{7}}
	if err := badLabel.Validate(testSchema()); err == nil {
		t.Fatal("expected label-range error")
	}
	mismatch := Batch{X: [][]float64{{1, 2, 3}}, Y: []int{0, 1}}
	if err := mismatch.Validate(testSchema()); err == nil {
		t.Fatal("expected row/label count error")
	}
}

func TestBatchSlice(t *testing.T) {
	b := testBatch()
	s := b.Slice(1, 3)
	if s.Len() != 2 || s.Y[0] != 1 {
		t.Fatalf("Slice = %+v", s)
	}
}

func TestMemoryReplayAndCopy(t *testing.T) {
	m := NewMemory(testSchema(), testBatch())
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	first, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned slice must not corrupt the stream.
	first.X[0] = 999
	m.Reset()
	again, _ := m.Next()
	if again.X[0] != 0.1 {
		t.Fatal("Memory.Next leaked its backing array")
	}
	// Exhaustion.
	m.Reset()
	for i := 0; i < 3; i++ {
		if _, err := m.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Next(); !errors.Is(err, ErrEnd) {
		t.Fatalf("want ErrEnd, got %v", err)
	}
}

func TestNextBatch(t *testing.T) {
	m := NewMemory(testSchema(), testBatch())
	b, err := NextBatch(m, 2)
	if err != nil || b.Len() != 2 {
		t.Fatalf("NextBatch = %v, %v", b.Len(), err)
	}
	b, err = NextBatch(m, 5) // only 1 left
	if err != nil || b.Len() != 1 {
		t.Fatalf("tail batch = %v, %v", b.Len(), err)
	}
	if _, err = NextBatch(m, 1); !errors.Is(err, ErrEnd) {
		t.Fatalf("want ErrEnd, got %v", err)
	}
}

func TestTake(t *testing.T) {
	m := NewMemory(testSchema(), testBatch())
	b := Take(m, 10)
	if b.Len() != 3 {
		t.Fatalf("Take = %d rows", b.Len())
	}
	if Take(m, 10).Len() != 0 {
		t.Fatal("Take on exhausted stream should be empty")
	}
}

func TestLimit(t *testing.T) {
	m := NewMemory(testSchema(), testBatch())
	l := NewLimit(m, 2)
	if l.Len() != 2 {
		t.Fatalf("Limit.Len = %d", l.Len())
	}
	n := 0
	for {
		_, err := l.Next()
		if errors.Is(err, ErrEnd) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("Limit emitted %d", n)
	}
	l.Reset()
	if _, err := l.Next(); err != nil {
		t.Fatal("Reset should allow reading again")
	}
	// Limit larger than the stream reports the inner length.
	l2 := NewLimit(NewMemory(testSchema(), testBatch()), 100)
	if l2.Len() != 3 {
		t.Fatalf("Limit.Len over-long = %d", l2.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m := NewMemory(testSchema(), testBatch())
	var buf bytes.Buffer
	rows, err := WriteCSV(&buf, m)
	if err != nil || rows != 3 {
		t.Fatalf("WriteCSV = %d, %v", rows, err)
	}
	back, err := ReadCSV(&buf, "test", 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || back.Schema().NumFeatures != 3 {
		t.Fatalf("round trip shape: %d rows, %d features", back.Len(), back.Schema().NumFeatures)
	}
	orig := testBatch()
	for i := 0; i < 3; i++ {
		inst, err := back.Next()
		if err != nil {
			t.Fatal(err)
		}
		if inst.Y != orig.Y[i] {
			t.Fatalf("row %d label %d, want %d", i, inst.Y, orig.Y[i])
		}
		for j := range inst.X {
			if inst.X[j] != orig.X[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, inst.X[j], orig.X[i][j])
			}
		}
	}
}

// Property: random batches survive the CSV round trip bit-exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		m := 1 + rng.Intn(6)
		c := 2 + rng.Intn(4)
		var b Batch
		for i := 0; i < n; i++ {
			row := make([]float64, m)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			b.X = append(b.X, row)
			b.Y = append(b.Y, rng.Intn(c))
		}
		schema := Schema{NumFeatures: m, NumClasses: c, Name: "prop"}
		var buf bytes.Buffer
		if _, err := WriteCSV(&buf, NewMemory(schema, b)); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, "prop", c)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			inst, err := back.Next()
			if err != nil || inst.Y != b.Y[i] {
				return false
			}
			for j := range inst.X {
				if inst.X[j] != b.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                        // no header
		"a\n1\n",                  // single column
		"a,class\n1,0\nnope,0\n",  // bad float in a numeric column
		"a,class\n1,zero\n",       // bad label
		"a,class\n1,-3\n",         // negative label
		"a,b,class\n1,2,0\n3,1\n", // ragged row
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "bad", 0); err == nil {
			t.Errorf("case %d: expected error for %q", i, in)
		}
	}
}

func TestReadCSVInfersClasses(t *testing.T) {
	in := "a,class\n0.5,0\n0.6,4\n"
	m, err := ReadCSV(strings.NewReader(in), "inferred", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema().NumClasses != 5 {
		t.Fatalf("inferred classes = %d, want 5", m.Schema().NumClasses)
	}
}
