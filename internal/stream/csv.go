package stream

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSV encoding of streams. The first row is a header of feature names
// followed by "class". Schemas with categorical features additionally
// write a kinds row right after the header — per-feature specs like
// "num" or "cat:<cardinality>[:level0|level1|...]" with "#kinds" in the
// class column — so kinds and level dictionaries round-trip losslessly.
// Categorical cells are written as level names when the schema declares
// them (and as bare integer codes otherwise); readers accept either
// form. encoding/csv quotes cell contents, so feature and level names
// containing commas, quotes or newlines survive the round trip exactly;
// the only characters needing extra care are '|' and '%' inside level
// names, which the kinds row percent-escapes.

// kindsSentinel marks the kinds row in the class column.
const kindsSentinel = "#kinds"

// escapeLevel protects the kinds-row level separators inside a level
// name: '%' becomes %25 and '|' becomes %7C.
func escapeLevel(s string) string {
	if !strings.ContainsAny(s, "%|") {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%':
			sb.WriteString("%25")
		case '|':
			sb.WriteString("%7C")
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// unescapeLevel inverts escapeLevel. Replacing %7C before %25 is what
// makes the inversion exact: a literal "%7C" in the source text was
// escaped to "%257C", which contains no "%7C" substring.
func unescapeLevel(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	s = strings.ReplaceAll(s, "%7C", "|")
	return strings.ReplaceAll(s, "%25", "%")
}

// formatKind renders one feature kind as a kinds-row cell.
func formatKind(k FeatureKind) string {
	if !k.Categorical {
		return "num"
	}
	if k.Levels == nil {
		return fmt.Sprintf("cat:%d", k.Cardinality)
	}
	esc := make([]string, len(k.Levels))
	for i, lv := range k.Levels {
		esc[i] = escapeLevel(lv)
	}
	return fmt.Sprintf("cat:%d:%s", k.Cardinality, strings.Join(esc, "|"))
}

// parseKind parses one kinds-row cell.
func parseKind(s string) (FeatureKind, error) {
	if s == "num" || s == "" {
		return Numeric(), nil
	}
	rest, ok := strings.CutPrefix(s, "cat:")
	if !ok {
		return FeatureKind{}, fmt.Errorf("unknown kind spec %q", s)
	}
	cardStr, lvls, hasLevels := strings.Cut(rest, ":")
	card, err := strconv.Atoi(cardStr)
	if err != nil {
		return FeatureKind{}, fmt.Errorf("kind spec %q: bad cardinality: %w", s, err)
	}
	k := Categorical(card)
	if hasLevels {
		parts := strings.Split(lvls, "|")
		k.Levels = make([]string, len(parts))
		for i := range parts {
			k.Levels[i] = unescapeLevel(parts[i])
		}
	}
	if err := k.Validate(); err != nil {
		return FeatureKind{}, fmt.Errorf("kind spec %q: %w", s, err)
	}
	return k, nil
}

// WriteCSV writes the whole stream to w as CSV with a header row of feature
// names followed by "class", and — when the schema declares categorical
// features — a kinds row carrying cardinalities and level dictionaries.
// It returns the number of data rows written.
func WriteCSV(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	schema := s.Schema()
	m := schema.NumFeatures

	header := make([]string, m+1)
	for j := 0; j < m; j++ {
		header[j] = schema.FeatureName(j)
	}
	header[m] = "class"
	if err := cw.Write(header); err != nil {
		return 0, fmt.Errorf("stream: write csv header: %w", err)
	}

	if schema.HasCategorical() {
		kinds := make([]string, m+1)
		for j := 0; j < m; j++ {
			kinds[j] = formatKind(schema.Kind(j))
		}
		kinds[m] = kindsSentinel
		if err := cw.Write(kinds); err != nil {
			return 0, fmt.Errorf("stream: write csv kinds row: %w", err)
		}
	}

	record := make([]string, m+1)
	rows := 0
	for {
		inst, err := s.Next()
		if err == ErrEnd {
			break
		}
		if err != nil {
			return rows, err
		}
		for j, v := range inst.X {
			if k := schema.Kind(j); k.Categorical && k.Levels != nil &&
				v == math.Trunc(v) && v >= 0 && v < float64(len(k.Levels)) {
				record[j] = k.Levels[int(v)]
				continue
			}
			record[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		record[m] = strconv.Itoa(inst.Y)
		if err := cw.Write(record); err != nil {
			return rows, fmt.Errorf("stream: write csv row %d: %w", rows, err)
		}
		rows++
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return rows, err
	}
	return rows, bw.Flush()
}

// cellValue converts one CSV cell of a declared categorical column to its
// level code: a declared level name resolves through the dictionary, and
// anything else must parse as a valid integer code.
func cellValue(cell string, k FeatureKind, dict map[string]int) (float64, error) {
	if dict != nil {
		if code, ok := dict[cell]; ok {
			return float64(code), nil
		}
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		if dict != nil {
			return 0, fmt.Errorf("unknown level %q", cell)
		}
		return 0, err
	}
	if err := CheckCode(v, k.Cardinality); err != nil {
		return 0, err
	}
	return v, nil
}

// levelDict builds the name-to-code map of a kind with declared levels.
func levelDict(k FeatureKind) map[string]int {
	if !k.Categorical || k.Levels == nil {
		return nil
	}
	dict := make(map[string]int, len(k.Levels))
	for code, name := range k.Levels {
		dict[name] = code
	}
	return dict
}

// ReadCSV parses a CSV produced by WriteCSV (header row, optional kinds
// row, feature cells, integer class in the last column) into an in-memory
// stream. numClasses may be 0, in which case it is inferred as
// max(label)+1.
//
// Kinds come from the kinds row when present. Without one, columns are
// auto-detected from the first data row: a cell that does not parse as a
// number makes its column categorical, with stable integer codes assigned
// in order of first appearance and the level dictionary recorded on the
// schema. (A categorical column whose level names all look numeric must
// therefore declare itself through a kinds row.)
func ReadCSV(r io.Reader, name string, numClasses int) (*Memory, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("stream: read csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("stream: csv needs at least one feature and a class column, got %d columns", len(header))
	}
	m := len(header) - 1
	names := make([]string, m)
	for j := 0; j < m; j++ {
		names[j] = strings.Clone(header[j])
	}

	var (
		kinds    []FeatureKind    // nil until a kinds row or auto-detection declares one
		dicts    []map[string]int // per-column level name -> code
		auto     []bool           // per-column: dictionary grows as levels appear
		autoLv   [][]string       // per-column level names in code order (auto columns)
		declared bool
	)
	ensureKinds := func() {
		if kinds == nil {
			kinds = make([]FeatureKind, m)
			dicts = make([]map[string]int, m)
			auto = make([]bool, m)
			autoLv = make([][]string, m)
		}
	}

	var batch Batch
	maxLabel := 0
	row := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: read csv row %d: %w", row, err)
		}
		if len(record) != m+1 {
			return nil, fmt.Errorf("stream: csv row %d has %d columns, want %d", row, len(record), m+1)
		}
		if row == 0 && !declared && record[m] == kindsSentinel {
			ensureKinds()
			declared = true
			for j := 0; j < m; j++ {
				k, err := parseKind(record[j])
				if err != nil {
					return nil, fmt.Errorf("stream: csv kinds row col %d (%s): %w", j, names[j], err)
				}
				kinds[j] = k
				dicts[j] = levelDict(k)
			}
			continue
		}
		if row == 0 && !declared {
			// Auto-detect: non-numeric first cells mark categorical columns.
			for j := 0; j < m; j++ {
				if _, err := strconv.ParseFloat(record[j], 64); err != nil {
					ensureKinds()
					auto[j] = true
					dicts[j] = make(map[string]int)
				}
			}
		}
		x := make([]float64, m)
		for j := 0; j < m; j++ {
			if kinds != nil && auto[j] {
				code, ok := dicts[j][record[j]]
				if !ok {
					code = len(dicts[j])
					lv := strings.Clone(record[j])
					dicts[j][lv] = code
					autoLv[j] = append(autoLv[j], lv)
				}
				x[j] = float64(code)
				continue
			}
			if kinds != nil && kinds[j].Categorical {
				v, err := cellValue(record[j], kinds[j], dicts[j])
				if err != nil {
					return nil, fmt.Errorf("stream: csv row %d col %d (%s): %w", row, j, names[j], err)
				}
				x[j] = v
				continue
			}
			v, err := strconv.ParseFloat(record[j], 64)
			if err != nil {
				return nil, fmt.Errorf("stream: csv row %d col %d: %w", row, j, err)
			}
			x[j] = v
		}
		y, err := strconv.Atoi(record[m])
		if err != nil {
			return nil, fmt.Errorf("stream: csv row %d class: %w", row, err)
		}
		if y < 0 {
			return nil, fmt.Errorf("stream: csv row %d has negative class %d", row, y)
		}
		if y > maxLabel {
			maxLabel = y
		}
		batch.X = append(batch.X, x)
		batch.Y = append(batch.Y, y)
		row++
	}
	if numClasses <= 0 {
		numClasses = maxLabel + 1
	}
	if numClasses < 2 {
		numClasses = 2
	}
	// Finalise auto-detected columns: cardinality is the observed level
	// count (floor 2, so single-level columns still validate; the unused
	// code simply never occurs).
	hasCat := false
	for j := 0; kinds != nil && j < m; j++ {
		if auto[j] {
			card := len(autoLv[j])
			if card < 2 {
				kinds[j] = Categorical(2)
			} else {
				kinds[j] = CategoricalLevels(autoLv[j]...)
			}
		}
		if kinds[j].Categorical {
			hasCat = true
		}
	}
	if !hasCat {
		kinds = nil
	}
	schema := Schema{NumFeatures: m, NumClasses: numClasses, Name: name, FeatureNames: names, Kinds: kinds}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if err := batch.Validate(schema); err != nil {
		return nil, err
	}
	return NewMemory(schema, batch), nil
}

// CSVOptions configures OpenCSV.
type CSVOptions struct {
	// Name labels the schema; defaults to the file's base name.
	Name string
	// NumClasses is the number of target classes; 0 defaults to 2. A
	// streaming loader cannot infer the class count upfront, so labels at
	// or above this bound are reported as errors naming the line.
	NumClasses int
	// Kinds optionally declares the per-feature kinds, overriding any
	// kinds row in the file. A streaming loader cannot auto-detect
	// categorical columns (the schema is fixed before the data is read),
	// so files without a kinds row are read all-numeric unless Kinds says
	// otherwise.
	Kinds []FeatureKind
}

// CSVStream reads a CSV file lazily, one instance per Next call, without
// materialising the data set. It implements Stream and io.Closer; Reset
// rewinds by seeking the underlying file. Row errors (ragged records,
// unparsable cells, labels outside the class range) name the offending
// line of the file.
type CSVStream struct {
	f        *os.File
	cr       *csv.Reader
	schema   Schema
	dicts    []map[string]int
	skipRows int // header rows to skip after a rewind (header + kinds row)
	err      error
}

// OpenCSV opens path as a lazily-read stream: only the header (and kinds
// row, when present) are consumed at open time; each Next reads one data
// row. The returned stream holds the file open — callers Close it when
// done. See CSVOptions for class-count and kind declaration; WriteCSV
// output round-trips (including level dictionaries via the kinds row).
func OpenCSV(path string, opts CSVOptions) (*CSVStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open csv: %w", err)
	}
	s, err := newCSVStream(f, opts, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func newCSVStream(f *os.File, opts CSVOptions, path string) (*CSVStream, error) {
	cr := csv.NewReader(bufio.NewReader(f))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("stream: %s: read csv header: %w", path, err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("stream: %s: csv needs at least one feature and a class column, got %d columns", path, len(header))
	}
	m := len(header) - 1
	names := make([]string, m)
	for j := 0; j < m; j++ {
		names[j] = strings.Clone(header[j])
	}

	kinds := opts.Kinds
	skipRows := 1
	// A kinds row is consumed even when opts.Kinds overrides it, so the
	// data starts at a known row either way.
	record, err := cr.Read()
	switch {
	case err == io.EOF:
		record = nil
	case err != nil:
		return nil, fmt.Errorf("stream: %s: read csv: %w", path, err)
	}
	if record != nil && len(record) == m+1 && record[m] == kindsSentinel {
		skipRows = 2
		if kinds == nil {
			kinds = make([]FeatureKind, m)
			for j := 0; j < m; j++ {
				k, err := parseKind(record[j])
				if err != nil {
					return nil, fmt.Errorf("stream: %s: csv kinds row col %d (%s): %w", path, j, names[j], err)
				}
				kinds[j] = k
			}
		}
	} else if record != nil {
		// The first data row was consumed while peeking; rewind so Next
		// sees every data row exactly once.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("stream: %s: rewind csv: %w", path, err)
		}
		cr = csv.NewReader(bufio.NewReader(f))
		cr.ReuseRecord = true
		if _, err := cr.Read(); err != nil {
			return nil, fmt.Errorf("stream: %s: re-read csv header: %w", path, err)
		}
	}

	numClasses := opts.NumClasses
	if numClasses < 2 {
		numClasses = 2
	}
	name := opts.Name
	if name == "" {
		name = filepath.Base(path)
	}
	hasCat := false
	for _, k := range kinds {
		if k.Categorical {
			hasCat = true
			break
		}
	}
	if !hasCat {
		kinds = nil
	}
	schema := Schema{NumFeatures: m, NumClasses: numClasses, Name: name, FeatureNames: names, Kinds: kinds}
	if err := schema.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	s := &CSVStream{f: f, cr: cr, schema: schema, skipRows: skipRows}
	if kinds != nil {
		s.dicts = make([]map[string]int, m)
		for j, k := range kinds {
			s.dicts[j] = levelDict(k)
		}
	}
	return s, nil
}

// Schema implements Stream.
func (s *CSVStream) Schema() Schema { return s.schema }

// line returns the 1-based file line of the record field j, for error
// messages that name the offending line.
func (s *CSVStream) line(j int) int {
	line, _ := s.cr.FieldPos(j)
	return line
}

// Next implements Stream: it parses one data row. After an error (other
// than ErrEnd) the stream stays failed — a partially read file must not
// silently continue past a bad row.
func (s *CSVStream) Next() (Instance, error) {
	if s.err != nil {
		return Instance{}, s.err
	}
	record, err := s.cr.Read()
	if err == io.EOF {
		return Instance{}, ErrEnd
	}
	if err != nil {
		// csv.ParseError already names the line (ragged rows included).
		s.err = fmt.Errorf("stream: %s: %w", s.f.Name(), err)
		return Instance{}, s.err
	}
	m := s.schema.NumFeatures
	if len(record) != m+1 {
		s.err = fmt.Errorf("stream: %s: line %d has %d columns, want %d", s.f.Name(), s.line(0), len(record), m+1)
		return Instance{}, s.err
	}
	x := make([]float64, m)
	for j := 0; j < m; j++ {
		if s.schema.IsCategorical(j) {
			v, err := cellValue(record[j], s.schema.Kind(j), s.dicts[j])
			if err != nil {
				s.err = fmt.Errorf("stream: %s: line %d col %d (%s): %w", s.f.Name(), s.line(j), j, s.schema.FeatureName(j), err)
				return Instance{}, s.err
			}
			x[j] = v
			continue
		}
		v, err := strconv.ParseFloat(record[j], 64)
		if err != nil {
			s.err = fmt.Errorf("stream: %s: line %d col %d: %w", s.f.Name(), s.line(j), j, err)
			return Instance{}, s.err
		}
		x[j] = v
	}
	y, err := strconv.Atoi(record[m])
	if err != nil {
		s.err = fmt.Errorf("stream: %s: line %d class: %w", s.f.Name(), s.line(m), err)
		return Instance{}, s.err
	}
	if y < 0 || y >= s.schema.NumClasses {
		s.err = fmt.Errorf("stream: %s: line %d has label %d outside [0,%d)", s.f.Name(), s.line(m), y, s.schema.NumClasses)
		return Instance{}, s.err
	}
	return Instance{X: x, Y: y}, nil
}

// Reset implements Stream by seeking the file back to the first data row.
func (s *CSVStream) Reset() {
	s.err = nil
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		s.err = fmt.Errorf("stream: %s: rewind csv: %w", s.f.Name(), err)
		return
	}
	cr := csv.NewReader(bufio.NewReader(s.f))
	cr.ReuseRecord = true
	for i := 0; i < s.skipRows; i++ {
		if _, err := cr.Read(); err != nil {
			s.err = fmt.Errorf("stream: %s: rewind csv: %w", s.f.Name(), err)
			return
		}
	}
	s.cr = cr
}

// Close releases the underlying file.
func (s *CSVStream) Close() error { return s.f.Close() }
