package stream

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the whole stream to w as CSV with a header row of feature
// names followed by "class". It returns the number of rows written.
func WriteCSV(w io.Writer, s Stream) (int, error) {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	schema := s.Schema()

	header := make([]string, schema.NumFeatures+1)
	for j := 0; j < schema.NumFeatures; j++ {
		header[j] = schema.FeatureName(j)
	}
	header[schema.NumFeatures] = "class"
	if err := cw.Write(header); err != nil {
		return 0, fmt.Errorf("stream: write csv header: %w", err)
	}

	record := make([]string, schema.NumFeatures+1)
	rows := 0
	for {
		inst, err := s.Next()
		if err == ErrEnd {
			break
		}
		if err != nil {
			return rows, err
		}
		for j, v := range inst.X {
			record[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		record[schema.NumFeatures] = strconv.Itoa(inst.Y)
		if err := cw.Write(record); err != nil {
			return rows, fmt.Errorf("stream: write csv row %d: %w", rows, err)
		}
		rows++
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return rows, err
	}
	return rows, bw.Flush()
}

// ReadCSV parses a CSV produced by WriteCSV (header row, numeric features,
// integer class in the last column) into an in-memory stream. numClasses
// may be 0, in which case it is inferred as max(label)+1.
func ReadCSV(r io.Reader, name string, numClasses int) (*Memory, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("stream: read csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("stream: csv needs at least one feature and a class column, got %d columns", len(header))
	}
	m := len(header) - 1
	names := make([]string, m)
	copy(names, header[:m])

	var batch Batch
	maxLabel := 0
	for row := 0; ; row++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: read csv row %d: %w", row, err)
		}
		if len(record) != m+1 {
			return nil, fmt.Errorf("stream: csv row %d has %d columns, want %d", row, len(record), m+1)
		}
		x := make([]float64, m)
		for j := 0; j < m; j++ {
			v, err := strconv.ParseFloat(record[j], 64)
			if err != nil {
				return nil, fmt.Errorf("stream: csv row %d col %d: %w", row, j, err)
			}
			x[j] = v
		}
		y, err := strconv.Atoi(record[m])
		if err != nil {
			return nil, fmt.Errorf("stream: csv row %d class: %w", row, err)
		}
		if y < 0 {
			return nil, fmt.Errorf("stream: csv row %d has negative class %d", row, y)
		}
		if y > maxLabel {
			maxLabel = y
		}
		batch.X = append(batch.X, x)
		batch.Y = append(batch.Y, y)
	}
	if numClasses <= 0 {
		numClasses = maxLabel + 1
	}
	if numClasses < 2 {
		numClasses = 2
	}
	schema := Schema{NumFeatures: m, NumClasses: numClasses, Name: name, FeatureNames: names}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return NewMemory(schema, batch), nil
}
