package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func catSchema() Schema {
	return Schema{
		NumFeatures:  3,
		NumClasses:   2,
		Name:         "cat",
		FeatureNames: []string{"n1", "n2", "color"},
		Kinds: []FeatureKind{
			Numeric(), Numeric(), CategoricalLevels("red", "green", "blue"),
		},
	}
}

func catBatch() Batch {
	return Batch{
		X: [][]float64{{0.1, 0.2, 0}, {0.4, 0.5, 2}, {0.7, 0.8, 1}, {0.9, 0.3, 2}},
		Y: []int{0, 1, 0, 1},
	}
}

// A categorical schema round-trips through CSV with kinds, cardinalities
// and level dictionaries intact, and categorical cells written as level
// names.
func TestCSVCategoricalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rows, err := WriteCSV(&buf, NewMemory(catSchema(), catBatch()))
	if err != nil || rows != 4 {
		t.Fatalf("WriteCSV = %d, %v", rows, err)
	}
	text := buf.String()
	if !strings.Contains(text, kindsSentinel) {
		t.Fatalf("no kinds row in output:\n%s", text)
	}
	if !strings.Contains(text, "red") || !strings.Contains(text, "blue") {
		t.Fatalf("categorical cells not written as level names:\n%s", text)
	}
	back, err := ReadCSV(strings.NewReader(text), "cat", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Schema()
	want := catSchema()
	if !got.SameKinds(want) {
		t.Fatalf("kinds did not round-trip: %+v", got.Kinds)
	}
	if got.Kinds[2].Levels[1] != "green" {
		t.Fatalf("level dictionary lost: %+v", got.Kinds[2].Levels)
	}
	orig := catBatch()
	for i := 0; i < 4; i++ {
		inst, err := back.Next()
		if err != nil {
			t.Fatal(err)
		}
		for j := range inst.X {
			if inst.X[j] != orig.X[i][j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, inst.X[j], orig.X[i][j])
			}
		}
	}
}

// Feature names survive the round trip exactly, including names with
// commas, quotes and spaces (encoding/csv quotes them); level names with
// '|' and '%' survive the kinds-row escaping.
func TestCSVFeatureNamesExact(t *testing.T) {
	schema := Schema{
		NumFeatures:  2,
		NumClasses:   2,
		Name:         "names",
		FeatureNames: []string{`amount, in "USD"`, "strange|level %name"},
		Kinds:        []FeatureKind{Numeric(), CategoricalLevels("a|b", "c%7Cd", "plain")},
	}
	b := Batch{X: [][]float64{{1.5, 0}, {2.5, 1}, {3.5, 2}}, Y: []int{0, 1, 0}}
	var buf bytes.Buffer
	if _, err := WriteCSV(&buf, NewMemory(schema, b)); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), "names", 2)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Schema()
	for j, name := range schema.FeatureNames {
		if got.FeatureNames[j] != name {
			t.Fatalf("feature name %d: %q != %q", j, got.FeatureNames[j], name)
		}
	}
	for i, lv := range schema.Kinds[1].Levels {
		if got.Kinds[1].Levels[i] != lv {
			t.Fatalf("level %d: %q != %q", i, got.Kinds[1].Levels[i], lv)
		}
	}
}

// Columns whose first cell is not numeric are auto-detected as
// categorical with first-appearance codes.
func TestReadCSVAutoDetect(t *testing.T) {
	in := "size,label,class\nsmall,x,0\nlarge,y,1\nsmall,z,0\n"
	m, err := ReadCSV(strings.NewReader(in), "auto", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Schema()
	if !s.IsCategorical(0) || !s.IsCategorical(1) {
		t.Fatalf("auto-detection missed a categorical column: %+v", s.Kinds)
	}
	if s.Cardinality(0) != 2 || s.Cardinality(1) != 3 {
		t.Fatalf("cardinalities = %d, %d", s.Cardinality(0), s.Cardinality(1))
	}
	inst, _ := m.Next()
	if inst.X[0] != 0 { // "small" is the first-appearing level
		t.Fatalf("first level code = %v, want 0", inst.X[0])
	}
}

// A declared categorical column rejects unknown level names and
// out-of-range codes, naming the row and column.
func TestReadCSVRejectsBadLevels(t *testing.T) {
	in := "color,class\ncat:2:red|green,#kinds\nred,0\npurple,1\n"
	_, err := ReadCSV(strings.NewReader(in), "bad", 2)
	if err == nil || !strings.Contains(err.Error(), "purple") {
		t.Fatalf("unknown level not reported: %v", err)
	}
	in = "color,class\ncat:2,#kinds\n0,0\n7,1\n"
	_, err = ReadCSV(strings.NewReader(in), "bad", 2)
	if err == nil || !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("out-of-range code not reported with its row: %v", err)
	}
}

func writeTempCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// OpenCSV reads lazily, honours the kinds row, replays after Reset and
// round-trips WriteCSV output.
func TestOpenCSVStreaming(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteCSV(&buf, NewMemory(catSchema(), catBatch())); err != nil {
		t.Fatal(err)
	}
	path := writeTempCSV(t, buf.String())
	s, err := OpenCSV(path, CSVOptions{NumClasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Schema().SameKinds(catSchema()) {
		t.Fatalf("kinds row not honoured: %+v", s.Schema().Kinds)
	}
	orig := catBatch()
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4; i++ {
			inst, err := s.Next()
			if err != nil {
				t.Fatalf("pass %d row %d: %v", pass, i, err)
			}
			if inst.Y != orig.Y[i] || inst.X[2] != orig.X[i][2] {
				t.Fatalf("pass %d row %d: got (%v, %d)", pass, i, inst.X, inst.Y)
			}
		}
		if _, err := s.Next(); !errors.Is(err, ErrEnd) {
			t.Fatalf("pass %d: want ErrEnd, got %v", pass, err)
		}
		s.Reset()
	}
}

// OpenCSV without a kinds row reads all-numeric; declared CSVOptions.Kinds
// overrides.
func TestOpenCSVDeclaredKinds(t *testing.T) {
	path := writeTempCSV(t, "a,b,class\n1,0,0\n2,1,1\n")
	s, err := OpenCSV(path, CSVOptions{NumClasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema().HasCategorical() {
		t.Fatal("numeric file detected as categorical")
	}
	s.Close()

	s, err = OpenCSV(path, CSVOptions{
		NumClasses: 2,
		Kinds:      []FeatureKind{Numeric(), Categorical(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Schema().IsCategorical(1) {
		t.Fatal("declared kinds ignored")
	}
	if inst, err := s.Next(); err != nil || inst.X[0] != 1 {
		t.Fatalf("first data row misread: %v, %v (the peeked row must be replayed)", inst, err)
	}
}

// Streaming errors name the offending file line: ragged rows, bad
// labels, bad floats and out-of-range codes.
func TestOpenCSVLineErrors(t *testing.T) {
	cases := []struct {
		name, content, wantSub string
		opts                   CSVOptions
	}{
		{
			name:    "ragged",
			content: "a,b,class\n1,2,0\n3,1\n",
			wantSub: "line 3",
			opts:    CSVOptions{NumClasses: 2},
		},
		{
			name:    "bad label",
			content: "a,b,class\n1,2,0\n1,2,9\n",
			wantSub: "line 3",
			opts:    CSVOptions{NumClasses: 2},
		},
		{
			name:    "bad float",
			content: "a,b,class\n1,2,0\n1,huh,1\n",
			wantSub: "line 3",
			opts:    CSVOptions{NumClasses: 2},
		},
		{
			name:    "bad code",
			content: "color,class\ncat:2,#kinds\n0,0\n5,1\n",
			wantSub: "line 4",
			opts:    CSVOptions{NumClasses: 2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempCSV(t, tc.content)
			s, err := OpenCSV(path, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var last error
			for {
				_, err := s.Next()
				if err != nil {
					last = err
					break
				}
			}
			if errors.Is(last, ErrEnd) {
				t.Fatal("bad row was accepted")
			}
			if !strings.Contains(last.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name %q", last, tc.wantSub)
			}
			// Errors are sticky.
			if _, err := s.Next(); err == nil {
				t.Fatal("stream continued past a bad row")
			}
		})
	}
}
