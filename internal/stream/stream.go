// Package stream defines the data model shared by every learner in this
// repository: single instances, batches, stream schemas, and the Stream
// interface implemented by the synthetic generators, surrogate data sets
// and in-memory replays. It also provides CSV encoding and decoding so
// streams can be materialised to disk and replayed.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// FeatureKind describes one feature column: numeric (the zero value) or
// categorical with a fixed number of levels. Categorical features travel
// through batches as float64 level codes 0..Cardinality-1 — stable small
// integers, not measurements — so learners that honour the kind can split
// by equality or level subsets instead of imposing an arbitrary ordering
// on the codes. The zero value is the numeric kind, which keeps
// pre-existing all-numeric schemas (Kinds == nil) byte-compatible.
type FeatureKind struct {
	// Categorical marks the feature as categorical. False is numeric.
	Categorical bool
	// Cardinality is the number of distinct levels (>= 2) when
	// Categorical; it must be 0 for numeric features.
	Cardinality int
	// Levels optionally names the levels for display and CSV round-trips;
	// when non-nil its length must equal Cardinality. Level i is encoded
	// as the float64 code i.
	Levels []string
}

// Numeric returns the numeric feature kind (the zero value, spelled out).
func Numeric() FeatureKind { return FeatureKind{} }

// Categorical returns a categorical kind with the given number of levels.
func Categorical(cardinality int) FeatureKind {
	return FeatureKind{Categorical: true, Cardinality: cardinality}
}

// CategoricalLevels returns a categorical kind whose levels are named;
// level i encodes as the float64 code i.
func CategoricalLevels(levels ...string) FeatureKind {
	return FeatureKind{Categorical: true, Cardinality: len(levels), Levels: levels}
}

// Validate reports whether the kind is internally consistent.
func (k FeatureKind) Validate() error {
	if !k.Categorical {
		if k.Cardinality != 0 || k.Levels != nil {
			return errors.New("numeric kind must have zero cardinality and no levels")
		}
		return nil
	}
	if k.Cardinality < 2 {
		return fmt.Errorf("categorical kind has cardinality %d, need >= 2", k.Cardinality)
	}
	if k.Levels != nil && len(k.Levels) != k.Cardinality {
		return fmt.Errorf("categorical kind names %d of %d levels", len(k.Levels), k.Cardinality)
	}
	return nil
}

// Schema describes a classification stream: the feature dimensionality,
// the number of target classes and, optionally, per-feature kinds.
// Following the paper's preprocessing (Section VI-B), the default is
// all-numeric features normalised to [0, 1]; Kinds lets a stream declare
// categorical columns instead of factorising them to arbitrary numeric
// codes, so learners can use native equality/subset splits.
type Schema struct {
	// NumFeatures is the number of input features m.
	NumFeatures int
	// NumClasses is the number of target classes c (>= 2).
	NumClasses int
	// Name identifies the stream in reports (e.g. "SEA", "Electricity*").
	Name string
	// FeatureNames optionally labels the features for interpretability
	// output. When nil, callers should synthesise x0..x{m-1}.
	FeatureNames []string
	// Kinds optionally declares per-feature kinds. Nil means all numeric
	// (the historical schema); when non-nil its length must equal
	// NumFeatures. Checkpoint envelopes written before kinds existed
	// decode with Kinds == nil and stay loadable.
	Kinds []FeatureKind
}

// Validate reports whether the schema is internally consistent.
func (s Schema) Validate() error {
	if s.NumFeatures < 1 {
		return fmt.Errorf("stream: schema %q has %d features, need >= 1", s.Name, s.NumFeatures)
	}
	if s.NumClasses < 2 {
		return fmt.Errorf("stream: schema %q has %d classes, need >= 2", s.Name, s.NumClasses)
	}
	if s.FeatureNames != nil && len(s.FeatureNames) != s.NumFeatures {
		return fmt.Errorf("stream: schema %q names %d of %d features", s.Name, len(s.FeatureNames), s.NumFeatures)
	}
	if s.Kinds != nil {
		if len(s.Kinds) != s.NumFeatures {
			return fmt.Errorf("stream: schema %q declares kinds for %d of %d features", s.Name, len(s.Kinds), s.NumFeatures)
		}
		for j, k := range s.Kinds {
			if err := k.Validate(); err != nil {
				return fmt.Errorf("stream: schema %q feature %d (%s): %w", s.Name, j, s.FeatureName(j), err)
			}
		}
	}
	return nil
}

// FeatureName returns the display name of feature j.
func (s Schema) FeatureName(j int) string {
	if s.FeatureNames != nil && j >= 0 && j < len(s.FeatureNames) {
		return s.FeatureNames[j]
	}
	return fmt.Sprintf("x%d", j)
}

// Kind returns the kind of feature j; features outside a declared Kinds
// slice (including every feature of a nil-Kinds schema) are numeric.
func (s Schema) Kind(j int) FeatureKind {
	if s.Kinds != nil && j >= 0 && j < len(s.Kinds) {
		return s.Kinds[j]
	}
	return FeatureKind{}
}

// IsCategorical reports whether feature j is categorical.
func (s Schema) IsCategorical(j int) bool { return s.Kind(j).Categorical }

// Cardinality returns the number of levels of categorical feature j, or 0
// for numeric features.
func (s Schema) Cardinality(j int) int { return s.Kind(j).Cardinality }

// HasCategorical reports whether any feature is categorical.
func (s Schema) HasCategorical() bool {
	for _, k := range s.Kinds {
		if k.Categorical {
			return true
		}
	}
	return false
}

// SameKinds reports whether two schemas agree on every feature's kind
// and cardinality. Level names are display metadata and not compared.
func (s Schema) SameKinds(o Schema) bool {
	if s.NumFeatures != o.NumFeatures {
		return false
	}
	for j := 0; j < s.NumFeatures; j++ {
		a, b := s.Kind(j), o.Kind(j)
		if a.Categorical != b.Categorical || a.Cardinality != b.Cardinality {
			return false
		}
	}
	return true
}

// LevelName renders level code of categorical feature j for display: the
// declared level name when one exists, otherwise the bare code.
func (s Schema) LevelName(j, code int) string {
	k := s.Kind(j)
	if k.Levels != nil && code >= 0 && code < len(k.Levels) {
		return k.Levels[code]
	}
	return fmt.Sprintf("%d", code)
}

// Instance is one labelled observation.
type Instance struct {
	X []float64
	Y int
}

// Batch is a column-free, row-major mini-batch: X[i] is the feature vector
// of the i-th row and Y[i] its label. The prequential evaluator feeds
// batches of 0.1% of the stream (Section VI-A); instance-incremental
// learning uses batches of size 1.
type Batch struct {
	X [][]float64
	Y []int
}

// Len returns the number of rows.
func (b Batch) Len() int { return len(b.Y) }

// Slice returns rows [lo, hi) without copying the underlying data.
func (b Batch) Slice(lo, hi int) Batch {
	return Batch{X: b.X[lo:hi], Y: b.Y[lo:hi]}
}

// CheckCode validates one categorical cell value against a declared
// cardinality: the code must be a finite integer in [0, cardinality).
// The error names the defect precisely; callers prefix row/column.
func CheckCode(v float64, cardinality int) error {
	if v != math.Trunc(v) {
		return fmt.Errorf("categorical code %v is not an integer", v)
	}
	if v < 0 || v >= float64(cardinality) {
		return fmt.Errorf("categorical code %v outside [0,%d)", v, cardinality)
	}
	return nil
}

// Validate checks rectangular shape, label range and categorical code
// range against the schema. Errors name the first offending row (and
// column, for cell-level defects) so a bad batch is locatable.
func (b Batch) Validate(s Schema) error {
	if len(b.X) != len(b.Y) {
		return fmt.Errorf("stream: batch has %d feature rows but %d labels", len(b.X), len(b.Y))
	}
	for i, row := range b.X {
		if len(row) != s.NumFeatures {
			return fmt.Errorf("stream: row %d has %d features, schema wants %d (first offending row)", i, len(row), s.NumFeatures)
		}
		if b.Y[i] < 0 || b.Y[i] >= s.NumClasses {
			return fmt.Errorf("stream: row %d has label %d outside [0,%d) (first offending row)", i, b.Y[i], s.NumClasses)
		}
		for j, k := range s.Kinds {
			if !k.Categorical {
				continue
			}
			if err := CheckCode(row[j], k.Cardinality); err != nil {
				return fmt.Errorf("stream: row %d column %d (%s): %w", i, j, s.FeatureName(j), err)
			}
		}
	}
	return nil
}

// ErrEnd signals stream exhaustion from Stream.Next.
var ErrEnd = errors.New("stream: end of stream")

// Stream produces labelled instances in a fixed order. Implementations are
// not safe for concurrent use; the evaluator drives them sequentially, as
// prequential evaluation requires (Section VI-A).
type Stream interface {
	// Schema describes the produced instances.
	Schema() Schema
	// Next returns the next instance or ErrEnd when exhausted. The returned
	// feature slice must not be retained by the stream (callers own it).
	Next() (Instance, error)
	// Reset rewinds the stream to its beginning, replaying the identical
	// sequence (same seed).
	Reset()
}

// Sized is implemented by streams with a known finite length.
type Sized interface {
	// Len returns the total number of instances the stream will produce.
	Len() int
}

// ContextStream is optionally implemented by streams whose production can
// block (network taps, queues, rate-limited replays): NextContext must
// honour cancellation. Purely computational streams need not implement
// it — NextWithContext checks the context for them.
type ContextStream interface {
	Stream
	// NextContext is Next with cancellation: it returns ctx.Err() as soon
	// as the context is done.
	NextContext(ctx context.Context) (Instance, error)
}

// NextWithContext draws one instance, honouring cancellation: it returns
// ctx.Err() when the context is done, delegates to NextContext when the
// stream supports it, and falls back to plain Next otherwise.
func NextWithContext(ctx context.Context, s Stream) (Instance, error) {
	if err := ctx.Err(); err != nil {
		return Instance{}, err
	}
	if cs, ok := s.(ContextStream); ok {
		return cs.NextContext(ctx)
	}
	return s.Next()
}

// NextBatch draws up to n instances from s into a fresh batch. It returns
// ErrEnd only when no instance at all could be drawn.
func NextBatch(s Stream, n int) (Batch, error) {
	return NextBatchContext(context.Background(), s, n)
}

// NextBatchContext is NextBatch with cancellation: the context is checked
// before every instance, and its error aborts the batch immediately (the
// partial batch is dropped — a cancelled run must not train on it).
func NextBatchContext(ctx context.Context, s Stream, n int) (Batch, error) {
	b := Batch{X: make([][]float64, 0, n), Y: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		inst, err := NextWithContext(ctx, s)
		if err != nil {
			if errors.Is(err, ErrEnd) {
				break
			}
			return Batch{}, err
		}
		b.X = append(b.X, inst.X)
		b.Y = append(b.Y, inst.Y)
	}
	if b.Len() == 0 {
		return Batch{}, ErrEnd
	}
	return b, nil
}

// Take materialises up to n instances into memory.
func Take(s Stream, n int) Batch {
	b, err := NextBatch(s, n)
	if err != nil {
		return Batch{}
	}
	return b
}

// Memory is an in-memory stream replaying a fixed batch. It implements
// Stream and Sized.
type Memory struct {
	schema Schema
	data   Batch
	pos    int
}

// NewMemory wraps data in a replayable stream. The batch is not copied.
func NewMemory(schema Schema, data Batch) *Memory {
	return &Memory{schema: schema, data: data}
}

// Schema implements Stream.
func (m *Memory) Schema() Schema { return m.schema }

// Len implements Sized.
func (m *Memory) Len() int { return m.data.Len() }

// Next implements Stream. The returned feature slice is a copy, so callers
// may mutate it freely.
func (m *Memory) Next() (Instance, error) {
	if m.pos >= m.data.Len() {
		return Instance{}, ErrEnd
	}
	x := make([]float64, len(m.data.X[m.pos]))
	copy(x, m.data.X[m.pos])
	inst := Instance{X: x, Y: m.data.Y[m.pos]}
	m.pos++
	return inst, nil
}

// Reset implements Stream.
func (m *Memory) Reset() { m.pos = 0 }

// Limit wraps a stream and stops it after n instances; it is how the
// evaluation harness scales the Table I workloads down for CI-sized runs.
type Limit struct {
	inner Stream
	n     int
	done  int
}

// NewLimit returns a stream producing at most n instances of inner.
func NewLimit(inner Stream, n int) *Limit { return &Limit{inner: inner, n: n} }

// Schema implements Stream.
func (l *Limit) Schema() Schema { return l.inner.Schema() }

// Len implements Sized.
func (l *Limit) Len() int {
	if s, ok := l.inner.(Sized); ok && s.Len() < l.n {
		return s.Len()
	}
	return l.n
}

// Next implements Stream.
func (l *Limit) Next() (Instance, error) {
	if l.done >= l.n {
		return Instance{}, ErrEnd
	}
	inst, err := l.inner.Next()
	if err != nil {
		return Instance{}, err
	}
	l.done++
	return inst, nil
}

// Reset implements Stream.
func (l *Limit) Reset() {
	l.inner.Reset()
	l.done = 0
}
