package model

import "testing"

// The counting rules validated against actual paper table entries.
func TestTreeComplexityPaperExamples(t *testing.T) {
	// Poker/DMT (Table III/IV): root-only softmax tree, c=9, m=10:
	// 9 splits, (9-1)*10 = 80 parameters.
	comp := TreeComplexity(0, 1, 0, LeafModel, 10, 9)
	if comp.Splits != 9 {
		t.Fatalf("Poker-shape splits = %v, want 9", comp.Splits)
	}
	if comp.Params != 80 {
		t.Fatalf("Poker-shape params = %v, want 80", comp.Params)
	}

	// SEA/FIMT-DD (Table III/IV): a root-only binary model tree with m=3
	// counts 1 split and 3 parameters (paper: 1.0 splits, 3 params).
	comp = TreeComplexity(0, 1, 0, LeafModel, 3, 2)
	if comp.Splits != 1 || comp.Params != 3 {
		t.Fatalf("SEA-shape = %+v, want splits 1, params 3", comp)
	}
}

func TestTreeComplexityMajority(t *testing.T) {
	// MC tree: 5 inner, 6 leaves -> 5 splits, 5+6 params.
	comp := TreeComplexity(5, 6, 3, LeafMajority, 10, 2)
	if comp.Splits != 5 {
		t.Fatalf("MC splits = %v", comp.Splits)
	}
	if comp.Params != 11 {
		t.Fatalf("MC params = %v", comp.Params)
	}
	if comp.Depth != 3 || comp.Inner != 5 || comp.Leaves != 6 {
		t.Fatalf("raw counts lost: %+v", comp)
	}
}

func TestTreeComplexityBinaryModelLeaves(t *testing.T) {
	// 2 inner, 3 leaves, m=8, binary: splits 2+3, params 2 + 3*8.
	comp := TreeComplexity(2, 3, 2, LeafModel, 8, 2)
	if comp.Splits != 5 {
		t.Fatalf("splits = %v, want 5", comp.Splits)
	}
	if comp.Params != 26 {
		t.Fatalf("params = %v, want 26", comp.Params)
	}
}

func TestTreeComplexityMulticlassModelLeaves(t *testing.T) {
	// 1 inner, 2 leaves, m=5, c=4: splits 1 + 2*4, params 1 + 2*(3*5).
	comp := TreeComplexity(1, 2, 1, LeafModel, 5, 4)
	if comp.Splits != 9 {
		t.Fatalf("splits = %v, want 9", comp.Splits)
	}
	if comp.Params != 31 {
		t.Fatalf("params = %v, want 31", comp.Params)
	}
}

func TestComplexityAdd(t *testing.T) {
	a := Complexity{Splits: 3, Params: 10, Inner: 1, Leaves: 2, Depth: 2}
	b := Complexity{Splits: 5, Params: 20, Inner: 2, Leaves: 3, Depth: 4}
	sum := a.Add(b)
	if sum.Splits != 8 || sum.Params != 30 || sum.Inner != 3 || sum.Leaves != 5 {
		t.Fatalf("Add = %+v", sum)
	}
	if sum.Depth != 4 {
		t.Fatalf("Add depth = %d, want max 4", sum.Depth)
	}
	// Commutative on depth in both directions.
	if b.Add(a).Depth != 4 {
		t.Fatal("Add depth asymmetric")
	}
}
