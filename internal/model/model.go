// Package model defines the classifier contract shared by every learner
// in the repository and the complexity accounting of the paper's
// evaluation (Section VI-D2).
package model

import "repro/internal/stream"

// Classifier is a batch-incremental online classifier. The prequential
// evaluator calls Predict on every row of a batch first (test) and then
// Learn on the same batch (train).
type Classifier interface {
	// Learn updates the model with a labelled batch.
	Learn(b stream.Batch)
	// Predict returns the predicted class for one instance.
	Predict(x []float64) int
	// Complexity reports the current size of the model using the paper's
	// counting rules.
	Complexity() Complexity
	// Name identifies the model in reports (e.g. "DMT", "VFDT (MC)").
	Name() string
}

// ProbabilisticClassifier is implemented by models that expose class
// probabilities.
type ProbabilisticClassifier interface {
	Classifier
	// Proba writes class probabilities for x into out (length c) and
	// returns it; nil out allocates.
	Proba(x []float64, out []float64) []float64
}

// LeafKind describes what a tree keeps in its leaves, which determines the
// paper's split/parameter counting.
type LeafKind int

const (
	// LeafMajority is a majority-class leaf: 0 extra splits, 1 parameter.
	LeafMajority LeafKind = iota
	// LeafModel is a predictive leaf (linear or Naive Bayes): 1 extra
	// split for binary targets, c for multiclass; m parameters for binary,
	// (c-1)*m for multiclass.
	LeafModel
)

// Complexity is the interpretability accounting of Section VI-D2.
type Complexity struct {
	// Splits is the paper's "No. of Splits": one per inner node, plus per
	// leaf 0 (majority), 1 (binary model leaf) or c (multiclass model
	// leaf).
	Splits float64
	// Params is the paper's "No. of Parameters": one per inner node (the
	// split value), plus per leaf 1 (majority), m (binary model leaf) or
	// (c-1)*m (multiclass model leaf).
	Params float64
	// Inner and Leaves are the raw node counts; Depth is the tree height
	// (a single leaf has depth 0). Ensembles report sums over members and
	// the maximum depth.
	Inner  int
	Leaves int
	Depth  int
}

// TreeComplexity computes the paper's counting for a tree with the given
// node counts and leaf kind over a stream with m features and c classes.
func TreeComplexity(inner, leaves, depth int, kind LeafKind, m, c int) Complexity {
	comp := Complexity{Inner: inner, Leaves: leaves, Depth: depth}
	leafSplits, leafParams := 0.0, 1.0
	if kind == LeafModel {
		if c <= 2 {
			leafSplits, leafParams = 1, float64(m)
		} else {
			leafSplits, leafParams = float64(c), float64((c-1)*m)
		}
	}
	comp.Splits = float64(inner) + float64(leaves)*leafSplits
	comp.Params = float64(inner) + float64(leaves)*leafParams
	return comp
}

// Add combines two complexity reports (for ensembles): counts and split /
// parameter totals add, depth takes the maximum.
func (c Complexity) Add(other Complexity) Complexity {
	out := Complexity{
		Splits: c.Splits + other.Splits,
		Params: c.Params + other.Params,
		Inner:  c.Inner + other.Inner,
		Leaves: c.Leaves + other.Leaves,
		Depth:  c.Depth,
	}
	if other.Depth > out.Depth {
		out.Depth = other.Depth
	}
	return out
}
