package model

import "io"

// Checkpointer is the persistence contract every registered learner
// implements: SaveState streams the learner's complete training state —
// structure, sufficient statistics, detector windows, RNG position —
// as an opaque model-private payload. The matching restore path is a
// LoadState factory registered per model name (registry.RegisterLoader),
// so the persist envelope can reconstruct any model from its name alone,
// exactly as registry.New does for construction.
//
// The contract is strict: a save → load → continue run must be
// byte-identical in predictions and complexity to an uninterrupted run.
// SaveState is called under the same single-writer discipline as Learn.
type Checkpointer interface {
	Classifier
	// SaveState writes the model-private checkpoint payload. Callers
	// normally go through persist.Save, which wraps the payload in the
	// self-describing versioned envelope.
	SaveState(w io.Writer) error
}

// StructureVersioner is implemented by learners whose prediction
// function only changes shape on discrete structural events (splits,
// prunes, replacements, member swaps). StructureVersion returns a
// counter that increments on every such event; it never decreases.
// The serving layer's publish-on-change mode republishes its snapshot
// only when this version moves, instead of after every Learn.
//
// Structureless learners (GLM, Naive Bayes) deliberately do not
// implement it: their parameters drift every batch, so cadence-based
// publishing is the only faithful mode for them.
type StructureVersioner interface {
	StructureVersion() uint64
}
