package model

// Copy-on-write serving snapshots. CowTree is a pointer-linked
// alternative to the flat TreeSnapshot: each SnapNode is immutable after
// construction, so two consecutive published snapshots may share every
// subtree that did not change between publishes. A live tree keeps a
// per-node cache pointer to the SnapNode that froze that subtree and
// clears it along every learn-visited path; Snapshot() then re-freezes
// only cache misses, making publish cost O(changed path) instead of
// O(tree) — the structural-sharing counterpart of the paper's local
// split/replace/prune updates.

// SnapNode is one immutable node of a CowTree. Inner nodes carry the
// binary test (RouteSplit over Kind/Threshold/Mask) and two non-nil
// children; leaves carry a frozen predictor. The subtree counts are
// frozen at construction so a snapshot's Complexity never walks the
// shared structure.
type SnapNode struct {
	Feature   int
	Threshold float64
	// Kind selects the routing test; the zero value is the numeric
	// threshold test. Mask is the level bitset of a SplitSubset test.
	Kind SplitKind
	Mask uint64
	// Left and Right are non-nil exactly at inner nodes.
	Left, Right *SnapNode
	// Leaf is non-nil exactly at leaves.
	Leaf LeafScorer
	// Inner, Leaves and Depth describe the subtree rooted here; a leaf
	// is (0, 1, 0).
	Inner, Leaves, Depth int
}

// FreezeLeaf freezes one leaf predictor. The caller passes an immutable
// clone — the SnapNode retains it forever.
func FreezeLeaf(leaf LeafScorer) *SnapNode {
	return &SnapNode{Leaf: leaf, Leaves: 1}
}

// FreezeInner freezes one threshold-split inner node over two
// already-frozen children.
func FreezeInner(feature int, threshold float64, left, right *SnapNode) *SnapNode {
	return FreezeInnerSplit(feature, SplitThreshold, threshold, 0, left, right)
}

// FreezeInnerSplit freezes one inner node of any split kind over two
// already-frozen children.
func FreezeInnerSplit(feature int, kind SplitKind, threshold float64, mask uint64, left, right *SnapNode) *SnapNode {
	d := left.Depth
	if right.Depth > d {
		d = right.Depth
	}
	return &SnapNode{
		Feature:   feature,
		Threshold: threshold,
		Kind:      kind,
		Mask:      mask,
		Left:      left,
		Right:     right,
		Inner:     left.Inner + right.Inner + 1,
		Leaves:    left.Leaves + right.Leaves,
		Depth:     d + 1,
	}
}

// CowTree is an immutable serving snapshot built from shared SnapNodes.
// It implements Snapshot and ProbaSnapshot exactly like TreeSnapshot;
// only the construction differs.
type CowTree struct {
	ModelName string
	Comp      Complexity
	Root      *SnapNode
	// NonFiniteLeft routes NaN/±Inf feature values to the left child
	// (see TreeSnapshot.NonFiniteLeft).
	NonFiniteLeft bool
}

// LeafFor routes x to its frozen leaf predictor.
func (t *CowTree) LeafFor(x []float64) LeafScorer {
	n := t.Root
	for n.Leaf == nil {
		if RouteSplit(x[n.Feature], n.Kind, n.Threshold, n.Mask, t.NonFiniteLeft) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Leaf
}

// Predict implements Snapshot.
func (t *CowTree) Predict(x []float64) int { return t.LeafFor(x).Predict(x) }

// Proba implements ProbaSnapshot.
func (t *CowTree) Proba(x []float64, out []float64) []float64 {
	return t.LeafFor(x).Proba(x, out)
}

// Complexity implements Snapshot with the complexity at capture time.
func (t *CowTree) Complexity() Complexity { return t.Comp }

// Name implements Snapshot.
func (t *CowTree) Name() string { return t.ModelName }
