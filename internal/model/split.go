package model

import "math/bits"

// SplitKind discriminates the binary tests a tree node can carry. The
// zero value is the historical threshold test, so checkpoint documents
// written before categorical splits existed decode to SplitThreshold and
// stay valid.
type SplitKind uint8

const (
	// SplitThreshold routes left when x[Feature] <= Threshold (the
	// numeric test every tree used before categorical kinds existed).
	SplitThreshold SplitKind = iota
	// SplitEquality routes left when x[Feature] equals the level code
	// stored in Threshold. It works for any cardinality; unseen level
	// codes route right.
	SplitEquality
	// SplitSubset routes left when the integer level code x[Feature] is a
	// member of the Mask bitset (bit i = level i). Only valid for
	// categorical features with cardinality <= 64; codes outside [0, 64)
	// — including unseen levels — route right.
	SplitSubset
)

// String renders the kind for diagnostics.
func (k SplitKind) String() string {
	switch k {
	case SplitThreshold:
		return "threshold"
	case SplitEquality:
		return "equality"
	case SplitSubset:
		return "subset"
	}
	return "unknown"
}

// Valid reports whether k is a known split kind.
func (k SplitKind) Valid() bool { return k <= SplitSubset }

// RouteSplit is the one routing predicate shared by every live tree and
// every snapshot once categorical splits exist: it generalises RouteLeft
// to the three split kinds. Non-finite feature values route left exactly
// when nonFiniteLeft is set, for every kind, so a tree's deterministic
// NaN rule is preserved across split kinds. For categorical tests,
// level codes the split has no opinion about — unseen levels, codes >=
// 64 under a subset mask — route right, deterministically.
func RouteSplit(v float64, kind SplitKind, threshold float64, mask uint64, nonFiniteLeft bool) bool {
	if v-v != 0 { // non-finite (NaN or ±Inf), branchless check
		if kind == SplitThreshold {
			return RouteLeft(v, threshold, nonFiniteLeft)
		}
		return nonFiniteLeft
	}
	switch kind {
	case SplitEquality:
		return v == threshold
	case SplitSubset:
		if v < 0 || v >= 64 || float64(uint64(v)) != v {
			return false
		}
		return mask&(1<<uint64(v)) != 0
	default:
		return v <= threshold
	}
}

// MaskLevels returns the level codes set in a subset mask, for rendering
// and tests.
func MaskLevels(mask uint64) []int {
	out := make([]int, 0, bits.OnesCount64(mask))
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &^= 1 << uint(i)
	}
	return out
}
