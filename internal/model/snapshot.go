package model

// Serving snapshots: every registered learner can export an immutable
// copy of its current prediction function, which the lock-free
// SnapshotScorer publishes through an atomic pointer. A snapshot shares
// no mutable state with the learner that produced it, so any number of
// goroutines may serve reads from it while the live model keeps
// training — the single-machine analogue of the partitioned serving in
// VHT-style distributed stream learners.

// LeafScorer is the prediction contract of one snapshot leaf. The GLM
// simple models, the Hoeffding NodeStats serving clones and the Naive
// Bayes model all satisfy it.
type LeafScorer interface {
	// Predict returns the most probable class for x.
	Predict(x []float64) int
	// Proba writes class probabilities for x into out and returns it; a
	// nil out allocates.
	Proba(x []float64, out []float64) []float64
}

// Snapshot is an immutable serving view of a classifier at one point of
// its training: reads only, safe for unbounded concurrency, frozen at
// the publish step (Complexity reports the state at capture time).
type Snapshot interface {
	Predict(x []float64) int
	Complexity() Complexity
	Name() string
}

// ProbaSnapshot is a Snapshot that also exposes class probabilities.
type ProbaSnapshot interface {
	Snapshot
	Proba(x []float64, out []float64) []float64
}

// Snapshotter is implemented by learners that can export a serving
// snapshot. Snapshot must deep-copy every piece of state its reads
// touch; it is called under the learner's single-writer lock, so it may
// read freely but must not retain references to mutable state.
type Snapshotter interface {
	Snapshot() Snapshot
}

// SnapshotNode is one node of a TreeSnapshot: an inner node carries the
// binary test (RouteSplit over Kind/Threshold/Mask; the zero Kind is the
// numeric x[Feature] <= Threshold test), a leaf carries its frozen
// predictor.
type SnapshotNode struct {
	Feature   int
	Threshold float64
	Kind      SplitKind
	Mask      uint64
	// Left and Right index into TreeSnapshot.Nodes; -1 marks a leaf.
	Left, Right int32
	// Leaf is non-nil exactly at leaves.
	Leaf LeafScorer
}

// TreeSnapshot is the shared serving snapshot of every tree learner in
// the repository: a flat node array (children precede parents; Root is
// the entry point) with frozen leaf predictors. All tree learners share
// the same routing rule, so one implementation serves DMT, FIMT-DD and
// the whole Hoeffding family.
type TreeSnapshot struct {
	ModelName string
	Comp      Complexity
	Nodes     []SnapshotNode
	Root      int32
	// NonFiniteLeft routes NaN/±Inf feature values to the left child
	// (FIMT-DD's deterministic non-finite rule). When false, the plain
	// `v <= threshold` comparison decides (NaN and +Inf route right).
	NonFiniteLeft bool
}

// Add appends a node and returns its index, for bottom-up (children
// first) construction.
func (t *TreeSnapshot) Add(n SnapshotNode) int32 {
	t.Nodes = append(t.Nodes, n)
	return int32(len(t.Nodes) - 1)
}

// AddTree flattens a live tree rooted at n into t and returns the root
// index — the one snapshot-construction implementation shared by every
// tree learner. describe maps one live node to its snapshot node: a
// non-nil Leaf marks a leaf (children are ignored); otherwise Feature
// and Threshold describe the split and left/right are recursed into.
func AddTree[N any](t *TreeSnapshot, n N, describe func(N) (node SnapshotNode, left, right N)) int32 {
	node, left, right := describe(n)
	if node.Leaf != nil {
		node.Left, node.Right = -1, -1
		return t.Add(node)
	}
	node.Left = AddTree(t, left, describe)
	node.Right = AddTree(t, right, describe)
	return t.Add(node)
}

// RouteLeft is the one routing predicate shared by the live trees and
// their snapshots: feature value v goes left when v <= threshold, and —
// with nonFiniteLeft (FIMT-DD's deterministic rule) — also when v is
// NaN or ±Inf (v-v != 0 exactly for non-finite v). Live and snapshot
// routing must never diverge, so both call this.
func RouteLeft(v, threshold float64, nonFiniteLeft bool) bool {
	return v <= threshold || (nonFiniteLeft && v-v != 0)
}

// LeafFor routes x to its frozen leaf predictor.
func (t *TreeSnapshot) LeafFor(x []float64) LeafScorer {
	i := t.Root
	for {
		n := &t.Nodes[i]
		if n.Leaf != nil {
			return n.Leaf
		}
		if RouteSplit(x[n.Feature], n.Kind, n.Threshold, n.Mask, t.NonFiniteLeft) {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Predict implements Snapshot.
func (t *TreeSnapshot) Predict(x []float64) int { return t.LeafFor(x).Predict(x) }

// Proba implements ProbaSnapshot.
func (t *TreeSnapshot) Proba(x []float64, out []float64) []float64 {
	return t.LeafFor(x).Proba(x, out)
}

// Complexity implements Snapshot with the complexity at capture time.
func (t *TreeSnapshot) Complexity() Complexity { return t.Comp }

// Name implements Snapshot.
func (t *TreeSnapshot) Name() string { return t.ModelName }

// LeafSnapshot wraps a single frozen predictor as a one-node tree — the
// snapshot of the structureless GLM and Naive Bayes baselines.
func LeafSnapshot(name string, comp Complexity, leaf LeafScorer) *TreeSnapshot {
	t := &TreeSnapshot{ModelName: name, Comp: comp}
	t.Root = t.Add(SnapshotNode{Left: -1, Right: -1, Leaf: leaf})
	return t
}
