package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/synth"
)

// ablationVariant is one DMT configuration of the ablation study (E9 in
// DESIGN.md): each variant disables or re-tunes one design choice the
// paper motivates.
type ablationVariant struct {
	name  string
	build func(schema stream.Schema, seed int64) model.Classifier
}

func dmtVariant(name string, cfg core.Config) ablationVariant {
	return ablationVariant{
		name: name,
		build: func(schema stream.Schema, seed int64) model.Classifier {
			cfg := cfg
			cfg.Seed = seed
			return core.New(cfg, schema)
		},
	}
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		dmtVariant("DMT (paper defaults)", core.Config{}),
		dmtVariant("DMT no pruning", core.Config{DisablePruning: true}),
		dmtVariant("DMT no warm start", core.Config{DisableWarmStart: true}),
		dmtVariant("DMT no inner updates", core.Config{DisableInnerUpdates: true}),
		dmtVariant("DMT eps=1e-3 (loose)", core.Config{Epsilon: 1e-3}),
		dmtVariant("DMT eps=1e-12 (strict)", core.Config{Epsilon: 1e-12}),
		dmtVariant("DMT cand cap 1m", core.Config{CandidateFactor: 1}),
		dmtVariant("DMT cand cap 6m", core.Config{CandidateFactor: 6}),
		dmtVariant("DMT repl rate 0.1", core.Config{ReplacementRate: 0.1}),
		dmtVariant("DMT repl rate 0.9", core.Config{ReplacementRate: 0.9}),
		dmtVariant("DMT lr=0.01", core.Config{LearningRate: 0.01}),
		dmtVariant("DMT lr=0.2", core.Config{LearningRate: 0.2}),
		dmtVariant("DMT L1=0.01 (sparse)", core.Config{L1: 0.01}),
		dmtVariant("DMT lr warmup x4", core.Config{LRWarmupBoost: 4}),
	}
}

// ablationStream builds one ablation workload. "Piecewise" is the
// structure-sensitive stream (splits are necessary, so pruning,
// warm-start and inner updates become observable); the Table I names
// cover the drift and linear-control cases.
func ablationStream(name string, scale float64, seed int64) (stream.Stream, string, error) {
	if name == "Piecewise" {
		n := int(200_000 * scale * 10) // comparable to the Table I scale
		if n < 20_000 {
			n = 20_000
		}
		return synth.NewPiecewise(n, 3, 0.05, 1, seed), "Piecewise (synthetic, 1 abrupt drift)", nil
	}
	entry, err := datasets.ByName(name)
	if err != nil {
		return nil, "", err
	}
	return entry.New(scale, seed), entry.DisplayName(), nil
}

// ablationDatasets are the ablation workloads: one stream that requires
// structure, one multiclass drift stream, one linear control.
var ablationDatasets = []string{"Piecewise", "Insects-Abr.", "SEA"}

// RunAblation evaluates every DMT ablation variant on the ablation
// streams and renders one table per stream (F1, splits, prune/replace
// activity).
func RunAblation(scale float64, seed int64, progress io.Writer) (string, error) {
	var sb strings.Builder
	for _, dsName := range ablationDatasets {
		var display string
		t := newTable("", "Variant", "F1", "Splits", "Params", "split/replace/prune events")
		for _, v := range ablationVariants() {
			strm, name, err := ablationStream(dsName, scale, seed)
			if err != nil {
				return "", err
			}
			display = name
			clf := v.build(strm.Schema(), seed)
			res, err := Prequential(clf, strm, Options{MinBatchSize: 32})
			if err != nil {
				return "", fmt.Errorf("ablation: %s on %s: %w", v.name, dsName, err)
			}
			f1m, f1s := res.F1()
			spm, sps := res.Splits()
			pm, _ := res.Params()
			events := "-"
			if dmt, ok := clf.(*core.Tree); ok {
				s, r, p := dmt.Revisions()
				events = fmt.Sprintf("%d/%d/%d", s, r, p)
			}
			t.addRow(v.name, fmtMS(f1m, f1s, 3), fmtMS(spm, sps, 1), fmt.Sprintf("%.0f", pm), events)
			if progress != nil {
				fmt.Fprintf(progress, "ablation done: %-24s on %-12s F1=%.3f\n", v.name, dsName, f1m)
			}
		}
		t.title = fmt.Sprintf("Ablation (E9) on %s (scale %.3g)", display, scale)
		sb.WriteString(t.render())
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
