package eval

import (
	"context"
	"errors"
	"testing"

	"repro/internal/datasets"
)

func runnerCells(t testing.TB, seed int64) []Cell {
	t.Helper()
	var cells []Cell
	for _, ds := range []string{"SEA", "Electricity"} {
		entry, err := datasets.ByName(ds)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []string{NameDMT, NameVFDTMC} {
			cells = append(cells, Cell{Dataset: entry, Model: m, Seed: CellSeed(seed, ds, m)})
		}
	}
	return cells
}

// The concurrent Runner is byte-identical to a sequential run of the same
// cells: per-cell seeding is scheduling-independent, so rendering the
// result tables gives the same bytes at any worker count.
func TestRunnerParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	run := func(workers int) *SuiteResult {
		res, err := Runner{Workers: workers, Scale: 0.002}.Run(context.Background(), runnerCells(t, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	// Byte-level comparison over every rendered metric table (timing in
	// Table V is excluded: wall-clock is not schedule-independent).
	for name, render := range map[string]func(*SuiteResult) string{
		"Table2": (*SuiteResult).Table2,
		"Table3": (*SuiteResult).Table3,
		"Table4": (*SuiteResult).Table4,
		"Table6": (*SuiteResult).Table6,
	} {
		if a, b := render(seq), render(par); a != b {
			t.Fatalf("%s differs between sequential and parallel runs:\n%s\nvs\n%s", name, a, b)
		}
	}
}

// CellSeed is deterministic, and distinct cells get distinct seeds.
func TestCellSeed(t *testing.T) {
	a := CellSeed(7, "SEA", "DMT")
	if a != CellSeed(7, "SEA", "DMT") {
		t.Fatal("CellSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, ds := range []string{"SEA", "Electricity", "Hyperplane"} {
		for _, m := range []string{"DMT", "VFDT (MC)", "EFDT"} {
			s := CellSeed(7, ds, m)
			key := ds + "/" + m
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s", prev, key)
			}
			seen[s] = key
		}
	}
	// The name boundary matters: ("AB","C") and ("A","BC") must differ.
	if CellSeed(7, "AB", "C") == CellSeed(7, "A", "BC") {
		t.Fatal("boundary-ambiguous cell seeds")
	}
	// Derived seeds stay non-negative even for negative bases (several
	// generators treat the seed as an offset).
	if s := CellSeed(-42, "SEA", "DMT"); s < 0 {
		t.Fatalf("CellSeed(-42, ...) = %d, want non-negative", s)
	}
}

// An unknown model inside a cell fails the whole run with that error.
func TestRunnerUnknownModel(t *testing.T) {
	entry, err := datasets.ByName("SEA")
	if err != nil {
		t.Fatal(err)
	}
	cells := []Cell{{Dataset: entry, Model: "nope", Seed: 1}}
	if _, err := (Runner{Scale: 0.001}).Run(context.Background(), cells); err == nil {
		t.Fatal("unknown model must fail the run")
	}
}

// A cancelled context aborts the run with context.Canceled but keeps
// the merged result of the cells completed so far (an interrupted grid
// must not throw away finished work).
func TestRunnerCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := (Runner{Scale: 0.001}).Run(ctx, runnerCells(t, 1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run dropped the completed-cell results")
	}
}

// benchmarkRunner measures a fixed cell grid at a given worker count.
func benchmarkRunner(b *testing.B, workers int) {
	cells := runnerCells(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Runner{Workers: workers, Scale: 0.01}).Run(context.Background(), cells); err != nil {
			b.Fatal(err)
		}
	}
}

// The acceptance pair: on a multi-core machine the parallel suite beats
// the sequential wall-clock (compare ns/op of these two).
func BenchmarkSuiteSequential(b *testing.B) { benchmarkRunner(b, 1) }
func BenchmarkSuiteParallel(b *testing.B)   { benchmarkRunner(b, 0) } // GOMAXPROCS workers

// Evaluating through the serving layer must not change the science:
// "snapshot" (per-batch publish) and "locked" runs render byte-identical
// metric tables to the bare-classifier run of the same cells, even
// though the snapshot run scores every test batch through PredictBatch
// against a published snapshot.
func TestRunnerScorerModesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	run := func(mode string) *SuiteResult {
		res, err := Runner{Scale: 0.002, ScorerMode: mode}.Run(context.Background(), runnerCells(t, 11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run("")
	for _, mode := range []string{"locked", "snapshot"} {
		through := run(mode)
		for name, render := range map[string]func(*SuiteResult) string{
			"Table2": (*SuiteResult).Table2,
			"Table3": (*SuiteResult).Table3,
			"Table4": (*SuiteResult).Table4,
		} {
			if a, b := render(bare), render(through); a != b {
				t.Fatalf("%s differs between bare and %s runs:\n%s\nvs\n%s", name, mode, a, b)
			}
		}
	}
	// Sharded is a different algorithm (replicas see 1/N of the rows);
	// it must run cleanly but is allowed to differ.
	if _, err := (Runner{Scale: 0.002, ScorerMode: "sharded", Shards: 2}).Run(context.Background(), runnerCells(t, 11)); err != nil {
		t.Fatal(err)
	}
	// Unknown modes fail fast.
	if _, err := (Runner{Scale: 0.002, ScorerMode: "bogus"}).Run(context.Background(), runnerCells(t, 11)); err == nil {
		t.Fatal("bogus scorer mode accepted")
	}
}
