package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/efdt"
	"repro/internal/ensemble"
	"repro/internal/fimtdd"
	"repro/internal/hatada"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/stream"
)

// Model names as used in the paper's tables.
const (
	NameDMT     = "DMT"
	NameFIMTDD  = "FIMT-DD"
	NameVFDTMC  = "VFDT (MC)"
	NameVFDTNBA = "VFDT (NBA)"
	NameHTAda   = "HT-Ada"
	NameEFDT    = "EFDT"
	NameForest  = "Forest Ens."
	NameBagging = "Bagging Ens."
)

// StandaloneModels are the six stand-alone classifiers of Tables II-V in
// the paper's row order.
func StandaloneModels() []string {
	return []string{NameDMT, NameFIMTDD, NameVFDTMC, NameVFDTNBA, NameHTAda, NameEFDT}
}

// EnsembleModels are the two reference ensembles of Table II.
func EnsembleModels() []string {
	return []string{NameForest, NameBagging}
}

// AllModels returns stand-alone models followed by the ensembles.
func AllModels() []string {
	return append(StandaloneModels(), EnsembleModels()...)
}

// TreeModels are the models whose complexity Tables III/IV report (all
// stand-alone models).
func TreeModels() []string { return StandaloneModels() }

// NewClassifier builds a fresh classifier by its paper name, configured
// exactly as in Section VI-C.
func NewClassifier(name string, schema stream.Schema, seed int64) (model.Classifier, error) {
	switch name {
	case NameDMT:
		return core.New(core.Config{Seed: seed}, schema), nil
	case NameFIMTDD:
		return fimtdd.New(fimtdd.Config{Seed: seed}, schema), nil
	case NameVFDTMC:
		return hoeffding.New(hoeffding.Config{LeafMode: hoeffding.MajorityClass, Seed: seed}, schema), nil
	case NameVFDTNBA:
		return hoeffding.New(hoeffding.Config{LeafMode: hoeffding.NaiveBayesAdaptive, Seed: seed}, schema), nil
	case NameHTAda:
		return hatada.New(hatada.Config{Tree: hoeffding.Config{Seed: seed}}, schema), nil
	case NameEFDT:
		return efdt.New(efdt.Config{Tree: hoeffding.Config{Seed: seed}}, schema), nil
	case NameForest:
		return ensemble.NewARF(ensemble.Config{Seed: seed}, schema), nil
	case NameBagging:
		return ensemble.NewLevBag(ensemble.Config{Seed: seed}, schema), nil
	}
	return nil, fmt.Errorf("eval: unknown model %q", name)
}
