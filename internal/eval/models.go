package eval

import (
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"

	// The learner packages self-register their factories; the blank
	// imports pull the init-time registrations in so any evaluation entry
	// point can build every paper model by name.
	_ "repro/internal/core"
	_ "repro/internal/efdt"
	_ "repro/internal/ensemble"
	_ "repro/internal/fimtdd"
	_ "repro/internal/glm"
	_ "repro/internal/hatada"
	_ "repro/internal/hoeffding"
	_ "repro/internal/nbayes"
)

// Model names as used in the paper's tables.
const (
	NameDMT     = "DMT"
	NameFIMTDD  = "FIMT-DD"
	NameVFDTMC  = "VFDT (MC)"
	NameVFDTNBA = "VFDT (NBA)"
	NameHTAda   = "HT-Ada"
	NameEFDT    = "EFDT"
	NameForest  = "Forest Ens."
	NameBagging = "Bagging Ens."
)

// StandaloneModels are the six stand-alone classifiers of Tables II-V in
// the paper's row order.
func StandaloneModels() []string {
	return []string{NameDMT, NameFIMTDD, NameVFDTMC, NameVFDTNBA, NameHTAda, NameEFDT}
}

// EnsembleModels are the two reference ensembles of Table II.
func EnsembleModels() []string {
	return []string{NameForest, NameBagging}
}

// AllModels returns stand-alone models followed by the ensembles.
func AllModels() []string {
	return append(StandaloneModels(), EnsembleModels()...)
}

// TreeModels are the models whose complexity Tables III/IV report (all
// stand-alone models).
func TreeModels() []string { return StandaloneModels() }

// NewClassifier builds a fresh classifier by its paper name via the model
// registry; the zero parameter bag plus the seed reproduces the paper's
// Section VI-C configuration exactly.
func NewClassifier(name string, schema stream.Schema, seed int64) (model.Classifier, error) {
	return registry.New(name, schema, registry.WithSeed(seed))
}
