// Package eval implements the paper's evaluation protocol (Section VI):
// prequential (test-then-train) evaluation with batches of 0.1% of the
// stream, the F1 measure, the split/parameter complexity accounting, the
// per-iteration timing of Table V, sliding-window series for Figure 3,
// the model zoo factory, and the table/figure renderers that regenerate
// Tables I–VI and Figures 3–4.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/stream"
)

// clipProb bounds p away from 0 so the log-loss stays finite.
func clipProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1 {
		return 1
	}
	return p
}

// Options configures a prequential run.
type Options struct {
	// BatchFraction is the batch size as a fraction of the stream length
	// (paper: 0.001).
	BatchFraction float64
	// MinBatchSize floors the batch size (default 1, the pure paper
	// protocol). Scaled-down runs should set ~32: per-batch F1 on one or
	// two rows is pure noise, and the paper's own batches are 45-1025
	// rows at full stream sizes.
	MinBatchSize int
	// MaxIters truncates the run after this many test/train iterations
	// (0 = until the stream ends).
	MaxIters int
	// LogLoss additionally scores each batch's mean negative
	// log-likelihood through the model's Proba (models without a
	// probabilistic interface report 0). Off by default so the timing
	// columns of Table V measure exactly the paper's protocol.
	LogLoss bool
	// AfterTrain, when non-nil, runs after each iteration's training
	// step, outside the timed region (instrumentation — model-state
	// checkpointing — must not inflate the Table V Seconds column). A
	// returned error aborts the run.
	AfterTrain func(iter int, c model.Classifier) error
}

func (o Options) withDefaults() Options {
	if o.BatchFraction <= 0 {
		o.BatchFraction = 0.001
	}
	if o.MinBatchSize < 1 {
		o.MinBatchSize = 1
	}
	return o
}

// IterStats are the measurements of one test-then-train iteration.
type IterStats struct {
	// F1 is the paper's F1 measure on this batch (binary F1 for
	// two-class streams, macro F1 otherwise).
	F1 float64
	// Accuracy on this batch.
	Accuracy float64
	// Kappa is Cohen's kappa on this batch (chance-corrected agreement).
	Kappa float64
	// LogLoss is the batch's mean negative log-likelihood under the
	// model's predicted class probabilities (0 unless Options.LogLoss).
	LogLoss float64
	// Splits and Params are the model complexity after training on this
	// batch (paper counting, Section VI-D2).
	Splits float64
	Params float64
	// Seconds is the wall-clock duration of this iteration (test+train).
	Seconds float64
}

// Result is a full prequential run of one model on one stream.
type Result struct {
	Model   string
	Dataset string
	Iters   []IterStats
}

// MeanStd aggregates one metric over the iterations.
func (r Result) MeanStd(metric func(IterStats) float64) (mean, std float64) {
	var acc stats.Running
	for _, it := range r.Iters {
		acc.Add(metric(it))
	}
	return acc.Mean(), acc.Std()
}

// F1 returns the mean and standard deviation of the per-iteration F1 —
// the Table II cells.
func (r Result) F1() (mean, std float64) {
	return r.MeanStd(func(s IterStats) float64 { return s.F1 })
}

// Splits returns the Table III cells.
func (r Result) Splits() (mean, std float64) {
	return r.MeanStd(func(s IterStats) float64 { return s.Splits })
}

// Params returns the Table IV cells.
func (r Result) Params() (mean, std float64) {
	return r.MeanStd(func(s IterStats) float64 { return s.Params })
}

// Seconds returns the Table V cells.
func (r Result) Seconds() (mean, std float64) {
	return r.MeanStd(func(s IterStats) float64 { return s.Seconds })
}

// LogLoss returns the mean and standard deviation of the per-iteration
// mean negative log-likelihood (zero unless the run enabled
// Options.LogLoss on a probabilistic model).
func (r Result) LogLoss() (mean, std float64) {
	return r.MeanStd(func(s IterStats) float64 { return s.LogLoss })
}

// Series extracts one metric as a time series (one value per iteration).
func (r Result) Series(metric func(IterStats) float64) []float64 {
	out := make([]float64, len(r.Iters))
	for i, it := range r.Iters {
		out[i] = metric(it)
	}
	return out
}

// Prequential runs the test-then-train protocol of Section VI-A: at each
// iteration a batch of BatchFraction of the stream is first scored
// (confusion matrix -> F1) and then used to train the model.
func Prequential(c model.Classifier, s stream.Stream, opts Options) (Result, error) {
	return PrequentialContext(context.Background(), c, s, opts)
}

// PrequentialContext is Prequential with cancellation: the context is
// checked before every test-then-train iteration, and a cancelled run
// returns the iterations finished so far together with ctx.Err().
func PrequentialContext(ctx context.Context, c model.Classifier, s stream.Stream, opts Options) (Result, error) {
	opts = opts.withDefaults()
	schema := s.Schema()
	if err := schema.Validate(); err != nil {
		return Result{}, err
	}
	// Fractional batches need the stream length; lazy streams (a CSV file
	// read row by row) have none, so they run at a fixed batch size —
	// MinBatchSize, floored at a value large enough for per-batch F1 to
	// be meaningful.
	const unsizedBatch = 64
	var batch int
	if sized, ok := s.(stream.Sized); ok {
		batch = int(float64(sized.Len()) * opts.BatchFraction)
		if batch < opts.MinBatchSize {
			batch = opts.MinBatchSize
		}
	} else {
		batch = opts.MinBatchSize
		if batch < unsizedBatch {
			batch = unsizedBatch
		}
	}

	res := Result{Model: c.Name(), Dataset: schema.Name}
	conf := stats.NewConfusion(schema.NumClasses)
	// One Proba out-buffer for the whole run: the scoring loop reuses it
	// every row instead of allocating a fresh distribution per call.
	var proba []float64
	pc, probabilistic := c.(model.ProbabilisticClassifier)
	if probabilistic {
		// Serving scorers always expose Proba (with a one-hot fallback),
		// which would turn LogLoss into a bogus clipped-one-hot number
		// for models that have no probabilistic interface. Gate on the
		// wrapped model instead of the wrapper.
		if u, ok := c.(interface{ Unwrap() model.Classifier }); ok {
			_, probabilistic = u.Unwrap().(model.ProbabilisticClassifier)
		}
	}
	if opts.LogLoss && probabilistic {
		proba = make([]float64, schema.NumClasses)
	}
	// Serving scorers predict the whole test batch in one call from one
	// consistent model state; the per-row loop serves plain classifiers.
	bp, _ := c.(interface {
		PredictBatch(X [][]float64, out []int) []int
	})
	var preds []int
	for iter := 0; opts.MaxIters == 0 || iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		b, err := stream.NextBatchContext(ctx, s, batch)
		if errors.Is(err, stream.ErrEnd) {
			break
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return res, err
		}
		if err != nil {
			return res, fmt.Errorf("eval: reading batch %d: %w", iter, err)
		}
		start := time.Now()
		conf.Reset()
		if bp != nil {
			preds = bp.PredictBatch(b.X, preds)
			for i, y := range b.Y {
				conf.Add(y, preds[i])
			}
		} else {
			for i, x := range b.X {
				conf.Add(b.Y[i], c.Predict(x))
			}
		}
		testSeconds := time.Since(start).Seconds()
		// Log-loss scoring happens between test and train — still on the
		// pre-train model — but outside the timed region: it is optional
		// instrumentation, and including it silently inflated the Table V
		// Seconds column, which measures exactly the paper's protocol.
		var nll float64
		if proba != nil {
			for i, x := range b.X {
				p := pc.Proba(x, proba)
				if y := b.Y[i]; y >= 0 && y < len(p) {
					nll -= math.Log(clipProb(p[y]))
				}
			}
		}
		start = time.Now()
		c.Learn(b)
		elapsed := testSeconds + time.Since(start).Seconds()

		var logLoss float64
		if proba != nil && b.Len() > 0 {
			logLoss = nll / float64(b.Len())
		}
		comp := c.Complexity()
		res.Iters = append(res.Iters, IterStats{
			F1:       conf.F1(),
			Accuracy: conf.Accuracy(),
			Kappa:    conf.Kappa(),
			LogLoss:  logLoss,
			Splits:   comp.Splits,
			Params:   comp.Params,
			Seconds:  elapsed,
		})
		if opts.AfterTrain != nil {
			if err := opts.AfterTrain(iter, c); err != nil {
				return res, fmt.Errorf("eval: after-train hook at iteration %d: %w", iter, err)
			}
		}
	}
	return res, nil
}

// SlidingMean smooths a series with a trailing window of the given size —
// the "sliding window aggregation with a window size of 20" of Figure 3.
func SlidingMean(series []float64, window int) []float64 {
	w := stats.NewWindow(window)
	out := make([]float64, len(series))
	for i, v := range series {
		w.Add(v)
		out[i] = w.Mean()
	}
	return out
}

// SlidingStd is the matching trailing-window standard deviation (the
// shaded band of Figure 3).
func SlidingStd(series []float64, window int) []float64 {
	w := stats.NewWindow(window)
	out := make([]float64, len(series))
	for i, v := range series {
		w.Add(v)
		out[i] = w.Std()
	}
	return out
}
