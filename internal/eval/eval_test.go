package eval

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/stream"
)

// memorizer predicts the label of rows it has already been trained on and
// class 0 otherwise — a probe for the test-then-train ordering.
type memorizer struct {
	seen    map[string]int
	batches int
}

func newMemorizer() *memorizer { return &memorizer{seen: map[string]int{}} }

func (m *memorizer) Learn(b stream.Batch) {
	m.batches++
	for i, x := range b.X {
		m.seen[fmt.Sprint(x)] = b.Y[i]
	}
}

func (m *memorizer) Predict(x []float64) int {
	if y, ok := m.seen[fmt.Sprint(x)]; ok {
		return y
	}
	return 0
}

func (m *memorizer) Complexity() model.Complexity { return model.Complexity{} }
func (m *memorizer) Name() string                 { return "memorizer" }

// uniqueRowStream emits n distinct rows, all labelled 1.
func uniqueRowStream(n int) stream.Stream {
	var b stream.Batch
	for i := 0; i < n; i++ {
		b.X = append(b.X, []float64{float64(i) / float64(n), 0.5})
		b.Y = append(b.Y, 1)
	}
	return stream.NewMemory(stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "unique"}, b)
}

// Prequential must test BEFORE training: a memorizer never sees a row
// before being scored on it, so per-batch accuracy stays 0.
func TestPrequentialTestsBeforeTraining(t *testing.T) {
	mem := newMemorizer()
	res, err := Prequential(mem, uniqueRowStream(1000), Options{BatchFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 100 {
		t.Fatalf("iterations = %d, want 100", len(res.Iters))
	}
	for i, it := range res.Iters {
		if it.Accuracy != 0 {
			t.Fatalf("iteration %d scored %v — training leaked before testing", i, it.Accuracy)
		}
	}
	if mem.batches != 100 {
		t.Fatalf("Learn called %d times", mem.batches)
	}
}

func TestPrequentialBatchSizing(t *testing.T) {
	mem := newMemorizer()
	// Default fraction 0.001 on 5000 rows -> batch 5, 1000 iterations.
	res, err := Prequential(mem, uniqueRowStream(5000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 1000 {
		t.Fatalf("iterations = %d, want 1000", len(res.Iters))
	}
	// Tiny stream: batch floors to 1.
	res, err = Prequential(newMemorizer(), uniqueRowStream(50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 50 {
		t.Fatalf("floored batch iterations = %d, want 50", len(res.Iters))
	}
}

func TestPrequentialMaxIters(t *testing.T) {
	res, err := Prequential(newMemorizer(), uniqueRowStream(1000), Options{BatchFraction: 0.01, MaxIters: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 7 {
		t.Fatalf("MaxIters ignored: %d", len(res.Iters))
	}
}

// probaProbe is a probabilistic classifier that always answers a fixed
// distribution and records the identity of every out buffer it is handed.
type probaProbe struct {
	memorizer
	bufs map[*float64]struct{}
}

func (p *probaProbe) Proba(x []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, 2)
	}
	if p.bufs == nil {
		p.bufs = map[*float64]struct{}{}
	}
	p.bufs[&out[0]] = struct{}{}
	out[0], out[1] = 0.25, 0.75
	return out
}

func TestPrequentialLogLoss(t *testing.T) {
	probe := &probaProbe{memorizer: *newMemorizer()}
	res, err := Prequential(probe, uniqueRowStream(1000), Options{BatchFraction: 0.01, LogLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(0.75) // every row is labelled 1 and scored p=0.75
	for i, it := range res.Iters {
		if math.Abs(it.LogLoss-want) > 1e-12 {
			t.Fatalf("iteration %d log-loss %v, want %v", i, it.LogLoss, want)
		}
	}
	if mean, _ := res.LogLoss(); math.Abs(mean-want) > 1e-12 {
		t.Fatalf("aggregate log-loss %v, want %v", mean, want)
	}
	// The whole run must reuse ONE Proba out buffer.
	if len(probe.bufs) != 1 {
		t.Fatalf("prequential loop used %d distinct Proba buffers, want 1", len(probe.bufs))
	}

	// Disabled (default): no Proba calls, zero log-loss.
	probe2 := &probaProbe{memorizer: *newMemorizer()}
	res, err = Prequential(probe2, uniqueRowStream(1000), Options{BatchFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe2.bufs) != 0 {
		t.Fatal("Proba called although Options.LogLoss is off")
	}
	for _, it := range res.Iters {
		if it.LogLoss != 0 {
			t.Fatal("log-loss reported although Options.LogLoss is off")
		}
	}
}

func TestResultAggregates(t *testing.T) {
	res := Result{Iters: []IterStats{
		{F1: 0.5, Splits: 2}, {F1: 0.7, Splits: 4}, {F1: 0.9, Splits: 6},
	}}
	mean, std := res.F1()
	if mean != 0.7 {
		t.Fatalf("F1 mean = %v", mean)
	}
	if std <= 0.16 || std >= 0.17 {
		t.Fatalf("F1 std = %v", std)
	}
	sm, _ := res.Splits()
	if sm != 4 {
		t.Fatalf("splits mean = %v", sm)
	}
	series := res.Series(func(s IterStats) float64 { return s.F1 })
	if len(series) != 3 || series[1] != 0.7 {
		t.Fatalf("series = %v", series)
	}
}

func TestSlidingMeanMatchesNaive(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6}
	got := SlidingMean(series, 3)
	want := []float64{1, 1.5, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SlidingMean = %v, want %v", got, want)
		}
	}
	stds := SlidingStd(series, 3)
	if stds[0] != 0 || stds[3] <= 0 {
		t.Fatalf("SlidingStd = %v", stds)
	}
}

func TestRankSymbols(t *testing.T) {
	// Higher better: 0.9 best, 0.1 worst.
	syms := rankSymbols([]float64{0.9, 0.5, 0.1, 0.6}, true)
	if syms[0] != "++" || syms[2] != "--" {
		t.Fatalf("symbols = %v", syms)
	}
	// Lower better inverts.
	syms = rankSymbols([]float64{10, 50, 90, 40}, false)
	if syms[0] != "++" || syms[2] != "--" {
		t.Fatalf("lower-better symbols = %v", syms)
	}
	if got := rankSymbols(nil, true); len(got) != 0 {
		t.Fatal("empty input")
	}
}

func TestNewClassifierAllNames(t *testing.T) {
	schema := stream.Schema{NumFeatures: 3, NumClasses: 2, Name: "t"}
	for _, name := range AllModels() {
		c, err := NewClassifier(name, schema, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("built %q, asked for %q", c.Name(), name)
		}
		// Must survive a learn/predict round trip.
		c.Learn(stream.Batch{X: [][]float64{{0.1, 0.2, 0.3}}, Y: []int{1}})
		if y := c.Predict([]float64{0.1, 0.2, 0.3}); y < 0 || y > 1 {
			t.Fatalf("%s predicted %d", name, y)
		}
	}
	if _, err := NewClassifier("nope", schema, 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestModelLists(t *testing.T) {
	if len(StandaloneModels()) != 6 {
		t.Fatalf("paper compares 6 stand-alone models, got %d", len(StandaloneModels()))
	}
	if len(AllModels()) != 8 {
		t.Fatalf("paper's Table II has 8 models, got %d", len(AllModels()))
	}
}

func TestSuiteSmallRunRendersAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	suite := Suite{
		Scale:    0.001, // floors to 2000 samples per stream
		Seed:     1,
		Datasets: []string{"SEA", "Gas"},
		Models:   []string{NameDMT, NameVFDTMC},
	}
	res, err := suite.Run()
	if err != nil {
		t.Fatal(err)
	}
	tables := []struct {
		name, out string
	}{
		{"Table1", res.Table1()},
		{"Table2", res.Table2()},
		{"Table3", res.Table3()},
		{"Table4", res.Table4()},
		{"Table5", res.Table5()},
		{"Table6", res.Table6()},
		{"Figure3", res.Figure3(20)},
		{"Figure4", res.Figure4()},
	}
	for _, tb := range tables {
		if strings.TrimSpace(tb.out) == "" {
			t.Fatalf("%s rendered empty", tb.name)
		}
	}
	// Table II must carry both models, both data sets and the paper refs.
	t2 := res.Table2()
	for _, want := range []string{"DMT", "VFDT (MC)", "SEA", "Gas*", "(p:"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table2 missing %q:\n%s", want, t2)
		}
	}
	// Figure 3 includes only the panels that ran (SEA here).
	if !strings.Contains(res.Figure3(20), "SEA") {
		t.Fatal("Figure3 lacks the SEA panel")
	}
}

// Parallel execution must produce byte-identical results to sequential:
// every job owns its stream and classifier seeded from the suite seed.
func TestSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run")
	}
	base := Suite{
		Scale:    0.001,
		Seed:     7,
		Datasets: []string{"SEA", "Electricity"},
		Models:   []string{NameDMT, NameVFDTMC},
	}
	seq, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Parallel = 4
	parRes, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	for ds, byModel := range seq.Results {
		for m, r1 := range byModel {
			r2 := parRes.Results[ds][m]
			if len(r1.Iters) != len(r2.Iters) {
				t.Fatalf("%s/%s: iter counts differ", ds, m)
			}
			f1a, _ := r1.F1()
			f1b, _ := r2.F1()
			if f1a != f1b {
				t.Fatalf("%s/%s: F1 differs %v vs %v", ds, m, f1a, f1b)
			}
			s1, _ := r1.Splits()
			s2, _ := r2.Splits()
			if s1 != s2 {
				t.Fatalf("%s/%s: splits differ", ds, m)
			}
		}
	}
}

func TestSuiteUnknownInputs(t *testing.T) {
	if _, err := (Suite{Datasets: []string{"nope"}}).Run(); err == nil {
		t.Fatal("unknown data set must error")
	}
	if _, err := (Suite{Datasets: []string{"SEA"}, Models: []string{"nope"}, Scale: 0.001}).Run(); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestPrequentialMinBatchSize(t *testing.T) {
	// 1000 rows at fraction 0.001 would be batch 1; the floor lifts it.
	res, err := Prequential(newMemorizer(), uniqueRowStream(1000), Options{MinBatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 20 {
		t.Fatalf("iterations = %d, want 20 (batch 50)", len(res.Iters))
	}
}

func TestRunAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run")
	}
	out, err := RunAblation(0.001, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Piecewise", "DMT (paper defaults)", "DMT no pruning", "SEA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}

func TestTableRenderer(t *testing.T) {
	tb := newTable("Title", "A", "LongHeader")
	tb.addRow("x", "y")
	out := tb.render()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "LongHeader") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAsciiChart(t *testing.T) {
	out := asciiChart("chart", []string{"a", "b"},
		[][]float64{{0, 0.5, 1}, {1, 0.5, 0}}, 30, 8)
	if !strings.Contains(out, "chart") || !strings.Contains(out, "*=a") {
		t.Fatalf("chart:\n%s", out)
	}
	if got := asciiChart("empty", nil, nil, 30, 8); !strings.Contains(got, "no data") {
		t.Fatal("empty chart")
	}
}

// A serving Scorer always exposes Proba (one-hot fallback), but LogLoss
// must stay gated on the wrapped model: a non-probabilistic ensemble
// evaluated through the serving layer reports 0, not a clipped-one-hot
// pseudo log loss, matching the bare-model run.
func TestPrequentialLogLossGatedOnUnwrappedModel(t *testing.T) {
	ds, err := datasets.ByName("SEA")
	if err != nil {
		t.Fatal(err)
	}
	strm := ds.New(0.002, 1)
	arf, err := NewClassifier(NameForest, strm.Schema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Prequential(serve.Wrap(arf, 1), strm, Options{LogLoss: true, MinBatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.Iters {
		if it.LogLoss != 0 {
			t.Fatalf("iteration %d: non-probabilistic model through a Scorer reported log-loss %v", i, it.LogLoss)
		}
	}
	// A probabilistic model through the same wrapper still reports one.
	strm2 := ds.New(0.002, 1)
	dmt, err := NewClassifier(NameDMT, strm2.Schema(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Prequential(serve.Wrap(dmt, 1), strm2, Options{LogLoss: true, MinBatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if mean, _ := res2.LogLoss(); mean == 0 {
		t.Fatal("probabilistic model through a Scorer lost its log-loss")
	}
}
