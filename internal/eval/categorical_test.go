package eval

import "testing"

// The categorical scenario runs end to end at a small scale and the
// native encoding wins for every model — the eval-suite form of the
// refactor's acceptance criterion.
func TestCategoricalScenario(t *testing.T) {
	cells, err := CategoricalScenario(0.04, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(categoricalModels) {
		t.Fatalf("got %d cells, want %d", len(cells), 2*len(categoricalModels))
	}
	byKey := map[string]CategoricalCell{}
	for _, c := range cells {
		byKey[c.Model+"/"+c.Encoding] = c
	}
	for _, m := range categoricalModels {
		native, fact := byKey[m+"/native"], byKey[m+"/factorised"]
		if native.F1 <= fact.F1 {
			t.Errorf("%s: native F1 %.3f does not beat factorised %.3f", m, native.F1, fact.F1)
		}
	}
	out, err := RunCategoricalScenario(0.04, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty rendering")
	}
}
