package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stream"
	"repro/internal/synth"
)

// CategoricalCell is one run of the categorical-concept scenario: one
// model on one encoding of the planted stream.
type CategoricalCell struct {
	Model    string
	Encoding string // "native" or "factorised"
	F1       float64
	Splits   float64
}

// categoricalModels are the learners with native categorical split
// support that the scenario compares (FIMT-DD keeps its numeric-only
// split machinery and is out of scope).
var categoricalModels = []string{"DMT", "VFDT (MC)"}

// CategoricalScenario runs the paper-style categorical payoff
// experiment: a planted concept that depends only on a categorical
// attribute, with level codes ordered so numeric thresholds cannot
// separate the classes. Each model runs twice — once on the native
// categorical schema, once on the factorised (code-as-float) baseline —
// and the native encoding is expected to win on prequential F1 with
// fewer splits.
func CategoricalScenario(scale float64, seed int64, progress io.Writer) ([]CategoricalCell, error) {
	n := int(600_000 * scale)
	if n < 20_000 {
		n = 20_000
	}
	const (
		card  = 8
		noise = 0.05
	)
	var cells []CategoricalCell
	for _, name := range categoricalModels {
		native := synth.NewCategoricalConcept(n, card, noise, seed)
		for _, enc := range []struct {
			label string
			strm  stream.Stream
		}{
			{"native", native},
			{"factorised", native.Factorised()},
		} {
			clf, err := NewClassifier(name, enc.strm.Schema(), seed)
			if err != nil {
				return nil, fmt.Errorf("categorical scenario: %s: %w", name, err)
			}
			res, err := Prequential(clf, enc.strm, Options{MinBatchSize: 32})
			if err != nil {
				return nil, fmt.Errorf("categorical scenario: %s (%s): %w", name, enc.label, err)
			}
			f1, _ := res.F1()
			sp, _ := res.Splits()
			cells = append(cells, CategoricalCell{Model: name, Encoding: enc.label, F1: f1, Splits: sp})
			if progress != nil {
				fmt.Fprintf(progress, "categorical done: %-12s %-11s F1=%.3f splits=%.1f\n", name, enc.label, f1, sp)
			}
		}
	}
	return cells, nil
}

// RunCategoricalScenario renders CategoricalScenario as a table.
func RunCategoricalScenario(scale float64, seed int64, progress io.Writer) (string, error) {
	cells, err := CategoricalScenario(scale, seed, progress)
	if err != nil {
		return "", err
	}
	t := newTable(fmt.Sprintf("Categorical concept: native vs factorised splits (scale %.3g)", scale),
		"Model", "Encoding", "F1", "Splits")
	for _, c := range cells {
		t.addRow(c.Model, c.Encoding, fmt.Sprintf("%.3f", c.F1), fmt.Sprintf("%.1f", c.Splits))
	}
	var sb strings.Builder
	sb.WriteString(t.render())
	sb.WriteString("\nThe planted concept is y = 1 iff the categorical level is odd; codes\n")
	sb.WriteString("alternate between the classes, so threshold splits on the raw code\n")
	sb.WriteString("cannot separate them while one native subset (or a few equality)\n")
	sb.WriteString("splits recover the concept exactly.\n")
	return sb.String(), nil
}
