package eval

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/persist"
)

// Model-state streams: beside each cell's Result checkpoint the Runner
// can record the model itself over the course of the run — one capture
// per ModelCheckpointEvery iterations, written as a self-describing
// concatenation of full checkpoint envelopes (keyframes) and REPRODLT
// delta envelopes between them. The two record kinds share a stream and
// are distinguished by magic, so replay needs no index: a keyframe
// resets the reconstruction base, a delta advances it, and every record
// is checksum-pinned, so a replayed capture is byte-identical to the
// full save the Runner would have written at that iteration.

// modelStream incrementally writes one cell's model-state stream.
type modelStream struct {
	w             io.Writer
	keyframeEvery int
	last          []byte // previous capture's full envelope bytes
	sinceKeyframe int
	captures      int
	deltas        int
}

func newModelStream(w io.Writer, keyframeEvery int) *modelStream {
	if keyframeEvery < 1 {
		keyframeEvery = 1
	}
	return &modelStream{w: w, keyframeEvery: keyframeEvery}
}

// capture appends the classifier's current state: a full keyframe on
// the first capture and every keyframeEvery-th thereafter (or whenever
// a delta cannot be computed), a delta envelope against the previous
// capture in between.
func (ms *modelStream) capture(c model.Classifier) error {
	var buf bytes.Buffer
	if err := persist.Save(&buf, c); err != nil {
		return err
	}
	raw := buf.Bytes()
	asKeyframe := ms.last == nil || ms.sinceKeyframe >= ms.keyframeEvery-1
	if !asKeyframe {
		d, err := persist.MakeDelta(ms.last, raw)
		if err != nil {
			// A capture that cannot be diffed (e.g. a sharded scorer's
			// stacked stream) degrades to a keyframe instead of failing.
			asKeyframe = true
		} else if err := persist.WriteDelta(ms.w, d); err != nil {
			return err
		} else {
			ms.sinceKeyframe++
			ms.deltas++
		}
	}
	if asKeyframe {
		if _, err := ms.w.Write(raw); err != nil {
			return err
		}
		ms.sinceKeyframe = 0
	}
	ms.last = raw
	ms.captures++
	return nil
}

// ReplayModelStream reads a model-state stream and returns the full
// envelope bytes of every capture, in order: keyframes verbatim, deltas
// applied to the running base with the chain validation of
// persist.ApplyChain. Every returned element loads via persist.Load.
func ReplayModelStream(r io.Reader) ([][]byte, error) {
	br := bufio.NewReader(r)
	var out [][]byte
	var cur []byte
	for {
		if _, err := br.Peek(1); err == io.EOF {
			return out, nil
		}
		switch {
		case persist.SniffEnvelope(br):
			raw, _, err := persist.ReadRaw(br)
			if err != nil {
				return out, fmt.Errorf("eval: model stream capture %d: %w", len(out), err)
			}
			cur = raw
		case persist.SniffDelta(br):
			if cur == nil {
				return out, fmt.Errorf("eval: model stream starts with a delta (capture %d): no keyframe to apply it to", len(out))
			}
			d, err := persist.ReadDelta(br)
			if err != nil {
				return out, fmt.Errorf("eval: model stream capture %d: %w", len(out), err)
			}
			head, err := persist.ApplyChain(cur, d)
			if err != nil {
				return out, fmt.Errorf("eval: model stream capture %d: %w", len(out), err)
			}
			cur = head
		default:
			return out, fmt.Errorf("eval: model stream capture %d: unrecognised record magic", len(out))
		}
		out = append(out, cur)
	}
}
