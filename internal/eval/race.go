package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/race"
	"repro/internal/synth"
)

// RaceCell is one run of the racing scenario: one competitor (a fixed
// arm or the racer itself) on one drift kind.
type RaceCell struct {
	Drift    string // "abrupt", "gradual" or "recurring"
	Model    string
	Accuracy float64
	Error    float64
	Racer    bool
	// Racer-only fields: the re-race / leader-change counters and the
	// swap-event timeline.
	ReRaces       uint64
	LeaderChanges uint64
	DriftChanges  uint64
	Events        []race.SwapEvent
	DriftRows     []int // planted drift positions of the stream
}

// raceArms are the scenario's competitors: a linear model (wins the
// hyperplane regimes), a tree (wins the cluster regimes) and a
// probabilistic baseline — no fixed arm wins every regime, which is
// the racing payoff.
var raceArms = []string{"GLM", "VFDT (MC)", "Naive Bayes"}

// raceStream builds the scenario stream for one drift kind: a linearly
// separable hyperplane concept alternating with a multi-modal
// Gaussian-cluster concept.
func raceStream(kind string, samples int, seed int64) (*synth.ConceptSwitch, error) {
	const features = 5
	linear := synth.NewHyperplane(samples, features, 0.02, seed+1)
	clusters := synth.NewCluster(synth.ClusterConfig{
		Name: "clusters", Samples: samples, Features: features, Classes: 2,
		ClustersPerClass: 3, Std: 0.07, Seed: seed + 2,
	})
	switch kind {
	case "abrupt":
		return synth.NewAbruptSwitch(samples, seed, linear, clusters), nil
	case "gradual":
		return synth.NewGradualSwitch(samples, samples/20, seed, linear, clusters), nil
	case "recurring":
		return synth.NewRecurringSwitch(samples, 4, seed, linear, clusters), nil
	}
	return nil, fmt.Errorf("race scenario: unknown drift kind %q", kind)
}

// RaceScenario crosses the racing arms with drift kinds: every fixed
// arm runs the stream prequentially, then the racer runs the identical
// stream, and each cell records the final accuracy. The racer's cells
// additionally carry the leader timeline.
func RaceScenario(scale float64, seed int64, progress io.Writer) ([]RaceCell, error) {
	n := int(800_000 * scale)
	if n < 16_000 {
		n = 16_000
	}
	accOf := func(res Result) float64 {
		mean, _ := res.MeanStd(func(s IterStats) float64 { return s.Accuracy })
		return mean
	}
	var cells []RaceCell
	for _, kind := range []string{"abrupt", "gradual", "recurring"} {
		for _, name := range raceArms {
			s, err := raceStream(kind, n, seed)
			if err != nil {
				return nil, err
			}
			clf, err := NewClassifier(name, s.Schema(), seed)
			if err != nil {
				return nil, fmt.Errorf("race scenario: %s: %w", name, err)
			}
			res, err := Prequential(clf, s, Options{BatchFraction: 0.001})
			if err != nil {
				return nil, fmt.Errorf("race scenario: %s (%s): %w", name, kind, err)
			}
			acc := accOf(res)
			cells = append(cells, RaceCell{Drift: kind, Model: name, Accuracy: acc, Error: 1 - acc})
			if progress != nil {
				fmt.Fprintf(progress, "race done: %-9s %-12s acc=%.3f\n", kind, name, acc)
			}
		}
		s, err := raceStream(kind, n, seed)
		if err != nil {
			return nil, err
		}
		r, err := race.New(race.Config{Schema: s.Schema(), Arms: armSpecs(), Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("race scenario: racer: %w", err)
		}
		res, err := Prequential(r, s, Options{BatchFraction: 0.001})
		if err != nil {
			return nil, fmt.Errorf("race scenario: racer (%s): %w", kind, err)
		}
		acc := accOf(res)
		st := r.RaceStatus()
		cells = append(cells, RaceCell{
			Drift: kind, Model: st.Name, Accuracy: acc, Error: 1 - acc, Racer: true,
			ReRaces: st.ReRaces, LeaderChanges: st.LeaderChanges, DriftChanges: st.DriftChanges,
			Events: st.Events, DriftRows: s.DriftPositions(),
		})
		if progress != nil {
			fmt.Fprintf(progress, "race done: %-9s racer        acc=%.3f re-races=%d swaps=%d\n",
				kind, acc, st.ReRaces, st.LeaderChanges)
		}
	}
	return cells, nil
}

func armSpecs() []race.Arm {
	arms := make([]race.Arm, len(raceArms))
	for i, n := range raceArms {
		arms[i] = race.Arm{Model: n}
	}
	return arms
}

// RunRaceScenario renders RaceScenario: the arms × drift-kinds accuracy
// table (the racer's row per kind last) followed by each racer's leader
// timeline against the planted drift positions.
func RunRaceScenario(scale float64, seed int64, progress io.Writer) (string, error) {
	cells, err := RaceScenario(scale, seed, progress)
	if err != nil {
		return "", err
	}
	t := newTable(fmt.Sprintf("Model racing on drifting streams (scale %.3g)", scale),
		"Drift", "Model", "Accuracy", "Error")
	for _, c := range cells {
		model := c.Model
		if c.Racer {
			model = "» " + model
		}
		t.addRow(c.Drift, model, fmt.Sprintf("%.3f", c.Accuracy), fmt.Sprintf("%.3f", c.Error))
	}
	var sb strings.Builder
	sb.WriteString(t.render())
	for _, c := range cells {
		if !c.Racer {
			continue
		}
		sb.WriteString(fmt.Sprintf("\n%s leader timeline (planted drifts at %v; %d re-races, %d drift-triggered swaps):\n",
			c.Drift, c.DriftRows, c.ReRaces, c.DriftChanges))
		if len(c.Events) == 0 {
			sb.WriteString("  no leader change\n")
			continue
		}
		for _, ev := range c.Events {
			mark := ""
			if ev.Drift {
				mark = "  [drift]"
			}
			sb.WriteString(fmt.Sprintf("  row %6d: %s -> %s%s\n", ev.Row, ev.FromModel, ev.ToModel, mark))
		}
	}
	sb.WriteString("\nThe racer serves every prediction from the arm currently winning the\n")
	sb.WriteString("ADWIN-managed prequential window, so on drifting streams it tracks\n")
	sb.WriteString("whichever arm wins each regime instead of committing to one model.\n")
	return sb.String(), nil
}
