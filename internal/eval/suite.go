package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/datasets"
)

// Suite drives the full reproduction: every selected model is evaluated
// prequentially on every selected stream, and the collected results
// regenerate the paper's tables and figures.
type Suite struct {
	// Scale shrinks every Table I stream to Scale * its original length
	// (1 reproduces the full sizes; CI-sized runs use e.g. 0.02).
	Scale float64
	// Seed fixes streams and models.
	Seed int64
	// BatchFraction is the prequential batch size (paper: 0.001).
	BatchFraction float64
	// MinBatchSize floors the batch size on scaled-down streams so
	// per-batch F1 stays measurable (default 32; irrelevant at full
	// scale where the paper's batches are 45-1025 rows anyway).
	MinBatchSize int
	// Datasets and Models select subsets (nil = all).
	Datasets []string
	Models   []string
	// Parallel runs up to this many (stream, model) evaluations
	// concurrently (default 1). Each run owns its stream and classifier,
	// so results are identical to the sequential order — this implements
	// the parallelisation the paper defers to future work (Section V-D).
	Parallel int
	// ScorerMode, when non-empty, evaluates every cell through the
	// serving layer ("locked", "snapshot" or "sharded"; see
	// Runner.ScorerMode).
	ScorerMode string
	// Shards is the replica count of the "sharded" scorer mode.
	Shards int
	// CheckpointDir persists every finished cell's result for resume
	// (see Runner.CheckpointDir); Resume skips cells already completed
	// there.
	CheckpointDir string
	Resume        bool
	// Progress, when non-nil, receives one line per finished run.
	Progress io.Writer
}

func (s Suite) withDefaults() Suite {
	if s.Scale <= 0 || s.Scale > 1 {
		s.Scale = 1
	}
	if s.BatchFraction <= 0 {
		s.BatchFraction = 0.001
	}
	if s.MinBatchSize < 1 {
		s.MinBatchSize = 32
	}
	if len(s.Datasets) == 0 {
		s.Datasets = datasets.Names()
	}
	if len(s.Models) == 0 {
		s.Models = AllModels()
	}
	if s.Parallel < 1 {
		s.Parallel = 1
	}
	return s
}

// SuiteResult holds every prequential run of a suite.
type SuiteResult struct {
	Suite   Suite
	Entries []datasets.Entry
	// Results[dataset][model]
	Results map[string]map[string]Result
}

// Cells expands the suite into its experiment cells (every selected model
// on every selected stream, all sharing the suite seed — the paper's
// protocol, where every model sees the identical stream).
func (s Suite) Cells() ([]Cell, error) {
	s = s.withDefaults()
	var cells []Cell
	for _, dsName := range s.Datasets {
		entry, err := datasets.ByName(dsName)
		if err != nil {
			return nil, err
		}
		for _, modelName := range s.Models {
			cells = append(cells, Cell{Dataset: entry, Model: modelName, Seed: s.Seed})
		}
	}
	return cells, nil
}

// Run executes the suite, sequentially or with Parallel workers.
func (s Suite) Run() (*SuiteResult, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the suite under a context: cancellation stops the
// in-flight cells at their next iteration and returns the completed
// cells together with ctx.Err(). Every cell builds its own stream and
// classifier from the suite seed, so the results are identical
// regardless of the degree of parallelism.
func (s Suite) RunContext(ctx context.Context) (*SuiteResult, error) {
	s = s.withDefaults()
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	r := Runner{
		Workers:       s.Parallel,
		Scale:         s.Scale,
		BatchFraction: s.BatchFraction,
		MinBatchSize:  s.MinBatchSize,
		ScorerMode:    s.ScorerMode,
		Shards:        s.Shards,
		CheckpointDir: s.CheckpointDir,
		Resume:        s.Resume,
		Progress:      s.Progress,
	}
	out, err := r.Run(ctx, cells)
	if out != nil {
		out.Suite = s
	}
	return out, err
}

// driftDatasets are the Table I streams with known concept drift, used by
// the paper for the second Table VI category.
var driftDatasets = map[string]bool{
	"TueEyeQ": true, "Insects-Abr.": true, "Insects-Inc.": true,
	"SEA": true, "Agrawal": true, "Hyperplane": true,
}

// metricCell renders one model/dataset cell plus the paper reference.
func (r *SuiteResult) metricCell(entry datasets.Entry, modelName string,
	get func(Result) (float64, float64), paper map[string]float64, decimals int) string {
	res, ok := r.Results[entry.Name][modelName]
	if !ok {
		return "-"
	}
	mean, std := get(res)
	cell := fmtMS(mean, std, decimals)
	if ref, ok := paper[modelName]; ok {
		cell += fmt.Sprintf(" (p:%.*f)", decimals, ref)
	}
	return cell
}

// metricTable renders one paper table: models as rows, data sets as
// columns, a rightmost cross-data-set mean, and the paper's reported
// value in parentheses.
func (r *SuiteResult) metricTable(title string, models []string,
	get func(Result) (float64, float64), paper func(datasets.Entry) map[string]float64, decimals int) string {

	header := []string{"Model"}
	for _, e := range r.Entries {
		header = append(header, e.DisplayName())
	}
	header = append(header, "Mean")
	t := newTable(title, header...)
	for _, m := range models {
		row := []string{m}
		var sum float64
		var count int
		for _, e := range r.Entries {
			row = append(row, r.metricCell(e, m, get, paper(e), decimals))
			if res, ok := r.Results[e.Name][m]; ok {
				mean, _ := get(res)
				sum += mean
				count++
			}
		}
		meanCell := "-"
		if count > 0 {
			meanCell = fmt.Sprintf("%.*f", decimals, sum/float64(count))
		}
		row = append(row, meanCell)
		t.addRow(row...)
	}
	return t.render()
}

// Table1 renders the data set inventory of Table I.
func (r *SuiteResult) Table1() string {
	t := newTable("Table I: Data sets ('*' marks offline surrogates; see DESIGN.md §4)",
		"Name", "#Samples", "#Features", "#Classes", "#Majority", "Drift")
	for _, e := range r.Entries {
		maj := "-"
		if e.MajorityCount > 0 {
			maj = fmt.Sprintf("%d (%.1f%%)", e.MajorityCount, 100*e.MajorityShare())
		}
		t.addRow(e.DisplayName(), fmt.Sprintf("%d", e.Samples), fmt.Sprintf("%d", e.Features),
			fmt.Sprintf("%d", e.Classes), maj, e.DriftNote)
	}
	return t.render()
}

// Table2 renders the F1 table (Table II; paper values in parentheses).
func (r *SuiteResult) Table2() string {
	return r.metricTable("Table II: F1 measure, mean ± std over prequential iterations (p: = paper)",
		r.modelsPresent(AllModels()), Result.F1,
		func(e datasets.Entry) map[string]float64 { return e.PaperF1 }, 2)
}

// Table3 renders the number-of-splits table (Table III).
func (r *SuiteResult) Table3() string {
	return r.metricTable("Table III: No. of splits, mean ± std (p: = paper)",
		r.modelsPresent(TreeModels()), Result.Splits,
		func(e datasets.Entry) map[string]float64 { return e.PaperSplits }, 1)
}

// Table4 renders the number-of-parameters table (Table IV).
func (r *SuiteResult) Table4() string {
	return r.metricTable("Table IV: No. of parameters, mean ± std (p: = paper)",
		r.modelsPresent(TreeModels()), Result.Params,
		func(e datasets.Entry) map[string]float64 { return e.PaperParams }, 0)
}

// Table5 renders the computation-time table (Table V): the mean and std of
// one test/train iteration across all data sets.
func (r *SuiteResult) Table5() string {
	t := newTable("Table V: Computation time per test/train iteration in seconds",
		"Model", "Seconds (mean ± std)")
	for _, m := range r.modelsPresent(StandaloneModels()) {
		var all []float64
		for _, e := range r.Entries {
			if res, ok := r.Results[e.Name][m]; ok {
				all = append(all, res.Series(func(s IterStats) float64 { return s.Seconds })...)
			}
		}
		var mean, std float64
		if len(all) > 0 {
			var sum float64
			for _, v := range all {
				sum += v
			}
			mean = sum / float64(len(all))
			var m2 float64
			for _, v := range all {
				m2 += (v - mean) * (v - mean)
			}
			std = math.Sqrt(m2 / float64(len(all)))
		}
		t.addRow(m, fmtMS(mean, std, 4))
	}
	return t.render()
}

// categoryMeans computes, per model: overall F1, F1 on known-drift
// streams, mean splits, and mean seconds.
func (r *SuiteResult) categoryMeans(models []string) (overall, drift, splits, seconds []float64) {
	for _, m := range models {
		var f1All, f1Drift, spl, sec []float64
		for _, e := range r.Entries {
			res, ok := r.Results[e.Name][m]
			if !ok {
				continue
			}
			f1, _ := res.F1()
			f1All = append(f1All, f1)
			if driftDatasets[e.Name] {
				f1Drift = append(f1Drift, f1)
			}
			sp, _ := res.Splits()
			spl = append(spl, sp)
			sc, _ := res.Seconds()
			sec = append(sec, sc)
		}
		overall = append(overall, meanOf(f1All))
		drift = append(drift, meanOf(f1Drift))
		splits = append(splits, meanOf(spl))
		seconds = append(seconds, meanOf(sec))
	}
	return overall, drift, splits, seconds
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Table6 renders the experiment summary (Table VI) with the paper's
// ++/+/-/-- methodology over the four categories.
func (r *SuiteResult) Table6() string {
	models := r.modelsPresent(StandaloneModels())
	overall, drift, splits, seconds := r.categoryMeans(models)
	symOverall := rankSymbols(overall, true)
	symDrift := rankSymbols(drift, true)
	symSplits := rankSymbols(splits, false)
	symSeconds := rankSymbols(seconds, false)

	t := newTable("Table VI: Experiment summary (++ best, -- worst, +/- vs median)",
		"Model", "Overall Pred. Performance", "Pred. Performance For Known Drift",
		"Complexity/Interpretability", "Computational Efficiency")
	for i, m := range models {
		t.addRow(m, symOverall[i], symDrift[i], symSplits[i], symSeconds[i])
	}
	return t.render()
}

// modelsPresent filters a model list to those that actually ran.
func (r *SuiteResult) modelsPresent(models []string) []string {
	var out []string
	for _, m := range models {
		for _, e := range r.Entries {
			if _, ok := r.Results[e.Name][m]; ok {
				out = append(out, m)
				break
			}
		}
	}
	return out
}

// figure3Datasets are the four panels of Figure 3.
var figure3Datasets = []string{"Hyperplane", "SEA", "Insects-Inc.", "TueEyeQ"}

// Figure3 renders, for each Figure 3 panel present in the results, the
// sliding-window (w=20) F1 and log number-of-splits series: an ASCII
// chart plus a CSV block for external plotting.
func (r *SuiteResult) Figure3(window int) string {
	if window <= 0 {
		window = 20
	}
	var sb strings.Builder
	for _, ds := range figure3Datasets {
		byModel, ok := r.Results[ds]
		if !ok {
			continue
		}
		models := r.modelsPresent(StandaloneModels())
		var f1Series, splitSeries [][]float64
		var names []string
		for _, m := range models {
			res, ok := byModel[m]
			if !ok {
				continue
			}
			names = append(names, m)
			f1Series = append(f1Series, SlidingMean(res.Series(func(s IterStats) float64 { return s.F1 }), window))
			logSplits := res.Series(func(s IterStats) float64 { return math.Log(math.Max(s.Splits, 1)) })
			splitSeries = append(splitSeries, SlidingMean(logSplits, window))
		}
		if len(names) == 0 {
			continue
		}
		entry, _ := datasets.ByName(ds)
		sb.WriteString(asciiChart(fmt.Sprintf("Figure 3: %s — F1 (sliding window %d)", entry.DisplayName(), window),
			names, f1Series, 90, 14))
		sb.WriteString(asciiChart(fmt.Sprintf("Figure 3: %s — log No. of Splits (sliding window %d)", entry.DisplayName(), window),
			names, splitSeries, 90, 14))
		sb.WriteString(figureCSV(ds, names, f1Series, splitSeries))
		sb.WriteString("\n")
	}
	return sb.String()
}

// figureCSV emits the raw series as CSV for external plotting.
func figureCSV(ds string, names []string, f1, splits [][]float64) string {
	var sb strings.Builder
	sb.WriteString("csv: dataset,iter")
	for _, n := range names {
		sb.WriteString(",f1:" + n + ",logsplits:" + n)
	}
	sb.WriteString("\n")
	iters := len(f1[0])
	step := maxInt(iters/50, 1) // cap csv rows for readability
	for i := 0; i < iters; i += step {
		fmt.Fprintf(&sb, "csv: %s,%d", ds, i)
		for s := range names {
			fmt.Fprintf(&sb, ",%.4f,%.4f", f1[s][i], splits[s][i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure4 renders the predictive-performance versus complexity scatter of
// Figure 4: one point per (model, data set).
func (r *SuiteResult) Figure4() string {
	t := newTable("Figure 4: Avg F1 vs avg log(No. of Splits), one row per (model, data set)",
		"Model", "Data set", "Avg F1", "Avg log(splits)")
	models := r.modelsPresent(StandaloneModels())
	var pts [][]float64
	var names []string
	for _, m := range models {
		var xs, ys []float64
		for _, e := range r.Entries {
			res, ok := r.Results[e.Name][m]
			if !ok {
				continue
			}
			f1, _ := res.F1()
			sp, _ := res.Splits()
			logSp := math.Log(math.Max(sp, 1e-9))
			t.addRow(m, e.DisplayName(), fmt.Sprintf("%.3f", f1), fmt.Sprintf("%.2f", logSp))
			xs = append(xs, logSp)
			ys = append(ys, f1)
		}
		if len(xs) > 0 {
			pts = append(pts, []float64{meanOf(xs), meanOf(ys)})
			names = append(names, m)
		}
	}
	var sb strings.Builder
	sb.WriteString(t.render())
	sb.WriteString("\nPer-model centroids (avg over data sets):\n")
	for i, m := range names {
		sb.WriteString(fmt.Sprintf("  %-12s avg log(splits)=%6.2f  avg F1=%.3f\n", m, pts[i][0], pts[i][1]))
	}
	return sb.String()
}
