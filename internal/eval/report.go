package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// fmtMS renders "mean ± std" with the given number of decimals.
func fmtMS(mean, std float64, decimals int) string {
	return fmt.Sprintf("%.*f ± %.*f", decimals, mean, decimals, std)
}

// table is a minimal fixed-width text table builder.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// rankSymbols assigns the paper's Table VI methodology to a score vector:
// best "++", worst "--", otherwise "+" when at or above the median and
// "-" below. higherBetter selects the orientation.
func rankSymbols(scores []float64, higherBetter bool) []string {
	n := len(scores)
	out := make([]string, n)
	if n == 0 {
		return out
	}
	oriented := make([]float64, n)
	for i, s := range scores {
		if higherBetter {
			oriented[i] = s
		} else {
			oriented[i] = -s
		}
	}
	best, worst := 0, 0
	for i, s := range oriented {
		if s > oriented[best] {
			best = i
		}
		if s < oriented[worst] {
			worst = i
		}
	}
	sorted := append([]float64(nil), oriented...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	if n%2 == 0 {
		median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	for i, s := range oriented {
		switch {
		case i == best:
			out[i] = "++"
		case i == worst:
			out[i] = "--"
		case s >= median:
			out[i] = "+"
		default:
			out[i] = "-"
		}
	}
	return out
}

// asciiChart renders multiple series as a small text line chart: one
// symbol per series, y rescaled to the joint range, x resampled to width.
func asciiChart(title string, names []string, series [][]float64, width, height int) string {
	if len(series) == 0 || len(series[0]) == 0 {
		return title + " (no data)\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for col := 0; col < width; col++ {
			idx := col * (len(s) - 1) / maxInt(width-1, 1)
			v := s[idx]
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row >= 0 && row < height {
				grid[row][col] = sym
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for r, rowBytes := range grid {
		label := "      "
		switch r {
		case 0:
			label = fmt.Sprintf("%6.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%6.2f", lo)
		}
		sb.WriteString(label + " |" + string(rowBytes) + "\n")
	}
	sb.WriteString("        " + strings.Repeat("-", width) + "\n")
	legend := make([]string, len(names))
	for i, n := range names {
		legend[i] = fmt.Sprintf("%c=%s", symbols[i%len(symbols)], n)
	}
	sb.WriteString("        " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
