package eval

import (
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/datasets"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/serve"
)

// Cell is one experiment cell of a suite: a model evaluated prequentially
// on one stream with a fixed seed. Cells are self-contained — every cell
// builds its own stream and classifier — so a Runner can execute them in
// any order and on any number of workers without changing the results.
type Cell struct {
	Dataset datasets.Entry
	Model   string
	// Seed fixes this cell's stream and model. CellSeed derives
	// scheduling-independent per-cell seeds from a base seed.
	Seed int64
}

// CellSeed derives a deterministic per-cell seed from a base seed and the
// cell's coordinates (FNV-1a over the names, folded with the base). Two
// cells of the same suite never share streams or model initialisation,
// and the derivation does not depend on worker scheduling.
func CellSeed(base int64, dataset, model string) int64 {
	h := fnv.New64a()
	io.WriteString(h, dataset)
	io.WriteString(h, "\x00")
	io.WriteString(h, model)
	// Clear the sign bit after folding in the base so derived seeds stay
	// non-negative even for negative bases — several generators treat
	// the seed as an offset.
	return (base ^ int64(h.Sum64())) & 0x7fffffffffffffff
}

// Runner executes experiment cells concurrently. It is the engine behind
// Suite.Run and the serving-oriented replacement for driving Prequential
// by hand: cells fan out across Workers goroutines, each cell owns its
// stream and classifier, and the merged SuiteResult is byte-identical to
// a sequential run of the same cells — the parallelisation the paper
// defers to future work (Section V-D) without giving up reproducibility.
type Runner struct {
	// Workers is the degree of parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Scale shrinks every stream to Scale * its original length
	// (<= 0 or > 1 means full size).
	Scale float64
	// BatchFraction is the prequential batch size (default 0.001).
	BatchFraction float64
	// MinBatchSize floors the batch size (default 32 on scaled streams).
	MinBatchSize int
	// ScorerMode, when non-empty, evaluates every cell through the
	// serving layer instead of the bare classifier: "locked" (RWMutex),
	// "snapshot" (lock-free atomic snapshots; per-batch publish keeps the
	// results byte-identical to the bare model) or "sharded" (rows hash
	// across Shards independent replicas — a different algorithm, so
	// results differ by design).
	ScorerMode string
	// Shards is the replica count of the "sharded" mode (default 2).
	Shards int
	// CheckpointDir, when non-empty, persists every finished cell's
	// Result to one file per cell in that directory (written atomically:
	// temp file + rename, so a kill mid-write never leaves a corrupt
	// cell). Combined with Resume, an interrupted grid restarts without
	// redoing completed work.
	CheckpointDir string
	// Resume loads matching cell files from CheckpointDir instead of
	// re-running those cells. Cells are deterministic in (dataset,
	// model, seed, scale, batching, scorer mode), so a resumed grid is
	// byte-identical to an uninterrupted run of the same configuration
	// — loaded cells verbatim (including their recorded timings), re-run
	// cells by determinism. Files whose configuration does not match are
	// ignored and the cell re-runs.
	Resume bool
	// ModelCheckpointEvery, when > 0 together with CheckpointDir,
	// additionally records the model's own state every N prequential
	// iterations into a per-cell "<cell>.model" stream: full checkpoint
	// envelopes as keyframes, REPRODLT delta envelopes between them
	// (replayable with ReplayModelStream). 0 disables model streams.
	ModelCheckpointEvery int
	// KeyframeEvery is the model-stream keyframe cadence: every N-th
	// capture is a full envelope, the captures between are deltas
	// against their predecessor (default 16).
	KeyframeEvery int
	// Progress, when non-nil, receives one line per finished cell.
	Progress io.Writer
}

func (r Runner) workers(cells int) int {
	w := r.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > cells {
		w = cells
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run evaluates every cell and merges the results into a SuiteResult.
// The first cell failure cancels the remaining cells via the derived
// context and returns (nil, that error). A cancelled parent context
// returns the cells completed so far together with ctx.Err(), so a long
// interrupted grid keeps its finished work.
func (r Runner) Run(ctx context.Context, cells []Cell) (*SuiteResult, error) {
	scale := r.Scale
	if scale <= 0 || scale > 1 {
		scale = 1
	}

	out := &SuiteResult{Results: map[string]map[string]Result{}}
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Dataset.Name] {
			seen[c.Dataset.Name] = true
			out.Entries = append(out.Entries, c.Dataset)
			out.Results[c.Dataset.Name] = map[string]Result{}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex // guards Results and Progress
		failOnce sync.Once  // guards the first-error capture and the cancel
		firstErr error
		wg       sync.WaitGroup
		next     = make(chan Cell)
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	var scorerMode serve.Mode
	if r.ScorerMode != "" {
		var err error
		if scorerMode, err = serve.ParseMode(r.ScorerMode); err != nil {
			return nil, err
		}
	}

	if r.CheckpointDir != "" {
		if err := os.MkdirAll(r.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("eval: create checkpoint dir: %w", err)
		}
	}
	if r.CheckpointDir != "" && r.Resume {
		// Resume pass: cells whose stored result matches this run's
		// configuration are taken verbatim and never dispatched.
		var remaining []Cell
		for _, c := range cells {
			res, ok := r.loadCell(c, scale)
			if !ok {
				remaining = append(remaining, c)
				continue
			}
			out.Results[c.Dataset.Name][c.Model] = res
			if r.Progress != nil {
				f1, _ := res.F1()
				fmt.Fprintf(r.Progress, "resumed: %-12s on %-14s F1=%.3f iters=%d (checkpoint)\n",
					c.Model, c.Dataset.DisplayName(), f1, len(res.Iters))
			}
		}
		cells = remaining
	}

	runCell := func(c Cell) error {
		strm := c.Dataset.New(scale, c.Seed)
		var clf model.Classifier
		var err error
		if scorerMode != "" {
			// The registry-driven serving path: the same construction
			// cmd/dmtbench and repro.Serve use, so the suite exercises
			// the serving layer end to end.
			clf, err = serve.New(serve.Config{
				Model:   c.Model,
				Schema:  strm.Schema(),
				Options: []registry.Option{registry.WithSeed(c.Seed)},
				Mode:    scorerMode,
				Shards:  r.Shards,
			})
		} else {
			clf, err = NewClassifier(c.Model, strm.Schema(), c.Seed)
		}
		if err != nil {
			return err
		}
		opts := Options{
			BatchFraction: r.BatchFraction,
			MinBatchSize:  r.MinBatchSize,
		}
		var ms *modelStream
		var msTmp *os.File
		if r.CheckpointDir != "" && r.ModelCheckpointEvery > 0 {
			msTmp, err = os.CreateTemp(r.CheckpointDir, ".model-*")
			if err != nil {
				return fmt.Errorf("eval: model stream %s/%s: %w", c.Dataset.Name, c.Model, err)
			}
			defer os.Remove(msTmp.Name())
			defer msTmp.Close()
			kf := r.KeyframeEvery
			if kf <= 0 {
				kf = 16
			}
			ms = newModelStream(msTmp, kf)
			every := r.ModelCheckpointEvery
			opts.AfterTrain = func(iter int, c model.Classifier) error {
				if (iter+1)%every != 0 {
					return nil
				}
				return ms.capture(c)
			}
		}
		res, err := PrequentialContext(ctx, clf, strm, opts)
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-cell: not a cell failure. The partial
				// cell is dropped; completed cells stay in the result.
				return nil
			}
			return fmt.Errorf("eval: %s on %s: %w", c.Model, c.Dataset.Name, err)
		}
		if r.CheckpointDir != "" {
			if err := r.saveCell(c, scale, res); err != nil {
				return err
			}
		}
		if ms != nil {
			// The final state is always recorded, so replaying the stream's
			// tail reconstructs exactly the model the run finished with.
			if err := ms.capture(clf); err != nil {
				return fmt.Errorf("eval: model stream %s/%s: %w", c.Dataset.Name, c.Model, err)
			}
			if err := msTmp.Close(); err != nil {
				return fmt.Errorf("eval: model stream %s/%s: %w", c.Dataset.Name, c.Model, err)
			}
			if err := os.Rename(msTmp.Name(), r.modelFile(c)); err != nil {
				return fmt.Errorf("eval: model stream %s/%s: %w", c.Dataset.Name, c.Model, err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		out.Results[c.Dataset.Name][c.Model] = res
		if r.Progress != nil {
			f1, _ := res.F1()
			sp, _ := res.Splits()
			fmt.Fprintf(r.Progress, "done: %-12s on %-14s F1=%.3f splits=%.1f iters=%d\n",
				c.Model, c.Dataset.DisplayName(), f1, sp, len(res.Iters))
		}
		return nil
	}

	for w := 0; w < r.workers(len(cells)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range next {
				if ctx.Err() != nil {
					continue // drain remaining cells after cancellation
				}
				if err := runCell(c); err != nil {
					fail(err)
				}
			}
		}()
	}
	for _, c := range cells {
		next <- c
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// cellConfig identifies one cell run configuration; stale checkpoint
// files from a different setup are rejected by comparing it.
type cellConfig struct {
	Dataset       string
	Model         string
	Seed          int64
	Scale         float64
	BatchFraction float64
	MinBatchSize  int
	ScorerMode    string
	Shards        int
}

// cellCheckpoint is the persisted record of one finished cell: its full
// configuration plus its result, gob-encoded — floats round-trip bit-
// exactly, so a resumed grid reproduces the original numbers verbatim.
type cellCheckpoint struct {
	Config cellConfig
	Result Result
}

func (r Runner) cellConfig(c Cell, scale float64) cellConfig {
	return cellConfig{
		Dataset: c.Dataset.Name, Model: c.Model, Seed: c.Seed,
		Scale: scale, BatchFraction: r.BatchFraction, MinBatchSize: r.MinBatchSize,
		ScorerMode: r.ScorerMode, Shards: r.Shards,
	}
}

// sanitizeComponent maps a dataset/model name onto a filesystem-safe
// file-name component.
func sanitizeComponent(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

// cellFile returns the checkpoint path of a cell.
func (r Runner) cellFile(c Cell) string {
	name := fmt.Sprintf("%s__%s__%d.cell", sanitizeComponent(c.Dataset.Name), sanitizeComponent(c.Model), c.Seed)
	return filepath.Join(r.CheckpointDir, name)
}

// modelFile returns the model-state stream path of a cell.
func (r Runner) modelFile(c Cell) string {
	name := fmt.Sprintf("%s__%s__%d.model", sanitizeComponent(c.Dataset.Name), sanitizeComponent(c.Model), c.Seed)
	return filepath.Join(r.CheckpointDir, name)
}

// saveCell atomically persists a finished cell (temp file + rename).
func (r Runner) saveCell(c Cell, scale float64, res Result) error {
	path := r.cellFile(c)
	tmp, err := os.CreateTemp(r.CheckpointDir, ".cell-*")
	if err != nil {
		return fmt.Errorf("eval: checkpoint cell %s/%s: %w", c.Dataset.Name, c.Model, err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(cellCheckpoint{Config: r.cellConfig(c, scale), Result: res}); err != nil {
		tmp.Close()
		return fmt.Errorf("eval: checkpoint cell %s/%s: %w", c.Dataset.Name, c.Model, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("eval: checkpoint cell %s/%s: %w", c.Dataset.Name, c.Model, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("eval: checkpoint cell %s/%s: %w", c.Dataset.Name, c.Model, err)
	}
	return nil
}

// loadCell reads a cell checkpoint, returning ok only when the file
// exists, decodes cleanly and matches this run's configuration.
// Unreadable or mismatched files are treated as absent (the cell simply
// re-runs), never as fatal: a half-written or stale file must not take
// down a resume.
func (r Runner) loadCell(c Cell, scale float64) (Result, bool) {
	f, err := os.Open(r.cellFile(c))
	if err != nil {
		return Result{}, false
	}
	defer f.Close()
	var ck cellCheckpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return Result{}, false
	}
	if ck.Config != r.cellConfig(c, scale) {
		return Result{}, false
	}
	return ck.Result, true
}
