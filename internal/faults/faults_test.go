package faults

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Same seed + same traffic order => the exact same fault sequence.
func TestDeterministicDecisions(t *testing.T) {
	rules := []Rule{
		{Kind: Drop, P: 0.3},
		{Kind: Status, P: 0.2, Status: 503},
	}
	run := func() []bool {
		in := New(42, rules...)
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = in.decide("/v1/envelope")
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no faults fired in 200 requests at ~44% combined rate")
	}
	in := New(43, rules...)
	diff := 0
	for i := range a {
		_, hit := in.decide("/v1/envelope")
		if hit != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seed produced an identical fault sequence")
	}
}

// After/Until stage a deterministic outage window.
func TestScheduleWindow(t *testing.T) {
	in := New(1, Rule{Kind: Drop, P: 1, After: 3, Until: 6})
	for i := 0; i < 10; i++ {
		_, hit := in.decide("/")
		want := i >= 3 && i < 6
		if hit != want {
			t.Fatalf("request %d: injected=%v, want %v", i, hit, want)
		}
	}
	if got := in.Injected(Drop); got != 3 {
		t.Fatalf("injected %d drops, want 3", got)
	}
}

// PathPrefix scopes a rule; other paths pass clean.
func TestPathPrefixScoping(t *testing.T) {
	in := New(1, Rule{Kind: Drop, P: 1, PathPrefix: "/v1/envelope"})
	if _, hit := in.decide("/v1/predict"); hit {
		t.Fatal("rule fired outside its path prefix")
	}
	if _, hit := in.decide("/v1/envelope"); !hit {
		t.Fatal("rule did not fire on its path prefix")
	}
}

func TestRoundTripperFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1000))
	}))
	defer ts.Close()

	t.Run("drop is a net.Error", func(t *testing.T) {
		client := New(1, Rule{Kind: Drop, P: 1}).Client(time.Second)
		_, err := client.Get(ts.URL)
		var ne net.Error
		if !errors.As(err, &ne) {
			t.Fatalf("injected drop is not a net.Error: %v", err)
		}
		if ne.Timeout() {
			t.Fatal("injected drop reports Timeout")
		}
	})

	t.Run("status synthesizes retry-after", func(t *testing.T) {
		client := New(1, Rule{Kind: Status, P: 1, Status: 429, RetryAfter: 2 * time.Second}).Client(time.Second)
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 429 {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "2" {
			t.Fatalf("Retry-After %q, want \"2\"", ra)
		}
		body, _ := io.ReadAll(resp.Body)
		if len(body) == 0 {
			t.Fatal("synthesized response has no body")
		}
	})

	t.Run("truncate cuts the body cleanly", func(t *testing.T) {
		client := New(1, Rule{Kind: Truncate, P: 1, KeepBytes: 100}).Client(time.Second)
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("truncated body must end in a clean EOF, got %v", err)
		}
		if len(body) != 100 {
			t.Fatalf("read %d bytes, want 100", len(body))
		}
	})

	t.Run("delay holds the request", func(t *testing.T) {
		client := New(1, Rule{Kind: Delay, P: 1, Delay: 50 * time.Millisecond}).Client(5 * time.Second)
		start := time.Now()
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if d := time.Since(start); d < 50*time.Millisecond {
			t.Fatalf("request returned in %v, want >= 50ms", d)
		}
	})
}

func TestListenerDropAndCut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// First connection dropped, the rest cut after 10 bytes.
	in := New(1,
		Rule{Kind: Drop, P: 1, Until: 1},
		Rule{Kind: Truncate, P: 1, KeepBytes: 10, After: 1},
	)
	fl := in.Listener(ln)
	defer fl.Close()
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write([]byte(strings.Repeat("y", 100)))
			}(c)
		}
	}()

	// Connection 1 is dropped: the server never writes anything.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	n1, _ := io.ReadAll(c1)
	c1.Close()
	if len(n1) != 0 {
		t.Fatalf("dropped connection delivered %d bytes", len(n1))
	}

	// Connection 2 is cut after 10 bytes.
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(c2)
	c2.Close()
	if len(got) > 10 {
		t.Fatalf("cut connection delivered %d bytes, want <= 10", len(got))
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("drop@0.1, reset@0.2, delay=50ms@0.3, status=503@0.4, status=429, truncate=256@0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: Drop, P: 0.1},
		{Kind: Reset, P: 0.2},
		{Kind: Delay, P: 0.3, Delay: 50 * time.Millisecond},
		{Kind: Status, P: 0.4, Status: 503},
		{Kind: Status, P: 1, Status: 429, RetryAfter: time.Second},
		{Kind: Truncate, P: 0.5, KeepBytes: 256},
	}
	if len(rules) != len(want) {
		t.Fatalf("%d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d: %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"", "zap@0.1", "drop@1.5", "delay@0.1", "status=abc", "truncate=-1", "drop=3"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
