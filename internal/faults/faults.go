// Package faults is a deterministic fault-injection harness for the
// network serving tier: a seedable Injector that wraps an
// http.RoundTripper (client side) or a net.Listener (server side) and
// injects failures from a fixed rule set — dropped connections,
// connection resets, added latency, synthesized 5xx/429 responses and
// truncated bodies — with per-rule probability and an optional
// request-count schedule (an outage window).
//
// Determinism is the point: the Injector draws every probability coin
// from one seeded source in request order, and a rule's schedule is
// keyed to its own matching-request counter, so a test (or `dmtserve
// -chaos`) replays the exact same fault sequence for the same seed and
// traffic order. Injected errors implement net.Error, so clients
// classify them exactly like real network failures.
package faults

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a fault class.
type Kind int

const (
	// Drop fails the request as if the dial never connected.
	Drop Kind = iota
	// Reset fails the request as if the peer reset the connection
	// (listener side: the accepted connection is cut after KeepBytes
	// written, with SO_LINGER 0 so TCP sends a real RST).
	Reset
	// Delay holds the request for Rule.Delay before forwarding it.
	Delay
	// Status short-circuits with a synthesized Rule.Status response
	// (e.g. 503, or a 429 carrying a Retry-After hint).
	Status
	// Truncate forwards the request but cuts the response body after
	// Rule.KeepBytes — the checkpoint-envelope corruption case: the
	// client sees a complete-looking but short body, which the persist
	// layer's framing/CRC must reject.
	Truncate

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Delay:
		return "delay"
	case Status:
		return "status"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Rule is one fault class with its probability and schedule. The zero
// schedule applies to every matching request; After/Until restrict the
// rule to matching requests [After, Until) in arrival order (Until 0 =
// unbounded), which is how tests stage a deterministic outage window.
type Rule struct {
	// Kind is the fault class.
	Kind Kind
	// P is the injection probability in [0, 1].
	P float64
	// Delay is the added latency of a Delay rule.
	Delay time.Duration
	// Status is the synthesized status code of a Status rule.
	Status int
	// RetryAfter, when positive on a Status rule, stamps the response
	// with a Retry-After header (whole seconds, rounded up).
	RetryAfter time.Duration
	// KeepBytes is how much of the body a Truncate (or listener-side
	// Reset) lets through before cutting.
	KeepBytes int
	// PathPrefix restricts a client-side rule to request paths with
	// this prefix ("" matches everything; listener-side decisions have
	// no path, so prefixed rules never fire there).
	PathPrefix string
	// After and Until bound the rule to matching requests [After,
	// Until) in arrival order; Until 0 means no upper bound.
	After, Until int
}

// Injector decides, per request (or per accepted connection), whether
// one of its rules fires. Decisions consume one random draw per
// matching rule whether or not it fires, so the fault sequence is a
// pure function of the seed and the traffic order. Safe for concurrent
// use; concurrent traffic is serialised at the decision point.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	rules   []Rule
	matched []int // per-rule matching-request counters (the schedule cursor)

	seen     atomic.Uint64
	injected [numKinds]atomic.Uint64
}

// New builds an Injector over the rules with a seeded random source.
func New(seed int64, rules ...Rule) *Injector {
	rs := make([]Rule, len(rules))
	copy(rs, rules)
	for i := range rs {
		rs[i].P = math.Min(math.Max(rs[i].P, 0), 1)
	}
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		rules:   rs,
		matched: make([]int, len(rs)),
	}
}

// NewFromSpec is New over Parse(spec).
func NewFromSpec(seed int64, spec string) (*Injector, error) {
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...), nil
}

// decide returns the first rule that fires for this request, consuming
// one coin per matching rule regardless of outcome.
func (in *Injector) decide(path string) (Rule, bool) {
	in.seen.Add(1)
	in.mu.Lock()
	defer in.mu.Unlock()
	fired, hit := Rule{}, false
	for i, r := range in.rules {
		if r.PathPrefix != "" && !strings.HasPrefix(path, r.PathPrefix) {
			continue
		}
		n := in.matched[i]
		in.matched[i]++
		coin := in.rng.Float64()
		if hit {
			continue // coin consumed; a rule already fired
		}
		if n < r.After || (r.Until > 0 && n >= r.Until) {
			continue
		}
		if coin < r.P {
			fired, hit = r, true
			in.injected[r.Kind].Add(1)
		}
	}
	return fired, hit
}

// Seen returns how many requests/connections were inspected.
func (in *Injector) Seen() uint64 { return in.seen.Load() }

// Injected returns how many faults of kind k were injected.
func (in *Injector) Injected(k Kind) uint64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return in.injected[k].Load()
}

// InjectedTotal returns the total injected fault count across kinds.
func (in *Injector) InjectedTotal() uint64 {
	var total uint64
	for k := Kind(0); k < numKinds; k++ {
		total += in.injected[k].Load()
	}
	return total
}

// String summarises traffic and injections, e.g. for a -chaos exit log.
func (in *Injector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults: %d/%d injected", in.InjectedTotal(), in.Seen())
	for k := Kind(0); k < numKinds; k++ {
		if n := in.injected[k].Load(); n > 0 {
			fmt.Fprintf(&b, " %s=%d", k, n)
		}
	}
	return b.String()
}

// Error is an injected failure. It implements net.Error so transport
// users classify it like a real network failure.
type Error struct {
	What Kind
}

// Error implements error.
func (e *Error) Error() string { return "faults: injected " + e.What.String() }

// Timeout implements net.Error (injected drops/resets are not timeouts;
// timeouts arise naturally from Delay rules against client deadlines).
func (e *Error) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *Error) Temporary() bool { return true }

var _ net.Error = (*Error)(nil)

// --- client side: RoundTripper ---------------------------------------

// RoundTripper wraps next (nil = http.DefaultTransport) with fault
// injection on every outgoing request.
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &roundTripper{in: in, next: next}
}

// Client is a convenience: an *http.Client with an injecting transport.
func (in *Injector) Client(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout, Transport: in.RoundTripper(nil)}
}

type roundTripper struct {
	in   *Injector
	next http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	r, ok := rt.in.decide(req.URL.Path)
	if !ok {
		return rt.next.RoundTrip(req)
	}
	switch r.Kind {
	case Drop:
		closeBody(req)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: &Error{What: Drop}}
	case Reset:
		closeBody(req)
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: &Error{What: Reset}}
	case Delay:
		t := time.NewTimer(r.Delay)
		select {
		case <-req.Context().Done():
			t.Stop()
			closeBody(req)
			return nil, req.Context().Err()
		case <-t.C:
		}
		return rt.next.RoundTrip(req)
	case Status:
		closeBody(req)
		h := make(http.Header)
		h.Set("Content-Type", "text/plain; charset=utf-8")
		if r.RetryAfter > 0 {
			h.Set("Retry-After", strconv.Itoa(ceilSeconds(r.RetryAfter)))
		}
		body := fmt.Sprintf("faults: injected status %d\n", r.Status)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			StatusCode:    r.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Truncate:
		resp, err := rt.next.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		// Present a complete-looking but short body: the length header
		// is dropped so the client reads KeepBytes and a clean EOF, and
		// the payload's own framing/CRC must catch the damage.
		resp.Header.Del("Content-Length")
		resp.ContentLength = -1
		resp.Body = &truncatedBody{rc: resp.Body, remain: r.KeepBytes}
		return resp, nil
	}
	return rt.next.RoundTrip(req)
}

// closeBody honours the RoundTripper contract: the request body is
// always closed, even when the transport fails before sending it.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func ceilSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// truncatedBody serves the first remain bytes of rc, then a clean EOF.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, io.EOF
	}
	if len(p) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.rc.Read(p)
	t.remain -= n
	if t.remain <= 0 && err == nil {
		err = io.EOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return t.rc.Close() }

// --- server side: Listener -------------------------------------------

// Listener wraps ln with per-connection fault injection: Drop closes
// the accepted connection immediately, Delay stalls the accept, Reset
// and Truncate cut the connection after KeepBytes written (Reset with
// SO_LINGER 0, so the peer sees a TCP RST). Status rules never fire at
// this layer.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		r, ok := l.in.decide("")
		if !ok {
			return c, nil
		}
		switch r.Kind {
		case Drop:
			c.Close()
			continue
		case Delay:
			time.Sleep(r.Delay)
			return c, nil
		case Reset:
			return &cutConn{Conn: c, remain: r.KeepBytes, rst: true}, nil
		case Truncate:
			return &cutConn{Conn: c, remain: r.KeepBytes}, nil
		default:
			return c, nil
		}
	}
}

// cutConn lets remain bytes through each direction's write side, then
// cuts the connection (with an RST when rst is set).
type cutConn struct {
	net.Conn
	mu     sync.Mutex
	remain int
	rst    bool
	done   bool
}

func (c *cutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return 0, &Error{What: Reset}
	}
	if len(p) <= c.remain {
		c.remain -= len(p)
		return c.Conn.Write(p)
	}
	n, _ := c.Conn.Write(p[:c.remain])
	c.remain, c.done = 0, true
	if c.rst {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	c.Conn.Close()
	return n, &Error{What: Reset}
}

// --- spec parsing (-chaos) -------------------------------------------

// Parse compiles a chaos spec into rules. The grammar is a
// comma-separated list of clauses:
//
//	drop@P           drop the connection with probability P
//	reset@P          reset the connection
//	delay=DUR@P      add DUR latency (e.g. delay=50ms@0.2)
//	status=CODE@P    synthesize CODE (429 responses carry Retry-After: 1)
//	truncate=N@P     cut the response body after N bytes
//
// "@P" defaults to 1 (always). Example:
//
//	drop@0.1,status=503@0.05,truncate=256@0.1
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		body, prob := clause, 1.0
		if at := strings.LastIndexByte(clause, '@'); at >= 0 {
			p, err := strconv.ParseFloat(clause[at+1:], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faults: bad probability in %q", clause)
			}
			body, prob = clause[:at], p
		}
		name, arg, hasArg := strings.Cut(body, "=")
		r := Rule{P: prob}
		switch name {
		case "drop":
			r.Kind = Drop
		case "reset":
			r.Kind = Reset
		case "delay":
			if !hasArg {
				return nil, fmt.Errorf("faults: delay needs a duration in %q", clause)
			}
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: bad delay in %q", clause)
			}
			r.Kind, r.Delay = Delay, d
		case "status":
			if !hasArg {
				return nil, fmt.Errorf("faults: status needs a code in %q", clause)
			}
			code, err := strconv.Atoi(arg)
			if err != nil || code < 100 || code > 599 {
				return nil, fmt.Errorf("faults: bad status code in %q", clause)
			}
			r.Kind, r.Status = Status, code
			if code == http.StatusTooManyRequests {
				r.RetryAfter = time.Second
			}
		case "truncate":
			if !hasArg {
				return nil, fmt.Errorf("faults: truncate needs a byte count in %q", clause)
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: bad truncate length in %q", clause)
			}
			r.Kind, r.KeepBytes = Truncate, n
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (want drop, reset, delay=, status= or truncate=)", clause)
		}
		if hasArg && (name == "drop" || name == "reset") {
			return nil, fmt.Errorf("faults: %s takes no argument in %q", name, clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: empty spec")
	}
	return rules, nil
}
