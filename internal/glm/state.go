package glm

import "fmt"

// ModelState is the serialisable state of a simple model: the flattened
// parameter vector plus the shape needed to pick the concrete type
// (binary Logit for C == 2, Softmax otherwise). Scratch buffers are
// learn-path caches and carry no state.
type ModelState struct {
	Weights []float64
	M, C    int
}

// State exports a model for checkpointing.
func State(m Model) ModelState {
	return ModelState{Weights: m.Weights(), M: m.NumFeatures(), C: m.NumClasses()}
}

// FromState reconstructs a model from its exported state.
func FromState(s ModelState) (Model, error) {
	if s.M < 1 || s.C < 2 {
		return nil, fmt.Errorf("glm: model state has shape m=%d c=%d", s.M, s.C)
	}
	m := New(s.M, s.C, nil)
	if len(s.Weights) != m.NumWeights() {
		return nil, fmt.Errorf("glm: model state has %d weights, shape m=%d c=%d wants %d",
			len(s.Weights), s.M, s.C, m.NumWeights())
	}
	m.SetWeights(s.Weights)
	return m, nil
}
