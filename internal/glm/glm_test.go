package glm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// numericGrad estimates dLoss/dW by central finite differences.
func numericGrad(m Model, X [][]float64, Y []int) []float64 {
	const h = 1e-6
	w := m.Weights()
	grad := make([]float64, len(w))
	for i := range w {
		orig := w[i]
		w[i] = orig + h
		m.SetWeights(w)
		up := m.Loss(X, Y)
		w[i] = orig - h
		m.SetWeights(w)
		down := m.Loss(X, Y)
		w[i] = orig
		grad[i] = (up - down) / (2 * h)
	}
	m.SetWeights(w)
	return grad
}

func randomBatch(rng *rand.Rand, n, m, c int) ([][]float64, []int) {
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := range X {
		X[i] = make([]float64, m)
		for j := range X[i] {
			X[i][j] = rng.Float64()
		}
		Y[i] = rng.Intn(c)
	}
	return X, Y
}

// Property: analytic gradients match finite differences for both model
// families.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	for _, c := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(c)))
		m := New(4, c, rng)
		X, Y := randomBatch(rng, 12, 4, c)
		analytic := make([]float64, m.NumWeights())
		m.LossGrad(X, Y, analytic)
		numeric := numericGrad(m, X, Y)
		for i := range analytic {
			if !almostEq(analytic[i], numeric[i], 1e-4) {
				t.Fatalf("c=%d weight %d: analytic %v vs numeric %v", c, i, analytic[i], numeric[i])
			}
		}
	}
}

// Property: RowLossGrad summed over rows equals LossGrad of the batch.
func TestRowLossGradConsistency(t *testing.T) {
	for _, c := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(10 + c)))
		m := New(3, c, rng)
		X, Y := randomBatch(rng, 20, 3, c)
		batchGrad := make([]float64, m.NumWeights())
		batchLoss := m.LossGrad(X, Y, batchGrad)
		rowGrad := make([]float64, m.NumWeights())
		sumGrad := make([]float64, m.NumWeights())
		var sumLoss float64
		for i := range X {
			sumLoss += m.RowLossGrad(X[i], Y[i], rowGrad)
			linalg.Add(sumGrad, rowGrad)
		}
		if !almostEq(batchLoss, sumLoss, 1e-10) {
			t.Fatalf("c=%d: batch loss %v vs row sum %v", c, batchLoss, sumLoss)
		}
		for i := range batchGrad {
			if !almostEq(batchGrad[i], sumGrad[i], 1e-10) {
				t.Fatalf("c=%d grad %d: %v vs %v", c, i, batchGrad[i], sumGrad[i])
			}
		}
	}
}

// Property: probabilities are a distribution for arbitrary inputs.
func TestProbaSumsToOne(t *testing.T) {
	for _, c := range []int{2, 3, 7} {
		m := New(5, c, rand.New(rand.NewSource(int64(c))))
		f := func(raw [5]float64) bool {
			x := raw[:]
			for i := range x {
				x[i] = math.Mod(x[i], 10)
				if math.IsNaN(x[i]) {
					x[i] = 0
				}
			}
			p := m.Proba(x, nil)
			var sum float64
			for _, v := range p {
				if v < 0 || v > 1 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			return almostEq(sum, 1, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
	}
}

func TestPredictAgreesWithProba(t *testing.T) {
	for _, c := range []int{2, 5} {
		rng := rand.New(rand.NewSource(int64(c * 3)))
		m := New(4, c, rng)
		for trial := 0; trial < 100; trial++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			p := m.Proba(x, nil)
			if m.Predict(x) != linalg.ArgMax(p) {
				t.Fatalf("c=%d: Predict disagrees with argmax Proba", c)
			}
		}
	}
}

// SGD on a separable problem must drive the loss down and fit the data.
func TestSGDLearnsSeparableProblem(t *testing.T) {
	for _, c := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(c)))
		m := New(2, c, rng)
		// class k clusters around (k/c, k/c)
		var X [][]float64
		var Y []int
		for i := 0; i < 600; i++ {
			k := rng.Intn(c)
			base := float64(k) / float64(c)
			X = append(X, []float64{base + 0.05*rng.NormFloat64(), base + 0.05*rng.NormFloat64()})
			Y = append(Y, k)
		}
		before := m.Loss(X, Y)
		for epoch := 0; epoch < 300; epoch++ {
			m.Step(X, Y, 0.5)
		}
		after := m.Loss(X, Y)
		if after >= before {
			t.Fatalf("c=%d: loss did not decrease (%v -> %v)", c, before, after)
		}
		correct := 0
		for i := range X {
			if m.Predict(X[i]) == Y[i] {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(X)); acc < 0.9 {
			t.Fatalf("c=%d: accuracy %v after training", c, acc)
		}
	}
}

func TestFreeParams(t *testing.T) {
	if got := New(10, 2, nil).FreeParams(); got != 11 {
		t.Fatalf("binary k = %d, want 11 (m+1)", got)
	}
	if got := New(10, 9, nil).FreeParams(); got != 88 {
		t.Fatalf("9-class k = %d, want 88 ((c-1)*(m+1))", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, c := range []int{2, 3} {
		rng := rand.New(rand.NewSource(99))
		m := New(3, c, rng)
		clone := m.Clone()
		X, Y := randomBatch(rng, 10, 3, c)
		m.Step(X, Y, 0.5)
		w1, w2 := m.Weights(), clone.Weights()
		same := true
		for i := range w1 {
			if w1[i] != w2[i] {
				same = false
			}
		}
		if same {
			t.Fatalf("c=%d: clone shares parameters", c)
		}
	}
}

func TestSetWeightsRoundTrip(t *testing.T) {
	for _, c := range []int{2, 4} {
		m := New(3, c, rand.New(rand.NewSource(5)))
		w := m.Weights()
		m2 := New(3, c, nil)
		m2.SetWeights(w)
		x := []float64{0.3, 0.6, 0.9}
		p1 := m.Proba(x, nil)
		p2 := m2.Proba(x, nil)
		for i := range p1 {
			if !almostEq(p1[i], p2[i], 1e-12) {
				t.Fatalf("c=%d: SetWeights round trip changed predictions", c)
			}
		}
	}
}

func TestNonFiniteRowsIgnored(t *testing.T) {
	for _, c := range []int{2, 3} {
		m := New(2, c, rand.New(rand.NewSource(8)))
		bad := [][]float64{{math.NaN(), 1}, {math.Inf(1), 0}}
		badY := []int{0, 1}
		if loss := m.Loss(bad, badY); loss != 0 {
			t.Fatalf("c=%d: loss on non-finite rows = %v, want 0", c, loss)
		}
		grad := make([]float64, m.NumWeights())
		if loss := m.LossGrad(bad, badY, grad); loss != 0 {
			t.Fatalf("c=%d: LossGrad loss = %v", c, loss)
		}
		for _, g := range grad {
			if g != 0 {
				t.Fatalf("c=%d: gradient leaked from non-finite rows", c)
			}
		}
		before := m.Weights()
		m.Step(bad, badY, 0.5)
		after := m.Weights()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("c=%d: Step moved weights on non-finite batch", c)
			}
		}
	}
}

func TestOutOfRangeLabelsIgnored(t *testing.T) {
	m := New(2, 3, nil)
	grad := make([]float64, m.NumWeights())
	loss := m.RowLossGrad([]float64{0.5, 0.5}, 7, grad)
	if loss != 0 {
		t.Fatalf("out-of-range label loss = %v", loss)
	}
}

func TestLogitFeatureWeightsAndBias(t *testing.T) {
	l := NewLogit(3)
	l.SetWeights([]float64{1, 2, 3, 4})
	fw := l.FeatureWeights()
	if len(fw) != 3 || fw[2] != 3 {
		t.Fatalf("FeatureWeights = %v", fw)
	}
	if l.Bias() != 4 {
		t.Fatalf("Bias = %v", l.Bias())
	}
	// returned slice is a copy
	fw[0] = 99
	if l.FeatureWeights()[0] != 1 {
		t.Fatal("FeatureWeights leaked internal state")
	}
}

func TestSoftmaxClassWeights(t *testing.T) {
	s := NewSoftmax(2, 3)
	// rows: class1 = [1,2,b=3], class2 = [4,5,b=6]
	s.SetWeights([]float64{1, 2, 3, 4, 5, 6})
	if w := s.ClassWeights(0); w[0] != 0 || w[1] != 0 {
		t.Fatal("reference class weights must be zero")
	}
	if w := s.ClassWeights(2); w[0] != 4 || w[1] != 5 {
		t.Fatalf("class 2 weights = %v", w)
	}
	if w := s.ClassWeights(99); w[0] != 0 {
		t.Fatal("out-of-range class should give zeros")
	}
}

func TestApplyGradMatchesManualUpdate(t *testing.T) {
	m := New(2, 2, rand.New(rand.NewSource(3)))
	w := m.Weights()
	g := []float64{1, -2, 0.5}
	m.ApplyGrad(g, -0.1)
	got := m.Weights()
	for i := range w {
		want := w[i] - 0.1*g[i]
		if !almostEq(got[i], want, 1e-12) {
			t.Fatalf("ApplyGrad[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestNewClassFloor(t *testing.T) {
	m := New(2, 0, nil) // floors to binary
	if m.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", m.NumClasses())
	}
}

func TestShrinkSoftThresholds(t *testing.T) {
	l := NewLogit(3)
	l.SetWeights([]float64{0.5, -0.05, 0.02, 1.0}) // bias = 1.0
	l.Shrink(0.1)
	w := l.Weights()
	if !almostEq(w[0], 0.4, 1e-12) || w[1] != 0 || w[2] != 0 {
		t.Fatalf("Shrink weights = %v", w)
	}
	if w[3] != 1.0 {
		t.Fatal("Shrink must not touch the bias")
	}
	if got := l.Sparsity(); !almostEq(got, 2.0/3, 1e-12) {
		t.Fatalf("Sparsity = %v", got)
	}
	// Non-positive threshold is a no-op.
	before := l.Weights()
	l.Shrink(0)
	after := l.Weights()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Shrink(0) changed weights")
		}
	}
}

func TestShrinkSoftmax(t *testing.T) {
	s := NewSoftmax(2, 3)
	s.SetWeights([]float64{0.3, -0.01, 5, 0.02, -0.4, 7}) // biases 5 and 7
	s.Shrink(0.05)
	w := s.Weights()
	if !almostEq(w[0], 0.25, 1e-12) || w[1] != 0 || w[3] != 0 || !almostEq(w[4], -0.35, 1e-12) {
		t.Fatalf("softmax Shrink = %v", w)
	}
	if w[2] != 5 || w[5] != 7 {
		t.Fatal("softmax Shrink touched biases")
	}
	if got := s.Sparsity(); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("softmax Sparsity = %v", got)
	}
}

// With L1 shrinkage during training, irrelevant feature weights must stay
// pinned near zero while the informative ones grow well clear of them
// (the operator's exact-zero semantics are covered by
// TestShrinkSoftThresholds; here the stochastic equilibrium matters).
func TestL1SeparatesInformativeFromIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewLogit(6)
	grad := make([]float64, m.NumWeights())
	for step := 0; step < 20000; step++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := 0
		if 3*x[0]-3*x[1] > 0 { // only features 0 and 1 matter
			y = 1
		}
		m.RowLossGrad(x, y, grad)
		m.ApplyGrad(grad, -0.05)
		m.Shrink(0.001) // per-step proximal operator
	}
	w := m.Weights()
	minInformative := math.Min(math.Abs(w[0]), math.Abs(w[1]))
	if minInformative < 0.5 {
		t.Fatalf("informative weights crushed: %v", w)
	}
	for j := 2; j < 6; j++ {
		if math.Abs(w[j]) > 0.25*minInformative {
			t.Fatalf("irrelevant weight %d not suppressed: %v", j, w)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(4, 3, rand.New(rand.NewSource(42)))
	b := New(4, 3, rand.New(rand.NewSource(42)))
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("same seed produced different initial weights")
		}
	}
	if wa[0] == 0 {
		t.Fatal("seeded init should be non-zero")
	}
}
