// Package glm implements the Generalized Linear Models the paper uses as
// simple models (Section V-A): binary logit and multinomial logit
// (softmax with a reference class), trained by stochastic gradient descent
// with a constant learning rate, under the negative log-likelihood loss
// (Section V-B).
//
// The multinomial model keeps c-1 weight vectors with class 0 as the
// reference class, so the number of free parameters is (c-1)*(m+1) — the k
// that enters the AIC-based confidence test of eq. (11).
package glm

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Model is the simple-model contract shared by the Dynamic Model Tree and
// the FIMT-DD classification variant. Implementations are deterministic
// given their construction seed.
type Model interface {
	// Step performs one gradient-descent step on the batch using the mean
	// gradient and the given learning rate (eq. 6 semantics). Rows with
	// non-finite features are skipped.
	Step(X [][]float64, Y []int, lr float64)
	// RowStep performs one gradient-descent step on a single labelled
	// row: the allocation-free equivalent of Step([][]float64{x},
	// []int{y}, lr), bit-identical to it (FIMT-DD's per-instance leaf
	// update). Non-finite rows are skipped.
	RowStep(x []float64, y int, lr float64)
	// Loss returns the summed negative log-likelihood of the batch under
	// the current parameters.
	Loss(X [][]float64, Y []int) float64
	// LossGrad returns the summed negative log-likelihood and accumulates
	// the summed gradient into grad, which must have length NumWeights.
	// grad is NOT zeroed first, so callers can accumulate across calls.
	LossGrad(X [][]float64, Y []int, grad []float64) float64
	// RowLossGrad returns the negative log-likelihood of one labelled row
	// and overwrites grad (length NumWeights) with the row's gradient.
	// Non-finite rows and out-of-range labels yield zero loss and a zero
	// gradient. The Dynamic Model Tree computes each row gradient once and
	// reuses it for the SGD step, the node accumulators and every
	// candidate's statistics (the efficiency argument of Section IV-B).
	RowLossGrad(x []float64, y int, grad []float64) float64
	// ApplyGrad adds factor*grad to the flattened parameters; the SGD
	// step of eq. (6) is ApplyGrad(gradSum, -lr/n).
	ApplyGrad(grad []float64, factor float64)
	// Proba writes the class-probability vector for x into out (length
	// NumClasses) and returns it. A nil out allocates.
	Proba(x []float64, out []float64) []float64
	// Predict returns the most probable class for x.
	Predict(x []float64) int
	// NumWeights is the length of the flattened parameter/gradient vector.
	NumWeights() int
	// FreeParams is the number of free parameters k for the AIC test.
	FreeParams() int
	// NumClasses returns c.
	NumClasses() int
	// NumFeatures returns m.
	NumFeatures() int
	// Weights returns a copy of the flattened parameter vector.
	Weights() []float64
	// SetWeights overwrites the parameters from a flattened vector of
	// length NumWeights (used to warm-start child models from a parent).
	SetWeights(w []float64)
	// Shrink applies L1 proximal soft-thresholding to the feature
	// weights (biases are exempt): w <- sign(w) * max(0, |w|-threshold).
	// This is the sparsity / online-feature-selection extension the
	// paper's introduction links to interpretability (Section I-A) and
	// Section V-A lists as future work.
	Shrink(threshold float64)
	// Sparsity returns the fraction of feature weights that are exactly
	// zero (biases excluded).
	Sparsity() float64
	// Clone returns an independent deep copy.
	Clone() Model
}

// New returns a binary logit for numClasses == 2 and a multinomial logit
// otherwise. Initial weights are drawn uniformly from [-initScale,
// +initScale] using rng; a nil rng yields zero initial weights.
func New(numFeatures, numClasses int, rng *rand.Rand) Model {
	const initScale = 0.05
	if numClasses < 2 {
		numClasses = 2
	}
	if numClasses == 2 {
		l := NewLogit(numFeatures)
		if rng != nil {
			for i := range l.w {
				l.w[i] = (rng.Float64()*2 - 1) * initScale
			}
		}
		return l
	}
	s := NewSoftmax(numFeatures, numClasses)
	if rng != nil {
		for i := range s.w {
			s.w[i] = (rng.Float64()*2 - 1) * initScale
		}
	}
	return s
}

// clipProb bounds p away from 0 and 1 so log stays finite.
func clipProb(p float64) float64 {
	const eps = 1e-12
	return linalg.Clip(p, eps, 1-eps)
}

// sigmoid is the numerically stable logistic function.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func rowFinite(x []float64) bool { return linalg.IsFinite(x) }

// reusedZeroed returns a zeroed buffer of length n, reusing buf's
// backing array when it already has that length — the grow-or-zero
// idiom of the learn-path gradient scratch.
func reusedZeroed(buf []float64, n int) []float64 {
	if len(buf) != n {
		return make([]float64, n)
	}
	linalg.Zero(buf)
	return buf
}

// Logit is a binary logistic-regression model with m feature weights and a
// bias stored at index m.
type Logit struct {
	w []float64 // len m+1, bias last
	m int
	// stepGrad is the gradient buffer Step reuses so steady-state batch
	// learning allocates nothing. Learn-path only (Step runs under the
	// single-writer contract); Predict/Proba never touch it.
	stepGrad []float64
}

// gradBuf returns the zeroed reusable gradient buffer of the learn path.
func (l *Logit) gradBuf() []float64 {
	l.stepGrad = reusedZeroed(l.stepGrad, len(l.w))
	return l.stepGrad
}

// NewLogit returns a zero-initialised binary logit over m features.
func NewLogit(m int) *Logit {
	return &Logit{w: make([]float64, m+1), m: m}
}

// score returns w·x + b via the unrolled linalg kernel.
func (l *Logit) score(x []float64) float64 {
	return l.w[l.m] + linalg.Dot(l.w[:l.m], x[:l.m])
}

// Step implements Model using the mean gradient of the batch.
func (l *Logit) Step(X [][]float64, Y []int, lr float64) {
	n := len(Y)
	if n == 0 {
		return
	}
	grad := l.gradBuf()
	used := 0
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		used++
		p := sigmoid(l.score(x))
		d := p - float64(Y[i])
		linalg.AddScaled(grad[:l.m], x[:l.m], d)
		grad[l.m] += d
	}
	if used == 0 {
		return
	}
	linalg.Axpy(-lr/float64(used), grad, l.w)
}

// RowStep implements Model. The update order mirrors Step on a one-row
// batch — w[j] += (-lr)*(d*x[j]) — so the two paths stay bit-identical.
func (l *Logit) RowStep(x []float64, y int, lr float64) {
	if !rowFinite(x) {
		return
	}
	p := sigmoid(l.score(x))
	d := p - float64(y)
	for j, v := range x[:l.m] {
		l.w[j] -= lr * (d * v)
	}
	l.w[l.m] -= lr * d
}

// Loss implements Model.
func (l *Logit) Loss(X [][]float64, Y []int) float64 {
	var loss float64
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		p := clipProb(sigmoid(l.score(x)))
		if Y[i] == 1 {
			loss -= math.Log(p)
		} else {
			loss -= math.Log(1 - p)
		}
	}
	return loss
}

// LossGrad implements Model.
func (l *Logit) LossGrad(X [][]float64, Y []int, grad []float64) float64 {
	if len(grad) != len(l.w) {
		panic("glm: LossGrad gradient length mismatch")
	}
	var loss float64
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		p := sigmoid(l.score(x))
		pc := clipProb(p)
		if Y[i] == 1 {
			loss -= math.Log(pc)
		} else {
			loss -= math.Log(1 - pc)
		}
		d := p - float64(Y[i])
		linalg.AddScaled(grad[:l.m], x[:l.m], d)
		grad[l.m] += d
	}
	return loss
}

// RowLossGrad implements Model.
func (l *Logit) RowLossGrad(x []float64, y int, grad []float64) float64 {
	if len(grad) != len(l.w) {
		panic("glm: RowLossGrad gradient length mismatch")
	}
	if !rowFinite(x) || y < 0 || y > 1 {
		linalg.Zero(grad)
		return 0
	}
	p := sigmoid(l.score(x))
	pc := clipProb(p)
	var loss float64
	if y == 1 {
		loss = -math.Log(pc)
	} else {
		loss = -math.Log(1 - pc)
	}
	d := p - float64(y)
	linalg.MulInto(grad[:l.m], x[:l.m], d)
	grad[l.m] = d
	return loss
}

// ApplyGrad implements Model.
func (l *Logit) ApplyGrad(grad []float64, factor float64) {
	linalg.Axpy(factor, grad, l.w)
}

// Proba implements Model.
func (l *Logit) Proba(x []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, 2)
	}
	p := sigmoid(l.score(x))
	out[0], out[1] = 1-p, p
	return out
}

// Predict implements Model.
func (l *Logit) Predict(x []float64) int {
	if l.score(x) >= 0 {
		return 1
	}
	return 0
}

// NumWeights implements Model.
func (l *Logit) NumWeights() int { return len(l.w) }

// FreeParams implements Model.
func (l *Logit) FreeParams() int { return len(l.w) }

// NumClasses implements Model.
func (l *Logit) NumClasses() int { return 2 }

// NumFeatures implements Model.
func (l *Logit) NumFeatures() int { return l.m }

// Weights implements Model.
func (l *Logit) Weights() []float64 { return linalg.Clone(l.w) }

// SetWeights implements Model.
func (l *Logit) SetWeights(w []float64) {
	if len(w) != len(l.w) {
		panic("glm: SetWeights length mismatch")
	}
	copy(l.w, w)
}

// Clone implements Model. Scratch buffers are deliberately not carried
// over: the clone lazily allocates its own, so clones share no state.
func (l *Logit) Clone() Model {
	return &Logit{w: linalg.Clone(l.w), m: l.m}
}

// Shrink implements Model.
func (l *Logit) Shrink(threshold float64) {
	softThreshold(l.w[:l.m], threshold)
}

// Sparsity implements Model.
func (l *Logit) Sparsity() float64 {
	return zeroFraction(l.w[:l.m])
}

// FeatureWeights returns the per-feature weights (excluding the bias),
// which is the quantity the paper points to for local feature-based
// explanations (Section I-C).
func (l *Logit) FeatureWeights() []float64 { return linalg.Clone(l.w[:l.m]) }

// Bias returns the intercept.
func (l *Logit) Bias() float64 { return l.w[l.m] }

// Softmax is a multinomial logit with a reference class: classes 1..c-1
// each own a weight row of length m+1 (bias last); class 0's logit is 0.
type Softmax struct {
	w       []float64 // (c-1) rows * (m+1) cols, flattened row-major
	m, c    int
	scratch []float64 // probability buffer reused on learn-path calls
	// stepGrad is the gradient buffer Step reuses so steady-state batch
	// learning allocates nothing. Learn-path only; Predict/Proba never
	// touch it (they must stay re-entrant for concurrent serving).
	stepGrad []float64
}

// gradBuf returns the zeroed reusable gradient buffer of the learn path.
func (s *Softmax) gradBuf() []float64 {
	s.stepGrad = reusedZeroed(s.stepGrad, len(s.w))
	return s.stepGrad
}

// scratchBuf returns a reusable length-c buffer.
func (s *Softmax) scratchBuf() []float64 {
	if len(s.scratch) != s.c {
		s.scratch = make([]float64, s.c)
	}
	return s.scratch
}

// NewSoftmax returns a zero-initialised multinomial logit over m features
// and c classes (c >= 3; use Logit for c == 2).
func NewSoftmax(m, c int) *Softmax {
	return &Softmax{w: make([]float64, (c-1)*(m+1)), m: m, c: c}
}

// row returns the weight row of class k (1-based class index into 0-based
// row k-1).
func (s *Softmax) row(k int) []float64 {
	stride := s.m + 1
	return s.w[(k-1)*stride : k*stride]
}

// logits writes the c raw scores into out (length c).
func (s *Softmax) logits(x []float64, out []float64) {
	out[0] = 0
	for k := 1; k < s.c; k++ {
		r := s.row(k)
		out[k] = r[s.m] + linalg.Dot(r[:s.m], x[:s.m])
	}
}

// probaInto computes class probabilities stably into out (length c).
func (s *Softmax) probaInto(x []float64, out []float64) {
	s.logits(x, out)
	lse := linalg.LogSumExp(out)
	for k := range out {
		out[k] = math.Exp(out[k] - lse)
	}
}

// Step implements Model.
func (s *Softmax) Step(X [][]float64, Y []int, lr float64) {
	n := len(Y)
	if n == 0 {
		return
	}
	grad := s.gradBuf()
	p := s.scratchBuf()
	used := 0
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		used++
		s.probaInto(x, p)
		stride := s.m + 1
		for k := 1; k < s.c; k++ {
			d := p[k]
			if Y[i] == k {
				d -= 1
			}
			base := (k - 1) * stride
			linalg.AddScaled(grad[base:base+s.m], x[:s.m], d)
			grad[base+s.m] += d
		}
	}
	if used == 0 {
		return
	}
	linalg.Axpy(-lr/float64(used), grad, s.w)
}

// RowStep implements Model. The update order mirrors Step on a one-row
// batch — w[j] += (-lr)*(d*x[j]) — so the two paths stay bit-identical.
func (s *Softmax) RowStep(x []float64, y int, lr float64) {
	if !rowFinite(x) {
		return
	}
	p := s.scratchBuf()
	s.probaInto(x, p)
	for k := 1; k < s.c; k++ {
		d := p[k]
		if y == k {
			d -= 1
		}
		r := s.row(k)
		for j, v := range x[:s.m] {
			r[j] -= lr * (d * v)
		}
		r[s.m] -= lr * d
	}
}

// Loss implements Model.
func (s *Softmax) Loss(X [][]float64, Y []int) float64 {
	var loss float64
	p := s.scratchBuf()
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		s.probaInto(x, p)
		y := Y[i]
		if y < 0 || y >= s.c {
			continue
		}
		loss -= math.Log(clipProb(p[y]))
	}
	return loss
}

// LossGrad implements Model.
func (s *Softmax) LossGrad(X [][]float64, Y []int, grad []float64) float64 {
	if len(grad) != len(s.w) {
		panic("glm: LossGrad gradient length mismatch")
	}
	var loss float64
	p := s.scratchBuf()
	stride := s.m + 1
	for i, x := range X {
		if !rowFinite(x) {
			continue
		}
		s.probaInto(x, p)
		y := Y[i]
		if y < 0 || y >= s.c {
			continue
		}
		loss -= math.Log(clipProb(p[y]))
		for k := 1; k < s.c; k++ {
			d := p[k]
			if y == k {
				d -= 1
			}
			base := (k - 1) * stride
			linalg.AddScaled(grad[base:base+s.m], x[:s.m], d)
			grad[base+s.m] += d
		}
	}
	return loss
}

// RowLossGrad implements Model.
func (s *Softmax) RowLossGrad(x []float64, y int, grad []float64) float64 {
	if len(grad) != len(s.w) {
		panic("glm: RowLossGrad gradient length mismatch")
	}
	if !rowFinite(x) || y < 0 || y >= s.c {
		linalg.Zero(grad)
		return 0
	}
	p := s.scratchBuf()
	s.probaInto(x, p)
	loss := -math.Log(clipProb(p[y]))
	stride := s.m + 1
	for k := 1; k < s.c; k++ {
		d := p[k]
		if y == k {
			d -= 1
		}
		base := (k - 1) * stride
		linalg.MulInto(grad[base:base+s.m], x[:s.m], d)
		grad[base+s.m] = d
	}
	return loss
}

// ApplyGrad implements Model.
func (s *Softmax) ApplyGrad(grad []float64, factor float64) {
	linalg.Axpy(factor, grad, s.w)
}

// Proba implements Model.
func (s *Softmax) Proba(x []float64, out []float64) []float64 {
	if out == nil {
		out = make([]float64, s.c)
	}
	s.probaInto(x, out)
	return out
}

// Predict implements Model. It must stay re-entrant — Scorer serves
// concurrent Predict calls under a read lock — so the logits go into a
// stack buffer (heap only beyond 16 classes), never the shared scratch.
func (s *Softmax) Predict(x []float64) int {
	var buf [16]float64
	var z []float64
	if s.c > len(buf) {
		z = make([]float64, s.c)
	} else {
		z = buf[:s.c]
	}
	s.logits(x, z)
	return linalg.ArgMax(z)
}

// NumWeights implements Model.
func (s *Softmax) NumWeights() int { return len(s.w) }

// FreeParams implements Model.
func (s *Softmax) FreeParams() int { return len(s.w) }

// NumClasses implements Model.
func (s *Softmax) NumClasses() int { return s.c }

// NumFeatures implements Model.
func (s *Softmax) NumFeatures() int { return s.m }

// Weights implements Model.
func (s *Softmax) Weights() []float64 { return linalg.Clone(s.w) }

// SetWeights implements Model.
func (s *Softmax) SetWeights(w []float64) {
	if len(w) != len(s.w) {
		panic("glm: SetWeights length mismatch")
	}
	copy(s.w, w)
}

// Clone implements Model. Scratch buffers are deliberately not carried
// over: the clone lazily allocates its own, so clones share no state.
func (s *Softmax) Clone() Model {
	return &Softmax{w: linalg.Clone(s.w), m: s.m, c: s.c}
}

// Shrink implements Model.
func (s *Softmax) Shrink(threshold float64) {
	for k := 1; k < s.c; k++ {
		r := s.row(k)
		softThreshold(r[:s.m], threshold)
	}
}

// Sparsity implements Model.
func (s *Softmax) Sparsity() float64 {
	var total, zero float64
	for k := 1; k < s.c; k++ {
		r := s.row(k)
		total += float64(s.m)
		zero += zeroFraction(r[:s.m]) * float64(s.m)
	}
	if total == 0 {
		return 0
	}
	return zero / total
}

// softThreshold applies the L1 proximal operator in place.
func softThreshold(w []float64, threshold float64) {
	if threshold <= 0 {
		return
	}
	for i, v := range w {
		switch {
		case v > threshold:
			w[i] = v - threshold
		case v < -threshold:
			w[i] = v + threshold
		default:
			w[i] = 0
		}
	}
}

// zeroFraction returns the share of exactly-zero entries.
func zeroFraction(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	zero := 0
	for _, v := range w {
		if v == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(w))
}

// ClassWeights returns a copy of the feature weights of class k (excluding
// the bias). Class 0 is the reference class with implicit zero weights.
func (s *Softmax) ClassWeights(k int) []float64 {
	out := make([]float64, s.m)
	if k <= 0 || k >= s.c {
		return out
	}
	copy(out, s.row(k)[:s.m])
	return out
}
