package glm

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Classifier adapts a single GLM (the DMT's simple model) to the
// repository-wide classifier contract: a structureless linear baseline —
// exactly what a depth-0 DMT that never splits would serve.
type Classifier struct {
	m      Model
	lr     float64
	l1     float64
	seed   int64
	schema stream.Schema
}

// NewClassifier returns a stand-alone GLM baseline. lr <= 0 uses the
// DMT's default rate of 0.05; l1 > 0 adds a proximal L1 step per batch.
func NewClassifier(schema stream.Schema, lr, l1 float64, seed int64) *Classifier {
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(seed + 5))
	return &Classifier{
		m:      New(schema.NumFeatures, schema.NumClasses, rng),
		lr:     lr,
		l1:     l1,
		seed:   seed,
		schema: schema,
	}
}

// Schema returns the stream schema the classifier was built for.
func (c *Classifier) Schema() stream.Schema { return c.schema }

// Name implements model.Classifier.
func (c *Classifier) Name() string { return "GLM" }

// Learn implements model.Classifier with one mean-gradient SGD step.
func (c *Classifier) Learn(b stream.Batch) {
	if b.Len() == 0 {
		return
	}
	c.m.Step(b.X, b.Y, c.lr)
	if c.l1 > 0 {
		c.m.Shrink(c.l1 * c.lr)
	}
}

// Predict implements model.Classifier.
func (c *Classifier) Predict(x []float64) int { return c.m.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (c *Classifier) Proba(x []float64, out []float64) []float64 { return c.m.Proba(x, out) }

// Complexity implements model.Classifier: one model leaf, no splits.
func (c *Classifier) Complexity() model.Complexity {
	return model.TreeComplexity(0, 1, 0, model.LeafModel, c.schema.NumFeatures, c.schema.NumClasses)
}

// Snapshot implements model.Snapshotter with a cloned single-leaf view.
func (c *Classifier) Snapshot() model.Snapshot {
	return model.LeafSnapshot(c.Name(), c.Complexity(), c.m.Clone())
}

// classifierDoc is the GLM baseline's checkpoint payload. The model was
// randomly initialised at construction but draws no further randomness,
// so the trained weights are the complete state.
type classifierDoc struct {
	Version int
	LR, L1  float64
	Seed    int64
	Schema  stream.Schema
	Model   ModelState
}

const classifierDocVersion = 1

// SaveState implements model.Checkpointer.
func (c *Classifier) SaveState(w io.Writer) error {
	doc := classifierDoc{
		Version: classifierDocVersion,
		LR:      c.lr, L1: c.l1, Seed: c.seed,
		Schema: c.schema,
		Model:  State(c.m),
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("glm: save GLM baseline: %w", err)
	}
	return nil
}

// CheckpointParams implements registry.ParamsReporter.
func (c *Classifier) CheckpointParams() registry.Params {
	return registry.Params{Seed: c.seed, LearningRate: c.lr, L1: c.l1}
}

// init registers the stand-alone linear baseline and its checkpoint
// loader.
func init() {
	registry.Register("GLM", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewClassifier(schema, p.LearningRate, p.L1, p.Seed), nil
	})
	registry.RegisterLoader("GLM", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc classifierDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("glm: decode checkpoint: %w", err)
		}
		if doc.Version != classifierDocVersion {
			return nil, fmt.Errorf("glm: unsupported checkpoint version %d (this build reads %d)", doc.Version, classifierDocVersion)
		}
		if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
			return nil, fmt.Errorf("glm: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
				doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
		}
		m, err := FromState(doc.Model)
		if err != nil {
			return nil, err
		}
		lr := doc.LR
		if lr <= 0 {
			lr = 0.05
		}
		return &Classifier{m: m, lr: lr, l1: doc.L1, seed: doc.Seed, schema: doc.Schema}, nil
	})
}
