package glm

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Classifier adapts a single GLM (the DMT's simple model) to the
// repository-wide classifier contract: a structureless linear baseline —
// exactly what a depth-0 DMT that never splits would serve.
type Classifier struct {
	m      Model
	lr     float64
	l1     float64
	schema stream.Schema
}

// NewClassifier returns a stand-alone GLM baseline. lr <= 0 uses the
// DMT's default rate of 0.05; l1 > 0 adds a proximal L1 step per batch.
func NewClassifier(schema stream.Schema, lr, l1 float64, seed int64) *Classifier {
	if lr <= 0 {
		lr = 0.05
	}
	rng := rand.New(rand.NewSource(seed + 5))
	return &Classifier{
		m:      New(schema.NumFeatures, schema.NumClasses, rng),
		lr:     lr,
		l1:     l1,
		schema: schema,
	}
}

// Name implements model.Classifier.
func (c *Classifier) Name() string { return "GLM" }

// Learn implements model.Classifier with one mean-gradient SGD step.
func (c *Classifier) Learn(b stream.Batch) {
	if b.Len() == 0 {
		return
	}
	c.m.Step(b.X, b.Y, c.lr)
	if c.l1 > 0 {
		c.m.Shrink(c.l1 * c.lr)
	}
}

// Predict implements model.Classifier.
func (c *Classifier) Predict(x []float64) int { return c.m.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (c *Classifier) Proba(x []float64, out []float64) []float64 { return c.m.Proba(x, out) }

// Complexity implements model.Classifier: one model leaf, no splits.
func (c *Classifier) Complexity() model.Complexity {
	return model.TreeComplexity(0, 1, 0, model.LeafModel, c.schema.NumFeatures, c.schema.NumClasses)
}

// Snapshot implements model.Snapshotter with a cloned single-leaf view.
func (c *Classifier) Snapshot() model.Snapshot {
	return model.LeafSnapshot(c.Name(), c.Complexity(), c.m.Clone())
}

// init registers the stand-alone linear baseline.
func init() {
	registry.Register("GLM", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewClassifier(schema, p.LearningRate, p.L1, p.Seed), nil
	})
}
