package glm

import (
	"math"
	"math/rand"
	"testing"
)

// twin builds two identically initialised models.
func twin(m, c int, seed int64) (a, b Model) {
	a = New(m, c, rand.New(rand.NewSource(seed)))
	b = New(m, c, rand.New(rand.NewSource(seed)))
	return a, b
}

// RowStep must be bit-identical to Step on a one-row batch — FIMT-DD
// switched its per-instance leaf update to RowStep and the tree
// evolution (split thresholds, Page-Hinkley signals) must not move.
func TestRowStepMatchesStep(t *testing.T) {
	for _, c := range []int{2, 4} {
		a, b := twin(6, c, 42)
		rng := rand.New(rand.NewSource(1))
		x := make([]float64, 6)
		for step := 0; step < 300; step++ {
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			if step%17 == 0 {
				x[2] = math.NaN() // both paths must skip non-finite rows
			}
			y := rng.Intn(c)
			a.Step([][]float64{x}, []int{y}, 0.05)
			b.RowStep(x, y, 0.05)
		}
		wa, wb := a.Weights(), b.Weights()
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("c=%d: weight %d diverged: Step %v vs RowStep %v", c, i, wa[i], wb[i])
			}
		}
	}
}

// The batch learn path must be allocation-free in steady state: Step,
// Loss and RowStep reuse per-model scratch instead of allocating the
// gradient and probability buffers per call.
func TestLearnPathZeroAllocs(t *testing.T) {
	for _, c := range []int{2, 4} {
		m := New(8, c, rand.New(rand.NewSource(3)))
		X := make([][]float64, 32)
		Y := make([]int, 32)
		rng := rand.New(rand.NewSource(4))
		for i := range X {
			X[i] = make([]float64, 8)
			for j := range X[i] {
				X[i][j] = rng.Float64()
			}
			Y[i] = rng.Intn(c)
		}
		m.Step(X, Y, 0.05) // warm the scratch buffers
		m.Loss(X, Y)
		if avg := testing.AllocsPerRun(200, func() { m.Step(X, Y, 0.05) }); avg != 0 {
			t.Errorf("c=%d: Step allocates %.2f allocs/op, want 0", c, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { m.Loss(X, Y) }); avg != 0 {
			t.Errorf("c=%d: Loss allocates %.2f allocs/op, want 0", c, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { m.RowStep(X[0], Y[0], 0.05) }); avg != 0 {
			t.Errorf("c=%d: RowStep allocates %.2f allocs/op, want 0", c, avg)
		}
	}
}

// Clones must not share scratch or weights with their source.
func TestCloneIsolation(t *testing.T) {
	for _, c := range []int{2, 4} {
		src := New(5, c, rand.New(rand.NewSource(9)))
		x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
		clone := src.Clone()
		before := clone.Weights()
		for i := 0; i < 50; i++ {
			src.RowStep(x, i%c, 0.1)
			src.Step([][]float64{x}, []int{i % c}, 0.1)
		}
		after := clone.Weights()
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("c=%d: clone weights moved with the source", c)
			}
		}
	}
}
