// Package efdt implements the Extremely Fast Decision Tree (Hoeffding
// Anytime Tree) of Manapragada, Webb & Salehi [14]: leaves split as soon
// as the best candidate beats *not splitting* by the Hoeffding bound, and
// inner nodes keep observing so their split decisions can be revisited —
// replaced by a better attribute or retracted entirely. Following the
// paper's configuration (Section VI-C), the minimum number of
// observations between re-evaluations is 1,000 and leaves vote by
// majority class.
package efdt

import (
	"fmt"
	"math/rand"

	"repro/internal/attrobs"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Config holds the EFDT hyperparameters.
type Config struct {
	// Tree configures the shared Hoeffding machinery. LeafMode is forced
	// to MajorityClass.
	Tree hoeffding.Config
	// ReevalPeriod is the minimum observation weight between split
	// re-evaluations at an inner node (default 1000, the paper's value).
	ReevalPeriod float64
}

func (c Config) withDefaults() Config {
	c.Tree.LeafMode = hoeffding.MajorityClass
	c.Tree = c.Tree.WithDefaults()
	if c.ReevalPeriod <= 0 {
		c.ReevalPeriod = 1000
	}
	return c
}

// enode is an EFDT node; statistics are maintained at every node, leaf or
// inner, so inner splits can be re-scored later.
type enode struct {
	stats       *hoeffding.NodeStats
	feature     int
	threshold   float64
	kind        model.SplitKind
	mask        uint64
	left, right *enode
	depth       int
	sinceReeval float64

	// snap caches the immutable SnapNode that froze this subtree at the
	// last publish; the learn walk clears it along its path (every
	// structural revisit — install, replace, retract — happens at a
	// visited node), so Snapshot() re-freezes only what changed.
	snap *model.SnapNode
}

func (n *enode) isLeaf() bool { return n.left == nil }

// Tree is the EFDT classifier.
type Tree struct {
	cfg    Config
	schema stream.Schema
	root   *enode
	rng    *rand.Rand
	src    *rng.Source        // counted source behind rng, for checkpointing
	sc     *hoeffding.Scratch // learn-path workspace shared by all nodes

	splits       int
	replacements int
	retractions  int
}

// New returns an empty EFDT.
func New(cfg Config, schema stream.Schema) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg, schema: schema, sc: hoeffding.NewScratch(schema)}
	t.rng, t.src = rng.New(cfg.Tree.Seed + 3)
	t.root = t.newLeaf(0)
	return t
}

// Schema returns the stream schema the tree was built for.
func (t *Tree) Schema() stream.Schema { return t.schema }

func (t *Tree) newLeaf(depth int) *enode {
	return &enode{stats: hoeffding.NewNodeStats(&t.cfg.Tree, t.schema, t.rng, t.sc), depth: depth}
}

// Name implements model.Classifier.
func (t *Tree) Name() string { return "EFDT" }

// Learn implements model.Classifier.
func (t *Tree) Learn(b stream.Batch) {
	for i, x := range b.X {
		t.learnOne(x, b.Y[i])
	}
}

func (t *Tree) learnOne(x []float64, y int) {
	cur := t.root
	for {
		cur.snap = nil
		cur.stats.Observe(x, y, 1)
		if cur.isLeaf() {
			t.attemptInitialSplit(cur)
			return
		}
		cur.sinceReeval++
		if cur.sinceReeval >= t.cfg.ReevalPeriod {
			cur.sinceReeval = 0
			if t.reevaluate(cur) {
				// The node just became a leaf (or got fresh children);
				// either way this instance's contribution is recorded.
				return
			}
		}
		if cur.isLeaf() {
			return
		}
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
}

// attemptInitialSplit applies the HATT leaf rule: split as soon as the
// best candidate's merit exceeds the merit of not splitting (zero) by the
// Hoeffding bound, or the bound falls below the tie threshold while the
// merit is positive.
func (t *Tree) attemptInitialSplit(leaf *enode) {
	if !leaf.stats.ShouldAttempt() || leaf.stats.Pure() {
		return
	}
	if t.cfg.Tree.MaxDepth > 0 && leaf.depth >= t.cfg.Tree.MaxDepth {
		return
	}
	best, _, ok := leaf.stats.BestSplits()
	if !ok || best.Merit <= 0 {
		return
	}
	eps := leaf.stats.Bound()
	if best.Merit > eps || (eps < t.cfg.Tree.Tau && best.Merit > t.cfg.Tree.Tau) {
		left, right := leaf.stats.DistributionsFor(best)
		t.install(leaf, best, [][]float64{left, right})
	}
}

// install turns the node into an inner node with fresh leaf children
// (keeping its own statistics, which EFDT continues to update).
func (t *Tree) install(n *enode, cand attrobs.CandidateSplit, post [][]float64) {
	n.feature, n.threshold = cand.Feature, cand.Threshold
	n.kind, n.mask = cand.Kind, cand.Mask
	n.left = t.newLeaf(n.depth + 1)
	n.right = t.newLeaf(n.depth + 1)
	if len(post) == 2 {
		n.left.stats.SeedChild(post[0])
		n.right.stats.SeedChild(post[1])
	}
	n.sinceReeval = 0
	t.splits++
}

// currentSplitMerit re-scores the installed split from the node's own
// (continuously updated) observers, through the tree's scan scratch so
// periodic re-evaluations allocate nothing.
func (t *Tree) currentSplitMerit(n *enode) float64 {
	return n.stats.MeritFor(n.installedSplit())
}

// installedSplit describes the split currently installed at an inner
// node as a candidate, for re-scoring and identity comparison.
func (n *enode) installedSplit() attrobs.CandidateSplit {
	return attrobs.CandidateSplit{Feature: n.feature, Threshold: n.threshold, Kind: n.kind, Mask: n.mask}
}

// reevaluate revisits the split installed at n. It returns true when the
// node changed structurally (split replaced or retracted).
func (t *Tree) reevaluate(n *enode) bool {
	best, _, ok := n.stats.BestSplits()
	if !ok {
		return false
	}
	eps := n.stats.Bound()
	cur := t.currentSplitMerit(n)

	// Retract: not splitting beats the installed split.
	if 0-cur > eps {
		n.left, n.right = nil, nil
		t.retractions++
		return true
	}
	// Replace: a confidently better split that names a new attribute —
	// or, between categorical tests, a different test on the same
	// attribute (numeric thresholds drift every re-scan, so same-feature
	// threshold moves are not treated as replacements, matching HATT).
	differs := best.Feature != n.feature
	if !differs && (best.Kind != model.SplitThreshold || n.kind != model.SplitThreshold) {
		differs = !best.SameTest(n.installedSplit())
	}
	if differs && best.Merit-cur > eps && best.Merit > 0 {
		left, right := n.stats.DistributionsFor(best)
		t.install(n, best, [][]float64{left, right})
		t.replacements++
		return true
	}
	return false
}

// sortTo routes x to its leaf; non-finite values route left via the
// shared model.RouteLeft predicate, consistent with learn, predict and
// snapshot paths.
func (t *Tree) sortTo(x []float64) *enode {
	cur := t.root
	for !cur.isLeaf() {
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur
}

// Predict implements model.Classifier.
func (t *Tree) Predict(x []float64) int { return t.sortTo(x).stats.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (t *Tree) Proba(x []float64, out []float64) []float64 {
	return t.sortTo(x).stats.Proba(x, out)
}

func countNodes(n *enode) (inner, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.isLeaf() {
		return 0, 1, 0
	}
	li, ll, ld := countNodes(n.left)
	ri, rl, rd := countNodes(n.right)
	d := ld
	if rd > d {
		d = rd
	}
	return li + ri + 1, ll + rl, d + 1
}

// Complexity implements model.Classifier (majority-class leaves).
func (t *Tree) Complexity() model.Complexity {
	inner, leaves, depth := countNodes(t.root)
	return model.TreeComplexity(inner, leaves, depth, model.LeafMajority, t.schema.NumFeatures, t.schema.NumClasses)
}

// freeze returns the immutable SnapNode of n's subtree, reusing the one
// cached at the last publish when no learn walk has visited n since.
func freeze(n *enode) *model.SnapNode {
	if n.snap != nil {
		return n.snap
	}
	if n.isLeaf() {
		n.snap = model.FreezeLeaf(n.stats.ServingClone())
	} else {
		n.snap = model.FreezeInnerSplit(n.feature, n.kind, n.threshold, n.mask, freeze(n.left), freeze(n.right))
	}
	return n.snap
}

// Snapshot implements model.Snapshotter: an immutable serving copy of
// the current tree. Inner-node statistics exist only to re-evaluate
// splits and are not captured; leaves get serving clones. Publishing is
// copy-on-write via the per-node freeze cache.
func (t *Tree) Snapshot() model.Snapshot {
	root := freeze(t.root)
	return &model.CowTree{
		ModelName:     t.Name(),
		Comp:          model.TreeComplexity(root.Inner, root.Leaves, root.Depth, model.LeafMajority, t.schema.NumFeatures, t.schema.NumClasses),
		Root:          root,
		NonFiniteLeft: true,
	}
}

// Revisions returns the number of split replacements and retractions.
func (t *Tree) Revisions() (replacements, retractions int) {
	return t.replacements, t.retractions
}

// StructureVersion implements model.StructureVersioner with the
// lifetime count of splits, replacements and retractions.
func (t *Tree) StructureVersion() uint64 {
	return uint64(t.splits) + uint64(t.replacements) + uint64(t.retractions)
}

// String renders a compact shape description.
func (t *Tree) String() string {
	inner, leaves, depth := countNodes(t.root)
	return fmt.Sprintf("EFDT{inner: %d, leaves: %d, depth: %d, repl: %d, retr: %d}",
		inner, leaves, depth, t.replacements, t.retractions)
}
