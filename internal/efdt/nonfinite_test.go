package efdt

import (
	"math"
	"testing"

	"repro/internal/hoeffding"
)

// TestNonFiniteRoutesLeft pins EFDT's deterministic non-finite routing
// (shared model.RouteLeft rule) on predict, learn and snapshot.
func TestNonFiniteRoutesLeft(t *testing.T) {
	tr := New(Config{}, schema2())
	left := &enode{stats: hoeffding.NewNodeStats(&tr.cfg.Tree, tr.schema, tr.rng, tr.sc), depth: 1}
	right := &enode{stats: hoeffding.NewNodeStats(&tr.cfg.Tree, tr.schema, tr.rng, tr.sc), depth: 1}
	left.stats.Observe([]float64{0.2, 0.2}, 0, 5)
	right.stats.Observe([]float64{0.8, 0.8}, 1, 5)
	tr.root.feature, tr.root.threshold = 0, 0.5
	tr.root.left, tr.root.right = left, right
	snap := tr.Snapshot()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := []float64{v, 0.9}
		if got := tr.Predict(x); got != 0 {
			t.Fatalf("live Predict(%v) = %d, want left leaf class 0", v, got)
		}
		if got := snap.Predict(x); got != 0 {
			t.Fatalf("snapshot Predict(%v) = %d, want left leaf class 0", v, got)
		}
		before := left.stats.Weight()
		tr.learnOne(x, 0)
		if left.stats.Weight() != before+1 {
			t.Fatalf("learnOne(%v) did not train the left leaf", v)
		}
	}
}
