package efdt

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Checkpoint documents of the Extremely Fast Decision Tree. EFDT keeps
// statistics at every node — leaf and inner — so its split decisions can
// be revisited; the document therefore carries a hoeffding.NodeStatsDoc
// per node plus each inner node's re-evaluation countdown.

const treeDocVersion = 1

type nodeDoc struct {
	Stats       *hoeffding.NodeStatsDoc
	Feature     int
	Threshold   float64
	Kind        uint8
	Mask        uint64
	Depth       int
	SinceReeval float64
	Left, Right *nodeDoc
}

type treeDoc struct {
	Version      int
	Config       hoeffding.ConfigDoc
	ReevalPeriod float64
	Schema       stream.Schema
	Splits       int
	Replacements int
	Retractions  int
	RNG          rng.State
	Root         *nodeDoc
}

func encodeNode(n *enode) *nodeDoc {
	if n == nil {
		return nil
	}
	return &nodeDoc{
		Stats:   n.stats.Doc(),
		Feature: n.feature, Threshold: n.threshold, Depth: n.depth,
		Kind: uint8(n.kind), Mask: n.mask,
		SinceReeval: n.sinceReeval,
		Left:        encodeNode(n.left), Right: encodeNode(n.right),
	}
}

func (t *Tree) decodeNode(d *nodeDoc) (*enode, error) {
	if d.Stats == nil {
		return nil, fmt.Errorf("efdt: checkpoint node has no statistics")
	}
	stats, err := hoeffding.NodeStatsFromDoc(&t.cfg.Tree, t.schema, t.sc, d.Stats)
	if err != nil {
		return nil, err
	}
	if !model.SplitKind(d.Kind).Valid() {
		return nil, fmt.Errorf("efdt: checkpoint node has unknown split kind %d", d.Kind)
	}
	n := &enode{
		stats:   stats,
		feature: d.Feature, threshold: d.Threshold, depth: d.Depth,
		kind: model.SplitKind(d.Kind), mask: d.Mask,
		sinceReeval: d.SinceReeval,
	}
	if (d.Left == nil) != (d.Right == nil) {
		return nil, fmt.Errorf("efdt: non-binary node in checkpoint")
	}
	if d.Left != nil {
		left, err := t.decodeNode(d.Left)
		if err != nil {
			return nil, err
		}
		right, err := t.decodeNode(d.Right)
		if err != nil {
			return nil, err
		}
		n.left, n.right = left, right
	}
	return n, nil
}

// SaveState implements model.Checkpointer.
func (t *Tree) SaveState(w io.Writer) error {
	doc := treeDoc{
		Version:      treeDocVersion,
		Config:       t.cfg.Tree.Doc(),
		ReevalPeriod: t.cfg.ReevalPeriod,
		Schema:       t.schema,
		Splits:       t.splits,
		Replacements: t.replacements,
		Retractions:  t.retractions,
		RNG:          t.src.State(),
		Root:         encodeNode(t.root),
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("efdt: save EFDT: %w", err)
	}
	return nil
}

// CheckpointParams implements registry.ParamsReporter.
func (t *Tree) CheckpointParams() registry.Params {
	return registry.Params{
		Seed: t.cfg.Tree.Seed, GracePeriod: t.cfg.Tree.GracePeriod,
		Delta: t.cfg.Tree.Delta, Tau: t.cfg.Tree.Tau, Bins: t.cfg.Tree.Bins,
		MaxDepth: t.cfg.Tree.MaxDepth, ReevalPeriod: t.cfg.ReevalPeriod,
	}
}

// init registers the checkpoint loader next to the construction factory
// (register.go).
func init() {
	registry.RegisterLoader("EFDT", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc treeDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("efdt: decode checkpoint: %w", err)
		}
		if doc.Version != treeDocVersion {
			return nil, fmt.Errorf("efdt: unsupported checkpoint version %d (this build reads %d)", doc.Version, treeDocVersion)
		}
		if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
			return nil, fmt.Errorf("efdt: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
				doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
		}
		if !doc.Schema.SameKinds(schema) {
			return nil, fmt.Errorf("efdt: payload schema feature kinds do not match envelope")
		}
		if doc.Root == nil {
			return nil, fmt.Errorf("efdt: checkpoint has no root")
		}
		treeCfg, err := hoeffding.ConfigFromDoc(doc.Config)
		if err != nil {
			return nil, err
		}
		cfg := Config{Tree: treeCfg, ReevalPeriod: doc.ReevalPeriod}.withDefaults()
		t := &Tree{
			cfg: cfg, schema: doc.Schema,
			splits: doc.Splits, replacements: doc.Replacements, retractions: doc.Retractions,
			sc: hoeffding.NewScratch(doc.Schema),
		}
		t.rng, t.src = rng.Restore(doc.RNG)
		root, err := t.decodeNode(doc.Root)
		if err != nil {
			return nil, err
		}
		t.root = root
		return t, nil
	})
}
