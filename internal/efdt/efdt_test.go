package efdt

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

// featureConcept labels by one of the two features.
func featureConcept(rng *rand.Rand, n int, feature int) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[feature] > 0.5 {
			y = 1
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(t *Tree, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if t.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestLearnsQuickly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(Config{}, schema2())
	for i := 0; i < 40; i++ {
		tree.Learn(featureConcept(rng, 200, 0))
	}
	if acc := accuracy(tree, featureConcept(rng, 1000, 0)); acc < 0.9 {
		t.Fatalf("accuracy %v", acc)
	}
	if tree.Complexity().Inner < 1 {
		t.Fatal("EFDT should have split")
	}
}

// EFDT's defining feature: it splits earlier than the VFDT rule would
// (best vs nothing rather than best vs second best).
func TestSplitsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{}, schema2())
	batches := 0
	for tree.Complexity().Inner == 0 && batches < 100 {
		tree.Learn(featureConcept(rng, 100, 0))
		batches++
	}
	if batches >= 100 {
		t.Fatal("EFDT never split on separable data")
	}
	if batches > 20 {
		t.Fatalf("EFDT took %d batches (~%d instances) to split; expected early splitting", batches, batches*100)
	}
}

func TestReevaluationAdaptsToFeatureSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := New(Config{}, schema2())
	for i := 0; i < 50; i++ {
		tree.Learn(featureConcept(rng, 200, 0))
	}
	// The concept moves to the other feature; re-evaluation must either
	// replace the root split or retract it and re-grow.
	for i := 0; i < 250; i++ {
		tree.Learn(featureConcept(rng, 200, 1))
	}
	if acc := accuracy(tree, featureConcept(rng, 1000, 1)); acc < 0.8 {
		repl, retr := tree.Revisions()
		t.Fatalf("post-swap accuracy %v (replacements %d, retractions %d)", acc, repl, retr)
	}
}

func TestComplexityMajorityCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := New(Config{}, schema2())
	for i := 0; i < 40; i++ {
		tree.Learn(featureConcept(rng, 200, 0))
	}
	comp := tree.Complexity()
	if comp.Splits != float64(comp.Inner) {
		t.Fatalf("EFDT splits %v != inner %d (MC leaves)", comp.Splits, comp.Inner)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ReevalPeriod != 1000 {
		t.Fatalf("ReevalPeriod default = %v, want the paper's 1000", cfg.ReevalPeriod)
	}
	if cfg.Tree.Criterion == nil {
		t.Fatal("inner tree config not defaulted")
	}
}

var _ model.Classifier = (*Tree)(nil)
var _ model.ProbabilisticClassifier = (*Tree)(nil)
