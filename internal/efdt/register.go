package efdt

import (
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// init registers the Extremely Fast Decision Tree under its paper name.
func init() {
	registry.Register("EFDT", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return New(Config{
			Tree: hoeffding.Config{
				GracePeriod: p.GracePeriod,
				Delta:       p.Delta,
				Tau:         p.Tau,
				Bins:        p.Bins,
				MaxDepth:    p.MaxDepth,
				Seed:        p.Seed,
			},
			ReevalPeriod: p.ReevalPeriod,
		}, schema), nil
	})
}
