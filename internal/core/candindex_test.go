package core

import (
	"math/rand"
	"testing"
)

// Randomised unit test of the index itself: a long interleaving of
// inserts, removals and resets must preserve every structural invariant,
// agree with a naive map-of-pools model, and never allocate past the
// fixed arena.
func TestCandIndexRandomOps(t *testing.T) {
	const m, w, slots = 5, 7, 40
	rng := rand.New(rand.NewSource(61))
	ix := newCandIndex(m, w, slots)
	model := map[[2]float64]bool{} // (feature, value) -> present

	checkAgainstModel := func() {
		t.Helper()
		if err := checkIndexInvariants(ix); err != nil {
			t.Fatalf("invariant: %v", err)
		}
		if ix.size() != len(model) {
			t.Fatalf("size %d, model %d", ix.size(), len(model))
		}
		for key := range model {
			if _, ok := ix.find(int(key[0]), key[1]); !ok {
				t.Fatalf("model entry (x%v <= %v) missing from index", key[0], key[1])
			}
		}
	}

	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // insert
			j := rng.Intn(m)
			v := float64(rng.Intn(25)) / 10
			_, ok := ix.insert(j, v)
			key := [2]float64{float64(j), v}
			switch {
			case model[key] && ok:
				t.Fatalf("duplicate (x%d <= %v) accepted", j, v)
			case !model[key] && !ok && len(model) < slots:
				t.Fatalf("insert (x%d <= %v) rejected with free capacity", j, v)
			case ok:
				model[key] = true
			}
		case op < 9: // remove a random present entry
			if len(model) == 0 {
				continue
			}
			for key := range model {
				if !ix.remove(int(key[0]), key[1]) {
					t.Fatalf("present entry (x%v <= %v) not removable", key[0], key[1])
				}
				delete(model, key)
				break
			}
		default: // occasional full reset
			if rng.Intn(20) == 0 {
				ix.reset()
				model = map[[2]float64]bool{}
			}
		}
		if step%97 == 0 {
			checkAgainstModel()
		}
	}
	checkAgainstModel()

	// Statistics written through a slot survive unrelated inserts and
	// removals (slots are stable; only entries shift).
	ix.reset()
	slot, ok := ix.insert(2, 0.5)
	if !ok {
		t.Fatal("insert failed on empty index")
	}
	ix.loss[slot] = 7
	ix.n[slot] = 3
	g := ix.gradOf(slot)
	for i := range g {
		g[i] = float64(i)
	}
	for v := 0; v < 10; v++ {
		ix.insert(2, 0.6+float64(v)) // shift the entry around
	}
	ix.remove(2, 0.6)
	pos, ok := ix.find(2, 0.5)
	if !ok {
		t.Fatal("entry lost after shifts")
	}
	s := ix.entries[pos].slot
	if s != slot || ix.loss[s] != 7 || ix.n[s] != 3 {
		t.Fatalf("slot stats moved: slot %d loss %v n %v", s, ix.loss[s], ix.n[s])
	}
	for i, v := range ix.gradOf(s) {
		if v != float64(i) {
			t.Fatalf("gradient corrupted at %d: %v", i, v)
		}
	}
}

// The insert path must reject non-space gracefully: with a full arena,
// ok=false and the index is untouched.
func TestCandIndexArenaFull(t *testing.T) {
	ix := newCandIndex(2, 3, 4)
	for v := 0; v < 4; v++ {
		if _, ok := ix.insert(v%2, float64(v)); !ok {
			t.Fatalf("insert %d rejected below capacity", v)
		}
	}
	if _, ok := ix.insert(0, 99); ok {
		t.Fatal("insert accepted past arena capacity")
	}
	if err := checkIndexInvariants(ix); err != nil {
		t.Fatal(err)
	}
}
