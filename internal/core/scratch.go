package core

import "sort"

// proposal is one candidate value drawn from the current batch, already
// inserted provisionally into the node's candidate index (so its batch
// statistics accumulate in the arena like everyone else's). admit either
// keeps it or removes it again.
type proposal struct {
	feature int32
	slot    int32
	value   float64
	gain    float64
}

// levelBufs are the reusable row partitions of one tree depth: an inner
// node at depth d routes its batch into these, and both halves stay valid
// while the subtrees (which use depths > d) are processed.
type levelBufs struct {
	leftX, rightX [][]float64
	leftY, rightY []int
}

// scratch is the per-tree reusable workspace of the Learn path. Every
// buffer grows to its high-water mark and is then reused forever, so a
// steady-state Learn call (no structural change, no new tree depth)
// performs zero allocations. It is touched only under Learn — the
// read-side Predict/Proba paths never use it, keeping Scorer's concurrent
// reads safe.
type scratch struct {
	batchGrad []float64 // the batch's summed gradient (w)

	// buckets is the per-batch accumulation matrix: one (w+2)-wide row —
	// [loss, count, gradient...] — per candidate-index entry, laid out
	// per-feature contiguous so the batch-end suffix-sum sweep is one
	// linalg.SuffixSumRows call per feature.
	buckets []float64

	// Per-batch row cache, filled by the first (row-major) pass over the
	// batch and consumed by the second (feature-major) bucket pass:
	// rowLoss[r] and rowGrads[r*w:(r+1)*w] hold the r-th usable row's loss
	// and gradient, cols[j*rowCap+r] its j-th feature value (column-major,
	// so the per-feature sweep streams sequentially while its small bucket
	// block stays cache-resident).
	rowLoss  []float64
	rowGrads []float64
	cols     []float64
	rowCap   int // row capacity of the cache (high-water batch size)

	// Counting-sort workspace of the feature-major bucket sweep: ids[r] is
	// row r's accepted-prefix length on the current feature (0 = no
	// threshold accepts it), ord the row indices grouped by bucket, and
	// cnts/starts/cursor the histogram and group offsets.
	ids    []int32
	ord    []int32
	cnts   []int32
	starts []int32
	cursor []int32

	props    []proposal // this batch's proposals
	scored   []proposal // proposals that passed the gain filter
	drop     []bool     // per arena slot: remove this entry at sweep time
	propSlot []bool     // per arena slot: slot belongs to a live proposal

	victimGain []float64 // per stored entry: lifetime gain estimate
	victimPos  []int32   // positions sorted alongside victimGain

	// Subset-scan workspace of bestCandidate: one categorical feature's
	// entry positions ranked by individual gain, and the cumulative
	// prefix gradient of the scanned level subsets.
	catOrd  []int32
	catGain []float64
	catGrad []float64 // w-wide cumulative subset gradient

	quartVals []float64 // cold-start per-feature value scratch (sorted once per feature)
	levels    []levelBufs

	propSort   propSorter
	victimSort victimSorter
	catSort    catSorter
}

func newScratch(w, slots int) *scratch {
	return &scratch{
		batchGrad: make([]float64, w),
		buckets:   make([]float64, slots*(w+2)),
		props:     make([]proposal, 0, slots),
		scored:    make([]proposal, 0, slots),
		drop:      make([]bool, slots),
		propSlot:  make([]bool, slots),
		cnts:      make([]int32, slots+1),
		starts:    make([]int32, slots+1),
		cursor:    make([]int32, slots+1),
		catOrd:    make([]int32, 0, slots),
		catGain:   make([]float64, 0, slots),
		catGrad:   make([]float64, w),
	}
}

// reserveRows sizes the per-batch row cache for a batch of rows rows, m
// features and w weights. Growth sticks at the high-water mark, so a
// steady batch size allocates only once.
func (sc *scratch) reserveRows(rows, m, w int) {
	if rows <= sc.rowCap {
		return
	}
	sc.rowCap = rows
	sc.rowLoss = make([]float64, rows)
	sc.rowGrads = make([]float64, rows*w)
	sc.cols = make([]float64, rows*m)
	sc.ids = make([]int32, rows)
	sc.ord = make([]int32, rows)
}

// level returns the partition buffers of one depth, growing the ladder on
// first descent to a new depth (a structural change, so the allocation is
// off the steady-state path).
func (sc *scratch) level(depth int) *levelBufs {
	for len(sc.levels) <= depth {
		sc.levels = append(sc.levels, levelBufs{})
	}
	return &sc.levels[depth]
}

// propSorter orders proposals by batch gain descending; ties break on
// (feature, value) so admission is independent of proposal draw order.
type propSorter struct{ props []proposal }

func (s *propSorter) Len() int      { return len(s.props) }
func (s *propSorter) Swap(i, j int) { s.props[i], s.props[j] = s.props[j], s.props[i] }
func (s *propSorter) Less(i, j int) bool {
	a, b := s.props[i], s.props[j]
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.feature != b.feature {
		return a.feature < b.feature
	}
	return a.value < b.value
}

// sortProposals sorts via a reusable sort.Interface value, so the call
// allocates nothing (a *propSorter fits an interface word).
func (sc *scratch) sortProposals(props []proposal) {
	sc.propSort.props = props
	sort.Sort(&sc.propSort)
	sc.propSort.props = nil
}

// victimSorter orders stored-pool positions by lifetime gain ascending
// (weakest first); ties break on position for determinism.
type victimSorter struct {
	gain []float64
	pos  []int32
}

func (s *victimSorter) Len() int { return len(s.pos) }
func (s *victimSorter) Swap(i, j int) {
	s.gain[i], s.gain[j] = s.gain[j], s.gain[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}
func (s *victimSorter) Less(i, j int) bool {
	if s.gain[i] != s.gain[j] {
		return s.gain[i] < s.gain[j]
	}
	return s.pos[i] < s.pos[j]
}

func (sc *scratch) sortVictims() {
	sc.victimSort.gain = sc.victimGain
	sc.victimSort.pos = sc.victimPos
	sort.Sort(&sc.victimSort)
	sc.victimSort.gain, sc.victimSort.pos = nil, nil
}

// catSorter orders one categorical feature's entry positions by
// individual gain descending (strongest level first, the subset-scan
// prefix order); ties break on position for determinism.
type catSorter struct {
	gain []float64
	pos  []int32
}

func (s *catSorter) Len() int { return len(s.pos) }
func (s *catSorter) Swap(i, j int) {
	s.gain[i], s.gain[j] = s.gain[j], s.gain[i]
	s.pos[i], s.pos[j] = s.pos[j], s.pos[i]
}
func (s *catSorter) Less(i, j int) bool {
	if s.gain[i] != s.gain[j] {
		return s.gain[i] > s.gain[j]
	}
	return s.pos[i] < s.pos[j]
}

func (sc *scratch) sortCat() {
	sc.catSort.gain = sc.catGain
	sc.catSort.pos = sc.catOrd
	sort.Sort(&sc.catSort)
	sc.catSort.gain, sc.catSort.pos = nil, nil
}
