package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/stream"
)

func schema(m, c int) stream.Schema {
	return stream.Schema{NumFeatures: m, NumClasses: c, Name: "test"}
}

// linearBatch: y = 1 iff w.x + b > 0, with optional label noise.
func linearBatch(rng *rand.Rand, w []float64, b float64, n int, noise float64) stream.Batch {
	var out stream.Batch
	for i := 0; i < n; i++ {
		x := make([]float64, len(w))
		s := b
		for j := range x {
			x[j] = rng.Float64()
			s += w[j] * x[j]
		}
		y := 0
		if s > 0 {
			y = 1
		}
		if noise > 0 && rng.Float64() < noise {
			y = 1 - y
		}
		out.X = append(out.X, x)
		out.Y = append(out.Y, y)
	}
	return out
}

// piecewiseBatch: opposite linear rules left and right of x0 = 0.5; a
// single linear model cannot fit it, so the DMT must split.
func piecewiseBatch(rng *rand.Rand, n int, noise float64) stream.Batch {
	var out stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		var y int
		if x[0] <= 0.5 {
			if x[1] > 0.5 {
				y = 1
			}
		} else {
			if x[1] <= 0.5 {
				y = 1
			}
		}
		if noise > 0 && rng.Float64() < noise {
			y = 1 - y
		}
		out.X = append(out.X, x)
		out.Y = append(out.Y, y)
	}
	return out
}

func accuracy(t *Tree, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if t.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

// Model minimality on a linear concept: the DMT must reach high accuracy
// WITHOUT splitting (Property 2 / Figure 1 of the paper).
func TestLinearConceptNeedsNoSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{2, -1.5, 1}
	tree := New(Config{Seed: 1}, schema(3, 2))
	for i := 0; i < 300; i++ {
		tree.Learn(linearBatch(rng, w, -0.6, 100, 0.05))
	}
	comp := tree.Complexity()
	if comp.Inner != 0 {
		t.Fatalf("DMT split %d times on a linear concept", comp.Inner)
	}
	if acc := accuracy(tree, linearBatch(rng, w, -0.6, 2000, 0)); acc < 0.9 {
		t.Fatalf("accuracy %v on the clean concept", acc)
	}
}

// The gain mechanism must fire on a genuinely piecewise concept.
func TestPiecewiseConceptForcesSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{Seed: 2}, schema(3, 2))
	for i := 0; i < 400; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if tree.Complexity().Inner == 0 {
		t.Fatal("DMT never split on an XOR-style concept")
	}
	if acc := accuracy(tree, piecewiseBatch(rng, 2000, 0)); acc < 0.85 {
		t.Fatalf("accuracy %v", acc)
	}
}

// Model minimality under concept simplification (Property 2): with a
// wide feature space the AIC parameter credit k exceeds -log(eps), so
// once the concept turns linear the now-unnecessary subtree must be
// pruned. This is exactly the paper's epsilon-relaxation at work
// (Section V-C) and explains Table III: 2.2 splits on Hyperplane (m=50,
// credit applies) versus 35 on SEA (m=3, equal-loss subtrees are kept).
func TestPrunesWhenConceptSimplifies(t *testing.T) {
	const m = 20
	rng := rand.New(rand.NewSource(3))
	wide := func(n int, piecewise bool) stream.Batch {
		var out stream.Batch
		for i := 0; i < n; i++ {
			x := make([]float64, m)
			for j := range x {
				x[j] = rng.Float64()
			}
			var y int
			if piecewise {
				if x[0] <= 0.5 {
					if x[1] > 0.5 {
						y = 1
					}
				} else if x[1] <= 0.5 {
					y = 1
				}
			} else if 2*x[1]+x[2] > 1.5 {
				y = 1
			}
			if rng.Float64() < 0.05 {
				y = 1 - y
			}
			out.X = append(out.X, x)
			out.Y = append(out.Y, y)
		}
		return out
	}
	tree := New(Config{Seed: 3}, schema(m, 2))
	// Grow until the first split, then a short consolidation phase, so the
	// subtree cannot accumulate a large lifetime advantage. The AIC
	// criterion is a lifetime test over the accumulated likelihoods
	// (Algorithm 1), so long-profitable subtrees are rightly kept.
	for i := 0; i < 1500 && tree.Complexity().Inner == 0; i++ {
		tree.Learn(wide(200, true))
	}
	grown := tree.Complexity()
	if grown.Inner == 0 {
		t.Fatal("precondition failed: no growth on the piecewise phase")
	}
	// Switch to the linear concept right away: the young subtree has no
	// accumulated lifetime advantage, so the parameter credit must prune
	// it promptly.
	for i := 0; i < 600; i++ {
		tree.Learn(wide(200, false))
		if _, _, prunes := tree.Revisions(); prunes > 0 {
			return // minimality pressure confirmed
		}
	}
	t.Fatalf("no prune after the concept simplified: %s", tree)
}

// Consistency (Property 1 via Lemma 1): every accepted structural change
// must carry a gain at or above its AIC threshold, and the threshold
// itself must be the eq. (11) value.
func TestEveryChangeClearsAICThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := New(Config{Seed: 4}, schema(3, 2))
	for i := 0; i < 500; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.1))
	}
	changes := tree.Changes()
	if len(changes) == 0 {
		t.Fatal("no changes recorded")
	}
	k := float64(tree.root.mod.FreeParams())
	logEps := tree.cfg.logEps()
	for _, ev := range changes {
		if ev.Gain < ev.AICThreshold {
			t.Fatalf("change %+v accepted below its threshold", ev)
		}
		if ev.Kind == ChangeSplit && !almostEq(ev.AICThreshold, k+logEps, 1e-9) {
			t.Fatalf("leaf split threshold %v, want k - log(eps) = %v", ev.AICThreshold, k+logEps)
		}
	}
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// Structural invariants after arbitrary data: binary arity, consistent
// depths, gradient dimensions, candidate cap.
func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := New(Config{Seed: 5}, schema(4, 3))
	for i := 0; i < 300; i++ {
		var b stream.Batch
		for j := 0; j < 50; j++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			y := rng.Intn(3)
			if x[0] > 0.5 {
				y = 2 // some learnable signal
			}
			b.X = append(b.X, x)
			b.Y = append(b.Y, y)
		}
		tree.Learn(b)
		assertInvariants(t, tree)
	}
}

func assertInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	capSize := candidateCap(&tree.cfg, tree.schema)
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.depth != depth {
			t.Fatalf("node depth %d, want %d", n.depth, depth)
		}
		if len(n.grad) != n.mod.NumWeights() {
			t.Fatalf("gradient length %d != weights %d", len(n.grad), n.mod.NumWeights())
		}
		if n.idx.size() > capSize {
			t.Fatalf("candidate pool %d exceeds cap %d", n.idx.size(), capSize)
		}
		if err := checkIndexInvariants(n.idx); err != nil {
			t.Fatalf("candidate index corrupt: %v", err)
		}
		for _, e := range n.idx.entries {
			if n.idx.n[e.slot] > n.n {
				t.Fatalf("candidate count %v exceeds node count %v", n.idx.n[e.slot], n.n)
			}
		}
		if (n.left == nil) != (n.right == nil) {
			t.Fatal("non-binary node: one child missing")
		}
		if n.left != nil {
			walk(n.left, depth+1)
			walk(n.right, depth+1)
		}
	}
	walk(tree.root, 0)
}

// checkIndexInvariants verifies the structural invariants of the
// candidate index: monotone feature offsets covering the entry array,
// strictly descending finite thresholds per feature, unique in-range
// arena slots, and a free stack that exactly complements the live slots.
func checkIndexInvariants(ix *candIndex) error {
	if int(ix.offsets[0]) != 0 || int(ix.offsets[ix.m]) != len(ix.entries) {
		return fmt.Errorf("offsets do not cover entries: %v over %d", ix.offsets, len(ix.entries))
	}
	seen := map[int32]bool{}
	for j := 0; j < ix.m; j++ {
		lo, hi := ix.featRange(j)
		if lo > hi {
			return fmt.Errorf("feature %d range inverted: [%d,%d)", j, lo, hi)
		}
		for pos := lo; pos < hi; pos++ {
			e := ix.entries[pos]
			if math.IsNaN(e.value) || math.IsInf(e.value, 0) {
				return fmt.Errorf("feature %d holds non-finite threshold", j)
			}
			if pos > lo && !(ix.entries[pos-1].value > e.value) {
				return fmt.Errorf("feature %d thresholds not strictly descending at %d", j, pos)
			}
			if e.slot < 0 || int(e.slot) >= len(ix.loss) {
				return fmt.Errorf("slot %d out of arena range", e.slot)
			}
			if seen[e.slot] {
				return fmt.Errorf("slot %d referenced twice", e.slot)
			}
			seen[e.slot] = true
			if ix.featureOf(pos) != j {
				return fmt.Errorf("featureOf(%d) = %d, want %d", pos, ix.featureOf(pos), j)
			}
		}
	}
	if len(ix.free)+len(ix.entries) != len(ix.loss) {
		return fmt.Errorf("free stack (%d) + live entries (%d) != arena capacity (%d)",
			len(ix.free), len(ix.entries), len(ix.loss))
	}
	for _, s := range ix.free {
		if seen[s] {
			return fmt.Errorf("slot %d both free and live", s)
		}
	}
	return nil
}

// Warm start: immediately after a split the children must predict like
// the parent did (they clone its parameters).
func TestWarmStartChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tree := New(Config{Seed: 6}, schema(3, 2))
	for i := 0; i < 600 && tree.Complexity().Inner == 0; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if tree.Complexity().Inner == 0 {
		t.Fatal("no split happened")
	}
	// Fresh split children carry the parent's weights until they diverge;
	// verify on a brand-new split by reconstructing the moment: the root
	// epoch was reset at its split.
	if tree.root.n != 0 && tree.root.left == nil {
		t.Fatal("expected root to be an inner node")
	}
	// Children of the most recent split in a two-level tree: their models
	// must be finite and usable.
	x := []float64{0.3, 0.7, 0.5}
	p := tree.Proba(x, nil)
	if math.Abs(p[0]+p[1]-1) > 1e-9 {
		t.Fatalf("proba after split = %v", p)
	}
}

// Epoch reset semantics: a split resets the node's accumulators so the
// union property of Lemma 2 holds for the new family.
func TestSplitResetsEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := New(Config{Seed: 7}, schema(3, 2))
	prevInner := 0
	for i := 0; i < 600; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
		inner, _, _ := countNodes(tree.root)
		if inner > prevInner && inner == 1 {
			// Root just split: epoch must have restarted this Learn call,
			// so the root count equals at most one batch.
			if tree.root.n > 100 {
				t.Fatalf("root epoch not reset on split: n=%v", tree.root.n)
			}
			return
		}
		prevInner = inner
	}
	t.Skip("root never split in this configuration")
}

func TestNaNRowsIgnored(t *testing.T) {
	tree := New(Config{Seed: 8}, schema(2, 2))
	b := stream.Batch{
		X: [][]float64{{math.NaN(), 0.5}, {0.2, 0.8}, {math.Inf(1), 0.1}},
		Y: []int{0, 1, 0},
	}
	tree.Learn(b)
	if tree.root.n != 1 {
		t.Fatalf("node counted %v rows, want 1 (two rows are non-finite)", tree.root.n)
	}
	if !linalg.IsFinite(tree.root.mod.Weights()) {
		t.Fatal("weights corrupted by non-finite rows")
	}
}

func TestEmptyBatchIsNoOp(t *testing.T) {
	tree := New(Config{Seed: 9}, schema(2, 2))
	tree.Learn(stream.Batch{})
	if tree.root.n != 0 {
		t.Fatal("empty batch mutated the tree")
	}
}

func TestSingleClassBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tree := New(Config{Seed: 10}, schema(2, 2))
	for i := 0; i < 100; i++ {
		var b stream.Batch
		for j := 0; j < 50; j++ {
			b.X = append(b.X, []float64{rng.Float64(), rng.Float64()})
			b.Y = append(b.Y, 1)
		}
		tree.Learn(b)
	}
	if tree.Predict([]float64{0.5, 0.5}) != 1 {
		t.Fatal("did not learn the constant class")
	}
	if tree.Complexity().Inner != 0 {
		t.Fatal("split on a constant-label stream")
	}
}

func TestChangeLogCapped(t *testing.T) {
	tree := New(Config{Seed: 11}, schema(2, 2))
	for i := 0; i < maxChangeLog+100; i++ {
		tree.logChange(ChangeEvent{Step: i})
	}
	changes := tree.Changes()
	if len(changes) != maxChangeLog {
		t.Fatalf("change log length %d, want cap %d", len(changes), maxChangeLog)
	}
	if changes[len(changes)-1].Step != maxChangeLog+99 {
		t.Fatal("newest change lost")
	}
}

func TestProbaSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, c := range []int{2, 4} {
		tree := New(Config{Seed: 12}, schema(3, c))
		for i := 0; i < 50; i++ {
			var b stream.Batch
			for j := 0; j < 40; j++ {
				b.X = append(b.X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
				b.Y = append(b.Y, rng.Intn(c))
			}
			tree.Learn(b)
		}
		p := tree.Proba([]float64{0.5, 0.5, 0.5}, nil)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("c=%d: proba sums to %v", c, sum)
		}
	}
}

func TestMulticlassLearnsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tree := New(Config{Seed: 13}, schema(2, 3))
	centers := [][]float64{{0.15, 0.15}, {0.5, 0.85}, {0.85, 0.15}}
	sample := func(n int) stream.Batch {
		var b stream.Batch
		for i := 0; i < n; i++ {
			k := rng.Intn(3)
			b.X = append(b.X, []float64{
				centers[k][0] + 0.07*rng.NormFloat64(),
				centers[k][1] + 0.07*rng.NormFloat64(),
			})
			b.Y = append(b.Y, k)
		}
		return b
	}
	for i := 0; i < 200; i++ {
		tree.Learn(sample(100))
	}
	if acc := accuracy(tree, sample(1000)); acc < 0.9 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
}

func TestAblationNoPruneNeverPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tree := New(Config{Seed: 14, DisablePruning: true}, schema(3, 2))
	for i := 0; i < 400; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	w := []float64{0, 2, 1}
	for i := 0; i < 600; i++ {
		tree.Learn(linearBatch(rng, w, -1.5, 100, 0.05))
	}
	_, replaces, prunes := tree.Revisions()
	if replaces != 0 || prunes != 0 {
		t.Fatalf("pruning disabled but saw %d replaces, %d prunes", replaces, prunes)
	}
}

func TestAblationNoInnerUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tree := New(Config{Seed: 15, DisableInnerUpdates: true}, schema(3, 2))
	for i := 0; i < 500; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if tree.Complexity().Inner == 0 {
		t.Skip("no split; ablation unobservable")
	}
	// Inner nodes froze at their split epoch (stats reset then never fed).
	var checkFrozen func(n *node)
	checkFrozen = func(n *node) {
		if n.isLeaf() {
			return
		}
		if n.n != 0 {
			t.Fatalf("inner node accumulated %v rows with inner updates disabled", n.n)
		}
		checkFrozen(n.left)
		checkFrozen(n.right)
	}
	checkFrozen(tree.root)
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, model.Complexity) {
		rng := rand.New(rand.NewSource(16))
		tree := New(Config{Seed: 16}, schema(3, 2))
		for i := 0; i < 150; i++ {
			tree.Learn(piecewiseBatch(rng, 80, 0.1))
		}
		return accuracy(tree, piecewiseBatch(rand.New(rand.NewSource(99)), 500, 0)), tree.Complexity()
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 != a2 || c1 != c2 {
		t.Fatalf("same seed, different outcomes: %v/%v vs %v/%v", a1, c1, a2, c2)
	}
}

func TestDescribeMentionsSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree := New(Config{Seed: 17}, schema(3, 2))
	for i := 0; i < 500; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	desc := tree.Describe()
	if !strings.Contains(desc, "leaf[") {
		t.Fatalf("Describe output lacks leaves:\n%s", desc)
	}
	if tree.Complexity().Inner > 0 && !strings.Contains(desc, "<=") {
		t.Fatalf("Describe output lacks split conditions:\n%s", desc)
	}
}

func TestLeafWeightsShape(t *testing.T) {
	tree := New(Config{Seed: 18}, schema(4, 2))
	w := tree.LeafWeights([]float64{0.1, 0.2, 0.3, 0.4}, 1)
	if len(w) != 4 {
		t.Fatalf("binary leaf weights length %d", len(w))
	}
	tree3 := New(Config{Seed: 18}, schema(4, 3))
	w3 := tree3.LeafWeights([]float64{0.1, 0.2, 0.3, 0.4}, 2)
	if len(w3) != 4 {
		t.Fatalf("multiclass leaf weights length %d", len(w3))
	}
}

// candidateGain hand check: with zero gradients the approximation reduces
// to referenceLoss - leftLoss - rightLoss, and the gradient terms always
// increase the gain.
func TestCandidateGainArithmetic(t *testing.T) {
	pGrad := []float64{0, 0}
	cGrad := []float64{0, 0}
	g, ok := candidateGain(10, 10, pGrad, 20, 4, cGrad, 10, 0.1, 1)
	if !ok {
		t.Fatal("gain unexpectedly rejected")
	}
	// reference 10 - (4 - 0) - (6 - 0) = 0
	if !almostEq(g, 0, 1e-12) {
		t.Fatalf("zero-gradient gain = %v, want 0", g)
	}
	// Now give the left branch a gradient: gain grows by lr/n * ||g||^2.
	cGrad = []float64{3, 4} // norm^2 = 25
	g2, _ := candidateGain(10, 10, pGrad, 20, 4, cGrad, 10, 0.1, 1)
	wantBonus := 0.1/10*25 + 0.1/10*25 // right grad = p - c = (-3,-4)
	if !almostEq(g2, wantBonus, 1e-12) {
		t.Fatalf("gradient bonus gain = %v, want %v", g2, wantBonus)
	}
	// Branch-size floor rejects candidates with too few observations.
	if _, ok := candidateGain(10, 10, pGrad, 20, 4, cGrad, 1, 0.1, 2); ok {
		t.Fatal("min branch weight not enforced")
	}
	if _, ok := candidateGain(10, 10, pGrad, 20, 4, cGrad, 19.5, 0.1, 2); ok {
		t.Fatal("right-branch floor not enforced")
	}
}

func TestConfigDefaultsAndQuantize(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.LearningRate != 0.05 || cfg.Epsilon != 1e-7 || cfg.CandidateFactor != 3 || cfg.ReplacementRate != 0.5 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if got := cfg.quantize(0.123456); got != 0.123 {
		t.Fatalf("quantize = %v", got)
	}
	noQ := Config{Quantize: -1}.withDefaults()
	if got := noQ.quantize(0.123456); got != 0.123456 {
		t.Fatalf("quantize disabled = %v", got)
	}
	if cfg.logEps() <= 0 {
		t.Fatal("-log(eps) must be positive")
	}
}

func TestComplexityCountingModelLeaves(t *testing.T) {
	// Root-only multiclass DMT mirrors the paper's Poker entry: with c=9,
	// m=10 it must report 9 splits and 80 parameters.
	tree := New(Config{Seed: 19}, schema(10, 9))
	comp := tree.Complexity()
	if comp.Splits != 9 || comp.Params != 80 {
		t.Fatalf("Poker-shape complexity = %+v, want splits 9, params 80", comp)
	}
}

func TestBatchVsInstanceIncremental(t *testing.T) {
	// Instance-incremental learning (batch size 1) must work and reach a
	// similar quality as batch-incremental on the same data.
	rng := rand.New(rand.NewSource(20))
	w := []float64{1.5, -1, 0.5}
	tree := New(Config{Seed: 20}, schema(3, 2))
	for i := 0; i < 8000; i++ {
		b := linearBatch(rng, w, -0.5, 1, 0.05)
		tree.Learn(b)
	}
	if acc := accuracy(tree, linearBatch(rng, w, -0.5, 1000, 0)); acc < 0.85 {
		t.Fatalf("instance-incremental accuracy %v", acc)
	}
}

// The L1 extension must sparsify leaf weights without wrecking accuracy.
func TestL1ExtensionSparsifies(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Only features 0 and 1 matter out of 10.
	sparseBatch := func(n int) stream.Batch {
		var b stream.Batch
		for i := 0; i < n; i++ {
			x := make([]float64, 10)
			for j := range x {
				x[j] = rng.Float64()
			}
			y := 0
			if 3*x[0]-3*x[1] > 0 {
				y = 1
			}
			b.X = append(b.X, x)
			b.Y = append(b.Y, y)
		}
		return b
	}
	plain := New(Config{Seed: 22}, schema(10, 2))
	sparse := New(Config{Seed: 22, L1: 0.02}, schema(10, 2))
	for i := 0; i < 400; i++ {
		b := sparseBatch(100)
		plain.Learn(b)
		sparse.Learn(b)
	}
	wSparse := sparse.LeafWeights(make([]float64, 10), 1)
	zeros := 0
	for j := 2; j < 10; j++ {
		if wSparse[j] == 0 {
			zeros++
		}
	}
	if zeros < 4 {
		t.Fatalf("L1 left irrelevant weights dense: %v", wSparse)
	}
	if accSparse := accuracy(sparse, sparseBatch(2000)); accSparse < 0.85 {
		t.Fatalf("L1 variant accuracy %v", accSparse)
	}
}

// The learning-rate warm-up must speed up early training from random
// initial weights (the root-node cold start of Section IV-E).
func TestLRWarmupSpeedsEarlyTraining(t *testing.T) {
	makeBatches := func() []stream.Batch {
		rng := rand.New(rand.NewSource(23))
		w := []float64{3, -2, 1}
		out := make([]stream.Batch, 40)
		for i := range out {
			out[i] = linearBatch(rng, w, -1, 50, 0)
		}
		return out
	}
	early := func(cfg Config) float64 {
		tree := New(cfg, schema(3, 2))
		batches := makeBatches()
		correct, total := 0, 0
		for _, b := range batches {
			for i, x := range b.X {
				if tree.Predict(x) == b.Y[i] {
					correct++
				}
				total++
			}
			tree.Learn(b)
		}
		return float64(correct) / float64(total)
	}
	base := early(Config{Seed: 23})
	boosted := early(Config{Seed: 23, LRWarmupBoost: 5})
	if boosted <= base {
		t.Fatalf("warm-up boost did not help early accuracy: %v vs %v", boosted, base)
	}
}

func TestEffectiveLR(t *testing.T) {
	cfg := Config{LearningRate: 0.1, LRWarmupBoost: 3}.withDefaults()
	if got := cfg.effectiveLR(0); !almostEq(got, 0.3, 1e-12) {
		t.Fatalf("lr at n=0: %v", got)
	}
	if got := cfg.effectiveLR(cfg.LRWarmupObs); got != 0.1 {
		t.Fatalf("lr after warm-up: %v", got)
	}
	mid := cfg.effectiveLR(cfg.LRWarmupObs / 2)
	if mid <= 0.1 || mid >= 0.3 {
		t.Fatalf("lr mid warm-up: %v", mid)
	}
	// Without boost the rate is constant.
	plain := Config{LearningRate: 0.1}.withDefaults()
	if plain.effectiveLR(0) != 0.1 {
		t.Fatal("constant rate broken")
	}
}

var _ model.Classifier = (*Tree)(nil)
var _ model.ProbabilisticClassifier = (*Tree)(nil)
