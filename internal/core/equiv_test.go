package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/stream"
)

// This file keeps the pre-index candidate accumulation — one pass folding
// every row into every accepting candidate, O(rows·candidates·weights) —
// as an unexported reference implementation, and proves the sorted-
// threshold candidate index equivalent to it: per-candidate statistics
// match to 1e-9 on random batches, and whole-stream structural decisions
// (the split/replace/prune sequence) are identical.

// naiveUpdateStats mirrors (*Tree).updateStats exactly, except that the
// candidate statistics are accumulated the naive way. Proposal drawing,
// the SGD step and admission all reuse the production code, so the two
// paths differ only in how rows are folded into candidates.
func naiveUpdateStats(t *Tree, n *node, b stream.Batch) {
	rows := b.Len()
	if rows == 0 {
		return
	}
	cfg := &t.cfg
	m := t.schema.NumFeatures
	w := n.mod.NumWeights()
	ix := n.idx

	t.propose(n, b)

	rowGrad := make([]float64, w)
	batchGrad := make([]float64, w)
	var batchLoss, used float64
	for i := 0; i < rows; i++ {
		x := b.X[i]
		if !linalg.IsFinite(x) {
			continue
		}
		li := n.mod.RowLossGrad(x, b.Y[i], rowGrad)
		batchLoss += li
		linalg.Add(batchGrad, rowGrad)
		used++
		for j := 0; j < m; j++ {
			lo, hi := ix.featRange(j)
			for pos := lo; pos < hi; pos++ {
				e := ix.entries[pos]
				if x[j] <= e.value {
					ix.loss[e.slot] += li
					ix.n[e.slot]++
					linalg.Add(ix.gradOf(e.slot), rowGrad)
				}
			}
		}
		n.mod.ApplyGrad(rowGrad, -cfg.effectiveLR(n.n+used))
	}
	if used == 0 {
		t.dropAllProposals(n)
		return
	}
	if cfg.L1 > 0 {
		n.mod.Shrink(cfg.L1 * cfg.LearningRate * used)
	}
	n.loss += batchLoss
	linalg.Add(n.grad, batchGrad)
	n.n += used
	t.admit(n, batchLoss, batchGrad, used)
}

// naiveLearn is Tree.Learn with the naive statistics fold.
func naiveLearn(t *Tree, b stream.Batch) {
	if b.Len() == 0 {
		return
	}
	t.step++
	naiveUpdate(t, t.root, b)
}

func naiveUpdate(t *Tree, n *node, b stream.Batch) {
	inner := !n.isLeaf()
	if !inner || !t.cfg.DisableInnerUpdates {
		naiveUpdateStats(t, n, b)
	}
	if inner {
		left, right := t.partition(b, n)
		if left.Len() > 0 {
			naiveUpdate(t, n.left, left)
		}
		if right.Len() > 0 {
			naiveUpdate(t, n.right, right)
		}
		if !t.cfg.DisablePruning && !t.cfg.DisableInnerUpdates {
			t.tryRestructure(n)
		}
		return
	}
	t.trySplit(n)
}

func closeTo(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// compareTrees walks both trees in lockstep and asserts identical
// structure, identical candidate pools and per-candidate (loss, n, grad)
// within tol.
func compareTrees(t *testing.T, fast, ref *Tree, tol float64) {
	t.Helper()
	var walk func(a, b *node, path string)
	walk = func(a, b *node, path string) {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("%s: structure diverged", path)
		}
		if a == nil {
			return
		}
		if a.isLeaf() != b.isLeaf() || (!a.isLeaf() && (a.feature != b.feature || a.threshold != b.threshold)) {
			t.Fatalf("%s: split diverged: (%d,%v) vs (%d,%v)", path, a.feature, a.threshold, b.feature, b.threshold)
		}
		if !closeTo(a.loss, b.loss, tol) || a.n != b.n {
			t.Fatalf("%s: node accumulators diverged: loss %v vs %v, n %v vs %v", path, a.loss, b.loss, a.n, b.n)
		}
		if a.idx.size() != b.idx.size() {
			t.Fatalf("%s: pool size %d vs %d", path, a.idx.size(), b.idx.size())
		}
		for pos, e := range a.idx.entries {
			j := a.idx.featureOf(pos)
			bpos, ok := b.idx.find(j, e.value)
			if !ok {
				t.Fatalf("%s: candidate (x%d <= %v) missing from reference pool", path, j, e.value)
			}
			bslot := b.idx.entries[bpos].slot
			if !closeTo(a.idx.loss[e.slot], b.idx.loss[bslot], tol) {
				t.Fatalf("%s: candidate (x%d <= %v) loss %v vs %v", path, j, e.value, a.idx.loss[e.slot], b.idx.loss[bslot])
			}
			if a.idx.n[e.slot] != b.idx.n[bslot] {
				t.Fatalf("%s: candidate (x%d <= %v) count %v vs %v", path, j, e.value, a.idx.n[e.slot], b.idx.n[bslot])
			}
			ga, gb := a.idx.gradOf(e.slot), b.idx.gradOf(bslot)
			for c := range ga {
				if !closeTo(ga[c], gb[c], tol) {
					t.Fatalf("%s: candidate (x%d <= %v) grad[%d] %v vs %v", path, j, e.value, c, ga[c], gb[c])
				}
			}
		}
		walk(a.left, b.left, path+"L")
		walk(a.right, b.right, path+"R")
	}
	walk(fast.root, ref.root, "root")
}

// Property test on random batches: random schemas, configs and data
// (including NaN rows and single-class batches) — after every Learn step
// the index statistics must match the naive fold within 1e-9.
func TestCandidateIndexMatchesNaiveAccumulation(t *testing.T) {
	for _, seed := range []int64{101, 102, 103, 104} {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(5)
		c := 2 + rng.Intn(3)
		cfg := Config{
			Seed:            seed,
			CandidateFactor: 1 + rng.Intn(3),
			ReplacementRate: 0.2 + 0.6*rng.Float64(),
		}
		fast := New(cfg, stream.Schema{NumFeatures: m, NumClasses: c, Name: "equiv"})
		ref := New(cfg, stream.Schema{NumFeatures: m, NumClasses: c, Name: "equiv"})
		for step := 0; step < 60; step++ {
			rows := 1 + rng.Intn(90)
			var b stream.Batch
			for i := 0; i < rows; i++ {
				x := make([]float64, m)
				for j := range x {
					x[j] = rng.Float64()
				}
				y := rng.Intn(c)
				if x[0] > 0.5 {
					y = (y + 1) % c
				}
				if rng.Float64() < 0.02 {
					x[rng.Intn(m)] = math.NaN()
				}
				b.X = append(b.X, x)
				b.Y = append(b.Y, y)
			}
			fast.Learn(b)
			naiveLearn(ref, b)
			compareTrees(t, fast, ref, 1e-9)
		}
	}
}

// Whole-stream decision equivalence on two synthetic streams: the
// structural change sequence (kind, step, depth, feature, threshold) of
// the index-based tree must be identical to the naive reference, and the
// gains must agree within 1e-9.
func TestFullStreamDecisionsMatchNaive(t *testing.T) {
	streams := []struct {
		name string
		gen  func(rng *rand.Rand, step int) stream.Batch
	}{
		{"piecewise", func(rng *rand.Rand, step int) stream.Batch {
			return piecewiseBatch(rng, 100, 0.05)
		}},
		{"drift", func(rng *rand.Rand, step int) stream.Batch {
			// Piecewise concept that turns linear mid-stream, exercising
			// splits first and restructuring afterwards.
			if step < 400 {
				return piecewiseBatch(rng, 100, 0.05)
			}
			return linearBatch(rng, []float64{2, -1.5, 1}, -0.6, 100, 0.05)
		}},
	}
	for _, s := range streams {
		t.Run(s.name, func(t *testing.T) {
			cfg := Config{Seed: 55, RestructureGrace: 500}
			fast := New(cfg, schema(3, 2))
			ref := New(cfg, schema(3, 2))
			rngA := rand.New(rand.NewSource(77))
			rngB := rand.New(rand.NewSource(77))
			for step := 0; step < 700; step++ {
				fast.Learn(s.gen(rngA, step))
				naiveLearn(ref, s.gen(rngB, step))
			}
			ca, cb := fast.Changes(), ref.Changes()
			if len(ca) == 0 {
				t.Fatal("precondition: no structural changes happened")
			}
			if len(ca) != len(cb) {
				t.Fatalf("change counts differ: %d vs %d", len(ca), len(cb))
			}
			for i := range ca {
				a, b := ca[i], cb[i]
				if a.Step != b.Step || a.Kind != b.Kind || a.Depth != b.Depth ||
					a.Feature != b.Feature || a.Threshold != b.Threshold {
					t.Fatalf("change %d diverged: %+v vs %+v", i, a, b)
				}
				if !closeTo(a.Gain, b.Gain, 1e-9) {
					t.Fatalf("change %d gain %v vs %v", i, a.Gain, b.Gain)
				}
			}
			sa, ra, pa := fast.Revisions()
			sb, rb, pb := ref.Revisions()
			if sa != sb || ra != rb || pa != pb {
				t.Fatalf("revision counters diverged: %d/%d/%d vs %d/%d/%d", sa, ra, pa, sb, rb, pb)
			}
		})
	}
}
