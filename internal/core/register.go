package core

import (
	"io"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// init registers the Dynamic Model Tree under its paper table name so the
// public repro.New facade and the evaluation harness can build it without
// importing this package directly, plus the matching checkpoint loader
// so persist envelopes restore it by name.
func init() {
	registry.Register("DMT", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return New(Config{
			LearningRate:     p.LearningRate,
			Epsilon:          p.Epsilon,
			CandidateFactor:  p.CandidateFactor,
			ReplacementRate:  p.ReplacementRate,
			RestructureGrace: p.RestructureGrace,
			L1:               p.L1,
			MaxDepth:         p.MaxDepth,
			Seed:             p.Seed,
		}, schema), nil
	})
	registry.RegisterLoader("DMT", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		return loadPayload(r, &schema)
	})
}
