package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/stream"
)

// Property sweep: across random hyperparameter configurations, schemas
// and data, the DMT must preserve its invariants — binary arity,
// candidate caps, finite weights, distribution-valued probabilities, and
// every accepted change clearing its AIC threshold.
func TestPropertyRandomConfigsPreserveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		c := 2 + rng.Intn(4)
		cfg := Config{
			LearningRate:    []float64{0.01, 0.05, 0.2}[rng.Intn(3)],
			Epsilon:         []float64{1e-3, 1e-7, 1e-12}[rng.Intn(3)],
			CandidateFactor: 1 + rng.Intn(4),
			ReplacementRate: 0.1 + 0.8*rng.Float64(),
			MaxDepth:        rng.Intn(4), // 0..3, 0 = unbounded
			Seed:            seed,
			L1:              []float64{0, 0, 0.01}[rng.Intn(3)],
			LRWarmupBoost:   []float64{0, 0, 4}[rng.Intn(3)],
		}
		tree := New(cfg, stream.Schema{NumFeatures: m, NumClasses: c, Name: "prop"})

		for batchIdx := 0; batchIdx < 40; batchIdx++ {
			var b stream.Batch
			rows := 1 + rng.Intn(80)
			for i := 0; i < rows; i++ {
				x := make([]float64, m)
				for j := range x {
					x[j] = rng.Float64()
				}
				// Mix of learnable signal and noise, occasional NaN.
				y := rng.Intn(c)
				if x[0] > 0.5 {
					y = (y + 1) % c
				}
				if rng.Float64() < 0.01 {
					x[rng.Intn(m)] = math.NaN()
				}
				b.X = append(b.X, x)
				b.Y = append(b.Y, y)
			}
			tree.Learn(b)

			if !checkInvariants(tree, cfg, m) {
				return false
			}
		}

		// Probabilities remain a distribution and predictions in range.
		x := make([]float64, m)
		for j := range x {
			x[j] = rng.Float64()
		}
		p := tree.Proba(x, nil)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return false
		}
		if y := tree.Predict(x); y < 0 || y >= c {
			return false
		}
		// Every accepted change cleared its threshold.
		for _, ev := range tree.Changes() {
			if ev.Gain < ev.AICThreshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants walks the tree verifying structural invariants without
// failing the test directly (used inside quick properties).
func checkInvariants(tree *Tree, cfg Config, m int) bool {
	capSize := candidateCap(&tree.cfg, tree.schema)
	ok := true
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if !ok || n == nil {
			return
		}
		if n.depth != depth {
			ok = false
			return
		}
		if cfg.MaxDepth > 0 && depth > cfg.MaxDepth {
			ok = false
			return
		}
		if n.idx.size() > capSize || checkIndexInvariants(n.idx) != nil {
			ok = false
			return
		}
		if !linalg.IsFinite(n.mod.Weights()) {
			ok = false
			return
		}
		if (n.left == nil) != (n.right == nil) {
			ok = false
			return
		}
		if n.left != nil {
			walk(n.left, depth+1)
			walk(n.right, depth+1)
		}
	}
	walk(tree.root, 0)
	return ok
}
