package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// Save -> Load must preserve predictions, complexity, accumulators and
// the change log exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tree := New(Config{Seed: 31}, schema(3, 2))
	for i := 0; i < 400; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if tree.Complexity().Inner == 0 {
		t.Fatal("precondition: tree should have grown")
	}

	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Complexity() != tree.Complexity() {
		t.Fatalf("complexity changed: %+v vs %+v", loaded.Complexity(), tree.Complexity())
	}
	s1, r1, p1 := tree.Revisions()
	s2, r2, p2 := loaded.Revisions()
	if s1 != s2 || r1 != r2 || p1 != p2 {
		t.Fatal("revision counters changed")
	}
	if len(loaded.Changes()) != len(tree.Changes()) {
		t.Fatal("change log changed")
	}

	// Identical predictions on fresh data.
	test := piecewiseBatch(rng, 500, 0)
	for i, x := range test.X {
		if tree.Predict(x) != loaded.Predict(x) {
			t.Fatalf("prediction %d differs after round trip", i)
		}
		pa := tree.Proba(x, nil)
		pb := loaded.Proba(x, nil)
		for k := range pa {
			if pa[k] != pb[k] {
				t.Fatalf("probability %d/%d differs", i, k)
			}
		}
	}

	// The loaded tree must keep learning without degradation.
	for i := 0; i < 100; i++ {
		loaded.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if acc := accuracy(loaded, piecewiseBatch(rng, 1000, 0)); acc < 0.8 {
		t.Fatalf("loaded tree degraded: accuracy %v", acc)
	}
}

func TestSaveLoadMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tree := New(Config{Seed: 32}, schema(4, 5))
	for i := 0; i < 100; i++ {
		var b stream.Batch
		for j := 0; j < 50; j++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			b.X = append(b.X, x)
			b.Y = append(b.Y, int(x[0]*5)%5)
		}
		tree.Learn(b)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.5, 0.7, 0.9}
	if tree.Predict(x) != loaded.Predict(x) {
		t.Fatal("multiclass prediction differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSaveLoadPreservesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tree := New(Config{Seed: 33}, schema(3, 2))
	for i := 0; i < 50; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	nCands := tree.root.idx.size()
	if nCands == 0 {
		t.Fatal("precondition: root should hold candidates")
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.root.idx.size() != nCands {
		t.Fatalf("candidates lost: %d vs %d", loaded.root.idx.size(), nCands)
	}
	if err := checkIndexInvariants(loaded.root.idx); err != nil {
		t.Fatalf("candidate index corrupt after load: %v", err)
	}
	// Every candidate's lifetime statistics — threshold, loss, count and
	// the full gradient vector — must round-trip bit-exactly.
	orig, restored := tree.root.idx, loaded.root.idx
	for pos, e := range orig.entries {
		feature := orig.featureOf(pos)
		rpos, ok := restored.find(feature, e.value)
		if !ok {
			t.Fatalf("candidate (x%d <= %v) lost in round trip", feature, e.value)
		}
		rslot := restored.entries[rpos].slot
		if restored.loss[rslot] != orig.loss[e.slot] || restored.n[rslot] != orig.n[e.slot] {
			t.Fatalf("candidate (x%d <= %v) stats changed: loss %v->%v n %v->%v",
				feature, e.value, orig.loss[e.slot], restored.loss[rslot], orig.n[e.slot], restored.n[rslot])
		}
		og, rg := orig.gradOf(e.slot), restored.gradOf(rslot)
		for k := range og {
			if og[k] != rg[k] {
				t.Fatalf("candidate (x%d <= %v) gradient[%d] changed: %v -> %v",
					feature, e.value, k, og[k], rg[k])
			}
		}
	}
}

// A candidate document that would overflow the arena or carry a
// non-finite threshold must be rejected, not silently truncated.
func TestLoadRejectsCorruptCandidates(t *testing.T) {
	tree := New(Config{Seed: 34}, schema(2, 2))
	rng := rand.New(rand.NewSource(34))
	for i := 0; i < 20; i++ {
		tree.Learn(piecewiseBatch(rng, 50, 0))
	}
	// Poison the bare payload document; the envelope-free bytes exercise
	// Load's legacy path, which reads bare gob documents of any
	// supported version.
	var buf bytes.Buffer
	if err := tree.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	doc := decodeDoc(t, buf.Bytes())
	doc.Root.Candidates = append(doc.Root.Candidates, candDoc{
		Feature: 99, Value: 0.5, Grad: make([]float64, tree.root.mod.NumWeights()),
	})
	if _, err := Load(bytes.NewReader(encodeDoc(t, doc))); err == nil {
		t.Fatal("out-of-range candidate feature accepted")
	}
	doc = decodeDoc(t, buf.Bytes())
	doc.Root.Candidates = append(doc.Root.Candidates, candDoc{
		Feature: 0, Value: math.NaN(), Grad: make([]float64, tree.root.mod.NumWeights()),
	})
	if _, err := Load(bytes.NewReader(encodeDoc(t, doc))); err == nil {
		t.Fatal("NaN candidate threshold accepted")
	}
}

// TestLegacyV1DocStillLoads pins the backwards-compatibility promise:
// a pre-envelope version-1 bare gob document — what (*Tree).Save wrote
// before the unified checkpoint API — still loads through Load (and
// therefore repro.LoadDMT), with the historical re-seeded RNG.
func TestLegacyV1DocStillLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tree := New(Config{Seed: 35}, schema(3, 2))
	for i := 0; i < 300; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	var buf bytes.Buffer
	if err := tree.saveLegacyV1(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy v1 doc rejected: %v", err)
	}
	if loaded.Complexity() != tree.Complexity() {
		t.Fatalf("complexity changed: %+v vs %+v", loaded.Complexity(), tree.Complexity())
	}
	test := piecewiseBatch(rng, 300, 0)
	for i, x := range test.X {
		if tree.Predict(x) != loaded.Predict(x) {
			t.Fatalf("prediction %d differs after legacy round trip", i)
		}
	}
	// The legacy format carries no RNG state; the loaded tree must still
	// keep learning (the historical deterministic-reseed behaviour).
	for i := 0; i < 50; i++ {
		loaded.Learn(piecewiseBatch(rng, 100, 0.05))
	}
}

// TestEnvelopeAndLegacySniffing checks Load distinguishes the two
// formats by content, not by caller knowledge.
func TestEnvelopeAndLegacySniffing(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	tree := New(Config{Seed: 36}, schema(3, 2))
	for i := 0; i < 50; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	var envelope, legacy bytes.Buffer
	if err := tree.Save(&envelope); err != nil {
		t.Fatal(err)
	}
	if err := tree.saveLegacyV1(&legacy); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(legacy.Bytes(), envelope.Bytes()[:8]) {
		t.Fatal("legacy doc accidentally starts with the envelope magic")
	}
	for _, raw := range [][]byte{envelope.Bytes(), legacy.Bytes()} {
		loaded, err := Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Complexity() != tree.Complexity() {
			t.Fatal("complexity changed")
		}
	}
}

func decodeDoc(t *testing.T, raw []byte) *treeDoc {
	t.Helper()
	var doc treeDoc
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return &doc
}

func encodeDoc(t *testing.T, doc *treeDoc) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
