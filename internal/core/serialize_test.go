package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// Save -> Load must preserve predictions, complexity, accumulators and
// the change log exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tree := New(Config{Seed: 31}, schema(3, 2))
	for i := 0; i < 400; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if tree.Complexity().Inner == 0 {
		t.Fatal("precondition: tree should have grown")
	}

	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Complexity() != tree.Complexity() {
		t.Fatalf("complexity changed: %+v vs %+v", loaded.Complexity(), tree.Complexity())
	}
	s1, r1, p1 := tree.Revisions()
	s2, r2, p2 := loaded.Revisions()
	if s1 != s2 || r1 != r2 || p1 != p2 {
		t.Fatal("revision counters changed")
	}
	if len(loaded.Changes()) != len(tree.Changes()) {
		t.Fatal("change log changed")
	}

	// Identical predictions on fresh data.
	test := piecewiseBatch(rng, 500, 0)
	for i, x := range test.X {
		if tree.Predict(x) != loaded.Predict(x) {
			t.Fatalf("prediction %d differs after round trip", i)
		}
		pa := tree.Proba(x, nil)
		pb := loaded.Proba(x, nil)
		for k := range pa {
			if pa[k] != pb[k] {
				t.Fatalf("probability %d/%d differs", i, k)
			}
		}
	}

	// The loaded tree must keep learning without degradation.
	for i := 0; i < 100; i++ {
		loaded.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	if acc := accuracy(loaded, piecewiseBatch(rng, 1000, 0)); acc < 0.8 {
		t.Fatalf("loaded tree degraded: accuracy %v", acc)
	}
}

func TestSaveLoadMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tree := New(Config{Seed: 32}, schema(4, 5))
	for i := 0; i < 100; i++ {
		var b stream.Batch
		for j := 0; j < 50; j++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			b.X = append(b.X, x)
			b.Y = append(b.Y, int(x[0]*5)%5)
		}
		tree.Learn(b)
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.5, 0.7, 0.9}
	if tree.Predict(x) != loaded.Predict(x) {
		t.Fatal("multiclass prediction differs")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSaveLoadPreservesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tree := New(Config{Seed: 33}, schema(3, 2))
	for i := 0; i < 50; i++ {
		tree.Learn(piecewiseBatch(rng, 100, 0.05))
	}
	nCands := len(tree.root.cands)
	if nCands == 0 {
		t.Fatal("precondition: root should hold candidates")
	}
	var buf bytes.Buffer
	if err := tree.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.root.cands) != nCands {
		t.Fatalf("candidates lost: %d vs %d", len(loaded.root.cands), nCands)
	}
	if len(loaded.root.candSet) != nCands {
		t.Fatal("candidate index out of sync after load")
	}
}
