package core

import (
	"repro/internal/linalg"
)

// Split-candidate statistics accumulate, for the would-be left child C
// (rows with x[feature] <= value), the loss of the parent model on C, the
// gradient of that loss, and the row count. The right-child statistics
// are always derived as parent minus left, so they are never stored
// (Algorithm 1, note before line 4). The storage itself lives in the
// per-feature sorted-threshold index (candindex.go); this file keeps the
// gain arithmetic.

// candidateGain evaluates gain (3)/(4) for left statistics (cLoss, cGrad,
// cN) against parent statistics (pLoss, pGrad, pN), using the
// gradient-step loss approximation of eq. (7) on both branches:
//
//	L̂(C)  = L(Θ_S; C)  - lr/|C|  * ||∇L(Θ_S; C)||²
//	L̂(C̄) = L(Θ_S; C̄) - lr/|C̄| * ||∇L(Θ_S; C̄)||²
//	G      = referenceLoss - L̂(C) - L̂(C̄)
//
// referenceLoss is L(S) at a leaf (gain 3) or the subtree's summed leaf
// loss at an inner node (gain 4). Returns ok=false when either branch has
// fewer than minN observations.
func candidateGain(referenceLoss float64, pLoss float64, pGrad []float64, pN float64,
	cLoss float64, cGrad []float64, cN float64, lr, minN float64) (float64, bool) {
	rN := pN - cN
	if cN < minN || rN < minN {
		return 0, false
	}
	leftHat := cLoss - lr/cN*linalg.Norm2Sq(cGrad)
	rightLoss := pLoss - cLoss
	rightHat := rightLoss - lr/rN*linalg.Norm2SqDiff(pGrad, cGrad)
	return referenceLoss - leftHat - rightHat, true
}
