package core

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/synth"
)

// plantedBatches materialises the planted categorical-concept stream
// into batches.
func plantedBatches(t *testing.T, n, size int, seed int64) (stream.Schema, []stream.Batch) {
	t.Helper()
	gen := synth.NewCategoricalConcept(n*size+size, 8, 0.02, seed)
	var out []stream.Batch
	for i := 0; i < n; i++ {
		var b stream.Batch
		for j := 0; j < size; j++ {
			inst, err := gen.Next()
			if err != nil {
				t.Fatalf("stream ended early: %v", err)
			}
			b.X = append(b.X, inst.X)
			b.Y = append(b.Y, inst.Y)
		}
		out = append(out, b)
	}
	return gen.Schema(), out
}

// On the planted stream — the label depends only on the categorical
// attribute and the level codes alternate between the classes — the DMT
// must split natively on the categorical feature: every installed split
// is an equality or subset test on feature 2, never a threshold on the
// raw code.
func TestDMTPicksCategoricalSplit(t *testing.T) {
	schema, batches := plantedBatches(t, 60, 64, 21)
	tr := New(Config{Seed: 3}, schema)
	for _, b := range batches {
		tr.Learn(b)
	}
	if tr.root.isLeaf() {
		t.Fatal("tree never split on the planted categorical concept")
	}
	var walk func(n *node)
	categorical := 0
	walk = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.feature != 2 {
			t.Fatalf("split on feature %d, want the categorical feature 2", n.feature)
		}
		if n.kind != model.SplitEquality && n.kind != model.SplitSubset {
			t.Fatalf("split kind %v on the categorical feature, want equality or subset", n.kind)
		}
		categorical++
		walk(n.left)
		walk(n.right)
	}
	walk(tr.root)
	if categorical == 0 {
		t.Fatal("no categorical split installed")
	}
	if desc := tr.Describe(); !strings.Contains(desc, "==") && !strings.Contains(desc, " in {") {
		t.Fatalf("Describe does not render the categorical test:\n%s", desc)
	}
}

// Unseen level codes route deterministically: predictions for a level
// the tree never observed are stable across calls and identical to any
// other unseen level's routing (both fall to the right branch).
func TestDMTUnseenLevelDeterministic(t *testing.T) {
	schema, batches := plantedBatches(t, 60, 64, 22)
	// Widen the declared cardinality so codes 8..15 exist but are never
	// observed in the data.
	schema.Kinds[2] = stream.Categorical(16)
	tr := New(Config{Seed: 3}, schema)
	for _, b := range batches {
		tr.Learn(b)
	}
	x := []float64{0.5, 0.5, 14}
	first := tr.Predict(x)
	for i := 0; i < 5; i++ {
		if got := tr.Predict(x); got != first {
			t.Fatal("unseen-level prediction is unstable")
		}
	}
	x2 := []float64{0.5, 0.5, 9}
	if tr.Predict(x2) != first {
		t.Fatal("two unseen levels routed differently")
	}
}

// Save → load → continue on a categorical schema stays byte-identical.
func TestDMTCategoricalCheckpointContinue(t *testing.T) {
	schema, batches := plantedBatches(t, 40, 64, 23)
	control := New(Config{Seed: 5}, schema)
	subject := New(Config{Seed: 5}, schema)
	half := len(batches) / 2
	for i := 0; i < half; i++ {
		control.Learn(batches[i])
		subject.Learn(batches[i])
	}
	var buf bytes.Buffer
	if err := subject.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(batches); i++ {
		control.Learn(batches[i])
		restored.Learn(batches[i])
	}
	for _, b := range batches {
		for _, x := range b.X {
			if control.Predict(x) != restored.Predict(x) {
				t.Fatal("prediction diverged after categorical checkpoint resume")
			}
		}
	}
	if control.Describe() != restored.Describe() {
		t.Fatal("structure diverged after categorical checkpoint resume")
	}
}

// legacyNodeDoc and legacyTreeDoc mirror the pre-categorical document
// structs: no Kind, no Mask. Gob matches fields by name, so decoding a
// document written by an old binary must yield threshold-kind nodes.
type legacyNodeDoc struct {
	Weights    []float64
	Loss       float64
	Grad       []float64
	N          float64
	Candidates []legacyCandDoc
	Feature    int
	Threshold  float64
	Depth      int
	Left       *legacyNodeDoc
	Right      *legacyNodeDoc
}

type legacyCandDoc struct {
	Feature int
	Value   float64
	Loss    float64
	Grad    []float64
	N       float64
}

type legacyTreeDoc struct {
	Version  int
	Config   Config
	Schema   stream.Schema
	Step     int
	Splits   int
	Replaces int
	Prunes   int
	Changes  []ChangeEvent
	Root     *legacyNodeDoc
}

// A checkpoint written before feature kinds existed — numeric-only
// schema, no Kind/Mask fields anywhere — still loads, with every node
// decoding as a threshold split.
func TestLegacyNumericDocumentLoads(t *testing.T) {
	schema := stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "legacy"}
	w := make([]float64, 3) // glm weights for 2 features, 2 classes
	g := make([]float64, 3)
	doc := legacyTreeDoc{
		Version: treeDocVersionLegacy,
		Config:  Config{Seed: 1},
		Schema:  schema,
		Step:    4,
		Root: &legacyNodeDoc{
			Weights: w, Grad: g, N: 10, Feature: 1, Threshold: 0.5,
			Left:  &legacyNodeDoc{Weights: w, Grad: g, N: 5},
			Right: &legacyNodeDoc{Weights: w, Grad: g, N: 5},
		},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		t.Fatal(err)
	}
	tr, err := loadPayload(&buf, nil)
	if err != nil {
		t.Fatalf("legacy document failed to load: %v", err)
	}
	if tr.root.kind != model.SplitThreshold || tr.root.mask != 0 {
		t.Fatalf("legacy node decoded as kind %v mask %x, want threshold", tr.root.kind, tr.root.mask)
	}
	// And it keeps learning.
	tr.Learn(stream.Batch{X: [][]float64{{0.1, 0.2}, {0.8, 0.9}}, Y: []int{0, 1}})
}

// Candidate level codes outside the declared cardinality are rejected at
// load time.
func TestLoadRejectsBadLevelCode(t *testing.T) {
	schema := stream.Schema{
		NumFeatures: 2, NumClasses: 2, Name: "badcode",
		Kinds: []stream.FeatureKind{stream.Numeric(), stream.Categorical(4)},
	}
	tr := New(Config{Seed: 1}, schema)
	tr.Learn(stream.Batch{X: [][]float64{{0.1, 2}, {0.8, 3}}, Y: []int{0, 1}})
	doc := tr.doc()
	doc.Root.Candidates = append(doc.Root.Candidates, candDoc{
		Feature: 1, Value: 9, Grad: make([]float64, tr.root.mod.NumWeights()),
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(doc); err != nil {
		t.Fatal(err)
	}
	if _, err := loadPayload(&buf, nil); err == nil {
		t.Fatal("out-of-range candidate level code was accepted")
	}
}
