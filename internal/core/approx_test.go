package core

import (
	"math/rand"
	"testing"

	"repro/internal/glm"
	"repro/internal/linalg"
)

// The candidate-loss approximation of eqs. (6)-(7) is a first-order
// Taylor expansion around the parent parameters after one warm-started
// gradient step. For the convex negative log-likelihood the function lies
// above its tangent plane, so the exact loss of the stepped candidate
// model must always dominate the approximation:
//
//	L(Θ_S - (λ/|C|)∇; C)  >=  L(Θ_S; C) - (λ/|C|)·||∇||²
//
// and for small λ the two must agree closely. This test verifies both on
// random data, candidates and model states — the mathematical core of
// the DMT's split scoring.
func TestCandidateLossApproximationBoundsExactLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(5)
		c := 2 + rng.Intn(3)
		mod := glm.New(m, c, rng)

		// Random labelled subset C (the would-be left child).
		n := 5 + rng.Intn(60)
		X := make([][]float64, n)
		Y := make([]int, n)
		for i := range X {
			X[i] = make([]float64, m)
			for j := range X[i] {
				X[i][j] = rng.Float64()
			}
			Y[i] = rng.Intn(c)
		}
		// Partially train so the parameter point varies across trials.
		for e := 0; e < rng.Intn(20); e++ {
			mod.Step(X, Y, 0.1)
		}

		grad := make([]float64, mod.NumWeights())
		lossAtParent := mod.LossGrad(X, Y, grad)

		for _, lr := range []float64{0.01, 0.05, 0.2} {
			approx := lossAtParent - lr/float64(n)*linalg.Norm2Sq(grad)

			stepped := mod.Clone()
			stepped.ApplyGrad(grad, -lr/float64(n))
			exact := stepped.Loss(X, Y)

			if exact < approx-1e-9 {
				t.Fatalf("trial %d lr=%v: exact loss %v fell below the first-order bound %v",
					trial, lr, exact, approx)
			}
			// For the smallest rate the expansion must be tight.
			if lr == 0.01 {
				if gap := exact - approx; gap > 0.05*(1+lossAtParent) {
					t.Fatalf("trial %d: approximation too loose at small lr: exact %v, approx %v",
						trial, exact, approx)
				}
			}
		}
	}
}

// The approximated gain (3) must rank a genuinely useful split above a
// useless one: the gradient-norm terms encode how much each branch would
// improve from one warm-started step.
func TestApproximatedGainRanksSplitsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const m = 2
	mod := glm.New(m, 2, rng)

	// XOR-ish data: x0 <= 0.5 wants y = (x1 > 0.5); x0 > 0.5 the inverse.
	// The useful candidate splits on x0 at 0.5; the useless one splits on
	// x1's irrelevant tail at 0.9 (both sides keep the same concept mix).
	n := 4000
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		if X[i][0] <= 0.5 {
			if X[i][1] > 0.5 {
				Y[i] = 1
			}
		} else if X[i][1] <= 0.5 {
			Y[i] = 1
		}
	}
	// Train to the (useless) global optimum of the single model.
	for e := 0; e < 50; e++ {
		mod.Step(X, Y, 0.5)
	}

	gainOf := func(feature int, threshold float64) float64 {
		parentGrad := make([]float64, mod.NumWeights())
		parentLoss := mod.LossGrad(X, Y, parentGrad)
		leftGrad := make([]float64, mod.NumWeights())
		rowGrad := make([]float64, mod.NumWeights())
		var leftLoss, leftN float64
		for i := range X {
			if X[i][feature] <= threshold {
				leftLoss += mod.RowLossGrad(X[i], Y[i], rowGrad)
				linalg.Add(leftGrad, rowGrad)
				leftN++
			}
		}
		g, ok := candidateGain(parentLoss, parentLoss, parentGrad, float64(n),
			leftLoss, leftGrad, leftN, 0.05, 2)
		if !ok {
			t.Fatalf("gain rejected for feature %d", feature)
		}
		return g
	}

	useful := gainOf(0, 0.5)
	useless := gainOf(1, 0.9)
	if useful <= useless {
		t.Fatalf("useful split gain %v must exceed useless split gain %v", useful, useless)
	}
	if useful <= 0 {
		t.Fatalf("useful split gain %v must be positive", useful)
	}
}
