package core

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/glm"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/stream"
)

// ChangeKind labels a structural change of the tree.
type ChangeKind int

const (
	// ChangeSplit records a leaf split via gain (3).
	ChangeSplit ChangeKind = iota
	// ChangeReplace records an inner-node split replacement via gain (4).
	ChangeReplace
	// ChangePrune records an inner node becoming a leaf via gain (5).
	ChangePrune
)

// String returns the display name of the change kind.
func (k ChangeKind) String() string {
	switch k {
	case ChangeSplit:
		return "split"
	case ChangeReplace:
		return "replace"
	case ChangePrune:
		return "prune"
	}
	return "?"
}

// ChangeEvent describes one structural change together with the loss-based
// gain that justified it — the paper's notion of interpretable model
// updates ("Why have you split this node at time step u?", Section I-A):
// every change is attributable to a measured reduction of the estimated
// negative log-likelihood, i.e. to a change of the approximate data
// concept.
type ChangeEvent struct {
	// Step is the Learn call (time step t) during which the change fired.
	Step int
	// Kind is the type of change.
	Kind ChangeKind
	// Depth is the depth of the changed node.
	Depth int
	// Feature and Threshold describe the new split (for prunes, the
	// removed one). SplitKind discriminates the test — for equality
	// tests Threshold holds the level code, for subset tests Mask holds
	// the level set.
	Feature   int
	Threshold float64
	SplitKind model.SplitKind
	Mask      uint64
	// Gain is the realised loss-based gain, already past the AIC
	// threshold of eq. (11).
	Gain float64
	// Threshold the gain had to clear (eq. 11).
	AICThreshold float64
}

// maxChangeLog bounds the retained change history.
const maxChangeLog = 4096

// Tree is the Dynamic Model Tree classifier.
type Tree struct {
	cfg     Config
	schema  stream.Schema
	root    *node
	rng     *rand.Rand
	rngSrc  *rng.Source // counted source behind rng, for checkpointing
	scratch *scratch    // reusable Learn-path workspace (never touched by reads)
	k       float64     // free parameters per simple model (AIC k)
	step    int

	splits, replaces, prunes int
	changes                  []ChangeEvent
}

// New returns an empty DMT for the schema. The root starts as a single
// leaf with a randomly initialised simple model (Section IV-E notes this
// random start only affects the root; all later models warm-start).
func New(cfg Config, schema stream.Schema) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg, schema: schema}
	t.rng, t.rngSrc = rng.New(cfg.Seed + 5)
	t.root = t.newNode(0, nil)
	t.scratch = newScratch(t.root.mod.NumWeights(), maxSlots(&t.cfg, schema))
	t.k = float64(t.root.mod.FreeParams())
	return t
}

// newNode builds a node; parent != nil warm-starts the simple model with
// the parent's parameters (unless the ablation switch disables it).
func (t *Tree) newNode(depth int, parent glm.Model) *node {
	var mod glm.Model
	if parent != nil && !t.cfg.DisableWarmStart {
		mod = parent.Clone()
	} else {
		mod = glm.New(t.schema.NumFeatures, t.schema.NumClasses, t.rng)
	}
	m := t.schema.NumFeatures
	n := &node{
		mod:   mod,
		grad:  make([]float64, mod.NumWeights()),
		depth: depth,
		idx:   newCandIndex(m, mod.NumWeights(), maxSlots(&t.cfg, t.schema)),
	}
	return n
}

// Name implements model.Classifier.
func (t *Tree) Name() string { return "DMT" }

// Schema returns the stream schema the tree was built for.
func (t *Tree) Schema() stream.Schema { return t.schema }

// Config returns the effective (defaulted) configuration.
func (t *Tree) Config() Config { return t.cfg }

// Learn implements model.Classifier: one prequential time step. The batch
// is forwarded down the tree, every simple model on the path is updated,
// and structural checks run bottom-up (Algorithm 1).
func (t *Tree) Learn(b stream.Batch) {
	if b.Len() == 0 {
		return
	}
	t.step++
	t.update(t.root, b)
}

// update recursively processes one node: statistics first (top-down),
// then children, then this node's structural decision (bottom-up).
func (t *Tree) update(n *node, b stream.Batch) {
	// Any node that receives rows may change (model drift at least,
	// structure at most), so its frozen-subtree cache is stale. The nodes
	// a structural change touches are exactly the visited ones: splits and
	// replaces fire at n itself, prunes drop the (also invalidated)
	// subtree below n.
	n.snap = nil
	inner := !n.isLeaf()
	if !inner || !t.cfg.DisableInnerUpdates {
		t.updateStats(n, b)
	}

	if inner {
		left, right := t.partition(b, n)
		if left.Len() > 0 {
			t.update(n.left, left)
		}
		if right.Len() > 0 {
			t.update(n.right, right)
		}
		if !t.cfg.DisablePruning && !t.cfg.DisableInnerUpdates {
			t.tryRestructure(n)
		}
		return
	}
	t.trySplit(n)
}

// partition splits a batch by the node's test without copying rows. The
// row-pointer slices come from the per-depth scratch ladder — the left
// and right halves of depth d stay valid while the subtrees (depths > d)
// repartition — so the recursion reuses two index slices per level
// instead of growing fresh ones every level every batch.
func (t *Tree) partition(b stream.Batch, n *node) (left, right stream.Batch) {
	lv := t.scratch.level(n.depth)
	lv.leftX, lv.leftY = lv.leftX[:0], lv.leftY[:0]
	lv.rightX, lv.rightY = lv.rightX[:0], lv.rightY[:0]
	for i, x := range b.X {
		if model.RouteSplit(x[n.feature], n.kind, n.threshold, n.mask, true) {
			lv.leftX = append(lv.leftX, x)
			lv.leftY = append(lv.leftY, b.Y[i])
		} else {
			lv.rightX = append(lv.rightX, x)
			lv.rightY = append(lv.rightY, b.Y[i])
		}
	}
	return stream.Batch{X: lv.leftX, Y: lv.leftY}, stream.Batch{X: lv.rightX, Y: lv.rightY}
}

// trySplit applies gain (3) with the AIC threshold of eq. (11) at a leaf:
// split when G >= k - log(eps), where k is the free-parameter count of one
// simple model (two child models replace one leaf model).
func (t *Tree) trySplit(n *node) {
	if t.cfg.MaxDepth > 0 && n.depth >= t.cfg.MaxDepth {
		return
	}
	c, ok := t.bestCandidate(n, n.loss, false)
	if !ok {
		return
	}
	thr := t.k + t.cfg.logEps()
	if c.gain < thr {
		return
	}
	t.split(n, c, thr)
}

// split turns a leaf into an inner node with two warm-started children and
// restarts the node's epoch so I_t = ∪ J_t holds for the new family.
func (t *Tree) split(n *node, c splitChoice, thr float64) {
	n.feature, n.threshold, n.kind, n.mask = c.feature, c.threshold, c.kind, c.mask
	n.left = t.newNode(n.depth+1, n.mod)
	n.right = t.newNode(n.depth+1, n.mod)
	n.resetEpoch()
	t.splits++
	t.logChange(ChangeEvent{
		Step: t.step, Kind: ChangeSplit, Depth: n.depth,
		Feature: n.feature, Threshold: n.threshold, SplitKind: n.kind, Mask: n.mask,
		Gain: c.gain, AICThreshold: thr,
	})
}

// tryRestructure applies gains (4) and (5) at an inner node. With the
// gradient approximation of eq. (7) the loss is additive, so gain (4) of
// any candidate always dominates gain (5); the paper's "retain the
// smaller tree" tie-break (Lemma 2) therefore compares the AIC-adjusted
// gains: prune wins unless the alternate split's gradient improvement
// exceeds the parameter cost k of the extra model.
func (t *Tree) tryRestructure(n *node) {
	if n.n < t.cfg.RestructureGrace {
		return // children have not had time to realise their advantage
	}
	leafLoss, leaves := subtreeLeafStats(n)
	subLeaves := float64(leaves)

	gain5 := leafLoss - n.loss
	thr5 := (1-subLeaves)*t.k + t.cfg.logEps()
	prunePass := gain5 >= thr5

	c, ok4 := t.bestCandidate(n, leafLoss, true)
	thr4 := (2-subLeaves)*t.k + t.cfg.logEps()
	replacePass := ok4 && c.gain >= thr4

	switch {
	case prunePass && replacePass:
		// Compare AIC-adjusted gains; equality favours the smaller tree.
		if gain5-(1-subLeaves)*t.k >= c.gain-(2-subLeaves)*t.k {
			t.prune(n, gain5, thr5)
		} else {
			t.replace(n, c, thr4)
		}
	case prunePass:
		t.prune(n, gain5, thr5)
	case replacePass:
		t.replace(n, c, thr4)
	}
}

// prune removes the subtree below n, making it a leaf again. The node
// keeps its accumulators and candidates: they describe exactly the data
// that reached it, which remains true for the new leaf.
func (t *Tree) prune(n *node, gain, thr float64) {
	ev := ChangeEvent{
		Step: t.step, Kind: ChangePrune, Depth: n.depth,
		Feature: n.feature, Threshold: n.threshold, SplitKind: n.kind, Mask: n.mask,
		Gain: gain, AICThreshold: thr,
	}
	n.left, n.right = nil, nil
	t.prunes++
	t.logChange(ev)
}

// replace swaps the subtree below n for a new split with two fresh
// warm-started leaves and restarts the node's epoch.
func (t *Tree) replace(n *node, c splitChoice, thr float64) {
	n.feature, n.threshold, n.kind, n.mask = c.feature, c.threshold, c.kind, c.mask
	n.left = t.newNode(n.depth+1, n.mod)
	n.right = t.newNode(n.depth+1, n.mod)
	n.resetEpoch()
	t.replaces++
	t.logChange(ChangeEvent{
		Step: t.step, Kind: ChangeReplace, Depth: n.depth,
		Feature: n.feature, Threshold: n.threshold, SplitKind: n.kind, Mask: n.mask,
		Gain: c.gain, AICThreshold: thr,
	})
}

func (t *Tree) logChange(ev ChangeEvent) {
	if len(t.changes) >= maxChangeLog {
		copy(t.changes, t.changes[1:])
		t.changes = t.changes[:maxChangeLog-1]
	}
	t.changes = append(t.changes, ev)
}

// sortTo routes x to its leaf via the shared model.RouteSplit predicate.
// Non-finite feature values (NaN, ±Inf) deterministically route left,
// matching FIMT-DD and the serving snapshots — the candidate machinery
// skips non-finite values, so no test ever separates them, and routing
// them left keeps learn and predict paths consistent. Unseen categorical
// levels route right, equally deterministically.
func (t *Tree) sortTo(x []float64) *node {
	cur := t.root
	for !cur.isLeaf() {
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur
}

// Predict implements model.Classifier using the leaf's simple model.
func (t *Tree) Predict(x []float64) int { return t.sortTo(x).mod.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (t *Tree) Proba(x []float64, out []float64) []float64 {
	return t.sortTo(x).mod.Proba(x, out)
}

func countNodes(n *node) (inner, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.isLeaf() {
		return 0, 1, 0
	}
	li, ll, ld := countNodes(n.left)
	ri, rl, rd := countNodes(n.right)
	d := ld
	if rd > d {
		d = rd
	}
	return li + ri + 1, ll + rl, d + 1
}

// Complexity implements model.Classifier with model leaves.
func (t *Tree) Complexity() model.Complexity {
	inner, leaves, depth := countNodes(t.root)
	return model.TreeComplexity(inner, leaves, depth, model.LeafModel, t.schema.NumFeatures, t.schema.NumClasses)
}

// freeze returns the immutable SnapNode of n's subtree, reusing the one
// cached at the last publish when no learn path has visited n since.
// Leaf predictors are cloned at freeze time, so the snapshot shares no
// mutable state with the live tree.
func freeze(n *node) *model.SnapNode {
	if n.snap != nil {
		return n.snap
	}
	if n.isLeaf() {
		n.snap = model.FreezeLeaf(n.mod.Clone())
	} else {
		n.snap = model.FreezeInnerSplit(n.feature, n.kind, n.threshold, n.mask, freeze(n.left), freeze(n.right))
	}
	return n.snap
}

// Snapshot implements model.Snapshotter: an immutable serving copy of
// the current tree structure with cloned leaf simple models. Inner-node
// models, candidate indices and scratch are learn-path state and are not
// captured — the snapshot serves Predict/Proba/Complexity only.
//
// Publishing is copy-on-write: subtrees untouched since the previous
// Snapshot call are shared with it via the per-node freeze cache, so a
// publish after one local change costs O(changed path), not O(tree).
func (t *Tree) Snapshot() model.Snapshot {
	root := freeze(t.root)
	return &model.CowTree{
		ModelName:     t.Name(),
		Comp:          model.TreeComplexity(root.Inner, root.Leaves, root.Depth, model.LeafModel, t.schema.NumFeatures, t.schema.NumClasses),
		Root:          root,
		NonFiniteLeft: true,
	}
}

// Changes returns the retained structural-change history (oldest first).
func (t *Tree) Changes() []ChangeEvent {
	out := make([]ChangeEvent, len(t.changes))
	copy(out, t.changes)
	return out
}

// Revisions returns the lifetime counts of splits, replacements and
// prunes.
func (t *Tree) Revisions() (splits, replaces, prunes int) {
	return t.splits, t.replaces, t.prunes
}

// StructureVersion implements model.StructureVersioner: the lifetime
// count of structural changes, driving the serving layer's
// publish-on-change mode.
func (t *Tree) StructureVersion() uint64 {
	return uint64(t.splits) + uint64(t.replaces) + uint64(t.prunes)
}

// CheckpointParams implements registry.ParamsReporter for the
// self-describing checkpoint envelope.
func (t *Tree) CheckpointParams() registry.Params {
	return registry.Params{
		Seed:             t.cfg.Seed,
		LearningRate:     t.cfg.LearningRate,
		Epsilon:          t.cfg.Epsilon,
		CandidateFactor:  t.cfg.CandidateFactor,
		ReplacementRate:  t.cfg.ReplacementRate,
		RestructureGrace: t.cfg.RestructureGrace,
		L1:               t.cfg.L1,
		MaxDepth:         t.cfg.MaxDepth,
	}
}

// LeafWeights returns, for the leaf that x routes to, the simple model's
// per-feature weights of the given class — the local feature-based
// explanation the paper highlights as an advantage of Model Trees
// (Section I-C). For binary targets pass class 1.
func (t *Tree) LeafWeights(x []float64, class int) []float64 {
	leaf := t.sortTo(x)
	switch m := leaf.mod.(type) {
	case *glm.Logit:
		return m.FeatureWeights()
	case *glm.Softmax:
		return m.ClassWeights(class)
	}
	return nil
}

// describeTest renders one split test against the schema: the numeric
// threshold form, the equality form with the level's name, or the subset
// form with the mask's level names.
func (t *Tree) describeTest(feature int, kind model.SplitKind, threshold float64, mask uint64) string {
	return describeTest(t.schema, feature, kind, threshold, mask)
}

func describeTest(schema stream.Schema, feature int, kind model.SplitKind, threshold float64, mask uint64) string {
	name := schema.FeatureName(feature)
	switch kind {
	case model.SplitEquality:
		return fmt.Sprintf("%s == %s", name, schema.LevelName(feature, int(threshold)))
	case model.SplitSubset:
		var sb strings.Builder
		sb.WriteString(name)
		sb.WriteString(" in {")
		for i, lv := range model.MaskLevels(mask) {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(schema.LevelName(feature, lv))
		}
		sb.WriteString("}")
		return sb.String()
	default:
		return fmt.Sprintf("%s <= %.4g", name, threshold)
	}
}

// Test renders the event's split test against a schema — `x3 <= 0.52`,
// `cat == blue`, or `cat in {red, blue}` — so change-log renderers show
// the same condition Describe prints in the tree.
func (ev ChangeEvent) Test(schema stream.Schema) string {
	return describeTest(schema, ev.Feature, ev.SplitKind, ev.Threshold, ev.Mask)
}

// Describe renders the tree structure with split conditions and leaf
// sizes, a human-readable view of the deployed model.
func (t *Tree) Describe() string {
	var sb strings.Builder
	var walk func(n *node, prefix string, label string)
	walk = func(n *node, prefix, label string) {
		if n.isLeaf() {
			fmt.Fprintf(&sb, "%s%sleaf[n=%.0f, loss=%.2f]\n", prefix, label, n.n, n.loss)
			return
		}
		fmt.Fprintf(&sb, "%s%s%s  [n=%.0f]\n", prefix, label, t.describeTest(n.feature, n.kind, n.threshold, n.mask), n.n)
		walk(n.left, prefix+"  ", "Y: ")
		walk(n.right, prefix+"  ", "N: ")
	}
	walk(t.root, "", "")
	return sb.String()
}

// DebugRoot reports the root's best-candidate gain against its split
// threshold — diagnostic output used by tests and tooling.
func (t *Tree) DebugRoot() string {
	n := t.root
	c, ok := t.bestCandidate(n, n.loss, false)
	if !ok {
		return fmt.Sprintf("root{n=%.0f loss=%.1f cands=%d no-gain}", n.n, n.loss, n.idx.size())
	}
	test := fmt.Sprintf("x%d<=%.3g", c.feature, c.threshold)
	switch c.kind {
	case model.SplitEquality:
		test = fmt.Sprintf("x%d==%g", c.feature, c.threshold)
	case model.SplitSubset:
		test = fmt.Sprintf("x%d in %v", c.feature, model.MaskLevels(c.mask))
	}
	return fmt.Sprintf("root{n=%.0f loss=%.1f cands=%d best=%s gain=%.2f thr=%.2f}",
		n.n, n.loss, n.idx.size(), test, c.gain, t.k+t.cfg.logEps())
}

// String renders a compact shape description.
func (t *Tree) String() string {
	inner, leaves, depth := countNodes(t.root)
	return fmt.Sprintf("DMT{inner: %d, leaves: %d, depth: %d, splits: %d, replaces: %d, prunes: %d}",
		inner, leaves, depth, t.splits, t.replaces, t.prunes)
}
