package core

import "repro/internal/stream"

// candEntry is one split-candidate threshold in the per-feature index.
// The statistics live in the owning candIndex's flat arena at slot; the
// entry itself is a plain value so the sorted entry array stays
// pointer-free and contiguous.
type candEntry struct {
	value float64
	slot  int32
}

// candIndex stores a node's split-candidate statistics (Algorithm 1,
// lines 4-17) as a per-feature sorted threshold index over one flat
// arena. Entries are ordered by (feature ascending, threshold
// descending); offsets[j]..offsets[j+1] delimits feature j. Each entry's
// lifetime statistics — left-branch loss, observation count and gradient
// — occupy a fixed arena slot (loss[slot], n[slot],
// grad[slot*w:(slot+1)*w]) that never moves while the entry lives, so
// sorted-order maintenance shifts only 16-byte entry values, never the
// gradients.
//
// The descending threshold order makes per-row accumulation a single
// bucket write: a row with feature value x is accepted by exactly the
// prefix of entries with threshold >= x, so it is charged to the LAST
// accepting entry (its bucket), and a suffix-sum sweep at batch end
// (linalg.SuffixSumRows) recovers every entry's total. This replaces the
// old O(rows·candidates·weights) fold with O(rows·(log k + weights)) per
// feature plus one O(candidates·weights) sweep.
//
// All storage is allocated once at construction (maxSlots bounds the
// stored pool plus one batch of proposals), so steady-state maintenance
// performs no allocation.
type candIndex struct {
	m, w    int
	entries []candEntry // sorted by (feature asc, value desc)
	offsets []int32     // len m+1; feature j occupies [offsets[j], offsets[j+1])
	loss    []float64   // per slot: left-branch loss total
	n       []float64   // per slot: left-branch observation count
	grad    []float64   // per slot: w-wide left-branch gradient total
	free    []int32     // free arena slots (stack)
}

// maxSlots returns the arena capacity for a schema: the stored pool cap
// plus the worst-case concurrent proposals — one sampled value per
// feature in the steady state, or the cold-start burst (3 quartiles per
// numeric feature, every batch-distinct level of a categorical one,
// bounded by the feature's pool share).
func maxSlots(cfg *Config, schema stream.Schema) int {
	m := schema.NumFeatures
	slots := candidateCap(cfg, schema) + m
	cold := 0
	for j := 0; j < m; j++ {
		if schema.IsCategorical(j) {
			cold += featureSlotCap(cfg, schema, j)
		} else {
			cold += 3
		}
	}
	if slots < cold {
		slots = cold
	}
	return slots
}

func newCandIndex(m, w, slots int) *candIndex {
	ix := &candIndex{
		m:       m,
		w:       w,
		entries: make([]candEntry, 0, slots),
		offsets: make([]int32, m+1),
		loss:    make([]float64, slots),
		n:       make([]float64, slots),
		grad:    make([]float64, slots*w),
		free:    make([]int32, slots),
	}
	for i := range ix.free {
		ix.free[i] = int32(slots - 1 - i) // pop order 0,1,2,... for determinism
	}
	return ix
}

// size returns the number of live entries.
func (ix *candIndex) size() int { return len(ix.entries) }

// reset clears every entry and returns all slots to the free stack.
func (ix *candIndex) reset() {
	ix.entries = ix.entries[:0]
	for j := range ix.offsets {
		ix.offsets[j] = 0
	}
	slots := len(ix.loss)
	ix.free = ix.free[:slots]
	for i := range ix.free {
		ix.free[i] = int32(slots - 1 - i)
	}
}

// featRange returns the half-open entry range of feature j.
func (ix *candIndex) featRange(j int) (lo, hi int) {
	return int(ix.offsets[j]), int(ix.offsets[j+1])
}

// gradOf returns the arena gradient of a slot.
func (ix *candIndex) gradOf(slot int32) []float64 {
	base := int(slot) * ix.w
	return ix.grad[base : base+ix.w : base+ix.w]
}

// featureOf returns the feature owning entry position pos.
func (ix *candIndex) featureOf(pos int) int {
	// Positions are dense and offsets monotone; binary search the feature.
	lo, hi := 0, ix.m
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ix.offsets[mid+1]) <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerPos returns the first position in [lo, hi) whose value is < x
// (entries are descending), i.e. one past the accepting prefix for a row
// with feature value x. Small ranges scan linearly — with the default
// pool of three thresholds per feature that beats binary search.
func (ix *candIndex) lowerPos(lo, hi int, x float64) int {
	if hi-lo <= 8 {
		for pos := lo; pos < hi; pos++ {
			if ix.entries[pos].value < x {
				return pos
			}
		}
		return hi
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.entries[mid].value >= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// find returns the position of (feature, value), if stored.
func (ix *candIndex) find(feature int, value float64) (int, bool) {
	lo, hi := ix.featRange(feature)
	// First entry with value < target is one past any exact match.
	p := ix.lowerPos(lo, hi, value)
	if p > lo && ix.entries[p-1].value == value {
		return p - 1, true
	}
	return -1, false
}

// insert adds (feature, value) with zeroed statistics, keeping the sorted
// order, and returns the assigned arena slot. ok is false when the value
// is already stored or the arena is full.
func (ix *candIndex) insert(feature int, value float64) (int32, bool) {
	if len(ix.free) == 0 {
		return 0, false
	}
	lo, hi := ix.featRange(feature)
	p := ix.lowerPos(lo, hi, value)
	if p > lo && ix.entries[p-1].value == value {
		return 0, false
	}
	slot := ix.free[len(ix.free)-1]
	ix.free = ix.free[:len(ix.free)-1]
	ix.loss[slot] = 0
	ix.n[slot] = 0
	g := ix.gradOf(slot)
	for i := range g {
		g[i] = 0
	}
	ix.entries = append(ix.entries, candEntry{})
	copy(ix.entries[p+1:], ix.entries[p:])
	ix.entries[p] = candEntry{value: value, slot: slot}
	for j := feature + 1; j <= ix.m; j++ {
		ix.offsets[j]++
	}
	return slot, true
}

// removeAt deletes the entry at position pos of the given feature and
// frees its slot.
func (ix *candIndex) removeAt(feature, pos int) {
	ix.free = append(ix.free, ix.entries[pos].slot)
	copy(ix.entries[pos:], ix.entries[pos+1:])
	ix.entries = ix.entries[:len(ix.entries)-1]
	for j := feature + 1; j <= ix.m; j++ {
		ix.offsets[j]--
	}
}

// remove deletes (feature, value) if stored.
func (ix *candIndex) remove(feature int, value float64) bool {
	pos, ok := ix.find(feature, value)
	if !ok {
		return false
	}
	ix.removeAt(feature, pos)
	return true
}
