package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/glm"
	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/rng"
	"repro/internal/stream"
)

// The gob document types of the DMT checkpoint payload. Version 1 is the
// legacy pre-envelope format: it carried no RNG state, so a loaded tree
// was re-seeded deterministically from Config.Seed and the step counter
// — reproducible, but its future random draws differed from an
// uninterrupted run. Version 2 (the payload inside the persist envelope)
// adds the counted RNG state, making save → load → continue byte-
// identical to never having stopped.
type treeDoc struct {
	Version  int
	Config   Config
	Schema   stream.Schema
	Step     int
	Splits   int
	Replaces int
	Prunes   int
	Changes  []ChangeEvent
	Root     *nodeDoc
	RNG      rng.State // since version 2
}

type nodeDoc struct {
	Weights    []float64
	Loss       float64
	Grad       []float64
	N          float64
	Candidates []candDoc
	Feature    int
	Threshold  float64
	// Kind and Mask discriminate the split test (threshold, equality or
	// level subset). Pre-categorical documents carry neither; gob decodes
	// them as zero values, i.e. the numeric threshold kind — old
	// checkpoints load unchanged.
	Kind  uint8
	Mask  uint64
	Depth int
	Left  *nodeDoc
	Right *nodeDoc
}

type candDoc struct {
	Feature int
	Value   float64
	Loss    float64
	Grad    []float64
	N       float64
}

const (
	treeDocVersionLegacy = 1
	treeDocVersion       = 2
)

// doc assembles the serialisable document of the current tree state.
func (t *Tree) doc() treeDoc {
	return treeDoc{
		Version:  treeDocVersion,
		Config:   t.cfg,
		Schema:   t.schema,
		Step:     t.step,
		Splits:   t.splits,
		Replaces: t.replaces,
		Prunes:   t.prunes,
		Changes:  t.Changes(),
		Root:     encodeNode(t.root),
		RNG:      t.rngSrc.State(),
	}
}

// SaveState implements model.Checkpointer: the full tree state
// (structure, simple-model weights, loss/gradient accumulators,
// candidate statistics, change log, RNG position) as the checkpoint
// payload. Use repro.Save / persist.Save for the enveloped form.
func (t *Tree) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(t.doc()); err != nil {
		return fmt.Errorf("core: save DMT: %w", err)
	}
	return nil
}

// Save writes the tree as a registry-wide checkpoint envelope.
//
// Deprecated: Save is a shim over the unified persistence API; new code
// should use repro.Save, which works for every registered model.
func (t *Tree) Save(w io.Writer) error {
	return persist.Save(w, t)
}

// saveLegacyV1 writes the pre-envelope version-1 bare gob document. It
// exists so tests (and migration tooling) can exercise the legacy read
// path without keeping old binaries around.
func (t *Tree) saveLegacyV1(w io.Writer) error {
	doc := t.doc()
	doc.Version = treeDocVersionLegacy
	doc.RNG = rng.State{}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("core: save legacy DMT: %w", err)
	}
	return nil
}

// Load restores a Dynamic Model Tree from either checkpoint format: a
// persist envelope written by Save / repro.Save, or a legacy version-1
// bare gob document from before the envelope existed.
func Load(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	if persist.SniffEnvelope(br) {
		env, err := persist.ReadEnvelope(br)
		if err != nil {
			return nil, fmt.Errorf("core: load DMT: %w", err)
		}
		c, err := persist.LoadEnvelope(env)
		if err != nil {
			return nil, fmt.Errorf("core: load DMT: %w", err)
		}
		t, ok := c.(*Tree)
		if !ok {
			return nil, fmt.Errorf("core: load DMT: checkpoint holds a %s, not a DMT", c.Name())
		}
		return t, nil
	}
	return loadPayload(br, nil)
}

// loadPayload decodes a tree document (any supported version) and
// rebuilds the tree. wantSchema, when non-nil, must match the document's
// schema — the envelope loader passes the header schema through so a
// tampered envelope cannot smuggle a mismatched payload.
func loadPayload(r io.Reader, wantSchema *stream.Schema) (*Tree, error) {
	var doc treeDoc
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: load DMT: %w", err)
	}
	if doc.Version != treeDocVersionLegacy && doc.Version != treeDocVersion {
		return nil, fmt.Errorf("core: load DMT: unsupported document version %d (this build reads %d and the legacy %d)",
			doc.Version, treeDocVersion, treeDocVersionLegacy)
	}
	if err := doc.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("core: load DMT: %w", err)
	}
	if wantSchema != nil && (doc.Schema.NumFeatures != wantSchema.NumFeatures || doc.Schema.NumClasses != wantSchema.NumClasses) {
		return nil, fmt.Errorf("core: load DMT: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
			doc.Schema.NumFeatures, doc.Schema.NumClasses, wantSchema.NumFeatures, wantSchema.NumClasses)
	}
	if wantSchema != nil && !doc.Schema.SameKinds(*wantSchema) {
		return nil, fmt.Errorf("core: load DMT: payload schema feature kinds do not match envelope")
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("core: load DMT: document has no root")
	}
	t := &Tree{
		cfg:      doc.Config.withDefaults(),
		schema:   doc.Schema,
		step:     doc.Step,
		splits:   doc.Splits,
		replaces: doc.Replaces,
		prunes:   doc.Prunes,
		changes:  doc.Changes,
	}
	if doc.Version >= treeDocVersion {
		t.rng, t.rngSrc = rng.Restore(doc.RNG)
	} else {
		// Legacy documents carry no RNG state: re-seed deterministically
		// from the seed and step counter, the historical v1 behaviour.
		t.rng, t.rngSrc = rng.New(doc.Config.Seed*1_000_003 + int64(doc.Step))
	}
	root, err := t.decodeNode(doc.Root)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.scratch = newScratch(t.root.mod.NumWeights(), maxSlots(&t.cfg, t.schema))
	t.k = float64(t.root.mod.FreeParams())
	return t, nil
}

func encodeNode(n *node) *nodeDoc {
	if n == nil {
		return nil
	}
	doc := &nodeDoc{
		Weights:   n.mod.Weights(),
		Loss:      n.loss,
		Grad:      append([]float64(nil), n.grad...),
		N:         n.n,
		Feature:   n.feature,
		Threshold: n.threshold,
		Kind:      uint8(n.kind),
		Mask:      n.mask,
		Depth:     n.depth,
		Left:      encodeNode(n.left),
		Right:     encodeNode(n.right),
	}
	// Candidates are emitted in index order (feature ascending, threshold
	// descending); the document format is unchanged from version 1, so
	// pre-index checkpoints load into the index and vice versa.
	ix := n.idx
	for j := 0; j < ix.m; j++ {
		lo, hi := ix.featRange(j)
		for pos := lo; pos < hi; pos++ {
			e := ix.entries[pos]
			doc.Candidates = append(doc.Candidates, candDoc{
				Feature: j, Value: e.value,
				Loss: ix.loss[e.slot], Grad: append([]float64(nil), ix.gradOf(e.slot)...), N: ix.n[e.slot],
			})
		}
	}
	return doc
}

func (t *Tree) decodeNode(doc *nodeDoc) (*node, error) {
	mod := glm.New(t.schema.NumFeatures, t.schema.NumClasses, nil)
	if len(doc.Weights) != mod.NumWeights() {
		return nil, fmt.Errorf("core: load DMT: node weight length %d, schema wants %d",
			len(doc.Weights), mod.NumWeights())
	}
	mod.SetWeights(doc.Weights)
	if len(doc.Grad) != mod.NumWeights() {
		return nil, fmt.Errorf("core: load DMT: node gradient length %d, schema wants %d",
			len(doc.Grad), mod.NumWeights())
	}
	if !model.SplitKind(doc.Kind).Valid() {
		return nil, fmt.Errorf("core: load DMT: node has unknown split kind %d", doc.Kind)
	}
	m := t.schema.NumFeatures
	n := &node{
		mod:       mod,
		loss:      doc.Loss,
		grad:      append([]float64(nil), doc.Grad...),
		n:         doc.N,
		feature:   doc.Feature,
		threshold: doc.Threshold,
		kind:      model.SplitKind(doc.Kind),
		mask:      doc.Mask,
		depth:     doc.Depth,
		idx:       newCandIndex(m, mod.NumWeights(), maxSlots(&t.cfg, t.schema)),
	}
	for _, c := range doc.Candidates {
		if len(c.Grad) != mod.NumWeights() {
			return nil, fmt.Errorf("core: load DMT: candidate gradient length %d", len(c.Grad))
		}
		if c.Feature < 0 || c.Feature >= m {
			return nil, fmt.Errorf("core: load DMT: candidate feature %d out of range [0,%d)", c.Feature, m)
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return nil, fmt.Errorf("core: load DMT: non-finite candidate threshold")
		}
		if card := t.schema.Cardinality(c.Feature); card > 0 {
			if c.Value != math.Trunc(c.Value) || c.Value < 0 || c.Value >= float64(card) {
				return nil, fmt.Errorf("core: load DMT: candidate level code %g out of range for feature %d (cardinality %d)",
					c.Value, c.Feature, card)
			}
		}
		slot, ok := n.idx.insert(c.Feature, c.Value)
		if !ok {
			if _, dup := n.idx.find(c.Feature, c.Value); dup {
				continue // duplicate candidates collapse, as they always did
			}
			return nil, fmt.Errorf("core: load DMT: candidate pool exceeds arena (%d slots)", maxSlots(&t.cfg, t.schema))
		}
		n.idx.loss[slot] = c.Loss
		n.idx.n[slot] = c.N
		copy(n.idx.gradOf(slot), c.Grad)
	}
	if (doc.Left == nil) != (doc.Right == nil) {
		return nil, fmt.Errorf("core: load DMT: non-binary node in document")
	}
	if doc.Left != nil {
		left, err := t.decodeNode(doc.Left)
		if err != nil {
			return nil, err
		}
		right, err := t.decodeNode(doc.Right)
		if err != nil {
			return nil, err
		}
		n.left, n.right = left, right
	}
	return n, nil
}
