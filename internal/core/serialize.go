package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/glm"
	"repro/internal/stream"
)

// The gob document types. All learner state round-trips except the
// random-number generator, which cannot be exported from math/rand: a
// loaded tree is re-seeded deterministically from Config.Seed and the
// step counter, so a save/load cycle is reproducible, though its future
// random draws (candidate proposals, fresh-model initialisation) differ
// from an uninterrupted run.
type treeDoc struct {
	Version  int
	Config   Config
	Schema   stream.Schema
	Step     int
	Splits   int
	Replaces int
	Prunes   int
	Changes  []ChangeEvent
	Root     *nodeDoc
}

type nodeDoc struct {
	Weights    []float64
	Loss       float64
	Grad       []float64
	N          float64
	Candidates []candDoc
	Feature    int
	Threshold  float64
	Depth      int
	Left       *nodeDoc
	Right      *nodeDoc
}

type candDoc struct {
	Feature int
	Value   float64
	Loss    float64
	Grad    []float64
	N       float64
}

const treeDocVersion = 1

// Save serialises the full tree state (structure, simple-model weights,
// loss/gradient accumulators, candidate statistics, change log) with
// encoding/gob, so a stream learner can be checkpointed and resumed.
func (t *Tree) Save(w io.Writer) error {
	doc := treeDoc{
		Version:  treeDocVersion,
		Config:   t.cfg,
		Schema:   t.schema,
		Step:     t.step,
		Splits:   t.splits,
		Replaces: t.replaces,
		Prunes:   t.prunes,
		Changes:  t.Changes(),
		Root:     encodeNode(t.root),
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("core: save DMT: %w", err)
	}
	return nil
}

func encodeNode(n *node) *nodeDoc {
	if n == nil {
		return nil
	}
	doc := &nodeDoc{
		Weights:   n.mod.Weights(),
		Loss:      n.loss,
		Grad:      append([]float64(nil), n.grad...),
		N:         n.n,
		Feature:   n.feature,
		Threshold: n.threshold,
		Depth:     n.depth,
		Left:      encodeNode(n.left),
		Right:     encodeNode(n.right),
	}
	// Candidates are emitted in index order (feature ascending, threshold
	// descending); the document format is unchanged from version 1, so
	// pre-index checkpoints load into the index and vice versa.
	ix := n.idx
	for j := 0; j < ix.m; j++ {
		lo, hi := ix.featRange(j)
		for pos := lo; pos < hi; pos++ {
			e := ix.entries[pos]
			doc.Candidates = append(doc.Candidates, candDoc{
				Feature: j, Value: e.value,
				Loss: ix.loss[e.slot], Grad: append([]float64(nil), ix.gradOf(e.slot)...), N: ix.n[e.slot],
			})
		}
	}
	return doc
}

// Load restores a tree saved with Save.
func Load(r io.Reader) (*Tree, error) {
	var doc treeDoc
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: load DMT: %w", err)
	}
	if doc.Version != treeDocVersion {
		return nil, fmt.Errorf("core: load DMT: unsupported version %d", doc.Version)
	}
	if err := doc.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("core: load DMT: %w", err)
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("core: load DMT: document has no root")
	}
	t := &Tree{
		cfg:      doc.Config.withDefaults(),
		schema:   doc.Schema,
		step:     doc.Step,
		splits:   doc.Splits,
		replaces: doc.Replaces,
		prunes:   doc.Prunes,
		changes:  doc.Changes,
		rng:      rand.New(rand.NewSource(doc.Config.Seed*1_000_003 + int64(doc.Step))),
	}
	root, err := t.decodeNode(doc.Root)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.scratch = newScratch(t.root.mod.NumWeights(), maxSlots(&t.cfg, t.schema.NumFeatures))
	t.k = float64(t.root.mod.FreeParams())
	return t, nil
}

func (t *Tree) decodeNode(doc *nodeDoc) (*node, error) {
	mod := glm.New(t.schema.NumFeatures, t.schema.NumClasses, nil)
	if len(doc.Weights) != mod.NumWeights() {
		return nil, fmt.Errorf("core: load DMT: node weight length %d, schema wants %d",
			len(doc.Weights), mod.NumWeights())
	}
	mod.SetWeights(doc.Weights)
	if len(doc.Grad) != mod.NumWeights() {
		return nil, fmt.Errorf("core: load DMT: node gradient length %d, schema wants %d",
			len(doc.Grad), mod.NumWeights())
	}
	m := t.schema.NumFeatures
	n := &node{
		mod:       mod,
		loss:      doc.Loss,
		grad:      append([]float64(nil), doc.Grad...),
		n:         doc.N,
		feature:   doc.Feature,
		threshold: doc.Threshold,
		depth:     doc.Depth,
		idx:       newCandIndex(m, mod.NumWeights(), maxSlots(&t.cfg, m)),
	}
	for _, c := range doc.Candidates {
		if len(c.Grad) != mod.NumWeights() {
			return nil, fmt.Errorf("core: load DMT: candidate gradient length %d", len(c.Grad))
		}
		if c.Feature < 0 || c.Feature >= m {
			return nil, fmt.Errorf("core: load DMT: candidate feature %d out of range [0,%d)", c.Feature, m)
		}
		if math.IsNaN(c.Value) || math.IsInf(c.Value, 0) {
			return nil, fmt.Errorf("core: load DMT: non-finite candidate threshold")
		}
		slot, ok := n.idx.insert(c.Feature, c.Value)
		if !ok {
			if _, dup := n.idx.find(c.Feature, c.Value); dup {
				continue // duplicate candidates collapse, as they always did
			}
			return nil, fmt.Errorf("core: load DMT: candidate pool exceeds arena (%d slots)", maxSlots(&t.cfg, m))
		}
		n.idx.loss[slot] = c.Loss
		n.idx.n[slot] = c.N
		copy(n.idx.gradOf(slot), c.Grad)
	}
	if (doc.Left == nil) != (doc.Right == nil) {
		return nil, fmt.Errorf("core: load DMT: non-binary node in document")
	}
	if doc.Left != nil {
		left, err := t.decodeNode(doc.Left)
		if err != nil {
			return nil, err
		}
		right, err := t.decodeNode(doc.Right)
		if err != nil {
			return nil, err
		}
		n.left, n.right = left, right
	}
	return n, nil
}
