package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// benchBatches builds steady-state linear batches over m features (the
// tree does not split on a linear concept, so the candidate pool settles).
func benchBatches(m, count, size int, seed int64) []stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, m)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	out := make([]stream.Batch, count)
	for k := range out {
		X := make([][]float64, size)
		Y := make([]int, size)
		for i := 0; i < size; i++ {
			x := make([]float64, m)
			s := -0.25 * float64(m)
			for j := range x {
				x[j] = rng.Float64()
				s += w[j] * x[j]
			}
			X[i] = x
			if s > 0 {
				Y[i] = 1
			}
		}
		out[k] = stream.Batch{X: X, Y: Y}
	}
	return out
}

// BenchmarkCandidateScanOp measures one node-level statistics update
// (candidate accumulation + proposal admission) on a warmed node with a
// full candidate pool — the inner loop the candidate index optimises.
func BenchmarkCandidateScanOp(b *testing.B) {
	for _, m := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			batches := benchBatches(m, 16, 100, 11)
			tree := New(Config{Seed: 1}, stream.Schema{NumFeatures: m, NumClasses: 2, Name: "bench"})
			n := tree.root
			for _, bt := range batches {
				tree.updateStats(n, bt) // fill the pool
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.updateStats(n, batches[i&15])
			}
		})
	}
}
