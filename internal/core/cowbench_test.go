package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/stream"
)

// benchDepths is the depth sweep of the publish-cost benchmarks: a
// balanced tree of depth d has 2^(d+1)-1 nodes, so O(tree) publish cost
// doubles per step while O(changed path) publish cost grows by one node.
var benchDepths = []int{4, 6, 8, 10, 12}

// benchSchema keeps the per-node simple models small so the deepest
// sweep point (8191 nodes at depth 12) stays cheap to build.
var benchSchema = stream.Schema{NumFeatures: 4, NumClasses: 2, Name: "cowbench"}

// balancedTree builds a DMT whose structure is a perfect binary tree of
// the given depth, every split on feature 0 at 0.5. MaxDepth pins the
// leaves and DisablePruning pins the inner nodes, so the structure — and
// with it StructureVersion — stays fixed under further learning: each
// benchmark iteration is a pure "one local change" workload.
func balancedTree(depth int) *Tree {
	t := New(Config{MaxDepth: depth, DisablePruning: true, Seed: 1}, benchSchema)
	var grow func(n *node)
	grow = func(n *node) {
		if n.depth >= depth {
			return
		}
		n.feature, n.threshold = 0, 0.5
		n.left = t.newNode(n.depth+1, n.mod)
		n.right = t.newNode(n.depth+1, n.mod)
		grow(n.left)
		grow(n.right)
	}
	grow(t.root)
	return t
}

// benchRow routes to the leftmost leaf at every level (x[0] = 0.25).
func benchRow() stream.Batch {
	x := make([]float64, benchSchema.NumFeatures)
	x[0] = 0.25
	return stream.Batch{X: [][]float64{x}, Y: []int{1}}
}

var sinkSnapshot model.Snapshot

// BenchmarkPublishLocalChangeOp measures the serving-publish hot loop:
// one single-row Learn (touching exactly one root-to-leaf path) followed
// by Snapshot. Before copy-on-write this re-clones the whole tree every
// iteration (cost doubles with each depth step); with COW structural
// sharing only the learn-visited path re-freezes, so ns/op stays roughly
// flat across the sweep.
func BenchmarkPublishLocalChangeOp(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			t := balancedTree(d)
			one := benchRow()
			t.Learn(one)
			sinkSnapshot = t.Snapshot() // warm any snapshot cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t.Learn(one)
				sinkSnapshot = t.Snapshot()
			}
		})
	}
}

// BenchmarkSnapshotOnlyOp isolates the Snapshot half of the publish
// loop: repeated captures of an unchanged tree. Pre-COW this still pays
// the full O(tree) clone; post-COW it is a cache hit regardless of
// depth.
func BenchmarkSnapshotOnlyOp(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			t := balancedTree(d)
			t.Learn(benchRow())
			sinkSnapshot = t.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkSnapshot = t.Snapshot()
			}
		})
	}
}

// BenchmarkCheckpointBytesOp measures full-envelope checkpoint cost per
// depth and reports the envelope size as a custom ckpt-bytes metric
// (surfaced through cmd/benchjson's Extra map). The post-change
// delta-checkpoint benchmarks report delta-bytes next to this for the
// full-vs-delta state-transfer comparison.
func BenchmarkCheckpointBytesOp(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			t := balancedTree(d)
			t.Learn(benchRow())
			var buf bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := persist.Save(&buf, t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "ckpt-bytes")
		})
	}
}

// BenchmarkDeltaBytesOp measures the delta side of the state-transfer
// comparison: checkpoint the tree, apply one single-path Learn, diff the
// two envelopes with persist.MakeDelta, and report the delta envelope's
// wire size as delta-bytes. Where ckpt-bytes doubles per depth step,
// delta-bytes tracks only the changed root-to-leaf path, so the gap
// between the two metrics is the bandwidth a ?since= follower saves.
func BenchmarkDeltaBytesOp(b *testing.B) {
	for _, d := range benchDepths {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			t := balancedTree(d)
			one := benchRow()
			t.Learn(one)
			var base bytes.Buffer
			if err := persist.Save(&base, t); err != nil {
				b.Fatal(err)
			}
			t.Learn(one)
			var next bytes.Buffer
			if err := persist.Save(&next, t); err != nil {
				b.Fatal(err)
			}
			var wire bytes.Buffer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta, err := persist.MakeDelta(base.Bytes(), next.Bytes())
				if err != nil {
					b.Fatal(err)
				}
				wire.Reset()
				if err := persist.WriteDelta(&wire, delta); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(wire.Len()), "delta-bytes")
		})
	}
}
