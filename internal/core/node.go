package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/glm"
	"repro/internal/linalg"
	"repro/internal/stream"
)

// node is one DMT node. Leaf and inner nodes are structurally identical —
// both train a simple model and maintain loss/gradient/count accumulators
// and candidate statistics (Figure 2 of the paper) — an inner node
// additionally carries a binary split (x[feature] <= threshold goes left).
type node struct {
	mod glm.Model

	// Accumulators of Algorithm 1 (lines 1-3) over the node's current
	// epoch: summed negative log-likelihood, summed gradient and count.
	loss float64
	grad []float64
	n    float64

	// Candidate statistics (Algorithm 1, lines 4-17), capped and
	// partially replaceable per Section V-D.
	cands   []*candidate
	candSet map[candKey]struct{}

	feature     int
	threshold   float64
	left, right *node
	depth       int
}

func (n *node) isLeaf() bool { return n.left == nil }

// resetEpoch clears the accumulators and the candidate pool. It runs when
// the node splits or its subtree is replaced, so that the node's set I_t
// and its children's sets J_t restart together and the union property
// behind gains (4) and (5) holds (Lemma 2).
func (n *node) resetEpoch() {
	n.loss = 0
	linalg.Zero(n.grad)
	n.n = 0
	n.cands = n.cands[:0]
	n.candSet = map[candKey]struct{}{}
}

// hasCandidate reports whether the (feature, value) pair is stored.
func (n *node) hasCandidate(k candKey) bool {
	_, ok := n.candSet[k]
	return ok
}

// candidateCap returns the pool capacity for m features.
func candidateCap(cfg *Config, m int) int { return cfg.CandidateFactor * m }

// updateStats performs the per-time-step statistics update of Algorithm 1
// on this node: one pass over the batch computes each row's loss and
// gradient once, feeding (a) the node accumulators, (b) every stored
// candidate the row falls into, (c) the proposal candidates drawn from
// this batch, and (d) the mean-gradient SGD step of the simple model.
// Proposals are then admitted into the pool subject to the capacity and
// replacement-rate policy of Section V-D.
func (n *node) updateStats(cfg *Config, b stream.Batch, rng *rand.Rand) {
	rows := b.Len()
	if rows == 0 {
		return
	}
	w := n.mod.NumWeights()
	rowGrad := make([]float64, w)
	batchGrad := make([]float64, w)
	var batchLoss float64
	var used float64

	proposals := n.propose(cfg, b, rng)

	for i := 0; i < rows; i++ {
		x := b.X[i]
		if !linalg.IsFinite(x) {
			continue
		}
		y := b.Y[i]
		li := n.mod.RowLossGrad(x, y, rowGrad)
		batchLoss += li
		linalg.Add(batchGrad, rowGrad)
		used++
		for _, c := range n.cands {
			if c.accepts(x) {
				c.observe(li, rowGrad)
			}
		}
		for _, c := range proposals {
			if c.accepts(x) {
				c.observe(li, rowGrad)
			}
		}
		// Per-instance SGD with a constant learning rate (Section V-A),
		// optionally warm-up boosted (Section VI-E1). The same row
		// gradient feeds the accumulators, the candidate statistics and
		// the step — computed exactly once (Section IV-B).
		n.mod.ApplyGrad(rowGrad, -cfg.effectiveLR(n.n+used))
	}
	if used == 0 {
		return
	}
	if cfg.L1 > 0 {
		// Proximal L1 step (sparsity extension): the per-instance
		// proximal-SGD threshold lr*L1, aggregated over the batch.
		n.mod.Shrink(cfg.L1 * cfg.LearningRate * used)
	}

	// Algorithm 1 lines 1-3: increment loss, gradient and count.
	n.loss += batchLoss
	linalg.Add(n.grad, batchGrad)
	n.n += used

	n.admit(cfg, proposals, batchLoss, batchGrad, used)
}

// propose draws new candidate values from the current batch. On a node's
// first batch it proposes the three quartiles of every feature (filling
// the default pool of size 3m in one step); afterwards it proposes one
// randomly sampled row value per feature. Values are quantised and
// deduplicated against the stored pool.
func (n *node) propose(cfg *Config, b stream.Batch, rng *rand.Rand) []*candidate {
	m := len(b.X[0])
	w := n.mod.NumWeights()
	var out []*candidate
	seen := map[candKey]struct{}{}

	add := func(feature int, value float64) {
		v := cfg.quantize(value)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		k := candKey{feature, v}
		if n.hasCandidate(k) {
			return
		}
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		out = append(out, &candidate{feature: feature, value: v, grad: make([]float64, w)})
	}

	if len(n.cands) == 0 {
		// Cold start: quartiles of each feature within the batch.
		vals := make([]float64, 0, b.Len())
		for j := 0; j < m; j++ {
			vals = vals[:0]
			for i := range b.X {
				if v := b.X[i][j]; !math.IsNaN(v) && !math.IsInf(v, 0) {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			sort.Float64s(vals)
			for _, q := range []float64{0.25, 0.5, 0.75} {
				add(j, vals[int(q*float64(len(vals)-1))])
			}
		}
		return out
	}

	for j := 0; j < m; j++ {
		i := rng.Intn(b.Len())
		add(j, b.X[i][j])
	}
	return out
}

// admit ranks this batch's proposals by their batch-local gain estimate
// and inserts them into the pool: free slots first, then replacement of
// the weakest stored candidates, limited to ReplacementRate of the pool
// per time step (Section V-D). Replaced candidates can always reappear
// later if their importance returns after concept drift.
func (n *node) admit(cfg *Config, proposals []*candidate, batchLoss float64, batchGrad []float64, used float64) {
	if len(proposals) == 0 {
		return
	}
	scored := proposals[:0]
	gains := map[*candidate]float64{}
	for _, p := range proposals {
		g, ok := candidateGain(batchLoss, batchLoss, batchGrad, used, p.loss, p.grad, p.n, cfg.LearningRate, 1)
		if !ok {
			continue
		}
		gains[p] = g
		scored = append(scored, p)
	}
	if len(scored) == 0 {
		return
	}
	sort.Slice(scored, func(i, j int) bool { return gains[scored[i]] > gains[scored[j]] })

	capSize := candidateCap(cfg, n.mod.NumFeatures())
	idx := 0
	for ; idx < len(scored) && len(n.cands) < capSize; idx++ {
		n.insertCandidate(scored[idx])
	}
	if idx >= len(scored) {
		return
	}

	// Replacement pass: the stored pool ranked by its lifetime gain
	// estimate; only the weakest ReplacementRate fraction may be evicted
	// this step.
	maxRepl := int(cfg.ReplacementRate * float64(capSize))
	if maxRepl == 0 {
		return
	}
	storedGain := func(c *candidate) float64 {
		g, ok := candidateGain(n.loss, n.loss, n.grad, n.n, c.loss, c.grad, c.n, cfg.LearningRate, 1)
		if !ok {
			return math.Inf(-1)
		}
		return g
	}
	order := make([]*candidate, len(n.cands))
	copy(order, n.cands)
	sort.Slice(order, func(i, j int) bool { return storedGain(order[i]) < storedGain(order[j]) })

	replaced := 0
	for _, victim := range order {
		if idx >= len(scored) || replaced >= maxRepl {
			break
		}
		p := scored[idx]
		if gains[p] <= storedGain(victim) {
			break // both lists are sorted; no further improvement possible
		}
		n.removeCandidate(victim)
		n.insertCandidate(p)
		idx++
		replaced++
	}
}

func (n *node) insertCandidate(c *candidate) {
	k := candKey{c.feature, c.value}
	if n.hasCandidate(k) {
		return
	}
	if n.candSet == nil {
		n.candSet = map[candKey]struct{}{}
	}
	n.candSet[k] = struct{}{}
	n.cands = append(n.cands, c)
}

func (n *node) removeCandidate(c *candidate) {
	delete(n.candSet, candKey{c.feature, c.value})
	for i, existing := range n.cands {
		if existing == c {
			n.cands[i] = n.cands[len(n.cands)-1]
			n.cands = n.cands[:len(n.cands)-1]
			return
		}
	}
}

// bestCandidate evaluates gain (3) (at a leaf, referenceLoss = the node's
// own accumulated loss) or gain (4) (at an inner node, referenceLoss = the
// subtree's summed leaf loss) over the stored pool and returns the argmax.
// skipCurrent excludes the currently installed split of an inner node.
func (n *node) bestCandidate(cfg *Config, referenceLoss float64, skipCurrent bool) (*candidate, float64, bool) {
	var best *candidate
	bestGain := math.Inf(-1)
	for _, c := range n.cands {
		if skipCurrent && c.feature == n.feature && c.value == n.threshold {
			continue
		}
		g, ok := candidateGain(referenceLoss, n.loss, n.grad, n.n, c.loss, c.grad, c.n,
			cfg.LearningRate, cfg.MinBranchWeight)
		if !ok {
			continue
		}
		if g > bestGain {
			best, bestGain = c, g
		}
	}
	return best, bestGain, best != nil
}

// subtreeLeafStats walks the subtree and returns the summed leaf loss and
// the number of leaves — the Σ_J L(J) and L_sub of gains (4) and (5).
func subtreeLeafStats(n *node) (lossSum float64, leaves int) {
	if n.isLeaf() {
		return n.loss, 1
	}
	ll, lc := subtreeLeafStats(n.left)
	rl, rc := subtreeLeafStats(n.right)
	return ll + rl, lc + rc
}
