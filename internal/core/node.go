package core

import (
	"math"
	"sort"

	"repro/internal/glm"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/stream"
)

// node is one DMT node. Leaf and inner nodes are structurally identical —
// both train a simple model and maintain loss/gradient/count accumulators
// and candidate statistics (Figure 2 of the paper) — an inner node
// additionally carries a binary split: a numeric threshold test
// (x[feature] <= threshold goes left), a categorical equality test
// (x[feature] == threshold, the threshold holding the level code), or a
// level-subset membership test (mask bit x[feature] set), discriminated
// by kind and routed through the shared model.RouteSplit predicate.
type node struct {
	mod glm.Model

	// Accumulators of Algorithm 1 (lines 1-3) over the node's current
	// epoch: summed negative log-likelihood, summed gradient and count.
	loss float64
	grad []float64
	n    float64

	// Candidate statistics (Algorithm 1, lines 4-17) in the per-feature
	// sorted-threshold index, capped and partially replaceable per
	// Section V-D.
	idx *candIndex

	feature     int
	threshold   float64
	kind        model.SplitKind
	mask        uint64
	left, right *node
	depth       int

	// snap caches the immutable SnapNode that froze this subtree at the
	// last publish. update() clears it along every learn-visited path
	// (conservative: any node that received rows may have changed), so
	// Snapshot() re-freezes only cache misses — copy-on-write publishing.
	snap *model.SnapNode
}

func (n *node) isLeaf() bool { return n.left == nil }

// resetEpoch clears the accumulators and the candidate pool. It runs when
// the node splits or its subtree is replaced, so that the node's set I_t
// and its children's sets J_t restart together and the union property
// behind gains (4) and (5) holds (Lemma 2).
func (n *node) resetEpoch() {
	n.loss = 0
	linalg.Zero(n.grad)
	n.n = 0
	n.idx.reset()
}

// maxCatLevels bounds the equality candidates of one categorical feature
// and the width of a subset mask (which is a uint64 of level bits).
const maxCatLevels = 64

// featureSlotCap returns the stored-pool share of one feature:
// CandidateFactor thresholds for a numeric feature, one equality
// candidate per level (capped at maxCatLevels) for a categorical one.
func featureSlotCap(cfg *Config, schema stream.Schema, j int) int {
	if c := schema.Cardinality(j); c > 0 {
		if c > maxCatLevels {
			return maxCatLevels
		}
		return c
	}
	return cfg.CandidateFactor
}

// candidateCap returns the pool capacity for a schema: the sum of the
// per-feature shares. For an all-numeric schema this is the paper's
// CandidateFactor * NumFeatures.
func candidateCap(cfg *Config, schema stream.Schema) int {
	total := 0
	for j := 0; j < schema.NumFeatures; j++ {
		total += featureSlotCap(cfg, schema, j)
	}
	return total
}

// updateStats performs the per-time-step statistics update of Algorithm 1
// on one node: a single pass over the batch computes each row's loss and
// gradient once, feeding (a) the node accumulators, (b) the candidate
// index, and (c) the mean-gradient SGD step of the simple model.
//
// Candidate statistics are maintained through the sorted-threshold index:
// the batch's proposals are provisionally inserted first, then each row
// charges its loss/gradient to exactly ONE bucket per feature (the last
// accepting threshold), and a suffix-sum sweep at batch end materialises
// every candidate's left-branch totals. The old pool folded every row
// into every accepting candidate — O(rows · 3m · w); the index pays
// O(rows · m · (log k + w)) for the passes plus O(3m · w) for the sweep.
// All working memory comes from the tree's scratch arena, so a
// steady-state call allocates nothing.
func (t *Tree) updateStats(n *node, b stream.Batch) {
	rows := b.Len()
	if rows == 0 {
		return
	}
	cfg := &t.cfg
	sc := t.scratch
	m := t.schema.NumFeatures
	w := n.mod.NumWeights()
	ix := n.idx

	t.propose(n, b)

	stride := w + 2
	buckets := sc.buckets[:ix.size()*stride]
	linalg.Zero(buckets)
	sc.reserveRows(rows, m, w)

	batchGrad := sc.batchGrad
	linalg.Zero(batchGrad)
	var batchLoss float64
	var used float64

	// Pass 1 (row-major): compute each usable row's loss and gradient
	// once, cache them (and the row's feature values, transposed to
	// column-major), feed the node accumulators and take the SGD step.
	nu := 0
	for i := 0; i < rows; i++ {
		x := b.X[i]
		// Transpose the row while testing finiteness (v*0 is NaN exactly
		// for NaN/±Inf): one pass instead of a check pass plus a copy
		// pass. A rejected row's partial column writes are harmless — the
		// next accepted row overwrites the same nu column position.
		var nonFinite float64
		for j := 0; j < m; j++ {
			v := x[j]
			nonFinite += v * 0
			sc.cols[j*sc.rowCap+nu] = v
		}
		if nonFinite != 0 {
			continue
		}
		rowGrad := sc.rowGrads[nu*w : nu*w+w : nu*w+w]
		li := n.mod.RowLossGrad(x, b.Y[i], rowGrad)
		batchLoss += li
		linalg.Add(batchGrad, rowGrad)
		sc.rowLoss[nu] = li
		nu++
		used++
		// Per-instance SGD with a constant learning rate (Section V-A),
		// optionally warm-up boosted (Section VI-E1). The same row
		// gradient feeds the accumulators, the candidate statistics and
		// the step — computed exactly once (Section IV-B).
		n.mod.ApplyGrad(rowGrad, -cfg.effectiveLR(n.n+used))
	}
	if used == 0 {
		t.dropAllProposals(n)
		return
	}
	if cfg.L1 > 0 {
		// Proximal L1 step (sparsity extension): the per-instance
		// proximal-SGD threshold lr*L1, aggregated over the batch.
		n.mod.Shrink(cfg.L1 * cfg.LearningRate * used)
	}

	// Algorithm 1 lines 1-3: increment loss, gradient and count.
	n.loss += batchLoss
	linalg.Add(n.grad, batchGrad)
	n.n += used

	// Pass 2 (feature-major): charge every cached row to its one bucket
	// per feature — the last threshold accepting it — in three steps:
	// (a) bucket ids for all rows, (b) a counting sort grouping row
	// indices by bucket, (c) destination-stationary blocked accumulation
	// of each bucket's loss/count/gradient (linalg.AddGatherRows). The
	// suffix-sum sweep then turns the per-bucket batch statistics into
	// per-candidate left-branch totals in the lifetime arena.
	for j := 0; j < m; j++ {
		lo, hi := ix.featRange(j)
		if hi == lo {
			continue
		}
		k := hi - lo
		cat := t.schema.IsCategorical(j)
		ents := ix.entries[lo:hi]
		col := sc.cols[j*sc.rowCap : j*sc.rowCap+nu]
		ids := sc.ids[:nu]
		cnts := sc.cnts[:k+1]
		for b := range cnts {
			cnts[b] = 0
		}
		// (a) Descending thresholds: the entries accepting a row
		// (value >= x) are a prefix, so its bucket id is the prefix
		// length (0 = unbucketed). The common path pads the thresholds
		// to four (-Inf accepts nothing) and uses a short compare chain
		// — cheap, branch-light and without a data-dependent loop.
		//
		// Categorical features instead use exact-match bucketing: the
		// equality acceptance sets are disjoint, so a row charges the
		// single entry whose level code matches (0 = no match), and the
		// per-bucket totals already ARE the candidates' equality-branch
		// totals — the suffix sweep is skipped.
		switch {
		case cat && k <= 8:
			for r, x := range col {
				id := int32(0)
				for p := range ents {
					if ents[p].value == x {
						id = int32(p + 1)
						break
					}
				}
				ids[r] = id
				cnts[id]++
			}
		case cat:
			// Entries are sorted descending, so an exact match sits just
			// before the first smaller value.
			for r, x := range col {
				blo, bhi := 0, k
				for blo < bhi {
					mid := int(uint(blo+bhi) >> 1)
					if ents[mid].value >= x {
						blo = mid + 1
					} else {
						bhi = mid
					}
				}
				id := int32(0)
				if blo > 0 && ents[blo-1].value == x {
					id = int32(blo)
				}
				ids[r] = id
				cnts[id]++
			}
		case k <= 4:
			// The id is the COUNT of accepting thresholds (the accepting
			// set is a prefix), written as a sum of 0/1 indicators so the
			// compiler emits SETcc instead of branches — the middle
			// thresholds sit near the data median and would mispredict on
			// every other row.
			negInf := math.Inf(-1)
			th := [4]float64{negInf, negInf, negInf, negInf}
			for p := range ents {
				th[p] = ents[p].value
			}
			for r, x := range col {
				c0, c1, c2, c3 := 0, 0, 0, 0
				if th[0] >= x {
					c0 = 1
				}
				if th[1] >= x {
					c1 = 1
				}
				if th[2] >= x {
					c2 = 1
				}
				if th[3] >= x {
					c3 = 1
				}
				cnt := int32((c0 + c1) + (c2 + c3))
				ids[r] = cnt
				cnts[cnt]++
			}
		case k <= 8:
			negInf := math.Inf(-1)
			th := [8]float64{negInf, negInf, negInf, negInf, negInf, negInf, negInf, negInf}
			for p := range ents {
				th[p] = ents[p].value
			}
			for r, x := range col {
				c0, c1, c2, c3 := 0, 0, 0, 0
				c4, c5, c6, c7 := 0, 0, 0, 0
				if th[0] >= x {
					c0 = 1
				}
				if th[1] >= x {
					c1 = 1
				}
				if th[2] >= x {
					c2 = 1
				}
				if th[3] >= x {
					c3 = 1
				}
				if th[4] >= x {
					c4 = 1
				}
				if th[5] >= x {
					c5 = 1
				}
				if th[6] >= x {
					c6 = 1
				}
				if th[7] >= x {
					c7 = 1
				}
				cnt := int32(((c0 + c1) + (c2 + c3)) + ((c4 + c5) + (c6 + c7)))
				ids[r] = cnt
				cnts[cnt]++
			}
		default:
			for r, x := range col {
				blo, bhi := 0, k
				for blo < bhi {
					mid := int(uint(blo+bhi) >> 1)
					if ents[mid].value >= x {
						blo = mid + 1
					} else {
						bhi = mid
					}
				}
				ids[r] = int32(blo)
				cnts[blo]++
			}
		}
		// (b) Counting sort: group the bucketed row indices.
		starts := sc.starts[:k+1]
		cursor := sc.cursor[:k]
		total := int32(0)
		for b := 0; b < k; b++ {
			starts[b] = total
			cursor[b] = total
			total += cnts[b+1]
		}
		starts[k] = total
		if total == 0 {
			continue
		}
		ord := sc.ord[:nu]
		for r, id := range ids {
			if id == 0 {
				continue
			}
			p := cursor[id-1]
			ord[p] = int32(r)
			cursor[id-1] = p + 1
		}
		// (c) Per-bucket blocked accumulation, then the suffix sweep.
		for b := 0; b < k; b++ {
			members := ord[starts[b]:starts[b+1]]
			if len(members) == 0 {
				continue
			}
			base := (lo + b) * stride
			row := buckets[base : base+stride : base+stride]
			var lsum float64
			for _, r := range members {
				lsum += sc.rowLoss[r]
			}
			row[0] += lsum
			row[1] += float64(len(members))
			linalg.AddGatherRows(row[2:], sc.rowGrads, members, w)
		}
		if !cat {
			linalg.SuffixSumRows(buckets[lo*stride:hi*stride], k, stride)
		}
		for pos := lo; pos < hi; pos++ {
			row := buckets[pos*stride : pos*stride+stride : pos*stride+stride]
			slot := ents[pos-lo].slot
			ix.loss[slot] += row[0]
			ix.n[slot] += row[1]
			linalg.Add(ix.gradOf(slot), row[2:])
		}
	}

	t.admit(n, batchLoss, batchGrad, used)
}

// quartileFracs are the cold-start proposal quantiles (hoisted so the
// propose loop does not rebuild the literal per feature per batch).
var quartileFracs = [3]float64{0.25, 0.5, 0.75}

// propose draws new candidate values from the current batch and inserts
// them provisionally into the node's candidate index, recording them in
// the scratch proposal list for admit to resolve. On a node's first batch
// it proposes the three quartiles of every numeric feature and every
// batch-distinct level of every categorical one (bounded by the feature's
// pool share); afterwards it proposes one randomly sampled row value per
// feature. Numeric values are quantised, and the index insert
// deduplicates against stored candidates and earlier proposals.
func (t *Tree) propose(n *node, b stream.Batch) {
	sc := t.scratch
	sc.props = sc.props[:0]
	m := t.schema.NumFeatures

	if n.idx.size() == 0 {
		// Cold start: quartiles of each numeric feature within the batch,
		// selected on one reusable sorted scratch buffer; distinct levels
		// of each categorical feature (the insert deduplicates repeats).
		vals := sc.quartVals
		for j := 0; j < m; j++ {
			if t.schema.IsCategorical(j) {
				capJ := featureSlotCap(&t.cfg, t.schema, j)
				added := 0
				for i := range b.X {
					if added >= capJ {
						break
					}
					if t.addProposal(n, j, b.X[i][j]) {
						added++
					}
				}
				continue
			}
			vals = vals[:0]
			for i := range b.X {
				if v := b.X[i][j]; !math.IsNaN(v) && !math.IsInf(v, 0) {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			sort.Float64s(vals)
			for _, q := range quartileFracs {
				t.addProposal(n, j, vals[int(q*float64(len(vals)-1))])
			}
		}
		sc.quartVals = vals[:0]
		return
	}

	for j := 0; j < m; j++ {
		i := t.rng.Intn(b.Len())
		t.addProposal(n, j, b.X[i][j])
	}
}

// addProposal inserts a value into the candidate index with zeroed
// statistics and reports whether it went in. Numeric values are
// quantised; categorical values must be valid level codes and are stored
// exactly (an equality test needs the code, not a rounding of it).
// Duplicates of stored candidates or earlier proposals are rejected by
// the index itself.
func (t *Tree) addProposal(n *node, feature int, value float64) bool {
	if c := t.schema.Cardinality(feature); c > 0 {
		// The Trunc test also rejects NaN; the range tests reject ±Inf.
		if value != math.Trunc(value) || value < 0 || value >= float64(c) {
			return false
		}
	} else {
		value = t.cfg.quantize(value)
		if math.IsNaN(value) || math.IsInf(value, 0) {
			return false
		}
	}
	slot, ok := n.idx.insert(feature, value)
	if !ok {
		return false
	}
	sc := t.scratch
	sc.propSlot[slot] = true
	sc.props = append(sc.props, proposal{feature: int32(feature), slot: slot, value: value})
	return true
}

// dropAllProposals removes every provisional proposal again — the batch
// contributed no usable rows, so there is nothing to admit.
func (t *Tree) dropAllProposals(n *node) {
	sc := t.scratch
	for i := range sc.props {
		p := &sc.props[i]
		sc.propSlot[p.slot] = false
		n.idx.remove(int(p.feature), p.value)
	}
	sc.props = sc.props[:0]
}

// admit ranks this batch's proposals by their batch-local gain estimate
// and resolves them against the pool: free slots first, then replacement
// of the weakest stored candidates, limited to ReplacementRate of the
// pool per time step (Section V-D). Replaced candidates can always
// reappear later if their importance returns after concept drift. A
// proposal's lifetime statistics start at this batch, so its arena stats
// are exactly its batch-local statistics.
func (t *Tree) admit(n *node, batchLoss float64, batchGrad []float64, used float64) {
	sc := t.scratch
	if len(sc.props) == 0 {
		return
	}
	cfg := &t.cfg
	ix := n.idx

	scored := sc.scored[:0]
	for _, p := range sc.props {
		g, ok := candidateGain(batchLoss, batchLoss, batchGrad, used,
			ix.loss[p.slot], ix.gradOf(p.slot), ix.n[p.slot], cfg.LearningRate, 1)
		if !ok {
			continue // stays flagged as proposal; swept below
		}
		p.gain = g
		scored = append(scored, p)
	}
	sc.sortProposals(scored)

	capSize := candidateCap(cfg, t.schema)
	stored := ix.size() - len(sc.props) // pool size before this batch
	i := 0
	for ; i < len(scored) && stored+i < capSize; i++ {
		sc.propSlot[scored[i].slot] = false // admitted into a free slot
	}

	if i < len(scored) && stored > 0 {
		// Replacement pass: the stored pool ranked by its lifetime gain
		// estimate; only the weakest ReplacementRate fraction may be
		// evicted this step.
		maxRepl := int(cfg.ReplacementRate * float64(capSize))
		if maxRepl > 0 {
			gains := sc.victimGain[:0]
			poss := sc.victimPos[:0]
			minGain := math.Inf(1)
			for pos, e := range ix.entries {
				if sc.propSlot[e.slot] {
					continue // this batch's proposals are not victims
				}
				g, ok := candidateGain(n.loss, n.loss, n.grad, n.n,
					ix.loss[e.slot], ix.gradOf(e.slot), ix.n[e.slot], cfg.LearningRate, 1)
				if !ok {
					g = math.Inf(-1)
				}
				if g < minGain {
					minGain = g
				}
				gains = append(gains, g)
				poss = append(poss, int32(pos))
			}
			sc.victimGain, sc.victimPos = gains, poss
			// The strongest remaining proposal must beat the weakest stored
			// candidate for any eviction to happen; in the common case it
			// does not, and the victim ranking is never materialised.
			if scored[i].gain > minGain {
				sc.sortVictims()
				replaced := 0
				for v := 0; v < len(poss) && i < len(scored) && replaced < maxRepl; v++ {
					if scored[i].gain <= gains[v] {
						break // both rankings sorted; no further improvement possible
					}
					sc.drop[ix.entries[poss[v]].slot] = true
					sc.propSlot[scored[i].slot] = false // admitted by replacement
					i++
					replaced++
				}
			}
			sc.victimGain, sc.victimPos = gains[:0], poss[:0]
		}
	}

	// Everything still flagged as a proposal was not admitted.
	for _, p := range sc.props {
		if sc.propSlot[p.slot] {
			sc.drop[p.slot] = true
			sc.propSlot[p.slot] = false
		}
	}
	t.sweepDropped(n)
	sc.props = sc.props[:0]
	sc.scored = scored[:0]
}

// sweepDropped removes every index entry whose arena slot is flagged in
// the scratch drop set, clearing the flags as it goes.
func (t *Tree) sweepDropped(n *node) {
	sc := t.scratch
	ix := n.idx
	for j := ix.m - 1; j >= 0; j-- {
		lo, hi := ix.featRange(j)
		for pos := hi - 1; pos >= lo; pos-- {
			slot := ix.entries[pos].slot
			if sc.drop[slot] {
				sc.drop[slot] = false
				ix.removeAt(j, pos)
			}
		}
	}
}

// splitChoice is the outcome of a candidate evaluation: the argmax test
// over the stored pool — a numeric threshold, a categorical equality
// (threshold holds the level code), or a level-subset membership test
// assembled from the equality candidates' disjoint statistics.
type splitChoice struct {
	feature   int
	kind      model.SplitKind
	threshold float64
	mask      uint64
	gain      float64
}

// matches reports whether the choice describes the node's installed test.
func (c splitChoice) matches(n *node) bool {
	if c.feature != n.feature || c.kind != n.kind {
		return false
	}
	if c.kind == model.SplitSubset {
		return c.mask == n.mask
	}
	return c.threshold == n.threshold
}

// bestCandidate evaluates gain (3) (at a leaf, referenceLoss = the node's
// own accumulated loss) or gain (4) (at an inner node, referenceLoss = the
// subtree's summed leaf loss) over the stored pool and returns the argmax
// split. skipCurrent excludes the currently installed split of an inner
// node.
//
// Numeric features score each stored threshold. Categorical features
// score each stored level as an equality test, and — when the cardinality
// fits a subset mask and at least three levels carry data — additionally
// scan level subsets: because the equality branches are disjoint, their
// loss/count/gradient statistics are additive, so a subset's left-branch
// totals are exact sums, not approximations. Following the classic CART
// ordering argument, only prefixes of the levels ranked by individual
// gain are scanned (sizes 2..len-1; size 1 is the equality candidate, the
// full set is no split at all), keeping the scan linear in levels.
func (t *Tree) bestCandidate(n *node, referenceLoss float64, skipCurrent bool) (splitChoice, bool) {
	cfg := &t.cfg
	ix := n.idx
	sc := t.scratch
	best := splitChoice{gain: math.Inf(-1)}
	found := false
	for j := 0; j < ix.m; j++ {
		lo, hi := ix.featRange(j)
		if hi == lo {
			continue
		}
		if !t.schema.IsCategorical(j) {
			for pos := lo; pos < hi; pos++ {
				e := ix.entries[pos]
				g, ok := candidateGain(referenceLoss, n.loss, n.grad, n.n,
					ix.loss[e.slot], ix.gradOf(e.slot), ix.n[e.slot],
					cfg.LearningRate, cfg.MinBranchWeight)
				if !ok {
					continue
				}
				c := splitChoice{feature: j, kind: model.SplitThreshold, threshold: e.value, gain: g}
				if c.gain > best.gain && !(skipCurrent && c.matches(n)) {
					best, found = c, true
				}
			}
			continue
		}
		// Equality candidates. Gains are computed once with the loose
		// minN=1 gate so they double as the subset ordering score; the
		// MinBranchWeight gate of the equality candidates applies on top.
		ord := sc.catOrd[:0]
		gains := sc.catGain[:0]
		for pos := lo; pos < hi; pos++ {
			e := ix.entries[pos]
			g, ok := candidateGain(referenceLoss, n.loss, n.grad, n.n,
				ix.loss[e.slot], ix.gradOf(e.slot), ix.n[e.slot],
				cfg.LearningRate, 1)
			if !ok {
				continue
			}
			if ix.n[e.slot] >= cfg.MinBranchWeight && n.n-ix.n[e.slot] >= cfg.MinBranchWeight {
				c := splitChoice{feature: j, kind: model.SplitEquality, threshold: e.value, gain: g}
				if c.gain > best.gain && !(skipCurrent && c.matches(n)) {
					best, found = c, true
				}
			}
			ord = append(ord, int32(pos))
			gains = append(gains, g)
		}
		if t.schema.Cardinality(j) <= maxCatLevels && len(ord) >= 3 {
			sc.catOrd, sc.catGain = ord, gains
			sc.sortCat()
			ord, gains = sc.catOrd, sc.catGain
			cumGrad := sc.catGrad
			linalg.Zero(cumGrad)
			var cumLoss, cumN float64
			var mask uint64
			for s := 0; s < len(ord)-1; s++ {
				e := ix.entries[ord[s]]
				cumLoss += ix.loss[e.slot]
				cumN += ix.n[e.slot]
				linalg.Add(cumGrad, ix.gradOf(e.slot))
				mask |= 1 << uint64(e.value)
				if s == 0 {
					continue // a single level is the equality candidate above
				}
				g, ok := candidateGain(referenceLoss, n.loss, n.grad, n.n,
					cumLoss, cumGrad, cumN, cfg.LearningRate, cfg.MinBranchWeight)
				if !ok {
					continue
				}
				c := splitChoice{feature: j, kind: model.SplitSubset, mask: mask, gain: g}
				if c.gain > best.gain && !(skipCurrent && c.matches(n)) {
					best, found = c, true
				}
			}
		}
		sc.catOrd, sc.catGain = ord[:0], gains[:0]
	}
	return best, found
}

// subtreeLeafStats walks the subtree and returns the summed leaf loss and
// the number of leaves — the Σ_J L(J) and L_sub of gains (4) and (5).
func subtreeLeafStats(n *node) (lossSum float64, leaves int) {
	if n.isLeaf() {
		return n.loss, 1
	}
	ll, lc := subtreeLeafStats(n.left)
	rl, rc := subtreeLeafStats(n.right)
	return ll + rl, lc + rc
}
