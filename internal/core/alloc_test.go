package core

import (
	"testing"

	"repro/internal/stream"
)

// Steady-state Learn must be allocation-free: every working buffer comes
// from the per-tree scratch arena and the per-node candidate arenas, so
// once the buffers have reached their high-water marks, only structural
// changes (splits, replacements, deepening) may allocate. The linear
// concept below never splits (Property 2), so after warm-up the tree is
// in steady state: proposals are still drawn, admitted and evicted every
// batch, all without allocating.
func TestLearnSteadyStateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		m, c int
	}{
		{"binary/m=10", 10, 2},
		{"multiclass/m=10", 10, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batches := benchBatches(tc.m, 32, 100, 21)
			if tc.c > 2 {
				for _, b := range batches {
					for i := range b.Y {
						b.Y[i] = b.Y[i] % tc.c
					}
				}
			}
			tree := New(Config{Seed: 2}, stream.Schema{NumFeatures: tc.m, NumClasses: tc.c, Name: "alloc"})
			for _, b := range batches {
				tree.Learn(b)
			}
			if tree.Complexity().Inner != 0 {
				t.Skip("tree split during warm-up; steady state not reachable with this data")
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				tree.Learn(batches[i&31])
				i++
			})
			if avg != 0 {
				t.Fatalf("steady-state Learn allocates %.2f allocs/op, want 0", avg)
			}
		})
	}
}

// Predict and Proba never touch the Learn scratch and must be
// allocation-free when the caller supplies the out buffer.
func TestPredictProbaZeroAllocs(t *testing.T) {
	for _, c := range []int{2, 4} {
		batches := benchBatches(6, 8, 100, 23)
		if c > 2 {
			for _, b := range batches {
				for i := range b.Y {
					b.Y[i] = (b.Y[i] + i) % c
				}
			}
		}
		tree := New(Config{Seed: 3}, stream.Schema{NumFeatures: 6, NumClasses: c, Name: "alloc"})
		for _, b := range batches {
			tree.Learn(b)
		}
		x := batches[0].X[0]
		out := make([]float64, c)
		tree.Predict(x) // warm any lazily sized model scratch
		if avg := testing.AllocsPerRun(200, func() { tree.Predict(x) }); avg != 0 {
			t.Fatalf("c=%d: Predict allocates %.2f allocs/op, want 0", c, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { tree.Proba(x, out) }); avg != 0 {
			t.Fatalf("c=%d: Proba allocates %.2f allocs/op, want 0", c, avg)
		}
	}
}
