package core
