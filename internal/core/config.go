// Package core implements the Dynamic Model Tree (DMT), the paper's
// primary contribution (Sections IV–V): a binary model tree that keeps a
// simple Generalized Linear Model at every node (leaf and inner), selects
// splits by the loss-based gain functions (3)–(5), approximates candidate
// losses with a single warm-started gradient step (eqs. 6–7), and gates
// every structural change with the AIC-based confidence test (eq. 11).
// Consistency with parent splits (Property 1) and model minimality
// (Property 2) hold by construction; concept drift is handled without any
// dedicated detector.
package core

import "math"

// Config holds the DMT hyperparameters. The zero value is completed with
// the defaults of Section V-D: learning rate 0.05, epsilon 1e-7, candidate
// cap of three times the number of features, replacement rate 0.5.
type Config struct {
	// LearningRate is the constant SGD rate lambda of the simple models;
	// it also scales the gradient term of the candidate-loss approximation
	// of eq. (7). Default 0.05.
	LearningRate float64
	// Epsilon is the AIC confidence level of eq. (11): the tolerated
	// relative probability that the rejected model was actually better.
	// Smaller values make structural changes more conservative. Default
	// 1e-7 (the paper's "10e-8").
	Epsilon float64
	// CandidateFactor caps the stored split-candidate statistics per node
	// at CandidateFactor * NumFeatures. Default 3 (the paper's
	// recommendation).
	CandidateFactor int
	// ReplacementRate is the fraction of the stored candidate pool that
	// newly observed candidates may displace per time step. Default 0.5.
	ReplacementRate float64
	// MinBranchWeight is the minimum observation count required on both
	// sides of a candidate before its gain is considered. Default 2.
	MinBranchWeight float64
	// RestructureGrace is the minimum observation count an inner node's
	// epoch must reach before gains (4) and (5) are evaluated. Freshly
	// split children are warm-started clones of the parent (Section IV-E)
	// and need data to realise their advantage; without this grace a
	// wide-feature node (parameter credit k > -log eps) would be pruned
	// at the first check after splitting. Default 2000.
	RestructureGrace float64
	// Quantize rounds candidate split values to this many decimal places
	// to bound the number of distinct candidates on continuous features
	// (the features are normalised to [0,1] per Section VI-B). Default 3;
	// negative disables quantisation.
	Quantize int
	// MaxDepth bounds tree growth; 0 means unbounded.
	MaxDepth int
	// Seed drives the random model initialisation and the candidate
	// proposal sampling.
	Seed int64

	// Extensions the paper lists as future work (both off by default;
	// Sections V-A and VI-E1).

	// L1 adds an L1 proximal step of strength L1*LearningRate to every
	// simple model after each time step, driving irrelevant feature
	// weights to exactly zero — the sparsity-as-interpretability and
	// online-feature-selection extension of Sections I-A and V-A.
	L1 float64
	// LRWarmupBoost (> 1) multiplies the learning rate of a node's first
	// LRWarmupObs observations, decaying linearly back to LearningRate —
	// the "dynamic learning rates" suggestion of Section VI-E1 for faster
	// initial training of randomly initialised models. The candidate-loss
	// approximation of eq. (7) always uses the base rate.
	LRWarmupBoost float64
	// LRWarmupObs is the warm-up length in observations (default 2000
	// when LRWarmupBoost is set).
	LRWarmupObs float64

	// Ablation switches (all false in the paper's configuration).

	// DisableInnerUpdates stops training the simple models of inner nodes
	// after splitting (the FIMT-DD behaviour contrasted in Section IV-D).
	// With inner updates off, gains (4) and (5) cannot be evaluated, so
	// the tree also loses its pruning ability.
	DisableInnerUpdates bool
	// DisableWarmStart initialises child models with fresh random weights
	// instead of the parent's parameters (Section IV-E discusses why
	// warm-starting matters).
	DisableWarmStart bool
	// DisablePruning skips the inner-node gains (4) and (5), so the tree
	// only ever grows (VFDT-like behaviour; breaks Property 2).
	DisablePruning bool
}

func (c Config) withDefaults() Config {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		c.Epsilon = 1e-7
	}
	if c.CandidateFactor <= 0 {
		c.CandidateFactor = 3
	}
	if c.ReplacementRate <= 0 || c.ReplacementRate > 1 {
		c.ReplacementRate = 0.5
	}
	if c.MinBranchWeight <= 0 {
		c.MinBranchWeight = 2
	}
	if c.RestructureGrace <= 0 {
		c.RestructureGrace = 2000
	}
	if c.Quantize == 0 {
		c.Quantize = 3
	}
	if c.LRWarmupBoost > 1 && c.LRWarmupObs <= 0 {
		c.LRWarmupObs = 2000
	}
	return c
}

// effectiveLR returns the SGD rate for a node that has seen n
// observations, applying the optional linearly decaying warm-up boost.
func (c Config) effectiveLR(n float64) float64 {
	if c.LRWarmupBoost <= 1 || n >= c.LRWarmupObs {
		return c.LearningRate
	}
	frac := n / c.LRWarmupObs
	boost := c.LRWarmupBoost*(1-frac) + frac
	return c.LearningRate * boost
}

// quantize rounds v to the configured number of decimals. Pow10 is a
// table lookup, so this stays cheap on the per-proposal hot path.
func (c Config) quantize(v float64) float64 {
	if c.Quantize < 0 {
		return v
	}
	scale := math.Pow10(c.Quantize)
	return math.Round(v*scale) / scale
}

// logEps returns -log(epsilon), the constant of the AIC thresholds.
func (c Config) logEps() float64 { return -math.Log(c.Epsilon) }
