package core

import (
	"math"
	"testing"

	"repro/internal/stream"
)

// splitTree hand-assembles a DMT split at x0 <= 0.5 whose left leaf
// predicts class 0 (bias -1) and right leaf class 1 (bias +1).
func splitTree(t *testing.T) *Tree {
	t.Helper()
	tr := New(Config{Seed: 1}, stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "nonfinite"})
	tr.root.feature, tr.root.threshold = 0, 0.5
	tr.root.left = tr.newNode(1, nil)
	tr.root.right = tr.newNode(1, nil)
	wl := tr.root.left.mod.Weights()
	for i := range wl {
		wl[i] = 0
	}
	wl[len(wl)-1] = -1
	tr.root.left.mod.SetWeights(wl)
	wr := tr.root.right.mod.Weights()
	for i := range wr {
		wr[i] = 0
	}
	wr[len(wr)-1] = 1
	tr.root.right.mod.SetWeights(wr)
	return tr
}

// TestNonFiniteRoutesLeft pins the DMT's deterministic non-finite
// routing — the same shared model.RouteLeft rule as FIMT-DD and the
// Hoeffding family — on the predict path, the Learn-side partition and
// the serving snapshot.
func TestNonFiniteRoutesLeft(t *testing.T) {
	tr := splitTree(t)
	snap := tr.Snapshot()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := []float64{v, 0.9}
		if got := tr.Predict(x); got != 0 {
			t.Fatalf("live Predict(%v) = %d, want left leaf class 0", v, got)
		}
		if got := snap.Predict(x); got != 0 {
			t.Fatalf("snapshot Predict(%v) = %d, want left leaf class 0", v, got)
		}
	}
	// The Learn-side partition must route the same way as Predict.
	b := stream.Batch{
		X: [][]float64{{math.NaN(), 0.9}, {math.Inf(1), 0.9}, {0.6, 0.1}},
		Y: []int{0, 0, 1},
	}
	left, right := tr.partition(b, tr.root)
	if left.Len() != 2 || right.Len() != 1 {
		t.Fatalf("partition routed %d left / %d right, want 2/1", left.Len(), right.Len())
	}
}
