// Package serve is the concurrent model-serving layer behind the public
// repro.Serve / repro.NewScorer API: three interchangeable Scorer
// implementations that let prediction traffic read a model while a
// learning loop keeps training it on the live stream — the deployment
// mode the paper targets (an interpretable model that never stops
// learning while it serves).
//
//   - LockScorer guards one classifier with a sync.RWMutex: simple,
//     always applicable, but every read waits while Learn holds the
//     write lock.
//   - SnapshotScorer publishes an immutable serving snapshot through an
//     atomic pointer after Learn (clone-on-publish, with a configurable
//     cadence): Predict/Proba/Complexity are wait-free and never blocked
//     by training, at the cost of a bounded staleness window (at most
//     PublishEvery batches) and a clone per publish.
//   - ShardedScorer hashes rows across N independent learner replicas:
//     multi-core serving and training where no single model instance is
//     a bottleneck, at the cost of each replica seeing 1/N of the data.
package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/race"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Scorer is the serving contract: a Classifier that is safe for
// concurrent use — any number of goroutines may call the read methods
// (Predict, Proba, their batch forms, Complexity, Name) while one
// learning loop calls Learn.
type Scorer interface {
	model.Classifier
	// Proba returns class probabilities; models without a probabilistic
	// interface degrade to a one-hot vector of Predict (see OneHot).
	Proba(x []float64, out []float64) []float64
	// PredictBatch predicts every row of X into out (grown as needed)
	// and returns it. The whole batch is served from one consistent
	// model state.
	PredictBatch(X [][]float64, out []int) []int
	// ProbaBatch writes per-row probability vectors into out and
	// returns it, from one consistent model state. The row slice is
	// grown to len(X) as needed; each row follows Proba's contract —
	// nil allocates, otherwise it must cover the model's class count
	// (rows returned by a previous call on the same scorer do).
	ProbaBatch(X [][]float64, out [][]float64) [][]float64
	// Schema returns the stream schema the served model was built for,
	// so callers (the network serving tier in particular) can validate
	// request row width before dispatching a prediction instead of
	// panicking or silently mis-scoring. Wrapping a classifier that does
	// not expose a schema — only possible for external learners — yields
	// the zero Schema.
	Schema() stream.Schema
	// StructureVersion reports the served model's structure version (see
	// model.StructureVersioner) and whether the model tracks one. The
	// ShardedScorer sums its replicas; the SnapshotScorer reports the
	// version of the published snapshot (what readers actually serve).
	StructureVersion() (uint64, bool)
	// Unwrap returns the live underlying classifier (the first replica
	// for a ShardedScorer). Callers must not use it concurrently with
	// the Scorer.
	Unwrap() model.Classifier
	// Checkpoint writes the scorer's full model state as persist
	// envelope(s): one for the single-model scorers, a counted sequence
	// of per-shard envelopes for the ShardedScorer. The capture is
	// consistent — it serialises against Learn, so no checkpoint ever
	// straddles a batch.
	Checkpoint(w io.Writer) error
	// Restore replaces the scorer's model state from a Checkpoint
	// written by an identically configured scorer (same model name;
	// same shard count for the ShardedScorer). Reads served after
	// Restore returns see the restored state.
	Restore(r io.Reader) error
}

// OneHot writes the one-hot probability fallback for a non-probabilistic
// model's prediction y into out: out keeps its length when it already
// covers y and is grown in place to exactly y+1 entries otherwise (no
// throwaway allocation when cap(out) suffices).
func OneHot(y int, out []float64) []float64 {
	for len(out) <= y {
		out = append(out, 0)
	}
	for i := range out {
		out[i] = 0
	}
	out[y] = 1
	return out
}

// growRows ensures out has exactly n rows, reusing existing backing.
func growRows(out [][]float64, n int) [][]float64 {
	if cap(out) < n {
		next := make([][]float64, n)
		copy(next, out)
		return next
	}
	return out[:n]
}

// growInts ensures out has exactly n entries, reusing existing backing.
func growInts(out []int, n int) []int {
	if cap(out) < n {
		return make([]int, n)
	}
	return out[:n]
}

// --- RWMutex scorer -------------------------------------------------

// LockScorer makes a classifier safe for concurrent serving with a
// sync.RWMutex: reads take the read lock, Learn the write lock. The
// wrapped classifier's read methods must be read-only, which holds for
// every model in this repository.
type LockScorer struct {
	mu     sync.RWMutex
	inner  model.Classifier
	pc     model.ProbabilisticClassifier // nil when inner is not probabilistic
	schema stream.Schema                 // zero when inner exposes no schema
	sv     model.StructureVersioner      // nil when inner tracks no structure version
}

// NewLocked wraps a classifier in a LockScorer.
func NewLocked(c model.Classifier) *LockScorer {
	s := &LockScorer{inner: c}
	s.pc, _ = c.(model.ProbabilisticClassifier)
	s.sv, _ = c.(model.StructureVersioner)
	if sp, ok := c.(schemaProvider); ok {
		s.schema = sp.Schema()
	}
	return s
}

// schemaProvider is the schema accessor every registered learner exposes
// (persist.Save requires it to write loadable envelopes).
type schemaProvider interface {
	Schema() stream.Schema
}

// Unwrap implements Scorer.
func (s *LockScorer) Unwrap() model.Classifier { return s.inner }

// Learn implements model.Classifier under the write lock.
func (s *LockScorer) Learn(b stream.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Learn(b)
}

// Predict implements model.Classifier under a read lock.
func (s *LockScorer) Predict(x []float64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Predict(x)
}

// Proba returns class probabilities under a read lock, with the OneHot
// fallback for non-probabilistic models.
func (s *LockScorer) Proba(x []float64, out []float64) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.pc != nil {
		return s.pc.Proba(x, out)
	}
	return OneHot(s.inner.Predict(x), out)
}

// Schema implements Scorer (the wrapped model's schema, zero when the
// classifier exposes none).
func (s *LockScorer) Schema() stream.Schema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schema
}

// StructureVersion implements Scorer.
func (s *LockScorer) StructureVersion() (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.sv == nil {
		return 0, false
	}
	return s.sv.StructureVersion(), true
}

// PredictBatch implements Scorer under one read lock for the whole
// batch, so the rows are served from one consistent model state.
// Empty (or nil) batches return an empty result without taking the lock.
func (s *LockScorer) PredictBatch(X [][]float64, out []int) []int {
	if len(X) == 0 {
		return growInts(out, 0)
	}
	out = growInts(out, len(X))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, x := range X {
		out[i] = s.inner.Predict(x)
	}
	return out
}

// ProbaBatch implements Scorer under one read lock.
func (s *LockScorer) ProbaBatch(X [][]float64, out [][]float64) [][]float64 {
	if len(X) == 0 {
		return growRows(out, 0)
	}
	out = growRows(out, len(X))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, x := range X {
		if s.pc != nil {
			out[i] = s.pc.Proba(x, out[i])
		} else {
			out[i] = OneHot(s.inner.Predict(x), out[i])
		}
	}
	return out
}

// Complexity implements model.Classifier under a read lock.
func (s *LockScorer) Complexity() model.Complexity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Complexity()
}

// Name implements model.Classifier.
func (s *LockScorer) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Name()
}

// Checkpoint implements Scorer: the wrapped model as one envelope,
// captured under the write lock so it never straddles a Learn.
func (s *LockScorer) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return persist.Save(w, s.inner)
}

// Restore implements Scorer, swapping in the model reconstructed from
// the envelope. The checkpointed model must match the served one.
func (s *LockScorer) Restore(r io.Reader) error {
	c, err := persist.Load(r)
	if err != nil {
		return err
	}
	return s.install(c)
}

// install swaps in an already-reconstructed model (the shared tail of
// Restore, also used by the ShardedScorer's two-phase restore).
func (s *LockScorer) install(c model.Classifier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Name() != s.inner.Name() {
		return fmt.Errorf("serve: restore %q into a scorer serving %q", c.Name(), s.inner.Name())
	}
	s.inner = c
	s.pc, _ = c.(model.ProbabilisticClassifier)
	s.sv, _ = c.(model.StructureVersioner)
	if sp, ok := c.(schemaProvider); ok {
		s.schema = sp.Schema()
	}
	return nil
}

// --- Snapshot scorer ------------------------------------------------

// published is one immutable serving state behind the atomic pointer.
type published struct {
	snap  model.Snapshot
	proba model.ProbaSnapshot // nil when the snapshot is not probabilistic
	// schema and version are frozen at publish time, so the metadata
	// accessors are as wait-free as the reads they describe.
	schema     stream.Schema
	version    uint64
	hasVersion bool
}

// SnapshotScorer serves reads from an immutable model snapshot published
// through an atomic pointer: Predict/Proba/Complexity never take a lock
// and are never blocked by a concurrent Learn. Learn trains the live
// model under a mutex (one writer at a time) and republishes every
// PublishEvery batches, so reads see a state at most PublishEvery-1
// Learn calls stale. With PublishEvery == 1 (the default) a snapshot
// read between Learn calls is identical to a locked read.
//
// The alternative publish-on-change mode (NewSnapshotOnChange /
// WithPublishOnChange) republishes only when the model's structure
// version moved — a split, prune, replacement or member swap — instead
// of after every batch. Tree shape is what snapshot clones pay for, and
// structural events are orders of magnitude rarer than batches, so the
// publish rate (and the clone cost) collapses; the trade-off is that
// leaf-level parameter drift between structural events is not visible
// to readers until the next event or a forced Publish.
type SnapshotScorer struct {
	mu           sync.Mutex // serialises Learn, Publish and Restore
	live         model.Classifier
	src          model.Snapshotter
	publishEvery int
	sincePublish int
	onChange     bool
	sv           model.StructureVersioner // nil when the model tracks no structure version
	lastVersion  uint64
	publishes    atomic.Uint64
	cur          atomic.Pointer[published]

	// Checkpoint capture cache, publish-on-change mode only: the full
	// envelope bytes of the last capture and the live structure version
	// they were taken at. While the version has not moved, Checkpoint
	// re-serves these bytes instead of re-encoding full state — the same
	// staleness contract the published snapshot already has in this mode
	// (leaf drift between structural events is not visible either).
	ckptRaw     []byte
	ckptVersion uint64
	// deltaBase is the previous CheckpointDelta capture, the base the
	// next delta envelope is computed against.
	deltaBase []byte
}

// NewSnapshot wraps a snapshot-capable classifier. publishEvery <= 1
// publishes after every Learn; larger values amortise the clone cost of
// expensive models over that many batches. It fails when the classifier
// does not implement model.Snapshotter (every registered learner does).
func NewSnapshot(c model.Classifier, publishEvery int) (*SnapshotScorer, error) {
	src, ok := c.(model.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("serve: %s does not implement model.Snapshotter; use NewLocked", c.Name())
	}
	if publishEvery < 1 {
		publishEvery = 1
	}
	s := &SnapshotScorer{live: c, src: src, publishEvery: publishEvery}
	s.sv, _ = c.(model.StructureVersioner)
	s.publish()
	return s, nil
}

// NewSnapshotOnChange wraps a snapshot-capable classifier in
// publish-on-change mode: the snapshot is republished only when the
// model's StructureVersion moves (see the type comment). It fails when
// the classifier implements neither model.Snapshotter nor
// model.StructureVersioner — the structureless GLM and Naive Bayes
// baselines deliberately lack a structure version, since their
// parameters drift every batch and only cadence publishing is faithful
// for them.
func NewSnapshotOnChange(c model.Classifier) (*SnapshotScorer, error) {
	src, ok := c.(model.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("serve: %s does not implement model.Snapshotter; use NewLocked", c.Name())
	}
	sv, ok := c.(model.StructureVersioner)
	if !ok {
		return nil, fmt.Errorf("serve: %s does not implement model.StructureVersioner; use NewSnapshot with a publish cadence", c.Name())
	}
	s := &SnapshotScorer{live: c, src: src, publishEvery: 1, onChange: true, sv: sv, lastVersion: sv.StructureVersion()}
	s.publish()
	return s, nil
}

// publish captures and installs a fresh snapshot; callers hold s.mu
// (or, in the constructor, exclusive ownership).
func (s *SnapshotScorer) publish() {
	p := &published{snap: s.src.Snapshot()}
	p.proba, _ = p.snap.(model.ProbaSnapshot)
	if sp, ok := s.live.(schemaProvider); ok {
		p.schema = sp.Schema()
	}
	if s.sv != nil {
		p.version, p.hasVersion = s.sv.StructureVersion(), true
	}
	s.cur.Store(p)
	s.sincePublish = 0
	s.publishes.Add(1)
}

// Publish forces an immediate snapshot publish outside the cadence.
func (s *SnapshotScorer) Publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publish()
}

// Publishes returns the lifetime snapshot publish count (including the
// constructor's initial publish) — the quantity the publish-on-change
// mode collapses.
func (s *SnapshotScorer) Publishes() uint64 { return s.publishes.Load() }

// Unwrap implements Scorer.
func (s *SnapshotScorer) Unwrap() model.Classifier { return s.live }

// Learn implements model.Classifier: train the live model, then
// republish — on the batch cadence, or in publish-on-change mode only
// when the structure version moved.
func (s *SnapshotScorer) Learn(b stream.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live.Learn(b)
	if s.onChange {
		if v := s.sv.StructureVersion(); v != s.lastVersion {
			s.lastVersion = v
			s.publish()
		}
		return
	}
	s.sincePublish++
	if s.sincePublish >= s.publishEvery {
		s.publish()
	}
}

// checkpointRaw returns the scorer's current full envelope bytes. In
// publish-on-change mode the bytes are cached keyed by the live
// structure version, so repeated checkpoints between structural events
// cost a version check instead of a full re-encode; cadence and default
// modes always capture fresh (leaf parameters drift without the version
// moving, and those modes promise full-fidelity checkpoints). Callers
// hold s.mu.
func (s *SnapshotScorer) checkpointRaw() ([]byte, error) {
	if s.onChange && s.ckptRaw != nil && s.sv.StructureVersion() == s.ckptVersion {
		return s.ckptRaw, nil
	}
	var buf bytes.Buffer
	if err := persist.Save(&buf, s.live); err != nil {
		return nil, err
	}
	if s.onChange {
		s.ckptRaw, s.ckptVersion = buf.Bytes(), s.sv.StructureVersion()
	}
	return buf.Bytes(), nil
}

// Checkpoint implements Scorer: the live model as one envelope,
// captured under the writer mutex so it is snapshot-consistent with the
// published state (no Learn can interleave). In publish-on-change mode
// an unchanged StructureVersion re-serves the cached capture.
func (s *SnapshotScorer) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.checkpointRaw()
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// CheckpointDelta writes the scorer's state as a delta envelope against
// the previous CheckpointDelta (or Checkpoint-seeded) capture, falling
// back to a full envelope on the first call or whenever no usable base
// exists. It reports whether a full envelope was written. Applying the
// emitted chain to the first full envelope reconstructs the current
// checkpoint byte-identically (see persist.ApplyChain).
func (s *SnapshotScorer) CheckpointDelta(w io.Writer) (full bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.checkpointRaw()
	if err != nil {
		return false, err
	}
	prev := s.deltaBase
	s.deltaBase = raw
	if prev == nil {
		_, err = w.Write(raw)
		return true, err
	}
	d, err := persist.MakeDelta(prev, raw)
	if err != nil {
		// The previous capture is unusable as a base (e.g. state was
		// swapped underneath us): recover with a full envelope.
		_, werr := w.Write(raw)
		return true, werr
	}
	return false, persist.WriteDelta(w, d)
}

// Restore implements Scorer: the live model is replaced by the
// checkpointed one and a fresh snapshot is published immediately, so
// reads after Restore serve the restored state.
func (s *SnapshotScorer) Restore(r io.Reader) error {
	c, err := persist.Load(r)
	if err != nil {
		return err
	}
	return s.install(c)
}

// install swaps in an already-reconstructed model and republishes (the
// shared tail of Restore, also used by the ShardedScorer's two-phase
// restore).
func (s *SnapshotScorer) install(c model.Classifier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.Name() != s.live.Name() {
		return fmt.Errorf("serve: restore %q into a scorer serving %q", c.Name(), s.live.Name())
	}
	src, ok := c.(model.Snapshotter)
	if !ok {
		return fmt.Errorf("serve: restored %s does not implement model.Snapshotter", c.Name())
	}
	sv, hasSV := c.(model.StructureVersioner)
	if s.onChange {
		if !hasSV {
			return fmt.Errorf("serve: restored %s does not implement model.StructureVersioner", c.Name())
		}
		s.lastVersion = sv.StructureVersion()
	}
	s.sv = sv
	s.live, s.src = c, src
	// The capture cache and delta base described the replaced state; the
	// next Checkpoint re-encodes and the next CheckpointDelta is full.
	s.ckptRaw, s.deltaBase = nil, nil
	s.publish()
	return nil
}

// Predict implements model.Classifier, wait-free.
func (s *SnapshotScorer) Predict(x []float64) int {
	return s.cur.Load().snap.Predict(x)
}

// Proba implements Scorer, wait-free, with the OneHot fallback.
func (s *SnapshotScorer) Proba(x []float64, out []float64) []float64 {
	p := s.cur.Load()
	if p.proba != nil {
		return p.proba.Proba(x, out)
	}
	return OneHot(p.snap.Predict(x), out)
}

// Schema implements Scorer, wait-free (the schema frozen at publish
// time; zero when the model exposes none).
func (s *SnapshotScorer) Schema() stream.Schema { return s.cur.Load().schema }

// StructureVersion implements Scorer with the version of the published
// snapshot — the structure readers actually serve, which in cadence or
// on-change mode can trail the live model's version.
func (s *SnapshotScorer) StructureVersion() (uint64, bool) {
	p := s.cur.Load()
	return p.version, p.hasVersion
}

// PredictBatch implements Scorer: the whole batch is served from the one
// snapshot loaded at entry, wait-free. Empty (or nil) batches return an
// empty result without loading the snapshot.
func (s *SnapshotScorer) PredictBatch(X [][]float64, out []int) []int {
	if len(X) == 0 {
		return growInts(out, 0)
	}
	out = growInts(out, len(X))
	snap := s.cur.Load().snap
	for i, x := range X {
		out[i] = snap.Predict(x)
	}
	return out
}

// ProbaBatch implements Scorer from one snapshot, wait-free.
func (s *SnapshotScorer) ProbaBatch(X [][]float64, out [][]float64) [][]float64 {
	if len(X) == 0 {
		return growRows(out, 0)
	}
	out = growRows(out, len(X))
	p := s.cur.Load()
	for i, x := range X {
		if p.proba != nil {
			out[i] = p.proba.Proba(x, out[i])
		} else {
			out[i] = OneHot(p.snap.Predict(x), out[i])
		}
	}
	return out
}

// Complexity implements model.Classifier with the complexity of the
// published snapshot (the state readers actually serve).
func (s *SnapshotScorer) Complexity() model.Complexity {
	return s.cur.Load().snap.Complexity()
}

// Name implements model.Classifier.
func (s *SnapshotScorer) Name() string { return s.cur.Load().snap.Name() }

// --- Sharded scorer -------------------------------------------------

// ShardedScorer partitions work across N independent Scorer replicas by
// hashing each row's feature values: Learn routes every row to its
// shard, reads route the queried row the same way, so a row is always
// served by the replica that trained on its hash bucket. Replicas are
// fully independent (no shared state), which makes both training and
// serving scale across cores — at the cost of each replica learning
// from 1/N of the stream, so accuracy on small streams trails a single
// model. Complexity sums the replicas.
type ShardedScorer struct {
	// mu serialises Learn, Checkpoint and Restore against each other, so
	// a checkpoint taken under concurrent training is one consistent cut
	// at a batch boundary (no shard mid-batch, no half-restored state).
	// Reads stay lock-free: they go straight to the shard scorers.
	mu     sync.Mutex
	shards []Scorer
	// Learn-path partition scratch (single-writer, like Learn itself).
	px [][][]float64
	py [][]int
}

// NewSharded builds a ShardedScorer over the given replicas (at least
// one). The replicas must be independent models of the same schema.
func NewSharded(shards []Scorer) (*ShardedScorer, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("serve: NewSharded needs at least one shard")
	}
	return &ShardedScorer{
		shards: shards,
		px:     make([][][]float64, len(shards)),
		py:     make([][]int, len(shards)),
	}, nil
}

// NumShards returns the replica count.
func (s *ShardedScorer) NumShards() int { return len(s.shards) }

// Shard returns replica i.
func (s *ShardedScorer) Shard(i int) Scorer { return s.shards[i] }

// shardOf hashes the row's feature bits to a replica with FNV-1a, so
// row→shard routing is deterministic across runs and processes.
func (s *ShardedScorer) shardOf(x []float64) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range x {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= prime64
			bits >>= 8
		}
	}
	return int(h % uint64(len(s.shards)))
}

// Learn implements model.Classifier: rows are partitioned by hash and
// the non-empty shards learn their parts concurrently — the replicas
// share no state, so one goroutine per shard is safe and training
// scales across cores. Row→shard assignment is deterministic, so
// results do not depend on the scheduling. Like every Scorer, one
// learning loop at a time; Checkpoint and Restore serialise against it.
func (s *ShardedScorer) Learn(b stream.Batch) {
	if b.Len() == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		s.px[i] = s.px[i][:0]
		s.py[i] = s.py[i][:0]
	}
	for i, x := range b.X {
		k := s.shardOf(x)
		s.px[k] = append(s.px[k], x)
		s.py[k] = append(s.py[k], b.Y[i])
	}
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if len(s.py[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh Scorer, batch stream.Batch) {
			defer wg.Done()
			sh.Learn(batch)
		}(sh, stream.Batch{X: s.px[i], Y: s.py[i]})
	}
	wg.Wait()
}

// Predict implements model.Classifier via the row's shard.
func (s *ShardedScorer) Predict(x []float64) int {
	return s.shards[s.shardOf(x)].Predict(x)
}

// Proba implements Scorer via the row's shard.
func (s *ShardedScorer) Proba(x []float64, out []float64) []float64 {
	return s.shards[s.shardOf(x)].Proba(x, out)
}

// Schema implements Scorer (the replicas share one schema).
func (s *ShardedScorer) Schema() stream.Schema { return s.shards[0].Schema() }

// StructureVersion implements Scorer, summing the replicas — each
// replica's version is monotone, so the sum moves exactly when any
// replica's structure does. It reports false unless every replica
// tracks a version.
func (s *ShardedScorer) StructureVersion() (uint64, bool) {
	var total uint64
	for _, sh := range s.shards {
		v, ok := sh.StructureVersion()
		if !ok {
			return 0, false
		}
		total += v
	}
	return total, true
}

// PredictBatch implements Scorer, routing each row to its shard. Empty
// (or nil) batches return an empty result with no per-shard dispatch.
func (s *ShardedScorer) PredictBatch(X [][]float64, out []int) []int {
	if len(X) == 0 {
		return growInts(out, 0)
	}
	out = growInts(out, len(X))
	for i, x := range X {
		out[i] = s.shards[s.shardOf(x)].Predict(x)
	}
	return out
}

// ProbaBatch implements Scorer, routing each row to its shard. Empty
// (or nil) batches return an empty result with no per-shard dispatch.
func (s *ShardedScorer) ProbaBatch(X [][]float64, out [][]float64) [][]float64 {
	if len(X) == 0 {
		return growRows(out, 0)
	}
	out = growRows(out, len(X))
	for i, x := range X {
		out[i] = s.shards[s.shardOf(x)].Proba(x, out[i])
	}
	return out
}

// Complexity implements model.Classifier, summing the replicas.
func (s *ShardedScorer) Complexity() model.Complexity {
	var total model.Complexity
	for _, sh := range s.shards {
		total = total.Add(sh.Complexity())
	}
	return total
}

// Name implements model.Classifier.
func (s *ShardedScorer) Name() string { return s.shards[0].Name() }

// Unwrap implements Scorer with the first replica's live classifier.
func (s *ShardedScorer) Unwrap() model.Classifier { return s.shards[0].Unwrap() }

// shardedMagic frames a sharded checkpoint: magic + big-endian shard
// count, followed by one envelope per replica in shard order.
const shardedMagic = "RSHD"

// Checkpoint implements Scorer: a counted sequence of per-shard
// envelopes. It serialises against Learn and Restore, so the per-shard
// captures form one consistent cut of the ensemble of replicas at a
// batch boundary even while a trainer goroutine keeps calling Learn.
func (s *ShardedScorer) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := io.WriteString(w, shardedMagic); err != nil {
		return fmt.Errorf("serve: write sharded checkpoint magic: %w", err)
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s.shards)))
	if _, err := w.Write(n[:]); err != nil {
		return fmt.Errorf("serve: write shard count: %w", err)
	}
	for i, sh := range s.shards {
		if err := sh.Checkpoint(w); err != nil {
			return fmt.Errorf("serve: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

// Restore implements Scorer: the shard count must match the scorer's,
// and each replica restores its own envelope in shard order (row→shard
// routing is deterministic, so state lands on the replica that will
// keep serving it). The whole checkpoint is read and validated — every
// envelope parsed, checksummed, reconstructed and name-checked —
// before any shard is touched, so a truncated or corrupt checkpoint
// never leaves the scorer serving a mix of restored and pre-restore
// replicas. Restore serialises against Learn and Checkpoint.
func (s *ShardedScorer) Restore(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return fmt.Errorf("serve: read sharded checkpoint header: %w", err)
	}
	if string(head[:4]) != shardedMagic {
		return fmt.Errorf("serve: not a sharded checkpoint (bad magic %q); single-model checkpoints restore through the shard scorers directly", head[:4])
	}
	n := binary.BigEndian.Uint32(head[4:])
	if int(n) != len(s.shards) {
		return fmt.Errorf("serve: checkpoint holds %d shards, scorer has %d", n, len(s.shards))
	}
	// Phase 1: read and fully validate every shard envelope,
	// reconstructing the models but touching no shard yet. The built-in
	// shard scorers expose install(), so each model is reconstructed
	// exactly once; external Scorer implementations fall back to a
	// buffered Restore of the already-validated bytes.
	models := make([]model.Classifier, len(s.shards))
	raw := make([][]byte, len(s.shards))
	for i := range s.shards {
		src := io.Reader(r)
		var buf bytes.Buffer
		if _, canInstall := s.shards[i].(modelInstaller); !canInstall {
			src = io.TeeReader(r, &buf)
		}
		env, err := persist.ReadEnvelope(src)
		if err != nil {
			return fmt.Errorf("serve: shard %d envelope: %w", i, err)
		}
		c, err := persist.LoadEnvelope(env)
		if err != nil {
			return fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if c.Name() != s.shards[i].Name() {
			return fmt.Errorf("serve: shard %d checkpoint holds %q, scorer serves %q", i, c.Name(), s.shards[i].Name())
		}
		models[i], raw[i] = c, buf.Bytes()
	}
	// Phase 2: install into every shard.
	for i, sh := range s.shards {
		var err error
		if in, ok := sh.(modelInstaller); ok {
			err = in.install(models[i])
		} else {
			err = sh.Restore(bytes.NewReader(raw[i]))
		}
		if err != nil {
			return fmt.Errorf("serve: restore shard %d (scorer may be partially restored): %w", i, err)
		}
	}
	return nil
}

// modelInstaller is the fast path of the sharded two-phase restore:
// swapping in a model that phase 1 already reconstructed and validated.
type modelInstaller interface {
	install(c model.Classifier) error
}

// --- Registry-driven construction -----------------------------------

// Mode selects the Scorer implementation.
type Mode string

const (
	// ModeSnapshot is the default: lock-free reads via atomic snapshots.
	ModeSnapshot Mode = "snapshot"
	// ModeLocked is the RWMutex scorer.
	ModeLocked Mode = "locked"
	// ModeSharded hashes rows across independent replicas, each served
	// through its own snapshot scorer.
	ModeSharded Mode = "sharded"
)

// ParseMode resolves a CLI-style mode string ("" = snapshot).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeSnapshot:
		return ModeSnapshot, nil
	case ModeLocked:
		return ModeLocked, nil
	case ModeSharded:
		return ModeSharded, nil
	}
	return "", fmt.Errorf("serve: unknown scorer mode %q (want snapshot, locked or sharded)", s)
}

// Config drives New, the registry-driven serving constructor.
type Config struct {
	// Model is the registered model name (see registry.Names).
	Model string
	// Schema describes the stream the scorer will serve.
	Schema stream.Schema
	// Options are the model's functional options (seed, rates, ...).
	Options []registry.Option
	// Mode selects the Scorer implementation (default ModeSnapshot).
	Mode Mode
	// PublishEvery is the snapshot publish cadence in Learn calls
	// (<= 1: every batch). Snapshot and sharded modes only.
	PublishEvery int
	// PublishOnChange republishes only when the model's structure
	// version moved (splits/prunes/replacements/swaps) instead of on the
	// batch cadence. Snapshot and sharded modes; requires a model that
	// implements model.StructureVersioner (every tree learner and both
	// ensembles do; the structureless GLM and Naive Bayes do not).
	PublishOnChange bool
	// Shards is the replica count of ModeSharded (default 2).
	Shards int
}

// New builds a registered model (or, for ModeSharded, Shards replicas
// with per-shard derived seeds) and wraps it in the requested Scorer.
// Models that cannot snapshot — only possible for external learners
// registered without implementing model.Snapshotter — degrade to the
// lock-based scorer.
func New(cfg Config) (Scorer, error) {
	mode := cfg.Mode
	if mode == "" {
		mode = ModeSnapshot
	}
	// A "race:dmt,vfdt,arf" model spec builds the racing meta-scorer
	// instead of a single model. The racer is its own serving
	// implementation (wait-free leader snapshot reads), so the mode
	// knob does not apply.
	if race.IsSpec(cfg.Model) {
		arms, err := race.ParseSpec(cfg.Model)
		if err != nil {
			return nil, err
		}
		// Only the racer-level knobs pass through: each arm runs its
		// paper-default configuration with a seed derived per arm, so
		// a shared WithSeed cannot collapse same-family arms into
		// clones.
		var p registry.Params
		for _, opt := range cfg.Options {
			if opt != nil {
				opt(&p)
			}
		}
		return race.New(race.Config{
			Schema:     cfg.Schema,
			Arms:       arms,
			Seed:       p.Seed,
			Workers:    p.EnsembleWorkers,
			DriftDelta: p.DriftDelta,
		})
	}
	build := func(extra ...registry.Option) (model.Classifier, error) {
		return registry.New(cfg.Model, cfg.Schema, append(append([]registry.Option{}, cfg.Options...), extra...)...)
	}
	wrap := func(c model.Classifier) (Scorer, error) {
		if cfg.PublishOnChange {
			return NewSnapshotOnChange(c)
		}
		return Wrap(c, cfg.PublishEvery), nil
	}
	switch mode {
	case ModeLocked:
		c, err := build()
		if err != nil {
			return nil, err
		}
		return NewLocked(c), nil
	case ModeSnapshot:
		c, err := build()
		if err != nil {
			return nil, err
		}
		return wrap(c)
	case ModeSharded:
		// Unset defaults to 2; an explicit count is honoured as given
		// (1 is a valid single-replica deployment, not silently doubled).
		n := cfg.Shards
		if n <= 0 {
			n = 2
		}
		shards := make([]Scorer, n)
		for i := 0; i < n; i++ {
			shard := i
			c, err := build(func(p *registry.Params) {
				// Decorrelate the replicas: each shard derives its seed
				// from the configured one.
				p.Seed = p.Seed*1_000_003 + int64(shard) + 1
			})
			if err != nil {
				return nil, err
			}
			if shards[shard], err = wrap(c); err != nil {
				return nil, err
			}
		}
		return NewSharded(shards)
	}
	return nil, fmt.Errorf("serve: unknown mode %q", mode)
}

// Wrap wraps an existing classifier in the snapshot scorer when it can
// snapshot, falling back to the lock-based scorer otherwise.
func Wrap(c model.Classifier, publishEvery int) Scorer {
	if s, err := NewSnapshot(c, publishEvery); err == nil {
		return s
	}
	return NewLocked(c)
}

// maxCheckpointShards bounds the shard count a checkpoint stream may
// declare, so corrupt bytes cannot demand an absurd reconstruction.
const maxCheckpointShards = 1 << 12

// FromCheckpoint reconstructs a fresh serving scorer from checkpoint
// bytes written by any Scorer.Checkpoint — a single model envelope or a
// sharded per-replica sequence — without the caller naming a model or a
// topology: both are read off the stream. This is how a stateless
// serving replica bootstraps from a trainer's published envelope (see
// the network serving tier) before it starts following version updates
// via Restore. Each reconstructed model is wrapped in the snapshot
// scorer with the given publish cadence (lock-based fallback for
// models that cannot snapshot).
func FromCheckpoint(r io.Reader, publishEvery int) (Scorer, error) {
	br := bufio.NewReader(r)
	if peek, err := br.Peek(len(race.Magic)); err == nil && string(peek) == race.Magic {
		return race.FromCheckpoint(br)
	}
	peek, err := br.Peek(len(shardedMagic))
	if err == nil && string(peek) == shardedMagic {
		var head [8]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			return nil, fmt.Errorf("serve: read sharded checkpoint header: %w", err)
		}
		n := binary.BigEndian.Uint32(head[4:])
		if n == 0 || n > maxCheckpointShards {
			return nil, fmt.Errorf("serve: implausible shard count %d in checkpoint", n)
		}
		shards := make([]Scorer, n)
		for i := range shards {
			c, err := persist.Load(br)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d of %d: %w", i, n, err)
			}
			shards[i] = Wrap(c, publishEvery)
		}
		return NewSharded(shards)
	}
	c, err := persist.Load(br)
	if err != nil {
		return nil, err
	}
	return Wrap(c, publishEvery), nil
}
