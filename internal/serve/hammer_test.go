package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/synth"
)

// The checkpoint-during-Learn hammer: a trainer goroutine streams
// batches through the scorer while this goroutine checkpoints it as
// fast as it can. Checkpoint serialises against Learn, so every
// concurrent capture must land exactly at a batch boundary — and must
// therefore load into a model that predicts identically to the quiesced
// reference capture the trainer recorded at a boundary with the same
// structure version. A capture that straddles a Learn (torn leaf stats,
// a half-applied split) would disagree with every reference, and `-race`
// flags any unsynchronised state sharing along the way.
func hammerCheckpointDuringLearn(t *testing.T, mode Mode) {
	t.Helper()
	schema := synth.NewSEA(100, 0.1, 1).Schema()
	s, err := New(Config{Model: "VFDT (MC)", Schema: schema, Mode: mode, Shards: 2, PublishEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	const batches = 200
	probe, perr := stream.NextBatch(synth.NewSEA(200, 0, 999), 64)
	if perr != nil {
		t.Fatal(perr)
	}

	// refs[k] is the quiesced capture after batch k (refs[0] = untrained),
	// refVer[k] the structure version at that boundary. Written only by
	// the trainer goroutine, read after the join.
	type ref struct {
		raw []byte
		ver uint64
	}
	refs := make([]ref, 0, batches+1)
	snap := func() ref {
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Error(err)
		}
		v, _ := s.StructureVersion()
		return ref{raw: buf.Bytes(), ver: v}
	}
	refs = append(refs, snap())

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		gen := synth.NewSEA(batches*100, 0.1, 17)
		for i := 0; i < batches; i++ {
			b, err := stream.NextBatch(gen, 100)
			if err != nil {
				t.Error(err)
				return
			}
			s.Learn(b)
			refs = append(refs, snap())
		}
	}()

	// Hammer: capture concurrently with training until the trainer is
	// done. No pacing — each capture is a full state serialisation, so
	// the loop contends the Learn/Checkpoint mutex as hard as it can.
	// maxCaptures bounds the validation cost (under -race the sharded
	// hammer otherwise lands thousands of captures).
	const maxCaptures = 300
	var captured [][]byte
	for {
		select {
		case <-done:
		default:
			if len(captured) >= maxCaptures {
				time.Sleep(time.Millisecond)
				continue
			}
			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Fatalf("concurrent checkpoint: %v", err)
			}
			captured = append(captured, buf.Bytes())
			continue
		}
		break
	}
	wg.Wait()
	if len(captured) < 5 {
		t.Fatalf("only %d concurrent captures landed; hammer too slow to mean anything", len(captured))
	}

	// Pre-load every reference once.
	refPreds := make(map[int][]int, len(refs))
	loadPreds := func(raw []byte) ([]int, uint64) {
		sc, err := FromCheckpoint(bytes.NewReader(raw), 1)
		if err != nil {
			t.Fatalf("capture does not load: %v", err)
		}
		v, _ := sc.StructureVersion()
		return sc.PredictBatch(probe.X, nil), v
	}

	for ci, raw := range captured {
		got, v := loadPreds(raw)
		// The capture must predict identically to a quiesced boundary
		// capture at the same structure version.
		matched := false
		for k := range refs {
			if refs[k].ver != v {
				continue
			}
			want, ok := refPreds[k]
			if !ok {
				want, _ = loadPreds(refs[k].raw)
				refPreds[k] = want
			}
			if equalPreds(got, want) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("capture %d (version %d) matches no quiesced boundary capture at that version: torn checkpoint", ci, v)
		}
	}
	t.Logf("%s: %d concurrent captures, all consistent with batch-boundary state", mode, len(captured))
}

func equalPreds(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCheckpointDuringLearnSnapshot(t *testing.T) {
	hammerCheckpointDuringLearn(t, ModeSnapshot)
}

func TestCheckpointDuringLearnSharded(t *testing.T) {
	hammerCheckpointDuringLearn(t, ModeSharded)
}
