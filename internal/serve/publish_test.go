package serve

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
)

// TestPublishOnChangeCollapsesRate is the satellite's core claim: with
// publish-on-change, the publish count tracks structural events instead
// of batches, so it collapses by orders of magnitude on a stable
// concept while the served structure stays current.
func TestPublishOnChangeCollapsesRate(t *testing.T) {
	batches, schema := seaBatches(t, 200, 50, 42)

	build := func() model.Classifier {
		c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	every, err := NewSnapshot(build(), 1)
	if err != nil {
		t.Fatal(err)
	}
	onChange, err := NewSnapshotOnChange(build())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		every.Learn(b)
		onChange.Learn(b)
	}

	if every.Publishes() != uint64(len(batches))+1 {
		t.Fatalf("cadence scorer published %d times, want %d", every.Publishes(), len(batches)+1)
	}
	sv := onChange.Unwrap().(model.StructureVersioner)
	if sv.StructureVersion() == 0 {
		t.Fatal("precondition: the tree should have split at least once")
	}
	// One initial publish plus at most one per structural event (several
	// events inside one batch coalesce into a single publish).
	if got, max := onChange.Publishes(), sv.StructureVersion()+1; got > max {
		t.Fatalf("on-change scorer published %d times for %d structural events", got, max-1)
	}
	if onChange.Publishes() >= every.Publishes()/4 {
		t.Fatalf("publish rate did not collapse: on-change %d vs every-batch %d", onChange.Publishes(), every.Publishes())
	}

	// Both scorers must serve the same structure; only leaf-level
	// counters may be stale, and a forced Publish erases even that.
	onChange.Publish()
	for _, b := range batches[:20] {
		for _, x := range b.X {
			if every.Predict(x) != onChange.Predict(x) {
				t.Fatal("on-change scorer diverged after forced Publish")
			}
		}
	}
}

// TestPublishOnChangeStaleness pins the mode's contract: between
// structural events readers keep the last published snapshot, and a
// structural event republishes without a manual Publish.
func TestPublishOnChangeStaleness(t *testing.T) {
	batches, schema := seaBatches(t, 400, 50, 7)
	c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshotOnChange(c)
	if err != nil {
		t.Fatal(err)
	}
	sv := c.(model.StructureVersioner)
	sawQuietBatch, sawEventBatch := false, false
	for _, b := range batches {
		beforeV, beforeP := sv.StructureVersion(), s.Publishes()
		s.Learn(b)
		afterV, afterP := sv.StructureVersion(), s.Publishes()
		if beforeV == afterV && afterP != beforeP {
			t.Fatal("published without a structural event")
		}
		if beforeV != afterV && afterP != beforeP+1 {
			t.Fatalf("structural event published %d times", afterP-beforeP)
		}
		sawQuietBatch = sawQuietBatch || beforeV == afterV
		sawEventBatch = sawEventBatch || beforeV != afterV
	}
	if !sawQuietBatch || !sawEventBatch {
		t.Fatalf("test stream not discriminating (quiet=%v event=%v)", sawQuietBatch, sawEventBatch)
	}
}

// TestPublishOnChangeRequiresStructureVersion: the structureless
// baselines must be rejected — their parameters drift every batch, so
// an on-change scorer would serve the initial model forever.
func TestPublishOnChangeRequiresStructureVersion(t *testing.T) {
	_, schema := seaBatches(t, 1, 8, 1)
	for _, name := range []string{"GLM", "Naive Bayes"} {
		c, err := registry.New(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSnapshotOnChange(c); err == nil {
			t.Fatalf("%s accepted by NewSnapshotOnChange", name)
		}
	}
	// Every tree learner and both ensembles must be accepted.
	for _, name := range []string{"DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT", "Forest Ens.", "Bagging Ens."} {
		c, err := registry.New(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSnapshotOnChange(c); err != nil {
			t.Fatalf("%s rejected by NewSnapshotOnChange: %v", name, err)
		}
	}
}

// TestRegistryDrivenPublishOnChange covers the serve.New path,
// including per-shard on-change scorers.
func TestRegistryDrivenPublishOnChange(t *testing.T) {
	batches, schema := seaBatches(t, 50, 50, 3)
	for _, mode := range []Mode{ModeSnapshot, ModeSharded} {
		s, err := New(Config{Model: "DMT", Schema: schema, Mode: mode, PublishOnChange: true, Shards: 2})
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		for _, b := range batches {
			s.Learn(b)
		}
	}
	if _, err := New(Config{Model: "GLM", Schema: schema, PublishOnChange: true}); err == nil {
		t.Fatal("registry-driven on-change accepted GLM")
	}
}

// TestShardedRestoreIsAtomic: a corrupt checkpoint must leave a
// ShardedScorer completely untouched — never serving a mix of restored
// and pre-restore replicas.
func TestShardedRestoreIsAtomic(t *testing.T) {
	batches, schema := seaBatches(t, 30, 50, 21)
	mk := func() Scorer {
		s, err := New(Config{Model: "DMT", Schema: schema, Mode: ModeSharded, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	source := mk()
	for _, b := range batches {
		source.Learn(b)
	}
	var ckpt bytes.Buffer
	if err := source.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Target and reference scorers share a different training history.
	target, reference := mk(), mk()
	for _, b := range batches[:10] {
		target.Learn(b)
		reference.Learn(b)
	}
	// Truncate inside the LAST shard's envelope: with the old in-place
	// restore, shards 0 and 1 would already be swapped when the error
	// surfaces.
	truncated := ckpt.Bytes()[:ckpt.Len()-20]
	if err := target.Restore(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated sharded checkpoint accepted")
	}
	var pa, pb []int
	for _, b := range batches {
		pa = target.PredictBatch(b.X, pa)
		pb = reference.PredictBatch(b.X, pb)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("failed Restore mutated shard state")
			}
		}
	}
	// And the intact checkpoint still restores fully.
	if err := target.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		pa = target.PredictBatch(b.X, pa)
		pb = source.PredictBatch(b.X, pb)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("restored sharded scorer diverged from checkpoint source")
			}
		}
	}
}

// BenchmarkPublishEveryOp and BenchmarkPublishOnChangeOp measure the
// publish-rate drop of the satellite: same model, same stream, the only
// difference is the publish policy. The publishes/batch metric is the
// headline number; ns/op shows the saved clone time.
func benchmarkPublishPolicy(b *testing.B, onChange bool) {
	batches, schema := seaBatches(b, 256, 50, 42)
	c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(9))
	if err != nil {
		b.Fatal(err)
	}
	var s *SnapshotScorer
	if onChange {
		s, err = NewSnapshotOnChange(c)
	} else {
		s, err = NewSnapshot(c, 1)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Learn(batches[i%len(batches)])
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Publishes())/float64(b.N), "publishes/batch")
}

func BenchmarkPublishEveryOp(b *testing.B)    { benchmarkPublishPolicy(b, false) }
func BenchmarkPublishOnChangeOp(b *testing.B) { benchmarkPublishPolicy(b, true) }
