package serve

import (
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
	"repro/internal/synth"

	// Pull in every learner registration so the registry-driven
	// constructors can build all paper models.
	_ "repro/internal/core"
	_ "repro/internal/efdt"
	_ "repro/internal/ensemble"
	_ "repro/internal/fimtdd"
	_ "repro/internal/glm"
	_ "repro/internal/hatada"
	_ "repro/internal/hoeffding"
	_ "repro/internal/nbayes"
)

// seaBatches materialises n batches of the SEA stream.
func seaBatches(t testing.TB, n, size int, seed int64) ([]stream.Batch, stream.Schema) {
	t.Helper()
	gen := synth.NewSEA(n*size+size, 0.1, seed)
	out := make([]stream.Batch, n)
	for i := range out {
		b, err := stream.NextBatch(gen, size)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out, gen.Schema()
}

// multiclassBatches materialises a 4-class cluster stream, exercising
// the Softmax leaf models.
func multiclassBatches(t testing.TB, n, size int, seed int64) ([]stream.Batch, stream.Schema) {
	t.Helper()
	gen := synth.NewCluster(synth.ClusterConfig{
		Name: "serve4", Samples: n*size + size, Features: 3, Classes: 4, Seed: seed,
	})
	out := make([]stream.Batch, n)
	for i := range out {
		b, err := stream.NextBatch(gen, size)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out, gen.Schema()
}

// assertSameReads fails when the two scorers disagree on any probe row
// (prediction or probability vector, bitwise).
func assertSameReads(t *testing.T, name string, a, b Scorer, probes [][]float64, classes int) {
	t.Helper()
	pa, pb := make([]float64, classes), make([]float64, classes)
	for i, x := range probes {
		ya, yb := a.Predict(x), b.Predict(x)
		if ya != yb {
			t.Fatalf("%s: Predict diverges at probe %d: %d vs %d", name, i, ya, yb)
		}
		pa, pb = a.Proba(x, pa), b.Proba(x, pb)
		if len(pa) != len(pb) {
			t.Fatalf("%s: Proba lengths diverge: %d vs %d", name, len(pa), len(pb))
		}
		for k := range pa {
			if pa[k] != pb[k] {
				t.Fatalf("%s: Proba[%d] diverges at probe %d: %v vs %v", name, k, i, pa[k], pb[k])
			}
		}
	}
}

// Every registered model must serve byte-identical predictions through
// the lock-free snapshot scorer and the RWMutex scorer at every publish
// point — the core acceptance criterion of the snapshot rework.
func TestSnapshotMatchesLockedAllModels(t *testing.T) {
	batches, schema := seaBatches(t, 12, 100, 3)
	probes := batches[len(batches)-1].X
	for _, name := range registry.Names() {
		t.Run(name, func(t *testing.T) {
			locked, err := New(Config{Model: name, Schema: schema, Mode: ModeLocked,
				Options: []registry.Option{registry.WithSeed(7)}})
			if err != nil {
				t.Fatal(err)
			}
			snap, err := New(Config{Model: name, Schema: schema, Mode: ModeSnapshot,
				Options: []registry.Option{registry.WithSeed(7)}})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := snap.(*SnapshotScorer); !ok {
				t.Fatalf("registered model %q did not get a snapshot scorer", name)
			}
			assertSameReads(t, name, locked, snap, probes, schema.NumClasses)
			for k, b := range batches[:len(batches)-1] {
				locked.Learn(b)
				snap.Learn(b)
				assertSameReads(t, name, locked, snap, probes, schema.NumClasses)
				if lc, sc := locked.Complexity(), snap.Complexity(); lc != sc {
					t.Fatalf("%s: complexity diverges after batch %d: %+v vs %+v", name, k, lc, sc)
				}
			}
		})
	}
}

// Multiclass variant: Softmax leaf models and 4-class NB must survive
// the same equivalence.
func TestSnapshotMatchesLockedMulticlass(t *testing.T) {
	batches, schema := multiclassBatches(t, 8, 100, 5)
	probes := batches[len(batches)-1].X
	for _, name := range []string{"DMT", "FIMT-DD", "GLM", "Naive Bayes", "VFDT (NBA)"} {
		locked, err := New(Config{Model: name, Schema: schema, Mode: ModeLocked,
			Options: []registry.Option{registry.WithSeed(2)}})
		if err != nil {
			t.Fatal(err)
		}
		snap, err := New(Config{Model: name, Schema: schema, Mode: ModeSnapshot,
			Options: []registry.Option{registry.WithSeed(2)}})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:len(batches)-1] {
			locked.Learn(b)
			snap.Learn(b)
		}
		assertSameReads(t, name, locked, snap, probes, schema.NumClasses)
	}
}

// A snapshot published after batch k must predict identically to a
// sequential model trained on exactly k batches — including between
// publishes, where the scorer serves the last published state.
func TestPublishCadenceStaleness(t *testing.T) {
	const publishEvery = 3
	batches, schema := seaBatches(t, 10, 100, 9)
	probes := batches[len(batches)-1].X

	// Record the reference predictions of a bare model after each k.
	ref, err := registry.New("DMT", schema, registry.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	refPreds := make([][]int, len(batches))
	record := func(k int) {
		refPreds[k] = make([]int, len(probes))
		for i, x := range probes {
			refPreds[k][i] = ref.Predict(x)
		}
	}
	record(0)
	for k, b := range batches[:len(batches)-1] {
		ref.Learn(b)
		record(k + 1)
	}

	scorer, err := NewSnapshot(registryMust(t, "DMT", schema, 4), publishEvery)
	if err != nil {
		t.Fatal(err)
	}
	published := 0
	for k, b := range batches[:len(batches)-1] {
		scorer.Learn(b)
		if (k+1)%publishEvery == 0 {
			published = k + 1
		}
		for i, x := range probes {
			if got := scorer.Predict(x); got != refPreds[published][i] {
				t.Fatalf("after batch %d (published %d): probe %d = %d, want %d",
					k+1, published, i, got, refPreds[published][i])
			}
		}
	}
	// A forced publish catches the scorer up to the live model.
	scorer.Publish()
	last := len(batches) - 1
	for i, x := range probes {
		if got := scorer.Predict(x); got != refPreds[last][i] {
			t.Fatalf("after forced publish: probe %d = %d, want %d", i, got, refPreds[last][i])
		}
	}
}

func registryMust(t *testing.T, name string, schema stream.Schema, seed int64) model.Classifier {
	t.Helper()
	c, err := registry.New(name, schema, registry.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The batch read APIs must agree with the per-row ones and serve the
// whole batch from one state.
func TestBatchReadsMatchRowReads(t *testing.T) {
	batches, schema := seaBatches(t, 6, 100, 13)
	for _, mode := range []Mode{ModeLocked, ModeSnapshot, ModeSharded} {
		s, err := New(Config{Model: "VFDT (NBA)", Schema: schema, Mode: mode, Shards: 3,
			Options: []registry.Option{registry.WithSeed(3)}})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:5] {
			s.Learn(b)
		}
		X := batches[5].X
		preds := s.PredictBatch(X, nil)
		probas := s.ProbaBatch(X, nil)
		single := make([]float64, schema.NumClasses)
		for i, x := range X {
			if got := s.Predict(x); got != preds[i] {
				t.Fatalf("%s: PredictBatch[%d] = %d, Predict = %d", mode, i, preds[i], got)
			}
			single = s.Proba(x, single)
			for k := range single {
				if probas[i][k] != single[k] {
					t.Fatalf("%s: ProbaBatch[%d][%d] = %v, Proba = %v", mode, i, k, probas[i][k], single[k])
				}
			}
		}
		// Reuse: the returned buffers must be reusable without growth.
		preds2 := s.PredictBatch(X, preds)
		if &preds2[0] != &preds[0] {
			t.Fatalf("%s: PredictBatch reallocated a sufficient out buffer", mode)
		}
	}
}

// Sharded serving: deterministic routing, replicated construction
// determinism, and summed complexity.
func TestShardedScorer(t *testing.T) {
	batches, schema := seaBatches(t, 10, 200, 17)
	build := func() Scorer {
		s, err := New(Config{Model: "VFDT", Schema: schema, Mode: ModeSharded, Shards: 3,
			Options: []registry.Option{registry.WithSeed(5)}})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	for _, batch := range batches[:9] {
		a.Learn(batch)
		b.Learn(batch)
	}
	sh := a.(*ShardedScorer)
	if sh.NumShards() != 3 {
		t.Fatalf("NumShards = %d", sh.NumShards())
	}
	// Two identical builds must agree on every probe (deterministic
	// hashing and per-shard seeds).
	for i, x := range batches[9].X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("sharded scorers diverge at probe %d", i)
		}
	}
	// Complexity sums the replicas: at least one leaf per shard.
	comp := a.Complexity()
	if comp.Leaves < 3 {
		t.Fatalf("summed complexity reports %d leaves, want >= 3", comp.Leaves)
	}
	var want model.Complexity
	for i := 0; i < sh.NumShards(); i++ {
		want = want.Add(sh.Shard(i).Complexity())
	}
	if comp != want {
		t.Fatalf("Complexity() = %+v, sum of shards = %+v", comp, want)
	}
}

// nonSnapshotClassifier is a minimal external model without Snapshot.
type nonSnapshotClassifier struct{ n int }

func (c *nonSnapshotClassifier) Learn(b stream.Batch)         { c.n += b.Len() }
func (c *nonSnapshotClassifier) Predict(x []float64) int      { return 1 }
func (c *nonSnapshotClassifier) Complexity() model.Complexity { return model.Complexity{} }
func (c *nonSnapshotClassifier) Name() string                 { return "external" }

// External learners without Snapshot support degrade to the lock-based
// scorer through Wrap, and NewSnapshot reports them.
func TestNonSnapshotFallback(t *testing.T) {
	if _, err := NewSnapshot(&nonSnapshotClassifier{}, 1); err == nil {
		t.Fatal("NewSnapshot accepted a classifier without Snapshot")
	}
	s := Wrap(&nonSnapshotClassifier{}, 1)
	if _, ok := s.(*LockScorer); !ok {
		t.Fatalf("Wrap returned %T, want *LockScorer", s)
	}
	// The one-hot Proba fallback grows in place to exactly y+1 entries.
	x := []float64{0}
	out := s.Proba(x, make([]float64, 0, 8))
	if len(out) != 2 || out[1] != 1 || out[0] != 0 {
		t.Fatalf("one-hot fallback = %v", out)
	}
	if avg := testing.AllocsPerRun(100, func() { out = s.Proba(x, out) }); avg != 0 {
		t.Fatalf("one-hot fallback with sufficient cap allocates %.2f allocs/op", avg)
	}
}

// OneHot keeps a covering buffer's length and grows short ones in place.
func TestOneHotSemantics(t *testing.T) {
	long := OneHot(1, make([]float64, 5))
	if len(long) != 5 || long[1] != 1 {
		t.Fatalf("covering buffer: %v", long)
	}
	buf := make([]float64, 0, 8)
	grown := OneHot(3, buf)
	if len(grown) != 4 || grown[3] != 1 {
		t.Fatalf("grown buffer: %v", grown)
	}
	if &grown[0] != &buf[:1][0] {
		t.Fatal("OneHot abandoned a sufficient backing array")
	}
}

// ParseMode accepts the three modes (and "" as snapshot) and rejects
// anything else.
func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": ModeSnapshot, "snapshot": ModeSnapshot,
		"locked": ModeLocked, "sharded": ModeSharded} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus")
	}
}

// Wait-free reads must not allocate: Predict and Proba (with an out
// buffer) on a warmed snapshot scorer, plus PredictBatch with a
// preallocated out slice.
func TestSnapshotReadsZeroAlloc(t *testing.T) {
	batches, schema := seaBatches(t, 6, 100, 19)
	for _, name := range []string{"DMT", "Naive Bayes", "VFDT (NBA)"} {
		s, err := New(Config{Model: name, Schema: schema,
			Options: []registry.Option{registry.WithSeed(6)}})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:5] {
			s.Learn(b)
		}
		x := batches[5].X[0]
		out := make([]float64, schema.NumClasses)
		preds := make([]int, len(batches[5].X))
		if avg := testing.AllocsPerRun(200, func() { s.Predict(x) }); avg != 0 {
			t.Fatalf("%s: snapshot Predict allocates %.2f allocs/op", name, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { s.Proba(x, out) }); avg != 0 {
			t.Fatalf("%s: snapshot Proba allocates %.2f allocs/op", name, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { preds = s.PredictBatch(batches[5].X, preds) }); avg != 0 {
			t.Fatalf("%s: snapshot PredictBatch allocates %.2f allocs/op", name, avg)
		}
	}
}

// The -race hammer of the satellite task: concurrent Predict/Proba and
// batch reads against a learning FIMT-DD, GLM and Naive Bayes under
// both scorer implementations.
func TestConcurrentReadsDuringLearn(t *testing.T) {
	for _, name := range []string{"FIMT-DD", "GLM", "Naive Bayes"} {
		for _, mode := range []Mode{ModeLocked, ModeSnapshot} {
			t.Run(name+"/"+string(mode), func(t *testing.T) {
				batches, schema := seaBatches(t, 40, 100, 23)
				s, err := New(Config{Model: name, Schema: schema, Mode: mode,
					Options: []registry.Option{registry.WithSeed(8)}})
				if err != nil {
					t.Fatal(err)
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for r := 0; r < 4; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						probe := batches[r].X[r]
						proba := make([]float64, schema.NumClasses)
						var preds []int
						var probas [][]float64
						for {
							select {
							case <-stop:
								return
							default:
							}
							if y := s.Predict(probe); y < 0 || y >= schema.NumClasses {
								t.Errorf("reader %d got class %d", r, y)
								return
							}
							proba = s.Proba(probe, proba)
							preds = s.PredictBatch(batches[r].X[:8], preds)
							probas = s.ProbaBatch(batches[r].X[:8], probas)
							_ = s.Complexity()
						}
					}(r)
				}
				for _, b := range batches {
					s.Learn(b)
				}
				close(stop)
				wg.Wait()
			})
		}
	}
}
