package serve

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/registry"
)

// In publish-on-change mode a Checkpoint with an unmoved structure
// version re-serves the cached capture byte-for-byte instead of
// re-encoding, and a moved version recaptures.
func TestCheckpointCacheOnChange(t *testing.T) {
	batches, schema := seaBatches(t, 400, 50, 42)
	c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshotOnChange(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:200] {
		s.Learn(b)
	}
	sv := s.Unwrap().(model.StructureVersioner)
	if sv.StructureVersion() == 0 {
		t.Fatal("precondition: the tree should have split at least once")
	}

	var a, b bytes.Buffer
	if err := s.Checkpoint(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("back-to-back checkpoints at one version differ")
	}

	// Advance the structure version; the next checkpoint must reflect it.
	v0 := sv.StructureVersion()
	for _, batch := range batches[200:] {
		s.Learn(batch)
		if sv.StructureVersion() != v0 {
			break
		}
	}
	if sv.StructureVersion() == v0 {
		t.Fatal("structure version never moved across 200 batches")
	}
	var c2 bytes.Buffer
	if err := s.Checkpoint(&c2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c2.Bytes()) {
		t.Fatal("checkpoint did not recapture after the version moved")
	}
	_, h, err := persist.ReadRaw(bytes.NewReader(c2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasStructVersion || h.StructVersion != sv.StructureVersion() {
		t.Fatalf("cached checkpoint header at version %d, live is %d", h.StructVersion, sv.StructureVersion())
	}
}

// CheckpointDelta emits a full envelope first, then delta envelopes
// whose chain reconstructs the current checkpoint byte-identically.
func TestCheckpointDeltaChainRoundTrip(t *testing.T) {
	batches, schema := seaBatches(t, 400, 50, 7)
	c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshotOnChange(c)
	if err != nil {
		t.Fatal(err)
	}
	sv := s.Unwrap().(model.StructureVersioner)

	var first bytes.Buffer
	full, err := s.CheckpointDelta(&first)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("first CheckpointDelta was not a full envelope")
	}
	base := append([]byte(nil), first.Bytes()...)

	var deltas []*persist.Delta
	captured := 0
	for i := 0; i < len(batches) && captured < 3; i++ {
		v := sv.StructureVersion()
		s.Learn(batches[i])
		if sv.StructureVersion() == v {
			continue
		}
		var buf bytes.Buffer
		full, err := s.CheckpointDelta(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if full {
			t.Fatalf("capture %d fell back to a full envelope", captured)
		}
		d, err := persist.ReadDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
		captured++
	}
	if captured < 3 {
		t.Fatalf("only %d structural events in %d batches", captured, len(batches))
	}

	head, err := persist.ApplyChain(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := s.Checkpoint(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, want.Bytes()) {
		t.Fatal("base+delta chain is not byte-identical to the full checkpoint")
	}
	if _, err := persist.Load(bytes.NewReader(head)); err != nil {
		t.Fatalf("reconstructed head does not load: %v", err)
	}
}

// A Restore resets both the capture cache and the delta base: the next
// CheckpointDelta after a hot swap is a full envelope again.
func TestCheckpointDeltaResetOnRestore(t *testing.T) {
	batches, schema := seaBatches(t, 100, 50, 21)
	c, err := registry.New("VFDT (MC)", schema, registry.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshotOnChange(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		s.Learn(b)
	}
	var first bytes.Buffer
	if full, err := s.CheckpointDelta(&first); err != nil || !full {
		t.Fatalf("first capture: full=%v err=%v", full, err)
	}
	if err := s.Restore(bytes.NewReader(first.Bytes())); err != nil {
		t.Fatal(err)
	}
	var next bytes.Buffer
	full, err := s.CheckpointDelta(&next)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("CheckpointDelta after Restore did not reset to a full envelope")
	}
}
