package serve

import (
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/synth"
)

// metaScorers builds one scorer of each implementation over a VFDT (the
// SEA concept makes it split, so the structure version moves).
func metaScorers(t *testing.T) map[string]Scorer {
	t.Helper()
	schema := synth.NewSEA(100, 0.1, 1).Schema()
	out := map[string]Scorer{}
	for _, mode := range []Mode{ModeLocked, ModeSnapshot, ModeSharded} {
		s, err := New(Config{Model: "VFDT (MC)", Schema: schema, Mode: mode, Shards: 2})
		if err != nil {
			t.Fatalf("New(%s): %v", mode, err)
		}
		out[string(mode)] = s
	}
	return out
}

// trainSome feeds a few SEA batches through the scorer.
func trainSome(t *testing.T, s Scorer, seed int64, batches int) {
	t.Helper()
	gen := synth.NewSEA(batches*100, 0.1, seed)
	for i := 0; i < batches; i++ {
		b, err := stream.NextBatch(gen, 100)
		if err != nil {
			t.Fatal(err)
		}
		s.Learn(b)
	}
}

// Every Scorer implementation exposes the served model's schema, so the
// network tier can validate request row width before dispatch.
func TestScorerSchema(t *testing.T) {
	want := synth.NewSEA(100, 0.1, 1).Schema()
	for mode, s := range metaScorers(t) {
		got := s.Schema()
		if got.NumFeatures != want.NumFeatures || got.NumClasses != want.NumClasses {
			t.Errorf("%s: Schema() = %d features / %d classes, want %d / %d",
				mode, got.NumFeatures, got.NumClasses, want.NumFeatures, want.NumClasses)
		}
	}
}

// A scorer over a classifier that exposes no schema yields the zero
// Schema instead of failing construction.
func TestScorerSchemaUnavailable(t *testing.T) {
	s := NewLocked(constClassifier{})
	if got := s.Schema(); got.NumFeatures != 0 || got.NumClasses != 0 {
		t.Fatalf("Schema() of schemaless classifier = %+v, want zero", got)
	}
	if _, ok := s.StructureVersion(); ok {
		t.Fatal("StructureVersion() of versionless classifier reports ok")
	}
}

// constClassifier is a minimal schemaless model.Classifier.
type constClassifier struct{}

func (constClassifier) Learn(stream.Batch)           {}
func (constClassifier) Predict([]float64) int        { return 0 }
func (constClassifier) Complexity() model.Complexity { return model.Complexity{} }
func (constClassifier) Name() string                 { return "const" }

// StructureVersion moves with training on every implementation, and the
// snapshot scorer reports the *published* version: in on-change mode the
// published version tracks the live one exactly at publish points.
func TestScorerStructureVersion(t *testing.T) {
	for mode, s := range metaScorers(t) {
		v0, ok := s.StructureVersion()
		if !ok {
			t.Fatalf("%s: VFDT scorer reports no structure version", mode)
		}
		// Enough rows that even the sharded replicas (each seeing 1/2 of
		// the stream) accumulate past the grace period and split.
		trainSome(t, s, 7, 240)
		v1, ok := s.StructureVersion()
		if !ok {
			t.Fatalf("%s: structure version lost after training", mode)
		}
		if v1 < v0 {
			t.Errorf("%s: structure version went backwards: %d -> %d", mode, v0, v1)
		}
		if v1 == 0 {
			t.Errorf("%s: structure version still 0 after 24000 SEA rows (no split?)", mode)
		}
	}
}

// Empty and nil batches short-circuit: an empty result, no lock
// acquisition, no snapshot load, no per-shard dispatch — and a reused
// out buffer is truncated, not kept at its stale length.
func TestBatchEmptyAndNil(t *testing.T) {
	for mode, s := range metaScorers(t) {
		trainSome(t, s, 3, 5)
		for _, X := range [][][]float64{nil, {}} {
			if got := s.PredictBatch(X, nil); len(got) != 0 {
				t.Errorf("%s: PredictBatch(%v, nil) has %d rows, want 0", mode, X, len(got))
			}
			stale := make([]int, 7)
			if got := s.PredictBatch(X, stale); len(got) != 0 {
				t.Errorf("%s: PredictBatch(%v, stale) has %d rows, want 0", mode, X, len(got))
			}
			if got := s.ProbaBatch(X, nil); len(got) != 0 {
				t.Errorf("%s: ProbaBatch(%v, nil) has %d rows, want 0", mode, X, len(got))
			}
			staleRows := make([][]float64, 4)
			if got := s.ProbaBatch(X, staleRows); len(got) != 0 {
				t.Errorf("%s: ProbaBatch(%v, stale) has %d rows, want 0", mode, X, len(got))
			}
		}
		// An empty Learn is a no-op, not a per-shard dispatch.
		s.Learn(stream.Batch{})
	}
}
