package serve_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/race"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synth"
)

// The racer implements the full Scorer contract structurally (the race
// package cannot import serve), so pin it at compile time here.
var _ serve.Scorer = (*race.Racer)(nil)

func raceSchemaStream(samples int, seed int64) stream.Stream {
	return synth.NewHyperplane(samples, 4, 0.03, seed)
}

// TestServeRaceSpec builds a racer through the registry-driven serving
// constructor with the "race:" model spec grammar.
func TestServeRaceSpec(t *testing.T) {
	s := raceSchemaStream(2_000, 5)
	sc, err := serve.New(serve.Config{Model: "race:glm,nb,vfdt", Schema: s.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := sc.(*race.Racer)
	if !ok {
		t.Fatalf("race spec built a %T, want *race.Racer", sc)
	}
	if got := r.Name(); !strings.Contains(got, "GLM") || !strings.Contains(got, "VFDT") {
		t.Fatalf("racer name %q does not list the resolved arms", got)
	}
	for i := 0; i < 20; i++ {
		b, err := stream.NextBatch(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		sc.Learn(b)
	}
	if sc.Predict([]float64{0.1, 0.2, 0.3, 0.4}) < 0 {
		t.Fatal("racer served no prediction")
	}
	if _, err := serve.New(serve.Config{Model: "race:glm,nosuch", Schema: s.Schema()}); err == nil {
		t.Fatal("unknown arm in a race spec must fail")
	}
}

// TestFromCheckpointRace round-trips a racer through the generic
// scorer checkpoint bootstrap: the "RACE" magic dispatches to the race
// loader and the restored scorer serves identically.
func TestFromCheckpointRace(t *testing.T) {
	s := raceSchemaStream(3_000, 9)
	sc, err := serve.New(serve.Config{Model: "race:glm,nb", Schema: s.Schema()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		b, err := stream.NextBatch(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		sc.Learn(b)
	}
	var ck bytes.Buffer
	if err := sc.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	restored, err := serve.FromCheckpoint(bytes.NewReader(ck.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.(*race.Racer); !ok {
		t.Fatalf("RACE bytes reconstructed a %T, want *race.Racer", restored)
	}
	rows := [][]float64{
		{0.1, 0.9, 0.4, 0.2},
		{0.8, 0.1, 0.6, 0.7},
		{0.5, 0.5, 0.5, 0.5},
	}
	var a, b []int
	a = sc.PredictBatch(rows, a)
	b = restored.PredictBatch(rows, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored racer predicts %v, original %v", b, a)
		}
	}
	va, oka := sc.StructureVersion()
	vb, okb := restored.StructureVersion()
	if va != vb || oka != okb {
		t.Fatalf("restored structure version %d/%v, want %d/%v", vb, okb, va, oka)
	}
}
