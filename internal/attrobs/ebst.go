package attrobs

import (
	"math"

	"repro/internal/split"
)

// EBST is the extended binary search tree of Ikonomovska et al.: it
// indexes the observed values of one numeric feature and stores, at each
// node, the target statistics of all observations with value <= the node's
// key that were routed through it. An in-order traversal then yields, for
// every distinct observed value, the exact left-branch target statistics,
// from which the standard deviation reduction of each candidate threshold
// follows. The paper cites E-BSTs as the memory-management strategy of
// FIMT-DD (Section V-D).
type EBST struct {
	root     *ebstNode
	size     int
	maxNodes int
}

type ebstNode struct {
	key         float64
	le          split.TargetStats // stats of observations with value <= key at this node
	left, right *ebstNode
}

// NewEBST returns a tree storing at most maxNodes distinct values; further
// values merge into the nearest existing node, bounding memory.
func NewEBST(maxNodes int) *EBST {
	if maxNodes < 16 {
		maxNodes = 16
	}
	return &EBST{maxNodes: maxNodes}
}

// Size returns the number of distinct stored keys.
func (t *EBST) Size() int { return t.size }

// Observe inserts a (feature value, target) observation.
func (t *EBST) Observe(value, target, weight float64) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return
	}
	if t.root == nil {
		t.root = &ebstNode{key: value}
		t.root.le.Add(target, weight)
		t.size = 1
		return
	}
	node := t.root
	for {
		if value <= node.key {
			node.le.Add(target, weight)
			if value == node.key {
				return
			}
			if node.left == nil {
				if t.size >= t.maxNodes {
					return // statistics folded into this node's <= side
				}
				child := &ebstNode{key: value}
				child.le.Add(target, weight)
				node.left = child
				t.size++
				return
			}
			node = node.left
		} else {
			if node.right == nil {
				if t.size >= t.maxNodes {
					// Fold into the nearest key on the > side: attribute the
					// mass to this node's key so totals stay consistent.
					node.le.Add(target, weight)
					return
				}
				child := &ebstNode{key: value}
				child.le.Add(target, weight)
				node.right = child
				t.size++
				return
			}
			node = node.right
		}
	}
}

// BestSDRSplit scans all candidate thresholds and returns the one with the
// highest standard deviation reduction together with the runner-up merit
// (needed for FIMT-DD's Hoeffding ratio test). total must be the target
// statistics of every observation fed to Observe.
func (t *EBST) BestSDRSplit(feature int, total split.TargetStats) (best CandidateSplit, second float64, ok bool) {
	if t.root == nil || total.N < 2 {
		return CandidateSplit{}, 0, false
	}
	best = CandidateSplit{Feature: feature, Merit: math.Inf(-1)}
	second = math.Inf(-1)
	var walk func(n *ebstNode, carry split.TargetStats) split.TargetStats
	walk = func(n *ebstNode, carry split.TargetStats) split.TargetStats {
		if n == nil {
			return carry
		}
		// Left subtree first. Its return value is deliberately unused:
		// n.le already includes the left subtree's mass, so the left
		// total at this key is carry + n.le.
		walk(n.left, carry)
		leftStats := carry.Merge(n.le)
		right := total.Sub(leftStats)
		if leftStats.N >= 1 && right.N >= 1 {
			m := split.SDR(total, leftStats, right)
			if m > best.Merit {
				second = best.Merit
				best = CandidateSplit{Feature: feature, Threshold: n.key, Merit: m}
			} else if m > second {
				second = m
			}
		}
		return walk(n.right, leftStats)
	}
	walk(t.root, split.TargetStats{})
	if math.IsInf(best.Merit, -1) {
		return CandidateSplit{}, 0, false
	}
	if math.IsInf(second, -1) {
		second = 0
	}
	return best, second, true
}
