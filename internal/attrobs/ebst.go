package attrobs

import (
	"math"

	"repro/internal/split"
)

// EBST is the extended binary search tree of Ikonomovska et al.: it
// indexes the observed values of one numeric feature and stores, at each
// node, the target statistics of all observations with value <= the node's
// key that were routed through it. An in-order traversal then yields, for
// every distinct observed value, the exact left-branch target statistics,
// from which the standard deviation reduction of each candidate threshold
// follows. The paper cites E-BSTs as the memory-management strategy of
// FIMT-DD (Section V-D).
type EBST struct {
	root     *ebstNode
	size     int
	maxNodes int
}

type ebstNode struct {
	key         float64
	le          split.TargetStats // stats of observations with value <= key at this node
	left, right *ebstNode
}

// NewEBST returns a tree storing at most maxNodes distinct values; further
// values merge into the nearest existing node, bounding memory.
func NewEBST(maxNodes int) *EBST {
	if maxNodes < 16 {
		maxNodes = 16
	}
	return &EBST{maxNodes: maxNodes}
}

// Size returns the number of distinct stored keys.
func (t *EBST) Size() int { return t.size }

// Observe inserts a (feature value, target) observation.
func (t *EBST) Observe(value, target, weight float64) {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return
	}
	if t.root == nil {
		t.root = &ebstNode{key: value}
		t.root.le.Add(target, weight)
		t.size = 1
		return
	}
	node := t.root
	for {
		if value <= node.key {
			node.le.Add(target, weight)
			if value == node.key {
				return
			}
			if node.left == nil {
				if t.size >= t.maxNodes {
					return // statistics folded into this node's <= side
				}
				child := &ebstNode{key: value}
				child.le.Add(target, weight)
				node.left = child
				t.size++
				return
			}
			node = node.left
		} else {
			if node.right == nil {
				if t.size >= t.maxNodes {
					// Fold into the nearest key on the > side: attribute the
					// mass to this node's key so totals stay consistent.
					node.le.Add(target, weight)
					return
				}
				child := &ebstNode{key: value}
				child.le.Add(target, weight)
				node.right = child
				t.size++
				return
			}
			node = node.right
		}
	}
}

// sdrScan accumulates the best and runner-up SDR merit over an in-order
// E-BST traversal. A method-based recursion (instead of a closure) keeps
// the periodic split scan allocation-free.
type sdrScan struct {
	feature int
	total   split.TargetStats
	best    CandidateSplit
	second  float64
}

// walk visits n in order. Its left-subtree return value at each node is
// deliberately unused: n.le already includes the left subtree's mass, so
// the left total at this key is carry + n.le.
func (s *sdrScan) walk(n *ebstNode, carry split.TargetStats) split.TargetStats {
	if n == nil {
		return carry
	}
	s.walk(n.left, carry)
	leftStats := carry.Merge(n.le)
	right := s.total.Sub(leftStats)
	if leftStats.N >= 1 && right.N >= 1 {
		m := split.SDR(s.total, leftStats, right)
		if m > s.best.Merit {
			s.second = s.best.Merit
			s.best = CandidateSplit{Feature: s.feature, Threshold: n.key, Merit: m}
		} else if m > s.second {
			s.second = m
		}
	}
	return s.walk(n.right, leftStats)
}

// BestSDRSplit scans all candidate thresholds and returns the one with the
// highest standard deviation reduction together with the runner-up merit
// (needed for FIMT-DD's Hoeffding ratio test). When the feature has only
// one valid threshold, second is -Inf — the caller must be able to tell
// "no runner-up exists" apart from a genuine runner-up with zero or
// negative merit, so no sentinel remapping happens here. total must be
// the target statistics of every observation fed to Observe. The scan
// allocates nothing.
func (t *EBST) BestSDRSplit(feature int, total split.TargetStats) (best CandidateSplit, second float64, ok bool) {
	if t.root == nil || total.N < 2 {
		return CandidateSplit{}, 0, false
	}
	scan := sdrScan{
		feature: feature,
		total:   total,
		best:    CandidateSplit{Feature: feature, Merit: math.Inf(-1)},
		second:  math.Inf(-1),
	}
	scan.walk(t.root, split.TargetStats{})
	if math.IsInf(scan.best.Merit, -1) {
		return CandidateSplit{}, 0, false
	}
	return scan.best, scan.second, true
}
