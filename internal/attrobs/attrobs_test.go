package attrobs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/split"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestGaussianObserverFindsSeparator(t *testing.T) {
	obs := NewGaussian(2, 10)
	rng := rand.New(rand.NewSource(1))
	// class 0 around 0.2, class 1 around 0.8
	for i := 0; i < 5000; i++ {
		obs.Observe(0.2+0.05*rng.NormFloat64(), 0, 1)
		obs.Observe(0.8+0.05*rng.NormFloat64(), 1, 1)
	}
	merit := func(post [][]float64) float64 {
		pre := []float64{obs.ClassWeight(0), obs.ClassWeight(1)}
		return (split.InfoGain{}).Merit(pre, post)
	}
	cand, ok := obs.BestSplit(3, merit)
	if !ok {
		t.Fatal("no split found on separable data")
	}
	if cand.Feature != 3 {
		t.Fatalf("feature = %d", cand.Feature)
	}
	if cand.Threshold < 0.3 || cand.Threshold > 0.7 {
		t.Fatalf("threshold = %v, want between the clusters", cand.Threshold)
	}
	if cand.Merit < 0.9 {
		t.Fatalf("merit = %v, want near 1", cand.Merit)
	}
	// Branch distributions: left mostly class 0, right mostly class 1.
	if cand.Post[0][0] < cand.Post[0][1] || cand.Post[1][1] < cand.Post[1][0] {
		t.Fatalf("post distributions wrong: %v", cand.Post)
	}
}

func TestGaussianObserverNoSpread(t *testing.T) {
	obs := NewGaussian(2, 10)
	for i := 0; i < 100; i++ {
		obs.Observe(0.5, i%2, 1)
	}
	if _, ok := obs.BestSplit(0, func([][]float64) float64 { return 1 }); ok {
		t.Fatal("constant feature must yield no split")
	}
	empty := NewGaussian(2, 10)
	if _, ok := empty.BestSplit(0, func([][]float64) float64 { return 1 }); ok {
		t.Fatal("empty observer must yield no split")
	}
}

func TestGaussianObserverIgnoresBadInput(t *testing.T) {
	obs := NewGaussian(2, 10)
	obs.Observe(math.NaN(), 0, 1)
	obs.Observe(math.Inf(1), 1, 1)
	obs.Observe(0.5, -1, 1)
	obs.Observe(0.5, 99, 1)
	if obs.ClassWeight(0) != 0 || obs.ClassWeight(1) != 0 {
		t.Fatal("bad observations were recorded")
	}
	if obs.ClassWeight(-5) != 0 {
		t.Fatal("out-of-range class weight")
	}
}

func TestGaussianDistributionsAtConservation(t *testing.T) {
	obs := NewGaussian(3, 10)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		obs.Observe(rng.Float64(), rng.Intn(3), 1)
	}
	left, right := obs.DistributionsAt(0.5)
	for k := 0; k < 3; k++ {
		if !almostEq(left[k]+right[k], obs.ClassWeight(k), 1e-9) {
			t.Fatalf("class %d mass not conserved: %v + %v != %v", k, left[k], right[k], obs.ClassWeight(k))
		}
	}
}

func TestGaussianPdfFallback(t *testing.T) {
	obs := NewGaussian(2, 10)
	if obs.Pdf(0.5, 0) != 1 {
		t.Fatal("empty class Pdf should be uninformative (1)")
	}
}

// bruteForceSDR computes the best SDR split by sorting the raw data.
func bruteForceSDR(values, targets []float64) (bestThreshold, bestSDR float64) {
	type pair struct{ v, t float64 }
	pairs := make([]pair, len(values))
	for i := range values {
		pairs[i] = pair{values[i], targets[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	var total split.TargetStats
	for _, p := range pairs {
		total.Add(p.t, 1)
	}
	bestSDR = math.Inf(-1)
	var left split.TargetStats
	for i := 0; i < len(pairs); i++ {
		left.Add(pairs[i].t, 1)
		if i+1 < len(pairs) && pairs[i+1].v == pairs[i].v {
			continue // threshold must sit at the last duplicate
		}
		right := total.Sub(left)
		if left.N < 1 || right.N < 1 {
			continue
		}
		if sdr := split.SDR(total, left, right); sdr > bestSDR {
			bestSDR = sdr
			bestThreshold = pairs[i].v
		}
	}
	return bestThreshold, bestSDR
}

// Property: the E-BST reproduces the brute-force best SDR split exactly
// when its capacity is not exceeded.
func TestEBSTMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		values := make([]float64, n)
		targets := make([]float64, n)
		tree := NewEBST(1024)
		var total split.TargetStats
		for i := 0; i < n; i++ {
			values[i] = math.Round(rng.Float64()*20) / 20 // force duplicates
			targets[i] = rng.NormFloat64()
			tree.Observe(values[i], targets[i], 1)
			total.Add(targets[i], 1)
		}
		bestT, bestSDR := bruteForceSDR(values, targets)
		cand, _, ok := tree.BestSDRSplit(0, total)
		if !ok {
			return bestSDR == math.Inf(-1)
		}
		return almostEq(cand.Merit, bestSDR, 1e-9) && cand.Threshold == bestT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEBSTCapacityBound(t *testing.T) {
	tree := NewEBST(16)
	rng := rand.New(rand.NewSource(3))
	var total split.TargetStats
	for i := 0; i < 10000; i++ {
		v := rng.Float64()
		tree.Observe(v, v, 1)
		total.Add(v, 1)
	}
	if tree.Size() > 16 {
		t.Fatalf("E-BST grew to %d nodes, cap 16", tree.Size())
	}
	// Splits must still be available and sane.
	cand, _, ok := tree.BestSDRSplit(0, total)
	if !ok {
		t.Fatal("capped tree found no split")
	}
	if cand.Merit <= 0 {
		t.Fatalf("capped tree merit = %v", cand.Merit)
	}
}

func TestEBSTIgnoresNonFinite(t *testing.T) {
	tree := NewEBST(16)
	tree.Observe(math.NaN(), 1, 1)
	tree.Observe(math.Inf(-1), 1, 1)
	if tree.Size() != 0 {
		t.Fatal("non-finite values stored")
	}
}

func TestEBSTTooFewObservations(t *testing.T) {
	tree := NewEBST(16)
	tree.Observe(0.5, 1, 1)
	var total split.TargetStats
	total.Add(1, 1)
	if _, _, ok := tree.BestSDRSplit(0, total); ok {
		t.Fatal("single observation cannot split")
	}
}

func TestEBSTMinCapacityFloor(t *testing.T) {
	tree := NewEBST(1)
	if tree.maxNodes < 16 {
		t.Fatalf("capacity floor = %d", tree.maxNodes)
	}
}

// With a single valid threshold the runner-up must stay the -Inf
// sentinel: FIMT-DD's split guard distinguishes "no runner-up exists"
// (tie-condition only) from a genuine runner-up with zero or negative
// merit (ratio test), so BestSDRSplit must not remap it.
func TestBestSDRSplitRunnerUpSentinel(t *testing.T) {
	tree := NewEBST(64)
	var total split.TargetStats
	for _, obs := range []struct{ v, y float64 }{{0, 0}, {0, 0}, {1, 1}, {1, 1}} {
		tree.Observe(obs.v, obs.y, 1)
		total.Add(obs.y, 1)
	}
	cand, second, ok := tree.BestSDRSplit(0, total)
	if !ok {
		t.Fatal("no candidate found")
	}
	if cand.Threshold != 0 {
		t.Fatalf("threshold = %v, want 0 (the only valid split)", cand.Threshold)
	}
	if !math.IsInf(second, -1) {
		t.Fatalf("second = %v, want the -Inf no-runner-up sentinel", second)
	}
}
