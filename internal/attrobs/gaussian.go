// Package attrobs implements the per-feature attribute observers that the
// Hoeffding-style trees use to propose and score candidate split points:
// per-class Gaussian estimators for classification (the MOA approach) and
// extended binary search trees (E-BST) for FIMT-DD's regression targets.
package attrobs

import (
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// CandidateSplit is a scored binary split proposal on one feature.
type CandidateSplit struct {
	Feature   int
	Threshold float64
	Merit     float64
	// Kind is the routing test of the proposal: the zero value is the
	// numeric threshold test; categorical observers propose equality
	// (Threshold holds the level code) or subset (Mask holds the level
	// bitset) splits.
	Kind model.SplitKind
	Mask uint64
	// Post holds the estimated class distributions of the two branches
	// (left: value <= threshold). Nil for regression observers.
	Post [][]float64
}

// SameTest reports whether two proposals route identically.
func (c CandidateSplit) SameTest(o CandidateSplit) bool {
	return c.Feature == o.Feature && c.Kind == o.Kind && c.Threshold == o.Threshold && c.Mask == o.Mask
}

// Gaussian observes one numeric feature with one Gaussian estimator per
// class, following the classic VFDT numeric handling: candidate thresholds
// are taken on an even grid between the observed minimum and maximum, and
// branch class distributions are estimated from the per-class CDFs.
type Gaussian struct {
	perClass []stats.Gaussian
	min, max float64
	seen     bool
	bins     int
}

// NewGaussian returns an observer over numClasses classes proposing at
// most bins candidate thresholds (10 is the customary default).
func NewGaussian(numClasses, bins int) *Gaussian {
	if bins < 1 {
		bins = 10
	}
	return &Gaussian{perClass: make([]stats.Gaussian, numClasses), bins: bins}
}

// Clone returns an independent deep copy (stats.Gaussian is a value
// type, so copying the per-class slice copies the estimators).
func (g *Gaussian) Clone() *Gaussian {
	c := *g
	c.perClass = append([]stats.Gaussian(nil), g.perClass...)
	return &c
}

// Observe records a feature value for a class with the given weight.
// Non-finite values are ignored.
func (g *Gaussian) Observe(value float64, class int, weight float64) {
	if class < 0 || class >= len(g.perClass) || math.IsNaN(value) || math.IsInf(value, 0) {
		return
	}
	if !g.seen {
		g.min, g.max, g.seen = value, value, true
	} else {
		if value < g.min {
			g.min = value
		}
		if value > g.max {
			g.max = value
		}
	}
	g.perClass[class].AddWeighted(value, weight)
}

// ClassWeight returns the observed weight of a class.
func (g *Gaussian) ClassWeight(class int) float64 {
	if class < 0 || class >= len(g.perClass) {
		return 0
	}
	return g.perClass[class].Weight()
}

// Pdf returns the per-class density at value (Naive Bayes likelihood).
func (g *Gaussian) Pdf(value float64, class int) float64 {
	if class < 0 || class >= len(g.perClass) || g.perClass[class].Weight() == 0 {
		return 1 // uninformative
	}
	return g.perClass[class].Pdf(value)
}

// DistributionsAt estimates the class-count vectors of the two branches of
// a threshold split using the Gaussian CDFs. The trees call it when a
// split is actually installed (a rare structural event, so the two
// allocations are acceptable); the scan hot path uses DistributionsAtInto.
func (g *Gaussian) DistributionsAt(threshold float64) (left, right []float64) {
	c := len(g.perClass)
	left = make([]float64, c)
	right = make([]float64, c)
	g.DistributionsAtInto(threshold, left, right)
	return left, right
}

// DistributionsAtInto estimates the branch class-count vectors of a
// threshold split into caller-owned buffers of length >= the class count.
func (g *Gaussian) DistributionsAtInto(threshold float64, left, right []float64) {
	for k := range g.perClass {
		w := g.perClass[k].Weight()
		if w == 0 {
			left[k], right[k] = 0, 0
			continue
		}
		l := g.perClass[k].WeightLessThan(threshold)
		left[k] = l
		right[k] = w - l
	}
}

// Meriter scores a candidate binary split from the pre-split class counts
// and the two branch distributions. split.Criterion satisfies it; the
// interface is redeclared here so attrobs stays independent of the split
// package.
type Meriter interface {
	Merit(pre []float64, post [][]float64) float64
}

// ScanBuf holds the reusable branch-distribution buffers of a threshold
// scan, so MeritAt and BestThreshold run without allocating. Scans never
// nest, so one ScanBuf serves a whole tree; it must not be shared across
// goroutines (each ensemble member owns its own). The categorical
// observers lazily grow two extra level-order buffers for their subset
// scans; after the first scan of the widest feature those scans allocate
// nothing either.
type ScanBuf struct {
	left, right []float64
	post        [][]float64
	// ord and score order seen levels for the subset prefix scan
	// (Categorical.BestSplit); grown on demand, reused forever after.
	ord   []int
	score []float64
}

// ReserveLevels pre-grows the level-order buffers to card levels so the
// first categorical subset scan does not allocate either; tree scratches
// call it at construction with the schema's widest cardinality.
func (b *ScanBuf) ReserveLevels(card int) { b.levelBufs(card) }

// levelBufs returns the level-order buffers with capacity for card
// levels, growing them on first use.
func (b *ScanBuf) levelBufs(card int) ([]int, []float64) {
	if cap(b.ord) < card {
		b.ord = make([]int, card)
		b.score = make([]float64, card)
	}
	return b.ord[:card], b.score[:card]
}

// NewScanBuf returns a scan workspace over numClasses classes.
func NewScanBuf(numClasses int) *ScanBuf {
	b := &ScanBuf{left: make([]float64, numClasses), right: make([]float64, numClasses)}
	b.post = [][]float64{b.left, b.right}
	return b
}

// MeritAt scores the threshold split of this feature with crit against
// the pre-split counts, using buf's buffers. It allocates nothing.
func (g *Gaussian) MeritAt(threshold float64, pre []float64, crit Meriter, buf *ScanBuf) float64 {
	g.DistributionsAtInto(threshold, buf.left, buf.right)
	return crit.Merit(pre, buf.post)
}

// BestThreshold scans the candidate grid for the highest-merit threshold.
// Unlike BestSplit it materialises no branch distributions — callers
// fetch them with DistributionsAt once a split is actually installed —
// so the scan allocates nothing.
func (g *Gaussian) BestThreshold(pre []float64, crit Meriter, buf *ScanBuf) (threshold, merit float64, ok bool) {
	if !g.seen || g.max <= g.min {
		return 0, 0, false
	}
	merit = math.Inf(-1)
	step := (g.max - g.min) / float64(g.bins+1)
	for i := 1; i <= g.bins; i++ {
		t := g.min + step*float64(i)
		if m := g.MeritAt(t, pre, crit, buf); m > merit {
			threshold, merit = t, m
		}
	}
	if math.IsInf(merit, -1) {
		return 0, 0, false
	}
	return threshold, merit, true
}

// BestSplit returns the highest-merit candidate threshold for this
// feature, or ok=false when the observer has no usable spread.
func (g *Gaussian) BestSplit(feature int, merit func(post [][]float64) float64) (CandidateSplit, bool) {
	if !g.seen || g.max <= g.min {
		return CandidateSplit{}, false
	}
	best := CandidateSplit{Feature: feature, Merit: math.Inf(-1)}
	step := (g.max - g.min) / float64(g.bins+1)
	for i := 1; i <= g.bins; i++ {
		t := g.min + step*float64(i)
		l, r := g.DistributionsAt(t)
		post := [][]float64{l, r}
		m := merit(post)
		if m > best.Merit {
			best = CandidateSplit{Feature: feature, Threshold: t, Merit: m, Post: post}
		}
	}
	if math.IsInf(best.Merit, -1) {
		return CandidateSplit{}, false
	}
	return best, true
}
