package attrobs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/split"
)

// naiveCat is the reference implementation: plain per-(level, class)
// count maps with no buffering tricks.
type naiveCat struct {
	classes, card int
	counts        map[[2]int]float64
}

func newNaiveCat(classes, card int) *naiveCat {
	return &naiveCat{classes: classes, card: card, counts: map[[2]int]float64{}}
}

func (n *naiveCat) observe(v float64, class int, w float64) {
	if class < 0 || class >= n.classes {
		return
	}
	if v != math.Trunc(v) || v < 0 || v >= float64(n.card) {
		return
	}
	n.counts[[2]int{int(v), class}] += w
}

func (n *naiveCat) branch(member func(level int) bool) (left, right []float64) {
	left = make([]float64, n.classes)
	right = make([]float64, n.classes)
	for key, w := range n.counts {
		if member(key[0]) {
			left[key[1]] += w
		} else {
			right[key[1]] += w
		}
	}
	return left, right
}

// Randomised operations against the naive reference: every observation
// sequence (including invalid codes, classes and weights that the
// observer must ignore) yields identical class weights, branch
// distributions and Naive Bayes likelihoods.
func TestCategoricalObserverMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		classes := 2 + rng.Intn(3)
		card := 2 + rng.Intn(7)
		obs := NewCategorical(classes, card)
		ref := newNaiveCat(classes, card)
		for i := 0; i < 200; i++ {
			var v float64
			switch rng.Intn(6) {
			case 0:
				v = math.NaN()
			case 1:
				v = -1 - rng.Float64()
			case 2:
				v = float64(card) + rng.Float64()
			case 3:
				v = rng.Float64() + 0.25 // non-integral
			default:
				v = float64(rng.Intn(card))
			}
			class := rng.Intn(classes+1) - 1 // sometimes -1
			w := float64(1 + rng.Intn(3))
			obs.Observe(v, class, w)
			ref.observe(v, class, w)
		}
		for k := 0; k < classes; k++ {
			want := 0.0
			for lv := 0; lv < card; lv++ {
				want += ref.counts[[2]int{lv, k}]
			}
			if got := obs.ClassWeight(k); got != want {
				t.Fatalf("trial %d: ClassWeight(%d) = %v, want %v", trial, k, got, want)
			}
		}
		// Equality splits on every level.
		for lv := 0; lv < card; lv++ {
			wantL, wantR := ref.branch(func(l int) bool { return l == lv })
			gotL, gotR := obs.DistributionsFor(model.SplitEquality, float64(lv), 0)
			for k := 0; k < classes; k++ {
				if gotL[k] != wantL[k] || gotR[k] != wantR[k] {
					t.Fatalf("trial %d: equality lv%d class %d: (%v,%v) want (%v,%v)",
						trial, lv, k, gotL[k], gotR[k], wantL[k], wantR[k])
				}
			}
		}
		// A random subset split.
		mask := uint64(rng.Intn(1 << uint(card)))
		wantL, wantR := ref.branch(func(l int) bool { return mask&(1<<uint(l)) != 0 })
		gotL, gotR := obs.DistributionsFor(model.SplitSubset, 0, mask)
		for k := 0; k < classes; k++ {
			if gotL[k] != wantL[k] || gotR[k] != wantR[k] {
				t.Fatalf("trial %d: subset %b class %d: (%v,%v) want (%v,%v)",
					trial, mask, k, gotL[k], gotR[k], wantL[k], wantR[k])
			}
		}
		// Pdf agrees with the Laplace formula on the reference counts.
		for lv := 0; lv < card; lv++ {
			for k := 0; k < classes; k++ {
				cw := 0.0
				for l := 0; l < card; l++ {
					cw += ref.counts[[2]int{l, k}]
				}
				want := 1.0
				if cw > 0 {
					want = (ref.counts[[2]int{lv, k}] + 1) / (cw + float64(card))
				}
				if got := obs.Pdf(float64(lv), k); math.Abs(got-want) > 1e-12 {
					t.Fatalf("trial %d: Pdf(lv%d, %d) = %v, want %v", trial, lv, k, got, want)
				}
			}
		}
	}
}

func TestCategoricalCloneIndependent(t *testing.T) {
	obs := NewCategorical(2, 4)
	obs.Observe(1, 0, 3)
	cl := obs.Clone()
	cl.Observe(1, 1, 5)
	if obs.ClassWeight(1) != 0 {
		t.Fatal("Clone shares counts with the original")
	}
	if cl.ClassWeight(1) != 5 || cl.ClassWeight(0) != 3 {
		t.Fatal("Clone lost the original counts")
	}
}

// State round trip mid-sequence: restoring and continuing matches the
// uninterrupted observer exactly.
func TestCategoricalStateRoundTrip(t *testing.T) {
	control := NewCategorical(3, 6)
	subject := NewCategorical(3, 6)
	for i := 0; i < 100; i++ {
		rng2 := rand.New(rand.NewSource(int64(i)))
		v, c := float64(rng2.Intn(6)), rng2.Intn(3)
		control.Observe(v, c, 1)
		subject.Observe(v, c, 1)
	}
	restored, err := CategoricalFromState(subject.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		rng2 := rand.New(rand.NewSource(int64(i)))
		v, c := float64(rng2.Intn(6)), rng2.Intn(3)
		control.Observe(v, c, 1)
		restored.Observe(v, c, 1)
	}
	for lv := 0; lv < 6; lv++ {
		cl, cr := control.DistributionsFor(model.SplitEquality, float64(lv), 0)
		rl, rr := restored.DistributionsFor(model.SplitEquality, float64(lv), 0)
		for k := 0; k < 3; k++ {
			if cl[k] != rl[k] || cr[k] != rr[k] {
				t.Fatalf("level %d class %d diverged after state round trip", lv, k)
			}
		}
	}
	if control.SeenLevels() != restored.SeenLevels() {
		t.Fatal("seen-level count diverged")
	}
}

// For two classes and a concave impurity the optimal level subset is a
// prefix of the levels ordered by class probability (Breiman's theorem),
// so BestSplit must find the exact optimum a brute-force scan over all
// 2^card subsets finds.
func TestCategoricalBestSplitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	crit := split.InfoGain{}
	for trial := 0; trial < 40; trial++ {
		card := 3 + rng.Intn(4) // 3..6 levels
		obs := NewCategorical(2, card)
		pre := make([]float64, 2)
		for lv := 0; lv < card; lv++ {
			for k := 0; k < 2; k++ {
				w := float64(1 + rng.Intn(30))
				obs.Observe(float64(lv), k, w)
				pre[k] += w
			}
		}
		buf := NewScanBuf(2)
		_, _, _, merit, ok := obs.BestSplit(pre, crit, buf)
		if !ok {
			t.Fatalf("trial %d: no split found", trial)
		}
		best := math.Inf(-1)
		left := make([]float64, 2)
		right := make([]float64, 2)
		post := [][]float64{left, right}
		for mask := uint64(1); mask < (1<<uint(card))-1; mask++ {
			obs.DistributionsForInto(model.SplitSubset, 0, mask, left, right)
			if m := crit.Merit(pre, post); m > best {
				best = m
			}
		}
		if math.Abs(merit-best) > 1e-9 {
			t.Fatalf("trial %d (card %d): BestSplit merit %v, brute force %v", trial, card, merit, best)
		}
	}
}

// Steady-state scans and observations must not allocate once the level
// buffers are reserved.
func TestCategoricalZeroAlloc(t *testing.T) {
	obs := NewCategorical(2, 8)
	for lv := 0; lv < 8; lv++ {
		obs.Observe(float64(lv), lv%2, float64(1+lv))
	}
	pre := []float64{16, 20}
	buf := NewScanBuf(2)
	buf.ReserveLevels(8)
	crit := split.InfoGain{}
	if avg := testing.AllocsPerRun(200, func() { obs.Observe(3, 1, 1); pre[1]++ }); avg != 0 {
		t.Fatalf("Observe allocates %.2f allocs/op", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { obs.BestSplit(pre, crit, buf) }); avg != 0 {
		t.Fatalf("BestSplit allocates %.2f allocs/op", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { obs.MeritFor(model.SplitSubset, 0, 0b1010, pre, crit, buf) }); avg != 0 {
		t.Fatalf("MeritFor allocates %.2f allocs/op", avg)
	}
}
