package attrobs

import (
	"math"

	"repro/internal/model"
)

// Categorical observes one categorical feature as exact per-(level,
// class) counts — the nominal-attribute counterpart of the Gaussian
// numeric observer. Where the Gaussian estimates branch distributions
// from fitted densities, the categorical branch distributions are exact
// sums of the observed counts, so equality and subset splits are scored
// without any distributional assumption. All buffers are sized from the
// declared cardinality at construction, so the steady state allocates
// nothing.
type Categorical struct {
	numClasses int
	card       int
	// counts is level-major: counts[level*numClasses+class].
	counts []float64
	// levelTot[level] is the total observed weight of one level.
	levelTot []float64
	total    float64
	// seen is the number of levels with positive observed weight.
	seen int
}

// NewCategorical returns an observer for a feature with the given
// declared cardinality over numClasses classes.
func NewCategorical(numClasses, cardinality int) *Categorical {
	return &Categorical{
		numClasses: numClasses,
		card:       cardinality,
		counts:     make([]float64, cardinality*numClasses),
		levelTot:   make([]float64, cardinality),
	}
}

// Clone returns an independent deep copy.
func (c *Categorical) Clone() *Categorical {
	n := *c
	n.counts = append([]float64(nil), c.counts...)
	n.levelTot = append([]float64(nil), c.levelTot...)
	return &n
}

// Cardinality returns the declared number of levels.
func (c *Categorical) Cardinality() int { return c.card }

// SeenLevels returns the number of levels observed so far.
func (c *Categorical) SeenLevels() int { return c.seen }

// Observe records a level code for a class with the given weight.
// Non-integral, non-finite and out-of-range codes are ignored, exactly
// like the Gaussian observer ignores non-finite values.
func (c *Categorical) Observe(value float64, class int, weight float64) {
	if class < 0 || class >= c.numClasses {
		return
	}
	if value != math.Trunc(value) || value < 0 || value >= float64(c.card) {
		return
	}
	lv := int(value)
	if c.levelTot[lv] == 0 && weight > 0 {
		c.seen++
	}
	c.counts[lv*c.numClasses+class] += weight
	c.levelTot[lv] += weight
	c.total += weight
}

// ClassWeight returns the observed weight of a class across all levels.
func (c *Categorical) ClassWeight(class int) float64 {
	if class < 0 || class >= c.numClasses {
		return 0
	}
	w := 0.0
	for lv := 0; lv < c.card; lv++ {
		w += c.counts[lv*c.numClasses+class]
	}
	return w
}

// Pdf returns the Laplace-smoothed conditional probability P(level |
// class), the Naive Bayes likelihood of a nominal attribute. Unknown
// codes and unseen classes are uninformative (1).
func (c *Categorical) Pdf(value float64, class int) float64 {
	if class < 0 || class >= c.numClasses {
		return 1
	}
	if value != math.Trunc(value) || value < 0 || value >= float64(c.card) {
		return 1
	}
	cw := c.ClassWeight(class)
	if cw == 0 {
		return 1
	}
	lv := int(value)
	return (c.counts[lv*c.numClasses+class] + 1) / (cw + float64(c.card))
}

// leftCounts accumulates the left-branch class counts of a split into
// left; callers derive the right branch from the pre-split counts.
func (c *Categorical) leftCounts(kind model.SplitKind, level int, mask uint64, left []float64) {
	for k := range left {
		left[k] = 0
	}
	switch kind {
	case model.SplitEquality:
		if level >= 0 && level < c.card {
			copy(left, c.counts[level*c.numClasses:(level+1)*c.numClasses])
		}
	case model.SplitSubset:
		for lv := 0; lv < c.card && lv < 64; lv++ {
			if mask&(1<<uint(lv)) == 0 || c.levelTot[lv] == 0 {
				continue
			}
			row := c.counts[lv*c.numClasses : (lv+1)*c.numClasses]
			for k := range left {
				left[k] += row[k]
			}
		}
	}
}

// DistributionsFor returns the exact branch class-count vectors of an
// equality (Threshold = level code) or subset (Mask = level bitset)
// split. Called at install time, so the two allocations are acceptable;
// the scan hot path uses DistributionsForInto.
func (c *Categorical) DistributionsFor(kind model.SplitKind, threshold float64, mask uint64) (left, right []float64) {
	left = make([]float64, c.numClasses)
	right = make([]float64, c.numClasses)
	c.DistributionsForInto(kind, threshold, mask, left, right)
	return left, right
}

// DistributionsForInto computes the branch class-count vectors into
// caller-owned buffers of length >= the class count.
func (c *Categorical) DistributionsForInto(kind model.SplitKind, threshold float64, mask uint64, left, right []float64) {
	lv := -1
	if threshold == math.Trunc(threshold) && threshold >= 0 && threshold < float64(c.card) {
		lv = int(threshold)
	}
	c.leftCounts(kind, lv, mask, left)
	for k := 0; k < c.numClasses; k++ {
		tot := 0.0
		for l := 0; l < c.card; l++ {
			tot += c.counts[l*c.numClasses+k]
		}
		right[k] = tot - left[k]
	}
}

// MeritFor scores one equality/subset split with crit against the
// pre-split counts, using buf's buffers. It allocates nothing.
func (c *Categorical) MeritFor(kind model.SplitKind, threshold float64, mask uint64, pre []float64, crit Meriter, buf *ScanBuf) float64 {
	lv := -1
	if threshold == math.Trunc(threshold) && threshold >= 0 && threshold < float64(c.card) {
		lv = int(threshold)
	}
	c.leftCounts(kind, lv, mask, buf.left)
	for k := range pre {
		buf.right[k] = pre[k] - buf.left[k]
	}
	return crit.Merit(pre, buf.post)
}

// BestSplit scans this feature's native categorical splits for the
// highest merit: every seen level as an equality split, and — when the
// cardinality fits a 64-bit mask and at least three levels were seen —
// level-subset splits built from the CART prefix ordering (levels sorted
// by the probability of a pivot class; for two-class problems the best
// subset split is provably a prefix of that order, for more classes it
// is the customary heuristic). Like BestThreshold it materialises no
// branch distributions and allocates nothing; callers fetch
// distributions with DistributionsFor once a split is installed. Masks
// with a single level collapse to the equality kind, and unseen levels
// are never members of a mask, so they route right deterministically.
func (c *Categorical) BestSplit(pre []float64, crit Meriter, buf *ScanBuf) (kind model.SplitKind, threshold float64, mask uint64, merit float64, ok bool) {
	if c.seen < 2 {
		return 0, 0, 0, 0, false
	}
	merit = math.Inf(-1)

	// Equality scan: one candidate per seen level.
	for lv := 0; lv < c.card; lv++ {
		if c.levelTot[lv] == 0 {
			continue
		}
		row := c.counts[lv*c.numClasses : (lv+1)*c.numClasses]
		copy(buf.left, row)
		for k := range pre {
			buf.right[k] = pre[k] - row[k]
		}
		if m := crit.Merit(pre, buf.post); m > merit {
			kind, threshold, mask, merit = model.SplitEquality, float64(lv), 0, m
		}
	}

	// Subset scan: prefixes of the levels ordered by P(pivot | level).
	if c.card <= 64 && c.seen >= 3 {
		pivot := 0
		best := math.Inf(-1)
		for k, w := range pre[:c.numClasses] {
			if w > best {
				pivot, best = k, w
			}
		}
		ord, score := buf.levelBufs(c.card)
		n := 0
		for lv := 0; lv < c.card; lv++ {
			if c.levelTot[lv] == 0 {
				continue
			}
			ord[n] = lv
			score[n] = c.counts[lv*c.numClasses+pivot] / c.levelTot[lv]
			n++
		}
		// Insertion sort by descending score (n <= 64).
		for i := 1; i < n; i++ {
			l, s := ord[i], score[i]
			j := i - 1
			for j >= 0 && score[j] < s {
				ord[j+1], score[j+1] = ord[j], score[j]
				j--
			}
			ord[j+1], score[j+1] = l, s
		}
		for k := range buf.left {
			buf.left[k] = 0
		}
		var m uint64
		// Prefix sizes 2..n-1: size 1 is the equality scan, size n sends
		// every seen level left (no split).
		for i := 0; i < n-1; i++ {
			lv := ord[i]
			m |= 1 << uint(lv)
			row := c.counts[lv*c.numClasses : (lv+1)*c.numClasses]
			for k := range buf.left {
				buf.left[k] += row[k]
			}
			if i == 0 {
				continue
			}
			for k := range pre {
				buf.right[k] = pre[k] - buf.left[k]
			}
			if mm := crit.Merit(pre, buf.post); mm > merit {
				kind, threshold, mask, merit = model.SplitSubset, 0, m, mm
			}
		}
	}

	if math.IsInf(merit, -1) {
		return 0, 0, 0, 0, false
	}
	return kind, threshold, mask, merit, true
}
