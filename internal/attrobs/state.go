package attrobs

import (
	"fmt"
	"math"

	"repro/internal/split"
	"repro/internal/stats"
)

// Checkpoint codecs of the attribute observers. Every field round-trips
// bit-exactly, so a restored observer proposes and scores the same
// candidate splits as the live one it was saved from — the shared
// substrate of the Hoeffding-family and FIMT-DD checkpoint documents.

// GaussianState is the serialisable state of a Gaussian observer.
type GaussianState struct {
	PerClass []stats.RunningState
	Min, Max float64
	Seen     bool
	Bins     int
}

// State exports the observer for checkpointing.
func (g *Gaussian) State() GaussianState {
	s := GaussianState{Min: g.min, Max: g.max, Seen: g.seen, Bins: g.bins,
		PerClass: make([]stats.RunningState, len(g.perClass))}
	for k := range g.perClass {
		s.PerClass[k] = g.perClass[k].State()
	}
	return s
}

// GaussianFromState reconstructs an observer from its exported state.
func GaussianFromState(s GaussianState) (*Gaussian, error) {
	if s.Bins < 1 {
		return nil, fmt.Errorf("attrobs: gaussian state has %d bins", s.Bins)
	}
	g := &Gaussian{perClass: make([]stats.Gaussian, len(s.PerClass)), min: s.Min, max: s.Max, seen: s.Seen, bins: s.Bins}
	for k := range s.PerClass {
		g.perClass[k].SetState(s.PerClass[k])
	}
	return g, nil
}

// CategoricalState is the serialisable state of a Categorical observer.
// The level-major count matrix is the whole state; level totals and the
// seen-level count are recomputed on load.
type CategoricalState struct {
	NumClasses  int
	Cardinality int
	Counts      []float64
}

// State exports the observer for checkpointing.
func (c *Categorical) State() CategoricalState {
	return CategoricalState{
		NumClasses:  c.numClasses,
		Cardinality: c.card,
		Counts:      append([]float64(nil), c.counts...),
	}
}

// CategoricalFromState reconstructs an observer from its exported state.
func CategoricalFromState(s CategoricalState) (*Categorical, error) {
	if s.NumClasses < 2 {
		return nil, fmt.Errorf("attrobs: categorical state has %d classes", s.NumClasses)
	}
	if s.Cardinality < 2 {
		return nil, fmt.Errorf("attrobs: categorical state has cardinality %d", s.Cardinality)
	}
	if len(s.Counts) != s.NumClasses*s.Cardinality {
		return nil, fmt.Errorf("attrobs: categorical state has %d counts, want %d", len(s.Counts), s.NumClasses*s.Cardinality)
	}
	c := NewCategorical(s.NumClasses, s.Cardinality)
	for i, v := range s.Counts {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("attrobs: categorical state count %d is %v", i, v)
		}
		c.counts[i] = v
	}
	for lv := 0; lv < c.card; lv++ {
		t := 0.0
		for k := 0; k < c.numClasses; k++ {
			t += c.counts[lv*c.numClasses+k]
		}
		c.levelTot[lv] = t
		c.total += t
		if t > 0 {
			c.seen++
		}
	}
	return c, nil
}

// EBSTState is the serialisable state of an E-BST observer: the node
// structure is preserved exactly (insertion order shaped the tree, and
// the per-node <=-side statistics depend on that shape).
type EBSTState struct {
	Root     *EBSTNodeState
	Size     int
	MaxNodes int
}

// EBSTNodeState is one exported E-BST node.
type EBSTNodeState struct {
	Key         float64
	LE          split.TargetStats
	Left, Right *EBSTNodeState
}

// State exports the tree for checkpointing.
func (t *EBST) State() EBSTState {
	var export func(n *ebstNode) *EBSTNodeState
	export = func(n *ebstNode) *EBSTNodeState {
		if n == nil {
			return nil
		}
		return &EBSTNodeState{Key: n.key, LE: n.le, Left: export(n.left), Right: export(n.right)}
	}
	return EBSTState{Root: export(t.root), Size: t.size, MaxNodes: t.maxNodes}
}

// EBSTFromState reconstructs an E-BST from its exported state.
func EBSTFromState(s EBSTState) (*EBST, error) {
	if s.MaxNodes < 16 {
		return nil, fmt.Errorf("attrobs: E-BST state has maxNodes %d (min 16)", s.MaxNodes)
	}
	count := 0
	var build func(n *EBSTNodeState) (*ebstNode, error)
	build = func(n *EBSTNodeState) (*ebstNode, error) {
		if n == nil {
			return nil, nil
		}
		if math.IsNaN(n.Key) || math.IsInf(n.Key, 0) {
			return nil, fmt.Errorf("attrobs: E-BST state has non-finite key")
		}
		count++
		left, err := build(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := build(n.Right)
		if err != nil {
			return nil, err
		}
		return &ebstNode{key: n.Key, le: n.LE, left: left, right: right}, nil
	}
	root, err := build(s.Root)
	if err != nil {
		return nil, err
	}
	if count != s.Size {
		return nil, fmt.Errorf("attrobs: E-BST state size %d but %d nodes present", s.Size, count)
	}
	return &EBST{root: root, size: s.Size, maxNodes: s.MaxNodes}, nil
}
