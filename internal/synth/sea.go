// Package synth implements the data stream generators of the paper's
// evaluation (Section VI-B): faithful re-implementations of the
// scikit-multiflow SEA, Agrawal and Hyperplane generators with the drift
// schedules and 10% perturbation the paper specifies, plus a configurable
// Gaussian-cluster generator used to build surrogates for the real-world
// data sets that cannot be downloaded in this offline environment (see
// DESIGN.md §4). All generators emit features normalised to [0, 1] and
// replay identically after Reset (fixed seeds).
package synth

import (
	"math/rand"

	"repro/internal/stream"
)

// seaThresholds are the classic SEA concept thresholds on f1+f2 (features
// in [0,10]); the stream cycles through them at each abrupt drift.
var seaThresholds = []float64{8, 9, 7, 9.5}

// SEA is the SEA generator: three uniform features in [0,10] (emitted
// normalised to [0,1]); the label is 1 when f1+f2 <= theta. Theta changes
// abruptly at fixed positions — the paper uses drifts at 200k, 400k, 600k
// and 800k of a 1M stream — and labels are flipped with the noise
// probability (paper: 0.1).
type SEA struct {
	seed    int64
	samples int
	noise   float64
	drifts  int // number of equal-length segments = drifts+1

	rng *rand.Rand
	pos int
}

// NewSEA returns a SEA stream of the given length with four abrupt drifts
// (five segments) and the given label-noise probability.
func NewSEA(samples int, noise float64, seed int64) *SEA {
	if samples <= 0 {
		samples = 1_000_000
	}
	s := &SEA{seed: seed, samples: samples, noise: noise, drifts: 4}
	s.Reset()
	return s
}

// Schema implements stream.Stream.
func (s *SEA) Schema() stream.Schema {
	return stream.Schema{
		NumFeatures:  3,
		NumClasses:   2,
		Name:         "SEA",
		FeatureNames: []string{"f1", "f2", "f3"},
	}
}

// Len implements stream.Sized.
func (s *SEA) Len() int { return s.samples }

// Reset implements stream.Stream.
func (s *SEA) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.pos = 0
}

// DriftPositions returns the instance indices at which the concept
// changes.
func (s *SEA) DriftPositions() []int {
	seg := s.samples / (s.drifts + 1)
	out := make([]int, s.drifts)
	for i := range out {
		out[i] = seg * (i + 1)
	}
	return out
}

// Next implements stream.Stream.
func (s *SEA) Next() (stream.Instance, error) {
	if s.pos >= s.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	seg := s.samples / (s.drifts + 1)
	concept := s.pos / seg
	if concept > s.drifts {
		concept = s.drifts
	}
	theta := seaThresholds[concept%len(seaThresholds)]

	f1 := s.rng.Float64() * 10
	f2 := s.rng.Float64() * 10
	f3 := s.rng.Float64() * 10
	y := 0
	if f1+f2 <= theta {
		y = 1
	}
	if s.noise > 0 && s.rng.Float64() < s.noise {
		y = 1 - y
	}
	s.pos++
	return stream.Instance{X: []float64{f1 / 10, f2 / 10, f3 / 10}, Y: y}, nil
}
