package synth

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stream"
)

// drain reads n instances, failing the test on any error.
func drain(t *testing.T, s stream.Stream, n int) []stream.Instance {
	t.Helper()
	out := make([]stream.Instance, 0, n)
	for i := 0; i < n; i++ {
		inst, err := s.Next()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		out = append(out, inst)
	}
	return out
}

// assertReplay checks that Reset reproduces the identical sequence.
func assertReplay(t *testing.T, s stream.Stream, n int) {
	t.Helper()
	first := drain(t, s, n)
	s.Reset()
	second := drain(t, s, n)
	for i := range first {
		if first[i].Y != second[i].Y {
			t.Fatalf("replay label mismatch at %d", i)
		}
		for j := range first[i].X {
			if first[i].X[j] != second[i].X[j] {
				t.Fatalf("replay feature mismatch at %d/%d", i, j)
			}
		}
	}
	s.Reset()
}

// assertRange checks all features lie in [0,1].
func assertRange(t *testing.T, insts []stream.Instance) {
	t.Helper()
	for i, inst := range insts {
		for j, v := range inst.X {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("instance %d feature %d = %v outside [0,1]", i, j, v)
			}
		}
	}
}

// assertExhausts checks the stream ends exactly at its advertised length.
func assertExhausts(t *testing.T, s stream.Stream) {
	t.Helper()
	s.Reset()
	sized := s.(stream.Sized)
	for i := 0; i < sized.Len(); i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("ended early at %d of %d", i, sized.Len())
		}
	}
	if _, err := s.Next(); !errors.Is(err, stream.ErrEnd) {
		t.Fatalf("want ErrEnd after %d, got %v", sized.Len(), err)
	}
	s.Reset()
}

func TestSEABasics(t *testing.T) {
	s := NewSEA(5000, 0.1, 42)
	if err := s.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	assertReplay(t, s, 500)
	assertRange(t, drain(t, s, 500))
	assertExhausts(t, NewSEA(1000, 0.1, 42))
}

// SEA labels follow the active threshold exactly when noise is zero.
func TestSEALabelFunction(t *testing.T) {
	s := NewSEA(10000, 0, 7)
	for i := 0; i < 1500; i++ {
		inst, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		// First segment: theta = 8, features scaled by 10.
		want := 0
		if inst.X[0]*10+inst.X[1]*10 <= 8 {
			want = 1
		}
		if inst.Y != want {
			t.Fatalf("instance %d: label %d, want %d", i, inst.Y, want)
		}
	}
}

// The concept must actually change at the drift positions.
func TestSEADriftChangesConcept(t *testing.T) {
	s := NewSEA(10000, 0, 11)
	positions := s.DriftPositions()
	if len(positions) != 4 {
		t.Fatalf("drift positions = %v", positions)
	}
	// Count the positive rate in segment 1 (theta=8) vs segment 2
	// (theta=9): P(f1+f2 <= theta) grows with theta.
	rate := func(from, to int) float64 {
		s.Reset()
		for i := 0; i < from; i++ {
			s.Next()
		}
		pos := 0
		for i := from; i < to; i++ {
			inst, _ := s.Next()
			pos += inst.Y
		}
		return float64(pos) / float64(to-from)
	}
	r1 := rate(0, 2000)
	r2 := rate(2000, 4000)
	if r2 <= r1 {
		t.Fatalf("positive rate did not grow across the drift: %v -> %v", r1, r2)
	}
}

func TestSEANoiseRate(t *testing.T) {
	// Within the noisy stream, the emitted label disagrees with the
	// noise-free concept label exactly when the noise flipped it — the
	// disagreement rate must sit near the configured 10%.
	noisy := NewSEA(20000, 0.1, 3)
	flips := 0
	for i := 0; i < 20000; i++ {
		inst, err := noisy.Next()
		if err != nil {
			t.Fatal(err)
		}
		concept := 0
		if inst.X[0]*10+inst.X[1]*10 <= 8 { // first-segment theta
			concept = 1
		}
		if i < 4000 && inst.Y != concept { // stay within segment 1
			flips++
		}
	}
	rate := float64(flips) / 4000
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("noise flip rate %v, want ~0.10", rate)
	}
}

func TestAgrawalBasics(t *testing.T) {
	a := NewAgrawal(5000, 0.1, 42)
	if err := a.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Schema().NumFeatures != 9 {
		t.Fatalf("Agrawal features = %d", a.Schema().NumFeatures)
	}
	assertReplay(t, a, 500)
	assertRange(t, drain(t, a, 500))
	assertExhausts(t, NewAgrawal(1000, 0.1, 42))
}

func TestAgrawalBothClassesPresent(t *testing.T) {
	a := NewAgrawal(5000, 0, 5)
	counts := [2]int{}
	for _, inst := range drain(t, a, 5000) {
		counts[inst.Y]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate label distribution: %v", counts)
	}
}

func TestHyperplaneBasics(t *testing.T) {
	h := NewHyperplane(5000, 50, 0.1, 42)
	if err := h.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Schema().NumFeatures != 50 {
		t.Fatalf("features = %d", h.Schema().NumFeatures)
	}
	assertReplay(t, h, 500)
	assertRange(t, drain(t, h, 500))
	assertExhausts(t, NewHyperplane(1000, 10, 0.1, 42))
}

// The hyperplane weights must actually rotate (incremental drift).
func TestHyperplaneWeightsDrift(t *testing.T) {
	h := NewHyperplane(20000, 10, 0, 3)
	before := append([]float64(nil), h.weights...)
	drain(t, h, 20000)
	moved := 0.0
	for j := range before {
		moved += math.Abs(h.weights[j] - before[j])
	}
	if moved < 0.1 {
		t.Fatalf("weights barely moved (%v) over 20k instances", moved)
	}
}

func TestClusterBasics(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Name: "t", Samples: 3000, Features: 5, Classes: 3,
		Priors: MajorityPriors(3, 0.6), Seed: 42,
	})
	if err := c.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	assertReplay(t, c, 500)
	assertRange(t, drain(t, c, 500))
	assertExhausts(t, c)
}

func TestClusterPriorsRespected(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Name: "t", Samples: 30000, Features: 4, Classes: 3,
		Priors: MajorityPriors(3, 0.6), Seed: 7,
	})
	counts := make([]int, 3)
	for _, inst := range drain(t, c, 30000) {
		counts[inst.Y]++
	}
	maj := float64(counts[0]) / 30000
	if math.Abs(maj-0.6) > 0.02 {
		t.Fatalf("majority share %v, want 0.6", maj)
	}
}

// Abrupt drift: the class-conditional distribution of features must
// change across a drift point.
func TestClusterAbruptDriftMovesClusters(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Name: "t", Samples: 20000, Features: 3, Classes: 2,
		Priors: MajorityPriors(2, 0.5), Std: 0.05,
		Drift: DriftAbrupt, DriftPoints: []float64{0.5},
		Seed: 13,
	})
	meanOfClass := func(from, to, class int) []float64 {
		c.Reset()
		sum := make([]float64, 3)
		n := 0
		for i := 0; i < to; i++ {
			inst, _ := c.Next()
			if i >= from && inst.Y == class {
				for j := range sum {
					sum[j] += inst.X[j]
				}
				n++
			}
		}
		for j := range sum {
			sum[j] /= float64(n)
		}
		return sum
	}
	before := meanOfClass(0, 9000, 0)
	after := meanOfClass(11000, 20000, 0)
	var dist float64
	for j := range before {
		dist += (before[j] - after[j]) * (before[j] - after[j])
	}
	if math.Sqrt(dist) < 0.1 {
		t.Fatalf("class-0 mean moved only %v across the abrupt drift", math.Sqrt(dist))
	}
}

func TestClusterIncrementalDriftIsGradual(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Name: "t", Samples: 30000, Features: 2, Classes: 2,
		Priors: MajorityPriors(2, 0.5), Std: 0.02,
		Drift: DriftIncremental, DriftPoints: []float64{0.5},
		Seed: 17,
	})
	// Windowed class-0 means must move monotonically-ish, not jump.
	c.Reset()
	var windows [][]float64
	win := make([]float64, 2)
	n := 0
	for i := 0; i < 30000; i++ {
		inst, _ := c.Next()
		if inst.Y == 0 {
			win[0] += inst.X[0]
			win[1] += inst.X[1]
			n++
		}
		if (i+1)%6000 == 0 {
			windows = append(windows, []float64{win[0] / float64(n), win[1] / float64(n)})
			win = make([]float64, 2)
			n = 0
		}
	}
	// Consecutive windows should each move by a bounded amount (gradual).
	for w := 1; w < len(windows); w++ {
		step := math.Hypot(windows[w][0]-windows[w-1][0], windows[w][1]-windows[w-1][1])
		if step > 0.45 {
			t.Fatalf("window %d jumped by %v — not incremental", w, step)
		}
	}
}

func TestClusterDefaults(t *testing.T) {
	cfg := ClusterConfig{}.withDefaults()
	if cfg.ClustersPerClass != 2 || cfg.Std != 0.12 || cfg.Classes != 2 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if len(cfg.Priors) != cfg.Classes {
		t.Fatal("priors not defaulted")
	}
}

func TestMajorityPriorsSumToOne(t *testing.T) {
	for _, c := range []int{2, 6, 23} {
		p := MajorityPriors(c, 0.5)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("c=%d priors sum %v", c, sum)
		}
	}
}

func TestUniformPriors(t *testing.T) {
	p := UniformPriors(4)
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("uniform priors = %v", p)
		}
	}
}

func TestPiecewiseBasics(t *testing.T) {
	p := NewPiecewise(5000, 3, 0.05, 1, 42)
	if err := p.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	assertReplay(t, p, 500)
	assertRange(t, drain(t, p, 500))
	assertExhausts(t, NewPiecewise(1000, 3, 0.05, 1, 42))
}

// A linear model cannot fit the piecewise concept, but the region-local
// rules are clean: verify labels follow the active rule exactly when
// noise is off.
func TestPiecewiseIsNonLinearButLocallyClean(t *testing.T) {
	p := NewPiecewise(20000, 2, 0, 0, 9)
	// Count label agreement between the two sides for similar x1 values:
	// with opposite random rules they should disagree substantially.
	var leftPos, leftN, rightPos, rightN float64
	for i := 0; i < 20000; i++ {
		inst, _ := p.Next()
		if inst.X[1] < 0.3 { // fix a band of x1
			if inst.X[0] <= 0.5 {
				leftPos += float64(inst.Y)
				leftN++
			} else {
				rightPos += float64(inst.Y)
				rightN++
			}
		}
	}
	if leftN == 0 || rightN == 0 {
		t.Fatal("no samples in band")
	}
	gap := leftPos/leftN - rightPos/rightN
	if gap < 0 {
		gap = -gap
	}
	if gap < 0.2 {
		t.Fatalf("sides behave identically (gap %v) — concept not piecewise", gap)
	}
}

func TestPiecewiseDriftChangesRules(t *testing.T) {
	p := NewPiecewise(20000, 3, 0, 1, 5)
	// The label function changes at 50%: measure P(y=1 | x0<=0.5) before
	// and after; with re-drawn rules they should differ.
	rate := func(from, to int) float64 {
		p.Reset()
		var pos, n float64
		for i := 0; i < to; i++ {
			inst, _ := p.Next()
			if i >= from && inst.X[0] <= 0.5 {
				pos += float64(inst.Y)
				n++
			}
		}
		return pos / n
	}
	r1 := rate(0, 9000)
	r2 := rate(11000, 20000)
	diff := r1 - r2
	if diff < 0 {
		diff = -diff
	}
	if diff < 0.05 {
		t.Logf("left-side positive rates: %v vs %v", r1, r2)
		// Rates can coincide even for different rules; fall back to a
		// direct rule comparison.
		if len(p.rules) != 4 {
			t.Fatalf("expected 4 rules (2 concepts x 2 sides), got %d", len(p.rules))
		}
		same := true
		for j := range p.rules[0] {
			if p.rules[0][j] != p.rules[2][j] {
				same = false
			}
		}
		if same {
			t.Fatal("drift did not change the rules")
		}
	}
}

// All generators implement the Stream and Sized contracts.
func TestInterfaces(t *testing.T) {
	var streams = []stream.Stream{
		NewSEA(10, 0, 1), NewAgrawal(10, 0, 1), NewHyperplane(10, 5, 0, 1),
		NewCluster(ClusterConfig{Name: "x", Samples: 10, Features: 2, Classes: 2, Seed: 1}),
		NewPiecewise(10, 3, 0, 1, 1),
	}
	for _, s := range streams {
		if _, ok := s.(stream.Sized); !ok {
			t.Fatalf("%s does not implement Sized", s.Schema().Name)
		}
	}
}
