package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// SwitchKind selects how a ConceptSwitch moves between its concepts.
type SwitchKind int

const (
	// SwitchAbrupt jumps to the next concept exactly at each boundary.
	SwitchAbrupt SwitchKind = iota
	// SwitchGradual mixes the outgoing and incoming concepts over a
	// transition window centred on each boundary: the probability of
	// drawing from the incoming concept ramps linearly from 0 to 1.
	SwitchGradual
	// SwitchRecurring cycles through the concepts repeatedly: segment i
	// replays concept i mod len(concepts), so earlier concepts return.
	SwitchRecurring
)

func (k SwitchKind) String() string {
	switch k {
	case SwitchAbrupt:
		return "abrupt"
	case SwitchGradual:
		return "gradual"
	case SwitchRecurring:
		return "recurring"
	}
	return fmt.Sprintf("SwitchKind(%d)", int(k))
}

// ConceptSwitch composes existing generators into a drift scenario: the
// stream is divided into equal-length segments and each segment draws
// its instances from one underlying concept. All concepts must share the
// same shape (feature count, class count and feature kinds). The
// combinator is seed-deterministic — the gradual mixing draws come from
// its own seeded source, and Reset rewinds both the mixer and every
// underlying concept — so two identically-built switches replay
// identical streams.
type ConceptSwitch struct {
	kind     SwitchKind
	seed     int64
	samples  int
	segments int
	width    int // gradual transition window (instances)
	concepts []stream.Stream

	rng *rand.Rand
	pos int
}

// NewAbruptSwitch returns a stream that switches concepts abruptly:
// one segment per concept, in order.
func NewAbruptSwitch(samples int, seed int64, concepts ...stream.Stream) *ConceptSwitch {
	return newSwitch(SwitchAbrupt, samples, len(concepts), 0, seed, concepts)
}

// NewGradualSwitch is NewAbruptSwitch with a linear mixing window of the
// given width (instances) centred on each concept boundary.
func NewGradualSwitch(samples, width int, seed int64, concepts ...stream.Stream) *ConceptSwitch {
	if width < 0 {
		width = 0
	}
	return newSwitch(SwitchGradual, samples, len(concepts), width, seed, concepts)
}

// NewRecurringSwitch returns a stream of the given number of segments
// cycling through the concepts: segment i replays concept i mod
// len(concepts), so each concept recurs.
func NewRecurringSwitch(samples, segments int, seed int64, concepts ...stream.Stream) *ConceptSwitch {
	if segments < len(concepts) {
		segments = len(concepts)
	}
	return newSwitch(SwitchRecurring, samples, segments, 0, seed, concepts)
}

func newSwitch(kind SwitchKind, samples, segments, width int, seed int64, concepts []stream.Stream) *ConceptSwitch {
	if len(concepts) == 0 {
		panic("synth: ConceptSwitch needs at least one concept")
	}
	if samples <= 0 {
		samples = 100_000
	}
	if segments < 1 {
		segments = 1
	}
	want := concepts[0].Schema()
	for i, c := range concepts[1:] {
		got := c.Schema()
		if got.NumFeatures != want.NumFeatures || got.NumClasses != want.NumClasses || !got.SameKinds(want) {
			panic(fmt.Sprintf("synth: ConceptSwitch concept %d has shape %dx%d, concept 0 has %dx%d (or feature kinds differ)",
				i+1, got.NumFeatures, got.NumClasses, want.NumFeatures, want.NumClasses))
		}
	}
	s := &ConceptSwitch{kind: kind, seed: seed, samples: samples, segments: segments, width: width, concepts: concepts}
	s.Reset()
	return s
}

// Schema implements stream.Stream: the first concept's schema, renamed
// to record the composition.
func (s *ConceptSwitch) Schema() stream.Schema {
	sc := s.concepts[0].Schema()
	sc.Name = fmt.Sprintf("%s[%s x%d]", s.kind, sc.Name, s.segments)
	return sc
}

// Len implements stream.Sized.
func (s *ConceptSwitch) Len() int { return s.samples }

// Reset implements stream.Stream: rewinds the mixer and every concept.
func (s *ConceptSwitch) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.pos = 0
	for _, c := range s.concepts {
		c.Reset()
	}
}

// DriftPositions returns the segment boundaries (the instance indices at
// which the active concept changes).
func (s *ConceptSwitch) DriftPositions() []int {
	seg := s.samples / s.segments
	out := make([]int, 0, s.segments-1)
	for i := 1; i < s.segments; i++ {
		out = append(out, seg*i)
	}
	return out
}

// conceptAt maps a segment index to the concept that serves it.
func (s *ConceptSwitch) conceptAt(segment int) stream.Stream {
	if segment >= s.segments {
		segment = s.segments - 1
	}
	return s.concepts[segment%len(s.concepts)]
}

// Next implements stream.Stream. Underlying concepts are drawn lazily —
// only the concept actually serving an instance advances — and a concept
// that runs out is Reset and replayed, so short generators can back long
// scenarios.
func (s *ConceptSwitch) Next() (stream.Instance, error) {
	if s.pos >= s.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	seg := s.samples / s.segments
	if seg < 1 {
		seg = 1
	}
	segment := s.pos / seg
	if segment >= s.segments {
		segment = s.segments - 1
	}
	src := s.conceptAt(segment)
	if s.kind == SwitchGradual && s.width > 0 {
		// Distance to the nearest boundary decides the mixing weight:
		// within width/2 after a boundary the incoming concept has already
		// won with probability ramping up; within width/2 before the next
		// boundary the upcoming concept starts to bleed in.
		into := s.pos - segment*seg // position within the segment
		if segment > 0 && into < s.width/2 {
			// Ramp from 0.5 at the boundary up to 1.0 at width/2.
			p := 0.5 + float64(into)/float64(s.width)
			if s.rng.Float64() >= p {
				src = s.conceptAt(segment - 1)
			}
		} else if segment < s.segments-1 && seg-into <= s.width/2 {
			p := 0.5 - float64(seg-into)/float64(s.width)
			if s.rng.Float64() < p {
				src = s.conceptAt(segment + 1)
			}
		}
	}
	inst, err := src.Next()
	if err == stream.ErrEnd {
		src.Reset()
		inst, err = src.Next()
	}
	if err != nil {
		return stream.Instance{}, err
	}
	s.pos++
	return inst, nil
}
