package synth

import (
	"testing"

	"repro/internal/stream"
)

func sameRun(t *testing.T, a, b stream.Stream, n int) {
	t.Helper()
	ia := drain(t, a, n)
	ib := drain(t, b, n)
	for i := 0; i < n; i++ {
		if ia[i].Y != ib[i].Y {
			t.Fatalf("label %d diverged", i)
		}
		for j := range ia[i].X {
			if ia[i].X[j] != ib[i].X[j] {
				t.Fatalf("instance %d feature %d diverged", i, j)
			}
		}
	}
}

// With zero noise the planted labels follow the concept exactly, and the
// positive subset is the odd level codes.
func TestCategoricalConceptPlantedLabels(t *testing.T) {
	c := NewCategoricalConcept(2_000, 6, 0, 1)
	for i := 0; i < 2_000; i++ {
		inst, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		lv := int(inst.X[2])
		if want := lv % 2; inst.Y != want {
			t.Fatalf("instance %d: level %d labelled %d, want %d", i, lv, inst.Y, want)
		}
	}
	pos := c.PositiveLevels()
	if len(pos) != 3 || pos[0] != 1 || pos[2] != 5 {
		t.Fatalf("PositiveLevels = %v", pos)
	}
	if err := c.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
	if !c.Schema().IsCategorical(2) || c.Schema().Cardinality(2) != 6 {
		t.Fatal("schema does not declare the categorical feature")
	}
}

// The factorised view serves the identical data under a numeric-only
// schema.
func TestCategoricalConceptFactorised(t *testing.T) {
	native := NewCategoricalConcept(500, 8, 0.1, 7)
	fact := native.Factorised()
	if fact.Schema().HasCategorical() {
		t.Fatal("factorised schema still declares categorical kinds")
	}
	native.Reset()
	sameRun(t, native, fact, 500)
}

// Identically-built switches replay identical streams, and Reset rewinds
// exactly.
func TestConceptSwitchDeterministic(t *testing.T) {
	build := func() *ConceptSwitch {
		return NewGradualSwitch(1_000, 200, 5,
			NewCategoricalConcept(600, 4, 0.1, 1),
			NewCategoricalConcept(600, 4, 0.1, 2),
		)
	}
	sameRun(t, build(), build(), 1_000)

	s := build()
	first := drain(t, s, 1_000)
	s.Reset()
	again := drain(t, s, 1_000)
	for i := range first {
		for j := range first[i].X {
			if first[i].X[j] != again[i].X[j] {
				t.Fatalf("Reset replay diverged at %d", i)
			}
		}
	}
}

// Abrupt switches serve each concept in its own segment; recurring
// switches cycle.
func TestConceptSwitchSegments(t *testing.T) {
	a := NewSEA(1_000, 0, 1)
	b := NewSEA(1_000, 0, 2)
	sw := NewAbruptSwitch(1_000, 9, a, b)
	if got := sw.DriftPositions(); len(got) != 1 || got[0] != 500 {
		t.Fatalf("DriftPositions = %v", got)
	}
	if sw.Len() != 1_000 {
		t.Fatalf("Len = %d", sw.Len())
	}
	drain(t, sw, 1_000)
	if _, err := sw.Next(); err != stream.ErrEnd {
		t.Fatalf("want ErrEnd, got %v", err)
	}

	rec := NewRecurringSwitch(900, 3, 9,
		NewSEA(400, 0, 1), NewSEA(400, 0, 2))
	if got := rec.DriftPositions(); len(got) != 2 {
		t.Fatalf("recurring DriftPositions = %v", got)
	}
	// Segment 2 replays concept 0 (2 mod 2): the stream must not end
	// early even though each inner concept is shorter than the scenario.
	drain(t, rec, 900)
}

// Concepts with mismatched shapes are rejected at construction.
func TestConceptSwitchShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched concept shapes did not panic")
		}
	}()
	NewAbruptSwitch(100, 1, NewSEA(100, 0, 1), NewHyperplane(100, 5, 0, 1))
}

// The switch schema preserves the feature kinds of its concepts, so
// categorical drift scenarios flow through learners natively.
func TestConceptSwitchKeepsKinds(t *testing.T) {
	sw := NewAbruptSwitch(200, 3,
		NewCategoricalConcept(100, 4, 0, 1),
		NewCategoricalConcept(100, 4, 0, 2))
	if !sw.Schema().IsCategorical(2) {
		t.Fatal("switch schema lost the categorical kind")
	}
	if err := sw.Schema().Validate(); err != nil {
		t.Fatal(err)
	}
}
