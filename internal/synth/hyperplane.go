package synth

import (
	"math/rand"

	"repro/internal/stream"
)

// Hyperplane is the rotating-hyperplane generator: features are uniform
// in [0,1]^m, the label indicates on which side of a moving hyperplane
// the point falls, and a subset of the weights drifts continuously —
// incremental concept drift over the whole stream (Section VI-B). Labels
// flip with the noise probability (the paper's 10% perturbation).
type Hyperplane struct {
	seed          int64
	samples       int
	features      int
	driftFeatures int
	magChange     float64
	sigma         float64 // probability of a drift direction flip
	noise         float64

	rng        *rand.Rand
	pos        int
	weights    []float64
	directions []float64
}

// NewHyperplane returns the paper's Hyperplane stream: 50 features,
// continuous incremental drift, 10% noise.
func NewHyperplane(samples, features int, noise float64, seed int64) *Hyperplane {
	if samples <= 0 {
		samples = 500_000
	}
	if features <= 0 {
		features = 50
	}
	h := &Hyperplane{
		seed:          seed,
		samples:       samples,
		features:      features,
		driftFeatures: features / 5,
		magChange:     0.001,
		sigma:         0.1,
		noise:         noise,
	}
	if h.driftFeatures < 2 {
		h.driftFeatures = 2
	}
	h.Reset()
	return h
}

// Schema implements stream.Stream.
func (h *Hyperplane) Schema() stream.Schema {
	return stream.Schema{NumFeatures: h.features, NumClasses: 2, Name: "Hyperplane"}
}

// Len implements stream.Sized.
func (h *Hyperplane) Len() int { return h.samples }

// Reset implements stream.Stream.
func (h *Hyperplane) Reset() {
	h.rng = rand.New(rand.NewSource(h.seed))
	h.pos = 0
	h.weights = make([]float64, h.features)
	h.directions = make([]float64, h.features)
	for j := range h.weights {
		h.weights[j] = h.rng.Float64()
		h.directions[j] = 1
	}
}

// Next implements stream.Stream.
func (h *Hyperplane) Next() (stream.Instance, error) {
	if h.pos >= h.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	x := make([]float64, h.features)
	var dot, wsum float64
	for j := range x {
		x[j] = h.rng.Float64()
		dot += h.weights[j] * x[j]
		wsum += h.weights[j]
	}
	y := 0
	if dot >= wsum/2 {
		y = 1
	}
	if h.noise > 0 && h.rng.Float64() < h.noise {
		y = 1 - y
	}

	// Incremental rotation: the first driftFeatures weights move by
	// magChange each step; each direction flips with probability sigma.
	for j := 0; j < h.driftFeatures; j++ {
		h.weights[j] += h.directions[j] * h.magChange
		if h.weights[j] < 0 || h.weights[j] > 1 {
			h.directions[j] = -h.directions[j]
			h.weights[j] = clamp(h.weights[j], 0, 1)
		} else if h.rng.Float64() < h.sigma {
			h.directions[j] = -h.directions[j]
		}
	}
	h.pos++
	return stream.Instance{X: x, Y: y}, nil
}
