package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// CategoricalConcept is a planted-concept stream whose label depends only
// on a categorical attribute: y = 1 exactly when the drawn level belongs
// to a hidden subset of levels (plus label noise). The positive subset is
// the ODD level codes {1, 3, 5, ...}, so the level codes alternate
// between the classes: no numeric threshold on the code separates them —
// every cut point leaves both classes on both sides — while a single
// native equality or subset split recovers the concept exactly. This is
// the adversarial ordering that makes factorised "categorical as float"
// baselines provably underperform native categorical splits (the
// Table V-style payoff scenario).
//
// The stream has two uniform numeric noise features and one categorical
// feature of the given cardinality; levels are drawn uniformly.
type CategoricalConcept struct {
	seed    int64
	samples int
	card    int
	noise   float64

	rng *rand.Rand
	pos int
}

// NewCategoricalConcept returns a planted categorical-concept stream.
// samples <= 0 defaults to 100k, card < 2 defaults to 8.
func NewCategoricalConcept(samples, card int, noise float64, seed int64) *CategoricalConcept {
	if samples <= 0 {
		samples = 100_000
	}
	if card < 2 {
		card = 8
	}
	c := &CategoricalConcept{seed: seed, samples: samples, card: card, noise: noise}
	c.Reset()
	return c
}

// Schema implements stream.Stream. Feature 2 is categorical with the
// configured cardinality and named levels lv0..lv<card-1>.
func (c *CategoricalConcept) Schema() stream.Schema {
	levels := make([]string, c.card)
	for i := range levels {
		levels[i] = fmt.Sprintf("lv%d", i)
	}
	return stream.Schema{
		NumFeatures:  3,
		NumClasses:   2,
		Name:         "CatConcept",
		FeatureNames: []string{"n1", "n2", "cat"},
		Kinds: []stream.FeatureKind{
			stream.Numeric(), stream.Numeric(), stream.CategoricalLevels(levels...),
		},
	}
}

// Len implements stream.Sized.
func (c *CategoricalConcept) Len() int { return c.samples }

// Reset implements stream.Stream.
func (c *CategoricalConcept) Reset() {
	c.rng = rand.New(rand.NewSource(c.seed))
	c.pos = 0
}

// PositiveLevels returns the hidden positive subset (the odd level
// codes), for tests asserting that a learner recovered the concept.
func (c *CategoricalConcept) PositiveLevels() []int {
	var out []int
	for lv := 1; lv < c.card; lv += 2 {
		out = append(out, lv)
	}
	return out
}

// Next implements stream.Stream.
func (c *CategoricalConcept) Next() (stream.Instance, error) {
	if c.pos >= c.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	n1 := c.rng.Float64()
	n2 := c.rng.Float64()
	lv := c.rng.Intn(c.card)
	y := lv % 2
	if c.noise > 0 && c.rng.Float64() < c.noise {
		y = 1 - y
	}
	c.pos++
	return stream.Instance{X: []float64{n1, n2, float64(lv)}, Y: y}, nil
}

// Factorised returns the same stream with the categorical kind erased
// from the schema: the level code is served as a plain numeric feature,
// the "categorical as float" baseline that native splits are measured
// against.
func (c *CategoricalConcept) Factorised() stream.Stream {
	return &factorised{inner: NewCategoricalConcept(c.samples, c.card, c.noise, c.seed)}
}

// factorised strips the Kinds from an inner stream's schema, presenting
// every feature as numeric.
type factorised struct {
	inner *CategoricalConcept
}

func (f *factorised) Schema() stream.Schema {
	s := f.inner.Schema()
	s.Kinds = nil
	s.Name += " (factorised)"
	return s
}

func (f *factorised) Len() int                       { return f.inner.Len() }
func (f *factorised) Reset()                         { f.inner.Reset() }
func (f *factorised) Next() (stream.Instance, error) { return f.inner.Next() }
