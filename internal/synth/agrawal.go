package synth

import (
	"math"
	"math/rand"

	"repro/internal/stream"
)

// Agrawal is the Agrawal generator: nine mixed-type features describing a
// loan applicant and ten classic classification functions. The paper's
// configuration uses a 1M stream with incremental drift between
// observations 100k-200k, 300k-500k and 800k-900k (Section VI-B): inside a
// drift window the active classification function blends into the next
// one with a sigmoid switching probability (the scikit-multiflow
// semantics), and numeric features carry 10% perturbation noise. Features
// are emitted min-max normalised to [0, 1].
type Agrawal struct {
	seed         int64
	samples      int
	perturbation float64

	rng *rand.Rand
	pos int
}

// agrawalDriftWindows are the fractional [start, end) drift windows; the
// active function index increments across each window.
var agrawalDriftWindows = [][2]float64{{0.1, 0.2}, {0.3, 0.5}, {0.8, 0.9}}

// NewAgrawal returns the paper's Agrawal stream.
func NewAgrawal(samples int, perturbation float64, seed int64) *Agrawal {
	if samples <= 0 {
		samples = 1_000_000
	}
	a := &Agrawal{seed: seed, samples: samples, perturbation: perturbation}
	a.Reset()
	return a
}

// Schema implements stream.Stream.
func (a *Agrawal) Schema() stream.Schema {
	return stream.Schema{
		NumFeatures: 9,
		NumClasses:  2,
		Name:        "Agrawal",
		FeatureNames: []string{
			"salary", "commission", "age", "elevel", "car", "zipcode", "hvalue", "hyears", "loan",
		},
	}
}

// Len implements stream.Sized.
func (a *Agrawal) Len() int { return a.samples }

// Reset implements stream.Stream.
func (a *Agrawal) Reset() {
	a.rng = rand.New(rand.NewSource(a.seed))
	a.pos = 0
}

// activeFunction returns the classification function for position pos,
// blending across drift windows with a sigmoid switch probability.
func (a *Agrawal) activeFunction(pos int) int {
	frac := float64(pos) / float64(a.samples)
	fn := 0
	for _, w := range agrawalDriftWindows {
		switch {
		case frac >= w[1]:
			fn++
		case frac >= w[0]:
			// Inside the window: probability of the next concept follows
			// the scikit-multiflow sigmoid over the window width.
			center := (w[0] + w[1]) / 2
			width := w[1] - w[0]
			p := 1 / (1 + math.Exp(-8*(frac-center)/width))
			if a.rng.Float64() < p {
				fn++
			}
			return fn
		}
	}
	return fn
}

// Next implements stream.Stream.
func (a *Agrawal) Next() (stream.Instance, error) {
	if a.pos >= a.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	rng := a.rng

	salary := 20000 + rng.Float64()*130000
	commission := 0.0
	if salary < 75000 {
		commission = 10000 + rng.Float64()*65000
	}
	age := float64(20 + rng.Intn(61))
	elevel := float64(rng.Intn(5))
	car := float64(1 + rng.Intn(20))
	zipcode := float64(rng.Intn(9))
	hvalue := (9 - zipcode) * 100000 * (0.5 + rng.Float64())
	hyears := float64(1 + rng.Intn(30))
	loan := rng.Float64() * 500000

	fn := a.activeFunction(a.pos)
	y := agrawalLabel(fn, salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan)

	if a.perturbation > 0 {
		perturb := func(v, lo, hi float64) float64 {
			v += (rng.Float64()*2 - 1) * a.perturbation * (hi - lo)
			return clamp(v, lo, hi)
		}
		salary = perturb(salary, 20000, 150000)
		if commission > 0 {
			commission = perturb(commission, 10000, 75000)
		}
		age = perturb(age, 20, 80)
		hvalue = perturb(hvalue, 0, 900000*1.5)
		hyears = perturb(hyears, 1, 30)
		loan = perturb(loan, 0, 500000)
	}

	x := []float64{
		norm(salary, 20000, 150000),
		norm(commission, 0, 75000),
		norm(age, 20, 80),
		elevel / 4,
		(car - 1) / 19,
		zipcode / 8,
		norm(hvalue, 0, 900000*1.5),
		norm(hyears, 1, 30),
		norm(loan, 0, 500000),
	}
	a.pos++
	return stream.Instance{X: x, Y: y}, nil
}

// agrawalLabel evaluates classification functions 0-3 of the Agrawal
// family (group A -> class 0, group B -> class 1).
func agrawalLabel(fn int, salary, commission, age, elevel, _, _, hvalue, hyears, loan float64) int {
	groupA := false
	switch fn % 4 {
	case 0:
		groupA = age < 40 || age >= 60
	case 1:
		switch {
		case age < 40:
			groupA = salary >= 50000 && salary <= 100000
		case age < 60:
			groupA = salary >= 75000 && salary <= 125000
		default:
			groupA = salary >= 25000 && salary <= 75000
		}
	case 2:
		switch {
		case age < 40:
			groupA = elevel == 0 || elevel == 1
		case age < 60:
			groupA = elevel >= 1 && elevel <= 3
		default:
			groupA = elevel >= 2
		}
	case 3:
		disposable := 0.67*(salary+commission) - 0.2*loan - 20000
		equity := 0.0
		if hyears >= 20 {
			equity = 0.1 * hvalue * (hyears - 20)
		}
		groupA = disposable-5000*elevel+0.1*equity > 0
	}
	if groupA {
		return 0
	}
	return 1
}

func norm(v, lo, hi float64) float64 { return clamp((v-lo)/(hi-lo), 0, 1) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
