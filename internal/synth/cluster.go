package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/stream"
)

// DriftKind selects the concept-drift mechanism of a Cluster stream.
type DriftKind int

const (
	// DriftNone keeps the concept stationary.
	DriftNone DriftKind = iota
	// DriftAbrupt re-draws the cluster means at each drift point.
	DriftAbrupt
	// DriftIncremental interpolates the cluster means linearly between
	// consecutive anchor concepts over the whole stream.
	DriftIncremental
	// DriftWalk applies a slow Gaussian random walk to the cluster means
	// (autocorrelated level shifts, e.g. electricity prices or sensor
	// drift).
	DriftWalk
)

// ClusterConfig parameterises a Gaussian-cluster surrogate stream: c
// classes, each represented by a few Gaussian clusters in [0,1]^m, class
// priors matching a target imbalance, and a drift schedule. DESIGN.md §4
// documents which real-world data set each configuration stands in for.
type ClusterConfig struct {
	// Name labels the stream (e.g. "Electricity*"; the asterisk marks a
	// surrogate).
	Name string
	// Samples, Features, Classes give the Table I dimensions.
	Samples  int
	Features int
	Classes  int
	// Priors are the class probabilities (length Classes, summing to ~1).
	Priors []float64
	// ClustersPerClass is the number of Gaussian modes per class
	// (default 2).
	ClustersPerClass int
	// Std is the per-dimension standard deviation of each cluster —
	// the difficulty knob (default 0.12).
	Std float64
	// LabelNoise flips the label to a random other class with this
	// probability.
	LabelNoise float64
	// Drift selects the drift mechanism; DriftPoints are fractional
	// positions in (0,1) where abrupt concepts change or incremental
	// anchors sit; WalkStd is the per-instance walk scale for DriftWalk.
	Drift       DriftKind
	DriftPoints []float64
	WalkStd     float64
	// Seed fixes the stream.
	Seed int64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ClustersPerClass <= 0 {
		c.ClustersPerClass = 2
	}
	if c.Std <= 0 {
		c.Std = 0.12
	}
	if c.Samples <= 0 {
		c.Samples = 10_000
	}
	if c.Classes < 2 {
		c.Classes = 2
	}
	if c.Features < 1 {
		c.Features = 2
	}
	if len(c.Priors) != c.Classes {
		c.Priors = UniformPriors(c.Classes)
	}
	if c.Drift == DriftWalk && c.WalkStd <= 0 {
		c.WalkStd = 0.0005
	}
	return c
}

// UniformPriors returns equal class priors.
func UniformPriors(classes int) []float64 {
	p := make([]float64, classes)
	for i := range p {
		p[i] = 1 / float64(classes)
	}
	return p
}

// MajorityPriors returns priors where class 0 holds the given share and
// the remaining classes split the rest evenly — how the surrogates match
// the Table I majority-class counts.
func MajorityPriors(classes int, majorityShare float64) []float64 {
	p := make([]float64, classes)
	p[0] = majorityShare
	rest := (1 - majorityShare) / float64(classes-1)
	for i := 1; i < classes; i++ {
		p[i] = rest
	}
	return p
}

// Cluster is the Gaussian-cluster surrogate stream.
type Cluster struct {
	cfg     ClusterConfig
	anchors [][]float64 // anchor concepts: [anchor][class*g*m] flattened means
	cum     []float64   // cumulative priors

	rng  *rand.Rand
	pos  int
	walk []float64 // current mean offsets for DriftWalk
}

// NewCluster builds the surrogate stream from its configuration.
func NewCluster(cfg ClusterConfig) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg}

	// Anchor concepts are drawn from a dedicated RNG so the data RNG
	// (reset per replay) never disturbs them.
	anchorRng := rand.New(rand.NewSource(cfg.Seed*7919 + 17))
	numAnchors := 1
	if cfg.Drift == DriftAbrupt || cfg.Drift == DriftIncremental {
		numAnchors = len(cfg.DriftPoints) + 1
	}
	dim := cfg.Classes * cfg.ClustersPerClass * cfg.Features
	c.anchors = make([][]float64, numAnchors)
	for a := range c.anchors {
		means := make([]float64, dim)
		for i := range means {
			means[i] = 0.2 + 0.6*anchorRng.Float64()
		}
		c.anchors[a] = means
	}

	c.cum = make([]float64, cfg.Classes)
	var acc float64
	for k, p := range cfg.Priors {
		acc += p
		c.cum[k] = acc
	}
	c.Reset()
	return c
}

// Schema implements stream.Stream.
func (c *Cluster) Schema() stream.Schema {
	return stream.Schema{NumFeatures: c.cfg.Features, NumClasses: c.cfg.Classes, Name: c.cfg.Name}
}

// Len implements stream.Sized.
func (c *Cluster) Len() int { return c.cfg.Samples }

// Reset implements stream.Stream.
func (c *Cluster) Reset() {
	c.rng = rand.New(rand.NewSource(c.cfg.Seed))
	c.pos = 0
	c.walk = make([]float64, len(c.anchors[0]))
}

// meanAt returns the mean of (class, cluster, feature) at stream position
// pos under the drift schedule.
func (c *Cluster) meanAt(pos int, idx int) float64 {
	frac := float64(pos) / float64(c.cfg.Samples)
	switch c.cfg.Drift {
	case DriftAbrupt:
		seg := 0
		for _, p := range c.cfg.DriftPoints {
			if frac >= p {
				seg++
			}
		}
		return c.anchors[seg][idx]
	case DriftIncremental:
		// Piecewise-linear interpolation over the anchor positions
		// 0, p1, ..., pk, 1 (the last anchor holds from pk to the end).
		points := append(append([]float64{0}, c.cfg.DriftPoints...), 1)
		for s := 0; s < len(points)-1; s++ {
			if frac >= points[s] && frac < points[s+1] {
				a0 := c.anchors[s]
				a1 := c.anchors[minInt(s+1, len(c.anchors)-1)]
				t := (frac - points[s]) / (points[s+1] - points[s])
				return a0[idx]*(1-t) + a1[idx]*t
			}
		}
		return c.anchors[len(c.anchors)-1][idx]
	case DriftWalk:
		return c.anchors[0][idx] + c.walk[idx]
	default:
		return c.anchors[0][idx]
	}
}

// Next implements stream.Stream.
func (c *Cluster) Next() (stream.Instance, error) {
	if c.pos >= c.cfg.Samples {
		return stream.Instance{}, stream.ErrEnd
	}
	rng := c.rng

	// Draw the class from the priors, then one of its clusters.
	u := rng.Float64()
	class := 0
	for k, cp := range c.cum {
		if u <= cp {
			class = k
			break
		}
		class = k
	}
	cluster := rng.Intn(c.cfg.ClustersPerClass)
	base := (class*c.cfg.ClustersPerClass + cluster) * c.cfg.Features

	x := make([]float64, c.cfg.Features)
	for j := range x {
		mean := c.meanAt(c.pos, base+j)
		x[j] = clamp(mean+rng.NormFloat64()*c.cfg.Std, 0, 1)
	}

	y := class
	if c.cfg.LabelNoise > 0 && rng.Float64() < c.cfg.LabelNoise {
		y = rng.Intn(c.cfg.Classes)
	}

	if c.cfg.Drift == DriftWalk {
		for i := range c.walk {
			c.walk[i] += rng.NormFloat64() * c.cfg.WalkStd
			c.walk[i] = clamp(c.walk[i], -0.3, 0.3)
		}
	}
	c.pos++
	return stream.Instance{X: x, Y: y}, nil
}

// String describes the configuration.
func (c *Cluster) String() string {
	return fmt.Sprintf("Cluster{%s: n=%d, m=%d, c=%d, drift=%d}",
		c.cfg.Name, c.cfg.Samples, c.cfg.Features, c.cfg.Classes, c.cfg.Drift)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
