package synth

import (
	"math/rand"

	"repro/internal/stream"
)

// Piecewise generates a genuinely non-linear stream: the feature space is
// split at x0 = 0.5 and each side follows its own random linear rule, so
// a single linear model cannot represent the concept and a Model Tree
// must split (the Figure 1 situation). Optional abrupt drifts re-draw
// both rules. It is the structure-sensitive workload of the ablation
// study (E9): pruning, warm-starting and inner-node updates all become
// observable on it.
type Piecewise struct {
	seed    int64
	samples int
	m       int
	noise   float64
	drifts  int

	rules [][]float64 // per concept: 2 rules of m weights + bias each
	rng   *rand.Rand
	pos   int
}

// NewPiecewise returns a piecewise stream over m features with the given
// number of abrupt drifts (equal-length segments).
func NewPiecewise(samples, m int, noise float64, drifts int, seed int64) *Piecewise {
	if samples <= 0 {
		samples = 100_000
	}
	if m < 2 {
		m = 2
	}
	if drifts < 0 {
		drifts = 0
	}
	p := &Piecewise{seed: seed, samples: samples, m: m, noise: noise, drifts: drifts}
	ruleRng := rand.New(rand.NewSource(seed*6151 + 11))
	for concept := 0; concept <= drifts; concept++ {
		for side := 0; side < 2; side++ {
			rule := make([]float64, m+1)
			for j := 0; j < m; j++ {
				rule[j] = ruleRng.NormFloat64() * 3
			}
			// Centre the bias so both labels occur on each side.
			var mid float64
			for j := 0; j < m; j++ {
				mid += rule[j] * 0.5
			}
			rule[m] = -mid
			p.rules = append(p.rules, rule)
		}
	}
	p.Reset()
	return p
}

// Schema implements stream.Stream.
func (p *Piecewise) Schema() stream.Schema {
	return stream.Schema{NumFeatures: p.m, NumClasses: 2, Name: "Piecewise"}
}

// Len implements stream.Sized.
func (p *Piecewise) Len() int { return p.samples }

// Reset implements stream.Stream.
func (p *Piecewise) Reset() {
	p.rng = rand.New(rand.NewSource(p.seed))
	p.pos = 0
}

// Next implements stream.Stream.
func (p *Piecewise) Next() (stream.Instance, error) {
	if p.pos >= p.samples {
		return stream.Instance{}, stream.ErrEnd
	}
	x := make([]float64, p.m)
	for j := range x {
		x[j] = p.rng.Float64()
	}
	segment := p.pos / (p.samples/(p.drifts+1) + 1)
	side := 0
	if x[0] > 0.5 {
		side = 1
	}
	rule := p.rules[segment*2+side]
	score := rule[p.m]
	for j := 0; j < p.m; j++ {
		score += rule[j] * x[j]
	}
	y := 0
	if score > 0 {
		y = 1
	}
	if p.noise > 0 && p.rng.Float64() < p.noise {
		y = 1 - y
	}
	p.pos++
	return stream.Instance{X: x, Y: y}, nil
}
