package split

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestEntropyKnownValues(t *testing.T) {
	if got := entropy([]float64{5, 5}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("H(1/2,1/2) = %v, want 1", got)
	}
	if got := entropy([]float64{10, 0}); got != 0 {
		t.Fatalf("H(1,0) = %v, want 0", got)
	}
	if got := entropy([]float64{1, 1, 1, 1}); !almostEq(got, 2, 1e-12) {
		t.Fatalf("H(uniform 4) = %v, want 2", got)
	}
	if got := entropy(nil); got != 0 {
		t.Fatalf("H(empty) = %v", got)
	}
}

func TestGiniKnownValues(t *testing.T) {
	if got := gini([]float64{5, 5}); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("gini(1/2,1/2) = %v", got)
	}
	if got := gini([]float64{10, 0}); got != 0 {
		t.Fatalf("gini(pure) = %v", got)
	}
}

func TestInfoGainPerfectSplit(t *testing.T) {
	pre := []float64{10, 10}
	post := [][]float64{{10, 0}, {0, 10}}
	if got := (InfoGain{}).Merit(pre, post); !almostEq(got, 1, 1e-12) {
		t.Fatalf("perfect split merit = %v, want 1", got)
	}
	// Useless split: same distribution in both branches.
	useless := [][]float64{{5, 5}, {5, 5}}
	if got := (InfoGain{}).Merit(pre, useless); !almostEq(got, 0, 1e-12) {
		t.Fatalf("useless split merit = %v, want 0", got)
	}
}

// Property: information gain is never negative when the branches
// partition the parent.
func TestInfoGainNonNegativeOnPartitions(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		left := []float64{float64(a0), float64(a1)}
		right := []float64{float64(b0), float64(b1)}
		pre := []float64{left[0] + right[0], left[1] + right[1]}
		if pre[0]+pre[1] == 0 {
			return true
		}
		return (InfoGain{}).Merit(pre, [][]float64{left, right}) >= -1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGiniGainPerfectSplit(t *testing.T) {
	pre := []float64{10, 10}
	post := [][]float64{{10, 0}, {0, 10}}
	if got := (GiniGain{}).Merit(pre, post); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("perfect gini gain = %v, want 0.5", got)
	}
}

func TestCriterionRanges(t *testing.T) {
	if (InfoGain{}).Range(2) != 1 {
		t.Fatal("info gain range for c=2 must be 1")
	}
	if got := (InfoGain{}).Range(8); !almostEq(got, 3, 1e-12) {
		t.Fatalf("info gain range c=8 = %v, want 3", got)
	}
	if (InfoGain{}).Range(0) != 1 {
		t.Fatal("range floor")
	}
	if (GiniGain{}).Range(99) != 1 {
		t.Fatal("gini range must be 1")
	}
}

func TestHoeffdingBound(t *testing.T) {
	// Known value: R=1, delta=0.05, n=100.
	want := math.Sqrt(math.Log(20) / 200)
	if got := HoeffdingBound(1, 0.05, 100); !almostEq(got, want, 1e-12) {
		t.Fatalf("bound = %v, want %v", got, want)
	}
	// Monotone: shrinks with n, grows with R, grows as delta shrinks.
	if HoeffdingBound(1, 0.05, 1000) >= HoeffdingBound(1, 0.05, 100) {
		t.Fatal("bound must shrink with n")
	}
	if HoeffdingBound(2, 0.05, 100) <= HoeffdingBound(1, 0.05, 100) {
		t.Fatal("bound must grow with R")
	}
	if HoeffdingBound(1, 0.01, 100) <= HoeffdingBound(1, 0.05, 100) {
		t.Fatal("bound must grow as delta shrinks")
	}
	if !math.IsInf(HoeffdingBound(1, 0.05, 0), 1) {
		t.Fatal("n=0 should give +Inf")
	}
}

func TestTargetStats(t *testing.T) {
	var s TargetStats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v, 1)
	}
	if s.N != 8 || s.Sum != 40 {
		t.Fatalf("stats = %+v", s)
	}
	if !almostEq(s.Std(), 2, 1e-12) {
		t.Fatalf("std = %v, want 2", s.Std())
	}
}

// Property: Merge then Sub round-trips.
func TestTargetStatsMergeSub(t *testing.T) {
	f := func(av, bv [5]float64) bool {
		var a, b TargetStats
		for _, v := range av {
			a.Add(math.Mod(v, 1e3), 1)
		}
		for _, v := range bv {
			b.Add(math.Mod(v, 1e3), 1)
		}
		m := a.Merge(b)
		back := m.Sub(b)
		return almostEq(back.N, a.N, 1e-9) && almostEq(back.Sum, a.Sum, 1e-9) && almostEq(back.SumSq, a.SumSq, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSDRPerfectSplit(t *testing.T) {
	// Parent holds two constant groups; splitting them removes all
	// deviation: SDR = parent std.
	var parent, left, right TargetStats
	for i := 0; i < 50; i++ {
		parent.Add(0, 1)
		parent.Add(10, 1)
		left.Add(0, 1)
		right.Add(10, 1)
	}
	sdr := SDR(parent, left, right)
	if !almostEq(sdr, parent.Std(), 1e-12) {
		t.Fatalf("perfect SDR = %v, want %v", sdr, parent.Std())
	}
	// Useless split: same distribution on both sides -> SDR ~ 0.
	var l2, r2 TargetStats
	rng := rand.New(rand.NewSource(1))
	var p2 TargetStats
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()
		p2.Add(v, 1)
		if i%2 == 0 {
			l2.Add(v, 1)
		} else {
			r2.Add(v, 1)
		}
	}
	if sdr := SDR(p2, l2, r2); sdr > 0.05 {
		t.Fatalf("useless SDR = %v, want ~0", sdr)
	}
}

func TestSDREmptyParent(t *testing.T) {
	if SDR(TargetStats{}, TargetStats{}, TargetStats{}) != 0 {
		t.Fatal("empty parent SDR must be 0")
	}
}

func TestStdDegenerate(t *testing.T) {
	var s TargetStats
	s.Add(5, 1)
	if s.Std() != 0 {
		t.Fatal("single observation std must be 0")
	}
	// Numerical guard: tiny negative variance from cancellation.
	s2 := TargetStats{N: 2, Sum: 2e8, SumSq: 2e16 - 1e-6}
	if math.IsNaN(s2.Std()) {
		t.Fatal("Std must not be NaN on cancellation")
	}
}
