// Package split provides the split-decision machinery shared by the
// Hoeffding-style trees: impurity criteria (information gain, Gini),
// standard deviation reduction for FIMT-DD, and the Hoeffding bound.
package split

import "math"

// Criterion scores a candidate binary split from class distributions.
type Criterion interface {
	// Merit returns the improvement of splitting pre into the post
	// branches (higher is better; <= 0 means no improvement).
	Merit(pre []float64, post [][]float64) float64
	// Range returns the value range R of the merit for the Hoeffding
	// bound, given the number of classes.
	Range(numClasses int) float64
	// Name identifies the criterion in reports.
	Name() string
}

func sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// entropy returns the Shannon entropy (base 2) of an unnormalised
// class-count vector.
func entropy(counts []float64) float64 {
	total := sum(counts)
	if total <= 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// gini returns the Gini impurity of an unnormalised class-count vector.
func gini(counts []float64) float64 {
	total := sum(counts)
	if total <= 0 {
		return 0
	}
	var g float64 = 1
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

// InfoGain is the information-gain criterion used by the VFDT.
type InfoGain struct{}

// Merit implements Criterion.
func (InfoGain) Merit(pre []float64, post [][]float64) float64 {
	total := sum(pre)
	if total <= 0 {
		return 0
	}
	after := 0.0
	for _, branch := range post {
		w := sum(branch) / total
		after += w * entropy(branch)
	}
	return entropy(pre) - after
}

// Range implements Criterion: log2(c), at least 1.
func (InfoGain) Range(numClasses int) float64 {
	if numClasses < 2 {
		numClasses = 2
	}
	return math.Log2(float64(numClasses))
}

// Name implements Criterion.
func (InfoGain) Name() string { return "info_gain" }

// GiniGain is the Gini-impurity reduction criterion.
type GiniGain struct{}

// Merit implements Criterion.
func (GiniGain) Merit(pre []float64, post [][]float64) float64 {
	total := sum(pre)
	if total <= 0 {
		return 0
	}
	after := 0.0
	for _, branch := range post {
		w := sum(branch) / total
		after += w * gini(branch)
	}
	return gini(pre) - after
}

// Range implements Criterion.
func (GiniGain) Range(int) float64 { return 1 }

// Name implements Criterion.
func (GiniGain) Name() string { return "gini" }

// HoeffdingBound returns epsilon = sqrt(R^2 ln(1/delta) / (2n)): with
// probability 1-delta the observed mean of a range-R variable after n
// observations is within epsilon of its true mean (Section I-B of the
// paper; Domingos & Hulten 2000).
func HoeffdingBound(rangeR, delta, n float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(rangeR * rangeR * math.Log(1/delta) / (2 * n))
}

// TargetStats accumulates the count, sum and sum of squares of a numeric
// target, the sufficient statistics of standard deviation reduction.
type TargetStats struct {
	N     float64
	Sum   float64
	SumSq float64
}

// Add incorporates a target value with the given weight.
func (t *TargetStats) Add(y, w float64) {
	t.N += w
	t.Sum += y * w
	t.SumSq += y * y * w
}

// Sub returns t minus other (used to derive right-branch statistics).
func (t TargetStats) Sub(other TargetStats) TargetStats {
	return TargetStats{N: t.N - other.N, Sum: t.Sum - other.Sum, SumSq: t.SumSq - other.SumSq}
}

// Merge returns the combination of t and other.
func (t TargetStats) Merge(other TargetStats) TargetStats {
	return TargetStats{N: t.N + other.N, Sum: t.Sum + other.Sum, SumSq: t.SumSq + other.SumSq}
}

// Std returns the population standard deviation implied by the statistics.
func (t TargetStats) Std() float64 {
	if t.N <= 1 {
		return 0
	}
	v := t.SumSq/t.N - (t.Sum/t.N)*(t.Sum/t.N)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// SDR returns the standard deviation reduction of splitting parent into
// left and right — the FIMT-DD split merit (Section II-B).
func SDR(parent, left, right TargetStats) float64 {
	if parent.N <= 0 {
		return 0
	}
	return parent.Std() -
		left.N/parent.N*left.Std() -
		right.N/parent.N*right.Std()
}
