package rng

import (
	"math/rand"
	"testing"
)

// TestMatchesStdlib verifies the counted source reproduces the standard
// source's sequence bit for bit across the mixed draw methods learners
// actually use.
func TestMatchesStdlib(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	got, _ := New(42)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := ref.Float64(), got.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %g vs %g", i, a, b)
			}
		case 2:
			if a, b := ref.Intn(97), got.Intn(97); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at %d: %g vs %g", i, a, b)
			}
		}
	}
}

// TestRestoreContinuesSequence checks the core checkpoint property: a
// restored generator continues exactly where the saved one stopped.
func TestRestoreContinuesSequence(t *testing.T) {
	orig, src := New(7)
	for i := 0; i < 257; i++ {
		switch i % 3 {
		case 0:
			orig.Float64()
		case 1:
			orig.Intn(13)
		default:
			orig.NormFloat64()
		}
	}
	st := src.State()
	resumed, rsrc := Restore(st)
	if rsrc.State() != st {
		t.Fatalf("restored state %+v, want %+v", rsrc.State(), st)
	}
	for i := 0; i < 500; i++ {
		if a, b := orig.Float64(), resumed.Float64(); a != b {
			t.Fatalf("restored sequence diverged at %d: %g vs %g", i, a, b)
		}
	}
}

// TestSeedResetsCount verifies Seed restarts the draw count so a reused
// generator checkpoints correctly.
func TestSeedResetsCount(t *testing.T) {
	r, src := New(1)
	r.Float64()
	src.Seed(9)
	if st := src.State(); st.Seed != 9 || st.Draws != 0 {
		t.Fatalf("after Seed: %+v", st)
	}
	a := r.Float64()
	b := rand.New(rand.NewSource(9)).Float64()
	if a != b {
		t.Fatalf("reseeded draw %g, want %g", a, b)
	}
}
