// Package rng provides the checkpointable random-number source shared by
// every learner in the repository. math/rand's default source cannot
// export its internal state, which made saved models resume on a
// different random trajectory than an uninterrupted run. The counted
// Source wraps the exact same underlying generator — so all existing
// random draws are bit-identical — while counting how many times it was
// advanced. Checkpoints persist (seed, draws); Restore re-seeds and
// replays the counted draws, after which the resumed generator continues
// the original sequence exactly.
package rng

import "math/rand"

// State is the serialisable state of a Source: the construction seed and
// the number of draws taken since seeding. It is embedded in every
// learner's checkpoint document.
type State struct {
	Seed  int64
	Draws uint64
}

// Source is a rand.Source64 that counts its draws. It delegates to the
// standard library source created from the same seed, so the produced
// sequence is identical to rand.NewSource(seed) — only the bookkeeping
// is added. Like the source it wraps, it is not safe for concurrent use.
type Source struct {
	state State
	src   rand.Source64
}

// NewSource returns a counted source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	return &Source{state: State{Seed: seed}, src: rand.NewSource(seed).(rand.Source64)}
}

// New returns a *rand.Rand over a fresh counted source plus the source
// itself, the handle checkpoint writers read State from.
func New(seed int64) (*rand.Rand, *Source) {
	s := NewSource(seed)
	return rand.New(s), s
}

// Int63 implements rand.Source, counting one draw.
func (s *Source) Int63() int64 {
	s.state.Draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64, counting one draw. The standard
// source derives Int63 and Uint64 from the same single step, so replay
// may use either method interchangeably.
func (s *Source) Uint64() uint64 {
	s.state.Draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, restarting the count.
func (s *Source) Seed(seed int64) {
	s.state = State{Seed: seed}
	s.src.Seed(seed)
}

// State returns the checkpointable state at this point of the sequence.
func (s *Source) State() State { return s.state }

// Restore returns a *rand.Rand (and its counted source) fast-forwarded
// to the given state: it seeds with st.Seed and replays st.Draws steps,
// so the next draw matches what the checkpointed generator would have
// produced next.
//
// Replay costs O(draws) at a few ns per step. The tree learners draw at
// most a handful of values per batch, so their restores are effectively
// free; the ensembles draw a Poisson sample per member-instance
// (~lambda+1 steps each), so after a billion instances a member's
// replay takes seconds of CPU — acceptable for restart-scale events,
// but a seekable counter-based generator would make this O(1) at the
// cost of changing every model's random trajectory (see ROADMAP).
func Restore(st State) (*rand.Rand, *Source) {
	s := NewSource(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Uint64()
	}
	s.state = st
	return rand.New(s), s
}
