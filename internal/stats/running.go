// Package stats provides the running statistics used across the stream
// learners: Welford mean/variance accumulators, weighted Gaussian
// estimators for numeric attribute observers, confusion matrices with the
// F1 family of scores, and fixed-size sliding windows for the figure
// aggregations of the paper.
package stats

import "math"

// Running accumulates a weighted mean and variance incrementally using
// Welford's algorithm. The zero value is an empty accumulator ready to use.
type Running struct {
	weight float64
	mean   float64
	m2     float64
	min    float64
	max    float64
	seen   bool
}

// Add incorporates the observation x with unit weight.
func (r *Running) Add(x float64) { r.AddWeighted(x, 1) }

// AddWeighted incorporates the observation x with the given positive
// weight. Non-positive weights are ignored.
func (r *Running) AddWeighted(x, w float64) {
	if w <= 0 {
		return
	}
	if !r.seen {
		r.min, r.max, r.seen = x, x, true
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.weight += w
	delta := x - r.mean
	r.mean += delta * w / r.weight
	r.m2 += w * delta * (x - r.mean)
}

// Merge folds the contents of other into r. Both accumulators remain valid.
func (r *Running) Merge(other *Running) {
	if other.weight == 0 {
		return
	}
	if r.weight == 0 {
		*r = *other
		return
	}
	total := r.weight + other.weight
	delta := other.mean - r.mean
	r.mean += delta * other.weight / total
	r.m2 += other.m2 + delta*delta*r.weight*other.weight/total
	r.weight = total
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
}

// Weight returns the total observation weight.
func (r *Running) Weight() float64 { return r.weight }

// Mean returns the running mean, or 0 when empty.
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance, or 0 when fewer than two units of
// weight have been observed.
func (r *Running) Var() float64 {
	if r.weight <= 1 {
		return 0
	}
	return r.m2 / r.weight
}

// SampleVar returns the Bessel-corrected sample variance.
func (r *Running) SampleVar() float64 {
	if r.weight <= 1 {
		return 0
	}
	return r.m2 / (r.weight - 1)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// SampleStd returns the sample standard deviation.
func (r *Running) SampleStd() float64 { return math.Sqrt(r.SampleVar()) }

// Min returns the smallest observation, or 0 when empty.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 when empty.
func (r *Running) Max() float64 { return r.max }

// Reset returns the accumulator to its empty state.
func (r *Running) Reset() { *r = Running{} }

// RunningState is the exported, serialisable state of a Running
// accumulator — the checkpoint codec of every Welford estimator in the
// repository. Field-for-field with the accumulator, so a round trip is
// bit-exact.
type RunningState struct {
	Weight float64
	Mean   float64
	M2     float64
	Min    float64
	Max    float64
	Seen   bool
}

// State exports the accumulator for checkpointing.
func (r *Running) State() RunningState {
	return RunningState{Weight: r.weight, Mean: r.mean, M2: r.m2, Min: r.min, Max: r.max, Seen: r.seen}
}

// SetState restores the accumulator from an exported state.
func (r *Running) SetState(s RunningState) {
	r.weight, r.mean, r.m2, r.min, r.max, r.seen = s.Weight, s.Mean, s.M2, s.Min, s.Max, s.Seen
}

// Gaussian is a weighted Gaussian density estimator built on Running. It is
// the per-class numeric attribute model used by the Hoeffding tree
// observers and the Gaussian Naive Bayes leaves.
type Gaussian struct {
	Running
}

// Pdf returns the Gaussian density at x. With fewer than two observations
// the estimator falls back to a narrow default bandwidth so that a single
// observation still yields a usable likelihood.
func (g *Gaussian) Pdf(x float64) float64 {
	sd := g.Std()
	if sd < 1e-9 {
		sd = 1e-3
	}
	d := (x - g.Mean()) / sd
	return math.Exp(-0.5*d*d) / (sd * math.Sqrt(2*math.Pi))
}

// Cdf returns the Gaussian cumulative distribution at x.
func (g *Gaussian) Cdf(x float64) float64 {
	sd := g.Std()
	if sd < 1e-9 {
		// Degenerate distribution: step function at the mean.
		switch {
		case x < g.Mean():
			return 0
		default:
			return 1
		}
	}
	return 0.5 * math.Erfc(-(x-g.Mean())/(sd*math.Sqrt2))
}

// WeightLessThan estimates the observation weight with attribute value
// below x (the left branch mass of a candidate threshold).
func (g *Gaussian) WeightLessThan(x float64) float64 {
	return g.Weight() * g.Cdf(x)
}
