package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// twoPass computes mean and population variance directly.
func twoPass(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

// Property: Welford matches the two-pass computation.
func TestRunningMatchesTwoPass(t *testing.T) {
	f := func(raw [16]float64) bool {
		xs := raw[:]
		for i := range xs {
			xs[i] = math.Mod(xs[i], 1e6) // keep magnitudes sane
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		var r Running
		for _, v := range xs {
			r.Add(v)
		}
		mean, variance := twoPass(xs)
		return almostEq(r.Mean(), mean, 1e-9) && almostEq(r.Var(), variance, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two accumulators equals accumulating the
// concatenation.
func TestRunningMerge(t *testing.T) {
	f := func(a, b [8]float64) bool {
		var r1, r2, all Running
		for _, v := range a {
			v = math.Mod(v, 1e6)
			r1.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			v = math.Mod(v, 1e6)
			r2.Add(v)
			all.Add(v)
		}
		r1.Merge(&r2)
		return almostEq(r1.Mean(), all.Mean(), 1e-9) &&
			almostEq(r1.Var(), all.Var(), 1e-6) &&
			r1.Weight() == all.Weight()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningWeighted(t *testing.T) {
	var a, b Running
	// weight 2 == adding twice
	a.AddWeighted(3, 2)
	b.Add(3)
	b.Add(3)
	if !almostEq(a.Mean(), b.Mean(), 1e-12) || !almostEq(a.Var(), b.Var(), 1e-12) {
		t.Fatalf("weighted add mismatch: %v vs %v", a, b)
	}
	// non-positive weights are ignored
	before := a
	a.AddWeighted(100, 0)
	a.AddWeighted(100, -1)
	if a != before {
		t.Fatal("non-positive weight changed accumulator")
	}
}

func TestRunningMinMaxReset(t *testing.T) {
	var r Running
	for _, v := range []float64{3, -1, 7, 2} {
		r.Add(v)
	}
	if r.Min() != -1 || r.Max() != 7 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	r.Reset()
	if r.Weight() != 0 || r.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestRunningSampleVar(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if !almostEq(r.Var(), 4, 1e-12) {
		t.Fatalf("Var = %v, want 4", r.Var())
	}
	if !almostEq(r.SampleVar(), 32.0/7, 1e-12) {
		t.Fatalf("SampleVar = %v, want %v", r.SampleVar(), 32.0/7)
	}
	if !almostEq(r.Std(), 2, 1e-12) {
		t.Fatalf("Std = %v", r.Std())
	}
}

func TestGaussianPdfCdf(t *testing.T) {
	var g Gaussian
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		g.Add(5 + 2*rng.NormFloat64())
	}
	if !almostEq(g.Mean(), 5, 0.05) {
		t.Fatalf("mean = %v", g.Mean())
	}
	if !almostEq(g.Std(), 2, 0.05) {
		t.Fatalf("std = %v", g.Std())
	}
	if !almostEq(g.Cdf(5), 0.5, 0.02) {
		t.Fatalf("Cdf(mean) = %v, want 0.5", g.Cdf(5))
	}
	if g.Cdf(0) >= g.Cdf(10) {
		t.Fatal("Cdf not monotone")
	}
	// pdf peaks at the mean
	if g.Pdf(5) <= g.Pdf(9) {
		t.Fatal("Pdf not peaked at mean")
	}
	if !almostEq(g.WeightLessThan(5), g.Weight()/2, 0.05*g.Weight()) {
		t.Fatalf("WeightLessThan(mean) = %v", g.WeightLessThan(5))
	}
}

func TestGaussianDegenerate(t *testing.T) {
	var g Gaussian
	g.Add(3)
	g.Add(3)
	// Degenerate distribution: step CDF.
	if g.Cdf(2.999) != 0 || g.Cdf(3) != 1 {
		t.Fatalf("degenerate Cdf: %v / %v", g.Cdf(2.999), g.Cdf(3))
	}
	if g.Pdf(3) <= 0 {
		t.Fatal("degenerate Pdf must stay positive")
	}
}

func TestConfusionBinaryF1(t *testing.T) {
	c := NewConfusion(2)
	// tp=6, fp=2, fn=1, tn=3
	for i := 0; i < 6; i++ {
		c.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		c.Add(0, 1)
	}
	c.Add(1, 0)
	for i := 0; i < 3; i++ {
		c.Add(0, 0)
	}
	precision, recall, f1 := c.F1Class(1)
	if !almostEq(precision, 0.75, 1e-12) {
		t.Fatalf("precision = %v", precision)
	}
	if !almostEq(recall, 6.0/7, 1e-12) {
		t.Fatalf("recall = %v", recall)
	}
	wantF1 := 2 * 0.75 * (6.0 / 7) / (0.75 + 6.0/7)
	if !almostEq(f1, wantF1, 1e-12) || !almostEq(c.F1Binary(), wantF1, 1e-12) {
		t.Fatalf("f1 = %v, want %v", f1, wantF1)
	}
	if !almostEq(c.Accuracy(), 0.75, 1e-12) {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if !almostEq(c.MicroF1(), c.Accuracy(), 1e-12) {
		t.Fatal("micro F1 must equal accuracy")
	}
}

func TestConfusionMacroSkipsAbsentClasses(t *testing.T) {
	c := NewConfusion(4)
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(1, 0)
	// classes 2,3 absent entirely -> macro over classes 0,1 only
	_, _, f0 := c.F1Class(0)
	_, _, f1 := c.F1Class(1)
	if !almostEq(c.MacroF1(), (f0+f1)/2, 1e-12) {
		t.Fatalf("macro = %v, want %v", c.MacroF1(), (f0+f1)/2)
	}
}

func TestConfusionPerfectAndWorst(t *testing.T) {
	c := NewConfusion(3)
	for k := 0; k < 3; k++ {
		for i := 0; i < 5; i++ {
			c.Add(k, k)
		}
	}
	if c.MacroF1() != 1 || c.Accuracy() != 1 || c.WeightedF1() != 1 {
		t.Fatal("perfect predictions should give 1.0 everywhere")
	}
	c.Reset()
	c.Add(0, 1)
	c.Add(1, 2)
	c.Add(2, 0)
	if c.MacroF1() != 0 || c.Accuracy() != 0 {
		t.Fatal("all-wrong predictions should give 0.0")
	}
}

func TestConfusionIgnoresOutOfRange(t *testing.T) {
	c := NewConfusion(2)
	c.Add(5, 0)
	c.Add(0, 5)
	c.Add(-1, 0)
	if c.Total() != 0 {
		t.Fatal("out-of-range labels must be ignored")
	}
	if c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty matrix scores must be 0")
	}
}

func TestConfusionF1Dispatch(t *testing.T) {
	bin := NewConfusion(2)
	bin.Add(1, 1)
	bin.Add(0, 0)
	if !almostEq(bin.F1(), bin.F1Binary(), 1e-12) {
		t.Fatal("binary dispatch")
	}
	multi := NewConfusion(3)
	multi.Add(1, 1)
	multi.Add(2, 0)
	if !almostEq(multi.F1(), multi.MacroF1(), 1e-12) {
		t.Fatal("multiclass dispatch")
	}
}

func TestKappa(t *testing.T) {
	// Perfect agreement: kappa 1.
	c := NewConfusion(2)
	for i := 0; i < 10; i++ {
		c.Add(i%2, i%2)
	}
	if !almostEq(c.Kappa(), 1, 1e-12) {
		t.Fatalf("perfect kappa = %v", c.Kappa())
	}
	// Majority-only predictions on imbalanced data: accuracy high, kappa 0.
	c.Reset()
	for i := 0; i < 90; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 10; i++ {
		c.Add(1, 0)
	}
	if c.Accuracy() != 0.9 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if !almostEq(c.Kappa(), 0, 1e-12) {
		t.Fatalf("majority-vote kappa = %v, want 0", c.Kappa())
	}
	// Known hand example: 2x2 with counts tp=20 fn=5 fp=10 tn=15.
	c.Reset()
	c.AddWeighted(1, 1, 20)
	c.AddWeighted(1, 0, 5)
	c.AddWeighted(0, 1, 10)
	c.AddWeighted(0, 0, 15)
	observed := 35.0 / 50
	expected := (25.0/50)*(30.0/50) + (25.0/50)*(20.0/50)
	want := (observed - expected) / (1 - expected)
	if !almostEq(c.Kappa(), want, 1e-12) {
		t.Fatalf("kappa = %v, want %v", c.Kappa(), want)
	}
	// Empty matrix.
	empty := NewConfusion(3)
	if empty.Kappa() != 0 {
		t.Fatal("empty kappa")
	}
}

func TestWindowMeanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewWindow(5)
	var history []float64
	for i := 0; i < 100; i++ {
		v := rng.NormFloat64()
		history = append(history, v)
		w.Add(v)
		lo := len(history) - 5
		if lo < 0 {
			lo = 0
		}
		mean, variance := twoPass(history[lo:])
		if !almostEq(w.Mean(), mean, 1e-9) {
			t.Fatalf("step %d: window mean %v, want %v", i, w.Mean(), mean)
		}
		if !almostEq(w.Std(), math.Sqrt(variance), 1e-9) {
			t.Fatalf("step %d: window std %v, want %v", i, w.Std(), math.Sqrt(variance))
		}
	}
}

func TestWindowValuesOrderAndReset(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3, 4} {
		w.Add(v)
	}
	vals := w.Values()
	want := []float64{2, 3, 4}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("Values = %v, want %v", vals, want)
		}
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatal("window should be full with 3 items")
	}
	w.Reset()
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWindowCapacityFloor(t *testing.T) {
	w := NewWindow(0) // floors to 1
	w.Add(1)
	w.Add(2)
	if w.Len() != 1 || w.Mean() != 2 {
		t.Fatalf("capacity floor broken: len=%d mean=%v", w.Len(), w.Mean())
	}
}
