package stats

import "math"

// Window is a fixed-capacity sliding window over float64 observations with
// O(1) mean queries. It backs the sliding-window aggregation (window size
// 20) used for the Figure 3 series of the paper.
type Window struct {
	buf  []float64
	head int
	size int
	sum  float64
}

// NewWindow returns a sliding window holding at most capacity observations.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add pushes x, evicting the oldest observation when full.
func (w *Window) Add(x float64) {
	if w.size == len(w.buf) {
		w.sum -= w.buf[w.head]
		w.buf[w.head] = x
		w.head = (w.head + 1) % len(w.buf)
	} else {
		w.buf[(w.head+w.size)%len(w.buf)] = x
		w.size++
	}
	w.sum += x
}

// Len returns the number of stored observations.
func (w *Window) Len() int { return w.size }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.size == len(w.buf) }

// Mean returns the mean of the stored observations (0 when empty).
func (w *Window) Mean() float64 {
	if w.size == 0 {
		return 0
	}
	return w.sum / float64(w.size)
}

// Std returns the population standard deviation of the stored observations.
func (w *Window) Std() float64 {
	if w.size < 2 {
		return 0
	}
	mean := w.Mean()
	var m2 float64
	for i := 0; i < w.size; i++ {
		d := w.buf[(w.head+i)%len(w.buf)] - mean
		m2 += d * d
	}
	return math.Sqrt(m2 / float64(w.size))
}

// Values returns the stored observations oldest-first in a fresh slice.
func (w *Window) Values() []float64 {
	out := make([]float64, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}

// Reset empties the window.
func (w *Window) Reset() {
	w.head, w.size, w.sum = 0, 0, 0
}
