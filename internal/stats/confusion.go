package stats

// Confusion is a c-by-c confusion matrix for single-label classification.
// Rows are true classes, columns predicted classes.
type Confusion struct {
	n     int
	cells []float64
	total float64
}

// NewConfusion returns an empty confusion matrix over n classes.
func NewConfusion(n int) *Confusion {
	return &Confusion{n: n, cells: make([]float64, n*n)}
}

// Add records a prediction with unit weight. Out-of-range labels are
// ignored rather than panicking: streams may emit labels the schema has not
// announced, and dropping them is the defensive choice for a monitor.
func (c *Confusion) Add(trueClass, predClass int) { c.AddWeighted(trueClass, predClass, 1) }

// AddWeighted records a prediction with the given weight.
func (c *Confusion) AddWeighted(trueClass, predClass int, w float64) {
	if trueClass < 0 || trueClass >= c.n || predClass < 0 || predClass >= c.n {
		return
	}
	c.cells[trueClass*c.n+predClass] += w
	c.total += w
}

// Reset clears the matrix.
func (c *Confusion) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.total = 0
}

// Classes returns the number of classes.
func (c *Confusion) Classes() int { return c.n }

// Total returns the total recorded weight.
func (c *Confusion) Total() float64 { return c.total }

// At returns the weight in cell (trueClass, predClass).
func (c *Confusion) At(trueClass, predClass int) float64 {
	return c.cells[trueClass*c.n+predClass]
}

// Accuracy returns the fraction of correctly classified weight.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	var correct float64
	for i := 0; i < c.n; i++ {
		correct += c.cells[i*c.n+i]
	}
	return correct / c.total
}

// classCounts returns, for class k: true positives, false positives and
// false negatives.
func (c *Confusion) classCounts(k int) (tp, fp, fn float64) {
	tp = c.cells[k*c.n+k]
	for j := 0; j < c.n; j++ {
		if j == k {
			continue
		}
		fn += c.cells[k*c.n+j]
		fp += c.cells[j*c.n+k]
	}
	return tp, fp, fn
}

// F1Class returns precision, recall and F1 for a single class.
func (c *Confusion) F1Class(k int) (precision, recall, f1 float64) {
	tp, fp, fn := c.classCounts(k)
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// F1Binary returns the F1 score of the positive class (class 1) of a
// two-class problem. For matrices with more than two classes it falls back
// to MacroF1.
func (c *Confusion) F1Binary() float64 {
	if c.n != 2 {
		return c.MacroF1()
	}
	_, _, f1 := c.F1Class(1)
	return f1
}

// MacroF1 returns the unweighted mean of the per-class F1 scores over the
// classes that appear (as truth or prediction) in the matrix.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	var seen int
	for k := 0; k < c.n; k++ {
		tp, fp, fn := c.classCounts(k)
		if tp+fp+fn == 0 {
			continue // class absent from this window
		}
		seen++
		_, _, f1 := c.F1Class(k)
		sum += f1
	}
	if seen == 0 {
		return 0
	}
	return sum / float64(seen)
}

// MicroF1 returns the micro-averaged F1, which for single-label
// classification equals accuracy.
func (c *Confusion) MicroF1() float64 { return c.Accuracy() }

// WeightedF1 returns the support-weighted mean of the per-class F1 scores.
func (c *Confusion) WeightedF1() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	for k := 0; k < c.n; k++ {
		var support float64
		for j := 0; j < c.n; j++ {
			support += c.cells[k*c.n+j]
		}
		if support == 0 {
			continue
		}
		_, _, f1 := c.F1Class(k)
		sum += f1 * support
	}
	return sum / c.total
}

// F1 returns the paper's F1 measure: binary-class F1 of the positive class
// for two-class problems, macro F1 otherwise.
func (c *Confusion) F1() float64 {
	if c.n == 2 {
		return c.F1Binary()
	}
	return c.MacroF1()
}

// Kappa returns Cohen's kappa: chance-corrected agreement, the customary
// complement to accuracy in stream evaluation (robust to imbalance).
func (c *Confusion) Kappa() float64 {
	if c.total == 0 {
		return 0
	}
	observed := c.Accuracy()
	var expected float64
	for k := 0; k < c.n; k++ {
		var rowSum, colSum float64
		for j := 0; j < c.n; j++ {
			rowSum += c.cells[k*c.n+j]
			colSum += c.cells[j*c.n+k]
		}
		expected += (rowSum / c.total) * (colSum / c.total)
	}
	if expected >= 1 {
		return 0
	}
	return (observed - expected) / (1 - expected)
}
