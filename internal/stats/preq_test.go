package stats

import (
	"math"
	"testing"
)

func TestPreqRolling(t *testing.T) {
	p := NewPreq(4)
	if p.Accuracy() != 0 || p.ErrorRate() != 0 {
		t.Fatal("empty tracker must report zero accuracy and error")
	}
	p.Observe(true, 0.1)
	p.Observe(false, 0.9)
	if got := p.ErrorRate(); got != 0.5 {
		t.Fatalf("error rate %v, want 0.5", got)
	}
	if got := p.Accuracy(); got != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", got)
	}
	if got := p.MeanLoss(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean loss %v, want 0.5", got)
	}
	// NaN loss observations update the error window only.
	p.Observe(true, math.NaN())
	if p.Len() != 3 || p.LossLen() != 2 {
		t.Fatalf("len %d lossLen %d, want 3 and 2", p.Len(), p.LossLen())
	}
	// Roll past capacity: the window forgets the oldest outcomes.
	p.Observe(true, 0.2)
	p.Observe(true, 0.2)
	if p.Len() != 4 {
		t.Fatalf("len %d, want capacity 4", p.Len())
	}
	if got := p.ErrorRate(); got != 0.25 {
		t.Fatalf("rolled error rate %v, want 0.25", got)
	}
	if p.Rows() != 5 {
		t.Fatalf("lifetime rows %d, want 5", p.Rows())
	}
	p.Reset()
	if p.Len() != 0 || p.LossLen() != 0 {
		t.Fatal("reset must empty the windows")
	}
	if p.Rows() != 5 {
		t.Fatal("reset must keep the lifetime row count")
	}
}

func TestPreqStateRoundTrip(t *testing.T) {
	p := NewPreq(8)
	for i := 0; i < 13; i++ {
		p.Observe(i%3 == 0, float64(i)*0.07)
	}
	q, err := PreqFromState(p.State())
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() || q.LossLen() != p.LossLen() || q.Rows() != p.Rows() {
		t.Fatalf("restored shape differs: %d/%d/%d vs %d/%d/%d",
			q.Len(), q.LossLen(), q.Rows(), p.Len(), p.LossLen(), p.Rows())
	}
	if q.ErrorRate() != p.ErrorRate() || q.MeanLoss() != p.MeanLoss() {
		t.Fatal("restored statistics differ")
	}
	// Continue both identically.
	p.Observe(false, 0.4)
	q.Observe(false, 0.4)
	if q.ErrorRate() != p.ErrorRate() || q.MeanLoss() != p.MeanLoss() {
		t.Fatal("restored tracker diverged after continuing")
	}
}

func TestPreqStateValidation(t *testing.T) {
	if _, err := PreqFromState(PreqState{Capacity: 0}); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := PreqFromState(PreqState{Capacity: 2, Errs: []float64{0, 1, 0}}); err == nil {
		t.Fatal("overfull window must fail")
	}
}
