package stats

import (
	"fmt"
	"math"
)

// Preq is a windowed prequential-performance tracker: a fixed-capacity
// sliding window over per-observation outcomes, reporting rolling error
// rate / accuracy and a rolling auxiliary loss (log-loss for
// classifiers, staleness for replicas — any non-negative per-observation
// cost). It is the shared bookkeeping of the racing meta-scorer's arms
// and the /statusz replica-lag display, and it checkpoints exactly via
// State / PreqFromState so a restored tracker continues byte-identically.
type Preq struct {
	errs   *Window
	losses *Window
	rows   uint64 // lifetime observations (survives window eviction and Reset)
}

// NewPreq returns a tracker whose rolling statistics cover the most
// recent capacity observations.
func NewPreq(capacity int) *Preq {
	return &Preq{errs: NewWindow(capacity), losses: NewWindow(capacity)}
}

// Observe records one prequential outcome: whether the prediction was
// correct, plus an auxiliary loss. Pass a NaN loss when the observation
// has none (model without probabilities, replica without a lag sample) —
// the loss window simply skips it.
func (p *Preq) Observe(correct bool, loss float64) {
	if correct {
		p.errs.Add(0)
	} else {
		p.errs.Add(1)
	}
	if !math.IsNaN(loss) {
		p.losses.Add(loss)
	}
	p.rows++
}

// Len returns the number of outcomes currently inside the window.
func (p *Preq) Len() int { return p.errs.Len() }

// Cap returns the window capacity.
func (p *Preq) Cap() int { return len(p.errs.buf) }

// Rows returns the lifetime observation count (not reset by Reset).
func (p *Preq) Rows() uint64 { return p.rows }

// ErrorRate returns the windowed misclassification rate (0 when empty).
func (p *Preq) ErrorRate() float64 { return p.errs.Mean() }

// Accuracy returns 1 - ErrorRate over the window (0 when empty, so an
// unraced arm never looks perfect).
func (p *Preq) Accuracy() float64 {
	if p.errs.Len() == 0 {
		return 0
	}
	return 1 - p.errs.Mean()
}

// MeanLoss returns the windowed mean of the auxiliary loss (log-loss
// for classifier arms; 0 when no loss was ever observed).
func (p *Preq) MeanLoss() float64 { return p.losses.Mean() }

// LossLen returns the number of loss samples inside the window.
func (p *Preq) LossLen() int { return p.losses.Len() }

// Reset empties both windows, keeping the lifetime row count — this is
// the race-window reset that follows a drift detection.
func (p *Preq) Reset() {
	p.errs.Reset()
	p.losses.Reset()
}

// PreqState is the serialisable state of a Preq tracker. Values are
// exported oldest-first, exactly as the windows replay them on restore.
type PreqState struct {
	Capacity int
	Errs     []float64
	Losses   []float64
	Rows     uint64
}

// State exports the tracker for checkpointing.
func (p *Preq) State() PreqState {
	return PreqState{
		Capacity: p.Cap(),
		Errs:     p.errs.Values(),
		Losses:   p.losses.Values(),
		Rows:     p.rows,
	}
}

// PreqFromState reconstructs a tracker from its exported state. The
// windows are rebuilt by replaying the exported values, so every rolling
// statistic — including the incrementally maintained sums — matches the
// checkpointed tracker observation for observation.
func PreqFromState(s PreqState) (*Preq, error) {
	if s.Capacity < 1 {
		return nil, fmt.Errorf("stats: preq state has capacity %d", s.Capacity)
	}
	if len(s.Errs) > s.Capacity || len(s.Losses) > s.Capacity {
		return nil, fmt.Errorf("stats: preq state holds %d/%d samples over capacity %d",
			len(s.Errs), len(s.Losses), s.Capacity)
	}
	p := NewPreq(s.Capacity)
	for _, e := range s.Errs {
		p.errs.Add(e)
	}
	for _, l := range s.Losses {
		p.losses.Add(l)
	}
	p.rows = s.Rows
	return p, nil
}
