package race

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/drift"
	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Magic prefixes a racer checkpoint: a gob race header framed by a
// big-endian length, followed by one persist envelope per arm in arm
// order. The envelopes reuse the registry-wide checkpoint format, so a
// racer checkpoint is a "RACE"-framed envelope sequence — exact-byte
// framed and therefore stackable on a single stream like every other
// checkpoint in the repository.
const Magic = "RACE"

// formatVersion versions the race header layout.
const formatVersion = 1

// maxHeaderBytes bounds the declared header length so corrupt bytes
// cannot demand an absurd allocation.
const maxHeaderBytes = 1 << 24

// maxCheckpointArms bounds the arm count a checkpoint may declare.
const maxCheckpointArms = 1 << 10

// armHeader is one arm's non-model state in the race header; the model
// itself travels as a persist envelope after the header.
type armHeader struct {
	Model        string
	Tracker      stats.PreqState
	Det          drift.ADWINState
	Drifts       uint64
	WarmRestarts uint64
	LastVer      uint64
	HasVer       bool
}

// raceHeader is the gob-encoded head of a racer checkpoint. It carries
// everything but the arm models: config knobs (so FromCheckpoint can
// rebuild without a Config), race counters, the leader, the swap-event
// timeline and the per-arm tracker/detector states.
// The worker count is deliberately absent: parallel training is
// byte-identical to sequential, so the pool width is an execution
// detail of the process, not model state — persisting it would make
// otherwise identical racers checkpoint differently.
type raceHeader struct {
	Version       int
	Schema        stream.Schema
	Seed          int64
	Window        int
	DriftDelta    float64
	MinEvidence   int
	WarmRestart   bool
	Leader        int
	Rows          uint64
	ReRaces       uint64
	LeaderChanges uint64
	DriftChanges  uint64
	DriftArmed    bool
	StructVersion uint64
	Events        []SwapEvent
	Arms          []armHeader
}

// Checkpoint writes the racer's full state: the "RACE" header followed
// by one persist envelope per arm. The capture serialises against
// Learn, so no checkpoint straddles a batch; a restored racer continues
// byte-identically (the arm envelopes carry counted RNG state, the
// header carries the exact window and detector contents).
func (r *Racer) Checkpoint(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	hdr := raceHeader{
		Version:       formatVersion,
		Schema:        r.cfg.Schema,
		Seed:          r.cfg.Seed,
		Window:        r.cfg.Window,
		DriftDelta:    r.cfg.DriftDelta,
		MinEvidence:   r.cfg.MinEvidence,
		WarmRestart:   r.cfg.WarmRestart,
		Leader:        r.leader,
		Rows:          r.rows,
		ReRaces:       r.reRaces,
		LeaderChanges: r.leaderChanges,
		DriftChanges:  r.driftChanges,
		DriftArmed:    r.driftArmed,
		StructVersion: r.version.Load(),
		Events:        append([]SwapEvent(nil), r.events...),
		Arms:          make([]armHeader, len(r.arms)),
	}
	envelopes := make([]*bytes.Buffer, len(r.arms))
	for i, a := range r.arms {
		hdr.Arms[i] = armHeader{
			Model:        a.name,
			Tracker:      a.tracker.State(),
			Det:          a.det.State(),
			Drifts:       a.drifts,
			WarmRestarts: a.warmRestarts,
			LastVer:      a.lastVer,
			HasVer:       a.hasVer,
		}
		envelopes[i] = &bytes.Buffer{}
		if err := persist.Save(envelopes[i], a.clf); err != nil {
			return fmt.Errorf("race: checkpoint arm %d (%s): %w", i, a.name, err)
		}
	}
	var head bytes.Buffer
	if err := gob.NewEncoder(&head).Encode(hdr); err != nil {
		return fmt.Errorf("race: encode header: %w", err)
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return fmt.Errorf("race: write magic: %w", err)
	}
	var hlen [4]byte
	binary.BigEndian.PutUint32(hlen[:], uint32(head.Len()))
	if _, err := w.Write(hlen[:]); err != nil {
		return fmt.Errorf("race: write header length: %w", err)
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return fmt.Errorf("race: write header: %w", err)
	}
	for i, env := range envelopes {
		if _, err := w.Write(env.Bytes()); err != nil {
			return fmt.Errorf("race: write arm %d envelope: %w", i, err)
		}
	}
	return nil
}

// Restore replaces the racer's state from a Checkpoint written by a
// racer with the same arm lineup. Validation is two-phase: every arm
// envelope is decoded and checked before anything is installed, so a
// truncated or corrupt stream leaves the racer serving its previous
// state untouched.
func (r *Racer) Restore(src io.Reader) error {
	hdr, arms, err := read(src)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(arms) != len(r.arms) {
		return fmt.Errorf("race: restore with %d arms into a %d-arm racer", len(arms), len(r.arms))
	}
	for i, a := range arms {
		if a.name != r.arms[i].name {
			return fmt.Errorf("race: restore arm %d is %q, racer has %q", i, a.name, r.arms[i].name)
		}
	}
	if hdr.Schema.NumFeatures != r.cfg.Schema.NumFeatures || hdr.Schema.NumClasses != r.cfg.Schema.NumClasses {
		return fmt.Errorf("race: restore schema %q (%d features, %d classes) is incompatible with %q (%d, %d)",
			hdr.Schema.Name, hdr.Schema.NumFeatures, hdr.Schema.NumClasses,
			r.cfg.Schema.Name, r.cfg.Schema.NumFeatures, r.cfg.Schema.NumClasses)
	}
	r.install(hdr, arms)
	return nil
}

// FromCheckpoint reconstructs a racer purely from checkpoint bytes —
// no Config needed; the header carries the knobs and the envelopes
// carry the models. This is how the serving tier bootstraps a race
// from a trainer's published envelope.
func FromCheckpoint(src io.Reader) (*Racer, error) {
	hdr, arms, err := read(src)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(arms))
	for i, a := range arms {
		names[i] = a.name
	}
	r := &Racer{
		cfg: Config{
			Schema:      hdr.Schema,
			Seed:        hdr.Seed,
			Window:      hdr.Window,
			DriftDelta:  hdr.DriftDelta,
			MinEvidence: hdr.MinEvidence,
			WarmRestart: hdr.WarmRestart,
		},
		arms: make([]*arm, len(arms)),
		name: "Race(" + joinNames(names) + ")",
	}
	r.install(hdr, arms)
	return r, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}

// read decodes and validates a full racer checkpoint without touching
// any live racer: header, then one arm per header entry, each arm's
// tracker and detector reconstructed and its envelope loaded.
func read(src io.Reader) (*raceHeader, []*arm, error) {
	br := bufio.NewReader(src)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("race: read magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, nil, fmt.Errorf("race: bad magic %q (not a racer checkpoint)", magic)
	}
	var hlen [4]byte
	if _, err := io.ReadFull(br, hlen[:]); err != nil {
		return nil, nil, fmt.Errorf("race: read header length: %w", err)
	}
	n := binary.BigEndian.Uint32(hlen[:])
	if n == 0 || n > maxHeaderBytes {
		return nil, nil, fmt.Errorf("race: implausible header length %d", n)
	}
	head := make([]byte, n)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("race: read header: %w", err)
	}
	var hdr raceHeader
	if err := gob.NewDecoder(bytes.NewReader(head)).Decode(&hdr); err != nil {
		return nil, nil, fmt.Errorf("race: decode header: %w", err)
	}
	if hdr.Version != formatVersion {
		return nil, nil, fmt.Errorf("race: unsupported format version %d (want %d)", hdr.Version, formatVersion)
	}
	if len(hdr.Arms) < 2 || len(hdr.Arms) > maxCheckpointArms {
		return nil, nil, fmt.Errorf("race: implausible arm count %d", len(hdr.Arms))
	}
	if err := hdr.Schema.Validate(); err != nil {
		return nil, nil, fmt.Errorf("race: checkpoint schema: %w", err)
	}
	if hdr.Leader < 0 || hdr.Leader >= len(hdr.Arms) {
		return nil, nil, fmt.Errorf("race: leader %d outside %d arms", hdr.Leader, len(hdr.Arms))
	}
	arms := make([]*arm, len(hdr.Arms))
	for i, ah := range hdr.Arms {
		clf, err := persist.Load(br)
		if err != nil {
			return nil, nil, fmt.Errorf("race: load arm %d (%s): %w", i, ah.Model, err)
		}
		tracker, err := stats.PreqFromState(ah.Tracker)
		if err != nil {
			return nil, nil, fmt.Errorf("race: arm %d tracker: %w", i, err)
		}
		det, err := drift.ADWINFromState(ah.Det)
		if err != nil {
			return nil, nil, fmt.Errorf("race: arm %d detector: %w", i, err)
		}
		if _, ok := clf.(model.Snapshotter); !ok {
			return nil, nil, fmt.Errorf("race: arm %d (%s) cannot snapshot", i, ah.Model)
		}
		arms[i] = &arm{
			name:         ah.Model,
			clf:          clf,
			tracker:      tracker,
			det:          det,
			drifts:       ah.Drifts,
			warmRestarts: ah.WarmRestarts,
			lastVer:      ah.LastVer,
			hasVer:       ah.HasVer,
			proba:        make([]float64, hdr.Schema.NumClasses),
		}
	}
	return &hdr, arms, nil
}

// install swaps the validated state in. Callers hold mu (or own the
// racer exclusively, as FromCheckpoint does). The version counter must
// stay monotone across restores of older state, so it never moves
// backwards — max(current, checkpointed); a fresh FromCheckpoint racer
// therefore resumes at exactly the checkpointed version, keeping the
// save→load→continue path byte-identical (the serving tier already
// invalidates its envelope cache on every swap).
func (r *Racer) install(hdr *raceHeader, arms []*arm) {
	r.arms = arms
	r.leader = hdr.Leader
	r.rows = hdr.Rows
	r.reRaces = hdr.ReRaces
	r.leaderChanges = hdr.LeaderChanges
	r.driftChanges = hdr.DriftChanges
	r.driftArmed = hdr.DriftArmed
	r.events = append([]SwapEvent(nil), hdr.Events...)
	v := hdr.StructVersion
	if cur := r.version.Load(); cur > v {
		v = cur
	}
	r.version.Store(v)
	r.cfg.Schema = hdr.Schema
	r.publish()
}
