// Package race implements online model racing: a meta-scorer that
// trains several registered learners ("arms") on the same stream,
// tracks each arm's prequential error in an ADWIN-managed sliding
// window, and routes all serving traffic to the current leader through
// a wait-free atomic pointer. When ADWIN fires on the leader's error
// stream the race window resets (and, optionally, trailing arms of the
// leader's model family are warm-restarted from the leader's
// envelope), so the fleet re-competes under the new concept instead of
// coasting on stale window evidence.
//
// The Racer implements the serving Scorer contract structurally —
// Learn/Predict/Proba/batch variants/Complexity/Schema/
// StructureVersion/Unwrap/Checkpoint/Restore — so it slots unchanged
// into the prequential evaluator, the HTTP serving tier and the
// checkpoint tooling. Training the arms runs on the same member-major
// bounded worker pool the ensembles use: indices are claimed from an
// atomic counter and every arm owns its model, tracker, detector and
// scratch buffers, which makes parallel runs byte-identical to
// sequential ones.
package race

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/drift"
	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Defaults of the knobs Config leaves at zero.
const (
	// DefaultWindow is the per-arm prequential window capacity.
	DefaultWindow = 500
	// DefaultDriftDelta is the per-arm ADWIN confidence on the 0/1
	// error stream (the Leveraging-Bagging default).
	DefaultDriftDelta = 0.002
	// DefaultMinEvidence is the number of windowed observations an arm
	// needs before it can take the lead — a freshly reset window holds
	// too little evidence to justify a traffic swing.
	DefaultMinEvidence = 30
	// maxEvents bounds the retained leader-change timeline.
	maxEvents = 64
)

// Arm specifies one competitor: a registered model name (aliases like
// "dmt", "vfdt" or "arf" resolve via ResolveModel) plus its functional
// options. Each arm gets a seed derived from the racer's, applied
// before the arm's own options so an explicit WithSeed wins.
type Arm struct {
	Model   string
	Options []registry.Option
}

// Config drives New.
type Config struct {
	// Schema describes the stream every arm trains on.
	Schema stream.Schema
	// Arms are the competitors; at least two.
	Arms []Arm
	// Seed derives every arm's default seed.
	Seed int64
	// Workers bounds the arm-training pool (0 = GOMAXPROCS, 1 =
	// sequential; results are identical either way).
	Workers int
	// Window is the per-arm prequential window capacity (default
	// DefaultWindow).
	Window int
	// DriftDelta is the per-arm ADWIN confidence (default
	// DefaultDriftDelta).
	DriftDelta float64
	// MinEvidence is the windowed-observation floor below which an arm
	// cannot take the lead (default DefaultMinEvidence).
	MinEvidence int
	// WarmRestart re-seeds, at each drift-triggered re-race, every
	// trailing arm of the leader's registered model family from the
	// leader's checkpoint envelope — knowledge transfer inside a
	// family without collapsing cross-family diversity.
	WarmRestart bool
}

// SwapEvent is one leader change, retained (bounded) for timelines.
type SwapEvent struct {
	// Row is the lifetime observation count at the swap.
	Row uint64 `json:"row"`
	// From/To are arm indices; FromModel/ToModel their model names.
	From      int    `json:"from"`
	To        int    `json:"to"`
	FromModel string `json:"from_model"`
	ToModel   string `json:"to_model"`
	// Drift marks a swap that followed a drift-triggered re-race (the
	// first leader change after the leader's ADWIN fired).
	Drift bool `json:"drift"`
}

// ArmStatus is one arm's row of the race scoreboard.
type ArmStatus struct {
	Index        int     `json:"index"`
	Model        string  `json:"model"`
	ErrorRate    float64 `json:"error_rate"`
	Accuracy     float64 `json:"accuracy"`
	LogLoss      float64 `json:"log_loss"`
	WindowLen    int     `json:"window_len"`
	Rows         uint64  `json:"rows"`
	Drifts       uint64  `json:"drifts"`
	WarmRestarts uint64  `json:"warm_restarts"`
	Leader       bool    `json:"leader"`
}

// Status is the race scoreboard served by /statusz.
type Status struct {
	Name          string      `json:"name"`
	Leader        string      `json:"leader"`
	LeaderIndex   int         `json:"leader_index"`
	Rows          uint64      `json:"rows"`
	ReRaces       uint64      `json:"re_races"`
	LeaderChanges uint64      `json:"leader_changes"`
	DriftChanges  uint64      `json:"drift_changes"`
	Arms          []ArmStatus `json:"arms"`
	Events        []SwapEvent `json:"events,omitempty"`
}

// arm is the private per-competitor state. Every field is owned by
// exactly one pool worker during Learn, which is what makes parallel
// training byte-identical to sequential.
type arm struct {
	name         string // canonical registered model name
	clf          model.Classifier
	tracker      *stats.Preq
	det          *drift.ADWIN
	drifts       uint64
	warmRestarts uint64
	lastVer      uint64 // last observed StructureVersion, for the racer's own counter
	hasVer       bool
	drifted      bool      // ADWIN fired during the current batch
	proba        []float64 // scratch for per-row log-loss scoring
}

// view is the atomically published read state: the leader's immutable
// snapshot plus the identity it was captured under.
type view struct {
	snap   model.Snapshot
	proba  model.ProbaSnapshot // nil when the leader has no probabilistic snapshot
	leader int
}

// Racer races N arms and serves the leader. The zero value is not
// usable; construct with New or FromCheckpoint.
type Racer struct {
	mu  sync.Mutex // serialises Learn / Checkpoint / Restore / Status
	cfg Config

	arms          []*arm
	leader        int
	rows          uint64
	reRaces       uint64
	leaderChanges uint64
	driftChanges  uint64
	driftArmed    bool // a re-race happened; the next swap counts as drift-triggered
	events        []SwapEvent

	version atomic.Uint64
	view    atomic.Pointer[view]
	name    string
}

// modelAliases maps CLI-friendly shorthands onto registered names.
// Exact registered names (and case-insensitive matches of them) always
// resolve first, so the table only needs the true nicknames.
var modelAliases = map[string]string{
	"dmt":         "DMT",
	"fimt":        "FIMT-DD",
	"fimtdd":      "FIMT-DD",
	"vfdt":        "VFDT",
	"ht":          "VFDT",
	"mc":          "VFDT (MC)",
	"vfdt-mc":     "VFDT (MC)",
	"vfdt-nb":     "VFDT (NB)",
	"nba":         "VFDT (NBA)",
	"vfdt-nba":    "VFDT (NBA)",
	"hat":         "HT-Ada",
	"htada":       "HT-Ada",
	"efdt":        "EFDT",
	"arf":         "Forest Ens.",
	"forest":      "Forest Ens.",
	"levbag":      "Bagging Ens.",
	"bag":         "Bagging Ens.",
	"bagging":     "Bagging Ens.",
	"glm":         "GLM",
	"logistic":    "GLM",
	"nb":          "Naive Bayes",
	"naive-bayes": "Naive Bayes",
	"naivebayes":  "Naive Bayes",
}

// SpecPrefix marks a serving model spec as a race: "race:dmt,vfdt,arf"
// races the named arms instead of building a single model.
const SpecPrefix = "race:"

// IsSpec reports whether a model spec names a race.
func IsSpec(spec string) bool { return strings.HasPrefix(spec, SpecPrefix) }

// ParseSpec splits a "race:NAME,NAME,..." spec into resolved arm specs.
// Each name goes through ResolveModel, so aliases work on the CLI.
func ParseSpec(spec string) ([]Arm, error) {
	if !IsSpec(spec) {
		return nil, fmt.Errorf("race: %q is not a race spec (want %q prefix)", spec, SpecPrefix)
	}
	var arms []Arm
	for _, part := range strings.Split(strings.TrimPrefix(spec, SpecPrefix), ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		canonical, ok := ResolveModel(name)
		if !ok {
			return nil, fmt.Errorf("race: unknown arm %q in spec %q (registered: %s)",
				name, spec, strings.Join(registry.Names(), ", "))
		}
		arms = append(arms, Arm{Model: canonical})
	}
	if len(arms) < 2 {
		return nil, fmt.Errorf("race: spec %q names %d arms, need at least 2", spec, len(arms))
	}
	return arms, nil
}

// ResolveModel maps an arm spec onto a registered model name: exact
// names first, then case-insensitive matches, then the alias table
// ("dmt", "vfdt", "arf", ...). ok is false for unknown names.
func ResolveModel(name string) (string, bool) {
	if registry.Registered(name) {
		return name, true
	}
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, reg := range registry.Names() {
		if strings.ToLower(reg) == lower {
			return reg, true
		}
	}
	if canonical, ok := modelAliases[lower]; ok && registry.Registered(canonical) {
		return canonical, true
	}
	return "", false
}

// New builds a racer: every arm is constructed from the registry with a
// derived seed (overridable by the arm's own WithSeed), validated to be
// checkpointable (the warm-restart and persistence paths need the
// envelope round trip), and arm 0 starts as leader.
func New(cfg Config) (*Racer, error) {
	if err := cfg.Schema.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Arms) < 2 {
		return nil, fmt.Errorf("race: need at least 2 arms, got %d", len(cfg.Arms))
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.DriftDelta <= 0 || cfg.DriftDelta >= 1 {
		cfg.DriftDelta = DefaultDriftDelta
	}
	if cfg.MinEvidence <= 0 {
		cfg.MinEvidence = DefaultMinEvidence
	}
	if cfg.MinEvidence > cfg.Window {
		cfg.MinEvidence = cfg.Window
	}
	r := &Racer{cfg: cfg, arms: make([]*arm, len(cfg.Arms))}
	names := make([]string, len(cfg.Arms))
	for i, spec := range cfg.Arms {
		canonical, ok := ResolveModel(spec.Model)
		if !ok {
			return nil, fmt.Errorf("race: arm %d: unknown model %q (registered: %s)",
				i, spec.Model, strings.Join(registry.Names(), ", "))
		}
		idx := i
		opts := append([]registry.Option{func(p *registry.Params) {
			// Decorrelate the arms the same way the sharded scorer
			// decorrelates replicas; the arm's own WithSeed overrides.
			p.Seed = cfg.Seed*1_000_003 + int64(idx) + 1
		}}, spec.Options...)
		clf, err := registry.New(canonical, cfg.Schema, opts...)
		if err != nil {
			return nil, fmt.Errorf("race: arm %d (%s): %w", i, canonical, err)
		}
		// The arm's identity is the model's own name (what its
		// checkpoint envelope records — e.g. the generic "VFDT" builds
		// a "VFDT (MC)"), so the checkpoint lineup check and the
		// warm-restart family match line up with the envelope format.
		armName := clf.Name()
		if _, ok := clf.(model.Checkpointer); !ok || !registry.HasLoader(armName) {
			return nil, fmt.Errorf("race: arm %d (%s) cannot checkpoint — racing requires the envelope round trip", i, armName)
		}
		a := &arm{
			name:    armName,
			clf:     clf,
			tracker: stats.NewPreq(cfg.Window),
			det:     drift.NewADWIN(cfg.DriftDelta),
			proba:   make([]float64, cfg.Schema.NumClasses),
		}
		a.lastVer, a.hasVer = structureVersion(clf)
		r.arms[i] = a
		names[i] = armName
	}
	r.name = "Race(" + strings.Join(names, "|") + ")"
	r.publish()
	return r, nil
}

func structureVersion(c model.Classifier) (uint64, bool) {
	if sv, ok := c.(model.StructureVersioner); ok {
		return sv.StructureVersion(), true
	}
	return 0, false
}

// forEachArm is the ensemble pool pattern: bounded workers claim arm
// indices from an atomic counter; one worker (or one arm) runs inline.
func forEachArm(workers, n int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// clipProb floors a probability before the log, matching the
// evaluator's log-loss clamp.
func clipProb(p float64) float64 {
	const eps = 1e-15
	if p < eps {
		return eps
	}
	return p
}

// Learn races the batch: every arm scores it prequentially (predict
// before train, error into the arm's window and ADWIN) and then trains
// on it, in parallel across arms with byte-identical-to-sequential
// results. Afterwards, single-threaded: a leader-drift re-race if the
// leader's ADWIN fired, leader re-election on windowed error, version
// accounting and the atomic publish of the (possibly new) leader's
// snapshot.
func (r *Racer) Learn(b stream.Batch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := b.Len()
	if n == 0 {
		return
	}
	forEachArm(r.cfg.Workers, len(r.arms), func(i int) {
		a := r.arms[i]
		a.drifted = false
		pc, probabilistic := a.clf.(model.ProbabilisticClassifier)
		for k := 0; k < n; k++ {
			x := b.X[k]
			// Predict with the model's own tie-breaking; probabilities
			// are scored separately, only for the loss column.
			pred := a.clf.Predict(x)
			loss := math.NaN()
			if probabilistic {
				p := pc.Proba(x, a.proba)
				if y := b.Y[k]; y >= 0 && y < len(p) {
					loss = -math.Log(clipProb(p[y]))
				}
			}
			correct := pred == b.Y[k]
			a.tracker.Observe(correct, loss)
			errv := 1.0
			if correct {
				errv = 0
			}
			if a.det.Add(errv) {
				a.drifted = true
				a.drifts++
			}
		}
		a.clf.Learn(b)
	})
	r.rows += uint64(n)

	bump := uint64(0)
	if r.arms[r.leader].drifted {
		r.reRace()
		bump++
	}
	if r.electLeader() {
		bump++
	}
	// Fold the arms' own structural movement into the racer's monotone
	// counter, so the serving tier's publish-on-change and envelope
	// caching see arm splits/prunes/swaps as racer versions.
	for _, a := range r.arms {
		if v, ok := structureVersion(a.clf); ok {
			if a.hasVer && v > a.lastVer {
				bump += v - a.lastVer
			} else if !a.hasVer {
				bump++
			}
			a.lastVer, a.hasVer = v, true
		}
	}
	if bump > 0 {
		r.version.Add(bump)
	}
	r.publish()
}

// reRace resets every arm's race window and detector after the leader's
// ADWIN fired. With WarmRestart on, trailing arms of the leader's model
// family are re-seeded from the leader's envelope: under the new
// concept the family restarts from the leader's knowledge instead of
// dragging a stale model through the recovery.
func (r *Racer) reRace() {
	r.reRaces++
	r.driftArmed = true
	lead := r.arms[r.leader]
	var envelope []byte
	if r.cfg.WarmRestart {
		var buf bytes.Buffer
		if err := persist.Save(&buf, lead.clf); err == nil {
			envelope = buf.Bytes()
		}
	}
	for i, a := range r.arms {
		a.tracker.Reset()
		a.det = drift.NewADWIN(r.cfg.DriftDelta)
		a.drifted = false
		if i == r.leader || envelope == nil || a.name != lead.name {
			continue
		}
		if clf, err := persist.Load(bytes.NewReader(envelope)); err == nil {
			a.clf = clf
			a.lastVer, a.hasVer = structureVersion(clf)
			a.warmRestarts++
		}
	}
}

// electLeader routes traffic to the lowest windowed error rate among
// arms with enough evidence; ties keep the incumbent (then the lowest
// index), so near-equal arms do not flap the leader pointer.
func (r *Racer) electLeader() bool {
	best := r.leader
	bestErr := math.Inf(1)
	if r.arms[best].tracker.Len() > 0 {
		bestErr = r.arms[best].tracker.ErrorRate()
	}
	for i, a := range r.arms {
		if i == r.leader || a.tracker.Len() < r.cfg.MinEvidence {
			continue
		}
		if e := a.tracker.ErrorRate(); e < bestErr {
			best, bestErr = i, e
		}
	}
	if best == r.leader {
		return false
	}
	ev := SwapEvent{
		Row: r.rows, From: r.leader, To: best,
		FromModel: r.arms[r.leader].name, ToModel: r.arms[best].name,
		Drift: r.driftArmed,
	}
	if r.driftArmed {
		r.driftChanges++
		r.driftArmed = false
	}
	r.leaderChanges++
	r.leader = best
	if len(r.events) == maxEvents {
		copy(r.events, r.events[1:])
		r.events = r.events[:maxEvents-1]
	}
	r.events = append(r.events, ev)
	return true
}

// publish captures the leader's immutable snapshot and swings the
// atomic read pointer. Copy-on-write snapshots make this O(changed
// path), so capturing every batch is cheap.
func (r *Racer) publish() {
	lead := r.arms[r.leader]
	snap := lead.clf.(model.Snapshotter).Snapshot()
	v := &view{snap: snap, leader: r.leader}
	if ps, ok := snap.(model.ProbaSnapshot); ok {
		if _, probabilistic := lead.clf.(model.ProbabilisticClassifier); probabilistic {
			v.proba = ps
		}
	}
	r.view.Store(v)
}

// --- Wait-free reads --------------------------------------------------

// Predict serves one row from the published leader snapshot.
func (r *Racer) Predict(x []float64) int { return r.view.Load().snap.Predict(x) }

// Proba serves class probabilities from the published leader snapshot,
// degrading to a one-hot vector of Predict for non-probabilistic
// leaders (the Scorer contract).
func (r *Racer) Proba(x []float64, out []float64) []float64 {
	v := r.view.Load()
	if v.proba != nil {
		return v.proba.Proba(x, out)
	}
	return oneHot(v.snap.Predict(x), r.cfg.Schema.NumClasses, out)
}

func oneHot(y, classes int, out []float64) []float64 {
	n := classes
	if y >= n {
		n = y + 1
	}
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	out[y] = 1
	return out
}

// PredictBatch serves the whole batch from one published view.
func (r *Racer) PredictBatch(X [][]float64, out []int) []int {
	v := r.view.Load()
	if cap(out) < len(X) {
		out = make([]int, len(X))
	}
	out = out[:len(X)]
	for i, x := range X {
		out[i] = v.snap.Predict(x)
	}
	return out
}

// ProbaBatch serves per-row probability vectors from one published view.
func (r *Racer) ProbaBatch(X [][]float64, out [][]float64) [][]float64 {
	v := r.view.Load()
	if cap(out) < len(X) {
		next := make([][]float64, len(X))
		copy(next, out[:cap(out)])
		out = next
	}
	out = out[:len(X)]
	for i, x := range X {
		if v.proba != nil {
			out[i] = v.proba.Proba(x, out[i])
		} else {
			out[i] = oneHot(v.snap.Predict(x), r.cfg.Schema.NumClasses, out[i])
		}
	}
	return out
}

// Complexity reports the published leader snapshot's size.
func (r *Racer) Complexity() model.Complexity { return r.view.Load().snap.Complexity() }

// Name identifies the race by its arm lineup, e.g. "Race(DMT|VFDT|GLM)".
func (r *Racer) Name() string { return r.name }

// Schema returns the stream schema every arm was built for.
func (r *Racer) Schema() stream.Schema { return r.cfg.Schema }

// StructureVersion reports the racer's own monotone counter: it moves
// with arm structural changes, leader swaps, re-races and restores, so
// envelope caching and publish-on-change work across warm restarts.
func (r *Racer) StructureVersion() (uint64, bool) { return r.version.Load(), true }

// Unwrap returns the current leader's live classifier (the probabilistic
// gate of the evaluator inspects it). Not safe to use concurrently with
// Learn, per the Scorer contract.
func (r *Racer) Unwrap() model.Classifier {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.arms[r.leader].clf
}

// Leader returns the current leader's index and model name.
func (r *Racer) Leader() (int, string) {
	v := r.view.Load()
	r.mu.Lock()
	name := r.arms[v.leader].name
	r.mu.Unlock()
	return v.leader, name
}

// RaceStatus exports the scoreboard: per-arm windowed error, log-loss
// and drift counters, the leader identity and the bounded swap-event
// timeline. The serving tier embeds it in /statusz.
func (r *Racer) RaceStatus() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Name:          r.name,
		Leader:        r.arms[r.leader].name,
		LeaderIndex:   r.leader,
		Rows:          r.rows,
		ReRaces:       r.reRaces,
		LeaderChanges: r.leaderChanges,
		DriftChanges:  r.driftChanges,
		Arms:          make([]ArmStatus, len(r.arms)),
		Events:        append([]SwapEvent(nil), r.events...),
	}
	for i, a := range r.arms {
		st.Arms[i] = ArmStatus{
			Index:        i,
			Model:        a.name,
			ErrorRate:    a.tracker.ErrorRate(),
			Accuracy:     a.tracker.Accuracy(),
			LogLoss:      a.tracker.MeanLoss(),
			WindowLen:    a.tracker.Len(),
			Rows:         a.tracker.Rows(),
			Drifts:       a.drifts,
			WarmRestarts: a.warmRestarts,
			Leader:       i == r.leader,
		}
	}
	return st
}
