package race_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/eval"
	"repro/internal/race"
	"repro/internal/registry"
	"repro/internal/stream"
	"repro/internal/synth"

	_ "repro/internal/core"
	_ "repro/internal/efdt"
	_ "repro/internal/ensemble"
	_ "repro/internal/fimtdd"
	_ "repro/internal/glm"
	_ "repro/internal/hatada"
	_ "repro/internal/hoeffding"
	_ "repro/internal/nbayes"
)

// driftStream builds a two-concept drifting stream: a linearly
// separable hyperplane regime (where the GLM arm shines) alternating
// with a multi-modal Gaussian-cluster regime (where trees shine), so no
// fixed arm wins the whole stream.
func driftStream(t *testing.T, kind string, samples int, seed int64) *synth.ConceptSwitch {
	t.Helper()
	const features = 5
	linear := synth.NewHyperplane(samples, features, 0.02, seed+1)
	clusters := synth.NewCluster(synth.ClusterConfig{
		Name: "clusters", Samples: samples, Features: features, Classes: 2,
		ClustersPerClass: 3, Std: 0.07, Seed: seed + 2,
	})
	switch kind {
	case "abrupt":
		return synth.NewAbruptSwitch(samples, seed, linear, clusters)
	case "recurring":
		return synth.NewRecurringSwitch(samples, 4, seed, linear, clusters)
	default:
		t.Fatalf("unknown drift kind %q", kind)
		return nil
	}
}

func raceArms() []race.Arm {
	return []race.Arm{{Model: "GLM"}, {Model: "VFDT (MC)"}, {Model: "Naive Bayes"}}
}

func accuracy(t *testing.T, res eval.Result) float64 {
	t.Helper()
	mean, _ := res.MeanStd(func(s eval.IterStats) float64 { return s.Accuracy })
	return mean
}

// TestRacerBeatsEveryFixedArm is the payoff claim: on drifting streams
// (abrupt and recurring concept switches) the racer's prequential
// accuracy is at least every fixed arm's, with at least one
// drift-triggered leader change along the way.
func TestRacerBeatsEveryFixedArm(t *testing.T) {
	for _, kind := range []string{"abrupt", "recurring"} {
		t.Run(kind, func(t *testing.T) {
			const samples = 16_000
			const seed = 7
			opts := eval.Options{BatchFraction: 0.001}

			r, err := race.New(race.Config{
				Schema: driftStream(t, kind, samples, seed).Schema(),
				Arms:   raceArms(),
				Seed:   seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eval.Prequential(r, driftStream(t, kind, samples, seed), opts)
			if err != nil {
				t.Fatal(err)
			}
			racerAcc := accuracy(t, res)
			st := r.RaceStatus()
			if st.DriftChanges == 0 {
				t.Errorf("%s: racer saw %d re-races and %d leader changes but no drift-triggered change",
					kind, st.ReRaces, st.LeaderChanges)
			}

			for _, arm := range raceArms() {
				clf, err := registry.New(arm.Model, driftStream(t, kind, samples, seed).Schema(),
					registry.WithSeed(seed*1_000_003+1))
				if err != nil {
					t.Fatal(err)
				}
				armRes, err := eval.Prequential(clf, driftStream(t, kind, samples, seed), opts)
				if err != nil {
					t.Fatal(err)
				}
				armAcc := accuracy(t, armRes)
				t.Logf("%s: racer %.4f vs %s %.4f (leader %s, %d re-races, %d leader changes)",
					kind, racerAcc, arm.Model, armAcc, st.Leader, st.ReRaces, st.LeaderChanges)
				if racerAcc < armAcc {
					t.Errorf("%s: racer accuracy %.4f below fixed arm %s %.4f",
						kind, racerAcc, arm.Model, armAcc)
				}
			}
		})
	}
}

// TestParallelMatchesSequential races the same stream with a sequential
// and an 8-worker pool and requires byte-identical outcomes: every
// prediction, the leader, the scoreboard and the checkpoint bytes.
func TestParallelMatchesSequential(t *testing.T) {
	const samples = 4_000
	build := func(workers int) *race.Racer {
		r, err := race.New(race.Config{
			Schema:  driftStream(t, "abrupt", samples, 11).Schema(),
			Arms:    raceArms(),
			Seed:    11,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	seq, par := build(1), build(8)
	sSeq := driftStream(t, "abrupt", samples, 11)
	sPar := driftStream(t, "abrupt", samples, 11)
	for {
		bs, errS := stream.NextBatch(sSeq, 64)
		bp, errP := stream.NextBatch(sPar, 64)
		if errors.Is(errS, stream.ErrEnd) {
			if !errors.Is(errP, stream.ErrEnd) {
				t.Fatal("streams ended at different rows")
			}
			break
		}
		if errS != nil || errP != nil {
			t.Fatal(errS, errP)
		}
		seq.Learn(bs)
		par.Learn(bp)
		for i, x := range bs.X {
			if seq.Predict(x) != par.Predict(x) {
				t.Fatalf("prediction diverged at row %d of the batch", i)
			}
		}
	}
	stSeq, stPar := seq.RaceStatus(), par.RaceStatus()
	if stSeq.LeaderIndex != stPar.LeaderIndex || stSeq.ReRaces != stPar.ReRaces ||
		stSeq.LeaderChanges != stPar.LeaderChanges {
		t.Fatalf("scoreboards diverged: %+v vs %+v", stSeq, stPar)
	}
	// The worker count is not model state (it is not persisted), so the
	// two checkpoints must be byte-identical — the strongest form of
	// "parallel arm training matches sequential".
	var ckSeq, ckPar bytes.Buffer
	if err := seq.Checkpoint(&ckSeq); err != nil {
		t.Fatal(err)
	}
	if err := par.Checkpoint(&ckPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckSeq.Bytes(), ckPar.Bytes()) {
		t.Fatal("sequential and parallel racer checkpoints are not byte-identical")
	}
}

// TestCheckpointRoundTripMidRace checkpoints a racer mid-race, restores
// it, and requires the original and the restored racer to continue
// byte-identically: same predictions, same leader, same counters, and
// byte-equal subsequent checkpoints.
func TestCheckpointRoundTripMidRace(t *testing.T) {
	const samples = 6_000
	r, err := race.New(race.Config{
		Schema: driftStream(t, "abrupt", samples, 3).Schema(),
		Arms:   raceArms(),
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := driftStream(t, "abrupt", samples, 3)
	half := samples / 2
	for fed := 0; fed < half; {
		b, err := stream.NextBatch(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		r.Learn(b)
		fed += b.Len()
	}
	var ck bytes.Buffer
	if err := r.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	restored, err := race.FromCheckpoint(bytes.NewReader(ck.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if a, b := r.RaceStatus(), restored.RaceStatus(); a.LeaderIndex != b.LeaderIndex ||
		a.Rows != b.Rows || a.ReRaces != b.ReRaces || a.LeaderChanges != b.LeaderChanges {
		t.Fatalf("restored scoreboard differs: %+v vs %+v", a, b)
	}
	if va, oka := r.StructureVersion(); true {
		if vb, okb := restored.StructureVersion(); va != vb || oka != okb {
			t.Fatalf("restored structure version %d/%v differs from %d/%v", vb, okb, va, oka)
		}
	}
	// Continue both over the identical remainder.
	for {
		b, err := stream.NextBatch(s, 50)
		if errors.Is(err, stream.ErrEnd) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		r.Learn(b)
		restored.Learn(b)
		for _, x := range b.X {
			if r.Predict(x) != restored.Predict(x) {
				t.Fatal("restored racer diverged from the original")
			}
			pa := r.Proba(x, nil)
			pb := restored.Proba(x, nil)
			for c := range pa {
				if pa[c] != pb[c] {
					t.Fatal("restored racer probabilities diverged")
				}
			}
		}
	}
	var ckA, ckB bytes.Buffer
	if err := r.Checkpoint(&ckA); err != nil {
		t.Fatal(err)
	}
	if err := restored.Checkpoint(&ckB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ckA.Bytes(), ckB.Bytes()) {
		t.Fatal("post-continue checkpoints are not byte-identical")
	}
}

// TestDriftTriggersReRace is the drift regression: a concept switch must
// fire the leader's ADWIN, reset the race window and re-run the race.
func TestDriftTriggersReRace(t *testing.T) {
	const samples = 12_000
	r, err := race.New(race.Config{
		Schema: driftStream(t, "abrupt", samples, 19).Schema(),
		Arms:   raceArms(),
		Seed:   19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.Prequential(r, driftStream(t, "abrupt", samples, 19), eval.Options{BatchFraction: 0.001}); err != nil {
		t.Fatal(err)
	}
	st := r.RaceStatus()
	if st.ReRaces == 0 {
		t.Fatalf("no re-race on a concept-switch stream: %+v", st)
	}
	if st.LeaderChanges == 0 {
		t.Fatalf("no leader change on a concept-switch stream: %+v", st)
	}
	// The window reset must show: after a re-race the arms' windows
	// refill from zero, so no arm's window may exceed its capacity.
	for _, a := range st.Arms {
		if a.WindowLen > race.DefaultWindow {
			t.Fatalf("arm %s window %d exceeds capacity %d", a.Model, a.WindowLen, race.DefaultWindow)
		}
	}
}

// TestWarmRestart races two DMT arms (different candidate budgets) with
// warm restart on: after a drift-triggered re-race the trailing
// same-family arm must have been re-seeded from the leader's envelope.
func TestWarmRestart(t *testing.T) {
	const samples = 12_000
	r, err := race.New(race.Config{
		Schema: driftStream(t, "abrupt", samples, 23).Schema(),
		Arms: []race.Arm{
			{Model: "GLM"},
			{Model: "VFDT (MC)"},
			{Model: "VFDT (MC)", Options: []registry.Option{registry.WithGracePeriod(400)}},
		},
		Seed:        23,
		WarmRestart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eval.Prequential(r, driftStream(t, "abrupt", samples, 23), eval.Options{BatchFraction: 0.001}); err != nil {
		t.Fatal(err)
	}
	st := r.RaceStatus()
	if st.ReRaces == 0 {
		t.Skip("no re-race fired on this stream; warm restart not exercised")
	}
	var restarts uint64
	for _, a := range st.Arms {
		restarts += a.WarmRestarts
	}
	if restarts == 0 {
		t.Logf("scoreboard: %+v", st)
		t.Error("re-races happened but no same-family arm was warm-restarted")
	}
}

// TestLeaderSwapUnderConcurrentReads hammers the racer's read side from
// many goroutines while the training loop drives it through concept
// switches (and so leader swaps). Run with -race this is the wait-free
// leader pointer regression; the assertions keep it meaningful without
// the detector too.
func TestLeaderSwapUnderConcurrentReads(t *testing.T) {
	const samples = 6_000
	r, err := race.New(race.Config{
		Schema: driftStream(t, "recurring", samples, 31).Schema(),
		Arms:   raceArms(),
		Seed:   31,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := driftStream(t, "recurring", samples, 31)
	var stop atomic.Bool
	var served atomic.Uint64
	var failures atomic.Uint64
	var wg sync.WaitGroup
	row := []float64{0.2, 0.4, 0.6, 0.8, 0.5}
	X := [][]float64{row, row, row, row}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var preds []int
			var probas [][]float64
			for !stop.Load() {
				preds = r.PredictBatch(X, preds)
				probas = r.ProbaBatch(X, probas)
				for i := range preds {
					if preds[i] < 0 || preds[i] > 1 {
						failures.Add(1)
					}
					var sum float64
					for _, p := range probas[i] {
						sum += p
					}
					if math.IsNaN(sum) || sum <= 0 {
						failures.Add(1)
					}
				}
				served.Add(uint64(len(preds)))
			}
		}()
	}
	for {
		b, err := stream.NextBatch(s, 32)
		if errors.Is(err, stream.ErrEnd) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		r.Learn(b)
	}
	// Training can outrun goroutine startup on a fast machine — let the
	// readers serve at least something before stopping them.
	for served.Load() == 0 {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d bad reads during concurrent leader swaps", failures.Load())
	}
	st := r.RaceStatus()
	t.Logf("served %d rows across %d leader changes", served.Load(), st.LeaderChanges)
}

// TestSpecParsing covers the CLI race-spec grammar and alias
// resolution.
func TestSpecParsing(t *testing.T) {
	arms, err := race.ParseSpec("race:dmt, vfdt ,arf")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"DMT", "VFDT", "Forest Ens."}
	for i, a := range arms {
		if a.Model != want[i] {
			t.Fatalf("arm %d resolved to %q, want %q", i, a.Model, want[i])
		}
	}
	if _, err := race.ParseSpec("race:dmt"); err == nil {
		t.Fatal("single-arm spec must fail")
	}
	if _, err := race.ParseSpec("race:dmt,nosuch"); err == nil {
		t.Fatal("unknown arm must fail")
	}
	if race.IsSpec("DMT") {
		t.Fatal("plain model name misdetected as race spec")
	}
}

// TestRestoreValidation feeds corrupt bytes and wrong lineups into
// Restore and requires the racer to stay on its previous state.
func TestRestoreValidation(t *testing.T) {
	schema := driftStream(t, "abrupt", 1000, 1).Schema()
	r, err := race.New(race.Config{Schema: schema, Arms: raceArms(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := r.RaceStatus()
	if err := r.Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage restore must fail")
	}
	var ck bytes.Buffer
	if err := r.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-envelope: the restore must fail atomically.
	if err := r.Restore(bytes.NewReader(ck.Bytes()[:ck.Len()-20])); err == nil {
		t.Fatal("truncated restore must fail")
	}
	other, err := race.New(race.Config{
		Schema: schema,
		Arms:   []race.Arm{{Model: "GLM"}, {Model: "Naive Bayes"}},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ck2 bytes.Buffer
	if err := other.Checkpoint(&ck2); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(bytes.NewReader(ck2.Bytes())); err == nil {
		t.Fatal("restore with a different lineup must fail")
	}
	after := r.RaceStatus()
	if fmt.Sprintf("%+v", before) != fmt.Sprintf("%+v", after) {
		t.Fatalf("failed restores mutated the racer: %+v vs %+v", before, after)
	}
	// And a valid restore works.
	if err := r.Restore(bytes.NewReader(ck.Bytes())); err != nil {
		t.Fatal(err)
	}
}
