// Package drift implements the change detectors the baselines rely on:
// ADWIN (adaptive windowing with exponential histograms) for the adaptive
// Hoeffding tree and the ensembles, and the Page-Hinkley test for FIMT-DD.
// The Dynamic Model Tree itself needs neither — adaptation is built into
// its gain functions — which is one of the paper's central claims
// (Section IV-D).
package drift

// Detector is the common contract of the change detectors: feed a real
// valued signal (typically a 0/1 error indicator) one observation at a
// time; Add reports whether a change was flagged at this observation.
type Detector interface {
	Add(x float64) bool
	Reset()
}
