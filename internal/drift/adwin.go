package drift

import "math"

// maxBucketsPerRow is the M parameter of the exponential histogram: each
// row keeps at most M buckets before the two oldest merge into the next
// row. M=5 is the value used by Bifet & Gavaldà.
const maxBucketsPerRow = 5

// bucket summarises 2^row observations: their count, sum and internal
// sum of squared deviations (m2), allowing variance reconstruction.
type bucket struct {
	n   float64
	sum float64
	m2  float64
}

func (b bucket) mean() float64 { return b.sum / b.n }

// mergeBuckets combines two summaries using the pairwise variance update.
func mergeBuckets(a, b bucket) bucket {
	if a.n == 0 {
		return b
	}
	if b.n == 0 {
		return a
	}
	n := a.n + b.n
	delta := b.mean() - a.mean()
	return bucket{
		n:   n,
		sum: a.sum + b.sum,
		m2:  a.m2 + b.m2 + delta*delta*a.n*b.n/n,
	}
}

// ADWIN is the ADWIN2 change detector: it maintains a variable-length
// window of the most recent observations and shrinks it whenever two
// sufficiently large sub-windows exhibit distinct enough means, using the
// variance-sensitive bound of Bifet & Gavaldà (2007).
//
// The window is stored as an exponential histogram: rows[i] holds buckets
// summarising 2^i observations each, newest data in row 0. Memory is
// O(M log n) and all operations are amortised O(log n). Row compaction is
// in place (copy-down, never reslice-forward) and the cut check gathers
// the window into a reusable scratch, so the steady-state Add path —
// including the every-clock-adds cut check — performs zero allocations
// once the window's high-water capacity is reached.
type ADWIN struct {
	delta      float64
	rows       [][]bucket // rows[i]: oldest bucket first
	width      float64
	total      float64
	clock      int // check for cuts every clock additions
	sinceCheck int
	detections int

	gather []bucket // reusable oldest-first bucket scratch of the cut check
}

// NewADWIN returns a detector with confidence parameter delta (smaller
// delta means fewer false alarms; 0.002 is the customary default).
func NewADWIN(delta float64) *ADWIN {
	if delta <= 0 || delta >= 1 {
		delta = 0.002
	}
	return &ADWIN{delta: delta, clock: 32}
}

// Delta returns the configured confidence parameter.
func (a *ADWIN) Delta() float64 { return a.delta }

// Reset implements Detector. Bucket storage keeps its capacity so a
// detector that is periodically reset (ensemble member swaps) does not
// re-grow its rows from scratch.
func (a *ADWIN) Reset() {
	for i := range a.rows {
		a.rows[i] = a.rows[i][:0]
	}
	a.rows = a.rows[:0]
	a.width, a.total = 0, 0
	a.sinceCheck = 0
	// detections intentionally survives Reset so callers can keep counting.
}

// Width returns the current window length.
func (a *ADWIN) Width() int { return int(a.width) }

// Mean returns the mean of the current window (0 when empty).
func (a *ADWIN) Mean() float64 {
	if a.width == 0 {
		return 0
	}
	return a.total / a.width
}

// NumDetections returns how many changes have been flagged so far.
func (a *ADWIN) NumDetections() int { return a.detections }

// Add inserts an observation and reports whether the window shrank due to
// a detected change at this step.
func (a *ADWIN) Add(x float64) bool {
	a.insert(bucket{n: 1, sum: x})
	a.compress()
	a.sinceCheck++
	if a.sinceCheck < a.clock || a.width < 10 {
		return false
	}
	a.sinceCheck = 0
	changed := false
	for a.cutOnce() {
		changed = true
	}
	if changed {
		a.detections++
	}
	return changed
}

// growRows appends one empty row, reusing the spare row headers (and
// their bucket arrays) that Reset and earlier compaction left behind.
func (a *ADWIN) growRows() {
	if cap(a.rows) > len(a.rows) {
		a.rows = a.rows[:len(a.rows)+1]
		last := len(a.rows) - 1
		if cap(a.rows[last]) == 0 {
			a.rows[last] = make([]bucket, 0, maxBucketsPerRow+1)
		} else {
			a.rows[last] = a.rows[last][:0]
		}
		return
	}
	a.rows = append(a.rows, make([]bucket, 0, maxBucketsPerRow+1))
}

func (a *ADWIN) insert(b bucket) {
	if len(a.rows) == 0 {
		a.growRows()
	}
	a.rows[0] = append(a.rows[0], b)
	a.width += b.n
	a.total += b.sum
}

// compress merges the two oldest buckets of any over-full row into the
// next row, compacting the row in place so its backing array (capacity
// M+1) is reused forever. Only insertion into row 0 can overflow a row,
// and the overflow cascades strictly upward, so the walk stops at the
// first row within bounds — the common add is O(1), not O(log n).
func (a *ADWIN) compress() {
	for i := 0; i < len(a.rows); i++ {
		row := a.rows[i]
		if len(row) <= maxBucketsPerRow {
			return
		}
		merged := mergeBuckets(row[0], row[1])
		n := copy(row, row[2:])
		a.rows[i] = row[:n]
		if i+1 == len(a.rows) {
			a.growRows()
		}
		a.rows[i+1] = append(a.rows[i+1], merged)
	}
}

// gatherBuckets refills the reusable scratch with the window's buckets
// ordered oldest first.
func (a *ADWIN) gatherBuckets() []bucket {
	out := a.gather[:0]
	for i := len(a.rows) - 1; i >= 0; i-- {
		out = append(out, a.rows[i]...)
	}
	a.gather = out
	return out
}

// windowVarianceOf reconstructs the variance of the gathered window.
func windowVarianceOf(buckets []bucket) float64 {
	var acc bucket
	for _, b := range buckets {
		acc = mergeBuckets(acc, b)
	}
	if acc.n <= 1 {
		return 0
	}
	return acc.m2 / acc.n
}

// cutOnce scans cut points oldest-to-newest; if any split of the window
// into W0 (old) and W1 (new) violates the bound, the oldest bucket is
// dropped and true is returned.
func (a *ADWIN) cutOnce() bool {
	buckets := a.gatherBuckets()
	if len(buckets) < 2 {
		return false
	}
	variance := windowVarianceOf(buckets)
	n := a.width
	total := a.total
	// Both logarithms of the epsilon_cut bound depend only on the full
	// window, so they are hoisted out of the scan; each cut point then
	// costs one square root.
	dd := math.Log(2 * math.Log(n) / a.delta)

	var n0, sum0 float64
	for i := 0; i < len(buckets)-1; i++ {
		n0 += buckets[i].n
		sum0 += buckets[i].sum
		n1 := n - n0
		if n0 < 5 || n1 < 5 {
			continue
		}
		mean0 := sum0 / n0
		mean1 := (total - sum0) / n1
		// invM = 1/m with m the harmonic mean of the sub-window sizes.
		invM := 1/n0 + 1/n1
		eps := math.Sqrt(2*invM*variance*dd) + 2.0/3.0*invM*dd
		if math.Abs(mean0-mean1) > eps {
			a.dropOldest()
			return true
		}
	}
	return false
}

// dropOldest removes the oldest bucket from the window, compacting its
// row in place.
func (a *ADWIN) dropOldest() {
	for i := len(a.rows) - 1; i >= 0; i-- {
		row := a.rows[i]
		if len(row) == 0 {
			continue
		}
		b := row[0]
		n := copy(row, row[1:])
		a.rows[i] = row[:n]
		a.width -= b.n
		a.total -= b.sum
		return
	}
}
