package drift

// PageHinkley is the Page-Hinkley test for detecting increases in the mean
// of a signal. FIMT-DD runs one detector per inner node on the absolute
// prediction error and deletes the node's branch on an alert (the paper's
// chosen "second adaptation strategy", Section VI-C).
type PageHinkley struct {
	// MinInstances is the warm-up length before alerts may fire.
	MinInstances int
	// Delta is the tolerance subtracted at every step (magnitude of
	// allowed fluctuation), customarily 0.005.
	Delta float64
	// Lambda is the alert threshold on the cumulative statistic,
	// customarily 50.
	Lambda float64

	n    int
	mean float64
	mT   float64
	minT float64
}

// NewPageHinkley returns a detector with the customary defaults
// (minInstances 30, delta 0.005, lambda 50).
func NewPageHinkley() *PageHinkley {
	return &PageHinkley{MinInstances: 30, Delta: 0.005, Lambda: 50}
}

// Reset implements Detector.
func (p *PageHinkley) Reset() {
	p.n, p.mean, p.mT, p.minT = 0, 0, 0, 0
}

// Add feeds an observation and reports whether the cumulative deviation
// exceeded Lambda. The detector resets itself after an alert.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.mT += x - p.mean - p.Delta
	if p.mT < p.minT {
		p.minT = p.mT
	}
	if p.n < p.MinInstances {
		return false
	}
	if p.mT-p.minT > p.Lambda {
		p.Reset()
		return true
	}
	return false
}
