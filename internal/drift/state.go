package drift

import "fmt"

// Checkpoint codecs of the change detectors. Both round-trip every field
// verbatim — including incrementally maintained totals, which must NOT
// be recomputed from the buckets on restore (re-summation can differ in
// the last bit from the incremental value and would break the
// byte-identical-resume contract).

// BucketState is one exported ADWIN histogram bucket.
type BucketState struct {
	N, Sum, M2 float64
}

// ADWINState is the serialisable state of an ADWIN detector.
type ADWINState struct {
	Delta      float64
	Rows       [][]BucketState
	Width      float64
	Total      float64
	Clock      int
	SinceCheck int
	Detections int
}

// State exports the detector for checkpointing.
func (a *ADWIN) State() ADWINState {
	s := ADWINState{
		Delta: a.delta, Width: a.width, Total: a.total,
		Clock: a.clock, SinceCheck: a.sinceCheck, Detections: a.detections,
		Rows: make([][]BucketState, len(a.rows)),
	}
	for i, row := range a.rows {
		out := make([]BucketState, len(row))
		for j, b := range row {
			out[j] = BucketState{N: b.n, Sum: b.sum, M2: b.m2}
		}
		s.Rows[i] = out
	}
	return s
}

// ADWINFromState reconstructs a detector from its exported state.
func ADWINFromState(s ADWINState) (*ADWIN, error) {
	if s.Delta <= 0 || s.Delta >= 1 {
		return nil, fmt.Errorf("drift: ADWIN state has delta %g outside (0,1)", s.Delta)
	}
	if s.Clock <= 0 {
		return nil, fmt.Errorf("drift: ADWIN state has clock %d", s.Clock)
	}
	a := &ADWIN{
		delta: s.Delta, width: s.Width, total: s.Total,
		clock: s.Clock, sinceCheck: s.SinceCheck, detections: s.Detections,
	}
	for _, row := range s.Rows {
		if len(row) > maxBucketsPerRow+1 {
			return nil, fmt.Errorf("drift: ADWIN state row holds %d buckets (max %d)", len(row), maxBucketsPerRow+1)
		}
		dst := make([]bucket, len(row), maxBucketsPerRow+1)
		for j, b := range row {
			dst[j] = bucket{n: b.N, sum: b.Sum, m2: b.M2}
		}
		a.rows = append(a.rows, dst)
	}
	return a, nil
}

// PageHinkleyState is the serialisable state of a Page-Hinkley detector.
type PageHinkleyState struct {
	MinInstances  int
	Delta, Lambda float64
	N             int
	Mean          float64
	MT, MinT      float64
}

// State exports the detector for checkpointing.
func (p *PageHinkley) State() PageHinkleyState {
	return PageHinkleyState{
		MinInstances: p.MinInstances, Delta: p.Delta, Lambda: p.Lambda,
		N: p.n, Mean: p.mean, MT: p.mT, MinT: p.minT,
	}
}

// PageHinkleyFromState reconstructs a detector from its exported state.
func PageHinkleyFromState(s PageHinkleyState) *PageHinkley {
	return &PageHinkley{
		MinInstances: s.MinInstances, Delta: s.Delta, Lambda: s.Lambda,
		n: s.N, mean: s.Mean, mT: s.MT, minT: s.MinT,
	}
}
