package drift

import (
	"math/rand"
	"testing"
)

func TestADWINStationaryNoFalseAlarms(t *testing.T) {
	a := NewADWIN(0.002)
	rng := rand.New(rand.NewSource(1))
	alarms := 0
	for i := 0; i < 20000; i++ {
		v := 0.0
		if rng.Float64() < 0.3 {
			v = 1
		}
		if a.Add(v) {
			alarms++
		}
	}
	if alarms > 2 {
		t.Fatalf("stationary Bernoulli(0.3): %d alarms, want near 0", alarms)
	}
	if m := a.Mean(); m < 0.25 || m > 0.35 {
		t.Fatalf("window mean %v, want ~0.3", m)
	}
}

func TestADWINDetectsAbruptShift(t *testing.T) {
	a := NewADWIN(0.002)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		v := 0.0
		if rng.Float64() < 0.1 {
			v = 1
		}
		a.Add(v)
	}
	widthBefore := a.Width()
	detected := false
	for i := 0; i < 3000 && !detected; i++ {
		v := 0.0
		if rng.Float64() < 0.9 {
			v = 1
		}
		detected = detected || a.Add(v)
	}
	if !detected {
		t.Fatal("0.1 -> 0.9 shift not detected")
	}
	if a.Width() >= widthBefore+3000 {
		t.Fatal("window did not shrink on detection")
	}
	if a.NumDetections() == 0 {
		t.Fatal("detection counter not incremented")
	}
}

func TestADWINMeanTracksRecentAfterShift(t *testing.T) {
	a := NewADWIN(0.002)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		v := 0.0
		if rng.Float64() < 0.2 {
			v = 1
		}
		a.Add(v)
	}
	for i := 0; i < 4000; i++ {
		v := 0.0
		if rng.Float64() < 0.8 {
			v = 1
		}
		a.Add(v)
	}
	if m := a.Mean(); m < 0.6 {
		t.Fatalf("post-shift mean %v, want close to 0.8", m)
	}
}

// Conservation: window width equals additions minus dropped mass; with no
// detections it equals the number of additions exactly.
func TestADWINWidthConservation(t *testing.T) {
	a := NewADWIN(0.0001)
	for i := 0; i < 5000; i++ {
		a.Add(0.5) // constant signal: never a cut
	}
	if a.Width() != 5000 {
		t.Fatalf("width %d, want 5000", a.Width())
	}
	if a.Mean() != 0.5 {
		t.Fatalf("mean %v, want 0.5", a.Mean())
	}
}

func TestADWINReset(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 100; i++ {
		a.Add(1)
	}
	a.Reset()
	if a.Width() != 0 || a.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestADWINDefaultDelta(t *testing.T) {
	a := NewADWIN(-1)
	if a.Delta() != 0.002 {
		t.Fatalf("default delta = %v", a.Delta())
	}
	if a := NewADWIN(0.05); a.Delta() != 0.05 {
		t.Fatalf("delta accessor = %v, want 0.05", a.Delta())
	}
}

// TestADWINResetReusesStorage: a reset detector must behave exactly like
// a fresh one (Reset keeps bucket capacity, not content).
func TestADWINResetReusesStorage(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 1000; i++ {
		a.Add(float64(i & 1))
	}
	a.Reset()
	if a.Width() != 0 || a.Mean() != 0 {
		t.Fatal("Reset incomplete")
	}
	fresh := NewADWIN(0.002)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		v := 0.0
		if rng.Float64() < 0.3 {
			v = 1
		}
		if a.Add(v) != fresh.Add(v) {
			t.Fatalf("reused and fresh detectors diverge at %d", i)
		}
	}
	if a.Width() != fresh.Width() || a.Mean() != fresh.Mean() {
		t.Fatalf("reused window (w=%d m=%v) != fresh (w=%d m=%v)",
			a.Width(), a.Mean(), fresh.Width(), fresh.Mean())
	}
}

// TestADWINAddZeroAllocs pins the steady-state Add path — including the
// every-32-adds cut check — at zero allocations once the window's
// high-water capacity is reached.
func TestADWINAddZeroAllocs(t *testing.T) {
	a := NewADWIN(0.002)
	for i := 0; i < 10000; i++ {
		a.Add(float64(i & 1)) // stationary: no cuts, window grows to high water
	}
	if avg := testing.AllocsPerRun(50, func() {
		for j := 0; j < 64; j++ { // >= two full cut-check cycles per run
			a.Add(float64(j & 1))
		}
	}); avg != 0 {
		t.Fatalf("steady-state Add allocates %.2f allocs per 64-add run, want 0", avg)
	}
}

func TestBucketMerge(t *testing.T) {
	a := bucket{n: 2, sum: 2, m2: 0} // two 1s
	b := bucket{n: 2, sum: 0, m2: 0} // two 0s
	m := mergeBuckets(a, b)
	if m.n != 4 || m.sum != 2 {
		t.Fatalf("merge totals: %+v", m)
	}
	// variance of {1,1,0,0} is 0.25 -> m2 = 1
	if m.m2 != 1 {
		t.Fatalf("merge m2 = %v, want 1", m.m2)
	}
	// merging with empty is identity
	if got := mergeBuckets(a, bucket{}); got != a {
		t.Fatalf("merge with empty = %+v", got)
	}
}

func TestPageHinkleyStationary(t *testing.T) {
	ph := NewPageHinkley()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		v := 0.0
		if rng.Float64() < 0.2 {
			v = 1
		}
		if ph.Add(v) {
			t.Fatalf("false alarm at %d on stationary signal", i)
		}
	}
}

func TestPageHinkleyDetectsIncrease(t *testing.T) {
	ph := NewPageHinkley()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := 0.0
		if rng.Float64() < 0.1 {
			v = 1
		}
		ph.Add(v)
	}
	detected := false
	for i := 0; i < 2000 && !detected; i++ {
		v := 0.0
		if rng.Float64() < 0.95 {
			v = 1
		}
		detected = ph.Add(v)
	}
	if !detected {
		t.Fatal("error-rate jump not detected")
	}
	// Detector resets after an alert: immediate re-alert must not happen.
	if ph.Add(1) {
		t.Fatal("alert directly after reset")
	}
}

func TestPageHinkleyWarmup(t *testing.T) {
	ph := NewPageHinkley()
	ph.MinInstances = 100
	// Massive jump inside the warm-up window must stay silent.
	for i := 0; i < 99; i++ {
		if ph.Add(1000) {
			t.Fatalf("alert during warm-up at %d", i)
		}
	}
}

func TestDetectorInterface(t *testing.T) {
	var _ Detector = NewADWIN(0.002)
	var _ Detector = NewPageHinkley()
}
