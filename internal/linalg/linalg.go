// Package linalg provides the small dense vector operations used by the
// simple models and split statistics throughout the repository. All
// functions operate on plain []float64 slices and avoid allocation where a
// destination slice is supplied.
package linalg

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, since a length mismatch is always a
// programming error in this code base. The loop is 4-way unrolled with
// independent accumulators, so the summation order (and hence the final
// rounding) differs from a naive sequential loop by O(n·eps).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		bi := b[i : i+4 : i+4]
		s0 += a[i] * bi[0]
		s1 += a[i+1] * bi[1]
		s2 += a[i+2] * bi[2]
		s3 += a[i+3] * bi[3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes dst[i] += alpha*x[i] in place.
func Axpy(alpha float64, x, dst []float64) {
	AddScaled(dst, x, alpha)
}

// AddScaled computes dst[i] += alpha*x[i] in place (BLAS axpy), 4-way
// unrolled. It is the fused kernel behind the SGD step and the gradient
// accumulation of the candidate index.
func AddScaled(dst, x []float64, alpha float64) {
	if len(x) != len(dst) {
		panic("linalg: AddScaled length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		di := dst[i : i+4 : i+4]
		di[0] += alpha * x[i]
		di[1] += alpha * x[i+1]
		di[2] += alpha * x[i+2]
		di[3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// MulInto writes alpha*x[i] into dst, overwriting it.
func MulInto(dst, x []float64, alpha float64) {
	if len(x) != len(dst) {
		panic("linalg: MulInto length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		di := dst[i : i+4 : i+4]
		di[0] = alpha * x[i]
		di[1] = alpha * x[i+1]
		di[2] = alpha * x[i+2]
		di[3] = alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		dst[i] = alpha * x[i]
	}
}

// Add computes dst[i] += x[i] in place, 4-way unrolled.
func Add(dst, x []float64) {
	if len(x) != len(dst) {
		panic("linalg: Add length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		di := dst[i : i+4 : i+4]
		di[0] += x[i]
		di[1] += x[i+1]
		di[2] += x[i+2]
		di[3] += x[i+3]
	}
	for ; i < len(x); i++ {
		dst[i] += x[i]
	}
}

// Sub returns a new slice holding a[i]-b[i].
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// SubInto writes a[i]-b[i] into dst, which must have the same length.
func SubInto(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: SubInto length mismatch")
	}
	for i, v := range a {
		dst[i] = v - b[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2Sq returns the squared Euclidean norm of x, 4-way unrolled.
func Norm2Sq(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xi := x[i : i+4 : i+4]
		s0 += xi[0] * xi[0]
		s1 += xi[1] * xi[1]
		s2 += xi[2] * xi[2]
		s3 += xi[3] * xi[3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Norm2Sq(x)) }

// Norm2SqDiff returns the squared Euclidean norm of a-b without
// allocating, 4-way unrolled.
func Norm2SqDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Norm2SqDiff length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		bi := b[i : i+4 : i+4]
		d0 := a[i] - bi[0]
		d1 := a[i+1] - bi[1]
		d2 := a[i+2] - bi[2]
		d3 := a[i+3] - bi[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// AddGatherRows computes dst[c] += Σ_r src[rows[r]*stride+c] — the sum of
// a gathered set of stride-wide rows, accumulated destination-stationary:
// four output coordinates are held in registers while the member rows
// stream past, so each element costs one load and one add instead of the
// load/add/store round trip of repeated Add calls. The accumulation order
// per coordinate is exactly row order, so the result is bit-identical to
// adding the rows one at a time.
func AddGatherRows(dst, src []float64, rows []int32, stride int) {
	c := 0
	for ; c+8 <= len(dst); c += 8 {
		s0, s1, s2, s3 := dst[c], dst[c+1], dst[c+2], dst[c+3]
		s4, s5, s6, s7 := dst[c+4], dst[c+5], dst[c+6], dst[c+7]
		for _, r := range rows {
			base := int(r) * stride
			g := src[base+c : base+c+8 : base+c+8]
			s0 += g[0]
			s1 += g[1]
			s2 += g[2]
			s3 += g[3]
			s4 += g[4]
			s5 += g[5]
			s6 += g[6]
			s7 += g[7]
		}
		dst[c], dst[c+1], dst[c+2], dst[c+3] = s0, s1, s2, s3
		dst[c+4], dst[c+5], dst[c+6], dst[c+7] = s4, s5, s6, s7
	}
	for ; c < len(dst); c++ {
		s := dst[c]
		for _, r := range rows {
			s += src[int(r)*stride+c]
		}
		dst[c] = s
	}
}

// SuffixSumRows treats data as rows consecutive vectors of length stride
// and replaces row i with the sum of rows i..rows-1 in place. It is the
// batch-end pass that turns per-bucket candidate statistics into
// per-candidate left-branch totals (Algorithm 1's candidate update,
// restructured): row i accumulates everything at or below it in one
// O(rows·stride) sweep instead of one pass per candidate.
func SuffixSumRows(data []float64, rows, stride int) {
	if rows*stride > len(data) {
		panic("linalg: SuffixSumRows out of range")
	}
	for i := rows - 2; i >= 0; i-- {
		Add(data[i*stride:(i+1)*stride], data[(i+1)*stride:(i+2)*stride])
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// ArgMax returns the index of the largest element of x, or -1 for an empty
// slice. Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Clip bounds v into [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IsFinite reports whether every element of x is finite (no NaN or Inf).
// v*0 is 0 for every finite v and NaN for NaN or ±Inf, so one branchless
// multiply-accumulate per element replaces the two classification
// branches of the naive check.
func IsFinite(x []float64) bool {
	var s float64
	for _, v := range x {
		s += v * 0
	}
	return s == 0
}

// LogSumExp returns log(sum_i exp(x[i])) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}
