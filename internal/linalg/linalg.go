// Package linalg provides the small dense vector operations used by the
// simple models and split statistics throughout the repository. All
// functions operate on plain []float64 slices and avoid allocation where a
// destination slice is supplied.
package linalg

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, since a length mismatch is always a
// programming error in this code base.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*x[i] in place.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Add computes dst[i] += x[i] in place.
func Add(dst, x []float64) {
	if len(x) != len(dst) {
		panic("linalg: Add length mismatch")
	}
	for i, v := range x {
		dst[i] += v
	}
}

// Sub returns a new slice holding a[i]-b[i].
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// SubInto writes a[i]-b[i] into dst, which must have the same length.
func SubInto(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("linalg: SubInto length mismatch")
	}
	for i, v := range a {
		dst[i] = v - b[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2Sq returns the squared Euclidean norm of x.
func Norm2Sq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Norm2Sq(x)) }

// Norm2SqDiff returns the squared Euclidean norm of a-b without allocating.
func Norm2SqDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Norm2SqDiff length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// ArgMax returns the index of the largest element of x, or -1 for an empty
// slice. Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Clip bounds v into [lo, hi].
func Clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IsFinite reports whether every element of x is finite (no NaN or Inf).
func IsFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// LogSumExp returns log(sum_i exp(x[i])) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}
