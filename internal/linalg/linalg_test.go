package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotSymmetric(t *testing.T) {
	f := func(a, b [8]float64) bool {
		for i := range a {
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		return almostEq(Dot(a[:], b[:]), Dot(b[:], a[:]), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// The unrolled kernels must agree with their naive definitions on every
// length (exercising all remainder paths) — within reassociation
// tolerance for the reductions, exactly for the elementwise ops.
func TestUnrolledKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for n := 0; n <= 19; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		var dot, n2, n2d float64
		for i := range a {
			dot += a[i] * b[i]
			n2 += a[i] * a[i]
			d := a[i] - b[i]
			n2d += d * d
		}
		if !almostEq(Dot(a, b), dot, 1e-12) {
			t.Fatalf("n=%d: Dot = %v, want %v", n, Dot(a, b), dot)
		}
		if !almostEq(Norm2Sq(a), n2, 1e-12) {
			t.Fatalf("n=%d: Norm2Sq = %v, want %v", n, Norm2Sq(a), n2)
		}
		if !almostEq(Norm2SqDiff(a, b), n2d, 1e-12) {
			t.Fatalf("n=%d: Norm2SqDiff = %v, want %v", n, Norm2SqDiff(a, b), n2d)
		}

		alpha := 1.5
		dst := append([]float64(nil), a...)
		AddScaled(dst, b, alpha)
		for i := range dst {
			if dst[i] != a[i]+alpha*b[i] {
				t.Fatalf("n=%d: AddScaled[%d] = %v", n, i, dst[i])
			}
		}
		mul := make([]float64, n)
		MulInto(mul, b, alpha)
		for i := range mul {
			if mul[i] != alpha*b[i] {
				t.Fatalf("n=%d: MulInto[%d] = %v", n, i, mul[i])
			}
		}
		add := append([]float64(nil), a...)
		Add(add, b)
		for i := range add {
			if add[i] != a[i]+b[i] {
				t.Fatalf("n=%d: Add[%d] = %v", n, i, add[i])
			}
		}
	}
}

func TestSuffixSumRows(t *testing.T) {
	// 4 rows of stride 3: row i must become the sum of rows i..3.
	data := []float64{
		1, 2, 3,
		10, 20, 30,
		100, 200, 300,
		1000, 2000, 3000,
	}
	SuffixSumRows(data, 4, 3)
	want := []float64{
		1111, 2222, 3333,
		1110, 2220, 3330,
		1100, 2200, 3300,
		1000, 2000, 3000,
	}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("SuffixSumRows[%d] = %v, want %v", i, data[i], want[i])
		}
	}
	// Zero and one row are no-ops.
	one := []float64{5, 6}
	SuffixSumRows(one, 1, 2)
	if one[0] != 5 || one[1] != 6 {
		t.Fatal("single-row suffix sum changed data")
	}
	SuffixSumRows(nil, 0, 2)
}

// AddGatherRows must be bit-identical to adding the gathered rows one at
// a time with Add, for every destination width (all blocking remainders)
// and any gather order, including repeats.
func TestAddGatherRowsMatchesSequentialAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16} {
		const nRows = 9
		src := make([]float64, nRows*w)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		rows := []int32{3, 0, 7, 3, 5}
		got := make([]float64, w)
		want := make([]float64, w)
		for i := range got {
			got[i] = rng.NormFloat64()
			want[i] = got[i]
		}
		AddGatherRows(got, src, rows, w)
		for _, r := range rows {
			Add(want, src[int(r)*w:int(r)*w+w])
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("w=%d: AddGatherRows[%d] = %v, want %v (must be bit-identical)", w, i, got[i], want[i])
			}
		}
		AddGatherRows(got, src, nil, w) // empty gather is a no-op
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("w=%d: empty gather changed dst", w)
			}
		}
	}
}

func TestIsFiniteNonFiniteInputs(t *testing.T) {
	if !IsFinite([]float64{0, -0, 1e308, -1e308, 5e-324}) {
		t.Fatal("finite slice rejected")
	}
	if !IsFinite(nil) {
		t.Fatal("empty slice rejected")
	}
	for _, bad := range [][]float64{
		{math.NaN()},
		{math.Inf(1)},
		{math.Inf(-1)},
		{1, 2, math.NaN(), 4},
		{1, 2, 3, math.Inf(1)},
	} {
		if IsFinite(bad) {
			t.Fatalf("non-finite slice %v accepted", bad)
		}
	}
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, dst)
	want := []float64{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	Add(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("Add = %v", a)
	}
	d := Sub([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub = %v", d)
	}
	Scale(0.5, d)
	if d[0] != 1.5 || d[1] != 1 {
		t.Fatalf("Scale = %v", d)
	}
}

func TestSubInto(t *testing.T) {
	dst := make([]float64, 2)
	SubInto(dst, []float64{5, 7}, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("SubInto = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, 4}
	if Norm2Sq(x) != 25 {
		t.Fatalf("Norm2Sq = %v", Norm2Sq(x))
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
}

// Norm2SqDiff must equal Norm2Sq(Sub(a,b)) for sane magnitudes (extreme
// values overflow both computations identically to +Inf, which almostEq
// cannot compare).
func TestNorm2SqDiffMatchesSub(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		return almostEq(Norm2SqDiff(a[:], b[:]), Norm2Sq(Sub(a[:], b[:])), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestZero(t *testing.T) {
	a := []float64{1, 2, 3}
	Zero(a)
	for _, v := range a {
		if v != 0 {
			t.Fatalf("Zero left %v", a)
		}
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{3, 3, 3}, 0}, // ties resolve low
		{[]float64{-5, -2, -9}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.in); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSumClip(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum")
	}
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Fatal("Clip")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float64{1, 2}) {
		t.Fatal("finite reported non-finite")
	}
	if IsFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if IsFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
	if !IsFinite(nil) {
		t.Fatal("empty slice should be finite")
	}
}

// LogSumExp must match the naive computation where the naive one is
// stable, and must not overflow where it is not.
func TestLogSumExp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		x := make([]float64, 1+rng.Intn(8))
		for i := range x {
			x[i] = rng.NormFloat64() * 3
		}
		naive := 0.0
		for _, v := range x {
			naive += math.Exp(v)
		}
		if !almostEq(LogSumExp(x), math.Log(naive), 1e-9) {
			t.Fatalf("LogSumExp(%v) = %v, want %v", x, LogSumExp(x), math.Log(naive))
		}
	}
	// Stability: huge inputs must not overflow.
	got := LogSumExp([]float64{1000, 1000})
	if math.IsInf(got, 0) || !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp stability: got %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(empty) should be -Inf")
	}
}
