// Package datasets is the Table I registry: the 13 streams of the paper's
// evaluation with their dimensions, majority-class shares and drift
// profiles, factory functions producing the streams (faithful synthetic
// generators for SEA/Agrawal/Hyperplane; Gaussian-cluster surrogates for
// the real-world sets, see DESIGN.md §4), and the paper's reported Table
// II–IV values so the experiment harness can print paper-vs-measured
// comparisons.
package datasets

import (
	"fmt"

	"repro/internal/stream"
	"repro/internal/synth"
)

// Entry describes one evaluation stream.
type Entry struct {
	// Name as used in the paper's tables. Surrogate streams carry a "*"
	// suffix in reports.
	Name string
	// Surrogate marks streams that stand in for unavailable real data.
	Surrogate bool
	// Samples, Features, Classes, MajorityCount reproduce Table I.
	Samples       int
	Features      int
	Classes       int
	MajorityCount int
	// DriftNote summarises the drift profile.
	DriftNote string
	// New builds the stream scaled to scale*Samples observations (scale
	// in (0,1]; a floor keeps tiny runs meaningful).
	New func(scale float64, seed int64) stream.Stream

	// PaperF1, PaperSplits and PaperParams are the mean values the paper
	// reports in Tables II, III and IV, keyed by model name.
	PaperF1     map[string]float64
	PaperSplits map[string]float64
	PaperParams map[string]float64
}

// DisplayName returns the name with a surrogate marker.
func (e Entry) DisplayName() string {
	if e.Surrogate {
		return e.Name + "*"
	}
	return e.Name
}

// MajorityShare returns the majority-class fraction of Table I.
func (e Entry) MajorityShare() float64 {
	return float64(e.MajorityCount) / float64(e.Samples)
}

// scaled returns the sample count for a scale factor with a floor.
func scaled(samples int, scale float64) int {
	if scale <= 0 || scale >= 1 {
		return samples
	}
	n := int(float64(samples) * scale)
	const minSamples = 2000
	if n < minSamples {
		n = minSamples
	}
	if n > samples {
		n = samples
	}
	return n
}

// Model name constants used for the paper-reference maps.
const (
	DMT     = "DMT"
	FIMTDD  = "FIMT-DD"
	VFDTMC  = "VFDT (MC)"
	VFDTNBA = "VFDT (NBA)"
	HTAda   = "HT-Ada"
	EFDT    = "EFDT"
	Forest  = "Forest Ens."
	Bagging = "Bagging Ens."
)

// All returns the 13 entries of Table I in the paper's order.
func All() []Entry {
	return []Entry{
		electricity(), airlines(), bank(), tueyeq(), poker(), kdd(),
		covertype(), gas(), insectsAbrupt(), insectsIncremental(),
		sea(), agrawal(), hyperplane(),
	}
}

// ByName returns the entry with the given name (surrogate marker
// optional).
func ByName(name string) (Entry, error) {
	for _, e := range All() {
		if e.Name == name || e.DisplayName() == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("datasets: unknown data set %q", name)
}

// Names returns all entry names in order.
func Names() []string {
	entries := All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

func f1Row(dmt, fimt, mc, nba, ada, efdt, forest, bag float64) map[string]float64 {
	return map[string]float64{
		DMT: dmt, FIMTDD: fimt, VFDTMC: mc, VFDTNBA: nba,
		HTAda: ada, EFDT: efdt, Forest: forest, Bagging: bag,
	}
}

func treeRow(dmt, fimt, mc, nba, ada, efdt float64) map[string]float64 {
	return map[string]float64{
		DMT: dmt, FIMTDD: fimt, VFDTMC: mc, VFDTNBA: nba, HTAda: ada, EFDT: efdt,
	}
}

func electricity() Entry {
	return Entry{
		Name: "Electricity", Surrogate: true,
		Samples: 45312, Features: 8, Classes: 2, MajorityCount: 26075,
		DriftNote: "autocorrelated price-level shifts (random-walk drift)",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Electricity*", Samples: scaled(45312, scale),
				Features: 8, Classes: 2,
				Priors: synth.MajorityPriors(2, 0.575),
				Std:    0.16, LabelNoise: 0.05,
				Drift: synth.DriftWalk, WalkStd: 0.0008,
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.76, 0.78, 0.76, 0.80, 0.77, 0.77, 0.81, 0.81),
		PaperSplits: treeRow(6.5, 52.0, 37.8, 76.7, 3.4, 10.9),
		PaperParams: treeRow(33, 238, 77, 349, 8, 23),
	}
}

func airlines() Entry {
	return Entry{
		Name: "Airlines", Surrogate: true,
		Samples: 539383, Features: 7, Classes: 2, MajorityCount: 299119,
		DriftNote: "slow incremental drift over a long stream",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Airlines*", Samples: scaled(539383, scale),
				Features: 7, Classes: 2,
				Priors: synth.MajorityPriors(2, 0.555),
				Std:    0.18, LabelNoise: 0.08,
				Drift: synth.DriftIncremental, DriftPoints: []float64{0.33, 0.66},
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.63, 0.55, 0.64, 0.65, 0.62, 0.60, 0.64, 0.65),
		PaperSplits: treeRow(35.7, 4.9, 323.3, 647.6, 12.7, 15.2),
		PaperParams: treeRow(146, 22, 648, 2594, 27, 31),
	}
}

func bank() Entry {
	return Entry{
		Name: "Bank", Surrogate: true,
		Samples: 45211, Features: 16, Classes: 2, MajorityCount: 39922,
		DriftNote: "no known drift; strong class imbalance",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Bank*", Samples: scaled(45211, scale),
				Features: 16, Classes: 2,
				Priors: synth.MajorityPriors(2, 0.883),
				Std:    0.15, LabelNoise: 0.03,
				Drift: synth.DriftNone,
				Seed:  seed,
			})
		},
		PaperF1:     f1Row(0.88, 0.88, 0.87, 0.88, 0.88, 0.88, 0.89, 0.89),
		PaperSplits: treeRow(2.3, 75.5, 21.9, 44.8, 5.6, 9.5),
		PaperParams: treeRow(27, 649, 45, 388, 12, 20),
	}
}

func tueyeq() Entry {
	return Entry{
		Name: "TueEyeQ", Surrogate: true,
		Samples: 15762, Features: 76, Classes: 2, MajorityCount: 12975,
		DriftNote: "four task blocks => abrupt drifts with intra-block ramps",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "TueEyeQ*", Samples: scaled(15762, scale),
				Features: 76, Classes: 2,
				Priors: synth.MajorityPriors(2, 0.823),
				Std:    0.15, LabelNoise: 0.05,
				Drift: synth.DriftAbrupt, DriftPoints: []float64{0.25, 0.5, 0.75},
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.79, 0.76, 0.77, 0.77, 0.77, 0.77, 0.78, 0.78),
		PaperSplits: treeRow(1.4, 1.0, 10.6, 22.3, 2.3, 2.8),
		PaperParams: treeRow(92, 76, 22, 896, 6, 7),
	}
}

func poker() Entry {
	return Entry{
		Name: "Poker", Surrogate: true,
		Samples: 1025000, Features: 10, Classes: 9, MajorityCount: 513701,
		DriftNote: "no known drift; rule-like concept hard for all models",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Poker*", Samples: scaled(1025000, scale),
				Features: 10, Classes: 9,
				Priors: synth.MajorityPriors(9, 0.501),
				Std:    0.30, LabelNoise: 0.10,
				Drift: synth.DriftNone,
				Seed:  seed,
			})
		},
		PaperF1:     f1Row(0.44, 0.41, 0.47, 0.50, 0.47, 0.47, 0.50, 0.53),
		PaperSplits: treeRow(9.0, 17.7, 84.7, 856.3, 58.0, 10.0),
		PaperParams: treeRow(80, 150, 170, 6943, 144, 21),
	}
}

func kdd() Entry {
	return Entry{
		Name: "KDD", Surrogate: true,
		Samples: 494020, Features: 41, Classes: 23, MajorityCount: 280790,
		DriftNote: "shuffled, stationary, near-perfectly separable",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "KDD*", Samples: scaled(494020, scale),
				Features: 41, Classes: 23,
				Priors:           synth.MajorityPriors(23, 0.568),
				ClustersPerClass: 1,
				Std:              0.04, LabelNoise: 0.002,
				Drift: synth.DriftNone,
				Seed:  seed,
			})
		},
		PaperF1:     f1Row(0.99, 0.99, 0.96, 0.99, 0.96, 0.99, 0.99, 0.99),
		PaperSplits: treeRow(24.8, 24.8, 25.6, 637.3, 25.4, 24.7),
		PaperParams: treeRow(970, 971, 52, 24016, 52, 50),
	}
}

func covertype() Entry {
	return Entry{
		Name: "Covertype", Surrogate: true,
		Samples: 581012, Features: 54, Classes: 7, MajorityCount: 283301,
		DriftNote: "no known drift; moderately separable multiclass",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Covertype*", Samples: scaled(581012, scale),
				Features: 54, Classes: 7,
				Priors: synth.MajorityPriors(7, 0.488),
				Std:    0.14, LabelNoise: 0.05,
				Drift: synth.DriftNone,
				Seed:  seed,
			})
		},
		PaperF1:     f1Row(0.80, 0.81, 0.72, 0.85, 0.67, 0.74, 0.74, 0.72),
		PaperSplits: treeRow(10.7, 13.7, 356.8, 2861.1, 3.1, 9.4),
		PaperParams: treeRow(474, 597, 715, 116270, 7, 20),
	}
}

func gas() Entry {
	return Entry{
		Name: "Gas", Surrogate: true,
		Samples: 13910, Features: 128, Classes: 6, MajorityCount: 3009,
		DriftNote: "chemical sensor drift (slow random-walk drift)",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Gas*", Samples: scaled(13910, scale),
				Features: 128, Classes: 6,
				Priors: synth.MajorityPriors(6, 0.216),
				Std:    0.10, LabelNoise: 0.03,
				Drift: synth.DriftWalk, WalkStd: 0.0015,
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.82, 0.79, 0.29, 0.77, 0.22, 0.55, 0.80, 0.67),
		PaperSplits: treeRow(9.3, 6.0, 0.7, 11.1, 0.2, 4.7),
		PaperParams: treeRow(939, 640, 2, 1105, 1, 10),
	}
}

func insectsAbrupt() Entry {
	return Entry{
		Name: "Insects-Abr.", Surrogate: true,
		Samples: 355275, Features: 33, Classes: 6, MajorityCount: 101256,
		DriftNote: "controlled abrupt drifts (temperature/humidity changes)",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Insects-Abr.*", Samples: scaled(355275, scale),
				Features: 33, Classes: 6,
				Priors: synth.MajorityPriors(6, 0.285),
				Std:    0.13, LabelNoise: 0.05,
				Drift: synth.DriftAbrupt, DriftPoints: []float64{0.2, 0.4, 0.6, 0.8},
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.73, 0.73, 0.64, 0.71, 0.59, 0.68, 0.72, 0.74),
		PaperSplits: treeRow(9.1, 7.4, 41.3, 295.2, 8.0, 17.3),
		PaperParams: treeRow(237, 198, 84, 7023, 17, 36),
	}
}

func insectsIncremental() Entry {
	return Entry{
		Name: "Insects-Inc.", Surrogate: true,
		Samples: 452044, Features: 33, Classes: 6, MajorityCount: 134717,
		DriftNote: "controlled incremental drift",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewCluster(synth.ClusterConfig{
				Name: "Insects-Inc.*", Samples: scaled(452044, scale),
				Features: 33, Classes: 6,
				Priors: synth.MajorityPriors(6, 0.298),
				Std:    0.13, LabelNoise: 0.05,
				Drift: synth.DriftIncremental, DriftPoints: []float64{0.25, 0.5, 0.75},
				Seed: seed,
			})
		},
		PaperF1:     f1Row(0.73, 0.72, 0.67, 0.72, 0.64, 0.65, 0.72, 0.75),
		PaperSplits: treeRow(9.1, 10.6, 53.5, 380.3, 21.5, 15.9),
		PaperParams: treeRow(238, 275, 108, 9042, 44, 33),
	}
}

func sea() Entry {
	return Entry{
		Name:    "SEA",
		Samples: 1000000, Features: 3, Classes: 2,
		DriftNote: "synthetic, abrupt drifts every 200k observations",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewSEA(scaled(1000000, scale), 0.1, seed)
		},
		PaperF1:     f1Row(0.88, 0.78, 0.86, 0.86, 0.89, 0.87, 0.90, 0.90),
		PaperSplits: treeRow(35.1, 1.0, 588.4, 1177.8, 131.4, 109.9),
		PaperParams: treeRow(71, 3, 1178, 2357, 264, 221),
	}
}

func agrawal() Entry {
	return Entry{
		Name:    "Agrawal",
		Samples: 1000000, Features: 9, Classes: 2,
		DriftNote: "synthetic, incremental drift in three windows",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewAgrawal(scaled(1000000, scale), 0.1, seed)
		},
		PaperF1:     f1Row(0.82, 0.64, 0.77, 0.79, 0.84, 0.82, 0.80, 0.84),
		PaperSplits: treeRow(75.4, 65.8, 628.3, 1257.6, 158.2, 89.7),
		PaperParams: treeRow(381, 333, 1258, 6292, 377, 180),
	}
}

func hyperplane() Entry {
	return Entry{
		Name:    "Hyperplane",
		Samples: 500000, Features: 50, Classes: 2,
		DriftNote: "synthetic, continuous incremental drift",
		New: func(scale float64, seed int64) stream.Stream {
			return synth.NewHyperplane(scaled(500000, scale), 50, 0.1, seed)
		},
		PaperF1:     f1Row(0.84, 0.76, 0.65, 0.73, 0.66, 0.69, 0.64, 0.72),
		PaperSplits: treeRow(2.2, 8.0, 277.9, 556.8, 188.7, 31.0),
		PaperParams: treeRow(80, 229, 557, 14224, 378, 63),
	}
}
