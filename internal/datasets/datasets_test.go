package datasets

import (
	"testing"

	"repro/internal/stream"
)

func TestRegistryComplete(t *testing.T) {
	entries := All()
	if len(entries) != 13 {
		t.Fatalf("Table I has 13 data sets, registry has %d", len(entries))
	}
	want := []string{
		"Electricity", "Airlines", "Bank", "TueEyeQ", "Poker", "KDD",
		"Covertype", "Gas", "Insects-Abr.", "Insects-Inc.",
		"SEA", "Agrawal", "Hyperplane",
	}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Fatalf("entry %d = %q, want %q (paper order)", i, e.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("SEA")
	if err != nil || e.Name != "SEA" {
		t.Fatalf("ByName(SEA) = %v, %v", e.Name, err)
	}
	// Surrogate display names resolve too.
	e, err = ByName("Gas*")
	if err != nil || e.Name != "Gas" {
		t.Fatalf("ByName(Gas*) = %v, %v", e.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

// Every factory must produce a stream matching its advertised Table I
// dimensions.
func TestFactoriesMatchTableI(t *testing.T) {
	for _, e := range All() {
		s := e.New(0.01, 42)
		schema := s.Schema()
		if err := schema.Validate(); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if schema.NumFeatures != e.Features {
			t.Errorf("%s: features %d, Table I says %d", e.Name, schema.NumFeatures, e.Features)
		}
		if schema.NumClasses != e.Classes {
			t.Errorf("%s: classes %d, Table I says %d", e.Name, schema.NumClasses, e.Classes)
		}
		sized, ok := s.(stream.Sized)
		if !ok {
			t.Fatalf("%s: not Sized", e.Name)
		}
		if sized.Len() > e.Samples {
			t.Errorf("%s: scaled length %d exceeds full size %d", e.Name, sized.Len(), e.Samples)
		}
		// The stream actually produces valid instances.
		inst, err := s.Next()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if len(inst.X) != e.Features || inst.Y < 0 || inst.Y >= e.Classes {
			t.Errorf("%s: bad instance %v", e.Name, inst)
		}
	}
}

func TestFullScaleLengths(t *testing.T) {
	for _, e := range All() {
		s := e.New(1, 42)
		if got := s.(stream.Sized).Len(); got != e.Samples {
			t.Errorf("%s: full-scale length %d, want %d", e.Name, got, e.Samples)
		}
	}
}

func TestScaledFloor(t *testing.T) {
	e, _ := ByName("Gas")
	s := e.New(0.0001, 42) // would be ~1 sample; floor applies
	if got := s.(stream.Sized).Len(); got < 2000 {
		t.Fatalf("scaled floor broken: %d", got)
	}
}

// The paper-reference maps must cover every reported model so
// EXPERIMENTS.md comparisons are complete.
func TestPaperReferencesComplete(t *testing.T) {
	f1Models := []string{DMT, FIMTDD, VFDTMC, VFDTNBA, HTAda, EFDT, Forest, Bagging}
	treeModels := []string{DMT, FIMTDD, VFDTMC, VFDTNBA, HTAda, EFDT}
	for _, e := range All() {
		for _, m := range f1Models {
			if _, ok := e.PaperF1[m]; !ok {
				t.Errorf("%s: missing paper F1 for %s", e.Name, m)
			}
		}
		for _, m := range treeModels {
			if _, ok := e.PaperSplits[m]; !ok {
				t.Errorf("%s: missing paper splits for %s", e.Name, m)
			}
			if _, ok := e.PaperParams[m]; !ok {
				t.Errorf("%s: missing paper params for %s", e.Name, m)
			}
		}
	}
}

func TestMajorityShares(t *testing.T) {
	// Spot-check the Table I majority shares.
	e, _ := ByName("Bank")
	if share := e.MajorityShare(); share < 0.88 || share > 0.89 {
		t.Fatalf("Bank majority share %v, Table I says 39922/45211", share)
	}
	e, _ = ByName("Poker")
	if share := e.MajorityShare(); share < 0.50 || share > 0.51 {
		t.Fatalf("Poker majority share %v", share)
	}
}

func TestSurrogateMarking(t *testing.T) {
	real := map[string]bool{"SEA": true, "Agrawal": true, "Hyperplane": true}
	for _, e := range All() {
		if real[e.Name] && e.Surrogate {
			t.Errorf("%s is a faithful generator, not a surrogate", e.Name)
		}
		if !real[e.Name] && !e.Surrogate {
			t.Errorf("%s must be marked as a surrogate (offline environment)", e.Name)
		}
		if e.Surrogate && e.DisplayName() != e.Name+"*" {
			t.Errorf("%s: surrogate display name %q", e.Name, e.DisplayName())
		}
	}
}

func TestDeterministicFactories(t *testing.T) {
	e, _ := ByName("Electricity")
	a := e.New(0.01, 42)
	b := e.New(0.01, 42)
	for i := 0; i < 200; i++ {
		ia, _ := a.Next()
		ib, _ := b.Next()
		if ia.Y != ib.Y || ia.X[0] != ib.X[0] {
			t.Fatal("same seed produced different streams")
		}
	}
}
