package registry

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

// fake is a registry-only test classifier.
type fake struct{ p Params }

func (f *fake) Learn(stream.Batch)           {}
func (f *fake) Predict([]float64) int        { return 0 }
func (f *fake) Complexity() model.Complexity { return model.Complexity{} }
func (f *fake) Name() string                 { return "fake" }

func fakeFactory(schema stream.Schema, p Params) (model.Classifier, error) {
	return &fake{p: p}, nil
}

var schema = stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "t"}

func TestRegisterNewRoundTrip(t *testing.T) {
	Register("test-fake", fakeFactory)
	if !Registered("test-fake") {
		t.Fatal("test-fake not registered")
	}
	c, err := New("test-fake", schema,
		WithSeed(3), WithLearningRate(0.5), WithEpsilon(1e-3), WithGracePeriod(50),
		WithDelta(0.1), WithTau(0.2), WithBins(7), WithMaxDepth(4),
		WithLeafMode(LeafNaiveBayes), WithADWINDelta(0.01), WithReevalPeriod(9),
		WithEnsembleSize(5), WithLambda(2), WithCandidateFactor(6),
		WithReplacementRate(0.3), WithRestructureGrace(10), WithL1(0.05),
		WithPageHinkley(0.1, 7))
	if err != nil {
		t.Fatal(err)
	}
	p := c.(*fake).p
	want := Params{
		Seed: 3, LearningRate: 0.5, Epsilon: 1e-3, GracePeriod: 50,
		Delta: 0.1, Tau: 0.2, Bins: 7, MaxDepth: 4,
		LeafMode: LeafNaiveBayes, ADWINDelta: 0.01, ReevalPeriod: 9,
		EnsembleSize: 5, Lambda: 2, CandidateFactor: 6,
		ReplacementRate: 0.3, RestructureGrace: 10, L1: 0.05,
		PHDelta: 0.1, PHLambda: 7,
	}
	if p != want {
		t.Fatalf("params = %+v, want %+v", p, want)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New("definitely-unknown", schema); err == nil ||
		!strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("unknown model error = %v", err)
	}
	if _, err := New("DMT", stream.Schema{NumFeatures: 0, NumClasses: 2}); err == nil {
		t.Fatal("invalid schema must error")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { Register("", fakeFactory) })
	mustPanic("nil factory", func() { Register("test-nil", nil) })
	Register("test-dup", fakeFactory)
	mustPanic("duplicate", func() { Register("test-dup", fakeFactory) })
}

func TestNamesSortedAndConcurrentAccess(t *testing.T) {
	Register("test-zzz", fakeFactory)
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	// Registry reads must be goroutine-safe (serving builds models on
	// demand from many goroutines).
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := New("test-zzz", schema, WithSeed(int64(j))); err != nil {
					t.Error(err)
					return
				}
				Names()
				Registered("test-zzz")
			}
		}()
	}
	wg.Wait()
}
