// Package registry is the model registry behind the public serving API:
// every learner package self-registers a factory under its paper table
// name (plus aliases) in an init function, and the facade's
// repro.New(name, schema, opts...) resolves names here. The registry
// decouples the evaluation harness and the serving layer from the
// concrete learner packages — adding a model is one Register call, with
// no central switch to edit.
package registry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/stream"
)

// LeafMode mirrors the Hoeffding-tree leaf predictor selection without
// importing the hoeffding package (which itself registers here). The
// values match hoeffding.LeafMode by construction.
type LeafMode int

const (
	// LeafMajorityClass predicts the most frequent class at the leaf.
	LeafMajorityClass LeafMode = iota
	// LeafNaiveBayes predicts with a Gaussian Naive Bayes leaf model.
	LeafNaiveBayes
	// LeafNaiveBayesAdaptive picks the more accurate of the two per leaf.
	LeafNaiveBayesAdaptive
)

// Params is the flattened hyperparameter bag that functional options
// write into. Each factory maps the fields it understands onto its own
// config struct; zero values always mean "use the package default", so an
// empty Params reproduces the paper's Section VI-C configuration exactly.
type Params struct {
	// Seed drives every source of randomness of the built model.
	Seed int64
	// LearningRate of GLM leaf/node models (DMT default 0.05, FIMT-DD
	// 0.01, GLM baseline 0.05).
	LearningRate float64
	// Epsilon is the DMT's AIC confidence level (default 1e-7).
	Epsilon float64
	// CandidateFactor caps DMT split candidates at factor*m (default 3).
	CandidateFactor int
	// ReplacementRate is the DMT candidate-pool churn rate (default 0.5).
	ReplacementRate float64
	// RestructureGrace is the DMT inner-node grace weight (default 2000).
	RestructureGrace float64
	// L1 is the DMT's optional proximal L1 strength (default 0 = off).
	L1 float64
	// MaxDepth bounds tree growth; 0 means unbounded.
	MaxDepth int
	// GracePeriod is the Hoeffding-family weight between split attempts
	// (default 200).
	GracePeriod float64
	// Delta is the Hoeffding bound confidence (default 1e-7; FIMT-DD 0.01).
	Delta float64
	// Tau is the Hoeffding tie-break threshold (default 0.05).
	Tau float64
	// Bins is the number of candidate thresholds per numeric observer
	// (default 10).
	Bins int
	// LeafMode selects the VFDT leaf predictor (only the generic "VFDT"
	// registration honours it; the "(MC)"/"(NB)"/"(NBA)" names are fixed).
	LeafMode LeafMode
	// ADWINDelta is the HT-Ada per-node monitor confidence (default 0.002).
	ADWINDelta float64
	// ReevalPeriod is the EFDT split re-evaluation weight (default 1000).
	ReevalPeriod float64
	// EnsembleSize is the number of ensemble members (default 3).
	EnsembleSize int
	// Lambda is the ensembles' Poisson weighting intensity (default 6).
	Lambda float64
	// WarnDelta and DriftDelta are the ensembles' ADWIN confidences for
	// the warning and drift detectors (ARF defaults 0.01 and 0.001;
	// Leveraging Bagging uses DriftDelta alone, default 0.002).
	WarnDelta  float64
	DriftDelta float64
	// EnsembleWorkers bounds the ensembles' member-learning worker pool
	// (0 = GOMAXPROCS, 1 = sequential; results are identical either way).
	EnsembleWorkers int
	// PHDelta and PHLambda parameterise FIMT-DD's Page-Hinkley detectors
	// (defaults 0.005 and 50).
	PHDelta  float64
	PHLambda float64
}

// Option mutates one Params field; options compose left to right.
type Option func(*Params)

// WithSeed fixes every source of randomness of the model.
func WithSeed(seed int64) Option { return func(p *Params) { p.Seed = seed } }

// WithLearningRate sets the SGD rate of GLM-based models.
func WithLearningRate(lr float64) Option { return func(p *Params) { p.LearningRate = lr } }

// WithEpsilon sets the DMT's AIC confidence level (eq. 11).
func WithEpsilon(eps float64) Option { return func(p *Params) { p.Epsilon = eps } }

// WithCandidateFactor caps DMT split candidates at factor*NumFeatures.
func WithCandidateFactor(f int) Option { return func(p *Params) { p.CandidateFactor = f } }

// WithReplacementRate sets the DMT candidate-pool churn rate.
func WithReplacementRate(r float64) Option { return func(p *Params) { p.ReplacementRate = r } }

// WithRestructureGrace sets the DMT inner-node restructure grace weight.
func WithRestructureGrace(g float64) Option { return func(p *Params) { p.RestructureGrace = g } }

// WithL1 enables the DMT's sparsity extension with the given strength.
func WithL1(l1 float64) Option { return func(p *Params) { p.L1 = l1 } }

// WithMaxDepth bounds tree growth (0 = unbounded).
func WithMaxDepth(d int) Option { return func(p *Params) { p.MaxDepth = d } }

// WithGracePeriod sets the Hoeffding-family split-attempt grace weight.
func WithGracePeriod(g float64) Option { return func(p *Params) { p.GracePeriod = g } }

// WithDelta sets the Hoeffding bound confidence.
func WithDelta(d float64) Option { return func(p *Params) { p.Delta = d } }

// WithTau sets the Hoeffding tie-break threshold.
func WithTau(t float64) Option { return func(p *Params) { p.Tau = t } }

// WithBins sets the candidate thresholds per numeric observer.
func WithBins(b int) Option { return func(p *Params) { p.Bins = b } }

// WithLeafMode selects the VFDT leaf predictor for the generic "VFDT"
// registration.
func WithLeafMode(m LeafMode) Option { return func(p *Params) { p.LeafMode = m } }

// WithADWINDelta sets the HT-Ada per-node monitor confidence.
func WithADWINDelta(d float64) Option { return func(p *Params) { p.ADWINDelta = d } }

// WithReevalPeriod sets the EFDT split re-evaluation weight.
func WithReevalPeriod(w float64) Option { return func(p *Params) { p.ReevalPeriod = w } }

// WithEnsembleSize sets the number of ensemble members.
func WithEnsembleSize(n int) Option { return func(p *Params) { p.EnsembleSize = n } }

// WithLambda sets the ensembles' Poisson weighting intensity.
func WithLambda(l float64) Option { return func(p *Params) { p.Lambda = l } }

// WithEnsembleDeltas sets the ensembles' warning and drift ADWIN
// confidences (zero keeps the respective package default).
func WithEnsembleDeltas(warn, drift float64) Option {
	return func(p *Params) { p.WarnDelta, p.DriftDelta = warn, drift }
}

// WithEnsembleWorkers bounds the ensembles' member-learning worker pool.
func WithEnsembleWorkers(n int) Option { return func(p *Params) { p.EnsembleWorkers = n } }

// WithPageHinkley sets FIMT-DD's Page-Hinkley detector parameters.
func WithPageHinkley(delta, lambda float64) Option {
	return func(p *Params) { p.PHDelta, p.PHLambda = delta, lambda }
}

// Factory builds a classifier for a schema from a resolved Params bag.
type Factory func(schema stream.Schema, p Params) (model.Classifier, error)

// Loader restores a classifier from the checkpoint payload a matching
// model.Checkpointer wrote with SaveState. The schema and resolved
// Params come from the checkpoint envelope; the payload itself is the
// source of truth for the model's full configuration and state, so a
// Loader typically validates the envelope schema against the payload
// and ignores Params beyond diagnostics.
type Loader func(schema stream.Schema, p Params, r io.Reader) (model.Classifier, error)

// ParamsReporter is optionally implemented by learners that can report
// the resolved Params bag they were built from. persist.Save embeds it
// in the checkpoint envelope, making checkpoints self-describing without
// decoding the model payload.
type ParamsReporter interface {
	CheckpointParams() Params
}

var (
	mu        sync.RWMutex
	factories = map[string]Factory{}
	loaders   = map[string]Loader{}
)

// Register adds a factory under a model name. It is meant to be called
// from learner-package init functions and panics on an empty name, a nil
// factory, or a duplicate registration — all three are programmer errors
// that must surface at process start, not at serve time.
func Register(name string, f Factory) {
	if strings.TrimSpace(name) == "" {
		panic("registry: Register with empty model name")
	}
	if f == nil {
		panic(fmt.Sprintf("registry: Register(%q) with nil factory", name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("registry: Register(%q) called twice", name))
	}
	factories[name] = f
}

// RegisterLoader adds the checkpoint-restore factory of a model name —
// the LoadState counterpart of Register. Like Register it is meant for
// learner-package init functions and panics on an empty name, a nil
// loader or a duplicate registration.
func RegisterLoader(name string, l Loader) {
	if strings.TrimSpace(name) == "" {
		panic("registry: RegisterLoader with empty model name")
	}
	if l == nil {
		panic(fmt.Sprintf("registry: RegisterLoader(%q) with nil loader", name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := loaders[name]; dup {
		panic(fmt.Sprintf("registry: RegisterLoader(%q) called twice", name))
	}
	loaders[name] = l
}

// LoaderFor returns the registered checkpoint loader of a model name.
func LoaderFor(name string) (Loader, bool) {
	mu.RLock()
	defer mu.RUnlock()
	l, ok := loaders[name]
	return l, ok
}

// HasLoader reports whether a model name has a registered loader.
func HasLoader(name string) bool {
	_, ok := LoaderFor(name)
	return ok
}

// Registered reports whether a model name is known.
func Registered(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	_, ok := factories[name]
	return ok
}

// Names returns every registered model name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds a classifier by registered name. The schema is validated up
// front so misconfigured serving paths fail before any learning starts.
func New(name string, schema stream.Schema, opts ...Option) (model.Classifier, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	mu.RLock()
	f, ok := factories[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("registry: unknown model %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	var p Params
	for _, opt := range opts {
		if opt != nil {
			opt(&p)
		}
	}
	return f(schema, p)
}

// MustNew is New for initialisation paths where a failure is fatal.
func MustNew(name string, schema stream.Schema, opts ...Option) model.Classifier {
	c, err := New(name, schema, opts...)
	if err != nil {
		panic(err)
	}
	return c
}
