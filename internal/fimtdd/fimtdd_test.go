package fimtdd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

func conceptBatch(rng *rand.Rand, n int, inverted bool) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0]+0.5*x[1] > 0.75 {
			y = 1
		}
		if inverted {
			y = 1 - y
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(t *Tree, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if t.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestLearnsLinearConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(Config{Seed: 1}, schema2())
	for i := 0; i < 100; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestPageHinkleyPrunesOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{Seed: 2}, schema2())
	for i := 0; i < 100; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	if tree.Complexity().Inner == 0 {
		t.Skip("tree did not grow; prune test not applicable")
	}
	for i := 0; i < 200; i++ {
		tree.Learn(conceptBatch(rng, 200, true))
	}
	if tree.Prunes() == 0 {
		t.Fatal("Page-Hinkley never deleted a branch under a full concept inversion")
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("post-drift accuracy %v", acc)
	}
}

func TestComplexityModelLeafCounting(t *testing.T) {
	tree := New(Config{Seed: 3}, schema2())
	comp := tree.Complexity()
	// Root-only binary tree with a linear leaf: 1 split, m params.
	if comp.Splits != 1 || comp.Params != 2 {
		t.Fatalf("root complexity = %+v, want splits 1, params 2", comp)
	}
}

func TestMulticlassTargetEncoding(t *testing.T) {
	schema := stream.Schema{NumFeatures: 2, NumClasses: 3, Name: "m3"}
	tree := New(Config{Seed: 4}, schema)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		var b stream.Batch
		for j := 0; j < 100; j++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y := 0
			switch {
			case x[0] > 0.66:
				y = 2
			case x[0] > 0.33:
				y = 1
			}
			b.X = append(b.X, x)
			b.Y = append(b.Y, y)
		}
		tree.Learn(b)
	}
	correct := 0
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 0
		switch {
		case x[0] > 0.66:
			want = 2
		case x[0] > 0.33:
			want = 1
		}
		if tree.Predict(x) == want {
			correct++
		}
	}
	if acc := float64(correct) / 600; acc < 0.75 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
}

func TestIgnoresOutOfRangeLabels(t *testing.T) {
	tree := New(Config{Seed: 5}, schema2())
	tree.Learn(stream.Batch{X: [][]float64{{0.5, 0.5}}, Y: []int{9}})
	// No panic and no growth.
	if tree.Complexity().Inner != 0 {
		t.Fatal("bad label caused growth")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.LearningRate != 0.01 || cfg.Delta != 0.01 || cfg.Tau != 0.05 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if cfg.PHDelta != 0.005 || cfg.PHLambda != 50 {
		t.Fatalf("Page-Hinkley defaults wrong: %+v", cfg)
	}
}

var _ model.Classifier = (*Tree)(nil)
var _ model.ProbabilisticClassifier = (*Tree)(nil)

var _ model.Snapshotter = (*Tree)(nil)

// singleCandidateBatch yields rows where only one candidate threshold
// exists in the whole leaf: x0 is binary (one valid E-BST split point),
// x1 is constant (no valid split point at all). y follows x0 with 30%
// label noise, so the candidate's SDR merit is clearly positive.
func singleCandidateBatch(rng *rand.Rand, n int) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x0 := float64(rng.Intn(2))
		y := int(x0)
		if rng.Float64() < 0.3 {
			y = 1 - y
		}
		b.X = append(b.X, []float64{x0, 0.5})
		b.Y = append(b.Y, y)
	}
	return b
}

// Regression for the unconditional-split bug: with a single valid
// candidate the runner-up merit stayed -Inf, the merit ratio was forced
// to 0 and the leaf split at the first grace period with zero
// statistical evidence. The Hoeffding guard must now hold the split back
// until the tie condition (bound below tau) is met.
func TestSingleCandidateNeedsTieEvidence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := New(Config{Seed: 11}, schema2())

	// 800 instances = four grace-period attempts, all with the Hoeffding
	// bound still above tau: no split may fire (the old code split at
	// instance 200 unconditionally).
	for i := 0; i < 4; i++ {
		tree.Learn(singleCandidateBatch(rng, 200))
	}
	if inner := tree.Complexity().Inner; inner != 0 {
		t.Fatalf("split with a single candidate and eps > tau: inner = %d", inner)
	}

	// With enough weight the bound collapses below tau (n >= ~922 at
	// delta 0.01) and the tie condition legitimately admits the split.
	for i := 0; i < 4; i++ {
		tree.Learn(singleCandidateBatch(rng, 200))
	}
	if inner := tree.Complexity().Inner; inner == 0 {
		t.Fatal("tie condition never admitted the single-candidate split")
	}
}

// Regression for silent NaN routing: non-finite feature values must
// route deterministically (left) and identically on the learn and
// predict paths; previously NaN and +Inf compared false against the
// threshold and drifted right while the observers skipped them.
func TestNonFiniteRoutesLeftConsistently(t *testing.T) {
	tree := New(Config{Seed: 9}, schema2())
	tree.splitLeaf(tree.root, 0, 0.5)
	left, right := tree.root.left, tree.root.right
	// Make the children predict opposite classes: logit weights are
	// [w0, w1, bias], so a large bias pins the prediction.
	left.mod.SetWeights([]float64{0, 0, -10})
	right.mod.SetWeights([]float64{0, 0, 10})

	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := []float64{v, 0.9}
		if got := tree.Predict(x); got != 0 {
			t.Errorf("Predict routed x0=%v right (class %d), want left", v, got)
		}
		before := left.seen
		tree.learnOne(x, 0)
		if left.seen != before+1 {
			t.Errorf("learnOne routed x0=%v away from the left leaf", v)
		}
	}
	// Finite values still split at the threshold.
	if tree.Predict([]float64{0.4, 0}) != 0 || tree.Predict([]float64{0.6, 0}) != 1 {
		t.Fatal("finite routing broken")
	}
}

// Steady-state learnOne must allocate nothing: the routing path buffer,
// the E-BST observers (on already-indexed keys) and the RowStep leaf
// update all reuse per-tree state. Single-class labels keep the target
// deviation at zero so no split scan runs mid-measurement.
func TestLearnSteadyStateZeroAllocs(t *testing.T) {
	tree := New(Config{Seed: 5}, schema2())
	xs := [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}, {0.7, 0.8}}
	for i := 0; i < 300; i++ {
		for _, x := range xs {
			tree.learnOne(x, 0)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		tree.learnOne(xs[i&3], 0)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state learnOne allocates %.2f allocs/op, want 0", avg)
	}
}

// The snapshot must predict identically to the live tree and stay
// unaffected by further learning.
func TestSnapshotMatchesLiveTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tree := New(Config{Seed: 21}, schema2())
	for i := 0; i < 60; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	snap := tree.Snapshot()
	probes := conceptBatch(rng, 500, false)
	want := make([]int, probes.Len())
	for i, x := range probes.X {
		want[i] = tree.Predict(x)
	}
	for i, x := range probes.X {
		if got := snap.Predict(x); got != want[i] {
			t.Fatalf("snapshot diverges from live tree at row %d", i)
		}
	}
	if snap.Complexity() != tree.Complexity() {
		t.Fatal("snapshot complexity differs")
	}
	// Keep training the live tree; the frozen snapshot must not move.
	for i := 0; i < 60; i++ {
		tree.Learn(conceptBatch(rng, 200, true))
	}
	for i, x := range probes.X {
		if got := snap.Predict(x); got != want[i] {
			t.Fatalf("snapshot changed after live learning at row %d", i)
		}
	}
}
