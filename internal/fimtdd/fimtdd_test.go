package fimtdd

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

func conceptBatch(rng *rand.Rand, n int, inverted bool) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0]+0.5*x[1] > 0.75 {
			y = 1
		}
		if inverted {
			y = 1 - y
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(t *Tree, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if t.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestLearnsLinearConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(Config{Seed: 1}, schema2())
	for i := 0; i < 100; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestPageHinkleyPrunesOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{Seed: 2}, schema2())
	for i := 0; i < 100; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	if tree.Complexity().Inner == 0 {
		t.Skip("tree did not grow; prune test not applicable")
	}
	for i := 0; i < 200; i++ {
		tree.Learn(conceptBatch(rng, 200, true))
	}
	if tree.Prunes() == 0 {
		t.Fatal("Page-Hinkley never deleted a branch under a full concept inversion")
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("post-drift accuracy %v", acc)
	}
}

func TestComplexityModelLeafCounting(t *testing.T) {
	tree := New(Config{Seed: 3}, schema2())
	comp := tree.Complexity()
	// Root-only binary tree with a linear leaf: 1 split, m params.
	if comp.Splits != 1 || comp.Params != 2 {
		t.Fatalf("root complexity = %+v, want splits 1, params 2", comp)
	}
}

func TestMulticlassTargetEncoding(t *testing.T) {
	schema := stream.Schema{NumFeatures: 2, NumClasses: 3, Name: "m3"}
	tree := New(Config{Seed: 4}, schema)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		var b stream.Batch
		for j := 0; j < 100; j++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y := 0
			switch {
			case x[0] > 0.66:
				y = 2
			case x[0] > 0.33:
				y = 1
			}
			b.X = append(b.X, x)
			b.Y = append(b.Y, y)
		}
		tree.Learn(b)
	}
	correct := 0
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		want := 0
		switch {
		case x[0] > 0.66:
			want = 2
		case x[0] > 0.33:
			want = 1
		}
		if tree.Predict(x) == want {
			correct++
		}
	}
	if acc := float64(correct) / 600; acc < 0.75 {
		t.Fatalf("multiclass accuracy %v", acc)
	}
}

func TestIgnoresOutOfRangeLabels(t *testing.T) {
	tree := New(Config{Seed: 5}, schema2())
	tree.Learn(stream.Batch{X: [][]float64{{0.5, 0.5}}, Y: []int{9}})
	// No panic and no growth.
	if tree.Complexity().Inner != 0 {
		t.Fatal("bad label caused growth")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.LearningRate != 0.01 || cfg.Delta != 0.01 || cfg.Tau != 0.05 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if cfg.PHDelta != 0.005 || cfg.PHLambda != 50 {
		t.Fatalf("Page-Hinkley defaults wrong: %+v", cfg)
	}
}

var _ model.Classifier = (*Tree)(nil)
var _ model.ProbabilisticClassifier = (*Tree)(nil)
