// Package fimtdd implements the classification variant of FIMT-DD
// (Ikonomovska, Gama & Džeroski [21]) exactly as the paper's authors did
// for their comparison (Section VI-C): since no public classification
// implementation exists, the regression tree is re-targeted at the class
// index. It keeps FIMT-DD's defining traits:
//
//   - standard deviation reduction (SDR) as the split merit, compared via
//     Hoeffding's inequality on the merit ratio (delta = 0.01, tie 0.05);
//   - extended binary search trees (E-BST) as per-feature observers;
//   - linear simple models in the leaves, trained by SGD with learning
//     rate 0.01, warm-started from the parent on splits;
//   - explicit drift handling: one Page-Hinkley detector per inner node,
//     with the authors' chosen "second adaptation strategy" — delete the
//     branch when the test raises an alert;
//   - no model updates at inner nodes after splitting, in contrast to the
//     Dynamic Model Tree (Section IV-D).
package fimtdd

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attrobs"
	"repro/internal/drift"
	"repro/internal/glm"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/split"
	"repro/internal/stream"
)

// Config holds the FIMT-DD hyperparameters with the paper's defaults.
type Config struct {
	// LearningRate of the leaf models (paper: 0.01).
	LearningRate float64
	// Delta is the Hoeffding significance threshold (paper: 0.01).
	Delta float64
	// Tau is the tie-break threshold (paper: 0.05).
	Tau float64
	// GracePeriod is the weight between split attempts (default 200).
	GracePeriod float64
	// MaxEBSTNodes bounds each per-feature E-BST (default 512).
	MaxEBSTNodes int
	// PHDelta and PHLambda parameterise the Page-Hinkley detectors
	// (defaults 0.005 and 50).
	PHDelta  float64
	PHLambda float64
	// MaxDepth bounds growth; 0 means unbounded.
	MaxDepth int
	// Seed drives the random initial leaf-model weights.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Delta <= 0 {
		c.Delta = 0.01
	}
	if c.Tau <= 0 {
		c.Tau = 0.05
	}
	if c.GracePeriod <= 0 {
		c.GracePeriod = 200
	}
	if c.MaxEBSTNodes <= 0 {
		c.MaxEBSTNodes = 512
	}
	if c.PHDelta <= 0 {
		c.PHDelta = 0.005
	}
	if c.PHLambda <= 0 {
		c.PHLambda = 50
	}
	return c
}

// fnode is one FIMT-DD node.
type fnode struct {
	// Leaf state.
	mod       glm.Model
	observers []*attrobs.EBST
	target    split.TargetStats
	seen      float64
	lastEval  float64

	// Inner state.
	feature     int
	threshold   float64
	left, right *fnode
	ph          *drift.PageHinkley

	depth int

	// snap caches the immutable SnapNode that froze this subtree at the
	// last publish; learnOne clears it while routing (every mutation —
	// leaf training, splits, Page-Hinkley branch deletions — happens on
	// the routed path), so Snapshot() re-freezes only what changed.
	snap *model.SnapNode
}

func (n *fnode) isLeaf() bool { return n.left == nil }

// Tree is the FIMT-DD classifier.
type Tree struct {
	cfg    Config
	schema stream.Schema
	root   *fnode
	rng    *rand.Rand
	src    *rng.Source // counted source behind rng, for checkpointing
	splits int
	prunes int
	// path is the reusable inner-node buffer of learnOne, so routing one
	// instance allocates nothing in steady state.
	path []*fnode
}

// routeLeft reports whether feature value v routes to the left child of
// a split at threshold. Non-finite values (NaN, ±Inf) deterministically
// route left, matching the observers — which skip non-finite values, so
// no candidate threshold ever separates them — and keeping the learn and
// predict paths consistent (previously NaN and +Inf silently compared
// false and drifted right). The shared model.RouteLeft predicate keeps
// this identical to snapshot routing.
func routeLeft(v, threshold float64) bool {
	return model.RouteLeft(v, threshold, true)
}

// New returns an empty FIMT-DD tree for the schema.
func New(cfg Config, schema stream.Schema) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg, schema: schema}
	t.rng, t.src = rng.New(cfg.Seed + 4)
	t.root = t.newLeaf(0, nil)
	return t
}

// Schema returns the stream schema the tree was built for.
func (t *Tree) Schema() stream.Schema { return t.schema }

// newLeaf creates a leaf; a non-nil parent model warm-starts the leaf
// model with the parent's weights (the FIMT-DD initialisation).
func (t *Tree) newLeaf(depth int, parent glm.Model) *fnode {
	n := &fnode{depth: depth}
	if parent != nil {
		n.mod = parent.Clone()
	} else {
		n.mod = glm.New(t.schema.NumFeatures, t.schema.NumClasses, t.rng)
	}
	n.observers = make([]*attrobs.EBST, t.schema.NumFeatures)
	for j := range n.observers {
		n.observers[j] = attrobs.NewEBST(t.cfg.MaxEBSTNodes)
	}
	return n
}

// Name implements model.Classifier.
func (t *Tree) Name() string { return "FIMT-DD" }

// Learn implements model.Classifier.
func (t *Tree) Learn(b stream.Batch) {
	for i, x := range b.X {
		t.learnOne(x, b.Y[i])
	}
}

func (t *Tree) learnOne(x []float64, y int) {
	if y < 0 || y >= t.schema.NumClasses {
		return
	}
	// Route to the leaf, collecting the inner nodes on the path so their
	// Page-Hinkley detectors can observe this instance's error.
	path := t.path[:0]
	cur := t.root
	for !cur.isLeaf() {
		cur.snap = nil
		path = append(path, cur)
		if routeLeft(x[cur.feature], cur.threshold) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	cur.snap = nil
	t.path = path
	leaf := cur

	// 0/1 misclassification error of the deployed leaf model, fed to the
	// Page-Hinkley detectors bottom-up; an alert deletes that branch.
	errSignal := 0.0
	if leaf.mod.Predict(x) != y {
		errSignal = 1
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.ph.Add(errSignal) {
			t.pruneToLeaf(n)
			// The pruned node is now a leaf: train it on this instance.
			leaf = n
			break
		}
	}

	t.trainLeaf(leaf, x, y)
}

// pruneToLeaf deletes the branch rooted at n (the authors' second
// adaptation strategy) and restarts it as a fresh leaf.
func (t *Tree) pruneToLeaf(n *fnode) {
	fresh := t.newLeaf(n.depth, nil)
	*n = *fresh
	t.prunes++
}

// trainLeaf updates statistics, trains the leaf model, and attempts the
// SDR/Hoeffding split.
func (t *Tree) trainLeaf(leaf *fnode, x []float64, y int) {
	target := float64(y)
	leaf.target.Add(target, 1)
	leaf.seen++
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		leaf.observers[j].Observe(v, target, 1)
	}
	leaf.mod.RowStep(x, y, t.cfg.LearningRate)

	if leaf.seen-leaf.lastEval < t.cfg.GracePeriod {
		return
	}
	leaf.lastEval = leaf.seen
	if t.cfg.MaxDepth > 0 && leaf.depth >= t.cfg.MaxDepth {
		return
	}
	t.attemptSplit(leaf)
}

// attemptSplit applies FIMT-DD's split rule: find the best and second-best
// SDR over all features and split when the merit ratio second/best drops
// below 1 - epsilon, or epsilon falls below the tie threshold.
func (t *Tree) attemptSplit(leaf *fnode) {
	if leaf.target.Std() == 0 {
		return // nothing to reduce
	}
	best := attrobs.CandidateSplit{Merit: math.Inf(-1)}
	second := math.Inf(-1)
	for j, obs := range leaf.observers {
		cand, runnerUp, ok := obs.BestSDRSplit(j, leaf.target)
		if !ok {
			continue
		}
		if cand.Merit > best.Merit {
			second = best.Merit
			best = cand
		} else if cand.Merit > second {
			second = cand.Merit
		}
		if runnerUp > second && runnerUp < best.Merit {
			second = runnerUp
		}
	}
	if math.IsInf(best.Merit, -1) || best.Merit <= 0 {
		return
	}
	eps := split.HoeffdingBound(1, t.cfg.Delta, leaf.seen)
	if math.IsInf(second, -1) {
		// No runner-up exists (a single valid candidate overall): there
		// is no ratio to test, so the Hoeffding guard has no statistical
		// evidence that the best split beats an alternative. Only the
		// tie condition — the bound collapsed below tau, i.e. any
		// competitor would be within the tie margin anyway — may admit
		// the split. (Previously the ratio was forced to 0 and the leaf
		// split unconditionally every grace period.) A genuine runner-up
		// with zero or negative merit is NOT this case: it takes the
		// ratio test below, where ratio <= 0 < 1-eps admits the split —
		// the paper's rule for a dominant best candidate.
		if eps < t.cfg.Tau {
			t.splitLeaf(leaf, best.Feature, best.Threshold)
		}
		return
	}
	ratio := second / best.Merit
	if ratio < 1-eps || eps < t.cfg.Tau {
		t.splitLeaf(leaf, best.Feature, best.Threshold)
	}
}

// splitLeaf converts the leaf into an inner node with warm-started
// children. Inner nodes stop training their model — the key contrast with
// the Dynamic Model Tree (Section IV-D).
func (t *Tree) splitLeaf(leaf *fnode, feature int, threshold float64) {
	parentModel := leaf.mod
	leaf.feature, leaf.threshold = feature, threshold
	leaf.left = t.newLeaf(leaf.depth+1, parentModel)
	leaf.right = t.newLeaf(leaf.depth+1, parentModel)
	leaf.ph = &drift.PageHinkley{MinInstances: 30, Delta: t.cfg.PHDelta, Lambda: t.cfg.PHLambda}
	leaf.observers = nil
	leaf.mod = nil
	leaf.target = split.TargetStats{}
	t.splits++
}

func (t *Tree) sortTo(x []float64) *fnode {
	cur := t.root
	for !cur.isLeaf() {
		if routeLeft(x[cur.feature], cur.threshold) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur
}

// Predict implements model.Classifier.
func (t *Tree) Predict(x []float64) int { return t.sortTo(x).mod.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (t *Tree) Proba(x []float64, out []float64) []float64 {
	return t.sortTo(x).mod.Proba(x, out)
}

func countNodes(n *fnode) (inner, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.isLeaf() {
		return 0, 1, 0
	}
	li, ll, ld := countNodes(n.left)
	ri, rl, rd := countNodes(n.right)
	d := ld
	if rd > d {
		d = rd
	}
	return li + ri + 1, ll + rl, d + 1
}

// Complexity implements model.Classifier with model leaves (linear).
func (t *Tree) Complexity() model.Complexity {
	inner, leaves, depth := countNodes(t.root)
	return model.TreeComplexity(inner, leaves, depth, model.LeafModel, t.schema.NumFeatures, t.schema.NumClasses)
}

// freeze returns the immutable SnapNode of n's subtree, reusing the one
// cached at the last publish when no routed instance has visited n since.
func freeze(n *fnode) *model.SnapNode {
	if n.snap != nil {
		return n.snap
	}
	if n.isLeaf() {
		n.snap = model.FreezeLeaf(n.mod.Clone())
	} else {
		n.snap = model.FreezeInner(n.feature, n.threshold, freeze(n.left), freeze(n.right))
	}
	return n.snap
}

// Snapshot implements model.Snapshotter: an immutable serving copy of
// the current tree (structure plus cloned leaf models), routing
// non-finite values left like the live tree. Publishing is copy-on-write
// via the per-node freeze cache.
func (t *Tree) Snapshot() model.Snapshot {
	root := freeze(t.root)
	return &model.CowTree{
		ModelName:     t.Name(),
		Comp:          model.TreeComplexity(root.Inner, root.Leaves, root.Depth, model.LeafModel, t.schema.NumFeatures, t.schema.NumClasses),
		Root:          root,
		NonFiniteLeft: true,
	}
}

// Prunes returns the number of Page-Hinkley branch deletions so far.
func (t *Tree) Prunes() int { return t.prunes }

// StructureVersion implements model.StructureVersioner with the lifetime
// count of splits and branch deletions.
func (t *Tree) StructureVersion() uint64 { return uint64(t.splits) + uint64(t.prunes) }

// String renders a compact shape description.
func (t *Tree) String() string {
	inner, leaves, depth := countNodes(t.root)
	return fmt.Sprintf("FIMT-DD{inner: %d, leaves: %d, depth: %d, prunes: %d}", inner, leaves, depth, t.prunes)
}
