package fimtdd

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/attrobs"
	"repro/internal/drift"
	"repro/internal/glm"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/split"
	"repro/internal/stream"
)

// Checkpoint documents of the FIMT-DD classification variant: tree
// structure, per-leaf simple models and E-BST observers, per-inner-node
// Page-Hinkley detectors, and the counted RNG state (fresh leaf models
// after a prune draw random initial weights).

const treeDocVersion = 1

type nodeDoc struct {
	// Leaf state (nil/zero at inner nodes).
	Mod       *glm.ModelState
	Observers []attrobs.EBSTState
	Target    split.TargetStats
	Seen      float64
	LastEval  float64

	// Inner state.
	Feature     int
	Threshold   float64
	PH          *drift.PageHinkleyState
	Left, Right *nodeDoc

	Depth int
}

type treeDoc struct {
	Version int
	Config  Config
	Schema  stream.Schema
	Splits  int
	Prunes  int
	RNG     rng.State
	Root    *nodeDoc
}

func encodeNode(n *fnode) *nodeDoc {
	if n == nil {
		return nil
	}
	d := &nodeDoc{
		Target: n.target, Seen: n.seen, LastEval: n.lastEval,
		Feature: n.feature, Threshold: n.threshold, Depth: n.depth,
		Left: encodeNode(n.left), Right: encodeNode(n.right),
	}
	if n.mod != nil {
		st := glm.State(n.mod)
		d.Mod = &st
	}
	if n.observers != nil {
		d.Observers = make([]attrobs.EBSTState, len(n.observers))
		for j, o := range n.observers {
			d.Observers[j] = o.State()
		}
	}
	if n.ph != nil {
		st := n.ph.State()
		d.PH = &st
	}
	return d
}

func (t *Tree) decodeNode(d *nodeDoc) (*fnode, error) {
	n := &fnode{
		target: d.Target, seen: d.Seen, lastEval: d.LastEval,
		feature: d.Feature, threshold: d.Threshold, depth: d.Depth,
	}
	if (d.Left == nil) != (d.Right == nil) {
		return nil, fmt.Errorf("fimtdd: non-binary node in checkpoint")
	}
	if d.Left == nil {
		// Leaf: model and observers are mandatory.
		if d.Mod == nil {
			return nil, fmt.Errorf("fimtdd: checkpoint leaf has no simple model")
		}
		mod, err := glm.FromState(*d.Mod)
		if err != nil {
			return nil, fmt.Errorf("fimtdd: checkpoint leaf model: %w", err)
		}
		if mod.NumFeatures() != t.schema.NumFeatures || mod.NumClasses() != t.schema.NumClasses {
			return nil, fmt.Errorf("fimtdd: checkpoint leaf model shape (m=%d c=%d) does not match schema (m=%d c=%d)",
				mod.NumFeatures(), mod.NumClasses(), t.schema.NumFeatures, t.schema.NumClasses)
		}
		n.mod = mod
		if len(d.Observers) != t.schema.NumFeatures {
			return nil, fmt.Errorf("fimtdd: checkpoint leaf has %d observers, schema wants %d", len(d.Observers), t.schema.NumFeatures)
		}
		n.observers = make([]*attrobs.EBST, len(d.Observers))
		for j := range d.Observers {
			o, err := attrobs.EBSTFromState(d.Observers[j])
			if err != nil {
				return nil, fmt.Errorf("fimtdd: checkpoint observer %d: %w", j, err)
			}
			n.observers[j] = o
		}
		return n, nil
	}
	// Inner node: detector mandatory, children recursed.
	if d.PH == nil {
		return nil, fmt.Errorf("fimtdd: checkpoint inner node has no Page-Hinkley detector")
	}
	n.ph = drift.PageHinkleyFromState(*d.PH)
	left, err := t.decodeNode(d.Left)
	if err != nil {
		return nil, err
	}
	right, err := t.decodeNode(d.Right)
	if err != nil {
		return nil, err
	}
	n.left, n.right = left, right
	return n, nil
}

// SaveState implements model.Checkpointer.
func (t *Tree) SaveState(w io.Writer) error {
	doc := treeDoc{
		Version: treeDocVersion,
		Config:  t.cfg,
		Schema:  t.schema,
		Splits:  t.splits,
		Prunes:  t.prunes,
		RNG:     t.src.State(),
		Root:    encodeNode(t.root),
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("fimtdd: save FIMT-DD: %w", err)
	}
	return nil
}

// CheckpointParams implements registry.ParamsReporter.
func (t *Tree) CheckpointParams() registry.Params {
	return registry.Params{
		Seed: t.cfg.Seed, LearningRate: t.cfg.LearningRate, Delta: t.cfg.Delta,
		Tau: t.cfg.Tau, GracePeriod: t.cfg.GracePeriod,
		PHDelta: t.cfg.PHDelta, PHLambda: t.cfg.PHLambda, MaxDepth: t.cfg.MaxDepth,
	}
}

// init registers the checkpoint loader next to the construction factory
// (register.go).
func init() {
	registry.RegisterLoader("FIMT-DD", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc treeDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("fimtdd: decode checkpoint: %w", err)
		}
		if doc.Version != treeDocVersion {
			return nil, fmt.Errorf("fimtdd: unsupported checkpoint version %d (this build reads %d)", doc.Version, treeDocVersion)
		}
		if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
			return nil, fmt.Errorf("fimtdd: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
				doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
		}
		if doc.Root == nil {
			return nil, fmt.Errorf("fimtdd: checkpoint has no root")
		}
		t := &Tree{
			cfg:    doc.Config.withDefaults(),
			schema: doc.Schema,
			splits: doc.Splits,
			prunes: doc.Prunes,
		}
		t.rng, t.src = rng.Restore(doc.RNG)
		root, err := t.decodeNode(doc.Root)
		if err != nil {
			return nil, err
		}
		t.root = root
		return t, nil
	})
}
