package fimtdd

import (
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// init registers the FIMT-DD classification variant under its paper name.
func init() {
	registry.Register("FIMT-DD", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return New(Config{
			LearningRate: p.LearningRate,
			Delta:        p.Delta,
			Tau:          p.Tau,
			GracePeriod:  p.GracePeriod,
			PHDelta:      p.PHDelta,
			PHLambda:     p.PHLambda,
			MaxDepth:     p.MaxDepth,
			Seed:         p.Seed,
		}, schema), nil
	})
}
