package nbayes

import (
	"math"
	"math/rand"
	"testing"
)

func TestLearnsSeparatedGaussians(t *testing.T) {
	nb := New(2, 3)
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}}
	for i := 0; i < 3000; i++ {
		k := rng.Intn(3)
		x := []float64{
			centers[k][0] + 0.05*rng.NormFloat64(),
			centers[k][1] + 0.05*rng.NormFloat64(),
		}
		nb.Observe(x, k, 1)
	}
	correct := 0
	trials := 500
	for i := 0; i < trials; i++ {
		k := rng.Intn(3)
		x := []float64{
			centers[k][0] + 0.05*rng.NormFloat64(),
			centers[k][1] + 0.05*rng.NormFloat64(),
		}
		if nb.Predict(x) == k {
			correct++
		}
	}
	if acc := float64(correct) / float64(trials); acc < 0.95 {
		t.Fatalf("accuracy %v on well-separated clusters", acc)
	}
}

func TestPriorsMatter(t *testing.T) {
	nb := New(1, 2)
	rng := rand.New(rand.NewSource(2))
	// Identical likelihoods; class 0 has 9x the prior mass.
	for i := 0; i < 9000; i++ {
		nb.Observe([]float64{0.5 + 0.1*rng.NormFloat64()}, 0, 1)
	}
	for i := 0; i < 1000; i++ {
		nb.Observe([]float64{0.5 + 0.1*rng.NormFloat64()}, 1, 1)
	}
	if nb.Predict([]float64{0.5}) != 0 {
		t.Fatal("prior-dominant class not predicted")
	}
	p := nb.Proba([]float64{0.5}, nil)
	if p[0] < 0.7 {
		t.Fatalf("posterior %v should favour class 0 strongly", p)
	}
}

func TestProbaIsDistribution(t *testing.T) {
	nb := New(3, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		nb.Observe([]float64{rng.Float64(), rng.Float64(), rng.Float64()}, rng.Intn(4), 1)
	}
	p := nb.Proba([]float64{0.5, 0.5, 0.5}, nil)
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("bad probability %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestEmptyModel(t *testing.T) {
	nb := New(2, 3)
	if nb.Predict([]float64{0.5, 0.5}) != 0 {
		t.Fatal("empty model should predict 0")
	}
	p := nb.Proba([]float64{0.5, 0.5}, nil)
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("empty model proba %v, want uniform", p)
		}
	}
}

func TestIgnoresBadInput(t *testing.T) {
	nb := New(2, 2)
	nb.Observe([]float64{0.5, 0.5}, -1, 1)
	nb.Observe([]float64{0.5, 0.5}, 5, 1)
	nb.Observe([]float64{0.5, 0.5}, 0, -2)
	if nb.Total() != 0 {
		t.Fatal("bad observations recorded")
	}
	// NaN features are skipped per-feature, not fatally.
	nb.Observe([]float64{math.NaN(), 0.5}, 0, 1)
	if nb.Total() != 1 {
		t.Fatal("NaN row dropped entirely")
	}
	if got := nb.Predict([]float64{math.NaN(), 0.5}); got != 0 {
		t.Fatalf("prediction with NaN feature = %d", got)
	}
}

func TestUnseenClassGetsZeroPosterior(t *testing.T) {
	nb := New(1, 3)
	nb.Observe([]float64{0.5}, 0, 1)
	lp := nb.LogPosteriors([]float64{0.5}, nil)
	if !math.IsInf(lp[1], -1) || !math.IsInf(lp[2], -1) {
		t.Fatalf("unseen classes should be -Inf: %v", lp)
	}
}
