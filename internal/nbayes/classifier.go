package nbayes

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Classifier adapts the Gaussian Naive Bayes model to the repository-wide
// classifier contract, making it available as a stand-alone structureless
// baseline through the registry (the paper uses it only inside VFDT (NBA)
// leaves).
type Classifier struct {
	m      *Model
	schema stream.Schema
}

// NewClassifier returns an empty stand-alone Naive Bayes classifier.
func NewClassifier(schema stream.Schema) *Classifier {
	return &Classifier{m: New(schema.NumFeatures, schema.NumClasses), schema: schema}
}

// Name implements model.Classifier.
func (c *Classifier) Name() string { return "Naive Bayes" }

// Learn implements model.Classifier.
func (c *Classifier) Learn(b stream.Batch) {
	for i, x := range b.X {
		c.m.Observe(x, b.Y[i], 1)
	}
}

// Predict implements model.Classifier.
func (c *Classifier) Predict(x []float64) int { return c.m.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (c *Classifier) Proba(x []float64, out []float64) []float64 { return c.m.Proba(x, out) }

// Complexity implements model.Classifier: a single model leaf under the
// paper's counting (no splits to report).
func (c *Classifier) Complexity() model.Complexity {
	return model.TreeComplexity(0, 1, 0, model.LeafModel, c.schema.NumFeatures, c.schema.NumClasses)
}

// Snapshot implements model.Snapshotter with a cloned single-leaf view.
func (c *Classifier) Snapshot() model.Snapshot {
	return model.LeafSnapshot(c.Name(), c.Complexity(), c.m.Clone())
}

// Schema returns the stream schema the classifier was built for.
func (c *Classifier) Schema() stream.Schema { return c.schema }

// classifierDoc is the Naive Bayes baseline's checkpoint payload.
type classifierDoc struct {
	Version int
	Schema  stream.Schema
	Model   ModelState
}

const classifierDocVersion = 1

// SaveState implements model.Checkpointer.
func (c *Classifier) SaveState(w io.Writer) error {
	doc := classifierDoc{Version: classifierDocVersion, Schema: c.schema, Model: c.m.State()}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("nbayes: save Naive Bayes baseline: %w", err)
	}
	return nil
}

// init registers the stand-alone baseline and its checkpoint loader.
func init() {
	registry.Register("Naive Bayes", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewClassifier(schema), nil
	})
	registry.RegisterLoader("Naive Bayes", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc classifierDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("nbayes: decode checkpoint: %w", err)
		}
		if doc.Version != classifierDocVersion {
			return nil, fmt.Errorf("nbayes: unsupported checkpoint version %d (this build reads %d)", doc.Version, classifierDocVersion)
		}
		if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
			return nil, fmt.Errorf("nbayes: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
				doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
		}
		if len(doc.Model.Observers) != doc.Schema.NumFeatures || len(doc.Model.ClassCounts) != doc.Schema.NumClasses {
			return nil, fmt.Errorf("nbayes: checkpoint model shape (%d observers, %d classes) does not match schema",
				len(doc.Model.Observers), len(doc.Model.ClassCounts))
		}
		m, err := FromState(doc.Model)
		if err != nil {
			return nil, err
		}
		return &Classifier{m: m, schema: doc.Schema}, nil
	})
}
