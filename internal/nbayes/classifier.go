package nbayes

import (
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Classifier adapts the Gaussian Naive Bayes model to the repository-wide
// classifier contract, making it available as a stand-alone structureless
// baseline through the registry (the paper uses it only inside VFDT (NBA)
// leaves).
type Classifier struct {
	m      *Model
	schema stream.Schema
}

// NewClassifier returns an empty stand-alone Naive Bayes classifier.
func NewClassifier(schema stream.Schema) *Classifier {
	return &Classifier{m: New(schema.NumFeatures, schema.NumClasses), schema: schema}
}

// Name implements model.Classifier.
func (c *Classifier) Name() string { return "Naive Bayes" }

// Learn implements model.Classifier.
func (c *Classifier) Learn(b stream.Batch) {
	for i, x := range b.X {
		c.m.Observe(x, b.Y[i], 1)
	}
}

// Predict implements model.Classifier.
func (c *Classifier) Predict(x []float64) int { return c.m.Predict(x) }

// Proba implements model.ProbabilisticClassifier.
func (c *Classifier) Proba(x []float64, out []float64) []float64 { return c.m.Proba(x, out) }

// Complexity implements model.Classifier: a single model leaf under the
// paper's counting (no splits to report).
func (c *Classifier) Complexity() model.Complexity {
	return model.TreeComplexity(0, 1, 0, model.LeafModel, c.schema.NumFeatures, c.schema.NumClasses)
}

// Snapshot implements model.Snapshotter with a cloned single-leaf view.
func (c *Classifier) Snapshot() model.Snapshot {
	return model.LeafSnapshot(c.Name(), c.Complexity(), c.m.Clone())
}

// init registers the stand-alone baseline.
func init() {
	registry.Register("Naive Bayes", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewClassifier(schema), nil
	})
}
