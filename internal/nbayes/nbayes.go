// Package nbayes implements the Gaussian Naive Bayes model used in the
// leaves of the "VFDT (NBA)" baseline [31]: class priors from counts and
// per-class Gaussian likelihoods per numeric feature.
package nbayes

import (
	"math"

	"repro/internal/attrobs"
	"repro/internal/linalg"
)

// Model is an incrementally trained Gaussian Naive Bayes classifier.
type Model struct {
	classCounts []float64
	observers   []*attrobs.Gaussian
	total       float64
}

// New returns an empty model over m features and c classes.
func New(m, c int) *Model {
	obs := make([]*attrobs.Gaussian, m)
	for j := range obs {
		obs[j] = attrobs.NewGaussian(c, 10)
	}
	return &Model{classCounts: make([]float64, c), observers: obs}
}

// Clone returns an independent deep copy, used to freeze leaf models
// into serving snapshots.
func (nb *Model) Clone() *Model {
	c := &Model{
		classCounts: append([]float64(nil), nb.classCounts...),
		observers:   make([]*attrobs.Gaussian, len(nb.observers)),
		total:       nb.total,
	}
	for j, o := range nb.observers {
		c.observers[j] = o.Clone()
	}
	return c
}

// Observe incorporates a labelled instance with the given weight.
func (nb *Model) Observe(x []float64, y int, w float64) {
	if y < 0 || y >= len(nb.classCounts) || w <= 0 {
		return
	}
	nb.classCounts[y] += w
	nb.total += w
	for j, v := range x {
		nb.observers[j].Observe(v, y, w)
	}
}

// LogPosteriors writes unnormalised class log-posteriors into out.
func (nb *Model) LogPosteriors(x []float64, out []float64) []float64 {
	c := len(nb.classCounts)
	if out == nil {
		out = make([]float64, c)
	}
	for k := 0; k < c; k++ {
		if nb.classCounts[k] == 0 {
			out[k] = math.Inf(-1)
			continue
		}
		lp := math.Log(nb.classCounts[k] / (nb.total + 1e-12))
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lp += math.Log(nb.observers[j].Pdf(v, k) + 1e-12)
		}
		out[k] = lp
	}
	return out
}

// Predict returns the class with the highest posterior; with no
// observations it returns 0. It must stay re-entrant and
// allocation-free — snapshot scorers serve it from any number of
// concurrent readers — so the posteriors go into a stack buffer (heap
// only beyond 16 classes), never shared scratch.
func (nb *Model) Predict(x []float64) int {
	if nb.total == 0 {
		return 0
	}
	var buf [16]float64
	var out []float64
	if c := len(nb.classCounts); c > len(buf) {
		out = make([]float64, c)
	} else {
		out = buf[:c]
	}
	return linalg.ArgMax(nb.LogPosteriors(x, out))
}

// Proba writes normalised class probabilities into out.
func (nb *Model) Proba(x []float64, out []float64) []float64 {
	lp := nb.LogPosteriors(x, out)
	lse := linalg.LogSumExp(lp)
	if math.IsInf(lse, -1) {
		for k := range lp {
			lp[k] = 1 / float64(len(lp))
		}
		return lp
	}
	for k := range lp {
		lp[k] = math.Exp(lp[k] - lse)
	}
	return lp
}

// Total returns the observed weight.
func (nb *Model) Total() float64 { return nb.total }
