package nbayes

import (
	"fmt"

	"repro/internal/attrobs"
)

// ModelState is the serialisable state of a Gaussian Naive Bayes model.
type ModelState struct {
	ClassCounts []float64
	Observers   []attrobs.GaussianState
	Total       float64
}

// State exports the model for checkpointing.
func (nb *Model) State() ModelState {
	s := ModelState{
		ClassCounts: append([]float64(nil), nb.classCounts...),
		Observers:   make([]attrobs.GaussianState, len(nb.observers)),
		Total:       nb.total,
	}
	for j, o := range nb.observers {
		s.Observers[j] = o.State()
	}
	return s
}

// FromState reconstructs a model from its exported state.
func FromState(s ModelState) (*Model, error) {
	if len(s.ClassCounts) < 2 {
		return nil, fmt.Errorf("nbayes: model state has %d classes", len(s.ClassCounts))
	}
	m := &Model{
		classCounts: append([]float64(nil), s.ClassCounts...),
		observers:   make([]*attrobs.Gaussian, len(s.Observers)),
		total:       s.Total,
	}
	for j := range s.Observers {
		o, err := attrobs.GaussianFromState(s.Observers[j])
		if err != nil {
			return nil, fmt.Errorf("nbayes: observer %d: %w", j, err)
		}
		m.observers[j] = o
	}
	return m, nil
}
