// Package hatada implements the adaptive Hoeffding tree ("HT-Ada") of
// Bifet & Gavaldà [13]: a VFDT in which every node monitors its error with
// an ADWIN detector, grows an alternate subtree when change is detected,
// and swaps the alternate in once it is measurably better. Per the paper's
// configuration (Section VI-C) leaves vote by majority class and no
// bootstrap sampling is used in the leaves.
package hatada

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/drift"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Config holds the HT-Ada hyperparameters: the embedded Hoeffding tree
// configuration plus the ADWIN confidence and the alternate-tree
// management cadence.
type Config struct {
	// Tree configures the underlying Hoeffding tree machinery (grace
	// period, delta, tau, criterion, bins). LeafMode is forced to
	// MajorityClass to match the paper's setup.
	Tree hoeffding.Config
	// ADWINDelta is the confidence of the per-node error monitors
	// (default 0.002).
	ADWINDelta float64
	// CompareEvery is how many instances pass a node between
	// alternate-vs-main comparisons (default 200).
	CompareEvery int
	// MinCompareWidth is the minimum ADWIN window width on both sides
	// before a swap or discard decision is allowed (default 300).
	MinCompareWidth int
}

func (c Config) withDefaults() Config {
	c.Tree.LeafMode = hoeffding.MajorityClass
	c.Tree = c.Tree.WithDefaults()
	if c.ADWINDelta <= 0 {
		c.ADWINDelta = 0.002
	}
	if c.CompareEvery <= 0 {
		c.CompareEvery = 200
	}
	if c.MinCompareWidth <= 0 {
		c.MinCompareWidth = 300
	}
	return c
}

// anode is a node of the adaptive tree. Leaves carry statistics; every
// node lazily owns an ADWIN error monitor; inner nodes may own an
// alternate subtree.
type anode struct {
	stats       *hoeffding.NodeStats
	feature     int
	threshold   float64
	kind        model.SplitKind
	mask        uint64
	left, right *anode
	depth       int

	errMon    *drift.ADWIN
	alt       *anode
	altErrMon *drift.ADWIN
	altTicks  int

	// snap caches the immutable SnapNode that froze this subtree at the
	// last publish; the learn walk clears it along its path so Snapshot()
	// re-freezes only what changed (copy-on-write). Alternate subtrees
	// are never frozen — a promotion rewires n in place, and n itself is
	// always on the invalidated path.
	snap *model.SnapNode
}

func (n *anode) isLeaf() bool { return n.left == nil }

// sortTo routes x to its leaf; non-finite values route left via the
// shared model.RouteSplit predicate, consistent with learn, predict and
// snapshot paths.
func (n *anode) sortTo(x []float64) *anode {
	cur := n
	for !cur.isLeaf() {
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur
}

// Tree is the HT-Ada classifier.
type Tree struct {
	cfg    Config
	schema stream.Schema
	root   *anode
	rng    *rand.Rand
	src    *rng.Source        // counted source behind rng, for checkpointing
	sc     *hoeffding.Scratch // learn-path workspace shared by all nodes

	splits int // leaf splits (main tree and alternates)
	prunes int // alternate promotions (subtree replacements)
}

// New returns an empty adaptive Hoeffding tree.
func New(cfg Config, schema stream.Schema) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg, schema: schema, sc: hoeffding.NewScratch(schema)}
	t.rng, t.src = rng.New(cfg.Tree.Seed + 2)
	t.root = t.newLeaf(0)
	return t
}

// Schema returns the stream schema the tree was built for.
func (t *Tree) Schema() stream.Schema { return t.schema }

func (t *Tree) newLeaf(depth int) *anode {
	return &anode{stats: hoeffding.NewNodeStats(&t.cfg.Tree, t.schema, t.rng, t.sc), depth: depth}
}

// Name implements model.Classifier.
func (t *Tree) Name() string { return "HT-Ada" }

// Learn implements model.Classifier.
func (t *Tree) Learn(b stream.Batch) {
	for i, x := range b.X {
		t.learnOne(x, b.Y[i])
	}
}

// learnOne routes the instance down the main tree, updates every node's
// error monitor with the tree's error on this instance, grows/updates
// alternates, and finally trains the leaf.
func (t *Tree) learnOne(x []float64, y int) {
	leaf := t.root.sortTo(x)
	mainErr := 0.0
	if leaf.stats.Predict(x) != y {
		mainErr = 1
	}

	cur := t.root
	for {
		cur.snap = nil // leaf training, splits and promotions all happen on this path
		t.monitorNode(cur, x, y, mainErr)
		if cur.isLeaf() {
			break
		}
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}

	t.trainLeaf(leaf, x, y)
}

// monitorNode feeds the error monitor of one node on the path, starts an
// alternate when change is detected, and manages an existing alternate.
func (t *Tree) monitorNode(n *anode, x []float64, y int, mainErr float64) {
	if n.errMon == nil {
		n.errMon = drift.NewADWIN(t.cfg.ADWINDelta)
	}
	changed := n.errMon.Add(mainErr)
	if changed && !n.isLeaf() && n.alt == nil {
		n.alt = t.newLeaf(n.depth)
		n.altErrMon = drift.NewADWIN(t.cfg.ADWINDelta)
		n.altTicks = 0
	}
	if n.alt == nil {
		return
	}

	altLeaf := n.alt.sortTo(x)
	altErr := 0.0
	if altLeaf.stats.Predict(x) != y {
		altErr = 1
	}
	n.altErrMon.Add(altErr)
	t.trainLeaf(altLeaf, x, y)
	n.altTicks++

	if n.altTicks%t.cfg.CompareEvery != 0 {
		return
	}
	wMain, wAlt := n.errMon.Width(), n.altErrMon.Width()
	if wMain < t.cfg.MinCompareWidth || wAlt < t.cfg.MinCompareWidth {
		return
	}
	w := wMain
	if wAlt < w {
		w = wAlt
	}
	// 95%-confidence Hoeffding margin on the error-rate difference.
	bound := math.Sqrt(math.Log(20) / (2 * float64(w)))
	switch {
	case n.errMon.Mean()-n.altErrMon.Mean() > bound:
		// Alternate wins: promote it in place of the current subtree.
		n.feature, n.threshold = n.alt.feature, n.alt.threshold
		n.kind, n.mask = n.alt.kind, n.alt.mask
		n.left, n.right = n.alt.left, n.alt.right
		n.stats = n.alt.stats
		n.errMon = n.altErrMon
		n.alt, n.altErrMon, n.altTicks = nil, nil, 0
		t.prunes++
	case n.altErrMon.Mean()-n.errMon.Mean() > bound:
		// Alternate is measurably worse: discard it.
		n.alt, n.altErrMon, n.altTicks = nil, nil, 0
	}
}

// trainLeaf updates a leaf's statistics and applies the VFDT split rule.
func (t *Tree) trainLeaf(leaf *anode, x []float64, y int) {
	leaf.stats.Observe(x, y, 1)
	if !leaf.stats.ShouldAttempt() {
		return
	}
	if t.cfg.Tree.MaxDepth > 0 && leaf.depth >= t.cfg.Tree.MaxDepth {
		return
	}
	cand, ok := leaf.stats.DecideSplit()
	if !ok {
		return
	}
	leaf.feature, leaf.threshold = cand.Feature, cand.Threshold
	leaf.kind, leaf.mask = cand.Kind, cand.Mask
	leaf.left = t.newLeaf(leaf.depth + 1)
	leaf.right = t.newLeaf(leaf.depth + 1)
	if len(cand.Post) == 2 {
		leaf.left.stats.SeedChild(cand.Post[0])
		leaf.right.stats.SeedChild(cand.Post[1])
	}
	t.splits++
	// The node keeps its statistics: promoted alternates may turn it back
	// into a leaf later, and the error monitor lives on regardless.
}

// Predict implements model.Classifier using the main tree only.
func (t *Tree) Predict(x []float64) int {
	return t.root.sortTo(x).stats.Predict(x)
}

// Proba implements model.ProbabilisticClassifier.
func (t *Tree) Proba(x []float64, out []float64) []float64 {
	return t.root.sortTo(x).stats.Proba(x, out)
}

func countNodes(n *anode) (inner, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.isLeaf() {
		return 0, 1, 0
	}
	li, ll, ld := countNodes(n.left)
	ri, rl, rd := countNodes(n.right)
	d := ld
	if rd > d {
		d = rd
	}
	return li + ri + 1, ll + rl, d + 1
}

// Complexity implements model.Classifier. HT-Ada has majority-class
// leaves, so only inner nodes count as splits; alternate subtrees are
// scaffolding and are not counted, matching the paper's "number of splits"
// of the deployed model.
func (t *Tree) Complexity() model.Complexity {
	inner, leaves, depth := countNodes(t.root)
	return model.TreeComplexity(inner, leaves, depth, model.LeafMajority, t.schema.NumFeatures, t.schema.NumClasses)
}

// freeze returns the immutable SnapNode of n's subtree, reusing the one
// cached at the last publish when no learn walk has visited n since.
func freeze(n *anode) *model.SnapNode {
	if n.snap != nil {
		return n.snap
	}
	if n.isLeaf() {
		n.snap = model.FreezeLeaf(n.stats.ServingClone())
	} else {
		n.snap = model.FreezeInnerSplit(n.feature, n.kind, n.threshold, n.mask, freeze(n.left), freeze(n.right))
	}
	return n.snap
}

// Snapshot implements model.Snapshotter: an immutable serving copy of
// the deployed main tree (alternate subtrees are growth scaffolding and
// never serve predictions, so they are not captured). Publishing is
// copy-on-write via the per-node freeze cache.
func (t *Tree) Snapshot() model.Snapshot {
	root := freeze(t.root)
	return &model.CowTree{
		ModelName:     t.Name(),
		Comp:          model.TreeComplexity(root.Inner, root.Leaves, root.Depth, model.LeafMajority, t.schema.NumFeatures, t.schema.NumClasses),
		Root:          root,
		NonFiniteLeft: true,
	}
}

// Promotions returns how many alternate subtrees replaced their main
// subtree so far.
func (t *Tree) Promotions() int { return t.prunes }

// StructureVersion implements model.StructureVersioner with the
// lifetime count of leaf splits and alternate promotions.
func (t *Tree) StructureVersion() uint64 { return uint64(t.splits) + uint64(t.prunes) }

// String renders a compact shape description.
func (t *Tree) String() string {
	inner, leaves, depth := countNodes(t.root)
	return fmt.Sprintf("HT-Ada{inner: %d, leaves: %d, depth: %d, promotions: %d}", inner, leaves, depth, t.prunes)
}
