package hatada

import (
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// init registers the adaptive Hoeffding tree under its paper table name.
func init() {
	registry.Register("HT-Ada", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return New(Config{
			Tree: hoeffding.Config{
				GracePeriod: p.GracePeriod,
				Delta:       p.Delta,
				Tau:         p.Tau,
				Bins:        p.Bins,
				MaxDepth:    p.MaxDepth,
				Seed:        p.Seed,
			},
			ADWINDelta: p.ADWINDelta,
		}, schema), nil
	})
}
