package hatada

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

// conceptBatch labels y=1 iff x0 > 0.5, optionally inverted.
func conceptBatch(rng *rand.Rand, n int, inverted bool) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		if inverted {
			y = 1 - y
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(t *Tree, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if t.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestLearnsStationaryConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(Config{}, schema2())
	for i := 0; i < 60; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, false)); acc < 0.9 {
		t.Fatalf("accuracy %v on a stationary concept", acc)
	}
}

func TestAdaptsToAbruptFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{}, schema2())
	for i := 0; i < 60; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	// Flip the concept entirely; the tree must recover.
	for i := 0; i < 120; i++ {
		tree.Learn(conceptBatch(rng, 200, true))
	}
	if acc := accuracy(tree, conceptBatch(rng, 1000, true)); acc < 0.8 {
		t.Fatalf("post-drift accuracy %v — no adaptation", acc)
	}
}

func TestComplexityMajorityCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := New(Config{}, schema2())
	for i := 0; i < 60; i++ {
		tree.Learn(conceptBatch(rng, 200, false))
	}
	comp := tree.Complexity()
	if comp.Splits != float64(comp.Inner) {
		t.Fatalf("HT-Ada splits %v must equal inner count %d (MC leaves)", comp.Splits, comp.Inner)
	}
}

func TestProbaIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tree := New(Config{}, schema2())
	tree.Learn(conceptBatch(rng, 500, false))
	p := tree.Proba([]float64{0.5, 0.5}, nil)
	if len(p) != 2 || p[0]+p[1] < 0.999 || p[0]+p[1] > 1.001 {
		t.Fatalf("proba %v", p)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ADWINDelta != 0.002 || cfg.CompareEvery != 200 || cfg.MinCompareWidth != 300 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.Tree.Criterion == nil {
		t.Fatal("inner tree config not defaulted")
	}
}

var _ model.Classifier = (*Tree)(nil)
