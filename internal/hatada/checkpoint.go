package hatada

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/drift"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Checkpoint documents of the adaptive Hoeffding tree: the main tree,
// every node's lazily created ADWIN error monitor, and any in-progress
// alternate subtrees with their comparison state — so a restored tree
// resumes mid-alternate exactly where the saved one stopped. Node
// statistics reuse the shared hoeffding.NodeStatsDoc codec.

const treeDocVersion = 1

type nodeDoc struct {
	// Stats is non-nil wherever the live node keeps statistics (leaves,
	// and former leaves that split — HT-Ada nodes keep observing).
	Stats     *hoeffding.NodeStatsDoc
	Feature   int
	Threshold float64
	Kind      uint8
	Mask      uint64
	Depth     int

	ErrMon      *drift.ADWINState
	Alt         *nodeDoc
	AltErrMon   *drift.ADWINState
	AltTicks    int
	Left, Right *nodeDoc
}

type treeDoc struct {
	Version int
	Config  hoeffding.ConfigDoc
	ADWIN   float64 // ADWINDelta
	Compare struct {
		Every, MinWidth int
	}
	Schema stream.Schema
	Splits int
	Prunes int
	RNG    rng.State
	Root   *nodeDoc
}

func encodeNode(n *anode) *nodeDoc {
	if n == nil {
		return nil
	}
	d := &nodeDoc{
		Feature: n.feature, Threshold: n.threshold, Depth: n.depth,
		Kind: uint8(n.kind), Mask: n.mask,
		Alt: encodeNode(n.alt), AltTicks: n.altTicks,
		Left: encodeNode(n.left), Right: encodeNode(n.right),
	}
	if n.stats != nil {
		d.Stats = n.stats.Doc()
	}
	if n.errMon != nil {
		st := n.errMon.State()
		d.ErrMon = &st
	}
	if n.altErrMon != nil {
		st := n.altErrMon.State()
		d.AltErrMon = &st
	}
	return d
}

func (t *Tree) decodeNode(d *nodeDoc) (*anode, error) {
	if !model.SplitKind(d.Kind).Valid() {
		return nil, fmt.Errorf("hatada: checkpoint node has unknown split kind %d", d.Kind)
	}
	n := &anode{feature: d.Feature, threshold: d.Threshold, kind: model.SplitKind(d.Kind), mask: d.Mask, depth: d.Depth, altTicks: d.AltTicks}
	if d.Stats != nil {
		stats, err := hoeffding.NodeStatsFromDoc(&t.cfg.Tree, t.schema, t.sc, d.Stats)
		if err != nil {
			return nil, err
		}
		n.stats = stats
	}
	if d.ErrMon != nil {
		mon, err := drift.ADWINFromState(*d.ErrMon)
		if err != nil {
			return nil, fmt.Errorf("hatada: checkpoint error monitor: %w", err)
		}
		n.errMon = mon
	}
	if d.AltErrMon != nil {
		mon, err := drift.ADWINFromState(*d.AltErrMon)
		if err != nil {
			return nil, fmt.Errorf("hatada: checkpoint alternate monitor: %w", err)
		}
		n.altErrMon = mon
	}
	if d.Alt != nil {
		alt, err := t.decodeNode(d.Alt)
		if err != nil {
			return nil, err
		}
		n.alt = alt
	}
	if (d.Left == nil) != (d.Right == nil) {
		return nil, fmt.Errorf("hatada: non-binary node in checkpoint")
	}
	if d.Left != nil {
		left, err := t.decodeNode(d.Left)
		if err != nil {
			return nil, err
		}
		right, err := t.decodeNode(d.Right)
		if err != nil {
			return nil, err
		}
		n.left, n.right = left, right
	} else if d.Stats == nil {
		return nil, fmt.Errorf("hatada: checkpoint leaf has no statistics")
	}
	return n, nil
}

// SaveState implements model.Checkpointer.
func (t *Tree) SaveState(w io.Writer) error {
	doc := treeDoc{
		Version: treeDocVersion,
		Config:  t.cfg.Tree.Doc(),
		ADWIN:   t.cfg.ADWINDelta,
		Schema:  t.schema,
		Splits:  t.splits,
		Prunes:  t.prunes,
		RNG:     t.src.State(),
		Root:    encodeNode(t.root),
	}
	doc.Compare.Every = t.cfg.CompareEvery
	doc.Compare.MinWidth = t.cfg.MinCompareWidth
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("hatada: save HT-Ada: %w", err)
	}
	return nil
}

// CheckpointParams implements registry.ParamsReporter.
func (t *Tree) CheckpointParams() registry.Params {
	return registry.Params{
		Seed: t.cfg.Tree.Seed, GracePeriod: t.cfg.Tree.GracePeriod,
		Delta: t.cfg.Tree.Delta, Tau: t.cfg.Tree.Tau, Bins: t.cfg.Tree.Bins,
		MaxDepth: t.cfg.Tree.MaxDepth, ADWINDelta: t.cfg.ADWINDelta,
	}
}

// init registers the checkpoint loader next to the construction factory
// (register.go).
func init() {
	registry.RegisterLoader("HT-Ada", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc treeDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("hatada: decode checkpoint: %w", err)
		}
		if doc.Version != treeDocVersion {
			return nil, fmt.Errorf("hatada: unsupported checkpoint version %d (this build reads %d)", doc.Version, treeDocVersion)
		}
		if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
			return nil, fmt.Errorf("hatada: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
				doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
		}
		if !doc.Schema.SameKinds(schema) {
			return nil, fmt.Errorf("hatada: payload schema feature kinds do not match envelope")
		}
		if doc.Root == nil {
			return nil, fmt.Errorf("hatada: checkpoint has no root")
		}
		treeCfg, err := hoeffding.ConfigFromDoc(doc.Config)
		if err != nil {
			return nil, err
		}
		cfg := Config{
			Tree: treeCfg, ADWINDelta: doc.ADWIN,
			CompareEvery: doc.Compare.Every, MinCompareWidth: doc.Compare.MinWidth,
		}.withDefaults()
		t := &Tree{cfg: cfg, schema: doc.Schema, splits: doc.Splits, prunes: doc.Prunes, sc: hoeffding.NewScratch(doc.Schema)}
		t.rng, t.src = rng.Restore(doc.RNG)
		root, err := t.decodeNode(doc.Root)
		if err != nil {
			return nil, err
		}
		t.root = root
		return t, nil
	})
}
