package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/persist"
)

// parseChain decodes a delta-chain response body into its deltas.
func parseChain(t *testing.T, raw []byte) []*persist.Delta {
	t.Helper()
	br := bytes.NewReader(raw)
	var ds []*persist.Delta
	for br.Len() > 0 {
		d, err := persist.ReadDelta(br)
		if err != nil {
			t.Fatalf("delta %d of chain: %v", len(ds), err)
		}
		ds = append(ds, d)
	}
	return ds
}

// A ?since= fetch between two captured versions answers with a delta
// chain whose application to the old envelope is byte-identical to the
// full envelope at the head version.
func TestEnvelopeSinceServesDeltaChain(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	srv, ts := newTestServer(t, trainer, Config{})

	raw0, v0, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	v1 := advanceVersion(t, trainer, v0, 31)
	rawFull, vFull, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if vFull != v1 {
		t.Fatalf("full fetch at version %d, trainer is at %d", vFull, v1)
	}

	chain, vHead, isDelta, err := FetchSince(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0, v0)
	if err != nil {
		t.Fatal(err)
	}
	if !isDelta {
		t.Fatalf("?since=%d answered with a full envelope despite history covering it", v0)
	}
	if vHead != v1 {
		t.Fatalf("chain head version %d, want %d", vHead, v1)
	}
	got, err := persist.ApplyChain(raw0, parseChain(t, chain)...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rawFull) {
		t.Fatal("base+chain is not byte-identical to the full envelope")
	}
	if len(chain) >= len(rawFull) {
		t.Fatalf("delta chain (%d bytes) is no smaller than the full envelope (%d bytes)", len(chain), len(rawFull))
	}
	if srv.Status().DeltasServed == 0 {
		t.Fatal("statusz does not count the served delta")
	}

	// The raw HTTP response carries the protocol headers.
	resp, err := http.Get(ts.URL + "/v1/envelope?since=" + strconv.FormatUint(v0, 10))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeDeltaChain {
		t.Fatalf("content type %q", ct)
	}
	if base := resp.Header.Get(DeltaBaseHeader); base != strconv.FormatUint(v0, 10) {
		t.Fatalf("%s = %q, want %d", DeltaBaseHeader, base, v0)
	}
	if n, err := strconv.Atoi(resp.Header.Get(DeltaCountHeader)); err != nil || n < 1 {
		t.Fatalf("%s = %q", DeltaCountHeader, resp.Header.Get(DeltaCountHeader))
	}
}

// A base that has been compacted out of the bounded history answers
// with a full envelope, not an error.
func TestEnvelopeSinceCompactedServesFull(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, trainer, Config{EnvelopeHistory: 2})

	_, v0, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Capture three more versions: the two-entry ring evicts v0.
	cur := v0
	for i := 0; i < 3; i++ {
		cur = advanceVersion(t, trainer, cur, int64(40+i))
		if _, _, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0); err != nil {
			t.Fatal(err)
		}
	}
	raw, vHead, isDelta, err := FetchSince(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0, v0)
	if err != nil {
		t.Fatal(err)
	}
	if isDelta {
		t.Fatalf("compacted base %d still answered with a delta chain", v0)
	}
	if vHead != cur {
		t.Fatalf("full fallback at version %d, trainer is at %d", vHead, cur)
	}
	if _, err := LoadEnvelope(raw); err != nil {
		t.Fatalf("full fallback does not load: %v", err)
	}
}

// A swap invalidates the delta history: a follower holding a
// pre-swap version gets a full envelope, never a chain keyed to the
// replaced model.
func TestEnvelopeSinceInvalidatedBySwap(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, trainer, Config{})

	raw0, v0, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	advanceVersion(t, trainer, v0, 51)
	if _, _, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0); err != nil {
		t.Fatal(err)
	}
	// Swap the model back to the v0 envelope; history must reset.
	resp, err := http.Post(ts.URL+"/v1/swap", ContentTypeEnvelope, bytes.NewReader(raw0))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap answered %s", resp.Status)
	}
	_, _, isDelta, err := FetchSince(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0, v0)
	if err != nil {
		t.Fatal(err)
	}
	if isDelta {
		t.Fatal("post-swap ?since= served a chain from the invalidated history")
	}
}

// A follower seeded from BootstrapRaw negotiates deltas from its first
// poll: converging past a structural change installs via a delta chain,
// and the converged replica's own checkpoint is byte-identical to the
// trainer's envelope.
func TestFollowerDeltaInstall(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	srv, ts := newTestServer(t, trainer, Config{})

	replica, v0, raw0, err := BootstrapRaw(context.Background(), nil, ts.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(ts.URL, replica, FollowConfig{Interval: 5 * time.Millisecond, Wait: time.Second})
	f.SeedInstalled(v0, raw0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	v1 := advanceVersion(t, trainer, v0, 61)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := f.InstalledVersion(); ok && v == v1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged to %d: %+v", v1, f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	st := f.Stats()
	if st.DeltaInstalls == 0 {
		t.Fatalf("converged without a delta install: %+v", st)
	}
	if st.DeltaFallbacks != 0 {
		t.Fatalf("healthy follow fell back %d times: %+v", st.DeltaFallbacks, st)
	}
	if srv.Status().DeltasServed == 0 {
		t.Fatal("trainer served no delta chains")
	}

	// Byte-identical convergence: the replica's own checkpoint equals
	// the trainer's full envelope at the head version.
	rawHead, _, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	var repCkpt bytes.Buffer
	if err := replica.Checkpoint(&repCkpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repCkpt.Bytes(), rawHead) {
		t.Fatal("delta-converged replica checkpoint differs from the trainer envelope")
	}
}

// An unusable delta chain (wrong base, corrupt links) makes the
// follower fall back to a full fetch without tripping the breaker.
func TestFollowerDeltaFallbackOnBadChain(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	var env bytes.Buffer
	if err := trainer.Checkpoint(&env); err != nil {
		t.Fatal(err)
	}
	rawFull := env.Bytes()

	badChains := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/envelope", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("since") != "" && badChains == 0 {
			badChains++
			w.Header().Set("Content-Type", ContentTypeDeltaChain)
			w.Header().Set(VersionHeader, "99")
			w.Header().Set(DeltaBaseHeader, r.URL.Query().Get("since"))
			w.Header().Set(DeltaCountHeader, "1")
			fmt.Fprint(w, "REPRODLT garbage that is not a delta envelope")
			return
		}
		w.Header().Set("Content-Type", ContentTypeEnvelope)
		w.Header().Set(VersionHeader, "99")
		w.Write(rawFull)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	replica := newTrainedScorer(t, 10)
	f := NewFollower(ts.URL, replica, FollowConfig{Interval: 2 * time.Millisecond, Timeout: 2 * time.Second})
	f.SeedInstalled(1, rawFull) // pretend we hold version 1's bytes

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok := f.InstalledVersion(); ok && v == 99 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered from the bad chain: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	st := f.Stats()
	if st.DeltaFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1: %+v", st.DeltaFallbacks, st)
	}
	if st.BreakerOpens != 0 || st.State != BreakerClosed {
		t.Fatalf("delta fallback penalised the breaker: %+v", st)
	}
	if st.Errors() != 0 {
		t.Fatalf("delta fallback counted as a fetch failure: %+v", st)
	}
}
