package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// RegistryConfig tunes the trainer-side replica registry.
type RegistryConfig struct {
	// TTL is how long a heartbeat keeps a replica fresh; a replica
	// silent for longer than TTL is unhealthy (default 3s).
	TTL time.Duration
	// MaxVersionLag health-gates replicas by envelope-version lag: a
	// replica more than this many structure versions behind the
	// trainer is unhealthy until it catches up (0 disables the gate).
	MaxVersionLag uint64
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.TTL <= 0 {
		c.TTL = 3 * time.Second
	}
	return c
}

// ReplicaInfo is one registry entry as listed by GET /v1/replicas: the
// replica's announcement plus the health verdict computed at listing
// time.
type ReplicaInfo struct {
	// ID is the replica's self-chosen identity (stable across
	// heartbeats).
	ID string `json:"id"`
	// URL is where the replica serves predictions.
	URL string `json:"url"`
	// Version is the replica's last installed envelope version.
	Version uint64 `json:"version"`
	// HasVersion is false while the replica has installed nothing.
	HasVersion bool `json:"has_version"`
	// Ready is the replica's own readiness (false while draining or
	// restoring).
	Ready bool `json:"ready"`
	// Healthy is the registry's verdict: fresh heartbeat AND ready AND
	// within the version-lag gate. Load balancers pick healthy
	// replicas only.
	Healthy bool `json:"healthy"`
	// LagVersions is how many structure versions the replica trails
	// the trainer (0 when the trainer tracks no version).
	LagVersions uint64 `json:"lag_versions"`
	// AgeSeconds is how long ago the last heartbeat arrived.
	AgeSeconds float64 `json:"age_seconds"`
}

// ReplicaAnnounce is the heartbeat body a replica POSTs to
// /v1/replicas. Announcing is registering: the first heartbeat creates
// the entry, later ones refresh it, and Leaving deletes it.
type ReplicaAnnounce struct {
	ID         string `json:"id"`
	URL        string `json:"url"`
	Version    uint64 `json:"version"`
	HasVersion bool   `json:"has_version"`
	Ready      bool   `json:"ready"`
	Leaving    bool   `json:"leaving,omitempty"`
}

// ReplicaList is the GET /v1/replicas document.
type ReplicaList struct {
	TrainerVersion    uint64        `json:"trainer_version"`
	HasTrainerVersion bool          `json:"has_trainer_version"`
	Replicas          []ReplicaInfo `json:"replicas"`
}

type replicaEntry struct {
	ann      ReplicaAnnounce
	lastSeen time.Time
}

// Registry tracks a fleet of serving replicas by heartbeat. The
// trainer's Server hosts one behind POST/GET /v1/replicas; health is
// computed at listing time from heartbeat freshness, the replica's own
// readiness (drain on swap: a replica mid-restore reports not-ready
// and is health-gated out until the install finishes), and the
// envelope-version lag gate.
type Registry struct {
	cfg RegistryConfig
	now func() time.Time

	mu       sync.Mutex
	replicas map[string]*replicaEntry
	// lag is the rolling replica-lag tracker behind /statusz: every
	// heartbeat observes whether the replica was fresh (zero version
	// lag) plus its lag in versions, windowed over the most recent
	// announcements (see stats.Preq).
	lag *stats.Preq
}

// lagWindow is how many heartbeats the rolling lag display covers.
const lagWindow = 256

// NewRegistry builds a Registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{
		cfg:      cfg.withDefaults(),
		now:      time.Now,
		replicas: make(map[string]*replicaEntry),
		lag:      stats.NewPreq(lagWindow),
	}
}

// Upsert registers or refreshes a replica from its announcement.
func (r *Registry) Upsert(a ReplicaAnnounce) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replicas[a.ID] = &replicaEntry{ann: a, lastSeen: r.now()}
}

// ObserveLag feeds one heartbeat into the rolling lag tracker: the
// "correct" channel records whether the replica announced the trainer's
// current version (fresh), the loss channel its lag in versions.
// Heartbeats from replicas that have installed nothing yet, or arriving
// while the trainer tracks no version, are skipped — they carry no lag
// signal.
func (r *Registry) ObserveLag(a ReplicaAnnounce, trainerVersion uint64, hasTrainerVersion bool) {
	if !hasTrainerVersion || !a.HasVersion {
		return
	}
	var lag uint64
	if trainerVersion > a.Version {
		lag = trainerVersion - a.Version
	}
	r.mu.Lock()
	r.lag.Observe(lag == 0, float64(lag))
	r.mu.Unlock()
}

// LagStats reports the rolling heartbeat-lag window: the fraction of
// recent heartbeats that were fresh, the mean version lag, and how many
// heartbeats the window currently holds.
func (r *Registry) LagStats() (freshRate, meanLag float64, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lag.Accuracy(), r.lag.MeanLoss(), r.lag.Len()
}

// Remove deletes a replica (explicit deregistration).
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.replicas, id)
}

// Len returns the registered replica count (healthy or not).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.replicas)
}

// List returns every registered replica with health computed against
// the trainer's current version, sorted by ID. Entries silent for
// longer than 10×TTL are reaped.
func (r *Registry) List(trainerVersion uint64, hasTrainerVersion bool) []ReplicaInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]ReplicaInfo, 0, len(r.replicas))
	for id, e := range r.replicas {
		age := now.Sub(e.lastSeen)
		if age > 10*r.cfg.TTL {
			delete(r.replicas, id)
			continue
		}
		info := ReplicaInfo{
			ID:         e.ann.ID,
			URL:        e.ann.URL,
			Version:    e.ann.Version,
			HasVersion: e.ann.HasVersion,
			Ready:      e.ann.Ready,
			AgeSeconds: age.Seconds(),
		}
		if hasTrainerVersion && e.ann.HasVersion && trainerVersion > e.ann.Version {
			info.LagVersions = trainerVersion - e.ann.Version
		}
		info.Healthy = age <= r.cfg.TTL && e.ann.Ready &&
			(r.cfg.MaxVersionLag == 0 || info.LagVersions <= r.cfg.MaxVersionLag)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- replica-side heartbeat client -----------------------------------

// Announce POSTs one heartbeat to the trainer's registry.
func Announce(ctx context.Context, client *http.Client, trainerURL string, a ReplicaAnnounce) error {
	if client == nil {
		client = httpClient(nil, 5*time.Second)
	}
	if a.ID == "" {
		return fmt.Errorf("follow: announce needs a replica ID")
	}
	body, err := json.Marshal(a)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, trainerURL+"/v1/replicas", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("follow: announce: %s", resp.Status)
	}
	return nil
}

// RunHeartbeats announces state() to the trainer every interval until
// ctx is cancelled, then sends one best-effort leaving announcement so
// the registry drops the replica immediately instead of waiting out
// the TTL. Announce failures are absorbed — the registry's TTL is the
// real liveness signal.
func RunHeartbeats(ctx context.Context, client *http.Client, trainerURL string, interval time.Duration, state func() ReplicaAnnounce) {
	if interval <= 0 {
		interval = time.Second
	}
	if client == nil {
		client = httpClient(nil, 5*time.Second)
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		_ = Announce(ctx, client, trainerURL, state())
		select {
		case <-ctx.Done():
			bye := state()
			bye.Leaving = true
			byeCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = Announce(byeCtx, client, trainerURL, bye)
			cancel()
			return
		case <-t.C:
		}
	}
}

// --- registry HTTP handlers (mounted by the Server) -------------------

func (s *Server) handleReplicaAnnounce(w http.ResponseWriter, r *http.Request) {
	var a ReplicaAnnounce
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&a); err != nil {
		http.Error(w, "bad announce body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if a.ID == "" {
		http.Error(w, "announce needs an id", http.StatusBadRequest)
		return
	}
	v, hasV := s.scorer.StructureVersion()
	if a.Leaving {
		s.reg.Remove(a.ID)
	} else {
		s.reg.Upsert(a)
		s.reg.ObserveLag(a, v, hasV)
	}
	writeJSON(w, ReplicaList{TrainerVersion: v, HasTrainerVersion: hasV, Replicas: s.reg.List(v, hasV)})
}

func (s *Server) handleReplicaList(w http.ResponseWriter, _ *http.Request) {
	v, hasV := s.scorer.StructureVersion()
	writeJSON(w, ReplicaList{TrainerVersion: v, HasTrainerVersion: hasV, Replicas: s.reg.List(v, hasV)})
}

// --- client-side picker ----------------------------------------------

// ReplicaSetConfig tunes a ReplicaSet.
type ReplicaSetConfig struct {
	// Refresh is the registry poll period of Run (default 1s).
	Refresh time.Duration
	// BreakerThreshold opens a replica's circuit after this many
	// consecutive reported failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is each replica breaker's open -> half-open
	// delay (default 2s).
	BreakerCooldown time.Duration
	// Client fetches the replica list (nil = shared default, 5s
	// timeout).
	Client *http.Client
	// OnStateChange, when non-nil, observes per-replica breaker
	// transitions (ejections and readmissions).
	OnStateChange func(id string, from, to BreakerState)
}

func (c ReplicaSetConfig) withDefaults() ReplicaSetConfig {
	if c.Refresh <= 0 {
		c.Refresh = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = httpClient(nil, 5*time.Second)
	}
	return c
}

// ReplicaSet is the load-balancer side of the registry: it polls the
// trainer's GET /v1/replicas, keeps the health-gated listing, and
// round-robins Pick over the replicas that are both registry-healthy
// and admitted by their local circuit breaker. Callers Report each
// request's outcome; consecutive failures eject a replica (its breaker
// opens), and a successful half-open probe readmits it.
type ReplicaSet struct {
	trainerURL string
	cfg        ReplicaSetConfig

	mu       sync.Mutex
	replicas []ReplicaInfo
	breakers map[string]*breaker
	next     int
}

// NewReplicaSet builds a ReplicaSet over the trainer's registry. Call
// Refresh (or start Run) before the first Pick.
func NewReplicaSet(trainerURL string, cfg ReplicaSetConfig) *ReplicaSet {
	return &ReplicaSet{
		trainerURL: trainerURL,
		cfg:        cfg.withDefaults(),
		breakers:   make(map[string]*breaker),
	}
}

// Refresh pulls the current replica list from the trainer.
func (rs *ReplicaSet) Refresh(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.trainerURL+"/v1/replicas", nil)
	if err != nil {
		return err
	}
	resp, err := rs.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("follow: replica list: %s", resp.Status)
	}
	var list ReplicaList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return fmt.Errorf("follow: replica list: %w", err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.replicas = list.Replicas
	// Prune breakers of replicas that left the registry.
	alive := make(map[string]bool, len(list.Replicas))
	for _, r := range list.Replicas {
		alive[r.ID] = true
	}
	for id := range rs.breakers {
		if !alive[id] {
			delete(rs.breakers, id)
		}
	}
	return nil
}

// Run refreshes on the configured period until ctx is cancelled.
func (rs *ReplicaSet) Run(ctx context.Context) error {
	t := time.NewTicker(rs.cfg.Refresh)
	defer t.Stop()
	for {
		_ = rs.Refresh(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// breakerFor returns (creating if needed) the replica's breaker;
// callers hold rs.mu.
func (rs *ReplicaSet) breakerFor(id string) *breaker {
	b, ok := rs.breakers[id]
	if !ok {
		onChange := rs.cfg.OnStateChange
		var cb func(from, to BreakerState)
		if onChange != nil {
			cb = func(from, to BreakerState) { onChange(id, from, to) }
		}
		b = newBreaker(rs.cfg.BreakerThreshold, rs.cfg.BreakerCooldown, cb)
		rs.breakers[id] = b
	}
	return b
}

// Pick returns the next replica in round-robin order among those that
// are registry-healthy (fresh heartbeat, ready, within the lag gate)
// and whose circuit breaker admits a call. ok is false when no replica
// qualifies — the caller should fall back (e.g. to the trainer) or
// shed the request.
func (rs *ReplicaSet) Pick() (ReplicaInfo, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := len(rs.replicas)
	for i := 0; i < n; i++ {
		r := rs.replicas[rs.next%n]
		rs.next++
		if !r.Healthy {
			continue
		}
		if !rs.breakerFor(r.ID).allow() {
			continue
		}
		return r, true
	}
	return ReplicaInfo{}, false
}

// Report feeds a request outcome into the replica's breaker: failures
// eject it after the threshold, a successful probe readmits it.
func (rs *ReplicaSet) Report(id string, ok bool) {
	rs.mu.Lock()
	b := rs.breakerFor(id)
	rs.mu.Unlock()
	if ok {
		b.success()
	} else {
		b.failure()
	}
}

// Healthy returns how many replicas of the last refresh are
// registry-healthy (before breaker gating).
func (rs *ReplicaSet) Healthy() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := 0
	for _, r := range rs.replicas {
		if r.Healthy {
			n++
		}
	}
	return n
}

// Len returns the replica count of the last refresh.
func (rs *ReplicaSet) Len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.replicas)
}
