package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synth"
)

// chaosFollowConfig is the fast-knob config every chaos test shares:
// millisecond-scale backoff and cooldown so a full open -> half-open ->
// closed cycle fits in test time, and a fixed Seed so the retry
// schedule (and with it the whole test) is deterministic.
func chaosFollowConfig(transport http.RoundTripper) FollowConfig {
	return FollowConfig{
		Interval:         2 * time.Millisecond,
		Timeout:          2 * time.Second,
		Transport:        transport,
		BackoffBase:      time.Millisecond,
		BackoffMax:       10 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  10 * time.Millisecond,
		Seed:             1,
	}
}

// advanceVersion trains sc until its structure version moves off from,
// returning the new version.
func advanceVersion(t *testing.T, sc serve.Scorer, from uint64, seed int64) uint64 {
	t.Helper()
	gen := synth.NewSEA(40000, 0.1, seed)
	for i := 0; i < 400; i++ {
		b, err := stream.NextBatch(gen, 100)
		if err != nil {
			t.Fatal(err)
		}
		sc.Learn(b)
		if cur, _ := sc.StructureVersion(); cur != from {
			return cur
		}
	}
	t.Fatal("trainer structure version never moved")
	return 0
}

// The acceptance matrix: under every fault class at a ~30% rate, a
// Follower converges to the trainer's final structure version — drops,
// resets, 5xx/429 storms, and truncated envelopes (which the persist
// CRC rejects; a damaged envelope is never installed).
func TestChaosFollowConverges(t *testing.T) {
	cases := []struct {
		name        string
		rules       []faults.Rule
		wantRejects bool // truncation must surface as restore/decode errors
	}{
		{name: "drops", rules: []faults.Rule{{Kind: faults.Drop, P: 0.3}}},
		{name: "resets", rules: []faults.Rule{{Kind: faults.Reset, P: 0.3}}},
		{name: "429 storm", rules: []faults.Rule{{Kind: faults.Status, P: 0.3, Status: 429}}},
		{name: "503s", rules: []faults.Rule{{Kind: faults.Status, P: 0.3, Status: 503}}},
		{
			// The first envelope fetches are always cut short (a 304
			// poll has no body to damage, so probabilistic truncation
			// alone could only ever hit empty responses), then a 30%
			// rate rides along for the rest of the run.
			name: "truncated envelopes",
			rules: []faults.Rule{
				{Kind: faults.Truncate, P: 1, Until: 3, KeepBytes: 512, PathPrefix: "/v1/envelope"},
				{Kind: faults.Truncate, P: 0.3, After: 3, KeepBytes: 512, PathPrefix: "/v1/envelope"},
			},
			wantRejects: true,
		},
		{name: "everything at once", rules: []faults.Rule{
			{Kind: faults.Drop, P: 0.1},
			{Kind: faults.Reset, P: 0.1},
			{Kind: faults.Status, P: 0.05, Status: 503},
			{Kind: faults.Truncate, P: 0.1, KeepBytes: 256, PathPrefix: "/v1/envelope"},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trainer := newTrainedScorer(t, 120)
			_, trainerTS := newTestServer(t, trainer, Config{})
			v0, _ := trainer.StructureVersion()

			in := faults.New(7, tc.rules...)
			replica := newTrainedScorer(t, 10)
			f := NewFollower(trainerTS.URL, replica, chaosFollowConfig(in.RoundTripper(nil)))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{})
			go func() { defer close(done); f.Run(ctx) }()

			waitInstalled := func(want uint64) {
				t.Helper()
				deadline := time.Now().Add(20 * time.Second)
				for {
					if v, ok := f.InstalledVersion(); ok && v == want {
						return
					}
					if time.Now().After(deadline) {
						t.Fatalf("never converged to version %d: %+v", want, f.Stats())
					}
					time.Sleep(time.Millisecond)
				}
			}
			// Converge to the trainer's current version, then let the
			// poll loop run until the injector has sampled enough
			// traffic that every rule has had real chances to fire
			// (convergence alone can take a handful of fetches).
			waitInstalled(v0)
			deadline := time.Now().Add(20 * time.Second)
			for in.Seen() < 80 {
				if time.Now().After(deadline) {
					t.Fatalf("poll traffic stalled at %d requests: %+v", in.Seen(), f.Stats())
				}
				time.Sleep(time.Millisecond)
			}
			// Advance the trainer and converge again to its final
			// version.
			v1 := advanceVersion(t, trainer, v0, 77)
			waitInstalled(v1)
			cancel()
			<-done

			st := f.Stats()
			if in.InjectedTotal() == 0 {
				t.Fatal("chaos run injected zero faults — the test proved nothing")
			}
			if st.Errors() == 0 {
				t.Fatalf("faults fired (%d) but no errors were counted: %+v", in.InjectedTotal(), st)
			}
			if tc.wantRejects && st.RestoreErrors+st.DecodeErrors == 0 {
				t.Fatalf("truncated envelopes never rejected: %+v", st)
			}
			t.Logf("injected=%d stats=%+v", in.InjectedTotal(), st)

			// The converged replica predicts exactly what the trainer's
			// final envelope says.
			X, _ := seaRows(32, 23)
			raw, _, err := Fetch(context.Background(), http.DefaultClient, trainerTS.URL, ^uint64(0), 0)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := serve.FromCheckpoint(bytes.NewReader(raw), 1)
			if err != nil {
				t.Fatal(err)
			}
			if want, got := ref.PredictBatch(X, nil), replica.PredictBatch(X, nil); !equalInts(want, got) {
				t.Fatal("converged replica disagrees with the trainer envelope")
			}
		})
	}
}

// deltaCorrupter scrambles the first `remaining` delta-chain response
// bodies (header bytes, length preserved) and passes everything else to
// the wrapped transport — the deterministic "bad chain" fault the
// probabilistic injector cannot target by response type.
type deltaCorrupter struct {
	next      http.RoundTripper
	remaining int32
}

func (d *deltaCorrupter) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := d.next.RoundTrip(req)
	if err != nil || resp.Header.Get("Content-Type") != ContentTypeDeltaChain {
		return resp, err
	}
	if atomic.AddInt32(&d.remaining, -1) < 0 {
		return resp, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	for i := 16; i < 24 && i < len(body); i++ {
		body[i] ^= 0xff
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// Delta follow under chaos: with corrupted delta chains and background
// connection drops, the follower falls back to full envelopes exactly
// when a chain is unusable, keeps converging through every round, and
// ends byte-identical to the trainer — its own checkpoint equals the
// trainer's envelope.
func TestChaosDeltaFollowFallsBackAndConverges(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, trainerTS := newTestServer(t, trainer, Config{})

	replica, v0, raw0, err := BootstrapRaw(context.Background(), nil, trainerTS.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5, faults.Rule{Kind: faults.Drop, P: 0.1})
	corrupt := &deltaCorrupter{next: in.RoundTripper(nil), remaining: 2}
	f := NewFollower(trainerTS.URL, replica, chaosFollowConfig(corrupt))
	f.SeedInstalled(v0, raw0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	// Several structural rounds: the first two delta chains arrive
	// corrupted and must be recovered by full fetches, later rounds
	// install via clean chains.
	cur := v0
	for round := 0; round < 4; round++ {
		cur = advanceVersion(t, trainer, cur, int64(300+round))
		deadline := time.Now().Add(20 * time.Second)
		for {
			if v, ok := f.InstalledVersion(); ok && v == cur {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d never converged to %d: %+v", round, cur, f.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	<-done

	st := f.Stats()
	if st.DeltaFallbacks < 2 {
		t.Fatalf("corrupted chains did not force fallbacks: %+v", st)
	}
	if st.DeltaInstalls == 0 {
		t.Fatalf("no clean delta chain ever installed: %+v", st)
	}
	t.Logf("injected=%d stats=%+v", in.InjectedTotal(), st)

	// Byte-identical convergence: the replica's checkpoint equals the
	// trainer's current envelope.
	rawHead, _, err := Fetch(context.Background(), http.DefaultClient, trainerTS.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	var repCkpt bytes.Buffer
	if err := replica.Checkpoint(&repCkpt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repCkpt.Bytes(), rawHead) {
		t.Fatal("chaos-converged replica checkpoint differs from the trainer envelope")
	}
}

// A trainer partition is graceful degradation, not an outage: the
// replica keeps answering every prediction from its last installed
// snapshot, reports nonzero staleness, stamps degraded responses with
// X-Repro-Staleness, and /healthz flips to degraded (but stays ready).
// When the partition heals the follower reconverges and the staleness
// markers clear.
func TestChaosTrainerPartitionDegradesGracefully(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, trainerTS := newTestServer(t, trainer, Config{})
	v0, _ := trainer.StructureVersion()

	// The first 6 requests pass (bootstrap + a few polls), then a total
	// outage for the next 60 matching requests, then the partition
	// heals.
	in := faults.New(3, faults.Rule{Kind: faults.Drop, P: 1, After: 6, Until: 66})
	replica := newTrainedScorer(t, 10)
	f := NewFollower(trainerTS.URL, replica, chaosFollowConfig(in.RoundTripper(nil)))

	repSrv := New(replica, Config{})
	repSrv.SetStalenessSource(f)
	repTS := httptest.NewServer(repSrv.Handler())
	t.Cleanup(func() { repTS.Close(); repSrv.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	// Wait for the first install, then hammer the replica throughout
	// the partition: zero tolerated prediction errors.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := f.InstalledVersion(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bootstrap install never happened")
		}
		time.Sleep(time.Millisecond)
	}
	X, _ := seaRows(8, 41)
	stop := make(chan struct{})
	var reads, failures atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp := postJSON(t, repTS.URL+"/v1/predict", predictRequest{X: X[(g+i)%len(X)]})
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reads.Add(1)
			}
		}(g)
	}

	// The partition must trip the breaker: the replica is degraded.
	deadline = time.Now().Add(10 * time.Second)
	for f.State() == BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("partition never opened the breaker")
		}
		time.Sleep(time.Millisecond)
	}
	if lag, degraded := f.Staleness(); !degraded || lag <= 0 {
		t.Fatalf("partitioned replica staleness (%v, %v)", lag, degraded)
	}

	// Degraded predictions still answer 200, stamped with staleness.
	resp := postJSON(t, repTS.URL+"/v1/predict", predictRequest{X: X[0]})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded replica answered %s", resp.Status)
	}
	stale := resp.Header.Get(StalenessHeader)
	if stale == "" {
		t.Fatal("degraded prediction missing the staleness header")
	}
	if secs, err := strconv.ParseFloat(stale, 64); err != nil || secs <= 0 {
		t.Fatalf("staleness header %q", stale)
	}

	// /healthz: live, ready (it still serves!), degraded with lag.
	hresp, err := http.Get(repTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !h.Live || !h.Ready || !h.Degraded || h.StalenessSeconds <= 0 {
		t.Fatalf("degraded /healthz: code %d, %+v", hresp.StatusCode, h)
	}

	// Advance the trainer during the partition; once it heals the
	// follower must reconverge to the final version and clear the
	// degraded state.
	v1 := advanceVersion(t, trainer, v0, 99)
	deadline = time.Now().Add(20 * time.Second)
	for {
		v, ok := f.InstalledVersion()
		if ok && v == v1 && f.State() == BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconverged after the partition healed: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d reads failed across the partition", failures.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("hammer never read")
	}

	// Healed: no staleness header on fresh predictions.
	resp = postJSON(t, repTS.URL+"/v1/predict", predictRequest{X: X[0]})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(StalenessHeader); got != "" {
		t.Fatalf("healed replica still stamps staleness %q", got)
	}
	if st := f.Stats(); st.BreakerOpens == 0 || st.DialErrors == 0 {
		t.Fatalf("partition left no trace in the stats: %+v", st)
	}
	t.Logf("served %d reads across a trainer partition, zero failures", reads.Load())
}
