package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// Registry health is computed at listing time: heartbeat freshness
// (TTL), the replica's own readiness, and the envelope-version lag
// gate — and long-silent entries are reaped.
func TestRegistryHealthGating(t *testing.T) {
	clock := time.Unix(1000, 0)
	r := NewRegistry(RegistryConfig{TTL: time.Second, MaxVersionLag: 2})
	r.now = func() time.Time { return clock }

	r.Upsert(ReplicaAnnounce{ID: "a", URL: "http://a", Version: 10, HasVersion: true, Ready: true})
	r.Upsert(ReplicaAnnounce{ID: "b", URL: "http://b", Version: 7, HasVersion: true, Ready: true})
	r.Upsert(ReplicaAnnounce{ID: "c", URL: "http://c", Version: 10, HasVersion: true, Ready: false})

	list := r.List(10, true)
	if len(list) != 3 {
		t.Fatalf("%d replicas listed, want 3", len(list))
	}
	byID := map[string]ReplicaInfo{}
	for _, info := range list {
		byID[info.ID] = info
	}
	if !byID["a"].Healthy {
		t.Fatal("fresh, ready, current replica not healthy")
	}
	if byID["b"].Healthy || byID["b"].LagVersions != 3 {
		t.Fatalf("replica 3 versions behind a lag gate of 2 listed healthy: %+v", byID["b"])
	}
	if byID["c"].Healthy {
		t.Fatal("not-ready (draining) replica listed healthy")
	}

	// Heartbeat goes stale: past the TTL the replica is unhealthy, past
	// 10x the TTL it is reaped from the registry entirely.
	clock = clock.Add(1500 * time.Millisecond)
	if info := r.List(10, true)[0]; info.ID != "a" || info.Healthy {
		t.Fatalf("stale replica still healthy: %+v", info)
	}
	r.Upsert(ReplicaAnnounce{ID: "a", URL: "http://a", Version: 10, HasVersion: true, Ready: true})
	if info := r.List(10, true)[0]; !info.Healthy {
		t.Fatal("refreshed heartbeat did not restore health")
	}
	clock = clock.Add(11 * time.Second)
	if got := len(r.List(10, true)); got != 0 {
		t.Fatalf("%d entries survived 10x TTL silence", got)
	}
	if r.Len() != 0 {
		t.Fatal("reap did not delete entries")
	}

	// Lag gate disabled: any version lag is fine.
	r2 := NewRegistry(RegistryConfig{TTL: time.Second})
	r2.now = func() time.Time { return clock }
	r2.Upsert(ReplicaAnnounce{ID: "z", URL: "http://z", Version: 1, HasVersion: true, Ready: true})
	if info := r2.List(1000, true)[0]; !info.Healthy {
		t.Fatalf("lag gate fired while disabled: %+v", info)
	}
}

// The registry endpoints end to end: POST /v1/replicas registers and
// heartbeats, GET lists with the trainer's version, Leaving removes.
func TestReplicaEndpoints(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	srv, ts := newTestServer(t, sc, Config{})
	trainerV, _ := sc.StructureVersion()

	resp := postJSON(t, ts.URL+"/v1/replicas", ReplicaAnnounce{
		ID: "rep-1", URL: "http://rep-1:9000", Version: trainerV, HasVersion: true, Ready: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}
	var list ReplicaList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !list.HasTrainerVersion || list.TrainerVersion != trainerV {
		t.Fatalf("announce response trainer version %d, want %d", list.TrainerVersion, trainerV)
	}
	if len(list.Replicas) != 1 || !list.Replicas[0].Healthy {
		t.Fatalf("announce response: %+v", list.Replicas)
	}

	get, err := http.Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(get.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if len(list.Replicas) != 1 || list.Replicas[0].ID != "rep-1" {
		t.Fatalf("GET list: %+v", list.Replicas)
	}
	if st := srv.Status(); st.ReplicasTotal != 1 || st.ReplicasHealthy != 1 {
		t.Fatalf("statusz replica counts: %+v", st)
	}

	// A malformed announce is rejected.
	bad, err := http.Post(ts.URL+"/v1/replicas", "application/json", bytes.NewReader([]byte(`{"url":"no id"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("id-less announce answered %s", bad.Status)
	}

	// Leaving deregisters immediately.
	resp = postJSON(t, ts.URL+"/v1/replicas", ReplicaAnnounce{ID: "rep-1", Leaving: true})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if srv.Registry().Len() != 0 {
		t.Fatal("leaving announce did not deregister")
	}
}

// RunHeartbeats keeps a replica registered and sends the leaving
// announce on shutdown.
func TestRunHeartbeats(t *testing.T) {
	sc := newTrainedScorer(t, 20)
	srv, ts := newTestServer(t, sc, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunHeartbeats(ctx, nil, ts.URL, 10*time.Millisecond, func() ReplicaAnnounce {
			return ReplicaAnnounce{ID: "hb-1", URL: "http://hb-1", Ready: true}
		})
	}()
	deadline := time.Now().Add(3 * time.Second)
	for srv.Registry().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never registered")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if srv.Registry().Len() != 0 {
		t.Fatal("leaving announce on shutdown did not deregister")
	}
}

// The client-side picker: round-robins the healthy replicas, skips
// unhealthy ones, ejects a replica whose reported failures open its
// breaker, and readmits it after a successful half-open probe.
func TestReplicaSetPickAndBreaker(t *testing.T) {
	sc := newTrainedScorer(t, 20)
	srv, ts := newTestServer(t, sc, Config{Registry: RegistryConfig{TTL: time.Minute}})
	v, _ := sc.StructureVersion()
	srv.Registry().Upsert(ReplicaAnnounce{ID: "r1", URL: "http://r1", Version: v, HasVersion: true, Ready: true})
	srv.Registry().Upsert(ReplicaAnnounce{ID: "r2", URL: "http://r2", Version: v, HasVersion: true, Ready: true})
	srv.Registry().Upsert(ReplicaAnnounce{ID: "r3", URL: "http://r3", Ready: false}) // draining

	var mu sync.Mutex
	var events []string
	rs := NewReplicaSet(ts.URL, ReplicaSetConfig{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		OnStateChange: func(id string, from, to BreakerState) {
			mu.Lock()
			events = append(events, id+":"+from.String()+"->"+to.String())
			mu.Unlock()
		},
	})
	if err := rs.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 || rs.Healthy() != 2 {
		t.Fatalf("len %d healthy %d, want 3/2", rs.Len(), rs.Healthy())
	}

	// Round-robin over the healthy pair only; the draining replica is
	// never picked.
	picked := map[string]int{}
	for i := 0; i < 10; i++ {
		r, ok := rs.Pick()
		if !ok {
			t.Fatal("no replica picked with two healthy")
		}
		picked[r.ID]++
	}
	if picked["r3"] != 0 {
		t.Fatal("draining replica was picked")
	}
	if picked["r1"] != 5 || picked["r2"] != 5 {
		t.Fatalf("round-robin skew: %+v", picked)
	}

	// Two reported failures eject r1: picks converge on r2.
	rs.Report("r1", false)
	rs.Report("r1", false)
	for i := 0; i < 5; i++ {
		r, ok := rs.Pick()
		if !ok || r.ID != "r2" {
			t.Fatalf("pick %d: %q (ok=%v), want r2 only after r1 ejected", i, r.ID, ok)
		}
	}

	// After the cooldown r1 gets one probe; reporting success readmits.
	time.Sleep(60 * time.Millisecond)
	probed := false
	for i := 0; i < 4; i++ {
		r, _ := rs.Pick()
		if r.ID == "r1" {
			probed = true
			rs.Report("r1", true)
			break
		}
	}
	if !probed {
		t.Fatal("ejected replica never probed after cooldown")
	}
	picked = map[string]int{}
	for i := 0; i < 10; i++ {
		r, _ := rs.Pick()
		picked[r.ID]++
	}
	if picked["r1"] == 0 {
		t.Fatal("readmitted replica never picked again")
	}

	mu.Lock()
	seq := events
	mu.Unlock()
	if len(seq) < 3 {
		t.Fatalf("breaker transitions not observed: %v", seq)
	}

	// All replicas ejected -> Pick reports no candidate.
	rs.Report("r1", false)
	rs.Report("r1", false)
	rs.Report("r2", false)
	rs.Report("r2", false)
	if _, ok := rs.Pick(); ok {
		t.Fatal("Pick succeeded with every breaker open")
	}
}

// gatedRestoreScorer blocks Restore until released, so a test can
// observe readiness mid-install.
type gatedRestoreScorer struct {
	serve.Scorer
	gate    chan struct{} // Restore waits on this
	entered chan struct{} // closed when Restore is reached
	once    sync.Once
}

func (g *gatedRestoreScorer) Restore(r io.Reader) error {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.Scorer.Restore(r)
}

// Drain on swap: while an envelope restores through /v1/swap the
// server reports not-ready (503 /healthz, still live), and readiness
// returns once the install finishes.
func TestDrainOnSwapReadiness(t *testing.T) {
	inner := newTrainedScorer(t, 20)
	var env bytes.Buffer
	if err := inner.Checkpoint(&env); err != nil {
		t.Fatal(err)
	}
	gs := &gatedRestoreScorer{
		Scorer:  inner,
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	srv, ts := newTestServer(t, gs, Config{})

	if !srv.Ready() {
		t.Fatal("fresh server not ready")
	}
	health := func() (int, Health) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}
	if code, h := health(); code != http.StatusOK || !h.Live || !h.Ready {
		t.Fatalf("healthy server: code %d, %+v", code, h)
	}

	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		resp, err := http.Post(ts.URL+"/v1/swap", ContentTypeEnvelope, bytes.NewReader(env.Bytes()))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-gs.entered // the restore is in flight, holding the drain

	if srv.Ready() {
		t.Fatal("server ready mid-restore")
	}
	if code, h := health(); code != http.StatusServiceUnavailable || !h.Live || h.Ready {
		t.Fatalf("draining server: code %d, %+v (want 503, live, not ready)", code, h)
	}

	close(gs.gate)
	<-swapDone
	deadline := time.Now().Add(2 * time.Second)
	for !srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready after the install finished")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := health(); code != http.StatusOK {
		t.Fatalf("healed server /healthz %d", code)
	}
}

// A Follower wired with a Drainer gates readiness around each install
// (the same drain-on-swap contract, driven by the pull loop).
func TestFollowerDrainsServerDuringInstall(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, trainerTS := newTestServer(t, trainer, Config{})

	inner := newTrainedScorer(t, 10)
	gs := &gatedRestoreScorer{
		Scorer:  inner,
		gate:    make(chan struct{}),
		entered: make(chan struct{}),
	}
	replicaSrv := New(gs, Config{})
	defer replicaSrv.Close()

	f := NewFollower(trainerTS.URL, gs, FollowConfig{
		Interval: 5 * time.Millisecond,
		Timeout:  2 * time.Second,
		Drainer:  replicaSrv,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	<-gs.entered // install in flight
	if replicaSrv.Ready() {
		t.Fatal("replica server ready while an envelope installs")
	}
	close(gs.gate)
	deadline := time.Now().Add(3 * time.Second)
	for {
		if _, ok := f.InstalledVersion(); ok && replicaSrv.Ready() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never returned to ready after install")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
}
