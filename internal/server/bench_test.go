package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/synth"
)

// benchLoad drives the full HTTP stack — client, coalescer, scorer —
// with parallel requests while a trainer goroutine keeps Learning, and
// reports the serving numbers the ISSUE's acceptance criteria ask for:
// p50/p99 request latency and sustained QPS under concurrent training.
func benchLoad(b *testing.B, makeBody func(i int) (string, []byte), path string) {
	sc := newTrainedScorer(b, 120)
	srv := New(sc, Config{CoalesceWindow: time.Millisecond, MaxBatch: 64, MaxInFlight: 1024})
	defer srv.Close()
	hs := newBenchHTTP(b, srv)

	// Concurrent training: the trainer feeds the scorer one 100-row SEA
	// batch every 2ms (a 50k rows/s arrival rate) for the whole
	// measurement, so every latency sample includes live Learn and
	// snapshot-publish traffic. Paced, not busy-looped: an unpaced
	// trainer on a small machine measures scheduler starvation, not
	// serving latency.
	stop := make(chan struct{})
	var trainWG sync.WaitGroup
	trainWG.Add(1)
	go func() {
		defer trainWG.Done()
		gen := synth.NewSEA(1_000_000, 0.1, 31)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			batch, err := stream.NextBatch(gen, 100)
			if err != nil {
				gen.Reset()
				continue
			}
			sc.Learn(batch)
		}
	}()
	defer func() { close(stop); trainWG.Wait() }()

	var mu sync.Mutex
	var all []time.Duration
	// Concurrency beyond GOMAXPROCS: request latency is dominated by
	// waiting (coalesce window, network, scorer), so even a single-core
	// runner serves many in-flight clients.
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		lat := make([]time.Duration, 0, 1024)
		i := 0
		for pb.Next() {
			ct, body := makeBody(i)
			i++
			t0 := time.Now()
			resp, err := client.Post(hs+path, ct, bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("%s: %s", path, resp.Status)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat = append(lat, time.Since(t0))
		}
		mu.Lock()
		all = append(all, lat...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(all)-1))
		return float64(all[idx])
	}
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
	b.ReportMetric(float64(len(all))/elapsed.Seconds(), "qps")
}

// newBenchHTTP serves the handler on a real socket (httptest pulls in
// per-request bookkeeping we do not want timed) and returns its URL.
func newBenchHTTP(b *testing.B, srv *Server) string {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	b.Cleanup(func() { hs.Close() })
	return "http://" + ln.Addr().String()
}

// BenchmarkServerPredictOp measures one single-row JSON /v1/predict
// round trip under parallel load: singles coalesce into PredictBatch
// dispatches while a trainer goroutine keeps the model learning.
func BenchmarkServerPredictOp(b *testing.B) {
	X, _ := seaRows(64, 41)
	bodies := make([][]byte, len(X))
	for i, x := range X {
		bodies[i], _ = json.Marshal(predictRequest{X: x})
	}
	benchLoad(b, func(i int) (string, []byte) {
		return "application/json", bodies[i%len(bodies)]
	}, "/v1/predict")
}

// BenchmarkServerPredictBatchOp measures a 64-row binary
// /v1/predict_batch round trip under the same concurrent-training load.
func BenchmarkServerPredictBatchOp(b *testing.B) {
	X, _ := seaRows(64, 43)
	body := encodeBinaryRows(X)
	benchLoad(b, func(int) (string, []byte) {
		return ContentTypeRows, body
	}, "/v1/predict_batch")
}

// BenchmarkServerCoalesceOp isolates the coalescer (no HTTP): parallel
// in-process single predictions against the live scorer.
func BenchmarkServerCoalesceOp(b *testing.B) {
	sc := newTrainedScorer(b, 120)
	srv := New(sc, Config{CoalesceWindow: 100 * time.Microsecond, MaxBatch: 64})
	defer srv.Close()
	X, _ := seaRows(64, 47)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := srv.co.predict(context.Background(), X[i%len(X)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	if srv.co.batches.Load() > 0 {
		b.ReportMetric(float64(srv.co.rows.Load())/float64(srv.co.batches.Load()), "rows/batch")
	}
}
