package server

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The breaker's full state machine under a fake clock: consecutive
// failures open it, the cooldown admits exactly one half-open probe,
// a failed probe re-opens, a successful probe closes.
func TestBreakerStateMachine(t *testing.T) {
	var mu sync.Mutex
	var transitions []string
	clock := time.Unix(0, 0)
	b := newBreaker(2, time.Second, func(from, to BreakerState) {
		mu.Lock()
		transitions = append(transitions, from.String()+"->"+to.String())
		mu.Unlock()
	})
	b.now = func() time.Time { return clock }

	if !b.allow() {
		t.Fatal("closed breaker refused a call")
	}
	b.failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.failure()
	if b.State() != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}

	clock = clock.Add(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.allow() {
		t.Fatal("second call admitted while the probe is in flight")
	}
	b.failure() // probe fails: re-open
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}

	clock = clock.Add(time.Second)
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close")
	}
	if got := b.Opens(); got != 2 {
		t.Fatalf("opens %d, want 2", got)
	}

	mu.Lock()
	got := strings.Join(transitions, ",")
	mu.Unlock()
	want := "closed->open,open->half-open,half-open->open,open->half-open,half-open->closed"
	if got != want {
		t.Fatalf("transitions %q, want %q", got, want)
	}
}

// Full-jitter backoff: deterministic under a seed, bounded by the cap,
// and safe at absurd attempt counts.
func TestBackoffDelayDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = backoffDelay(rng, i, 10*time.Millisecond, 500*time.Millisecond)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v vs %v under the same seed", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] >= 500*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside [0, 500ms)", i, a[i])
		}
	}
	rng := rand.New(rand.NewSource(1))
	if d := backoffDelay(rng, 1000, time.Millisecond, time.Second); d < 0 || d >= time.Second {
		t.Fatalf("huge attempt drew %v", d)
	}
}

// Fetch classifies each failure mode into its cause and carries the
// Retry-After hint through.
func TestFetchErrorClassification(t *testing.T) {
	ctx := context.Background()

	t.Run("non-2xx is status with retry-after", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
		}))
		defer ts.Close()
		_, _, err := Fetch(ctx, ts.Client(), ts.URL, ^uint64(0), 0)
		var fe *FetchError
		if !errors.As(err, &fe) {
			t.Fatalf("not a FetchError: %v", err)
		}
		if fe.Cause != CauseStatus || fe.Status != http.StatusTooManyRequests {
			t.Fatalf("cause %q status %d", fe.Cause, fe.Status)
		}
		if fe.RetryAfter != time.Second {
			t.Fatalf("RetryAfter %v, want 1s", fe.RetryAfter)
		}
	})

	t.Run("missing version header is decode", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "an envelope with no version stamp")
		}))
		defer ts.Close()
		_, _, err := Fetch(ctx, ts.Client(), ts.URL, ^uint64(0), 0)
		var fe *FetchError
		if !errors.As(err, &fe) || fe.Cause != CauseDecode {
			t.Fatalf("want decode cause, got %v", err)
		}
	})

	t.Run("refused connection is dial", func(t *testing.T) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		_, _, ferr := Fetch(ctx, http.DefaultClient, "http://"+addr, ^uint64(0), 0)
		var fe *FetchError
		if !errors.As(ferr, &fe) || fe.Cause != CauseDial {
			t.Fatalf("want dial cause, got %v", ferr)
		}
	})

	t.Run("slow trainer is timeout", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-time.After(5 * time.Second):
			}
		}))
		defer ts.Close()
		client := httpClient(nil, 50*time.Millisecond)
		_, _, err := Fetch(ctx, client, ts.URL, ^uint64(0), 0)
		var fe *FetchError
		if !errors.As(err, &fe) || fe.Cause != CauseTimeout {
			t.Fatalf("want timeout cause, got %v", err)
		}
	})
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {"0", 0}, {"-1", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, {"junk", 0},
	} {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// A follower facing a trainer that fails, then heals: errors are
// counted per cause (nothing swallowed), the breaker opens and stops
// the hammering, the half-open probe readmits the healed trainer, and
// the follower converges — with every transition observed.
func TestFollowerBreakerOpensAndRecovers(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	srv := New(trainer, Config{})
	defer srv.Close()
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	replica := newTrainedScorer(t, 10)
	var mu sync.Mutex
	var transitions []string
	f := NewFollower(ts.URL, replica, FollowConfig{
		Interval:         5 * time.Millisecond,
		Timeout:          2 * time.Second,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		Seed:             42,
		OnStateChange: func(from, to BreakerState) {
			mu.Lock()
			transitions = append(transitions, from.String()+"->"+to.String())
			mu.Unlock()
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	// Phase 1: the outage trips the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().BreakerOpens == 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened against a 100% failing trainer")
		}
		time.Sleep(time.Millisecond)
	}
	if st := f.Stats(); st.StatusErrors < 3 {
		t.Fatalf("status errors %d, want >= threshold", st.StatusErrors)
	} else if st.Retries == 0 {
		t.Fatal("no retries counted")
	} else if !st.Degraded {
		t.Fatal("open breaker not reported as degraded")
	}
	if lag, degraded := f.Staleness(); !degraded || lag <= 0 {
		t.Fatalf("staleness (%v, %v) during an outage", lag, degraded)
	}

	// Phase 2: heal the trainer; the half-open probe must readmit it
	// and install the envelope.
	failing.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := f.Stats()
		if st.HasInstalled && st.State == BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recovered: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if _, degraded := f.Staleness(); degraded {
		t.Fatal("recovered follower still degraded")
	}
	v, ok := f.InstalledVersion()
	wantV, _ := trainer.StructureVersion()
	if !ok || v != wantV {
		t.Fatalf("installed version %d (ok=%v), trainer at %d", v, ok, wantV)
	}

	cancel()
	<-done

	mu.Lock()
	seq := strings.Join(transitions, ",")
	mu.Unlock()
	if !strings.Contains(seq, "closed->open") ||
		!strings.Contains(seq, "open->half-open") ||
		!strings.HasSuffix(seq, "half-open->closed") {
		t.Fatalf("transition sequence %q missing open/probe/close", seq)
	}
}

// A restore-rejected envelope (corrupt bytes) is counted as a restore
// failure and never installed — the replica's model is untouched.
func TestFollowerRejectsCorruptEnvelope(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	srv := New(trainer, Config{})
	defer srv.Close()
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		body := rec.Body.Bytes()
		if len(body) > 0 {
			body[len(body)/2] ^= 0xff // corrupt mid-envelope; CRC must catch it
		}
		w.Header().Del("Content-Length")
		w.WriteHeader(rec.Code)
		w.Write(body)
	}))
	defer ts.Close()

	replica := newTrainedScorer(t, 10)
	X, _ := seaRows(8, 31)
	before := replica.PredictBatch(X, nil)

	f := NewFollower(ts.URL, replica, FollowConfig{
		Interval:    2 * time.Millisecond,
		Timeout:     2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  3 * time.Millisecond,
		Seed:        3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().RestoreErrors < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("restore errors never counted: %+v", f.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	st := f.Stats()
	if st.HasInstalled {
		t.Fatal("corrupt envelope was installed")
	}
	after := replica.PredictBatch(X, nil)
	if !equalInts(before, after) {
		t.Fatal("rejected envelope changed the replica's model")
	}
}

// Close releases a parked ?wait= long-poll promptly with a 503 instead
// of holding the connection until the wait expires.
func TestCloseReleasesLongPoll(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	srv, ts := newTestServer(t, sc, Config{})
	v, _ := sc.StructureVersion()

	type result struct {
		status int
		err    error
		took   time.Duration
	}
	results := make(chan result, 1)
	go func() {
		start := time.Now()
		resp, err := http.Get(ts.URL + "/v1/envelope?version=" + itoa(v) + "&wait=30s")
		r := result{err: err, took: time.Since(start)}
		if err == nil {
			r.status = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		results <- r
	}()

	time.Sleep(100 * time.Millisecond) // let the poll park
	start := time.Now()
	srv.Close()
	select {
	case r := <-results:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("parked long-poll answered %d on close, want 503", r.status)
		}
		if since := time.Since(start); since > 2*time.Second {
			t.Fatalf("long-poll released %v after close", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll still parked 5s after Close — shutdown hang")
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Predictions racing Close never hang and never get an empty answer:
// each is either a 200 or a 503 with a body. This pins down the
// coalescer shutdown race (a job enqueued after the dispatcher's final
// drain used to wait on its done channel forever).
func TestPredictDuringCloseReturns503WithBody(t *testing.T) {
	sc := newTrainedScorer(t, 20)
	for round := 0; round < 20; round++ {
		srv := New(sc, Config{CoalesceWindow: time.Millisecond})
		ts := httptest.NewServer(srv.Handler())
		X, _ := seaRows(1, 16)

		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: X[0]})
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if len(body) == 0 {
						errs <- errors.New("503 with an empty body")
					}
				default:
					errs <- errors.New("unexpected status " + resp.Status)
				}
			}()
		}
		srv.Close() // race the in-flight predictions
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: predictions hung across Close", round)
		}
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		ts.Close()
		srv.Close() // double close must be a no-op, not a panic
	}
}
