package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/serve"
)

// FollowConfig tunes a replica's envelope-following loop.
type FollowConfig struct {
	// Interval is the pause between polls when the trainer answered
	// immediately (304 or a fresh envelope). Default 500ms.
	Interval time.Duration
	// Wait is the long-poll duration passed as ?wait= — the trainer
	// holds the request open until the structure version moves or the
	// wait expires. Zero disables long polling (plain poll-on-interval).
	Wait time.Duration
	// Client is the HTTP client used for fetches. Its Timeout must
	// exceed Wait; the default client uses Wait + 30s.
	Client *http.Client
	// OnInstall, when non-nil, is called after each successful envelope
	// install with the version it was stamped with.
	OnInstall func(version uint64)
}

func (c FollowConfig) withDefaults() FollowConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Wait + 30*time.Second}
	}
	return c
}

// Fetch pulls the trainer's current envelope from baseURL (the root the
// trainer's Handler is mounted at) and returns the raw envelope bytes
// plus the version they were stamped with. A version argument of
// ^uint64(0) means "whatever you have"; otherwise the trainer may
// answer 304 Not Modified (returned as nil bytes, nil error).
func Fetch(ctx context.Context, client *http.Client, baseURL string, version uint64, wait time.Duration) ([]byte, uint64, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, 0, fmt.Errorf("follow: bad base URL: %w", err)
	}
	u = u.JoinPath("/v1/envelope")
	q := u.Query()
	if version != ^uint64(0) {
		q.Set("version", strconv.FormatUint(version, 10))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return nil, version, nil
	case http.StatusOK:
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, 0, fmt.Errorf("follow: %s: %s: %s", u, resp.Status, bytes.TrimSpace(msg))
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("follow: read envelope: %w", err)
	}
	v, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("follow: envelope missing %s header: %w", VersionHeader, err)
	}
	return raw, v, nil
}

// Follow runs a replica's pull loop against a trainer's /v1/envelope
// until ctx is cancelled: fetch the envelope whenever the trainer's
// structure version has moved past the last installed one, and stream
// it into the local scorer via Restore. Reads served from the local
// scorer never fail during an install — that is the scorer's hot-swap
// contract — so a replica stays up through every model update.
//
// The first fetch is unconditional (a fresh replica has nothing), after
// which the loop long-polls (or plain-polls) on the installed version.
// Transient fetch/install errors are retried on the next interval;
// Follow only returns ctx.Err().
func Follow(ctx context.Context, baseURL string, sc serve.Scorer, cfg FollowConfig) error {
	cfg = cfg.withDefaults()
	have := ^uint64(0) // sentinel: nothing installed yet
	for {
		raw, v, err := Fetch(ctx, cfg.Client, baseURL, have, cfg.Wait)
		if err == nil && raw != nil {
			if err = sc.Restore(bytes.NewReader(raw)); err == nil {
				have = v
				if cfg.OnInstall != nil {
					cfg.OnInstall(v)
				}
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // transient; retry on the next tick
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(cfg.Interval):
		}
	}
}

// Bootstrap fetches the trainer's current envelope once and constructs
// a local scorer from it (sharded checkpoints reconstruct a sharded
// scorer). This is how `dmtserve -follow` starts with no local model.
func Bootstrap(ctx context.Context, client *http.Client, baseURL string, publishEvery int) (serve.Scorer, uint64, error) {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	raw, v, err := Fetch(ctx, client, baseURL, ^uint64(0), 0)
	if err != nil {
		return nil, 0, err
	}
	sc, err := serve.FromCheckpoint(bytes.NewReader(raw), publishEvery)
	if err != nil {
		return nil, 0, fmt.Errorf("follow: bootstrap envelope: %w", err)
	}
	return sc, v, nil
}
