package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/serve"
)

// Cause classifies a fetch/install failure for the per-cause counters.
type Cause string

const (
	// CauseDial: the connection never produced a response (refused,
	// dropped, reset).
	CauseDial Cause = "dial"
	// CauseTimeout: a context deadline or net timeout expired.
	CauseTimeout Cause = "timeout"
	// CauseStatus: the trainer answered with a non-2xx/304 status.
	CauseStatus Cause = "status"
	// CauseDecode: the response arrived but could not be read or was
	// missing its version stamp.
	CauseDecode Cause = "decode"
	// CauseRestore: the envelope bytes were rejected by the scorer's
	// Restore (framing/CRC/validation) — a truncated or corrupt
	// envelope is never installed.
	CauseRestore Cause = "restore"
)

// FetchError is a classified failure of one envelope fetch.
type FetchError struct {
	// Cause is the failure class.
	Cause Cause
	// Status is the HTTP status code when Cause == CauseStatus.
	Status int
	// RetryAfter is the server's Retry-After hint (zero when absent) —
	// 429/503 responses carry it, and the Follower honours it over its
	// own backoff.
	RetryAfter time.Duration
	// Err is the underlying error.
	Err error
}

// Error implements error.
func (e *FetchError) Error() string { return fmt.Sprintf("follow: %s: %v", e.Cause, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *FetchError) Unwrap() error { return e.Err }

// classify maps a transport error to its cause.
func classify(err error) Cause {
	if errors.Is(err, context.DeadlineExceeded) {
		return CauseTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CauseTimeout
	}
	return CauseDial
}

// httpClient is the one client constructor of the replica protocol:
// every caller (Fetch, Bootstrap, Follower, heartbeats, ReplicaSet)
// goes through it instead of growing its own ad-hoc http.Client.
func httpClient(transport http.RoundTripper, timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &http.Client{Timeout: timeout, Transport: transport}
}

// Drainer is how an install signals "stop routing new work to me":
// BeginDrain before the scorer restore, EndDrain after. The Server
// implements it (readiness flips, the registry health-gates the
// replica out), and in-flight reads still finish — draining gates new
// picks, not running requests.
type Drainer interface {
	BeginDrain()
	EndDrain()
}

// FollowConfig tunes a replica's envelope-following loop. The zero
// value is production-sane: 500ms poll interval, per-fetch timeouts,
// exponential backoff with full jitter between retries, and a circuit
// breaker that opens after 5 consecutive failures.
type FollowConfig struct {
	// Interval is the pause between polls when the trainer answered
	// immediately (304 or a fresh envelope). Default 500ms.
	Interval time.Duration
	// Wait is the long-poll duration passed as ?wait= — the trainer
	// holds the request open until the structure version moves or the
	// wait expires. Zero disables long polling (plain poll-on-interval).
	Wait time.Duration
	// Timeout is the per-fetch budget (client timeout and context
	// deadline). Default Wait + 30s, so a long poll always fits.
	Timeout time.Duration
	// Client is the HTTP client used for fetches. Nil builds one from
	// Transport and Timeout via the shared constructor.
	Client *http.Client
	// Transport, when Client is nil, is the transport of the built
	// client — the fault-injection hook (nil = http.DefaultTransport).
	Transport http.RoundTripper
	// BackoffBase is the first retry backoff (default 100ms); each
	// consecutive failure doubles it up to BackoffMax (default 10s),
	// and the actual delay is drawn uniformly from [0, d) (full
	// jitter). A 429/503 Retry-After hint overrides a shorter backoff.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 10s).
	BackoffMax time.Duration
	// BreakerThreshold is how many consecutive failures open the
	// circuit (default 5).
	BreakerThreshold int
	// BreakerCooldown is the open -> half-open delay (default 2s).
	BreakerCooldown time.Duration
	// Seed seeds the jitter source, so a test's retry schedule is
	// deterministic. Default 1.
	Seed int64
	// Drainer, when non-nil, brackets every Restore: BeginDrain before,
	// EndDrain after — the replica reports not-ready while an envelope
	// installs (drain on swap).
	Drainer Drainer
	// NoDelta disables delta negotiation: every fetch transfers a full
	// envelope. Default off — a follower that still holds its last
	// installed envelope bytes asks the trainer for a ?since= delta
	// chain and falls back to a full fetch automatically when the chain
	// cannot be served or applied.
	NoDelta bool
	// OnInstall, when non-nil, is called after each successful envelope
	// install with the version it was stamped with.
	OnInstall func(version uint64)
	// OnError, when non-nil, observes every classified fetch/install
	// failure — the counterpart of the per-cause counters for logs.
	OnError func(cause Cause, err error)
	// OnStateChange, when non-nil, observes circuit-breaker
	// transitions. It must not call back into the Follower.
	OnStateChange func(from, to BreakerState)
}

func (c FollowConfig) withDefaults() FollowConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Wait + 30*time.Second
	}
	if c.Client == nil {
		c.Client = httpClient(c.Transport, c.Timeout)
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = c.BackoffBase
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fetch pulls the trainer's current envelope from baseURL (the root the
// trainer's Handler is mounted at) and returns the raw envelope bytes
// plus the version they were stamped with. A version argument of
// ^uint64(0) means "whatever you have"; otherwise the trainer may
// answer 304 Not Modified (returned as nil bytes, nil error). Failures
// come back as a *FetchError classifying the cause and carrying any
// Retry-After hint; the request is bound to ctx end to end.
func Fetch(ctx context.Context, client *http.Client, baseURL string, version uint64, wait time.Duration) ([]byte, uint64, error) {
	raw, v, _, err := fetchEnvelope(ctx, client, baseURL, version, wait, 0, false)
	return raw, v, err
}

// FetchSince is Fetch with delta negotiation: since is the version of
// the full envelope bytes the caller still holds, passed as ?since= so
// the trainer may answer with a delta chain instead of a full envelope.
// isDelta reports which one the body is: when true, the bytes are a
// concatenation of delta envelopes to apply against the caller's base
// (see persist.ApplyChain) and the returned version is the chain head.
func FetchSince(ctx context.Context, client *http.Client, baseURL string, version uint64, wait time.Duration, since uint64) (raw []byte, v uint64, isDelta bool, err error) {
	return fetchEnvelope(ctx, client, baseURL, version, wait, since, true)
}

func fetchEnvelope(ctx context.Context, client *http.Client, baseURL string, version uint64, wait time.Duration, since uint64, haveSince bool) ([]byte, uint64, bool, error) {
	if client == nil {
		client = httpClient(nil, wait+30*time.Second)
	}
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, 0, false, &FetchError{Cause: CauseDecode, Err: fmt.Errorf("bad base URL: %w", err)}
	}
	u = u.JoinPath("/v1/envelope")
	q := u.Query()
	if version != ^uint64(0) {
		q.Set("version", strconv.FormatUint(version, 10))
	}
	if wait > 0 {
		q.Set("wait", wait.String())
	}
	if haveSince {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, 0, false, &FetchError{Cause: CauseDecode, Err: err}
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, false, &FetchError{Cause: classify(err), Err: err}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return nil, version, false, nil
	case http.StatusOK:
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, 0, false, &FetchError{
			Cause:      CauseStatus,
			Status:     resp.StatusCode,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			Err:        fmt.Errorf("%s: %s: %s", u, resp.Status, bytes.TrimSpace(msg)),
		}
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		cause := CauseDecode
		if c := classify(err); c == CauseTimeout {
			cause = c
		}
		return nil, 0, false, &FetchError{Cause: cause, Err: fmt.Errorf("read envelope: %w", err)}
	}
	v, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil {
		return nil, 0, false, &FetchError{Cause: CauseDecode, Err: fmt.Errorf("envelope missing %s header: %w", VersionHeader, err)}
	}
	return raw, v, resp.Header.Get("Content-Type") == ContentTypeDeltaChain, nil
}

// parseRetryAfter reads an RFC 9110 delay-seconds Retry-After value
// (the HTTP-date form is ignored — this protocol only emits seconds).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// FollowStats is a snapshot of a Follower's counters: what happened,
// per cause, instead of silence. All counts are lifetime totals.
type FollowStats struct {
	// Fetches is the number of fetch attempts (including 304s).
	Fetches uint64 `json:"fetches"`
	// Installs is the number of envelopes restored into the scorer.
	Installs uint64 `json:"installs"`
	// NotModified counts 304 answers (polled while unchanged).
	NotModified uint64 `json:"not_modified"`
	// Retries counts backoff sleeps taken after a failure.
	Retries uint64 `json:"retries"`
	// DeltaInstalls counts installs that arrived as delta chains
	// (transferring only what changed); DeltaFallbacks counts delta
	// responses that could not be applied — version gap, rejected base,
	// corrupt link — and were recovered by an immediate full fetch.
	DeltaInstalls  uint64 `json:"delta_installs"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`
	// Per-cause failure counters.
	DialErrors    uint64 `json:"dial_errors"`
	TimeoutErrors uint64 `json:"timeout_errors"`
	StatusErrors  uint64 `json:"status_errors"`
	DecodeErrors  uint64 `json:"decode_errors"`
	RestoreErrors uint64 `json:"restore_errors"`
	// BreakerOpens is how many times the circuit opened.
	BreakerOpens uint64 `json:"breaker_opens"`
	// State is the circuit breaker's current state.
	State BreakerState `json:"breaker_state"`
	// InstalledVersion is the last installed envelope version
	// (HasInstalled false while nothing has installed yet).
	InstalledVersion uint64 `json:"installed_version"`
	HasInstalled     bool   `json:"has_installed"`
	// Staleness is how long ago the trainer last answered
	// successfully; Degraded mirrors Staleness()'s breaker-derived
	// verdict.
	Staleness time.Duration `json:"staleness_ns"`
	Degraded  bool          `json:"degraded"`
}

// Errors sums the per-cause failure counters.
func (s FollowStats) Errors() uint64 {
	return s.DialErrors + s.TimeoutErrors + s.StatusErrors + s.DecodeErrors + s.RestoreErrors
}

// Follower runs a replica's resilient pull loop against a trainer's
// /v1/envelope: fetch whenever the trainer's structure version has
// moved past the last installed one, stream the envelope into the
// local scorer via Restore, and absorb failures instead of spinning on
// them — exponential backoff with full jitter between retries,
// Retry-After-aware 429/503 handling, and a circuit breaker that stops
// hammering a down trainer and probes it back half-open. Every failure
// is counted per cause (FollowStats) and surfaced through OnError /
// OnStateChange, and the replica keeps serving its last installed
// snapshot throughout — degradation is observable, never silent.
type Follower struct {
	baseURL string
	sc      serve.Scorer
	cfg     FollowConfig
	br      *breaker
	rng     *rand.Rand // jitter; only touched by the Run goroutine

	// lastRaw holds the full envelope bytes of the last install — the
	// base the next ?since= delta chain is applied against. Only the Run
	// goroutine and pre-Run SeedInstalled touch it.
	lastRaw []byte

	fetches        atomic.Uint64
	installs       atomic.Uint64
	notModified    atomic.Uint64
	retries        atomic.Uint64
	deltaInstalls  atomic.Uint64
	deltaFallbacks atomic.Uint64
	dialErrs       atomic.Uint64
	timeoutErrs    atomic.Uint64
	statusErrs     atomic.Uint64
	decodeErrs     atomic.Uint64
	restoreErrs    atomic.Uint64

	installedVersion atomic.Uint64
	hasInstalled     atomic.Bool
	lastSync         atomic.Int64 // unix nanos of the last successful trainer contact
	started          time.Time
}

// NewFollower builds a Follower for baseURL installing into sc. Run
// starts the loop.
func NewFollower(baseURL string, sc serve.Scorer, cfg FollowConfig) *Follower {
	cfg = cfg.withDefaults()
	f := &Follower{
		baseURL: baseURL,
		sc:      sc,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		started: time.Now(),
	}
	f.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.OnStateChange)
	return f
}

// Stats snapshots the counters.
func (f *Follower) Stats() FollowStats {
	lag, degraded := f.Staleness()
	return FollowStats{
		Fetches:          f.fetches.Load(),
		Installs:         f.installs.Load(),
		NotModified:      f.notModified.Load(),
		Retries:          f.retries.Load(),
		DeltaInstalls:    f.deltaInstalls.Load(),
		DeltaFallbacks:   f.deltaFallbacks.Load(),
		DialErrors:       f.dialErrs.Load(),
		TimeoutErrors:    f.timeoutErrs.Load(),
		StatusErrors:     f.statusErrs.Load(),
		DecodeErrors:     f.decodeErrs.Load(),
		RestoreErrors:    f.restoreErrs.Load(),
		BreakerOpens:     f.br.Opens(),
		State:            f.br.State(),
		InstalledVersion: f.installedVersion.Load(),
		HasInstalled:     f.hasInstalled.Load(),
		Staleness:        lag,
		Degraded:         degraded,
	}
}

// State returns the circuit breaker's current state.
func (f *Follower) State() BreakerState { return f.br.State() }

// InstalledVersion returns the last installed envelope version.
func (f *Follower) InstalledVersion() (uint64, bool) {
	return f.installedVersion.Load(), f.hasInstalled.Load()
}

// SeedInstalled records an envelope installed out of band (a Bootstrap
// that already constructed the scorer) so the follow loop resumes from
// its version instead of refetching, and — given the raw envelope
// bytes — can ask the trainer for delta chains from the first poll.
// Call before Run.
func (f *Follower) SeedInstalled(v uint64, raw []byte) {
	f.lastRaw = raw
	f.installedVersion.Store(v)
	f.hasInstalled.Store(true)
}

// Staleness implements the server's StalenessSource: how long the
// trainer has been silent (time since the last successful contact, or
// since the Follower started if it never reached the trainer), and
// whether the replica is degraded (the breaker is not closed — the
// trainer is unreachable and the replica serves its last snapshot).
func (f *Follower) Staleness() (time.Duration, bool) {
	since := f.started
	if ns := f.lastSync.Load(); ns != 0 {
		since = time.Unix(0, ns)
	}
	return time.Since(since), f.br.State() != BreakerClosed
}

// count bumps the per-cause failure counter.
func (f *Follower) count(c Cause) {
	switch c {
	case CauseDial:
		f.dialErrs.Add(1)
	case CauseTimeout:
		f.timeoutErrs.Add(1)
	case CauseStatus:
		f.statusErrs.Add(1)
	case CauseDecode:
		f.decodeErrs.Add(1)
	case CauseRestore:
		f.restoreErrs.Add(1)
	}
}

// fail records one classified failure: counter, callback, breaker.
func (f *Follower) fail(c Cause, err error) {
	f.count(c)
	if f.cfg.OnError != nil {
		f.cfg.OnError(c, err)
	}
	f.br.failure()
}

// install streams raw into the scorer, draining around the restore so
// the registry stops picking this replica mid-install.
func (f *Follower) install(raw []byte, v uint64) error {
	if d := f.cfg.Drainer; d != nil {
		d.BeginDrain()
		defer d.EndDrain()
	}
	if err := f.sc.Restore(bytes.NewReader(raw)); err != nil {
		return err
	}
	f.installedVersion.Store(v)
	f.hasInstalled.Store(true)
	if f.cfg.OnInstall != nil {
		f.cfg.OnInstall(v)
	}
	return nil
}

// applyDeltaChain parses a delta-chain response body (stacked delta
// envelopes) and applies it to the last installed envelope bytes,
// returning the reconstructed head envelope — byte-identical to the
// full envelope the trainer would have served, or an error when any
// link is truncated, out of order, gapped or keyed to a different base.
func (f *Follower) applyDeltaChain(chain []byte) ([]byte, error) {
	br := bytes.NewReader(chain)
	var ds []*persist.Delta
	for br.Len() > 0 {
		d, err := persist.ReadDelta(br)
		if err != nil {
			return nil, fmt.Errorf("delta chain: %w", err)
		}
		ds = append(ds, d)
	}
	if len(ds) == 0 {
		return nil, errors.New("delta chain: empty body")
	}
	return persist.ApplyChain(f.lastRaw, ds...)
}

// backoffDelay draws the attempt-th retry delay: full jitter over an
// exponentially growing window, uniform in [0, base<<attempt) capped
// at max.
func backoffDelay(rng *rand.Rand, attempt int, base, max time.Duration) time.Duration {
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	return time.Duration(rng.Int63n(int64(d)))
}

// sleepCtx sleeps d or returns early with ctx.Err().
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Run executes the pull loop until ctx is cancelled; it only returns
// ctx.Err(). Reads served from the local scorer never fail during an
// install — that is the scorer's hot-swap contract — so a replica
// stays up through every model update and through every trainer
// outage (it keeps serving its last installed state, with Staleness
// reporting the lag).
func (f *Follower) Run(ctx context.Context) error {
	have := ^uint64(0) // sentinel: nothing installed yet
	if v, ok := f.InstalledVersion(); ok {
		have = v
	}
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !f.br.allow() {
			// Circuit open: don't hammer the trainer; re-check on the
			// poll interval until the cooldown admits a probe.
			if err := sleepCtx(ctx, f.cfg.Interval); err != nil {
				return err
			}
			continue
		}
		fctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
		var raw []byte
		var v uint64
		var isDelta bool
		var err error
		if !f.cfg.NoDelta && f.lastRaw != nil && have != ^uint64(0) {
			raw, v, isDelta, err = FetchSince(fctx, f.cfg.Client, f.baseURL, have, f.cfg.Wait, have)
		} else {
			raw, v, err = Fetch(fctx, f.cfg.Client, f.baseURL, have, f.cfg.Wait)
		}
		cancel()
		f.fetches.Add(1)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err == nil {
			f.lastSync.Store(time.Now().UnixNano())
			if raw == nil {
				f.notModified.Add(1)
			} else {
				full := raw
				if isDelta {
					head, derr := f.applyDeltaChain(raw)
					if derr != nil {
						// The chain is unusable (gap, wrong base, corrupt
						// link) but the trainer is reachable: count the
						// fallback, drop the delta base and refetch full
						// immediately — no breaker penalty, no backoff.
						f.deltaFallbacks.Add(1)
						if f.cfg.OnError != nil {
							f.cfg.OnError(CauseDecode, derr)
						}
						f.lastRaw = nil
						f.br.success()
						attempt = 0
						continue
					}
					full = head
				}
				if ierr := f.install(full, v); ierr != nil {
					f.lastRaw = nil // next round fetches full, delta base is suspect
					f.fail(CauseRestore, ierr)
					attempt++
					f.retries.Add(1)
					if serr := sleepCtx(ctx, backoffDelay(f.rng, attempt-1, f.cfg.BackoffBase, f.cfg.BackoffMax)); serr != nil {
						return serr
					}
					continue
				}
				f.installs.Add(1)
				if isDelta {
					f.deltaInstalls.Add(1)
				}
				f.lastRaw = full
				have = v
			}
			f.br.success()
			attempt = 0
			if serr := sleepCtx(ctx, f.cfg.Interval); serr != nil {
				return serr
			}
			continue
		}
		cause, retryAfter := CauseDial, time.Duration(0)
		var fe *FetchError
		if errors.As(err, &fe) {
			cause, retryAfter = fe.Cause, fe.RetryAfter
		}
		f.fail(cause, err)
		attempt++
		f.retries.Add(1)
		delay := backoffDelay(f.rng, attempt-1, f.cfg.BackoffBase, f.cfg.BackoffMax)
		if retryAfter > delay {
			delay = retryAfter
		}
		if serr := sleepCtx(ctx, delay); serr != nil {
			return serr
		}
	}
}

// Follow runs a replica's pull loop against a trainer's /v1/envelope
// until ctx is cancelled — NewFollower(...).Run(ctx) for callers that
// don't need the Follower handle (stats, staleness, breaker state).
func Follow(ctx context.Context, baseURL string, sc serve.Scorer, cfg FollowConfig) error {
	return NewFollower(baseURL, sc, cfg).Run(ctx)
}

// Bootstrap fetches the trainer's current envelope once and constructs
// a local scorer from it (sharded checkpoints reconstruct a sharded
// scorer). This is how `dmtserve -follow` starts with no local model.
// A nil client gets the shared default; the fetch is bound to ctx.
func Bootstrap(ctx context.Context, client *http.Client, baseURL string, publishEvery int) (serve.Scorer, uint64, error) {
	sc, v, _, err := BootstrapRaw(ctx, client, baseURL, publishEvery)
	return sc, v, err
}

// BootstrapRaw is Bootstrap returning also the fetched envelope's
// verbatim wire bytes, so the caller can seed a Follower's delta base
// (SeedInstalled) and the first follow poll already negotiates deltas.
func BootstrapRaw(ctx context.Context, client *http.Client, baseURL string, publishEvery int) (serve.Scorer, uint64, []byte, error) {
	if client == nil {
		client = httpClient(nil, 30*time.Second)
	}
	raw, v, err := Fetch(ctx, client, baseURL, ^uint64(0), 0)
	if err != nil {
		return nil, 0, nil, err
	}
	sc, err := serve.FromCheckpoint(bytes.NewReader(raw), publishEvery)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("follow: bootstrap envelope: %w", err)
	}
	return sc, v, raw, nil
}
