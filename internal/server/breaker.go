package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's state. The breaker protects a
// caller from hammering a failing peer: consecutive failures open the
// circuit (calls are refused locally), a cooldown later one half-open
// probe is allowed through, and its outcome closes or re-opens the
// circuit.
type BreakerState int32

const (
	// BreakerClosed passes every call (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe; success closes the circuit,
	// failure re-opens it for another cooldown.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the shared circuit-breaker core behind the Follower (one
// breaker on its trainer) and the ReplicaSet (one per replica). The
// zero value is not usable; build with newBreaker.
type breaker struct {
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time
	onChange  func(from, to BreakerState) // called outside mu-protected reads via state atomic; must not call back into the breaker

	state atomic.Int32

	mu       sync.Mutex
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    uint64
}

func newBreaker(threshold int, cooldown time.Duration, onChange func(from, to BreakerState)) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, onChange: onChange}
}

// State returns the current state without blocking on transitions.
func (b *breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Opens returns how many times the circuit has opened.
func (b *breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// set transitions the state; callers hold b.mu.
func (b *breaker) set(to BreakerState) {
	from := BreakerState(b.state.Load())
	if from == to {
		return
	}
	b.state.Store(int32(to))
	if to == BreakerOpen {
		b.opens++
		b.openedAt = b.now()
	}
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// allow reports whether a call may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe (concurrent callers are refused until that probe
// resolves via success or failure).
func (b *breaker) allow() bool {
	if b.State() == BreakerClosed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.set(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// success records a successful call: the circuit closes and the failure
// streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.set(BreakerClosed)
}

// failure records a failed call: a half-open probe re-opens the circuit
// immediately; in the closed state the streak grows and opens the
// circuit at the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.set(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.set(BreakerOpen)
		}
	}
}
