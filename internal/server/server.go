// Package server is the network serving tier over the concurrent
// scorers of internal/serve: an HTTP prediction service that turns one
// process's wait-free Scorer into something a fleet can stand behind.
// It is the process boundary the ROADMAP's "millions of users" story
// needs — everything below the wire (lock-free snapshot reads, batch
// prediction, the self-describing checkpoint envelope) already exists,
// and this package only arranges it behind endpoints:
//
//	POST /v1/predict        one row (JSON or binary); concurrent singles
//	                        are coalesced into one PredictBatch call
//	POST /v1/predict_batch  a row matrix (JSON or binary)
//	POST /v1/swap           stream a persist envelope into the live
//	                        scorer (hot model swap, zero dropped reads)
//	GET  /v1/envelope       the trainer→replica publish side: current
//	                        model as an envelope, long-poll on version
//	GET  /healthz           liveness
//	GET  /statusz           model name, schema, structure version,
//	                        publish count, queue depth, traffic counters
//
// Admission control is a bounded in-flight slot pool: prediction
// requests beyond MaxInFlight are rejected immediately with 429 and a
// Retry-After hint instead of queueing without bound, so overload
// degrades into fast, explicit backpressure rather than latency
// collapse.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/persist"
	"repro/internal/race"
	"repro/internal/serve"
	"repro/internal/stream"
)

// Wire constants of the binary row format: little-endian, a (rows, cols)
// uint32 header followed by rows*cols float64 feature values; responses
// are a uint32 row count followed by one int32 class per row. The JSON
// format is content-type application/json on the same endpoints.
const (
	// ContentTypeRows is the binary request matrix content type.
	ContentTypeRows = "application/x-repro-rows"
	// ContentTypePreds is the binary prediction response content type.
	ContentTypePreds = "application/x-repro-preds"
	// ContentTypeEnvelope is the checkpoint envelope content type served
	// by /v1/envelope and accepted by /v1/swap.
	ContentTypeEnvelope = "application/x-repro-envelope"
	// ContentTypeDeltaChain is the content type of a ?since= delta
	// response: a concatenation of REPRODLT delta envelopes that turn the
	// client's base envelope into the current head (see persist.Delta).
	ContentTypeDeltaChain = "application/x-repro-delta"
	// VersionHeader carries the structure version an envelope response
	// was captured at (and /statusz's structure_version). On a delta
	// response it is the chain's head version.
	VersionHeader = "X-Repro-Structure-Version"
	// DeltaBaseHeader is the base structure version a delta-chain
	// response must be applied against (the client's ?since= value).
	DeltaBaseHeader = "X-Repro-Delta-Base"
	// DeltaCountHeader is the number of stacked delta envelopes in a
	// delta-chain response body.
	DeltaCountHeader = "X-Repro-Delta-Count"
	// ModelHeader carries the served model's registered name.
	ModelHeader = "X-Repro-Model"
	// StalenessHeader is stamped on prediction responses from a
	// degraded replica (trainer unreachable, breaker open): how many
	// seconds the served model has been cut off from its trainer. A
	// degraded replica keeps answering — the header is the signal that
	// the answers come from a snapshot that has stopped advancing.
	StalenessHeader = "X-Repro-Staleness"
)

// Config tunes a Server. The zero value serves with the defaults noted
// on each field.
type Config struct {
	// CoalesceWindow is how long a single /v1/predict request may wait
	// for companions before its batch is flushed (default 1ms; negative
	// disables waiting — whatever is queued at dispatch time coalesces,
	// but nothing waits).
	CoalesceWindow time.Duration
	// MaxBatch caps one coalesced PredictBatch call (default 64 rows).
	MaxBatch int
	// MaxInFlight bounds concurrently admitted prediction requests
	// across /v1/predict and /v1/predict_batch (default 256). Beyond it
	// the server answers 429 with a Retry-After hint.
	MaxInFlight int
	// RetryAfter is the backpressure hint on 429 responses, rounded up
	// to whole seconds per RFC 9110 (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 64 MiB — a wide
	// ensemble envelope fits, an abusive body does not).
	MaxBodyBytes int64
	// LongPollMax caps the ?wait= duration of /v1/envelope long polls
	// (default 30s).
	LongPollMax time.Duration
	// EnvelopeHistory bounds the /v1/envelope capture history: how many
	// recent envelopes (with the deltas linking them) are kept so
	// ?since= requests can be answered with a delta chain instead of a
	// full envelope (default 8). A base older than the ring answers full.
	EnvelopeHistory int
	// Registry tunes the replica registry behind /v1/replicas
	// (heartbeat TTL, version-lag health gate).
	Registry RegistryConfig
}

func (c Config) withDefaults() Config {
	if c.CoalesceWindow == 0 {
		c.CoalesceWindow = time.Millisecond
	}
	if c.CoalesceWindow < 0 {
		c.CoalesceWindow = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.LongPollMax <= 0 {
		c.LongPollMax = 30 * time.Second
	}
	if c.EnvelopeHistory <= 0 {
		c.EnvelopeHistory = 8
	}
	c.Registry = c.Registry.withDefaults()
	return c
}

// StalenessSource reports how far the served model trails its upstream
// (the Follower implements it): the lag since the last successful
// trainer contact, and whether the replica is degraded (cut off — the
// follow breaker is open). A degraded server stamps StalenessHeader on
// prediction responses and reports degraded on /healthz and /statusz.
type StalenessSource interface {
	Staleness() (lag time.Duration, degraded bool)
}

type stalenessHolder struct{ src StalenessSource }

// Server serves prediction traffic for one serve.Scorer. Create with
// New, expose via Handler (it composes into any mux), stop with Close.
// The scorer may keep training concurrently — every endpoint goes
// through the Scorer interface's concurrency contract, and /v1/swap
// installs a new model with zero dropped reads.
type Server struct {
	scorer serve.Scorer
	cfg    Config
	mux    *http.ServeMux
	co     *coalescer
	reg    *Registry

	inflight chan struct{} // admission slots; len() is the live queue depth

	closing   chan struct{} // closed by Close; releases parked long-polls
	closeOnce sync.Once

	draining atomic.Int32                    // >0: not ready (an envelope restore is in flight)
	stale    atomic.Pointer[stalenessHolder] // optional upstream-staleness source

	started  time.Time
	served   atomic.Uint64 // rows answered across both prediction endpoints
	rejected atomic.Uint64 // 429s
	swaps    atomic.Uint64 // successful /v1/swap installs

	// Envelope cache for /v1/envelope: capturing a checkpoint costs a
	// full state serialisation, so captures are reused until the
	// structure version moves (or a swap invalidates them). envHist is
	// the bounded capture history behind ?since= delta serving.
	envMu   sync.Mutex
	envRaw  []byte
	envVer  uint64
	envSeq  uint64 // capture counter, the version surrogate for versionless models
	envHist []envEntry

	deltasServed atomic.Uint64 // ?since= requests answered with a chain
}

// envEntry is one capture in the bounded envelope history: its structure
// version, its full wire bytes, and the wire bytes of the delta envelope
// leading to it from the previous entry (nil when none could be
// computed — the ring's first entry, or a scorer whose checkpoint is not
// a single envelope, e.g. the sharded stream).
type envEntry struct {
	ver   uint64
	raw   []byte
	dwire []byte
}

// New builds a Server over the scorer. Close must be called when the
// server is retired (it stops the coalescer goroutine).
func New(sc serve.Scorer, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		scorer:   sc,
		cfg:      cfg,
		reg:      NewRegistry(cfg.Registry),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		closing:  make(chan struct{}),
		started:  time.Now(),
	}
	s.co = newCoalescer(sc, cfg.CoalesceWindow, cfg.MaxBatch, cfg.MaxInFlight)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/predict_batch", s.handlePredictBatch)
	mux.HandleFunc("POST /v1/swap", s.handleSwap)
	mux.HandleFunc("GET /v1/envelope", s.handleEnvelope)
	mux.HandleFunc("POST /v1/replicas", s.handleReplicaAnnounce)
	mux.HandleFunc("GET /v1/replicas", s.handleReplicaList)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux = mux
	return s
}

// Handler returns the server's http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the coalescer and releases any parked /v1/envelope long
// polls promptly (they answer 503), so a graceful drain is bounded by
// its deadline instead of a replica's ?wait=. In-flight coalesced
// requests are failed with 503; the HTTP server owning the handler
// shuts down separately. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closing)
		s.co.close()
	})
}

// Scorer returns the served scorer (for a co-located training loop).
func (s *Server) Scorer() serve.Scorer { return s.scorer }

// Swaps returns the number of completed hot model swaps.
func (s *Server) Swaps() uint64 { return s.swaps.Load() }

// Registry returns the server's replica registry (the trainer side of
// the fleet protocol behind /v1/replicas).
func (s *Server) Registry() *Registry { return s.reg }

// BeginDrain marks the server not-ready (an envelope restore is about
// to replace the served model): /healthz reports ready=false, the
// replica's heartbeats propagate it, and the registry health-gates the
// replica out so load balancers stop picking it. In-flight reads still
// finish — draining gates new picks, not running requests. Calls nest;
// EndDrain releases one level. The Server implements the follow
// client's Drainer.
func (s *Server) BeginDrain() { s.draining.Add(1) }

// EndDrain releases one BeginDrain level.
func (s *Server) EndDrain() { s.draining.Add(-1) }

// Ready reports serving readiness: not draining and not closing.
func (s *Server) Ready() bool {
	select {
	case <-s.closing:
		return false
	default:
	}
	return s.draining.Load() == 0
}

// SetStalenessSource wires the upstream-staleness source (a replica's
// Follower) into health reporting and the StalenessHeader stamp.
func (s *Server) SetStalenessSource(src StalenessSource) {
	s.stale.Store(&stalenessHolder{src: src})
}

// staleness reads the wired source (0, false without one).
func (s *Server) staleness() (time.Duration, bool) {
	if h := s.stale.Load(); h != nil && h.src != nil {
		return h.src.Staleness()
	}
	return 0, false
}

// stampStaleness marks responses served while degraded (see
// StalenessHeader). Call before the first body write.
func (s *Server) stampStaleness(w http.ResponseWriter) {
	if lag, degraded := s.staleness(); degraded {
		w.Header().Set(StalenessHeader, strconv.FormatFloat(lag.Seconds(), 'f', 3, 64))
	}
}

// admit claims an admission slot, or answers 429 + Retry-After and
// returns false. Callers must release() iff admit returned true.
func (s *Server) admit(w http.ResponseWriter) bool {
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		s.rejected.Add(1)
		secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, fmt.Sprintf("overloaded: %d requests in flight; retry after %ds", s.cfg.MaxInFlight, secs), http.StatusTooManyRequests)
		return false
	}
}

func (s *Server) release() { <-s.inflight }

// validateRow checks one request row against the served schema: width,
// and for categorical features a valid level code. Errors name the first
// offending row and column so the 400 locates the defect. A zero schema
// (an external model exposing none) skips validation.
func (s *Server) validateRow(i int, row []float64) error {
	schema := s.scorer.Schema()
	m := schema.NumFeatures
	if m == 0 {
		return nil
	}
	if len(row) != m {
		return fmt.Errorf("row %d has %d features, model serves %d", i, len(row), m)
	}
	if !schema.HasCategorical() {
		return nil
	}
	for j := 0; j < m; j++ {
		if card := schema.Cardinality(j); card > 0 {
			if err := stream.CheckCode(row[j], card); err != nil {
				return fmt.Errorf("row %d column %d (%s): %v", i, j, schema.FeatureName(j), err)
			}
		}
	}
	return nil
}

// --- request decoding ------------------------------------------------

type predictRequest struct {
	X     []float64 `json:"x"`
	Proba bool      `json:"proba,omitempty"`
}

type predictResponse struct {
	Y     int       `json:"y"`
	Proba []float64 `json:"proba,omitempty"`
}

type batchRequest struct {
	Rows  [][]float64 `json:"rows"`
	Proba bool        `json:"proba,omitempty"`
}

type batchResponse struct {
	Y     []int       `json:"y"`
	Proba [][]float64 `json:"proba,omitempty"`
}

// readRows decodes a request body in either wire format into a row
// matrix. Binary bodies (ContentTypeRows) carry a (rows, cols) header;
// JSON bodies are a batchRequest. The returned bool is the JSON
// request's proba flag (binary requests never ask for probabilities).
func (s *Server) readRows(w http.ResponseWriter, r *http.Request) ([][]float64, bool, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if r.Header.Get("Content-Type") == ContentTypeRows {
		rows, err := decodeBinaryRows(body)
		if err != nil {
			http.Error(w, "bad binary rows: "+err.Error(), http.StatusBadRequest)
			return nil, false, false
		}
		return rows, false, true
	}
	var req batchRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return nil, false, false
	}
	return req.Rows, req.Proba, true
}

// maxBinaryCells bounds rows*cols of a binary request so a corrupt
// header cannot demand an absurd allocation (64 MiB of float64s).
const maxBinaryCells = 8 << 20

func decodeBinaryRows(r io.Reader) ([][]float64, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("read (rows, cols) header: %w", err)
	}
	n := binary.LittleEndian.Uint32(head[:4])
	m := binary.LittleEndian.Uint32(head[4:])
	if n == 0 || m == 0 || uint64(n)*uint64(m) > maxBinaryCells {
		return nil, fmt.Errorf("implausible shape %dx%d", n, m)
	}
	flat := make([]byte, 8*int(n)*int(m))
	if _, err := io.ReadFull(r, flat); err != nil {
		return nil, fmt.Errorf("read %dx%d float64 cells: %w", n, m, err)
	}
	rows := make([][]float64, n)
	vals := make([]float64, int(n)*int(m))
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(flat[8*i:]))
	}
	for i := range rows {
		rows[i] = vals[i*int(m) : (i+1)*int(m) : (i+1)*int(m)]
	}
	return rows, nil
}

func writeBinaryPreds(w http.ResponseWriter, preds []int) {
	out := make([]byte, 4+4*len(preds))
	binary.LittleEndian.PutUint32(out, uint32(len(preds)))
	for i, y := range preds {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(int32(y)))
	}
	w.Header().Set("Content-Type", ContentTypePreds)
	w.Write(out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// --- prediction endpoints --------------------------------------------

// handlePredict answers one row. Plain predictions join the coalescer,
// so concurrent singles are served by one PredictBatch call from one
// consistent model state; probability requests go straight to Proba
// (they are not coalesced).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	binaryReq := r.Header.Get("Content-Type") == ContentTypeRows
	var x []float64
	var wantProba bool
	if binaryReq {
		rows, err := decodeBinaryRows(body)
		if err != nil {
			http.Error(w, "bad binary rows: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(rows) != 1 {
			http.Error(w, fmt.Sprintf("predict wants exactly one row, got %d (use /v1/predict_batch)", len(rows)), http.StatusBadRequest)
			return
		}
		x = rows[0]
	} else {
		var req predictRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
			return
		}
		x, wantProba = req.X, req.Proba
	}
	if err := s.validateRow(0, x); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.stampStaleness(w)
	if wantProba {
		proba := s.scorer.Proba(x, nil)
		y := argmax(proba)
		s.served.Add(1)
		writeJSON(w, predictResponse{Y: y, Proba: proba})
		return
	}
	y, err := s.co.predict(r.Context(), x)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.served.Add(1)
	if binaryReq {
		writeBinaryPreds(w, []int{y})
		return
	}
	writeJSON(w, predictResponse{Y: y})
}

func argmax(p []float64) int {
	best, arg := math.Inf(-1), 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// handlePredictBatch answers a row matrix through one PredictBatch (or
// ProbaBatch) call — one consistent model state for the whole batch.
func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	defer s.release()
	rows, wantProba, ok := s.readRows(w, r)
	if !ok {
		return
	}
	for i, row := range rows {
		if err := s.validateRow(i, row); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	s.stampStaleness(w)
	if wantProba {
		proba := s.scorer.ProbaBatch(rows, nil)
		preds := make([]int, len(proba))
		for i, p := range proba {
			preds[i] = argmax(p)
		}
		s.served.Add(uint64(len(rows)))
		writeJSON(w, batchResponse{Y: preds, Proba: proba})
		return
	}
	preds := s.scorer.PredictBatch(rows, nil)
	s.served.Add(uint64(len(rows)))
	if r.Header.Get("Content-Type") == ContentTypeRows {
		writeBinaryPreds(w, preds)
		return
	}
	writeJSON(w, batchResponse{Y: preds})
}

// --- hot swap and envelope publishing --------------------------------

// handleSwap streams a persist envelope (or a sharded per-replica
// sequence) from the request body into the live scorer. Restore
// validates everything before any state is touched and installs with
// the scorer's own consistency guarantees, so concurrent reads never
// fail and never see a half-swapped model.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// Drain around the install: readiness drops, so the registry stops
	// routing new work here while the model is replaced; in-flight
	// reads finish against the scorer's hot-swap guarantees.
	s.BeginDrain()
	err := s.scorer.Restore(body)
	s.EndDrain()
	if err != nil {
		http.Error(w, "swap rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.swaps.Add(1)
	s.invalidateEnvelope()
	v, _ := s.scorer.StructureVersion()
	writeJSON(w, map[string]any{
		"model":             s.scorer.Name(),
		"structure_version": v,
		"swaps":             s.swaps.Load(),
	})
}

// invalidateEnvelope drops the cached envelope capture and the delta
// history (after a swap: the cache key is the structure version, which a
// restored model could plausibly collide with — a stale history entry
// would then hand a follower a chain whose base CRC can never match).
func (s *Server) invalidateEnvelope() {
	s.envMu.Lock()
	s.envRaw = nil
	s.envHist = nil
	s.envMu.Unlock()
}

// envelope returns the scorer's current state as validated envelope
// bytes plus the version they were captured at. Captures are cached by
// structure version; models without one are re-captured per call with a
// monotone capture counter as the version surrogate.
func (s *Server) envelope() ([]byte, uint64, error) {
	v, hasVersion := s.scorer.StructureVersion()
	s.envMu.Lock()
	defer s.envMu.Unlock()
	if hasVersion && s.envRaw != nil && s.envVer == v {
		return s.envRaw, s.envVer, nil
	}
	// The version is read before the capture, so a concurrent trainer
	// can only make the cached bytes newer than their recorded version —
	// a follower may then fetch one redundant envelope, never a stale
	// one.
	var buf bytes.Buffer
	if err := s.scorer.Checkpoint(&buf); err != nil {
		return nil, 0, err
	}
	s.envSeq++
	if !hasVersion {
		v = s.envSeq
	}
	s.envRaw, s.envVer = buf.Bytes(), v
	if hasVersion {
		s.pushHistory(v, s.envRaw)
	}
	return s.envRaw, s.envVer, nil
}

// pushHistory appends a capture to the bounded envelope history,
// computing the delta envelope from the previous capture. Versionless
// models never reach here — their surrogate versions could not key a
// delta chain. Callers hold envMu.
func (s *Server) pushHistory(v uint64, raw []byte) {
	if n := len(s.envHist); n > 0 {
		if s.envHist[n-1].ver == v {
			return
		}
		var dwire []byte
		// A capture whose bytes are not one plain envelope (the sharded
		// scorer stacks one per replica) fails MakeDelta; the entry then
		// simply breaks the chain and ?since= falls back to full.
		if d, err := persist.MakeDelta(s.envHist[n-1].raw, raw); err == nil {
			var db bytes.Buffer
			if persist.WriteDelta(&db, d) == nil {
				dwire = db.Bytes()
			}
		}
		s.envHist = append(s.envHist, envEntry{ver: v, raw: raw, dwire: dwire})
	} else {
		s.envHist = append(s.envHist, envEntry{ver: v, raw: raw})
	}
	if max := s.cfg.EnvelopeHistory; len(s.envHist) > max {
		s.envHist = append([]envEntry(nil), s.envHist[len(s.envHist)-max:]...)
	}
}

// deltaChain returns the concatenated delta envelopes leading from the
// client's version to the history head, with the head version and link
// count. ok is false when the history cannot serve the request — the
// base was compacted out of the ring, the base is already the head, or a
// link in between has no delta — and the caller serves a full envelope.
func (s *Server) deltaChain(since uint64) (chain []byte, head uint64, count int, ok bool) {
	s.envMu.Lock()
	defer s.envMu.Unlock()
	i := -1
	for j := range s.envHist {
		if s.envHist[j].ver == since {
			i = j
			break
		}
	}
	if i < 0 || i == len(s.envHist)-1 {
		return nil, 0, 0, false
	}
	var buf bytes.Buffer
	for _, e := range s.envHist[i+1:] {
		if e.dwire == nil {
			return nil, 0, 0, false
		}
		buf.Write(e.dwire)
		count++
	}
	return buf.Bytes(), s.envHist[len(s.envHist)-1].ver, count, true
}

// handleEnvelope serves the trainer side of the replica-follow
// protocol: the current model as envelope bytes, stamped with the
// structure version. A client that passes ?version=N (its last
// installed version) gets 304 Not Modified while the version still
// equals N; with ?wait=DURATION the 304 is deferred — the handler long
// polls until the version moves or the wait expires. A client that also
// passes ?since=N (it still holds the full envelope bytes of version N)
// is answered with a delta chain when the capture history still covers
// N — ContentTypeDeltaChain, DeltaBaseHeader/DeltaCountHeader stamped —
// and with a full envelope otherwise.
func (s *Server) handleEnvelope(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	haveSince := false
	if qs := q.Get("version"); qs != "" {
		v, err := strconv.ParseUint(qs, 10, 64)
		if err != nil {
			http.Error(w, "bad version: "+err.Error(), http.StatusBadRequest)
			return
		}
		since, haveSince = v, true
	}
	var deltaBase uint64
	haveDeltaBase := false
	if qs := q.Get("since"); qs != "" {
		v, err := strconv.ParseUint(qs, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		deltaBase, haveDeltaBase = v, true
	}
	var wait time.Duration
	if qs := q.Get("wait"); qs != "" {
		d, err := time.ParseDuration(qs)
		if err != nil {
			http.Error(w, "bad wait: "+err.Error(), http.StatusBadRequest)
			return
		}
		if d > s.cfg.LongPollMax {
			d = s.cfg.LongPollMax
		}
		wait = d
	}
	deadline := time.Now().Add(wait)
	for {
		cur, hasVersion := s.scorer.StructureVersion()
		if !haveSince || !hasVersion || cur != since {
			raw, v, err := s.envelope()
			if err != nil {
				http.Error(w, "capture failed: "+err.Error(), http.StatusInternalServerError)
				return
			}
			if haveDeltaBase && hasVersion && deltaBase != v {
				if chain, head, n, ok := s.deltaChain(deltaBase); ok {
					s.deltasServed.Add(1)
					w.Header().Set("Content-Type", ContentTypeDeltaChain)
					w.Header().Set(ModelHeader, s.scorer.Name())
					w.Header().Set(VersionHeader, strconv.FormatUint(head, 10))
					w.Header().Set(DeltaBaseHeader, strconv.FormatUint(deltaBase, 10))
					w.Header().Set(DeltaCountHeader, strconv.Itoa(n))
					w.Write(chain)
					return
				}
			}
			w.Header().Set("Content-Type", ContentTypeEnvelope)
			w.Header().Set(ModelHeader, s.scorer.Name())
			w.Header().Set(VersionHeader, strconv.FormatUint(v, 10))
			w.Write(raw)
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.Header().Set(VersionHeader, strconv.FormatUint(cur, 10))
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// Poll-on-version: structural events are rare, a 50ms poll is
		// invisible next to the publish cadence and keeps the handler
		// free of cross-request condvar plumbing.
		poll := 50 * time.Millisecond
		if remaining < poll {
			poll = remaining
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Close releases parked long-polls promptly so a graceful
			// drain is bounded by its deadline, not by ?wait=.
			http.Error(w, "server closing", http.StatusServiceUnavailable)
			return
		case <-time.After(poll):
		}
	}
}

// --- health and status -----------------------------------------------

// Health is the /healthz document. Live is always true from a serving
// process (the probe reaching the handler is the liveness signal);
// Ready is false while an envelope restore drains the replica or the
// server is closing (load balancers must stop picking it); Degraded is
// true when the replica is cut off from its trainer (it keeps serving
// its last snapshot, with StalenessSeconds reporting the lag).
type Health struct {
	Live             bool    `json:"live"`
	Ready            bool    `json:"ready"`
	Degraded         bool    `json:"degraded"`
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// Health collects the live/ready/degraded verdict.
func (s *Server) Health() Health {
	lag, degraded := s.staleness()
	h := Health{Live: true, Ready: s.Ready(), Degraded: degraded}
	if degraded {
		h.StalenessSeconds = lag.Seconds()
	}
	return h
}

// handleHealthz distinguishes live from ready: the response body always
// says live (the process answers), but the status is 503 while the
// server drains an install or shuts down, so ?readiness probes and
// load balancers stop routing to it without killing the pod.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.Health()
	if !h.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, h)
}

// Status is the /statusz document (also returned by Status() for
// in-process callers, e.g. the smoke driver).
type Status struct {
	Model               string        `json:"model"`
	Schema              stream.Schema `json:"schema"`
	StructureVersion    uint64        `json:"structure_version"`
	HasStructureVersion bool          `json:"has_structure_version"`
	Publishes           uint64        `json:"publishes,omitempty"`
	ServedRows          uint64        `json:"served_rows"`
	CoalescedBatches    uint64        `json:"coalesced_batches"`
	CoalescedRows       uint64        `json:"coalesced_rows"`
	Rejected            uint64        `json:"rejected"`
	Swaps               uint64        `json:"swaps"`
	DeltasServed        uint64        `json:"deltas_served,omitempty"`
	QueueDepth          int           `json:"queue_depth"`
	MaxInFlight         int           `json:"max_in_flight"`
	MaxBatch            int           `json:"max_batch"`
	CoalesceWindowMS    float64       `json:"coalesce_window_ms"`
	UptimeSeconds       float64       `json:"uptime_seconds"`
	Ready               bool          `json:"ready"`
	Degraded            bool          `json:"degraded"`
	StalenessSeconds    float64       `json:"staleness_seconds,omitempty"`
	ReplicasTotal       int           `json:"replicas_total,omitempty"`
	ReplicasHealthy     int           `json:"replicas_healthy,omitempty"`
	// Rolling replica-lag window over recent heartbeats (see
	// Registry.LagStats): fraction announcing the trainer's current
	// version, mean version lag, and window fill.
	ReplicaFreshRate float64 `json:"replica_fresh_rate,omitempty"`
	ReplicaMeanLag   float64 `json:"replica_mean_lag,omitempty"`
	ReplicaLagWindow int     `json:"replica_lag_window,omitempty"`
	// Race is the racing meta-scorer's scoreboard (per-arm windowed
	// error, leader identity, re-race counters) when the served model
	// is a race; nil otherwise.
	Race *race.Status `json:"race,omitempty"`
}

// Status collects the live serving metadata.
func (s *Server) Status() Status {
	v, hasV := s.scorer.StructureVersion()
	st := Status{
		Model:               s.scorer.Name(),
		Schema:              s.scorer.Schema(),
		StructureVersion:    v,
		HasStructureVersion: hasV,
		ServedRows:          s.served.Load(),
		CoalescedBatches:    s.co.batches.Load(),
		CoalescedRows:       s.co.rows.Load(),
		Rejected:            s.rejected.Load(),
		Swaps:               s.swaps.Load(),
		DeltasServed:        s.deltasServed.Load(),
		QueueDepth:          len(s.inflight),
		MaxInFlight:         s.cfg.MaxInFlight,
		MaxBatch:            s.cfg.MaxBatch,
		CoalesceWindowMS:    float64(s.cfg.CoalesceWindow) / float64(time.Millisecond),
		UptimeSeconds:       time.Since(s.started).Seconds(),
		Ready:               s.Ready(),
	}
	if lag, degraded := s.staleness(); degraded {
		st.Degraded = true
		st.StalenessSeconds = lag.Seconds()
	}
	for _, rep := range s.reg.List(v, hasV) {
		st.ReplicasTotal++
		if rep.Healthy {
			st.ReplicasHealthy++
		}
	}
	if snap, ok := s.scorer.(*serve.SnapshotScorer); ok {
		st.Publishes = snap.Publishes()
	}
	if fresh, lag, n := s.reg.LagStats(); n > 0 {
		st.ReplicaFreshRate, st.ReplicaMeanLag, st.ReplicaLagWindow = fresh, lag, n
	}
	if rs, ok := s.scorer.(interface{ RaceStatus() race.Status }); ok {
		status := rs.RaceStatus()
		st.Race = &status
	}
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Status())
}

// Envelope exposes the cached capture path for in-process publishers
// (the trainer example pre-warms the cache with it).
func (s *Server) Envelope() ([]byte, uint64, error) { return s.envelope() }

// LoadEnvelope is a convenience for tests and tools: parse raw envelope
// bytes back into a classifier.
func LoadEnvelope(raw []byte) (any, error) { return persist.Load(bytes.NewReader(raw)) }
