package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synth"

	// Register the learners the tests serve.
	_ "repro/internal/hoeffding"
)

// newTrainedScorer builds a snapshot scorer over a trained VFDT on the
// SEA concept (the same setup the serve package's own tests use).
func newTrainedScorer(t testing.TB, batches int) serve.Scorer {
	t.Helper()
	schema := synth.NewSEA(100, 0.1, 1).Schema()
	s, err := serve.New(serve.Config{Model: "VFDT (MC)", Schema: schema, Mode: serve.ModeSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	gen := synth.NewSEA(batches*100, 0.1, 11)
	for i := 0; i < batches; i++ {
		b, err := stream.NextBatch(gen, 100)
		if err != nil {
			t.Fatal(err)
		}
		s.Learn(b)
	}
	return s
}

func newTestServer(t testing.TB, sc serve.Scorer, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(sc, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func seaRows(n int, seed int64) ([][]float64, []int) {
	gen := synth.NewSEA(n+100, 0, seed)
	b, err := stream.NextBatch(gen, n)
	if err != nil {
		panic(err)
	}
	return b.X, b.Y
}

func TestPredictJSONRoundTrip(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})
	X, _ := seaRows(20, 5)
	for i, x := range X {
		resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: x})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("row %d: %s", i, resp.Status)
		}
		var pr predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if want := sc.Predict(x); pr.Y != want {
			t.Fatalf("row %d: served %d, scorer says %d", i, pr.Y, want)
		}
	}
}

func TestPredictProba(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})
	X, _ := seaRows(5, 6)
	for _, x := range X {
		resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: x, Proba: true})
		var pr predictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(pr.Proba) != sc.Schema().NumClasses {
			t.Fatalf("proba has %d entries, want %d", len(pr.Proba), sc.Schema().NumClasses)
		}
		var sum float64
		for _, p := range pr.Proba {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba sums to %v", sum)
		}
	}
}

func TestPredictBatchJSONAndConsistency(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})
	X, _ := seaRows(64, 7)
	resp := postJSON(t, ts.URL+"/v1/predict_batch", batchRequest{Rows: X})
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := sc.PredictBatch(X, nil)
	if len(br.Y) != len(want) {
		t.Fatalf("%d predictions, want %d", len(br.Y), len(want))
	}
	for i := range want {
		if br.Y[i] != want[i] {
			t.Fatalf("row %d: served %d, scorer says %d", i, br.Y[i], want[i])
		}
	}
}

// encodeBinaryRows builds an application/x-repro-rows body.
func encodeBinaryRows(X [][]float64) []byte {
	n, m := len(X), len(X[0])
	out := make([]byte, 8+8*n*m)
	binary.LittleEndian.PutUint32(out, uint32(n))
	binary.LittleEndian.PutUint32(out[4:], uint32(m))
	for i, row := range X {
		for j, v := range row {
			binary.LittleEndian.PutUint64(out[8+8*(i*m+j):], math.Float64bits(v))
		}
	}
	return out
}

func decodeBinaryPreds(t *testing.T, r io.Reader) []int {
	t.Helper()
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 4 {
		t.Fatalf("short response: %d bytes", len(raw))
	}
	n := binary.LittleEndian.Uint32(raw)
	if len(raw) != int(4+4*n) {
		t.Fatalf("response framing: %d bytes for %d preds", len(raw), n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(binary.LittleEndian.Uint32(raw[4+4*i:])))
	}
	return out
}

func TestPredictBatchBinaryRoundTrip(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})
	X, _ := seaRows(32, 8)
	resp, err := http.Post(ts.URL+"/v1/predict_batch", ContentTypeRows, bytes.NewReader(encodeBinaryRows(X)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypePreds {
		t.Fatalf("Content-Type %q", ct)
	}
	got := decodeBinaryPreds(t, resp.Body)
	want := sc.PredictBatch(X, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: binary %d, scorer %d", i, got[i], want[i])
		}
	}
}

// Wrong-width rows are rejected with a descriptive 400, not served.
func TestSchemaValidationRejectsWrongWidth(t *testing.T) {
	sc := newTrainedScorer(t, 10)
	_, ts := newTestServer(t, sc, Config{})
	for _, tc := range []struct {
		url  string
		body any
	}{
		{ts.URL + "/v1/predict", predictRequest{X: []float64{1, 2}}},
		{ts.URL + "/v1/predict_batch", batchRequest{Rows: [][]float64{{1, 2, 3}, {1, 2}}}},
	} {
		resp := postJSON(t, tc.url, tc.body)
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s (%s)", tc.url, resp.Status, msg)
		}
		if !strings.Contains(string(msg), "features") {
			t.Fatalf("%s: undescriptive error %q", tc.url, msg)
		}
	}
}

// Concurrent single-row requests coalesce into PredictBatch dispatches:
// far fewer batches than rows, every answer still exact.
func TestCoalescingMergesConcurrentSingles(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	srv, ts := newTestServer(t, sc, Config{CoalesceWindow: 2 * time.Millisecond, MaxBatch: 32})
	X, _ := seaRows(128, 9)
	want := sc.PredictBatch(X, nil)

	var wg sync.WaitGroup
	errs := make(chan error, len(X))
	for i, x := range X {
		wg.Add(1)
		go func(i int, x []float64) {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: x})
			var pr predictResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if pr.Y != want[i] {
				errs <- fmt.Errorf("row %d: got %d want %d", i, pr.Y, want[i])
			}
		}(i, x)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Status()
	if st.CoalescedRows != uint64(len(X)) {
		t.Fatalf("coalesced %d rows, want %d", st.CoalescedRows, len(X))
	}
	if st.CoalescedBatches >= st.CoalescedRows {
		t.Fatalf("no coalescing happened: %d batches for %d rows", st.CoalescedBatches, st.CoalescedRows)
	}
	t.Logf("coalesced %d rows into %d batches", st.CoalescedRows, st.CoalescedBatches)
}

// blockingScorer gates PredictBatch so a test can hold requests in
// flight deliberately.
type blockingScorer struct {
	serve.Scorer
	gate chan struct{}
}

func (b *blockingScorer) PredictBatch(X [][]float64, out []int) []int {
	<-b.gate
	return b.Scorer.PredictBatch(X, out)
}

// Requests beyond MaxInFlight get an immediate 429 with a Retry-After
// hint instead of queueing without bound.
func TestBackpressure429(t *testing.T) {
	bs := &blockingScorer{Scorer: newTrainedScorer(t, 10), gate: make(chan struct{})}
	srv, ts := newTestServer(t, bs, Config{MaxInFlight: 2, CoalesceWindow: -1, RetryAfter: 3 * time.Second})
	X, _ := seaRows(3, 10)

	// Fill both admission slots with requests stuck in PredictBatch.
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(x []float64) {
			defer wg.Done()
			started <- struct{}{}
			resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: x})
			resp.Body.Close()
		}(X[i])
	}
	<-started
	<-started
	// Wait until both slots are actually claimed.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Status().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("slots never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp := postJSON(t, ts.URL+"/v1/predict", predictRequest{X: X[2]})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload answered %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	close(bs.gate)
	wg.Wait()
	if srv.Status().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

// The acceptance-criteria test: a hot swap through /v1/swap drops zero
// reads. Reader goroutines hammer /v1/predict and /v1/predict_batch
// while the model is swapped repeatedly; every response must be 200
// with a well-formed prediction.
func TestHotSwapZeroFailedReads(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{MaxInFlight: 256})

	// Capture two envelopes from differently trained models to swap
	// between.
	var envA, envB bytes.Buffer
	if err := sc.Checkpoint(&envA); err != nil {
		t.Fatal(err)
	}
	other := newTrainedScorer(t, 60)
	if err := other.Checkpoint(&envB); err != nil {
		t.Fatal(err)
	}

	X, _ := seaRows(16, 12)
	stop := make(chan struct{})
	var failures atomic.Uint64
	var reads atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				if i%2 == 0 {
					resp = postJSON(t, ts.URL+"/v1/predict", predictRequest{X: X[(g+i)%len(X)]})
				} else {
					resp = postJSON(t, ts.URL+"/v1/predict_batch", batchRequest{Rows: X})
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reads.Add(1)
			}
		}(g)
	}

	envs := [][]byte{envA.Bytes(), envB.Bytes()}
	for i := 0; i < 10; i++ {
		resp, err := http.Post(ts.URL+"/v1/swap", ContentTypeEnvelope, bytes.NewReader(envs[i%2]))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: %s (%s)", i, resp.Status, msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d of %d reads failed across 10 hot swaps", failures.Load(), reads.Load())
	}
	t.Logf("%d reads served across 10 hot swaps, zero failures", reads.Load())
}

// A corrupt envelope is rejected by /v1/swap and the live model keeps
// serving untouched.
func TestSwapRejectsCorruptEnvelope(t *testing.T) {
	sc := newTrainedScorer(t, 20)
	_, ts := newTestServer(t, sc, Config{})
	X, _ := seaRows(4, 13)
	before := sc.PredictBatch(X, nil)

	var env bytes.Buffer
	if err := sc.Checkpoint(&env); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), env.Bytes()...)
	bad[len(bad)/2] ^= 0xff
	resp, err := http.Post(ts.URL+"/v1/swap", ContentTypeEnvelope, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt swap answered %s, want 422", resp.Status)
	}
	after := sc.PredictBatch(X, nil)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("rejected swap changed the live model")
		}
	}
}

func TestStatuszAndHealthz(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}

	X, _ := seaRows(3, 14)
	postJSON(t, ts.URL+"/v1/predict_batch", batchRequest{Rows: X}).Body.Close()

	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Model != "VFDT (MC)" {
		t.Fatalf("model %q", st.Model)
	}
	if st.Schema.NumFeatures != 3 || st.Schema.NumClasses != 2 {
		t.Fatalf("schema %+v", st.Schema)
	}
	if !st.HasStructureVersion || st.StructureVersion == 0 {
		t.Fatalf("structure version missing: %+v", st)
	}
	if st.Publishes == 0 {
		t.Fatal("snapshot publish count missing from statusz")
	}
	if st.ServedRows < 3 {
		t.Fatalf("served_rows %d", st.ServedRows)
	}
	if st.MaxInFlight != 256 || st.MaxBatch != 64 {
		t.Fatalf("config defaults not surfaced: %+v", st)
	}
}

// /v1/envelope serves a loadable envelope stamped with the structure
// version, 304s while the version is unchanged, and long-polls until
// training moves it.
func TestEnvelopeVersioningAndLongPoll(t *testing.T) {
	sc := newTrainedScorer(t, 120)
	_, ts := newTestServer(t, sc, Config{})

	raw, v, err := Fetch(context.Background(), http.DefaultClient, ts.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw == nil || v == 0 {
		t.Fatalf("fetch: %d bytes, version %d", len(raw), v)
	}
	if _, err := LoadEnvelope(raw); err != nil {
		t.Fatalf("served envelope does not load: %v", err)
	}

	// Same version → 304, nil bytes.
	raw2, v2, err := Fetch(context.Background(), http.DefaultClient, ts.URL, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw2 != nil || v2 != v {
		t.Fatalf("unchanged version re-served: %d bytes, version %d", len(raw2), v2)
	}

	// Long poll: a trainer goroutine advances the structure version
	// while the fetch is parked.
	go func() {
		time.Sleep(50 * time.Millisecond)
		gen := synth.NewSEA(40000, 0.1, 99)
		for i := 0; i < 400; i++ {
			b, err := stream.NextBatch(gen, 100)
			if err != nil {
				return
			}
			sc.Learn(b)
			if cur, _ := sc.StructureVersion(); cur != v {
				return
			}
		}
	}()
	raw3, v3, err := Fetch(context.Background(), http.DefaultClient, ts.URL, v, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if raw3 == nil {
		t.Fatal("long poll expired without the version moving (no split in 40k rows?)")
	}
	if v3 == v {
		t.Fatalf("long poll released at unchanged version %d", v3)
	}
	if _, err := LoadEnvelope(raw3); err != nil {
		t.Fatalf("long-polled envelope does not load: %v", err)
	}
}

// The replica-follow protocol end to end: a trainer process serves
// /v1/envelope; a replica bootstraps from it, follows, and serves
// identical predictions; when the trainer's model advances, the
// replica converges to the new version with zero read downtime.
func TestFollowReplicaConvergence(t *testing.T) {
	trainer := newTrainedScorer(t, 120)
	_, trainerTS := newTestServer(t, trainer, Config{})

	replica, v0, err := Bootstrap(context.Background(), nil, trainerTS.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v0 == 0 {
		t.Fatal("bootstrap version 0")
	}
	X, _ := seaRows(32, 15)
	if want, got := trainer.PredictBatch(X, nil), replica.PredictBatch(X, nil); !equalInts(want, got) {
		t.Fatal("bootstrapped replica disagrees with trainer")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	installed := make(chan uint64, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Follow(ctx, trainerTS.URL, replica, FollowConfig{
			Interval:  20 * time.Millisecond,
			Wait:      2 * time.Second,
			OnInstall: func(v uint64) { installed <- v },
		})
	}()

	// Replica reads must not fail while envelopes install underneath.
	readStop := make(chan struct{})
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for {
			select {
			case <-readStop:
				return
			default:
			}
			if got := replica.PredictBatch(X, nil); len(got) != len(X) {
				t.Error("replica read failed mid-install")
				return
			}
		}
	}()

	// Advance the trainer until its structure version moves.
	gen := synth.NewSEA(40000, 0.1, 77)
	var vTrained uint64
	for i := 0; i < 400; i++ {
		b, err := stream.NextBatch(gen, 100)
		if err != nil {
			t.Fatal(err)
		}
		trainer.Learn(b)
		if cur, _ := trainer.StructureVersion(); cur != v0 {
			vTrained = cur
			break
		}
	}
	if vTrained == 0 {
		t.Fatal("trainer version never moved")
	}

	// Wait for the replica to install a version past v0.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case v := <-installed:
			if v != v0 {
				goto converged
			}
		case <-deadline:
			t.Fatal("replica never converged past the bootstrap version")
		}
	}
converged:
	close(readStop)
	<-readDone
	cancel()
	<-done

	// The replica now predicts from the trainer's advanced state: its
	// predictions match a model loaded from the trainer's live
	// envelope.
	raw, _, err := Fetch(context.Background(), http.DefaultClient, trainerTS.URL, ^uint64(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := serve.FromCheckpoint(bytes.NewReader(raw), 1)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := ref.PredictBatch(X, nil), replica.PredictBatch(X, nil); !equalInts(want, got) {
		t.Fatal("converged replica disagrees with trainer envelope")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FromCheckpoint reconstructs a sharded scorer from its counted
// envelope sequence, and the server serves it like any other.
func TestShardedEnvelopeServes(t *testing.T) {
	schema := synth.NewSEA(100, 0.1, 1).Schema()
	sh, err := serve.New(serve.Config{Model: "VFDT (MC)", Schema: schema, Mode: serve.ModeSharded, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := synth.NewSEA(4000, 0.1, 21)
	for i := 0; i < 40; i++ {
		b, err := stream.NextBatch(gen, 100)
		if err != nil {
			t.Fatal(err)
		}
		sh.Learn(b)
	}
	var env bytes.Buffer
	if err := sh.Checkpoint(&env); err != nil {
		t.Fatal(err)
	}
	restored, err := serve.FromCheckpoint(bytes.NewReader(env.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	X, _ := seaRows(16, 22)
	if want, got := sh.PredictBatch(X, nil), restored.PredictBatch(X, nil); !equalInts(want, got) {
		t.Fatal("sharded FromCheckpoint disagrees with the original")
	}
	_, ts := newTestServer(t, restored, Config{})
	resp := postJSON(t, ts.URL+"/v1/predict_batch", batchRequest{Rows: X})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.Status)
	}
}
