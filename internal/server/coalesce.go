package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// ErrClosed is returned to predictions still pending when the server is
// closed.
var ErrClosed = errors.New("server: closed")

// predictJob is one single-row prediction waiting to join a coalesced
// batch. done is closed by the dispatcher after y (or err) is set.
type predictJob struct {
	x    []float64
	y    int
	err  error
	done chan struct{}
}

// coalescer turns concurrent single-row predictions into PredictBatch
// calls. One dispatcher goroutine collects jobs: the first arrival
// opens a batch window; the batch is flushed when it reaches maxBatch
// rows or the window expires, whichever is first. A zero window means
// "whatever is already queued at dispatch time" — arrivals still
// coalesce under load, but an isolated request never waits.
//
// The point is not only throughput (one snapshot load / lock
// acquisition amortised over the batch — the scorer's batch path is
// exactly the hot path PR 4 tuned) but consistency: every row in a
// coalesced batch is answered from one model state even while a
// trainer thread keeps mutating the live model.
type coalescer struct {
	scorer   serve.Scorer
	window   time.Duration
	maxBatch int

	jobs      chan *predictJob
	stop      chan struct{} // closed by close(): dispatcher begins shutdown
	stopped   chan struct{} // closed by run() after the final queue drain
	closeOnce sync.Once

	batches atomic.Uint64 // PredictBatch dispatches issued
	rows    atomic.Uint64 // rows answered through those dispatches
}

func newCoalescer(sc serve.Scorer, window time.Duration, maxBatch, queue int) *coalescer {
	c := &coalescer{
		scorer:   sc,
		window:   window,
		maxBatch: maxBatch,
		// The job queue mirrors the admission bound: admitted requests
		// always find a slot, so enqueueing never blocks a handler for
		// long, and the select below stays honest.
		jobs:    make(chan *predictJob, queue+maxBatch),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *coalescer) close() { c.closeOnce.Do(func() { close(c.stop) }) }

// predict submits one row and waits for its coalesced answer.
func (c *coalescer) predict(ctx context.Context, x []float64) (int, error) {
	j := &predictJob{x: x, done: make(chan struct{})}
	select {
	case c.jobs <- j:
	case <-c.stop:
		return 0, ErrClosed
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	// An enqueued job is normally resolved by the dispatcher, but the
	// buffered jobs channel leaves a shutdown race: predict can win the
	// enqueue select against <-c.stop after run()'s final drain has
	// already emptied the queue, and then nothing will ever close done.
	// stopped (closed strictly after that drain) bounds the wait: once
	// it fires, one non-blocking recheck of done tells answered from
	// abandoned.
	select {
	case <-j.done:
		return j.y, j.err
	case <-c.stopped:
		select {
		case <-j.done:
			return j.y, j.err
		default:
			return 0, ErrClosed
		}
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// run is the dispatcher loop.
func (c *coalescer) run() {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		// Fail whatever is still queued so no handler waits forever,
		// then close stopped so late enqueuers stop waiting too.
		for {
			select {
			case j := <-c.jobs:
				j.err = ErrClosed
				close(j.done)
			default:
				close(c.stopped)
				return
			}
		}
	}()
	batch := make([]*predictJob, 0, c.maxBatch)
	X := make([][]float64, 0, c.maxBatch)
	preds := make([]int, 0, c.maxBatch)
	for {
		// Block for the first job of the next batch.
		var first *predictJob
		select {
		case first = <-c.jobs:
		case <-c.stop:
			return
		}
		batch = append(batch[:0], first)

		// Drain whatever is already queued, for free.
		for len(batch) < c.maxBatch {
			select {
			case j := <-c.jobs:
				batch = append(batch, j)
				continue
			default:
			}
			break
		}

		// Under a positive window, wait out the remainder for
		// stragglers — this is the latency the caller trades for
		// batch efficiency.
		if c.window > 0 && len(batch) < c.maxBatch {
			if timer == nil {
				timer = time.NewTimer(c.window)
			} else {
				timer.Reset(c.window)
			}
		fill:
			for len(batch) < c.maxBatch {
				select {
				case j := <-c.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break fill
				case <-c.stop:
					// Flush what we have before exiting: these
					// callers were admitted, they get answers.
					c.flush(batch, X, preds)
					return
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}

		c.flush(batch, X, preds)
	}
}

// flush answers one collected batch through a single PredictBatch call.
func (c *coalescer) flush(batch []*predictJob, X [][]float64, preds []int) {
	if len(batch) == 0 {
		return
	}
	X = X[:0]
	for _, j := range batch {
		X = append(X, j.x)
	}
	preds = c.scorer.PredictBatch(X, preds[:0])
	c.batches.Add(1)
	c.rows.Add(uint64(len(batch)))
	for i, j := range batch {
		j.y = preds[i]
		close(j.done)
	}
}
