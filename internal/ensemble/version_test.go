package ensemble

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/synth"
)

// TestStructureVersionMonotone pins the StructureVersioner contract the
// publish-on-change serving mode relies on: the version never decreases,
// and every member swap/reset strictly increases it — even though a
// fresh member tree restarts its own split count at zero (replaced
// trees' versions are carried over, so the sum cannot stall or dip).
func TestStructureVersionMonotone(t *testing.T) {
	// An abruptly drifting stream provokes detector-driven member swaps.
	gen := synth.NewSEA(400_000, 0.2, 3)
	check := func(name string, c interface {
		Learn(stream.Batch)
		StructureVersion() uint64
	}, swaps func() int) {
		last := c.StructureVersion()
		lastSwaps := swaps()
		for i := 0; i < 600; i++ {
			b, err := stream.NextBatch(gen, 64)
			if err != nil {
				t.Fatal(err)
			}
			c.Learn(b)
			v := c.StructureVersion()
			if v < last {
				t.Fatalf("%s: StructureVersion decreased %d -> %d at batch %d", name, last, v, i)
			}
			if s := swaps(); s != lastSwaps {
				if v == last {
					t.Fatalf("%s: member swap at batch %d left StructureVersion unchanged at %d", name, i, v)
				}
				lastSwaps = s
			}
			last = v
		}
		if lastSwaps == 0 {
			t.Skipf("%s: no swaps provoked; monotonicity covered but swap-bump not exercised", name)
		}
	}
	arf := NewARF(Config{Size: 3, Seed: 3, DriftDelta: 0.05, WarnDelta: 0.1}, gen.Schema())
	check("ARF", arf, arf.Swaps)
	lb := NewLevBag(Config{Size: 3, Seed: 3, DriftDelta: 0.05}, gen.Schema())
	check("LevBag", lb, lb.Resets)
}
