// Package ensemble implements the two Hoeffding-tree ensembles of the
// paper's comparison (Section VI-C): an Adaptive Random Forest [42] and a
// Leveraging Bagging ensemble [27], both with 3 VFDT weak learners
// configured like the stand-alone VFDT (MC) model.
package ensemble

import (
	"math"
	"math/rand"

	"repro/internal/drift"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/stream"
)

// poisson draws from Poisson(lambda) via Knuth's method (lambda is small).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Config holds the shared ensemble hyperparameters.
type Config struct {
	// Size is the number of weak learners (paper: 3).
	Size int
	// Lambda is the Poisson weighting intensity (customary 6).
	Lambda float64
	// Tree configures the weak learners (VFDT MC per the paper).
	Tree hoeffding.Config
	// WarnDelta and DriftDelta are the ADWIN confidences of the warning
	// and drift detectors (ARF defaults 0.01 and 0.001).
	WarnDelta  float64
	DriftDelta float64
	// Seed drives the Poisson sampling and subspace selection.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 3
	}
	if c.Lambda <= 0 {
		c.Lambda = 6
	}
	if c.WarnDelta <= 0 {
		c.WarnDelta = 0.01
	}
	if c.DriftDelta <= 0 {
		c.DriftDelta = 0.001
	}
	c.Tree.LeafMode = hoeffding.MajorityClass
	c.Tree = c.Tree.WithDefaults()
	return c
}

// arfMember is one Adaptive Random Forest learner with its detectors and
// optional background tree.
type arfMember struct {
	tree       *hoeffding.Tree
	background *hoeffding.Tree
	warn       *drift.ADWIN
	det        *drift.ADWIN
}

// ARF is the Adaptive Random Forest: Poisson(lambda) online bagging,
// per-leaf random feature subspaces of size round(sqrt(m))+1, a warning
// detector that starts a background tree, and a drift detector that swaps
// it in.
type ARF struct {
	cfg     Config
	schema  stream.Schema
	members []*arfMember
	rng     *rand.Rand
	swaps   int
}

// NewARF returns an Adaptive Random Forest for the schema.
func NewARF(cfg Config, schema stream.Schema) *ARF {
	cfg = cfg.withDefaults()
	if cfg.Tree.SubspaceSize <= 0 {
		cfg.Tree.SubspaceSize = int(math.Round(math.Sqrt(float64(schema.NumFeatures)))) + 1
	}
	a := &ARF{cfg: cfg, schema: schema, rng: rand.New(rand.NewSource(cfg.Seed + 6))}
	for i := 0; i < cfg.Size; i++ {
		a.members = append(a.members, &arfMember{
			tree: a.newTree(int64(i)),
			warn: drift.NewADWIN(cfg.WarnDelta),
			det:  drift.NewADWIN(cfg.DriftDelta),
		})
	}
	return a
}

func (a *ARF) newTree(salt int64) *hoeffding.Tree {
	cfg := a.cfg.Tree
	cfg.Seed = a.cfg.Seed*31 + salt
	return hoeffding.New(cfg, a.schema)
}

// Name implements model.Classifier.
func (a *ARF) Name() string { return "Forest Ens." }

// Learn implements model.Classifier.
func (a *ARF) Learn(b stream.Batch) {
	for i, x := range b.X {
		a.learnOne(x, b.Y[i])
	}
}

func (a *ARF) learnOne(x []float64, y int) {
	for i, m := range a.members {
		errSignal := 0.0
		if m.tree.Predict(x) != y {
			errSignal = 1
		}
		if m.warn.Add(errSignal) && m.background == nil {
			m.background = a.newTree(int64(i)*101 + int64(m.warn.NumDetections()))
		}
		if m.det.Add(errSignal) {
			if m.background != nil {
				m.tree = m.background
				m.background = nil
			} else {
				m.tree = a.newTree(int64(i)*131 + int64(m.det.NumDetections()))
			}
			m.warn.Reset()
			m.det.Reset()
			a.swaps++
		}
		w := poisson(a.rng, a.cfg.Lambda)
		if w == 0 {
			continue
		}
		m.tree.LearnOne(x, y, float64(w))
		if m.background != nil {
			m.background.LearnOne(x, y, float64(w))
		}
	}
}

// Predict implements model.Classifier with accuracy-weighted voting: each
// member votes with weight 1 minus its monitored error rate.
func (a *ARF) Predict(x []float64) int {
	votes := make([]float64, a.schema.NumClasses)
	for _, m := range a.members {
		w := 1 - m.warn.Mean()
		if w <= 0 {
			w = 0.01
		}
		votes[m.tree.Predict(x)] += w
	}
	return argmax(votes)
}

// Complexity implements model.Classifier, summing the deployed members.
func (a *ARF) Complexity() model.Complexity {
	var total model.Complexity
	for _, m := range a.members {
		total = total.Add(m.tree.Complexity())
	}
	return total
}

// Swaps returns the number of member replacements so far.
func (a *ARF) Swaps() int { return a.swaps }

// LevBag is the Leveraging Bagging ensemble: Poisson(lambda) input
// weighting with one ADWIN per member; when a member's ADWIN flags change,
// that member is reset.
type LevBag struct {
	cfg    Config
	schema stream.Schema
	trees  []*hoeffding.Tree
	mons   []*drift.ADWIN
	rng    *rand.Rand
	resets int
}

// NewLevBag returns a Leveraging Bagging ensemble for the schema.
func NewLevBag(cfg Config, schema stream.Schema) *LevBag {
	cfg = cfg.withDefaults()
	l := &LevBag{cfg: cfg, schema: schema, rng: rand.New(rand.NewSource(cfg.Seed + 7))}
	for i := 0; i < cfg.Size; i++ {
		l.trees = append(l.trees, l.newTree(int64(i)))
		l.mons = append(l.mons, drift.NewADWIN(0.002))
	}
	return l
}

func (l *LevBag) newTree(salt int64) *hoeffding.Tree {
	cfg := l.cfg.Tree
	cfg.SubspaceSize = 0 // leveraging bagging uses all features
	cfg.Seed = l.cfg.Seed*37 + salt
	return hoeffding.New(cfg, l.schema)
}

// Name implements model.Classifier.
func (l *LevBag) Name() string { return "Bagging Ens." }

// Learn implements model.Classifier.
func (l *LevBag) Learn(b stream.Batch) {
	for i, x := range b.X {
		l.learnOne(x, b.Y[i])
	}
}

func (l *LevBag) learnOne(x []float64, y int) {
	changed := false
	for i, tr := range l.trees {
		errSignal := 0.0
		if tr.Predict(x) != y {
			errSignal = 1
		}
		if l.mons[i].Add(errSignal) {
			changed = true
		}
		w := poisson(l.rng, l.cfg.Lambda)
		if w > 0 {
			tr.LearnOne(x, y, float64(w))
		}
	}
	if !changed {
		return
	}
	// Leveraging Bagging resets the member with the highest monitored
	// error estimate when any detector fires (Bifet et al. [27]).
	worst := 0
	for i := range l.trees {
		if l.mons[i].Mean() > l.mons[worst].Mean() {
			worst = i
		}
	}
	l.resets++
	l.trees[worst] = l.newTree(int64(worst)*151 + int64(l.resets))
	l.mons[worst].Reset()
}

// Predict implements model.Classifier by majority vote.
func (l *LevBag) Predict(x []float64) int {
	votes := make([]float64, l.schema.NumClasses)
	for _, tr := range l.trees {
		votes[tr.Predict(x)]++
	}
	return argmax(votes)
}

// Complexity implements model.Classifier, summing the members.
func (l *LevBag) Complexity() model.Complexity {
	var total model.Complexity
	for _, tr := range l.trees {
		total = total.Add(tr.Complexity())
	}
	return total
}

// Resets returns the number of member resets so far.
func (l *LevBag) Resets() int { return l.resets }

func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
