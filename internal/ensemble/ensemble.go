// Package ensemble implements the two Hoeffding-tree ensembles of the
// paper's comparison (Section VI-C): an Adaptive Random Forest [42] and a
// Leveraging Bagging ensemble [27], both with 3 VFDT weak learners
// configured like the stand-alone VFDT (MC) model.
//
// Learning is member-major: every member owns its trees, detectors and
// RNG stream, processes each incoming batch independently, and any
// cross-member coupling (Leveraging Bagging's worst-member reset) happens
// in a serial step after the batch. Because member state is disjoint,
// Learn can fan the members out across a bounded worker pool
// (Config.Workers) and parallel runs are byte-identical to sequential
// runs under a fixed Config.Seed — the same guarantee eval.Runner gives
// across experiment cells.
package ensemble

import (
	"math"
	"math/rand"

	"repro/internal/drift"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// poissonNormalCutoff is where poisson switches from Knuth's product
// method to a normal approximation. Knuth's loop runs ~lambda iterations,
// and its exp(-lambda) floor underflows to zero near lambda ≈ 746 — the
// loop would then spin until the running product denormal-underflows.
const poissonNormalCutoff = 30

// poissonSampler draws Poisson(lambda) variates with the lambda-dependent
// constants precomputed — the ensembles draw once per member-instance, so
// re-deriving exp(-lambda) per draw was measurable. The zero-size value
// is read-only after construction and safe to share across member
// goroutines.
type poissonSampler struct {
	lambda  float64
	expNegL float64 // exp(-lambda); unused above the normal cutoff
	sqrtL   float64
}

func newPoissonSampler(lambda float64) poissonSampler {
	s := poissonSampler{lambda: lambda}
	if lambda > 0 {
		s.sqrtL = math.Sqrt(lambda)
		if lambda < poissonNormalCutoff {
			s.expNegL = math.Exp(-lambda)
		}
	}
	return s
}

// draw samples Poisson(lambda): Knuth's product method for small lambda,
// a rounded N(lambda, lambda) draw (clamped at zero) above the cutoff,
// where the approximation error is far below the sampling noise.
func (s poissonSampler) draw(rng *rand.Rand) int {
	if s.lambda <= 0 {
		return 0
	}
	if s.lambda >= poissonNormalCutoff {
		k := math.Round(s.lambda + s.sqrtL*rng.NormFloat64())
		if k < 0 {
			return 0
		}
		return int(k)
	}
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= s.expNegL {
			return k
		}
		k++
	}
}

// poisson draws one Poisson(lambda) variate. Hot paths hold a
// poissonSampler instead.
func poisson(rng *rand.Rand, lambda float64) int {
	return newPoissonSampler(lambda).draw(rng)
}

// Config holds the shared ensemble hyperparameters.
type Config struct {
	// Size is the number of weak learners (paper: 3).
	Size int
	// Lambda is the Poisson weighting intensity (customary 6).
	Lambda float64
	// Tree configures the weak learners (VFDT MC per the paper).
	Tree hoeffding.Config
	// WarnDelta and DriftDelta are the ADWIN confidences of the warning
	// and drift detectors (ARF defaults 0.01 and 0.001). Leveraging
	// Bagging has no warning stage and uses DriftDelta alone for its
	// member monitors (default 0.002, the customary ADWIN delta).
	WarnDelta  float64
	DriftDelta float64
	// Workers bounds the member-learning worker pool: Learn fans the
	// members across min(Workers, Size) goroutines. 0 uses GOMAXPROCS;
	// 1 learns sequentially. The parallel schedule never changes
	// results (see the package comment).
	Workers int
	// Seed drives the Poisson sampling and subspace selection. Each
	// member derives its own RNG stream from it.
	Seed int64
}

// Default ADWIN confidences: ARF's warning/drift detector pair and
// Leveraging Bagging's single member monitor.
const (
	defaultWarnDelta   = 0.01
	defaultARFDrift    = 0.001
	defaultLevBagDrift = 0.002
)

// withDefaults fills unset fields; driftDefault is the ensemble's own
// DriftDelta default (the two ensembles differ).
func (c Config) withDefaults(driftDefault float64) Config {
	if c.Size <= 0 {
		c.Size = 3
	}
	if c.Lambda <= 0 {
		c.Lambda = 6
	}
	if c.WarnDelta <= 0 {
		c.WarnDelta = defaultWarnDelta
	}
	if c.DriftDelta <= 0 {
		c.DriftDelta = driftDefault
	}
	c.Tree.LeafMode = hoeffding.MajorityClass
	c.Tree = c.Tree.WithDefaults()
	return c
}

// voteSlice returns a zeroed vote accumulator of length c, backed by the
// caller's stack buffer when it fits (see voteBufClasses).
func voteSlice(buf *[voteBufClasses]float64, c int) []float64 {
	if c <= voteBufClasses {
		return buf[:c]
	}
	return make([]float64, c)
}

// voteBufClasses is the class count served by the stack-allocated voting
// buffer of Predict. Predict runs under a Scorer's read lock with any
// number of concurrent readers, so it cannot reuse ensemble-owned
// scratch; a stack buffer keeps it both race-free and allocation-free.
const voteBufClasses = 16

// minVote is the floor vote weight of a member whose recent accuracy is
// unknown or worse than chance.
const minVote = 0.01

// minVoteEvidence is the observation weight a member must accumulate
// since its last swap before its accuracy estimate drives its vote.
const minVoteEvidence = 10

// arfMember is one Adaptive Random Forest learner with its detectors,
// optional background tree, private RNG stream and post-swap accuracy
// tally. All of it is member-private: Learn goroutines never share state.
type arfMember struct {
	id         int
	rng        *rand.Rand
	src        *rng.Source // counted source behind rng, for checkpointing
	tree       *hoeffding.Tree
	background *hoeffding.Tree
	warn       *drift.ADWIN
	det        *drift.ADWIN
	swaps      int
	// retiredVersion accumulates the structure versions of replaced
	// member trees, keeping the ensemble's StructureVersion monotone: a
	// fresh tree restarts its own split count at zero, so without the
	// carry-over a swap could leave the summed version unchanged (or
	// lower) and publish-on-change serving would miss the event.
	retiredVersion uint64
	// Error tally since the last swap; drives the vote weight so a
	// freshly swapped (largely untrained) member carries almost no vote
	// until it re-earns it.
	errSince  float64
	seenSince float64
}

// voteWeight returns one minus the member's error rate since its last
// swap, floored at minVote; members without enough post-swap evidence
// also vote at the floor.
func (m *arfMember) voteWeight() float64 {
	if m.seenSince < minVoteEvidence {
		return minVote
	}
	w := 1 - m.errSince/m.seenSince
	if w < minVote {
		w = minVote
	}
	return w
}

// ARF is the Adaptive Random Forest: Poisson(lambda) online bagging,
// per-leaf random feature subspaces of size round(sqrt(m))+1, a warning
// detector that starts a background tree, and a drift detector that swaps
// it in.
type ARF struct {
	cfg     Config
	schema  stream.Schema
	members []*arfMember
	pois    poissonSampler
}

// NewARF returns an Adaptive Random Forest for the schema.
func NewARF(cfg Config, schema stream.Schema) *ARF {
	cfg = cfg.withDefaults(defaultARFDrift)
	if cfg.Tree.SubspaceSize <= 0 {
		cfg.Tree.SubspaceSize = int(math.Round(math.Sqrt(float64(schema.NumFeatures)))) + 1
	}
	a := &ARF{cfg: cfg, schema: schema, pois: newPoissonSampler(cfg.Lambda)}
	for i := 0; i < cfg.Size; i++ {
		m := &arfMember{
			id:   i,
			tree: a.newTree(int64(i)),
			warn: drift.NewADWIN(cfg.WarnDelta),
			det:  drift.NewADWIN(cfg.DriftDelta),
		}
		m.rng, m.src = rng.New(cfg.Seed*31 + int64(i)*1009 + 6)
		a.members = append(a.members, m)
	}
	return a
}

// Schema returns the stream schema the ensemble was built for.
func (a *ARF) Schema() stream.Schema { return a.schema }

func (a *ARF) newTree(salt int64) *hoeffding.Tree {
	cfg := a.cfg.Tree
	cfg.Seed = a.cfg.Seed*31 + salt
	return hoeffding.New(cfg, a.schema)
}

// Name implements model.Classifier.
func (a *ARF) Name() string { return "Forest Ens." }

// Learn implements model.Classifier, fanning the members across the
// worker pool; each member consumes the whole batch with its own RNG
// stream, so the result does not depend on Workers.
func (a *ARF) Learn(b stream.Batch) {
	forEachMember(a.cfg.Workers, len(a.members), func(i int) {
		m := a.members[i]
		for r, x := range b.X {
			a.learnMemberOne(m, x, b.Y[r])
		}
	})
}

// learnMemberOne advances one member by one instance: a Poisson-weighted
// test-then-train tree update (one traversal via PredictLearnOne in the
// common no-background case), then the pre-learn error signal feeds both
// detectors. Detector-triggered replacements take effect from the next
// instance. Steady state allocates nothing.
func (a *ARF) learnMemberOne(m *arfMember, x []float64, y int) {
	w := a.pois.draw(m.rng)
	var pred int
	switch {
	case w > 0 && m.background == nil:
		pred = m.tree.PredictLearnOne(x, y, float64(w))
	case w > 0:
		pred = m.tree.Predict(x)
		m.tree.LearnOne(x, y, float64(w))
		m.background.LearnOne(x, y, float64(w))
	default:
		pred = m.tree.Predict(x)
	}
	errSignal := 0.0
	if pred != y {
		errSignal = 1
	}
	m.errSince += errSignal
	m.seenSince++
	if m.warn.Add(errSignal) && m.background == nil {
		m.background = a.newTree(int64(m.id)*101 + int64(m.warn.NumDetections()))
	}
	if m.det.Add(errSignal) {
		m.retiredVersion += m.tree.StructureVersion()
		if m.background != nil {
			m.tree, m.background = m.background, nil
		} else {
			m.tree = a.newTree(int64(m.id)*131 + int64(m.det.NumDetections()))
		}
		m.warn.Reset()
		m.det.Reset()
		m.swaps++
		m.errSince, m.seenSince = 0, 0
	}
}

// Predict implements model.Classifier with accuracy-weighted voting: each
// member votes with one minus its monitored error rate since its last
// swap (so freshly swapped members barely vote until they re-earn
// weight). Votes accumulate in a stack buffer — see voteBufClasses.
func (a *ARF) Predict(x []float64) int {
	var buf [voteBufClasses]float64
	votes := voteSlice(&buf, a.schema.NumClasses)
	for _, m := range a.members {
		votes[m.tree.Predict(x)] += m.voteWeight()
	}
	return argmax(votes)
}

// Complexity implements model.Classifier, summing the deployed members.
func (a *ARF) Complexity() model.Complexity {
	var total model.Complexity
	for _, m := range a.members {
		total = total.Add(m.tree.Complexity())
	}
	return total
}

// ensembleSnapshot is the frozen serving view of either ensemble: member
// tree snapshots plus the vote weights captured at publish time.
type ensembleSnapshot struct {
	name    string
	comp    model.Complexity
	trees   []model.Snapshot
	weights []float64
	classes int
}

// Predict votes the frozen members with their captured weights, through
// the same stack buffer as the live ensembles.
func (s *ensembleSnapshot) Predict(x []float64) int {
	var buf [voteBufClasses]float64
	votes := voteSlice(&buf, s.classes)
	for i, t := range s.trees {
		votes[t.Predict(x)] += s.weights[i]
	}
	return argmax(votes)
}

// Complexity implements model.Snapshot with the capture-time complexity.
func (s *ensembleSnapshot) Complexity() model.Complexity { return s.comp }

// Name implements model.Snapshot.
func (s *ensembleSnapshot) Name() string { return s.name }

// Snapshot implements model.Snapshotter: frozen member trees voting with
// the error-since-swap weights at capture time. Sharing is
// member-granular: each member tree publishes copy-on-write, so only the
// subtrees that member's learning touched since the last publish
// re-freeze, and the capture-time complexity is summed from the frozen
// members' O(1) counts instead of re-walking every live tree.
func (a *ARF) Snapshot() model.Snapshot {
	s := &ensembleSnapshot{name: a.Name(), classes: a.schema.NumClasses}
	for _, m := range a.members {
		ts := m.tree.Snapshot()
		s.trees = append(s.trees, ts)
		s.weights = append(s.weights, m.voteWeight())
		s.comp = s.comp.Add(ts.Complexity())
	}
	return s
}

// Swaps returns the number of member replacements so far.
func (a *ARF) Swaps() int {
	total := 0
	for _, m := range a.members {
		total += m.swaps
	}
	return total
}

// StructureVersion implements model.StructureVersioner: the deployed
// member trees' structure versions plus the member swap count, with
// replaced trees' final versions carried over (retiredVersion) so the
// counter never decreases and every swap moves it.
func (a *ARF) StructureVersion() uint64 {
	v := uint64(a.Swaps())
	for _, m := range a.members {
		v += m.retiredVersion + m.tree.StructureVersion()
	}
	return v
}

// lbMember is one Leveraging Bagging learner: a full-feature VFDT, its
// ADWIN monitor, a private RNG stream and the batch-local detection flag
// consumed by the serial coupling step.
type lbMember struct {
	id    int
	rng   *rand.Rand
	src   *rng.Source // counted source behind rng, for checkpointing
	tree  *hoeffding.Tree
	mon   *drift.ADWIN
	fired bool
	// retiredVersion carries replaced trees' structure versions so the
	// ensemble version stays monotone across resets (see arfMember).
	retiredVersion uint64
}

// LevBag is the Leveraging Bagging ensemble: Poisson(lambda) input
// weighting with one ADWIN per member; when a member's ADWIN flags
// change, the member with the worst monitored error is reset (at batch
// granularity — see Learn).
type LevBag struct {
	cfg     Config
	schema  stream.Schema
	members []*lbMember
	pois    poissonSampler
	resets  int
}

// NewLevBag returns a Leveraging Bagging ensemble for the schema. The
// member monitors use Config.DriftDelta, defaulting to ADWIN's customary
// 0.002 when unset.
func NewLevBag(cfg Config, schema stream.Schema) *LevBag {
	cfg = cfg.withDefaults(defaultLevBagDrift)
	l := &LevBag{cfg: cfg, schema: schema, pois: newPoissonSampler(cfg.Lambda)}
	for i := 0; i < cfg.Size; i++ {
		m := &lbMember{
			id:   i,
			tree: l.newTree(int64(i)),
			mon:  drift.NewADWIN(cfg.DriftDelta),
		}
		m.rng, m.src = rng.New(cfg.Seed*37 + int64(i)*1013 + 7)
		l.members = append(l.members, m)
	}
	return l
}

// Schema returns the stream schema the ensemble was built for.
func (l *LevBag) Schema() stream.Schema { return l.schema }

func (l *LevBag) newTree(salt int64) *hoeffding.Tree {
	cfg := l.cfg.Tree
	cfg.SubspaceSize = 0 // leveraging bagging uses all features
	cfg.Seed = l.cfg.Seed*37 + salt
	return hoeffding.New(cfg, l.schema)
}

// Name implements model.Classifier.
func (l *LevBag) Name() string { return "Bagging Ens." }

// Learn implements model.Classifier: members consume the batch
// independently on the worker pool, then a serial coupling step applies
// the Leveraging Bagging adaptation — when any member's ADWIN fired
// during the batch, the member with the highest monitored error estimate
// is reset (Bifet et al. [27], applied at batch granularity so member
// learning stays embarrassingly parallel).
func (l *LevBag) Learn(b stream.Batch) {
	forEachMember(l.cfg.Workers, len(l.members), func(i int) {
		m := l.members[i]
		for r, x := range b.X {
			l.learnMemberOne(m, x, b.Y[r])
		}
	})
	fired := false
	for _, m := range l.members {
		if m.fired {
			fired = true
			m.fired = false
		}
	}
	if !fired {
		return
	}
	worst := 0
	for i, m := range l.members {
		if m.mon.Mean() > l.members[worst].mon.Mean() {
			worst = i
		}
	}
	l.resets++
	l.members[worst].retiredVersion += l.members[worst].tree.StructureVersion()
	l.members[worst].tree = l.newTree(int64(worst)*151 + int64(l.resets))
	l.members[worst].mon.Reset()
}

// learnMemberOne advances one member by one instance: a Poisson-weighted
// test-then-train update in one traversal, with the pre-learn error
// feeding the member's monitor. Steady state allocates nothing.
func (l *LevBag) learnMemberOne(m *lbMember, x []float64, y int) {
	w := l.pois.draw(m.rng)
	var pred int
	if w > 0 {
		pred = m.tree.PredictLearnOne(x, y, float64(w))
	} else {
		pred = m.tree.Predict(x)
	}
	errSignal := 0.0
	if pred != y {
		errSignal = 1
	}
	if m.mon.Add(errSignal) {
		m.fired = true
	}
}

// Predict implements model.Classifier by majority vote, accumulated in a
// stack buffer (see voteBufClasses) so concurrent readers stay safe and
// allocation-free.
func (l *LevBag) Predict(x []float64) int {
	var buf [voteBufClasses]float64
	votes := voteSlice(&buf, l.schema.NumClasses)
	for _, m := range l.members {
		votes[m.tree.Predict(x)]++
	}
	return argmax(votes)
}

// Complexity implements model.Classifier, summing the members.
func (l *LevBag) Complexity() model.Complexity {
	var total model.Complexity
	for _, m := range l.members {
		total = total.Add(m.tree.Complexity())
	}
	return total
}

// Snapshot implements model.Snapshotter: frozen member trees under
// unweighted majority vote, like the live ensemble. Member trees publish
// copy-on-write (see ARF.Snapshot), and the capture-time complexity sums
// the frozen members' O(1) counts.
func (l *LevBag) Snapshot() model.Snapshot {
	s := &ensembleSnapshot{name: l.Name(), classes: l.schema.NumClasses}
	for _, m := range l.members {
		ts := m.tree.Snapshot()
		s.trees = append(s.trees, ts)
		s.weights = append(s.weights, 1)
		s.comp = s.comp.Add(ts.Complexity())
	}
	return s
}

// Resets returns the number of member resets so far.
func (l *LevBag) Resets() int { return l.resets }

// StructureVersion implements model.StructureVersioner: the member
// trees' structure versions plus the reset count, with replaced trees'
// final versions carried over so the counter never decreases.
func (l *LevBag) StructureVersion() uint64 {
	v := uint64(l.resets)
	for _, m := range l.members {
		v += m.retiredVersion + m.tree.StructureVersion()
	}
	return v
}

func argmax(xs []float64) int {
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}
