package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

func conceptBatch(rng *rand.Rand, n int, inverted bool) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		if inverted {
			y = 1 - y
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(c model.Classifier, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if c.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestPoissonMeanAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := float64(poisson(rng, 6))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-6) > 0.15 {
		t.Fatalf("Poisson(6) mean = %v", mean)
	}
	if math.Abs(variance-6) > 0.4 {
		t.Fatalf("Poisson(6) variance = %v", variance)
	}
}

func TestARFLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	arf := NewARF(Config{Seed: 2}, schema2())
	for i := 0; i < 60; i++ {
		arf.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(arf, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("ARF accuracy %v", acc)
	}
}

func TestARFAdaptsToDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arf := NewARF(Config{Seed: 3}, schema2())
	for i := 0; i < 60; i++ {
		arf.Learn(conceptBatch(rng, 200, false))
	}
	for i := 0; i < 120; i++ {
		arf.Learn(conceptBatch(rng, 200, true))
	}
	if acc := accuracy(arf, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("ARF post-drift accuracy %v (swaps %d)", acc, arf.Swaps())
	}
}

func TestARFComplexitySumsMembers(t *testing.T) {
	arf := NewARF(Config{Size: 3, Seed: 4}, schema2())
	comp := arf.Complexity()
	if comp.Leaves != 3 {
		t.Fatalf("3 empty trees should report 3 leaves, got %d", comp.Leaves)
	}
}

func TestARFSubspaceDefault(t *testing.T) {
	schema := stream.Schema{NumFeatures: 16, NumClasses: 2, Name: "wide"}
	arf := NewARF(Config{Seed: 5}, schema)
	want := int(math.Round(math.Sqrt(16))) + 1
	if arf.cfg.Tree.SubspaceSize != want {
		t.Fatalf("subspace = %d, want %d", arf.cfg.Tree.SubspaceSize, want)
	}
}

func TestLevBagLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lb := NewLevBag(Config{Seed: 6}, schema2())
	for i := 0; i < 60; i++ {
		lb.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(lb, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("LevBag accuracy %v", acc)
	}
}

func TestLevBagResetsOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lb := NewLevBag(Config{Seed: 7}, schema2())
	for i := 0; i < 60; i++ {
		lb.Learn(conceptBatch(rng, 200, false))
	}
	for i := 0; i < 120; i++ {
		lb.Learn(conceptBatch(rng, 200, true))
	}
	if lb.Resets() == 0 {
		t.Fatal("no member reset under a full concept inversion")
	}
	if acc := accuracy(lb, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("LevBag post-drift accuracy %v", acc)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Size != 3 {
		t.Fatalf("paper uses 3 weak learners, got %d", cfg.Size)
	}
	if cfg.Lambda != 6 {
		t.Fatalf("lambda = %v", cfg.Lambda)
	}
	if cfg.Tree.LeafMode != hoeffding.MajorityClass {
		t.Fatal("weak learners must be VFDT (MC)")
	}
}

func TestNames(t *testing.T) {
	if NewARF(Config{}, schema2()).Name() != "Forest Ens." {
		t.Fatal("ARF name")
	}
	if NewLevBag(Config{}, schema2()).Name() != "Bagging Ens." {
		t.Fatal("LevBag name")
	}
}

var _ model.Classifier = (*ARF)(nil)
var _ model.Classifier = (*LevBag)(nil)
