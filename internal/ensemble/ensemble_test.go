package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

func schema2() stream.Schema {
	return stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "test"}
}

func conceptBatch(rng *rand.Rand, n int, inverted bool) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		if inverted {
			y = 1 - y
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func accuracy(c model.Classifier, b stream.Batch) float64 {
	correct := 0
	for i, x := range b.X {
		if c.Predict(x) == b.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(b.Len())
}

func TestPoissonMeanAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := float64(poisson(rng, 6))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-6) > 0.15 {
		t.Fatalf("Poisson(6) mean = %v", mean)
	}
	if math.Abs(variance-6) > 0.4 {
		t.Fatalf("Poisson(6) variance = %v", variance)
	}
}

func TestPoissonLargeLambdaTerminates(t *testing.T) {
	// Above exp(-lambda)'s underflow point (~746) the Knuth loop would
	// spin until its running product denormal-underflows; the normal
	// approximation must kick in and keep the right mean.
	rng := rand.New(rand.NewSource(8))
	const lambda = 1e6
	var sum float64
	const n = 1000
	for i := 0; i < n; i++ {
		v := poisson(rng, lambda)
		if v < 0 {
			t.Fatalf("negative draw %d", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	// sd of the sample mean is sqrt(lambda/n) ~= 31.6.
	if math.Abs(mean-lambda) > 200 {
		t.Fatalf("Poisson(%g) sample mean = %v", float64(lambda), mean)
	}
}

func TestARFLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	arf := NewARF(Config{Seed: 2}, schema2())
	for i := 0; i < 60; i++ {
		arf.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(arf, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("ARF accuracy %v", acc)
	}
}

func TestARFAdaptsToDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arf := NewARF(Config{Seed: 3}, schema2())
	for i := 0; i < 60; i++ {
		arf.Learn(conceptBatch(rng, 200, false))
	}
	for i := 0; i < 120; i++ {
		arf.Learn(conceptBatch(rng, 200, true))
	}
	if acc := accuracy(arf, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("ARF post-drift accuracy %v (swaps %d)", acc, arf.Swaps())
	}
}

func TestARFComplexitySumsMembers(t *testing.T) {
	arf := NewARF(Config{Size: 3, Seed: 4}, schema2())
	comp := arf.Complexity()
	if comp.Leaves != 3 {
		t.Fatalf("3 empty trees should report 3 leaves, got %d", comp.Leaves)
	}
}

func TestARFSubspaceDefault(t *testing.T) {
	schema := stream.Schema{NumFeatures: 16, NumClasses: 2, Name: "wide"}
	arf := NewARF(Config{Seed: 5}, schema)
	want := int(math.Round(math.Sqrt(16))) + 1
	if arf.cfg.Tree.SubspaceSize != want {
		t.Fatalf("subspace = %d, want %d", arf.cfg.Tree.SubspaceSize, want)
	}
}

func TestLevBagLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lb := NewLevBag(Config{Seed: 6}, schema2())
	for i := 0; i < 60; i++ {
		lb.Learn(conceptBatch(rng, 200, false))
	}
	if acc := accuracy(lb, conceptBatch(rng, 1000, false)); acc < 0.85 {
		t.Fatalf("LevBag accuracy %v", acc)
	}
}

func TestLevBagResetsOnDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lb := NewLevBag(Config{Seed: 7}, schema2())
	for i := 0; i < 60; i++ {
		lb.Learn(conceptBatch(rng, 200, false))
	}
	for i := 0; i < 120; i++ {
		lb.Learn(conceptBatch(rng, 200, true))
	}
	if lb.Resets() == 0 {
		t.Fatal("no member reset under a full concept inversion")
	}
	if acc := accuracy(lb, conceptBatch(rng, 1000, true)); acc < 0.75 {
		t.Fatalf("LevBag post-drift accuracy %v", acc)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(defaultARFDrift)
	if cfg.Size != 3 {
		t.Fatalf("paper uses 3 weak learners, got %d", cfg.Size)
	}
	if cfg.Lambda != 6 {
		t.Fatalf("lambda = %v", cfg.Lambda)
	}
	if cfg.Tree.LeafMode != hoeffding.MajorityClass {
		t.Fatal("weak learners must be VFDT (MC)")
	}
}

func TestNames(t *testing.T) {
	if NewARF(Config{}, schema2()).Name() != "Forest Ens." {
		t.Fatal("ARF name")
	}
	if NewLevBag(Config{}, schema2()).Name() != "Bagging Ens." {
		t.Fatal("LevBag name")
	}
}

// TestLevBagHonoursDriftDelta is the regression test for the member
// monitors silently ignoring Config.DriftDelta (they were hardcoded to
// ADWIN's 0.002 default).
func TestLevBagHonoursDriftDelta(t *testing.T) {
	custom := NewLevBag(Config{DriftDelta: 0.05, Seed: 1}, schema2())
	for i, m := range custom.members {
		if got := m.mon.Delta(); got != 0.05 {
			t.Fatalf("member %d monitor delta = %v, want the configured 0.05", i, got)
		}
	}
	def := NewLevBag(Config{Seed: 1}, schema2())
	for i, m := range def.members {
		if got := m.mon.Delta(); got != 0.002 {
			t.Fatalf("member %d default monitor delta = %v, want 0.002", i, got)
		}
	}
}

func TestARFHonoursDeltas(t *testing.T) {
	a := NewARF(Config{WarnDelta: 0.2, DriftDelta: 0.03, Seed: 1}, schema2())
	for i, m := range a.members {
		if m.warn.Delta() != 0.2 || m.det.Delta() != 0.03 {
			t.Fatalf("member %d deltas = (%v, %v), want (0.2, 0.03)",
				i, m.warn.Delta(), m.det.Delta())
		}
	}
}

// TestRegistryEnsembleDeltasReachDetectors pins the whole option path:
// a WithEnsembleDeltas option passed to the registry must land in the
// member detectors.
func TestRegistryEnsembleDeltasReachDetectors(t *testing.T) {
	c, err := registry.New("Bagging Ens.", schema2(), registry.WithEnsembleDeltas(0, 0.07))
	if err != nil {
		t.Fatal(err)
	}
	lb, ok := c.(*LevBag)
	if !ok {
		t.Fatalf("registry built %T", c)
	}
	for i, m := range lb.members {
		if got := m.mon.Delta(); got != 0.07 {
			t.Fatalf("member %d monitor delta = %v, want 0.07", i, got)
		}
	}
}

// TestARFVoteWeight pins the post-swap voting fix: a freshly swapped
// member (no evidence since the swap) votes at the floor instead of full
// weight, and weights track the monitored error since the swap.
func TestARFVoteWeight(t *testing.T) {
	m := &arfMember{}
	if got := m.voteWeight(); got != minVote {
		t.Fatalf("cold member votes %v, want the %v floor", got, minVote)
	}
	m.seenSince, m.errSince = 100, 5
	if got := m.voteWeight(); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("weight = %v, want 0.95", got)
	}
	m.errSince = 100 // hopeless member: floored, never negative
	if got := m.voteWeight(); got != minVote {
		t.Fatalf("hopeless member votes %v, want the %v floor", got, minVote)
	}
}

// TestParallelMatchesSequential is the byte-identity guarantee of the
// member fan-out: a parallel Learn schedule must produce exactly the
// model a sequential one does under the same seed, across a drifting
// stream that exercises detections, swaps and resets.
func TestParallelMatchesSequential(t *testing.T) {
	for _, kind := range []string{"ARF", "LevBag"} {
		t.Run(kind, func(t *testing.T) {
			mk := func(workers int) model.Classifier {
				cfg := Config{Seed: 11, Workers: workers}
				if kind == "ARF" {
					return NewARF(cfg, schema2())
				}
				return NewLevBag(cfg, schema2())
			}
			seq, par := mk(1), mk(4)
			rngS := rand.New(rand.NewSource(99))
			rngP := rand.New(rand.NewSource(99))
			for i := 0; i < 60; i++ {
				inverted := i >= 30
				seq.Learn(conceptBatch(rngS, 150, inverted))
				par.Learn(conceptBatch(rngP, 150, inverted))
			}
			switch s := seq.(type) {
			case *ARF:
				if s.Swaps() != par.(*ARF).Swaps() {
					t.Fatalf("swaps diverge: %d vs %d", s.Swaps(), par.(*ARF).Swaps())
				}
			case *LevBag:
				if s.Resets() != par.(*LevBag).Resets() {
					t.Fatalf("resets diverge: %d vs %d", s.Resets(), par.(*LevBag).Resets())
				}
			}
			if seq.Complexity() != par.Complexity() {
				t.Fatalf("complexity diverges: %+v vs %+v", seq.Complexity(), par.Complexity())
			}
			probe := conceptBatch(rand.New(rand.NewSource(5)), 1000, true)
			for i, x := range probe.X {
				if seq.Predict(x) != par.Predict(x) {
					t.Fatalf("prediction %d diverges", i)
				}
			}
		})
	}
}

// TestEnsembleLearnOneZeroAllocs pins the steady-state member-instance
// path at zero allocations: a stationary noise stream keeps the
// detectors quiet and a huge grace period keeps the trees structurally
// frozen, so the measured window is pure hot path.
func TestEnsembleLearnOneZeroAllocs(t *testing.T) {
	schema := schema2()
	cfg := Config{Seed: 21, WarnDelta: 1e-9, DriftDelta: 1e-9}
	cfg.Tree.GracePeriod = 1e12
	arf := NewARF(cfg, schema)
	lb := NewLevBag(Config{Seed: 21, DriftDelta: 1e-9, Tree: cfg.Tree}, schema)

	rng := rand.New(rand.NewSource(22))
	const n = 4096
	xs := make([][]float64, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = i & 1 // alternating labels: error rate pinned near 0.5
	}
	warm := stream.Batch{X: xs, Y: ys}
	for i := 0; i < 3; i++ {
		arf.Learn(warm)
		lb.Learn(warm)
	}

	i := 0
	am := arf.members[0]
	if avg := testing.AllocsPerRun(300, func() {
		arf.learnMemberOne(am, xs[i&(n-1)], ys[i&(n-1)])
		i++
	}); avg != 0 {
		t.Fatalf("ARF learnMemberOne allocates %.2f allocs/op, want 0", avg)
	}
	i = 0
	lm := lb.members[0]
	if avg := testing.AllocsPerRun(300, func() {
		lb.learnMemberOne(lm, xs[i&(n-1)], ys[i&(n-1)])
		i++
	}); avg != 0 {
		t.Fatalf("LevBag learnMemberOne allocates %.2f allocs/op, want 0", avg)
	}

	// The read path must be allocation-free too (stack vote buffers).
	if avg := testing.AllocsPerRun(300, func() { arf.Predict(xs[0]) }); avg != 0 {
		t.Fatalf("ARF.Predict allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(300, func() { lb.Predict(xs[0]) }); avg != 0 {
		t.Fatalf("LevBag.Predict allocates %.2f allocs/op, want 0", avg)
	}
}

var _ model.Classifier = (*ARF)(nil)
var _ model.Classifier = (*LevBag)(nil)
