package ensemble

import (
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// ensembleConfig maps the registry parameter bag onto the shared ensemble
// config; zero values defer to the package defaults.
func ensembleConfig(p registry.Params) Config {
	return Config{
		Size:   p.EnsembleSize,
		Lambda: p.Lambda,
		Tree: hoeffding.Config{
			GracePeriod: p.GracePeriod,
			Delta:       p.Delta,
			Tau:         p.Tau,
			Bins:        p.Bins,
			MaxDepth:    p.MaxDepth,
		},
		WarnDelta:  p.WarnDelta,
		DriftDelta: p.DriftDelta,
		Workers:    p.EnsembleWorkers,
		Seed:       p.Seed,
	}
}

// init registers both reference ensembles under their paper table names.
func init() {
	registry.Register("Forest Ens.", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewARF(ensembleConfig(p), schema), nil
	})
	registry.Register("Bagging Ens.", func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
		return NewLevBag(ensembleConfig(p), schema), nil
	})
}
