package ensemble

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachMember runs fn(i) for every member index on a bounded worker
// pool. workers <= 0 uses GOMAXPROCS; a single worker (or a single
// member) runs inline without spawning goroutines, so the sequential
// path has zero synchronisation overhead.
//
// Indices are claimed from an atomic counter, so scheduling order is
// arbitrary — callers must guarantee that fn touches disjoint state per
// index (each ensemble member owns its trees, detectors and RNG stream),
// which is also what makes parallel runs byte-identical to sequential
// ones.
func forEachMember(workers, n int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
