package ensemble

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/drift"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Checkpoint documents of the two ensembles: each member recursively
// embeds its tree (and, for ARF, any in-progress background tree) via
// the shared hoeffding.TreeDoc codec, together with the member's private
// RNG stream, its ADWIN detectors and its post-swap accuracy tally —
// everything a resumed run needs to continue byte-identically.

const ensembleDocVersion = 1

// configDoc mirrors Config with the tree config in its serialisable
// form.
type configDoc struct {
	Size       int
	Lambda     float64
	Tree       hoeffding.ConfigDoc
	WarnDelta  float64
	DriftDelta float64
	Workers    int
	Seed       int64
}

func (c Config) doc() configDoc {
	return configDoc{
		Size: c.Size, Lambda: c.Lambda, Tree: c.Tree.Doc(),
		WarnDelta: c.WarnDelta, DriftDelta: c.DriftDelta,
		Workers: c.Workers, Seed: c.Seed,
	}
}

func configFromDoc(d configDoc) (Config, error) {
	tree, err := hoeffding.ConfigFromDoc(d.Tree)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Size: d.Size, Lambda: d.Lambda, Tree: tree,
		WarnDelta: d.WarnDelta, DriftDelta: d.DriftDelta,
		Workers: d.Workers, Seed: d.Seed,
	}, nil
}

// arfMemberDoc is one serialised Adaptive Random Forest member.
type arfMemberDoc struct {
	ID             int
	RNG            rng.State
	Tree           *hoeffding.TreeDoc
	Background     *hoeffding.TreeDoc
	Warn, Det      drift.ADWINState
	Swaps          int
	RetiredVersion uint64
	ErrSince       float64
	SeenSince      float64
}

type arfDoc struct {
	Version int
	Config  configDoc
	Schema  stream.Schema
	Members []arfMemberDoc
}

// SaveState implements model.Checkpointer for the ARF.
func (a *ARF) SaveState(w io.Writer) error {
	doc := arfDoc{Version: ensembleDocVersion, Config: a.cfg.doc(), Schema: a.schema}
	for _, m := range a.members {
		md := arfMemberDoc{
			ID: m.id, RNG: m.src.State(), Tree: m.tree.Doc(),
			Warn: m.warn.State(), Det: m.det.State(),
			Swaps: m.swaps, RetiredVersion: m.retiredVersion,
			ErrSince: m.errSince, SeenSince: m.seenSince,
		}
		if m.background != nil {
			md.Background = m.background.Doc()
		}
		doc.Members = append(doc.Members, md)
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("ensemble: save ARF: %w", err)
	}
	return nil
}

// lbMemberDoc is one serialised Leveraging Bagging member. The
// batch-local fired flag is always false between Learn calls — the
// serial coupling step consumes it — so it is not persisted.
type lbMemberDoc struct {
	ID             int
	RNG            rng.State
	Tree           *hoeffding.TreeDoc
	Mon            drift.ADWINState
	RetiredVersion uint64
}

type lbDoc struct {
	Version int
	Config  configDoc
	Schema  stream.Schema
	Resets  int
	Members []lbMemberDoc
}

// SaveState implements model.Checkpointer for Leveraging Bagging.
func (l *LevBag) SaveState(w io.Writer) error {
	doc := lbDoc{Version: ensembleDocVersion, Config: l.cfg.doc(), Schema: l.schema, Resets: l.resets}
	for _, m := range l.members {
		doc.Members = append(doc.Members, lbMemberDoc{
			ID: m.id, RNG: m.src.State(), Tree: m.tree.Doc(), Mon: m.mon.State(),
			RetiredVersion: m.retiredVersion,
		})
	}
	if err := gob.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("ensemble: save LevBag: %w", err)
	}
	return nil
}

// checkpointParams maps a resolved ensemble config back onto the
// registry parameter bag.
func checkpointParams(c Config) registry.Params {
	return registry.Params{
		Seed: c.Seed, EnsembleSize: c.Size, Lambda: c.Lambda,
		GracePeriod: c.Tree.GracePeriod, Delta: c.Tree.Delta, Tau: c.Tree.Tau,
		Bins: c.Tree.Bins, MaxDepth: c.Tree.MaxDepth,
		WarnDelta: c.WarnDelta, DriftDelta: c.DriftDelta,
		EnsembleWorkers: c.Workers,
	}
}

// CheckpointParams implements registry.ParamsReporter.
func (a *ARF) CheckpointParams() registry.Params { return checkpointParams(a.cfg) }

// CheckpointParams implements registry.ParamsReporter.
func (l *LevBag) CheckpointParams() registry.Params { return checkpointParams(l.cfg) }

// checkSchema validates a payload schema against the envelope's.
func checkSchema(kind string, payload, envelope stream.Schema) error {
	if payload.NumFeatures != envelope.NumFeatures || payload.NumClasses != envelope.NumClasses {
		return fmt.Errorf("ensemble: %s payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
			kind, payload.NumFeatures, payload.NumClasses, envelope.NumFeatures, envelope.NumClasses)
	}
	if !payload.SameKinds(envelope) {
		return fmt.Errorf("ensemble: %s payload schema feature kinds do not match envelope", kind)
	}
	return nil
}

// init registers the checkpoint loaders next to the construction
// factories (register.go).
func init() {
	registry.RegisterLoader("Forest Ens.", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc arfDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("ensemble: decode ARF checkpoint: %w", err)
		}
		if doc.Version != ensembleDocVersion {
			return nil, fmt.Errorf("ensemble: unsupported ARF checkpoint version %d (this build reads %d)", doc.Version, ensembleDocVersion)
		}
		if err := checkSchema("ARF", doc.Schema, schema); err != nil {
			return nil, err
		}
		cfg, err := configFromDoc(doc.Config)
		if err != nil {
			return nil, err
		}
		cfg = cfg.withDefaults(defaultARFDrift)
		if len(doc.Members) != cfg.Size {
			return nil, fmt.Errorf("ensemble: ARF checkpoint holds %d members, config says %d", len(doc.Members), cfg.Size)
		}
		a := &ARF{cfg: cfg, schema: doc.Schema, pois: newPoissonSampler(cfg.Lambda)}
		for i, md := range doc.Members {
			m := &arfMember{id: md.ID, swaps: md.Swaps, retiredVersion: md.RetiredVersion, errSince: md.ErrSince, seenSince: md.SeenSince}
			m.rng, m.src = rng.Restore(md.RNG)
			if md.Tree == nil {
				return nil, fmt.Errorf("ensemble: ARF checkpoint member %d has no tree", i)
			}
			if m.tree, err = hoeffding.TreeFromDoc(md.Tree); err != nil {
				return nil, fmt.Errorf("ensemble: ARF member %d tree: %w", i, err)
			}
			if md.Background != nil {
				if m.background, err = hoeffding.TreeFromDoc(md.Background); err != nil {
					return nil, fmt.Errorf("ensemble: ARF member %d background tree: %w", i, err)
				}
			}
			if m.warn, err = drift.ADWINFromState(md.Warn); err != nil {
				return nil, fmt.Errorf("ensemble: ARF member %d warning detector: %w", i, err)
			}
			if m.det, err = drift.ADWINFromState(md.Det); err != nil {
				return nil, fmt.Errorf("ensemble: ARF member %d drift detector: %w", i, err)
			}
			a.members = append(a.members, m)
		}
		return a, nil
	})
	registry.RegisterLoader("Bagging Ens.", func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
		var doc lbDoc
		if err := gob.NewDecoder(r).Decode(&doc); err != nil {
			return nil, fmt.Errorf("ensemble: decode LevBag checkpoint: %w", err)
		}
		if doc.Version != ensembleDocVersion {
			return nil, fmt.Errorf("ensemble: unsupported LevBag checkpoint version %d (this build reads %d)", doc.Version, ensembleDocVersion)
		}
		if err := checkSchema("LevBag", doc.Schema, schema); err != nil {
			return nil, err
		}
		cfg, err := configFromDoc(doc.Config)
		if err != nil {
			return nil, err
		}
		cfg = cfg.withDefaults(defaultLevBagDrift)
		if len(doc.Members) != cfg.Size {
			return nil, fmt.Errorf("ensemble: LevBag checkpoint holds %d members, config says %d", len(doc.Members), cfg.Size)
		}
		l := &LevBag{cfg: cfg, schema: doc.Schema, pois: newPoissonSampler(cfg.Lambda), resets: doc.Resets}
		for i, md := range doc.Members {
			m := &lbMember{id: md.ID, retiredVersion: md.RetiredVersion}
			m.rng, m.src = rng.Restore(md.RNG)
			if md.Tree == nil {
				return nil, fmt.Errorf("ensemble: LevBag checkpoint member %d has no tree", i)
			}
			if m.tree, err = hoeffding.TreeFromDoc(md.Tree); err != nil {
				return nil, fmt.Errorf("ensemble: LevBag member %d tree: %w", i, err)
			}
			if m.mon, err = drift.ADWINFromState(md.Mon); err != nil {
				return nil, fmt.Errorf("ensemble: LevBag member %d monitor: %w", i, err)
			}
			l.members = append(l.members, m)
		}
		return l, nil
	})
}
