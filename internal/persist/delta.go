package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// Delta envelopes: incremental checkpoints beside the full "REPROCKP"
// format. A delta is a binary patch from one full envelope's wire bytes
// to another's, keyed by the models' StructureVersions, so a serving
// replica or a resume can catch up from its last known state instead of
// transferring full state. Applying a base plus its delta chain is
// byte-identical to the full save at the head version — the per-delta
// base/result CRCs enforce it, the version keys detect gaps and
// reordering before any patching happens.
//
// Wire layout (exact sizes, so deltas stack on one stream and mix with
// full envelopes, distinguished by magic):
//
//	magic   [8]byte  "REPRODLT"
//	hlen    uint32   big-endian length of the gob-encoded header
//	header  gob      DeltaHeader
//	patch   [PatchLen]byte  COPY/ADD opcodes over the base's wire bytes
//
// The patch is an rsync-style block diff: the base is indexed by a weak
// rolling checksum over fixed blocks, the target is scanned with the
// rolling window, and every candidate match is verified byte-for-byte
// before a COPY is emitted — content-defined, so it works uniformly
// across the heterogeneous gob payloads of every registered learner
// without knowing their structure.

// DeltaMagic identifies a delta envelope.
const DeltaMagic = "REPRODLT"

// deltaBlockSize is the rolling-diff block granularity. Small enough to
// catch the locality of one structural change inside a gob payload,
// large enough that the per-block table stays cheap.
const deltaBlockSize = 512

// Patch opcodes: COPY re-uses a byte range of the base, ADD carries
// literal target bytes.
const (
	opCopy = 1
	opAdd  = 2
)

// DeltaHeader is the self-describing metadata of one delta envelope.
type DeltaHeader struct {
	// Version is the envelope format version (FormatVersion).
	Version int
	// Model is the registered model name both endpoints belong to.
	Model string
	// BaseVersion and TargetVersion key the chain: a delta applies only
	// to the full envelope saved at BaseVersion and produces the full
	// envelope saved at TargetVersion.
	BaseVersion   uint64
	TargetVersion uint64
	// BaseLen and BaseCRC pin the exact base bytes the patch was computed
	// against; applying to anything else is rejected before patching.
	BaseLen int64
	BaseCRC uint32
	// PatchLen and PatchCRC frame and checksum the patch bytes.
	PatchLen int64
	PatchCRC uint32
	// ResultLen and ResultCRC pin the reconstructed full envelope, so a
	// successful apply is guaranteed byte-identical to the full save.
	ResultLen int64
	ResultCRC uint32
}

// Delta is one decoded delta envelope.
type Delta struct {
	Header DeltaHeader
	Patch  []byte
}

// MakeDelta computes the delta between two full checkpoint envelopes
// given as their verbatim wire bytes (as produced by Save or returned by
// ReadRaw). Both must be valid envelopes of the same model.
func MakeDelta(base, target []byte) (*Delta, error) {
	_, bh, err := ReadRaw(bytes.NewReader(base))
	if err != nil {
		return nil, fmt.Errorf("persist: delta base: %w", err)
	}
	_, th, err := ReadRaw(bytes.NewReader(target))
	if err != nil {
		return nil, fmt.Errorf("persist: delta target: %w", err)
	}
	if bh.Model != th.Model {
		return nil, fmt.Errorf("persist: delta endpoints disagree on model: base %q, target %q", bh.Model, th.Model)
	}
	patch := makePatch(base, target)
	return &Delta{
		Header: DeltaHeader{
			Version:       FormatVersion,
			Model:         th.Model,
			BaseVersion:   bh.StructVersion,
			TargetVersion: th.StructVersion,
			BaseLen:       int64(len(base)),
			BaseCRC:       crc32.ChecksumIEEE(base),
			PatchLen:      int64(len(patch)),
			PatchCRC:      crc32.ChecksumIEEE(patch),
			ResultLen:     int64(len(target)),
			ResultCRC:     crc32.ChecksumIEEE(target),
		},
		Patch: patch,
	}, nil
}

// WriteDelta writes one delta envelope.
func WriteDelta(w io.Writer, d *Delta) error {
	var hdr bytes.Buffer
	if err := gob.NewEncoder(&hdr).Encode(d.Header); err != nil {
		return fmt.Errorf("persist: encode delta header: %w", err)
	}
	if _, err := io.WriteString(w, DeltaMagic); err != nil {
		return fmt.Errorf("persist: write delta magic: %w", err)
	}
	var hlen [4]byte
	binary.BigEndian.PutUint32(hlen[:], uint32(hdr.Len()))
	if _, err := w.Write(hlen[:]); err != nil {
		return fmt.Errorf("persist: write delta header length: %w", err)
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("persist: write delta header: %w", err)
	}
	if _, err := w.Write(d.Patch); err != nil {
		return fmt.Errorf("persist: write delta patch: %w", err)
	}
	return nil
}

// ReadDelta reads exactly one delta envelope from r, verifying magic,
// version and patch checksum. Like ReadEnvelope it consumes precisely
// the envelope's bytes, so full and delta envelopes stack on one stream.
func ReadDelta(r io.Reader) (*Delta, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("persist: read delta magic: %w (truncated or not a delta)", err)
	}
	if string(magic[:]) != DeltaMagic {
		return nil, fmt.Errorf("persist: bad delta magic %q: not a delta envelope (full checkpoints start with %q)", magic[:], Magic)
	}
	var hlenBuf [4]byte
	if _, err := io.ReadFull(r, hlenBuf[:]); err != nil {
		return nil, fmt.Errorf("persist: read delta header length: %w (truncated delta)", err)
	}
	hlen := binary.BigEndian.Uint32(hlenBuf[:])
	if hlen == 0 || hlen > maxHeaderLen {
		return nil, fmt.Errorf("persist: implausible delta header length %d: corrupt delta", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("persist: read delta header: %w (truncated delta)", err)
	}
	var h DeltaHeader
	if err := gob.NewDecoder(bytes.NewReader(hdr)).Decode(&h); err != nil {
		return nil, fmt.Errorf("persist: decode delta header: %w (corrupt delta)", err)
	}
	if h.Version > FormatVersion {
		return nil, fmt.Errorf("persist: delta format version %d is newer than this build supports (max %d)", h.Version, FormatVersion)
	}
	if h.PatchLen < 0 || h.PatchLen > maxPayloadLen {
		return nil, fmt.Errorf("persist: implausible delta patch length %d: corrupt delta", h.PatchLen)
	}
	patch := make([]byte, h.PatchLen)
	if _, err := io.ReadFull(r, patch); err != nil {
		return nil, fmt.Errorf("persist: read delta patch (%d bytes): %w (truncated delta)", h.PatchLen, err)
	}
	if crc := crc32.ChecksumIEEE(patch); crc != h.PatchCRC {
		return nil, fmt.Errorf("persist: delta patch checksum mismatch (got %08x, header says %08x): corrupt delta", crc, h.PatchCRC)
	}
	return &Delta{Header: h, Patch: patch}, nil
}

// ReadDeltaRaw reads exactly one delta envelope off r, returning its
// verbatim, fully validated wire bytes alongside the decoded header —
// the relay primitive behind the server's delta-chain responses.
func ReadDeltaRaw(r io.Reader) ([]byte, DeltaHeader, error) {
	var buf bytes.Buffer
	d, err := ReadDelta(io.TeeReader(r, &buf))
	if err != nil {
		return nil, DeltaHeader{}, err
	}
	return buf.Bytes(), d.Header, nil
}

// SniffDelta reports whether the next bytes of a buffered reader start a
// delta envelope. It does not consume input.
func SniffDelta(br *bufio.Reader) bool {
	peek, err := br.Peek(len(DeltaMagic))
	return err == nil && string(peek) == DeltaMagic
}

// Apply patches base (the verbatim wire bytes of the full envelope this
// delta was computed against) into the target full envelope, verifying
// the base pin before patching and the result checksum after.
func (d *Delta) Apply(base []byte) ([]byte, error) {
	h := d.Header
	if int64(len(base)) != h.BaseLen || crc32.ChecksumIEEE(base) != h.BaseCRC {
		return nil, fmt.Errorf("persist: delta %d→%d does not apply: base is not the envelope it was computed against (want %d bytes crc %08x, have %d bytes crc %08x)",
			h.BaseVersion, h.TargetVersion, h.BaseLen, h.BaseCRC, len(base), crc32.ChecksumIEEE(base))
	}
	out, err := applyPatch(base, d.Patch, h.ResultLen)
	if err != nil {
		return nil, fmt.Errorf("persist: delta %d→%d: %w", h.BaseVersion, h.TargetVersion, err)
	}
	if crc := crc32.ChecksumIEEE(out); crc != h.ResultCRC {
		return nil, fmt.Errorf("persist: delta %d→%d result checksum mismatch (got %08x, header says %08x): corrupt delta", h.BaseVersion, h.TargetVersion, crc, h.ResultCRC)
	}
	return out, nil
}

// ApplyChain applies a chain of deltas to a base full envelope with
// strict validation: the first delta must base on the base envelope's
// StructureVersion, every later delta must base on its predecessor's
// target, and each step's base/result CRCs must hold. The returned bytes
// are byte-identical to the full save at the head version.
func ApplyChain(base []byte, deltas ...*Delta) ([]byte, error) {
	if len(deltas) == 0 {
		return base, nil
	}
	_, bh, err := ReadRaw(bytes.NewReader(base))
	if err != nil {
		return nil, fmt.Errorf("persist: delta chain base: %w", err)
	}
	if first := deltas[0].Header; first.BaseVersion != bh.StructVersion {
		return nil, fmt.Errorf("persist: delta chain does not start at the base envelope: base is version %d but the first delta expects version %d (version gap)",
			bh.StructVersion, first.BaseVersion)
	}
	cur := base
	for i, d := range deltas {
		if i > 0 {
			prev := deltas[i-1].Header.TargetVersion
			switch h := d.Header; {
			case h.BaseVersion < prev:
				return nil, fmt.Errorf("persist: delta chain out of order: delta %d bases on version %d but the previous delta already produced version %d",
					i, h.BaseVersion, prev)
			case h.BaseVersion > prev:
				return nil, fmt.Errorf("persist: delta chain has a version gap: delta %d bases on version %d but the previous delta only reached version %d",
					i, h.BaseVersion, prev)
			}
		}
		next, err := d.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("persist: delta chain link %d: %w", i, err)
		}
		cur = next
	}
	return cur, nil
}

// weakSum is the rolling Adler-style checksum of one block: a is the
// byte sum, b the sum of prefix sums, both mod 2^16.
func weakSum(p []byte) (a, b uint32) {
	for _, c := range p {
		a += uint32(c)
		b += a
	}
	return a & 0xffff, b & 0xffff
}

// makePatch computes the COPY/ADD opcode stream turning base into
// target: base blocks are indexed by weak checksum, target is scanned
// with a rolling window, candidate matches verify byte-for-byte and
// extend greedily past the block boundary.
func makePatch(base, target []byte) []byte {
	const bs = deltaBlockSize
	table := make(map[uint32][]int, len(base)/bs)
	for off := 0; off+bs <= len(base); off += bs {
		a, b := weakSum(base[off : off+bs])
		key := a | b<<16
		table[key] = append(table[key], off)
	}

	var out bytes.Buffer
	var num [binary.MaxVarintLen64]byte
	litStart := 0 // start of the pending literal run in target

	flushLit := func(end int) {
		if end <= litStart {
			return
		}
		out.WriteByte(opAdd)
		n := binary.PutUvarint(num[:], uint64(end-litStart))
		out.Write(num[:n])
		out.Write(target[litStart:end])
	}

	i := 0
	if len(table) > 0 && len(target) >= bs {
		a, b := weakSum(target[:bs])
		for i+bs <= len(target) {
			key := a | b<<16
			matched := false
			for _, off := range table[key] {
				if !bytes.Equal(base[off:off+bs], target[i:i+bs]) {
					continue
				}
				// Extend the verified block match as far as it goes.
				n := bs
				for off+n < len(base) && i+n < len(target) && base[off+n] == target[i+n] {
					n++
				}
				flushLit(i)
				out.WriteByte(opCopy)
				k := binary.PutUvarint(num[:], uint64(off))
				out.Write(num[:k])
				k = binary.PutUvarint(num[:], uint64(n))
				out.Write(num[:k])
				i += n
				litStart = i
				if i+bs <= len(target) {
					a, b = weakSum(target[i : i+bs])
				}
				matched = true
				break
			}
			if matched {
				continue
			}
			// Roll the window one byte forward.
			outByte := uint32(target[i])
			a = (a - outByte) & 0xffff
			b = (b - uint32(bs)*outByte) & 0xffff
			if i+bs < len(target) {
				inByte := uint32(target[i+bs])
				a = (a + inByte) & 0xffff
				b = (b + a) & 0xffff
			}
			i++
		}
	}
	flushLit(len(target))
	return out.Bytes()
}

// applyPatch replays a COPY/ADD opcode stream against base.
func applyPatch(base, patch []byte, resultLen int64) ([]byte, error) {
	out := make([]byte, 0, resultLen)
	p := patch
	for len(p) > 0 {
		op := p[0]
		p = p[1:]
		switch op {
		case opCopy:
			off, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, fmt.Errorf("patch truncated in COPY offset")
			}
			p = p[n:]
			length, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, fmt.Errorf("patch truncated in COPY length")
			}
			p = p[n:]
			end := off + length
			if end < off || end > uint64(len(base)) {
				return nil, fmt.Errorf("patch COPY [%d:%d) outside base (%d bytes)", off, end, len(base))
			}
			out = append(out, base[off:end]...)
		case opAdd:
			length, n := binary.Uvarint(p)
			if n <= 0 {
				return nil, fmt.Errorf("patch truncated in ADD length")
			}
			p = p[n:]
			if length > uint64(len(p)) {
				return nil, fmt.Errorf("patch truncated in ADD literal (want %d bytes, have %d)", length, len(p))
			}
			out = append(out, p[:length]...)
			p = p[length:]
		default:
			return nil, fmt.Errorf("patch has unknown opcode %d", op)
		}
	}
	if int64(len(out)) != resultLen {
		return nil, fmt.Errorf("patch produced %d bytes, header says %d", len(out), resultLen)
	}
	return out, nil
}
