// Package persist implements the registry-wide model checkpoint format
// behind repro.Save / repro.Load: a versioned, self-describing envelope
// around each learner's private state payload. The envelope records the
// model's registered name, its stream schema, the resolved ModelParams
// (when the learner reports them) and a payload checksum, so Load can
// reconstruct any registered model from the bytes alone — the registry
// resolves the LoadState factory from the envelope's model name, exactly
// as registry.New resolves construction factories from a string.
//
// Wire layout (all sizes exact, so envelopes may be stacked on one
// stream — the sharded scorer writes one per replica):
//
//	magic   [8]byte  "REPROCKP"
//	hlen    uint32   big-endian length of the gob-encoded header
//	header  gob      {Version, Model, Schema, Params, PayloadLen, PayloadCRC}
//	payload [PayloadLen]byte  model-private (see model.Checkpointer)
//
// Format version 1 is the legacy bare-gob DMT document that predates the
// envelope; it has no magic and only repro.LoadDMT / core.Load read it.
package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// Magic identifies a checkpoint envelope.
const Magic = "REPROCKP"

// FormatVersion is the envelope format this build writes. Version 1 is
// the pre-envelope legacy DMT gob document.
const FormatVersion = 2

// maxHeaderLen and maxPayloadLen bound the framed sections so a corrupt
// length field cannot make Load attempt an absurd allocation (the
// largest real checkpoints — wide ensembles with full E-BST observers —
// are tens of megabytes).
const (
	maxHeaderLen  = 1 << 20
	maxPayloadLen = 1 << 31
)

// Header is the self-describing metadata of one checkpoint envelope.
type Header struct {
	// Version is the envelope format version (FormatVersion when written
	// by this build).
	Version int
	// Model is the registered model name the payload belongs to; Load
	// resolves the LoadState factory from it.
	Model string
	// Schema is the stream schema the model was built for.
	Schema stream.Schema
	// Params is the resolved ModelParams bag the model reports via
	// registry.ParamsReporter (zero when the learner does not report).
	Params registry.Params
	// PayloadLen and PayloadCRC frame and checksum the payload bytes.
	PayloadLen int64
	PayloadCRC uint32
	// StructVersion records the model's StructureVersion at save time;
	// HasStructVersion distinguishes a genuine zero from a model that
	// reports no version. Delta envelopes (see delta.go) key their chains
	// on it. Gob tolerates the added fields in both directions, so the
	// format version stays 2.
	StructVersion    uint64
	HasStructVersion bool
}

// Envelope is one decoded checkpoint: the header plus the verified
// payload bytes.
type Envelope struct {
	Header  Header
	Payload []byte
}

// Save writes c as a checkpoint envelope. c must implement
// model.Checkpointer (every registered learner does) and its Name must
// have a registered loader, so the checkpoint is guaranteed loadable by
// the matching build.
func Save(w io.Writer, c model.Classifier) error {
	ck, ok := c.(model.Checkpointer)
	if !ok {
		return fmt.Errorf("persist: %s does not implement model.Checkpointer", c.Name())
	}
	name := c.Name()
	if !registry.HasLoader(name) {
		return fmt.Errorf("persist: model %q has no registered checkpoint loader", name)
	}
	// The schema is mandatory: Load validates it before resolving the
	// loader, so a model that cannot report one would write checkpoints
	// that are never loadable — fail the write instead.
	sp, ok := c.(interface{ Schema() stream.Schema })
	if !ok {
		return fmt.Errorf("persist: %s does not expose Schema() stream.Schema, required for the checkpoint envelope", name)
	}
	schema := sp.Schema()
	if err := schema.Validate(); err != nil {
		return fmt.Errorf("persist: %s schema: %w", name, err)
	}
	var payload bytes.Buffer
	if err := ck.SaveState(&payload); err != nil {
		return fmt.Errorf("persist: save %s state: %w", name, err)
	}
	h := Header{
		Version:    FormatVersion,
		Model:      name,
		Schema:     schema,
		PayloadLen: int64(payload.Len()),
		PayloadCRC: crc32.ChecksumIEEE(payload.Bytes()),
	}
	if pr, ok := c.(registry.ParamsReporter); ok {
		h.Params = pr.CheckpointParams()
	}
	if sv, ok := c.(model.StructureVersioner); ok {
		h.StructVersion = sv.StructureVersion()
		h.HasStructVersion = true
	}
	var hdr bytes.Buffer
	if err := gob.NewEncoder(&hdr).Encode(h); err != nil {
		return fmt.Errorf("persist: encode header: %w", err)
	}
	if _, err := io.WriteString(w, Magic); err != nil {
		return fmt.Errorf("persist: write magic: %w", err)
	}
	var hlen [4]byte
	binary.BigEndian.PutUint32(hlen[:], uint32(hdr.Len()))
	if _, err := w.Write(hlen[:]); err != nil {
		return fmt.Errorf("persist: write header length: %w", err)
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("persist: write payload: %w", err)
	}
	return nil
}

// ReadEnvelope reads exactly one envelope from r, verifying magic,
// version and payload checksum. It consumes precisely the envelope's
// bytes, so callers may read several envelopes off one stream.
func ReadEnvelope(r io.Reader) (*Envelope, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("persist: read magic: %w (truncated or not a checkpoint)", err)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("persist: bad magic %q: not a model checkpoint envelope (a legacy DMT gob checkpoint loads through repro.LoadDMT)", magic[:])
	}
	var hlenBuf [4]byte
	if _, err := io.ReadFull(r, hlenBuf[:]); err != nil {
		return nil, fmt.Errorf("persist: read header length: %w (truncated checkpoint)", err)
	}
	hlen := binary.BigEndian.Uint32(hlenBuf[:])
	if hlen == 0 || hlen > maxHeaderLen {
		return nil, fmt.Errorf("persist: implausible header length %d: corrupt checkpoint", hlen)
	}
	hdr := make([]byte, hlen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("persist: read header: %w (truncated checkpoint)", err)
	}
	var h Header
	if err := gob.NewDecoder(bytes.NewReader(hdr)).Decode(&h); err != nil {
		return nil, fmt.Errorf("persist: decode header: %w (corrupt checkpoint)", err)
	}
	if h.Version > FormatVersion {
		return nil, fmt.Errorf("persist: checkpoint format version %d is newer than this build supports (max %d) — upgrade the library to load it", h.Version, FormatVersion)
	}
	if h.Version < FormatVersion {
		return nil, fmt.Errorf("persist: checkpoint format version %d predates the envelope format %d (legacy DMT gob checkpoints load through repro.LoadDMT)", h.Version, FormatVersion)
	}
	if h.PayloadLen < 0 || h.PayloadLen > maxPayloadLen {
		return nil, fmt.Errorf("persist: implausible payload length %d: corrupt checkpoint", h.PayloadLen)
	}
	payload := make([]byte, h.PayloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("persist: read payload (%d bytes): %w (truncated checkpoint)", h.PayloadLen, err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != h.PayloadCRC {
		return nil, fmt.Errorf("persist: payload checksum mismatch (got %08x, header says %08x): corrupt checkpoint", crc, h.PayloadCRC)
	}
	return &Envelope{Header: h, Payload: payload}, nil
}

// ReadRaw reads exactly one envelope off r — any reader, not just a
// file: an HTTP body, a pipe, a stacked checkpoint stream — returning
// its verbatim wire bytes alongside the decoded header. The bytes are
// fully validated (magic, version, header decode, payload checksum)
// before they are returned, so a relay can cache and re-serve them
// without ever reconstructing the model: this is what the network
// serving tier's trainer→replica envelope streaming is built on. Like
// ReadEnvelope it consumes precisely the envelope's bytes.
func ReadRaw(r io.Reader) ([]byte, Header, error) {
	var buf bytes.Buffer
	env, err := ReadEnvelope(io.TeeReader(r, &buf))
	if err != nil {
		return nil, Header{}, err
	}
	return buf.Bytes(), env.Header, nil
}

// Load reads one envelope and reconstructs the model it describes via
// the loader registered under the envelope's model name. The caller
// never names a type: the envelope is fully self-describing.
func Load(r io.Reader) (model.Classifier, error) {
	env, err := ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	return LoadEnvelope(env)
}

// LoadEnvelope reconstructs the model of an already-read envelope.
func LoadEnvelope(env *Envelope) (model.Classifier, error) {
	h := env.Header
	if err := h.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("persist: checkpoint schema: %w", err)
	}
	loader, ok := registry.LoaderFor(h.Model)
	if !ok {
		return nil, fmt.Errorf("persist: no checkpoint loader registered for model %q (registered loaders handle every repro.Models entry; external learners must registry.RegisterLoader)", h.Model)
	}
	c, err := loader(h.Schema, h.Params, bytes.NewReader(env.Payload))
	if err != nil {
		return nil, fmt.Errorf("persist: load %s: %w", h.Model, err)
	}
	if c.Name() != h.Model {
		return nil, fmt.Errorf("persist: loader for %q reconstructed a model named %q: checkpoint/registration mismatch", h.Model, c.Name())
	}
	return c, nil
}

// SniffEnvelope reports whether the next bytes of a buffered reader
// start a checkpoint envelope (as opposed to, e.g., a legacy bare-gob
// DMT document). It does not consume input.
func SniffEnvelope(br *bufio.Reader) bool {
	peek, err := br.Peek(len(Magic))
	return err == nil && string(peek) == Magic
}
